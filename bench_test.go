// Benchmarks regenerating every table and figure of the paper's
// evaluation (plus the motivation experiments and the DESIGN.md
// ablations). Each benchmark runs the corresponding experiment end to end
// and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Absolute values are simulator-scale;
// EXPERIMENTS.md records the paper-vs-measured comparison for each.
package tcptrim_test

import (
	"testing"
	"time"

	"tcptrim/internal/cellcache"
	"tcptrim/internal/experiment"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkFig1PacketTrains regenerates the Fig. 1 packet-train trace
// analysis on synthetic ON/OFF traffic.
func BenchmarkFig1PacketTrains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTrainAnalysis(experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Trains), "trains")
		b.ReportMetric(res.MeanLongPackets, "LPT-pkts")
	}
}

// BenchmarkFig2Distributions regenerates the Fig. 2 size/gap CDF check.
func BenchmarkFig2Distributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTrainAnalysis(experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TinyFraction*100, "pct<=4KB")
		b.ReportMetric(res.LargeFraction*100, "pct>128KB")
	}
}

// BenchmarkFig4RenoImpairment regenerates Fig. 4: TCP's inherited-window
// collapse on the Section II.B workload.
func BenchmarkFig4RenoImpairment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunImpairment(experiment.ProtoTCP, experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalTimeouts()), "timeouts")
		b.ReportMetric(res.CwndAtLPTStart[4], "cwnd@LPT")
	}
}

// BenchmarkFig5Concurrency regenerates Fig. 5: TCP ACT vs number of
// concurrent SPTs under 0/1/2 long flows.
func BenchmarkFig5Concurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunConcurrency(experiment.ProtoTCP, []int{0, 1, 2}, 10,
			experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		worst := res.Cell(2, 10)
		b.ReportMetric(ms(worst.ACT), "ACT-2x10-ms")
		b.ReportMetric(ms(worst.Max), "maxCT-ms")
	}
}

// BenchmarkFig6TrimImpairment regenerates Fig. 6: TRIM on the same
// workload (no timeouts, tiny queue).
func BenchmarkFig6TrimImpairment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunImpairment(experiment.ProtoTRIM, experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalTimeouts()), "timeouts")
		b.ReportMetric(float64(res.QueueMax), "queue-max")
	}
}

// BenchmarkFig7TrimConcurrency regenerates Fig. 7: TRIM ACT with 2 long
// flows.
func BenchmarkFig7TrimConcurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunConcurrency(experiment.ProtoTRIM, []int{2}, 10,
			experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ms(res.Cell(2, 10).ACT), "ACT-2x10-ms")
	}
}

// BenchmarkFig8LargeScale regenerates Fig. 8(b) at a reduced default
// scale (5 and 15 ToRs, one repetition); run cmd/trimsim -run fig8 for
// the full sweep.
func BenchmarkFig8LargeScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunLargeScale(
			[]experiment.Protocol{experiment.ProtoTCP, experiment.ProtoTRIM},
			[]int{5, 15}, experiment.Options{Seed: int64(i) + 1, Reps: 1})
		if err != nil {
			b.Fatal(err)
		}
		tcpACT := res.Row(experiment.ProtoTCP, 15).ACT
		trimACT := res.Row(experiment.ProtoTRIM, 15).ACT
		b.ReportMetric(ms(tcpACT), "TCP-ACT-ms")
		b.ReportMetric(ms(trimACT), "TRIM-ACT-ms")
		if trimACT > 0 {
			b.ReportMetric(100*(1-trimACT.Seconds()/tcpACT.Seconds()), "reduction-pct")
		}
	}
}

// BenchmarkFig8LargeScaleSharded is BenchmarkFig8LargeScale on the
// 4-shard PDES core (results are byte-identical; only wall-clock time
// changes). The spread vs the sequential benchmark is the parallel
// speedup on this host — on a single-core runner it instead bounds the
// sharding machinery's overhead, since the windows run inline.
func BenchmarkFig8LargeScaleSharded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunLargeScale(
			[]experiment.Protocol{experiment.ProtoTCP, experiment.ProtoTRIM},
			[]int{5, 15}, experiment.Options{Seed: int64(i) + 1, Reps: 1, Shards: 4})
		if err != nil {
			b.Fatal(err)
		}
		tcpACT := res.Row(experiment.ProtoTCP, 15).ACT
		trimACT := res.Row(experiment.ProtoTRIM, 15).ACT
		b.ReportMetric(ms(tcpACT), "TCP-ACT-ms")
		b.ReportMetric(ms(trimACT), "TRIM-ACT-ms")
	}
}

// BenchmarkFig8MillionSmoke regenerates fig8million at its CI scale
// (10k connections, hybrid fidelity) and reports the scale layer's
// headline quantities: heap bytes and wall-clock nanoseconds per
// connection, plus the materialized high-water mark that the flow-level
// fast-forward keeps orders of magnitude below the fleet size. Run
// cmd/trimsim -run fig8million for the full million-connection sweep.
func BenchmarkFig8MillionSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunMillion(
			[]experiment.Protocol{experiment.ProtoTRIM},
			experiment.MillionSmoke, experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		row := res.Rows[0]
		b.ReportMetric(row.BytesPerConn, "B/conn")
		b.ReportMetric(row.NsPerConn, "ns/conn")
		b.ReportMetric(float64(row.PeakLive), "peak-live")
		b.ReportMetric(ms(row.ACT), "ACT-ms")
	}
}

// BenchmarkFig9Properties regenerates Fig. 9(a)–(d): queue behaviour,
// drops and goodput for 2–10 concurrent flows.
func BenchmarkFig9Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunProperties(
			[]experiment.Protocol{experiment.ProtoTCP, experiment.ProtoTRIM},
			2, 10, experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		tcp10 := res.Row(experiment.ProtoTCP, 10)
		trim10 := res.Row(experiment.ProtoTRIM, 10)
		b.ReportMetric(tcp10.AvgQueue, "TCP-AQL")
		b.ReportMetric(trim10.AvgQueue, "TRIM-AQL")
		b.ReportMetric(float64(trim10.Drops), "TRIM-drops")
		b.ReportMetric(trim10.Utilization*100, "TRIM-util-pct")
	}
}

// BenchmarkFig10Convergence regenerates Fig. 10: staggered long flows
// converging to the fair share.
func BenchmarkFig10Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunConvergence(experiment.ProtoTRIM, experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.JainAllActive, "jain")
		b.ReportMetric(float64(res.Timeouts), "timeouts")
	}
}

// BenchmarkFig11MultiHop regenerates Fig. 11: per-group throughput on
// the dual-bottleneck topology.
func BenchmarkFig11MultiHop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunMultiHop(experiment.ProtoTRIM, experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanMbps["A"], "A-Mbps")
		b.ReportMetric(res.MeanMbps["B"], "B-Mbps")
		b.ReportMetric(res.MeanMbps["C"], "C-Mbps")
	}
}

// BenchmarkFig12FatTree regenerates Fig. 12 at k=4 (run cmd/trimsim
// -run fig12 for the full pod sweep).
func BenchmarkFig12FatTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFatTree(experiment.FatTreeProtocols, []int{4},
			experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ms(res.Row(experiment.ProtoTCP, 4).MaxCT), "TCP-maxCT-ms")
		b.ReportMetric(ms(res.Row(experiment.ProtoTRIM, 4).MaxCT), "TRIM-maxCT-ms")
	}
}

// BenchmarkTable1Timeouts regenerates Table I at k=6.
func BenchmarkTable1Timeouts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFatTree(experiment.FatTreeProtocols, []int{6},
			experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Row(experiment.ProtoTCP, 6).Timeouts), "TCP-timeouts")
		b.ReportMetric(float64(res.Row(experiment.ProtoDCTCP, 6).Timeouts), "DCTCP-timeouts")
		b.ReportMetric(float64(res.Row(experiment.ProtoL2DCT, 6).Timeouts), "L2DCT-timeouts")
		b.ReportMetric(float64(res.Row(experiment.ProtoTRIM, 6).Timeouts), "TRIM-timeouts")
	}
}

// BenchmarkFig13ARCT regenerates Fig. 13(a): ARCT vs mean response size
// on the simulated 100 Mbps testbed.
func BenchmarkFig13ARCT(b *testing.B) {
	sizes := []int{32 << 10, 128 << 10, 512 << 10}
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunARCT(
			[]experiment.Protocol{experiment.ProtoCUBIC, experiment.ProtoTRIM},
			sizes, experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ms(res.Row(experiment.ProtoCUBIC, 32<<10).ARCT), "CUBIC-32K-ms")
		b.ReportMetric(ms(res.Row(experiment.ProtoTRIM, 32<<10).ARCT), "TRIM-32K-ms")
	}
}

// BenchmarkFig13WebService regenerates Fig. 13(b)–(e): the web-service
// scenario's completion-time scatter and CDF.
func BenchmarkFig13WebService(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunWebService(experiment.WebServiceProtocols,
			experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		trim := res.Row(experiment.ProtoTRIM)
		b.ReportMetric(ms(trim.BandMax), "TRIM-bandmax-ms")
		b.ReportMetric(trim.FractionUnder25ms*100, "TRIM-pct<=25ms")
	}
}

// BenchmarkAQMSweep regenerates the TRIM-vs-AQM interplay sweep at its
// CI scale (TRIM × four disciplines × lowest concurrency); run
// cmd/trimsim -run aqmsweep for the full protocol × concurrency cross.
func BenchmarkAQMSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAQMSweep(
			[]experiment.Protocol{experiment.ProtoTRIM},
			experiment.DefaultAQMDisciplines,
			experiment.AQMSweepConcurrency[:1],
			experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(ms(row.MeanFCT), "TRIM-"+row.Discipline+"-FCT-ms")
		}
	}
}

// BenchmarkAQMSweepSmokeCold regenerates the aqmsweep CI slice against
// an empty cell cache each iteration: every cell simulates. Pairs with
// BenchmarkAQMSweepSmokeWarm; the ns/op ratio is the end-to-end warm
// speedup of the cell-memoization layer.
func BenchmarkAQMSweepSmokeCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		store := cellcache.NewMemory()
		_, err := experiment.RunAQMSweep(
			[]experiment.Protocol{experiment.ProtoTRIM},
			experiment.DefaultAQMDisciplines,
			experiment.AQMSweepConcurrency[:1],
			experiment.Options{Seed: 1, Cache: store})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(store.Misses()), "cells-simulated")
	}
}

// BenchmarkAQMSweepSmokeWarm regenerates the same slice against a
// pre-filled cell cache: every cell is reassembled from the store and
// nothing simulates.
func BenchmarkAQMSweepSmokeWarm(b *testing.B) {
	store := cellcache.NewMemory()
	if _, err := experiment.RunAQMSweep(
		[]experiment.Protocol{experiment.ProtoTRIM},
		experiment.DefaultAQMDisciplines,
		experiment.AQMSweepConcurrency[:1],
		experiment.Options{Seed: 1, Cache: store}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.ResetStats()
		_, err := experiment.RunAQMSweep(
			[]experiment.Protocol{experiment.ProtoTRIM},
			experiment.DefaultAQMDisciplines,
			experiment.AQMSweepConcurrency[:1],
			experiment.Options{Seed: 1, Cache: store})
		if err != nil {
			b.Fatal(err)
		}
		if store.Misses() != 0 {
			b.Fatalf("warm iteration simulated %d cells", store.Misses())
		}
		b.ReportMetric(float64(store.Hits()), "cells-cached")
	}
}

// BenchmarkEq22KSweep regenerates the Section III.B threshold guideline
// validation.
func BenchmarkEq22KSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunKSweep([]float64{0.25, 1, 4}, experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Utilization*100, "util-quarterK-pct")
		b.ReportMetric(res.Rows[1].Utilization*100, "util-Kstar-pct")
		b.ReportMetric(res.Rows[2].AvgQueue, "queue-4Kstar")
	}
}

// BenchmarkAblationInheritance compares window-inheritance policies
// (blind / restart / probe-based) on the Fig. 4 workload.
func BenchmarkAblationInheritance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunInheritanceAblation(experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ms(res.Row(experiment.ProtoTCP).LPTMean), "TCP-LPT-ms")
		b.ReportMetric(ms(res.Row(experiment.ProtoGIP).LPTMean), "GIP-LPT-ms")
		b.ReportMetric(ms(res.Row(experiment.ProtoTRIM).LPTMean), "TRIM-LPT-ms")
	}
}

// BenchmarkAblationMechanisms isolates TRIM's probing vs queue control on
// the concurrency worst case.
func BenchmarkAblationMechanisms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunMechanismAblation(experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ms(res.Row(experiment.ProtoTRIM).ACT), "full-ms")
		b.ReportMetric(ms(res.Row(experiment.ProtoTRIMNoProbe).ACT), "noprobe-ms")
		b.ReportMetric(ms(res.Row(experiment.ProtoTRIMNoQueue).ACT), "noqueue-ms")
	}
}

// BenchmarkAblationAlpha sweeps the smoothed-RTT gain.
func BenchmarkAblationAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAlphaAblation([]float64{0.125, 0.25, 0.5},
			experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].AvgQueue, "AQL-alpha0.25")
	}
}

// BenchmarkAblationBuffer sweeps switch-buffer depth: TRIM's queue is
// buffer-independent while drop-tail TCP degrades.
func BenchmarkAblationBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunBufferAblation(
			[]experiment.Protocol{experiment.ProtoTCP, experiment.ProtoTRIM},
			[]int{20, 100}, experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Row(experiment.ProtoTRIM, 20).AvgQueue, "TRIM-AQL-20")
		b.ReportMetric(res.Row(experiment.ProtoTRIM, 100).AvgQueue, "TRIM-AQL-100")
		b.ReportMetric(float64(res.Row(experiment.ProtoTCP, 20).Drops), "TCP-drops-20")
	}
}

// BenchmarkExtDeadline regenerates the D2TCP deadline-incast extension.
func BenchmarkExtDeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDeadline(experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Row("DCTCP").TightMet), "DCTCP-tight-met")
		b.ReportMetric(float64(res.Row("D2TCP").TightMet), "D2TCP-tight-met")
	}
}

// BenchmarkExtDelayBased regenerates the Vegas-vs-TRIM inheritance
// comparison.
func BenchmarkExtDelayBased(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDelayBased(experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Row("Vegas").Timeouts), "Vegas-timeouts")
		b.ReportMetric(float64(res.Row("TCP-TRIM").Timeouts), "TRIM-timeouts")
	}
}

// BenchmarkExtLossRobustness regenerates the random-loss sweep at 1%.
func BenchmarkExtLossRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunLossRobustness([]float64{1}, experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ms(res.Row("TCP", 1).P99), "TCP-P99-ms")
		b.ReportMetric(ms(res.Row("TCP+SACK", 1).P99), "TCP+SACK-P99-ms")
	}
}

// BenchmarkExtJitter regenerates the RTT-jitter robustness sweep.
func BenchmarkExtJitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunJitter(
			[]time.Duration{0, 100 * time.Microsecond, 300 * time.Microsecond},
			experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].Utilization*100, "util-100us-pct")
		b.ReportMetric(res.Rows[2].Utilization*100, "util-300us-pct")
	}
}

// BenchmarkExtScatterGather regenerates the request-driven
// partition/aggregation comparison.
func BenchmarkExtScatterGather(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunScatterGather(
			[]experiment.Protocol{experiment.ProtoTCP, experiment.ProtoTRIM},
			experiment.Options{Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ms(res.Row(experiment.ProtoTCP).MeanBarrier), "TCP-barrier-ms")
		b.ReportMetric(ms(res.Row(experiment.ProtoTRIM).MeanBarrier), "TRIM-barrier-ms")
	}
}
