// Package tcptrim is a Go reproduction of "Tuning the Aggressive TCP
// Behavior for Highly Concurrent HTTP Connections in Data Center"
// (ICDCS 2016): the TCP-TRIM congestion-control policy, the baseline and
// comparison protocols (Reno, CUBIC, DCTCP, L2DCT, GIP), and the
// deterministic packet-level network simulator they run on.
//
// This root package is a facade over the implementation packages:
//
//   - internal/sim      — virtual time and the event scheduler
//   - internal/netsim   — packets, links, queues, switches, routing
//   - internal/tcp      — the TCP endpoint and the CongestionControl API
//   - internal/core     — TCP-TRIM itself (the paper's contribution)
//   - internal/cc       — DCTCP, L2DCT, CUBIC, GIP
//   - internal/httpapp  — persistent-HTTP workload driving
//   - internal/workload — the paper's traffic distributions and the
//     packet-train analyzer
//   - internal/topology — star / tree / multi-hop / fat-tree builders
//   - internal/experiment — one runner per paper table and figure
//
// A minimal simulation looks like:
//
//	sched := tcptrim.NewScheduler()
//	star := tcptrim.NewStar(sched, 5, tcptrim.DefaultStarLink(100))
//	fleet, err := tcptrim.NewFleet(star.Net, tcptrim.FleetConfig{
//		Senders:  star.Senders,
//		FrontEnd: star.FrontEnd,
//		NewCC:    func() tcptrim.CongestionControl { return tcptrim.NewTrim(tcptrim.TrimConfig{}) },
//		Base:     tcptrim.ConnConfig{LinkRate: tcptrim.Gbps},
//	})
//	// handle err, schedule responses on fleet.Servers, then:
//	sched.Run()
//
// See examples/ for complete programs and cmd/trimsim for the
// paper-reproduction harness.
package tcptrim

import (
	"tcptrim/internal/cc"
	"tcptrim/internal/core"
	"tcptrim/internal/httpapp"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
	"tcptrim/internal/trace"
)

// Simulation core.
type (
	// Scheduler is the deterministic discrete-event loop.
	Scheduler = sim.Scheduler
	// Time is a virtual-time instant (nanoseconds from simulation start).
	Time = sim.Time
	// Network is a topology of hosts, switches and links.
	Network = netsim.Network
	// LinkConfig describes one full-duplex cable.
	LinkConfig = netsim.LinkConfig
	// QueueConfig configures a drop-tail (optionally ECN-marking) queue.
	QueueConfig = netsim.QueueConfig
	// Bitrate is a link rate in bits per second.
	Bitrate = netsim.Bitrate
)

// Transport.
type (
	// Conn is one simulated TCP connection.
	Conn = tcp.Conn
	// ConnConfig configures a connection.
	ConnConfig = tcp.Config
	// Stack is the per-host transport demultiplexer.
	Stack = tcp.Stack
	// CongestionControl is the pluggable window policy.
	CongestionControl = tcp.CongestionControl
	// TrainResult reports one packet train's completion.
	TrainResult = tcp.TrainResult
	// ConnEvent is one observable connection state transition.
	ConnEvent = tcp.Event
	// Recorder captures connection events for tracing.
	Recorder = trace.Recorder
)

// TCP-TRIM (the paper's contribution) and the comparison policies.
type (
	// Trim is the TCP-TRIM policy.
	Trim = core.Trim
	// TrimConfig tunes TCP-TRIM; its zero value is the paper's setting.
	TrimConfig = core.Config
)

// Application layer and topologies.
type (
	// Fleet wires many senders to one front-end.
	Fleet = httpapp.Fleet
	// FleetConfig configures NewFleet.
	FleetConfig = httpapp.FleetConfig
	// Server drives responses onto one persistent connection.
	Server = httpapp.Server
	// Collector gathers response completions.
	Collector = httpapp.Collector
	// RPC couples a request connection with a response connection.
	RPC = httpapp.RPC
	// ScatterGather fans a request out and waits for every response.
	ScatterGather = httpapp.ScatterGather
	// Star is the paper's many-to-one topology.
	Star = topology.Star
)

// Link-rate constants.
const (
	Kbps = netsim.Kbps
	Mbps = netsim.Mbps
	Gbps = netsim.Gbps
)

// NewScheduler returns an empty event scheduler at time zero.
func NewScheduler() *Scheduler { return sim.NewScheduler() }

// NewNetwork returns an empty network driven by sched.
func NewNetwork(sched *Scheduler) *Network { return netsim.NewNetwork(sched) }

// NewConn creates a TCP connection between two stacks.
func NewConn(cfg ConnConfig) (*Conn, error) { return tcp.NewConn(cfg) }

// NewStack attaches a transport stack to a host.
func NewStack(net *Network, host *netsim.Host) *Stack { return tcp.NewStack(net, host) }

// NewTrim returns a TCP-TRIM policy (zero cfg = paper settings).
func NewTrim(cfg TrimConfig) *Trim { return core.New(cfg) }

// NewReno returns the baseline Reno policy (the paper's "TCP").
func NewReno() CongestionControl { return tcp.NewReno() }

// NewCubic returns a CUBIC policy (the testbed's Linux default).
func NewCubic() CongestionControl { return cc.NewCubic() }

// NewDCTCP returns a DCTCP policy (requires ECN-enabled connection and
// marking queues).
func NewDCTCP() CongestionControl { return cc.NewDCTCP() }

// NewL2DCT returns an L2DCT policy.
func NewL2DCT() CongestionControl { return cc.NewL2DCT() }

// NewGIP returns the GIP restart-at-minimum-window baseline.
func NewGIP() CongestionControl { return cc.NewGIP() }

// NewVegas returns a TCP Vegas policy (delay-based related work).
func NewVegas() CongestionControl { return cc.NewVegas() }

// NewD2TCP returns a deadline-aware DCTCP policy for a flow of totalBytes
// due by deadline (requires ECN like DCTCP).
func NewD2TCP(deadline Time, totalBytes int) CongestionControl {
	return cc.NewD2TCP(deadline, totalBytes)
}

// NewFleet wires one persistent connection per sender to the front-end.
func NewFleet(net *Network, cfg FleetConfig) (*Fleet, error) {
	return httpapp.NewFleet(net, cfg)
}

// NewStar builds the many-to-one star topology.
func NewStar(sched *Scheduler, senders int, link LinkConfig) *Star {
	return topology.NewStar(sched, senders, link)
}

// DefaultStarLink is the paper's 1 Gbps / 50 µs star link with the given
// buffer size in packets.
func DefaultStarLink(bufferPackets int) LinkConfig {
	return topology.DefaultStarLink(bufferPackets)
}

// NewRecorder returns a trace recorder to pass as ConnConfig.Observer
// (0 = default capacity).
func NewRecorder(capacity int) *Recorder { return trace.NewRecorder(capacity) }

// GuidelineK evaluates the paper's Eq. 22 threshold guideline for a
// bottleneck of the given capacity (packets per second) and queue-free
// RTT.
var GuidelineK = core.GuidelineK

// GuidelineKForLink is GuidelineK for a link rate and wire packet size.
var GuidelineKForLink = core.GuidelineKForLink
