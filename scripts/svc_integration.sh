#!/usr/bin/env bash
# End-to-end check of the trimsvc experiment service, runnable locally
# and from CI: boot the service on a free port, submit a fig4 run,
# stream its SSE events, compare the result byte-for-byte against a
# direct trimsim run of the same spec, then resubmit and prove the
# content-addressed cache answered without a second simulation.
set -euo pipefail

workdir=$(mktemp -d)
cleanup() {
	[ -n "${svc_pid:-}" ] && kill "$svc_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT

echo "--- build"
go build -o "$workdir/trimsvc" ./cmd/trimsvc
go build -o "$workdir/trimsim" ./cmd/trimsim

echo "--- boot trimsvc"
"$workdir/trimsvc" -addr 127.0.0.1:0 >"$workdir/svc.log" 2>&1 &
svc_pid=$!
base=""
for _ in $(seq 1 100); do
	base=$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$workdir/svc.log")
	[ -n "$base" ] && break
	kill -0 "$svc_pid" || { cat "$workdir/svc.log"; echo "trimsvc exited early"; exit 1; }
	sleep 0.1
done
[ -n "$base" ] || { cat "$workdir/svc.log"; echo "trimsvc never listened"; exit 1; }
echo "service at $base"

echo "--- registry lists fig4"
curl -fsS "$base/v1/runners" | jq -e '.runners[] | select(.id == "fig4")' >/dev/null

echo "--- submit fig4"
run1=$(curl -fsS -X POST "$base/v1/runs" -d '{"runner":"fig4"}')
id1=$(echo "$run1" | jq -r .id)
[ "$(echo "$run1" | jq -r .cached)" = "false" ] || { echo "first run claims cached"; exit 1; }

echo "--- wait for completion"
for _ in $(seq 1 300); do
	state=$(curl -fsS "$base/v1/runs/$id1" | jq -r .state)
	case "$state" in
	done) break ;;
	failed | canceled)
		curl -fsS "$base/v1/runs/$id1" | jq .
		exit 1
		;;
	esac
	sleep 0.2
done
[ "$state" = "done" ] || { echo "run stuck in $state"; exit 1; }

echo "--- stream events (replay after completion)"
curl -fsS -N --max-time 30 "$base/v1/runs/$id1/events" >"$workdir/events" || true
grep -q '"kind":"sample"' "$workdir/events" || { echo "no sample events"; exit 1; }
grep -q '"kind":"fct"' "$workdir/events" || { echo "no fct event"; exit 1; }
grep -q '"kind":"done"' "$workdir/events" || { echo "no terminal done event"; exit 1; }
echo "$(grep -c '^data: ' "$workdir/events") SSE events"

echo "--- result is byte-identical to a direct trimsim run"
curl -fsS "$base/v1/runs/$id1/result" >"$workdir/svc.out"
"$workdir/trimsim" -run fig4 >"$workdir/direct.out"
cmp "$workdir/svc.out" "$workdir/direct.out"

echo "--- resubmit: cache answers without a second simulation"
sims_before=$(curl -fsS "$base/v1/stats" | jq -r .simulations)
run2=$(curl -fsS -X POST "$base/v1/runs" -d '{"runner":"fig4"}')
id2=$(echo "$run2" | jq -r .id)
[ "$(echo "$run2" | jq -r .cached)" = "true" ] || { echo "resubmission missed the cache"; exit 1; }
sims_after=$(curl -fsS "$base/v1/stats" | jq -r .simulations)
[ "$sims_before" = "$sims_after" ] || { echo "cache hit ran a simulation ($sims_before -> $sims_after)"; exit 1; }
curl -fsS "$base/v1/runs/$id2/result" >"$workdir/cached.out"
cmp "$workdir/cached.out" "$workdir/direct.out"

echo "--- graceful shutdown on SIGTERM"
kill -TERM "$svc_pid"
for _ in $(seq 1 100); do
	kill -0 "$svc_pid" 2>/dev/null || break
	sleep 0.1
done
if kill -0 "$svc_pid" 2>/dev/null; then
	echo "trimsvc did not exit on SIGTERM"
	exit 1
fi
svc_pid=""

echo "PASS"
