package sim

import (
	"testing"
	"time"
)

// Differential test: the timing-wheel scheduler must produce exactly the
// same dispatch trace as the pre-wheel single-heap scheduler for any
// stream of schedule / cancel / reset / nested-schedule / advance
// operations. refSched below is a faithful transcription of the old core
// — a min-heap on (at, seq) with lazy cancellation — kept test-only as
// the ordering oracle.

// refEventState mirrors the old lazy-cancellation lifecycle.
type refEventState uint8

const (
	refScheduled refEventState = iota
	refCancelled
	refDone
)

type refEvent struct {
	at    Time
	seq   uint64
	fn    func()
	state refEventState
}

// refSched is the old scheduler: one binary min-heap, lazy cancellation,
// FIFO seq ordering for simultaneous events.
type refSched struct {
	heap []*refEvent
	now  Time
	seq  uint64
	live int
}

func (s *refSched) After(d time.Duration, fn func()) *refEvent {
	if d < 0 {
		d = 0
	}
	ev := &refEvent{at: s.now.Add(d), seq: s.seq, fn: fn}
	s.seq++
	s.push(ev)
	s.live++
	return ev
}

func (s *refSched) stop(ev *refEvent) bool {
	if ev == nil || ev.state != refScheduled {
		return false
	}
	ev.state = refCancelled
	ev.fn = nil
	s.live--
	return true
}

// reset mirrors Timer.Reset as a Stop+After pair reusing the callback: it
// is the definitional equivalence the differential trace then verifies.
func (s *refSched) reset(ev *refEvent, d time.Duration, fn func()) (*refEvent, bool) {
	if ev == nil || ev.state != refScheduled {
		return ev, false
	}
	s.stop(ev)
	return s.After(d, fn), true
}

func (s *refSched) peek() *refEvent {
	for len(s.heap) > 0 {
		if s.heap[0].state == refScheduled {
			return s.heap[0]
		}
		s.pop()
	}
	return nil
}

func (s *refSched) step() {
	ev := s.pop()
	s.now = ev.at
	s.live--
	fn := ev.fn
	ev.state = refDone
	ev.fn = nil
	fn()
}

func (s *refSched) runUntil(t Time) {
	for {
		ev := s.peek()
		if ev == nil {
			break
		}
		if ev.at > t {
			s.now = t
			return
		}
		s.step()
	}
	if s.now < t && t != End && s.live == 0 {
		s.now = t
	}
}

func (s *refSched) run() { s.runUntil(End) }

func refLess(a, b *refEvent) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (s *refSched) push(ev *refEvent) {
	s.heap = append(s.heap, ev)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !refLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *refSched) pop() *refEvent {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	s.heap = h[:n]
	h = s.heap
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && refLess(h[c+1], h[c]) {
			c++
		}
		if !refLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}

// --- Differential driver ------------------------------------------------

type traceEntry struct {
	id int
	at Time
}

// diffProgram decodes a byte stream into a deterministic operation
// program and replays it against both schedulers, comparing dispatch
// traces and every Stop/Reset verdict.
func runDifferential(t *testing.T, data []byte) {
	t.Helper()
	const maxOps = 2048

	wheelSched := NewScheduler()
	ref := &refSched{}

	var wheelTrace, refTrace []traceEntry

	type timerPair struct {
		wt  Timer
		rt  *refEvent
		rfn func()
	}
	var timers []timerPair

	pos := 0
	next := func() (byte, bool) {
		if pos >= len(data) {
			return 0, false
		}
		b := data[pos]
		pos++
		return b, true
	}
	next16 := func() (uint16, bool) {
		hi, ok := next()
		if !ok {
			return 0, false
		}
		lo, ok := next()
		if !ok {
			return uint16(hi), true
		}
		return uint16(hi)<<8 | uint16(lo), true
	}

	nextID := 0
	// schedule registers one callback pair appending (id, now) on each
	// side; when nest is positive the callback also schedules a child.
	var schedule func(d, nest time.Duration) timerPair
	schedule = func(d, nest time.Duration) timerPair {
		id := nextID
		nextID++
		var rfn func()
		wfn := func() {
			wheelTrace = append(wheelTrace, traceEntry{id, wheelSched.Now()})
			if nest > 0 {
				schedule(nest, 0)
			}
		}
		// The paired ref callback must replicate the wheel callback's
		// scheduling side effects against the ref scheduler. schedule()
		// itself registers on both sides, so only one side may call it;
		// the ref callback mirrors the trace append alone and relies on
		// the wheel callback running at the same dispatch position to
		// have created the child pair — which only holds if traces
		// agree, the property under test. To avoid that circularity the
		// child is scheduled independently on each side.
		rfn = func() {
			refTrace = append(refTrace, traceEntry{id, ref.now})
			if nest > 0 {
				childID := id // child ids are derived, not allocated
				_ = childID
				cid := -id - 1000000 // stable derived id for the nested child
				ref.After(nest, func() {
					refTrace = append(refTrace, traceEntry{cid, ref.now})
				})
			}
		}
		if nest > 0 {
			// Re-bind the wheel callback so its child uses the same
			// derived id as the ref child.
			cid := -id - 1000000
			wfn = func() {
				wheelTrace = append(wheelTrace, traceEntry{id, wheelSched.Now()})
				wheelSched.After(nest, func() {
					wheelTrace = append(wheelTrace, traceEntry{cid, wheelSched.Now()})
				})
			}
		}
		p := timerPair{wt: wheelSched.After(d, wfn), rt: ref.After(d, rfn), rfn: rfn}
		timers = append(timers, p)
		return p
	}

	for op := 0; op < maxOps; op++ {
		b, ok := next()
		if !ok {
			break
		}
		switch b % 6 {
		case 0: // near-future schedule
			us, ok := next16()
			if !ok {
				break
			}
			schedule(time.Duration(us)*time.Microsecond, 0)
		case 1: // stop
			idx, ok := next()
			if !ok || len(timers) == 0 {
				break
			}
			p := &timers[int(idx)%len(timers)]
			wOK := p.wt.Stop()
			rOK := ref.stop(p.rt)
			if wOK != rOK {
				t.Fatalf("op %d: Stop verdicts diverge: wheel=%v ref=%v", op, wOK, rOK)
			}
		case 2: // reset
			idx, ok := next()
			if !ok || len(timers) == 0 {
				break
			}
			us, ok := next16()
			if !ok {
				break
			}
			p := &timers[int(idx)%len(timers)]
			d := time.Duration(us) * time.Microsecond
			wOK := p.wt.Reset(d)
			var rOK bool
			p.rt, rOK = ref.reset(p.rt, d, p.rfn)
			if wOK != rOK {
				t.Fatalf("op %d: Reset verdicts diverge: wheel=%v ref=%v", op, wOK, rOK)
			}
		case 3: // nested schedule
			us, ok := next16()
			if !ok {
				break
			}
			us2, ok := next16()
			if !ok {
				break
			}
			schedule(time.Duration(us)*time.Microsecond,
				time.Duration(us2)*time.Microsecond+time.Nanosecond)
		case 4: // advance both clocks by the same horizon
			us, ok := next16()
			if !ok {
				break
			}
			horizon := wheelSched.Now().Add(time.Duration(us) * time.Microsecond)
			wheelSched.RunUntil(horizon)
			ref.runUntil(horizon)
			if wheelSched.Now() != ref.now {
				t.Fatalf("op %d: clocks diverge after RunUntil(%v): wheel=%v ref=%v",
					op, horizon, wheelSched.Now(), ref.now)
			}
		case 5: // far-future schedule (exercises the overflow heap)
			secs, ok := next()
			if !ok {
				break
			}
			schedule(time.Duration(secs)*time.Second, 0)
		}
	}

	wheelSched.Run()
	ref.run()

	if len(wheelTrace) != len(refTrace) {
		t.Fatalf("trace lengths diverge: wheel=%d ref=%d", len(wheelTrace), len(refTrace))
	}
	for i := range wheelTrace {
		if wheelTrace[i] != refTrace[i] {
			t.Fatalf("traces diverge at %d: wheel=%+v ref=%+v", i, wheelTrace[i], refTrace[i])
		}
	}
	if wheelSched.Len() != ref.live {
		t.Fatalf("live counts diverge after drain: wheel=%d ref=%d", wheelSched.Len(), ref.live)
	}
}

// FuzzScheduler feeds random operation streams through the wheel and the
// reference heap scheduler in lockstep; any (time, seq) dispatch
// divergence, mismatched Stop/Reset verdict, or clock drift fails.
func FuzzScheduler(f *testing.F) {
	f.Add([]byte{0, 0, 10})
	f.Add([]byte{0, 0, 10, 0, 0, 10, 1, 0, 4, 0, 200})
	f.Add([]byte{2, 0, 0, 50, 3, 0, 5, 0, 3, 5, 200, 4, 255, 255})
	f.Add([]byte{5, 30, 0, 1, 0, 4, 255, 255, 2, 0, 0, 1, 4, 255, 255, 4, 255, 255})
	f.Add([]byte{3, 0, 0, 0, 0, 3, 0, 0, 0, 0, 4, 0, 0, 1, 1, 2, 2, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		runDifferential(t, data)
	})
}

// TestSchedulerDifferentialRandom drives the same lockstep comparison
// with seeded pseudo-random programs so plain `go test` covers the
// differential property without the fuzzer.
func TestSchedulerDifferentialRandom(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := NewRand(seed)
		n := 32 + rng.Intn(480)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		runDifferential(t, data)
	}
}

// TestSchedulerDifferentialInvariants reruns a slice of the random
// programs with invariant checks armed, so the accounting assertions in
// dispatch cover the differential workload too.
func TestSchedulerDifferentialInvariants(t *testing.T) {
	SetInvariantChecks(true)
	defer SetInvariantChecks(false)
	for seed := int64(1000); seed < 1050; seed++ {
		rng := NewRand(seed)
		data := make([]byte, 256)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		runDifferential(t, data)
	}
}
