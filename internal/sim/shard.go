package sim

import (
	"runtime"
	"time"
)

// defaultParallel reports whether window segments should default to
// goroutine fan-out: only worthwhile with more than one core available.
func defaultParallel() bool { return runtime.GOMAXPROCS(0) > 1 }

// Conservative parallel discrete-event execution (PDES).
//
// A ShardGroup partitions a simulation into shards, each owning a full
// Scheduler (timing wheel + overflow heap). The group advances virtual
// time in windows [W, W+L): W is the globally earliest pending event
// (each shard answers in O(1) via its wheel's findMin) and L is the
// lookahead — the minimum propagation delay of any cross-shard link. An
// event executing at t < W+L can influence another shard no earlier than
// t+delay >= W+L, so every shard may safely dispatch all of its events
// below the window end with no further coordination: the classic
// conservative synchronization argument, with the window doubling as the
// deadlock-avoidance mechanism (each round strictly advances W by at
// least one dispatched event, and W never regresses, so no shard ever
// waits on a cycle of empty horizons).
//
// Determinism is exact, not just statistical: the merged dispatch order
// reproduces the single-core total order (at, seq) bit for bit. The
// subtlety is seq assignment — on one core the counter numbers armings
// in global execution order, which a parallel window cannot observe.
// Each shard therefore numbers window-local armings provisionally
// (base+k in shard-local call order) and logs every consumption; at the
// window barrier a k-way merge replays the shards' exec streams in
// global (at, seq) order — resolving provisional keys through a fixup
// table as it goes — and rebinds every surviving arming, in merged
// order, to the shared counter. The result is the exact numbering a
// single core would have produced, so ties at equal instants break
// identically and figure outputs are byte-identical at any shard count.
//
// Cross-shard handoff is Post: during a window it is logged (one
// provisional number, no shared mutation, zero allocations); the barrier
// applies it — payload transfer first, then the destination event filed
// under its definitive number. Outside windows (setup, solo runs, sync
// events) Post applies immediately off the shared counter, which is
// exactly the single-core call order.
//
// Two fast paths keep the sequential overhead near zero:
//
//   - Solo: when only one shard has events below the window end, it runs
//     in shared mode (no logging, no merge) until another shard could
//     wake: the earliest foreign pending event, the horizon, or the
//     earliest arrival it posts itself (minPost). Single-shard groups
//     spend their whole life here.
//
//   - Sync events: experiment logic that must observe exact global state
//     (watch loops polling in-flight counts, invariant sweeps) registers
//     through SyncAt/SyncAfter. The window containing a sync point stops
//     every shard just short of its (at, seq) key, merges, then runs the
//     sync event alone single-threaded — it sees precisely the state a
//     single core would have at that instant, may Stop the group, and
//     consumes numbering identically.
type ShardGroup struct {
	shards    []*Scheduler
	lookahead Time
	seq       uint64 // shared flat sequence counter
	stopped   bool
	running   bool
	parallel  bool
	syncs     []syncPoint
	// minPost tracks the earliest cross-shard arrival posted during a
	// solo run; the solo loop stops strictly before it so the windowed
	// path arbitrates any ties.
	minPost Time

	// Barrier-merge scratch, reused across windows so steady-state
	// windows allocate nothing.
	fixup   [][]uint64
	execCur []int
	callCur []int
	// Parallel fan-out machinery, built once: segFns are the per-shard
	// segment thunks (spawning a prebuilt func value allocates nothing),
	// limAt/limSeq carry the window limit to them, done is the barrier.
	segFns []func()
	limAt  Time
	limSeq uint64
	done   chan int
}

// syncPoint registers a pending sync event by its exact firing key.
type syncPoint struct {
	at    Time
	seq   uint64
	shard int
}

// NewShardGroup creates k empty shard schedulers sharing one sequence
// counter. Lookahead defaults to 1ns; callers with cross-shard links set
// the real value with SetLookahead before running.
func NewShardGroup(k int) *ShardGroup {
	if k < 1 {
		k = 1
	}
	g := &ShardGroup{
		lookahead: 1,
		minPost:   End,
		parallel:  defaultParallel(),
	}
	g.shards = make([]*Scheduler, k)
	for i := range g.shards {
		g.shards[i] = &Scheduler{group: g, shardIdx: i}
	}
	g.fixup = make([][]uint64, k)
	g.execCur = make([]int, k)
	g.callCur = make([]int, k)
	g.done = make(chan int, k)
	g.segFns = make([]func(), k)
	for i := range g.shards {
		s := g.shards[i]
		g.segFns[i] = func() {
			s.runSegment(g.limAt, g.limSeq)
			g.done <- 1
		}
	}
	return g
}

// Shard returns shard i's scheduler.
func (g *ShardGroup) Shard(i int) *Scheduler { return g.shards[i] }

// NumShards returns the number of shards in the group.
func (g *ShardGroup) NumShards() int { return len(g.shards) }

// SetLookahead sets the conservative window width: the minimum
// cross-shard propagation delay. It must be positive.
func (g *ShardGroup) SetLookahead(d Time) {
	if d <= 0 {
		panic("sim: shard lookahead must be positive")
	}
	g.lookahead = d
}

// Lookahead returns the conservative window width.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// SetParallel forces window segments onto goroutines (true) or inline
// sequential execution (false). The default follows GOMAXPROCS: on a
// single-core host parallel dispatch only adds synchronization cost, and
// the merged result is bit-identical either way.
func (g *ShardGroup) SetParallel(on bool) { g.parallel = on }

// Stop halts the group's run loop after the currently executing event.
func (g *ShardGroup) Stop() { g.stopped = true }

// Len returns the total number of live pending events across shards.
func (g *ShardGroup) Len() int {
	n := 0
	for _, s := range g.shards {
		n += s.live
	}
	return n
}

// Fired returns the total number of events executed across shards.
func (g *ShardGroup) Fired() uint64 {
	var n uint64
	for _, s := range g.shards {
		n += s.fired
	}
	return n
}

// Now returns the frontier virtual time: the maximum shard clock (shard
// clocks may trail between barriers; they are equalized at sync points,
// horizons, and stop).
func (g *ShardGroup) Now() Time {
	t := Start
	for _, s := range g.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// takeSeq draws the next number off the shared counter. Only reachable
// from single-threaded phases (setup, solo, sync, barrier): parallel
// segments run in logging mode, which numbers locally.
func (g *ShardGroup) takeSeq() uint64 {
	v := g.seq
	g.seq++
	return v
}

// SyncAt schedules fn at absolute instant t on shard s and registers it
// as a synchronization point: it will execute alone, single-threaded,
// with every shard quiesced at exactly the global state a single core
// would present — so it may read cross-shard state and call Stop.
func (g *ShardGroup) SyncAt(s *Scheduler, t Time, fn func()) (Timer, error) {
	if s.logging {
		panic("sim: SyncAt from inside a parallel shard segment")
	}
	tm, err := s.At(t, fn)
	if err != nil {
		return tm, err
	}
	g.syncs = append(g.syncs, syncPoint{at: t, seq: tm.ev.seq, shard: s.shardIdx})
	return tm, nil
}

// SyncAfter schedules fn d after shard s's current instant as a sync
// point (see SyncAt). Negative d is clamped to zero.
func (g *ShardGroup) SyncAfter(s *Scheduler, d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	tm, err := g.SyncAt(s, s.now.Add(d), fn)
	if err != nil {
		return Timer{}
	}
	return tm
}

// Run executes events until every shard drains or Stop is called.
func (g *ShardGroup) Run() { g.RunUntil(End) }

// RunUntil executes events in the exact single-core total order until
// every queue drains, the horizon t passes, or Stop is called. As with
// Scheduler.RunUntil, events at t inclusive run, and on a non-End
// horizon all shard clocks are left at t.
func (g *ShardGroup) RunUntil(t Time) {
	if g.running {
		return
	}
	g.running = true
	g.stopped = false
	defer func() { g.running = false }()

	for !g.stopped {
		// Global minimum pending instant; O(shards) wheel findMin calls.
		w := End
		for _, s := range g.shards {
			if pt := s.PeekTime(); pt < w {
				w = pt
			}
		}
		if w == End || w > t {
			break
		}
		hi := w + g.lookahead
		if hi < w { // saturate on overflow
			hi = End
		}
		if t != End && hi > t+1 {
			hi = t + 1
		}

		// A registered sync point is a hard fence for the solo fast
		// path: a sync callback may arm events on any shard (the hybrid
		// fleet's driver materializes connections and releases their
		// trains from one), and runSolo's stop limit is computed from
		// foreign pending events before dispatch — it cannot see
		// arrivals a mid-run sync creates, so the active shard's clock
		// could run past them and a later cross-shard post would land in
		// its past. Solo therefore stops strictly before the earliest
		// sync instant, and a window that reaches it takes the full
		// barrier path, where dispatchSync quiesces and equalizes every
		// shard at the sync instant before the callback runs. Stale
		// registrations (cancelled timers) cost at most one windowed
		// pass each; nextSync/dispatchSync discard them there.
		syncAt := End
		for _, sp := range g.syncs {
			if sp.at < syncAt {
				syncAt = sp.at
			}
		}

		// Solo fast path: a single active shard below the window end
		// runs in exact shared mode as far as conservatism allows.
		active, second := -1, End
		solo := syncAt >= hi
		if syncAt < second {
			second = syncAt
		}
		for i, s := range g.shards {
			pt := s.PeekTime()
			if pt >= hi {
				if pt < second {
					second = pt
				}
				continue
			}
			if active >= 0 {
				solo = false
				if pt < second {
					second = pt
				}
				continue
			}
			active = i
		}
		if solo {
			g.runSolo(g.shards[active], second, t)
			continue
		}
		g.runWindow(w, hi)
	}

	if !g.stopped && t != End {
		for _, s := range g.shards {
			s.advanceTo(t)
		}
	}
}

// runSolo dispatches the only active shard in shared mode until the
// first instant any other shard could act: the earliest foreign pending
// event (second), the horizon, or the earliest arrival this run posts
// cross-shard. Shared mode draws the shared counter in program order, so
// this path is exactly the single-core execution.
func (g *ShardGroup) runSolo(s *Scheduler, second Time, t Time) {
	end := second
	if t != End && end > t+1 {
		end = t + 1
	}
	g.minPost = End
	for !g.stopped {
		ev := s.peekEvent()
		if ev == nil {
			return
		}
		lim := end
		if g.minPost < lim {
			lim = g.minPost
		}
		if ev.at >= lim {
			return
		}
		s.dispatch(ev)
	}
}

// runWindow executes one conservative window [w, hi): every shard
// dispatches its events below the limit on its own (optionally parallel)
// segment under provisional numbering, then the barrier merge restores
// the global numbering and applies cross-shard posts. If a sync point
// falls inside the window, the limit stops just short of it and the sync
// event then runs alone against the exact quiesced global state.
func (g *ShardGroup) runWindow(w, hi Time) {
	limAt, limSeq := hi, uint64(0)
	sync := g.nextSync(w)
	if sync >= 0 && g.syncs[sync].at < hi {
		limAt, limSeq = g.syncs[sync].at, g.syncs[sync].seq
	} else {
		sync = -1
	}

	base := g.seq
	for _, s := range g.shards {
		s.logging = true
		s.seq = base
		s.calls = s.calls[:0]
		s.execs = s.execs[:0]
	}
	if g.parallel {
		g.runSegmentsParallel(limAt, limSeq)
	} else {
		for _, s := range g.shards {
			s.runSegment(limAt, limSeq)
		}
	}
	for _, s := range g.shards {
		s.logging = false
	}
	g.merge(base)

	if sync >= 0 {
		g.dispatchSync(sync)
	}
}

// runSegmentsParallel fans the window segments out to one goroutine per
// shard. Segments touch only shard-local state (logging mode defers all
// cross-shard effects), so the only synchronization is the barrier. The
// thunks and window-limit fields are prebuilt/reused: a steady-state
// window performs no allocations.
func (g *ShardGroup) runSegmentsParallel(limAt Time, limSeq uint64) {
	g.limAt, g.limSeq = limAt, limSeq
	for _, fn := range g.segFns {
		go fn()
	}
	for range g.shards {
		<-g.done
	}
}

// merge interleaves the shards' window exec streams into the global
// (at, seq) total order, rebinding every logged consumption — local
// armings and cross-shard posts alike — to definitive numbers off the
// shared counter in exactly the order a single core would have drawn
// them. Provisional keys (>= base) resolve through the per-shard fixup
// tables, which fill strictly ahead of need: an exec's arming is always
// logged by an earlier exec of the same shard (or predates the window),
// so its definitive number is bound before the exec can surface as a
// stream head.
func (g *ShardGroup) merge(base uint64) {
	for i := range g.shards {
		g.fixup[i] = g.fixup[i][:0]
		g.execCur[i] = 0
		g.callCur[i] = 0
	}
	for {
		best := -1
		var bestAt Time
		var bestSeq uint64
		for i, s := range g.shards {
			c := g.execCur[i]
			if c >= len(s.execs) {
				continue
			}
			e := s.execs[c]
			rs := e.seq
			if rs >= base {
				rs = g.fixup[i][rs-base]
			}
			if best < 0 || e.at < bestAt || (e.at == bestAt && rs < bestSeq) {
				best, bestAt, bestSeq = i, e.at, rs
			}
		}
		if best < 0 {
			break
		}
		s := g.shards[best]
		e := s.execs[g.execCur[best]]
		g.execCur[best]++
		for n := int32(0); n < e.nCalls; n++ {
			rec := &s.calls[g.callCur[best]]
			g.callCur[best]++
			gseq := g.takeSeq()
			g.fixup[best] = append(g.fixup[best], gseq)
			if rec.post {
				if rec.xfer != nil {
					rec.xfer()
				}
				rec.dst.scheduleSeq(rec.at, rec.fn, gseq)
			} else if rec.ev.gen == rec.gen && rec.ev.state == evScheduled {
				s.rewriteSeq(rec.ev, gseq)
			}
			// A record that no longer stands (its event fired, was
			// cancelled, or re-armed within the window) still consumed
			// its number — a single core burned one there too.
		}
	}
	if invariantChecks.Load() {
		for i, s := range g.shards {
			if g.callCur[i] != len(s.calls) {
				panic("sim: shard merge did not consume every logged call")
			}
		}
	}
	// Drop closure references so the scratch slices don't pin payloads
	// until the next window reuses them.
	for _, s := range g.shards {
		for i := range s.calls {
			s.calls[i] = callRec{}
		}
	}
}

// nextSync returns the index of the earliest registered sync point,
// lazily discarding entries already passed by the window start.
func (g *ShardGroup) nextSync(w Time) int {
	best := -1
	for i := 0; i < len(g.syncs); {
		sp := g.syncs[i]
		if sp.at < w {
			g.syncs[i] = g.syncs[len(g.syncs)-1]
			g.syncs = g.syncs[:len(g.syncs)-1]
			continue
		}
		if best < 0 || sp.at < g.syncs[best].at ||
			(sp.at == g.syncs[best].at && sp.seq < g.syncs[best].seq) {
			best = i
		}
		i++
	}
	return best
}

// dispatchSync runs one sync event alone in shared mode. All events with
// smaller keys have executed and all shard clocks are equalized to its
// instant first, so the callback observes exactly the global state a
// single core would have. A registration whose event no longer heads its
// shard (cancelled or re-armed since) is simply dropped.
func (g *ShardGroup) dispatchSync(idx int) {
	sp := g.syncs[idx]
	g.syncs[idx] = g.syncs[len(g.syncs)-1]
	g.syncs = g.syncs[:len(g.syncs)-1]

	owner := g.shards[sp.shard]
	ev := owner.peekEvent()
	if ev == nil || ev.at != sp.at || ev.seq != sp.seq {
		return
	}
	for _, s := range g.shards {
		s.advanceTo(sp.at)
	}
	owner.dispatch(ev)
}
