package sim

import (
	"testing"
	"time"
)

// Timer.Reset re-arms in place. These tests pin its generation safety:
// a fired, stopped, or zero handle must be inert, and a reset must never
// touch an event recycled for a different callback.

func TestTimerResetMovesDeadline(t *testing.T) {
	s := NewScheduler()
	var firedAt []Time
	tm := s.After(time.Millisecond, func() { firedAt = append(firedAt, s.Now()) })
	if !tm.Reset(5 * time.Millisecond) {
		t.Fatal("Reset on pending timer = false")
	}
	if !tm.Pending() {
		t.Fatal("timer not pending after Reset")
	}
	s.Run()
	if len(firedAt) != 1 {
		t.Fatalf("fired %d times, want 1", len(firedAt))
	}
	if firedAt[0] != At(5*time.Millisecond) {
		t.Errorf("fired at %v, want 5ms", firedAt[0])
	}
}

func TestTimerResetEarlier(t *testing.T) {
	s := NewScheduler()
	fired := Time(-1)
	tm := s.After(10*time.Millisecond, func() { fired = s.Now() })
	s.RunUntil(At(2 * time.Millisecond))
	if !tm.Reset(time.Millisecond) {
		t.Fatal("Reset on pending timer = false")
	}
	s.Run()
	if fired != At(3*time.Millisecond) {
		t.Errorf("fired at %v, want 3ms", fired)
	}
}

func TestTimerResetZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Reset(time.Millisecond) {
		t.Error("Reset on zero Timer = true")
	}
}

func TestTimerResetAfterStopInert(t *testing.T) {
	s := NewScheduler()
	tm := s.After(time.Millisecond, func() { t.Error("stopped timer fired") })
	if !tm.Stop() {
		t.Fatal("Stop = false")
	}
	if tm.Reset(time.Millisecond) {
		t.Error("Reset after Stop = true")
	}
	s.Run()
}

func TestTimerResetAfterFireInert(t *testing.T) {
	s := NewScheduler()
	count := 0
	tm := s.After(time.Millisecond, func() { count++ })
	s.Run()
	if tm.Reset(time.Millisecond) {
		t.Error("Reset after fire = true")
	}
	s.Run()
	if count != 1 {
		t.Errorf("fired %d times, want 1", count)
	}
}

func TestTimerResetGenerationAliasing(t *testing.T) {
	// After the timer fires, its event is recycled for a different
	// callback. The stale handle's Reset must not re-slot the new
	// occupant.
	s := NewScheduler()
	old := s.After(time.Millisecond, func() {})
	s.Run()

	fired := Time(-1)
	fresh := s.After(time.Millisecond, func() { fired = s.Now() })
	if old.Reset(time.Hour) {
		t.Error("stale handle Reset returned true")
	}
	if !fresh.Pending() {
		t.Fatal("stale Reset disturbed the recycled event")
	}
	s.Run()
	if fired != At(time.Millisecond+time.Millisecond) {
		t.Errorf("recycled event fired at %v, want 2ms", fired)
	}
}

func TestTimerResetFromInsideCallbackInert(t *testing.T) {
	// The event is released before its callback runs, so a callback
	// resetting its own timer must see false (matching Stop).
	s := NewScheduler()
	var tm Timer
	reset := true
	tm = s.After(time.Millisecond, func() { reset = tm.Reset(time.Millisecond) })
	s.Run()
	if reset {
		t.Error("Reset from inside the firing callback returned true")
	}
}

func TestTimerResetMatchesStopAfterOrdering(t *testing.T) {
	// Reset consumes one sequence number, exactly like Stop+After, so a
	// reset timer runs after an event scheduled earlier for the same
	// instant and before one scheduled later.
	run := func(reset bool) []int {
		s := NewScheduler()
		var got []int
		tm := s.After(time.Millisecond, func() { got = append(got, 0) })
		s.After(2*time.Millisecond, func() { got = append(got, 1) })
		if reset {
			if !tm.Reset(2 * time.Millisecond) {
				t.Fatal("Reset = false")
			}
		} else {
			tm.Stop()
			s.After(2*time.Millisecond, func() { got = append(got, 0) })
		}
		s.After(2*time.Millisecond, func() { got = append(got, 2) })
		s.Run()
		return got
	}
	a, b := run(true), run(false)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("lengths: reset=%d stop+after=%d, want 3", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverges: reset=%v stop+after=%v", a, b)
		}
	}
	if want := []int{1, 0, 2}; a[0] != want[0] || a[1] != want[1] || a[2] != want[2] {
		t.Errorf("order = %v, want %v", a, want)
	}
}

func TestTimerResetNegativeClampsToNow(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(time.Millisecond, func() {
		tm := s.After(time.Hour, func() { got = append(got, 2) })
		s.After(0, func() { got = append(got, 1) })
		if !tm.Reset(-time.Second) {
			t.Error("Reset with negative d = false")
		}
	})
	s.Run()
	// The reset event lands at the current instant with a later seq than
	// the zero-delay event scheduled just before it.
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("order = %v, want [1 2]", got)
	}
}

func TestTimerResetAcrossWheelAndOverflow(t *testing.T) {
	// Reset must re-file events across containers: near-future (wheel)
	// to far-future (overflow heap) and back, without losing accounting.
	SetInvariantChecks(true)
	defer SetInvariantChecks(false)
	s := NewScheduler()
	fired := Time(-1)
	tm := s.After(time.Millisecond, func() { fired = s.Now() })
	if !tm.Reset(time.Hour) { // far beyond the wheel span: overflow heap
		t.Fatal("Reset to far future = false")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.CheckAccounting()
	if !tm.Reset(2 * time.Millisecond) { // back into the wheel
		t.Fatal("Reset back to near future = false")
	}
	s.CheckAccounting()
	s.Run()
	if fired != At(2*time.Millisecond) {
		t.Errorf("fired at %v, want 2ms", fired)
	}
	if s.Len() != 0 {
		t.Errorf("Len after run = %d, want 0", s.Len())
	}
}

func TestTimerResetStopAfterReset(t *testing.T) {
	s := NewScheduler()
	tm := s.After(time.Millisecond, func() { t.Error("stopped timer fired") })
	if !tm.Reset(2 * time.Millisecond) {
		t.Fatal("Reset = false")
	}
	if !tm.Stop() {
		t.Fatal("Stop after Reset = false; handle must stay valid")
	}
	s.Run()
}

func TestTimerResetRepeatedChurn(t *testing.T) {
	// An RTO-like pattern: the same timer reset thousands of times with
	// interleaved traffic events; it must fire exactly once, at the last
	// deadline.
	SetInvariantChecks(true)
	defer SetInvariantChecks(false)
	s := NewScheduler()
	fired := 0
	tm := s.After(200*time.Millisecond, func() { fired++ })
	for i := 0; i < 5000; i++ {
		s.After(time.Duration(i)*time.Microsecond, func() {
			if !tm.Reset(200 * time.Millisecond) {
				t.Error("Reset = false mid-churn")
			}
		})
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1", fired)
	}
	if want := At(4999*time.Microsecond + 200*time.Millisecond); s.Now() != want {
		t.Errorf("final fire at %v, want %v", s.Now(), want)
	}
}
