package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(30*time.Microsecond, func() { got = append(got, 3) })
	s.After(10*time.Microsecond, func() { got = append(got, 1) })
	s.After(20*time.Microsecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != At(30*time.Microsecond) {
		t.Errorf("Now() = %v, want 30µs", s.Now())
	}
}

func TestSchedulerFIFOForSimultaneousEvents(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	if len(got) != 100 {
		t.Fatalf("fired %d events, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d; simultaneous events must run FIFO", i, v)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.After(time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.After(time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("fired %d, want 2", len(fired))
	}
	if fired[1] != At(2*time.Millisecond) {
		t.Errorf("nested event at %v, want 2ms", fired[1])
	}
}

func TestSchedulerPastEventRejected(t *testing.T) {
	s := NewScheduler()
	s.After(time.Millisecond, func() {
		if _, err := s.At(At(time.Microsecond), func() {}); err == nil {
			t.Error("scheduling in the past should fail")
		}
	})
	s.Run()
}

func TestSchedulerZeroDelayRunsAfterCurrentEvent(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(time.Millisecond, func() {
		s.After(0, func() { got = append(got, 2) })
		got = append(got, 1)
	})
	s.After(time.Millisecond, func() { got = append(got, 3) })
	s.Run()
	// Event scheduled "now" during the 1ms batch must run after the
	// already-queued simultaneous event.
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler()
	fired := false
	timer := s.After(time.Millisecond, func() { fired = true })
	if !timer.Pending() {
		t.Fatal("timer should be pending before firing")
	}
	if !timer.Stop() {
		t.Fatal("Stop on pending timer should report true")
	}
	if timer.Stop() {
		t.Error("second Stop should report false")
	}
	s.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler()
	timer := s.After(time.Millisecond, func() {})
	s.Run()
	if timer.Pending() {
		t.Error("fired timer still pending")
	}
	if timer.Stop() {
		t.Error("Stop after firing should report false")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		s.After(time.Millisecond, tick)
	}
	s.After(time.Millisecond, tick)
	s.RunUntil(At(10*time.Millisecond + 500*time.Microsecond))
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if s.Now() != At(10*time.Millisecond+500*time.Microsecond) {
		t.Errorf("Now() = %v, want horizon", s.Now())
	}
	// Resume past the horizon.
	s.RunUntil(At(12 * time.Millisecond))
	if count != 12 {
		t.Errorf("after resume count = %d, want 12", count)
	}
}

func TestRunUntilAdvancesTimeWhenQueueEmpty(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(At(time.Second))
	if s.Now() != At(time.Second) {
		t.Errorf("Now() = %v, want 1s", s.Now())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 0; i < 10; i++ {
		s.After(time.Millisecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 (stopped mid-batch)", count)
	}
	if s.Len() != 7 {
		t.Errorf("pending = %d, want 7", s.Len())
	}
}

func TestTimeArithmetic(t *testing.T) {
	instant := At(1500 * time.Microsecond)
	if got := instant.Add(500 * time.Microsecond); got != At(2*time.Millisecond) {
		t.Errorf("Add = %v", got)
	}
	if got := instant.Sub(At(time.Millisecond)); got != 500*time.Microsecond {
		t.Errorf("Sub = %v", got)
	}
	if got := At(time.Second).Seconds(); got != 1.0 {
		t.Errorf("Seconds = %v", got)
	}
	if got := At(2500 * time.Millisecond).String(); got != "2.500000s" {
		t.Errorf("String = %q", got)
	}
}

// TestSchedulerOrderProperty checks with random delay sets that events
// always fire in nondecreasing time order and that Now never goes backward.
func TestSchedulerOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		s := NewScheduler()
		var last Time = -1
		ok := true
		for _, d := range delays {
			s.After(time.Duration(d)*time.Microsecond, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSchedulerDeterminism runs the same randomized workload twice and
// requires identical event traces.
func TestSchedulerDeterminism(t *testing.T) {
	runTrace := func(seed int64) []Time {
		rng := NewRand(seed)
		s := NewScheduler()
		var trace []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, s.Now())
			if depth == 0 {
				return
			}
			n := rng.Intn(3)
			for i := 0; i < n; i++ {
				d := time.Duration(rng.Intn(1000)) * time.Microsecond
				s.After(d, func() { spawn(depth - 1) })
			}
		}
		for i := 0; i < 5; i++ {
			d := time.Duration(rng.Intn(1000)) * time.Microsecond
			s.After(d, func() { spawn(4) })
		}
		s.Run()
		return trace
	}
	a, b := runTrace(42), runTrace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	s.After(time.Microsecond, tick)
	s.Run()
}
