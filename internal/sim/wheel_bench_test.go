package sim

import (
	"testing"
	"time"
)

// BenchmarkSchedulerWheel measures the wheel scheduler's three hot
// operations — schedule+fire churn, and in-place Reset — against a
// standing population of live timers, at the two population sizes the
// paper's workloads span (1k ≈ one fig5 trial, 100k ≈ fig8 large-scale).
func BenchmarkSchedulerWheel(b *testing.B) {
	for _, live := range []int{1_000, 100_000} {
		population := func(s *Scheduler) []Timer {
			timers := make([]Timer, live)
			for i := range timers {
				// Spread standing timers across wheel levels and into the
				// overflow heap so slot scans see realistic occupancy.
				d := time.Duration(1+i%8191) * time.Millisecond
				if i%31 == 0 {
					d += 30 * time.Second
				}
				timers[i] = s.After(d, func() {})
			}
			return timers
		}

		b.Run(sizeLabel("ScheduleFire", live), func(b *testing.B) {
			s := NewScheduler()
			population(s)
			fn := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.After(time.Microsecond, fn)
				s.Step()
			}
		})

		b.Run(sizeLabel("Reset", live), func(b *testing.B) {
			s := NewScheduler()
			timers := population(s)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// RTO-like churn: push an existing timer's deadline out.
				if !timers[i%live].Reset(time.Duration(1+i%4096) * time.Millisecond) {
					b.Fatal("Reset = false on live timer")
				}
			}
		})
	}
}

func sizeLabel(op string, live int) string {
	if live >= 1000 {
		return op + "/live=" + itoa(live/1000) + "k"
	}
	return op + "/live=" + itoa(live)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestTimerResetZeroAlloc(t *testing.T) {
	// Reset re-slots the existing event in place: no free-list traffic,
	// no heap growth once containers are warmed.
	s := NewScheduler()
	tm := s.After(time.Millisecond, func() {})
	// Warm both containers so Reset never grows a backing array.
	warm := make([]Timer, 64)
	for i := range warm {
		warm[i] = s.After(time.Duration(i)*time.Second, func() {})
	}
	for _, w := range warm {
		w.Stop()
	}

	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		d := time.Duration(1+i%2048) * time.Millisecond
		if i%17 == 0 {
			d = time.Duration(20+i%40) * time.Second // overflow heap
		}
		if !tm.Reset(d) {
			t.Fatal("Reset = false on live timer")
		}
	})
	if allocs != 0 {
		t.Errorf("Reset allocates %.2f allocs/op, want 0", allocs)
	}
}

func TestSchedulerWheelSteadyStateZeroAllocWithPopulation(t *testing.T) {
	// The 1k-population schedule+fire cycle must stay allocation-free:
	// slot scans and cascades reuse pooled events and fixed bitmaps.
	s := NewScheduler()
	for i := 0; i < 1000; i++ {
		s.After(time.Duration(1+i%1000)*time.Millisecond, func() {})
	}
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the free list
		s.After(time.Microsecond, fn)
	}
	s.RunUntil(s.Now().Add(time.Millisecond))

	allocs := testing.AllocsPerRun(1000, func() {
		s.After(time.Microsecond, fn)
		if !s.Step() {
			t.Fatal("Step() found no event")
		}
	})
	if allocs != 0 {
		t.Errorf("populated After+fire allocates %.2f allocs/op, want 0", allocs)
	}
}
