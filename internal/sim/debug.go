package sim

import (
	"os"
	"sync/atomic"
)

// Invariant checking. The simulator normally trusts its own bookkeeping;
// with checks enabled, cheap assertions run on the hot paths (monotonic
// scheduler time here, packet-pool discipline in netsim) and violations
// panic with a diagnostic dump instead of silently corrupting results.
// The flag is read on every event, so it is atomic: tests and the chaos
// harness may flip it around parallel trial fan-outs.
//
// Enable via SetInvariantChecks(true) or by setting the TCPTRIM_INVARIANTS
// environment variable to any non-empty value (the CI test jobs do).
var invariantChecks atomic.Bool

func init() {
	if os.Getenv("TCPTRIM_INVARIANTS") != "" {
		invariantChecks.Store(true)
	}
}

// SetInvariantChecks enables or disables internal invariant assertions.
func SetInvariantChecks(on bool) { invariantChecks.Store(on) }

// InvariantChecks reports whether invariant assertions are enabled.
func InvariantChecks() bool { return invariantChecks.Load() }
