package sim

// Differential determinism proof for the sharded core, in the
// FuzzScheduler lockstep idiom: a byte stream decodes into a small
// deterministic program over K logical shards — root events, timers,
// cross-shard posts, sync points — which runs three ways on identical
// input: against a single plain Scheduler (the reference semantics every
// figure was generated with), against a ShardGroup executing segments
// inline, and against a ShardGroup fanning segments out to goroutines.
// Every observable — per-shard dispatch traces, per-shard work counters,
// cross-shard transfer ledgers, sync-point global reads, fired counts,
// shard clocks — must match bit for bit across the three runs.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"
)

// splitmix is splitmix64: a cheap, well-mixed hash for deriving
// deterministic per-event behavior from ids.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const (
	sdShards    = 4
	sdLookahead = Time(100 * time.Microsecond)
	sdQuantum   = Time(50 * time.Microsecond)
	sdHorizon   = Time(40 * time.Second)
	sdStopAt    = 600 // sync-read threshold that stops the run
)

// sdEntry is one observed dispatch: which program event fired and when.
type sdEntry struct {
	id uint64
	at Time
}

// sdEnv hosts one run of the differential program. For the reference
// run, every logical shard maps to the same plain Scheduler; for the
// sharded runs each maps to its ShardGroup shard.
type sdEnv struct {
	scheds [sdShards]*Scheduler
	group  *ShardGroup

	counters [sdShards]int64
	xferred  [sdShards]int64
	traces   [sdShards][]sdEntry
	timers   [sdShards][]Timer
	syncLog  []string
}

func newRefEnv() *sdEnv {
	e := &sdEnv{}
	s := NewScheduler()
	for i := range e.scheds {
		e.scheds[i] = s
	}
	return e
}

func newShardEnv(parallel bool) *sdEnv {
	e := &sdEnv{group: NewShardGroup(sdShards)}
	e.group.SetLookahead(sdLookahead)
	e.group.SetParallel(parallel)
	for i := range e.scheds {
		e.scheds[i] = e.group.Shard(i)
	}
	return e
}

func (e *sdEnv) run() {
	if e.group != nil {
		e.group.RunUntil(sdHorizon)
		return
	}
	e.scheds[0].RunUntil(sdHorizon)
}

func (e *sdEnv) fired() uint64 {
	if e.group != nil {
		return e.group.Fired()
	}
	return e.scheds[0].Fired()
}

func (e *sdEnv) stop() {
	if e.group != nil {
		e.group.Stop()
		return
	}
	e.scheds[0].Stop()
}

// post hands an event across logical shards: immediately on the
// reference scheduler (matching Post's shared-mode semantics), via the
// PDES handoff on a sharded run.
func (e *sdEnv) post(from, to int, at Time, xfer, fn func()) {
	s, d := e.scheds[from], e.scheds[to]
	if s == d {
		if xfer != nil {
			xfer()
		}
		d.At(at, fn) //nolint:errcheck // at is never in the past here
		return
	}
	s.Post(d, at, xfer, fn)
}

// fire is the program's event body: do work, observe, and — salt-driven
// — spawn same-shard children (quantized deltas, so distinct shards
// collide on identical instants and exercise the global tie-break),
// cross-shard posts one lookahead or more out, and timer manipulations.
func (e *sdEnv) fire(shard int, id uint64, depth int) func() {
	return func() {
		s := e.scheds[shard]
		e.counters[shard]++
		e.traces[shard] = append(e.traces[shard], sdEntry{id: id, at: s.Now()})
		if depth <= 0 {
			return
		}
		h := splitmix(id)
		kids := int(h % 3)
		for k := 0; k < kids; k++ {
			h = splitmix(h + uint64(k))
			target := int(h>>4) % sdShards
			childID := id*7 + uint64(k) + 1
			child := e.fire(target, childID, depth-1)
			if target == shard {
				delta := Time((h>>12)%8) * sdQuantum
				s.At(s.Now()+delta, child) //nolint:errcheck
			} else {
				at := s.Now() + sdLookahead + Time((h>>12)%4)*sdQuantum
				tgt := target
				e.post(shard, target, at, func() { e.xferred[tgt]++ }, child)
			}
		}
		// Shard-local timer surgery: reset pushes a pending timer out
		// (consuming a fresh sequence number), stop cancels one.
		if h%5 == 0 && len(e.timers[shard]) > 0 {
			idx := int(h>>20) % len(e.timers[shard])
			if h%2 == 0 {
				e.timers[shard][idx].Reset(time.Duration((h>>24)%5) * 75 * time.Microsecond)
			} else {
				e.timers[shard][idx].Stop()
			}
		}
	}
}

// buildProgram decodes data into the initial schedule. Four bytes per
// op; op kinds cover near and far (overflow-heap) roots, timers, and
// sync points that read exact global state and may stop the run.
func (e *sdEnv) buildProgram(data []byte) {
	var id uint64
	for len(data) >= 4 {
		b0, b1, b2, b3 := data[0], data[1], data[2], data[3]
		data = data[4:]
		id += 1000
		shard := int(b1) % sdShards
		at := Time(b2%64) * sdQuantum
		switch b0 % 8 {
		case 6: // far root: beyond the wheel span, lands in the overflow heap
			far := Time(20*time.Second) + Time(b2)*sdQuantum
			e.scheds[shard].At(far, e.fire(shard, id, int(b3%3))) //nolint:errcheck
		case 5: // timer: fires as a plain observed event unless stopped
			tm := e.scheds[shard].After(at.Duration(), e.fire(shard, id, 0))
			e.timers[shard] = append(e.timers[shard], tm)
		case 4: // sync point: exact global read, stop past the threshold
			e.syncAt(shard, at+sdQuantum/2, id)
		default: // near root
			e.scheds[shard].At(at, e.fire(shard, id, int(b3%4))) //nolint:errcheck
		}
	}
}

func (e *sdEnv) syncAt(shard int, at Time, id uint64) {
	fn := func() {
		var sum int64
		for i := range e.counters {
			sum += e.counters[i] + e.xferred[i]
		}
		e.syncLog = append(e.syncLog, fmt.Sprintf("%d@%v=%d", id, at, sum))
		if sum > sdStopAt {
			e.stop()
		}
	}
	if e.group != nil {
		e.group.SyncAt(e.scheds[shard], at, fn) //nolint:errcheck
	} else {
		e.scheds[shard].At(at, fn) //nolint:errcheck
	}
}

// diff compares every observable of two runs, returning a description
// of the first divergence.
func (e *sdEnv) diff(o *sdEnv) string {
	for i := range e.counters {
		if e.counters[i] != o.counters[i] {
			return fmt.Sprintf("shard %d counter %d != %d", i, e.counters[i], o.counters[i])
		}
		if e.xferred[i] != o.xferred[i] {
			return fmt.Sprintf("shard %d xferred %d != %d", i, e.xferred[i], o.xferred[i])
		}
		if len(e.traces[i]) != len(o.traces[i]) {
			return fmt.Sprintf("shard %d trace length %d != %d", i, len(e.traces[i]), len(o.traces[i]))
		}
		for j := range e.traces[i] {
			if e.traces[i][j] != o.traces[i][j] {
				return fmt.Sprintf("shard %d trace[%d] %+v != %+v", i, j, e.traces[i][j], o.traces[i][j])
			}
		}
		if e.scheds[i].Now() != o.scheds[i].Now() {
			return fmt.Sprintf("shard %d clock %v != %v", i, e.scheds[i].Now(), o.scheds[i].Now())
		}
	}
	if len(e.syncLog) != len(o.syncLog) {
		return fmt.Sprintf("sync log length %d != %d", len(e.syncLog), len(o.syncLog))
	}
	for i := range e.syncLog {
		if e.syncLog[i] != o.syncLog[i] {
			return fmt.Sprintf("sync log[%d] %q != %q", i, e.syncLog[i], o.syncLog[i])
		}
	}
	if e.fired() != o.fired() {
		return fmt.Sprintf("fired %d != %d", e.fired(), o.fired())
	}
	return ""
}

// runShardDifferential drives the three runs and asserts bit-identical
// observables.
func runShardDifferential(t *testing.T, data []byte) {
	t.Helper()
	ref := newRefEnv()
	ref.buildProgram(data)
	ref.run()

	seq := newShardEnv(false)
	seq.buildProgram(data)
	seq.run()
	if d := ref.diff(seq); d != "" {
		t.Fatalf("sharded (inline) run diverged from single-core: %s", d)
	}

	par := newShardEnv(true)
	par.buildProgram(data)
	par.run()
	if d := ref.diff(par); d != "" {
		t.Fatalf("sharded (parallel) run diverged from single-core: %s", d)
	}
}

func TestShardDifferentialRandom(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		data := make([]byte, 64)
		x := splitmix(seed * 11)
		for i := range data {
			x = splitmix(x)
			data[i] = byte(x)
		}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runShardDifferential(t, data)
		})
	}
}

func TestShardDifferentialInvariants(t *testing.T) {
	old := InvariantChecks()
	SetInvariantChecks(true)
	defer SetInvariantChecks(old)
	for seed := uint64(0); seed < 40; seed++ {
		data := make([]byte, 48)
		x := splitmix(seed*13 + 7)
		for i := range data {
			x = splitmix(x)
			data[i] = byte(x)
		}
		runShardDifferential(t, data)
	}
}

// FuzzShardHandoff is the committed-corpus fuzz target for the
// shard-boundary handoff: the fuzzer explores program shapes, the
// lockstep oracle rejects any interleaving-visible divergence.
func FuzzShardHandoff(f *testing.F) {
	f.Add([]byte{0, 0, 0, 3})
	f.Add([]byte{0, 1, 4, 3, 1, 2, 4, 3, 4, 0, 8, 0})
	f.Add([]byte{5, 0, 2, 0, 1, 0, 2, 2, 4, 1, 3, 0, 6, 3, 9, 2})
	f.Add(bytes.Repeat([]byte{2, 3, 1, 3}, 12))
	seed := make([]byte, 40)
	binary.LittleEndian.PutUint64(seed, 0xdecafbad)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		runShardDifferential(t, data)
	})
}

// TestShardSoloEquivalence pins the solo fast path: a group whose
// traffic lives on one shard must execute exactly like a plain
// scheduler, including timer surgery and horizon handling.
func TestShardSoloEquivalence(t *testing.T) {
	data := []byte{
		0, 0, 3, 3, 5, 0, 7, 0, 0, 0, 9, 2,
		4, 0, 12, 0, 6, 0, 1, 2, 0, 0, 30, 3,
	}
	runShardDifferential(t, data)
}

func TestShardGroupValidation(t *testing.T) {
	g := NewShardGroup(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetLookahead(0) did not panic")
			}
		}()
		g.SetLookahead(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("RunUntil on a shard scheduler did not panic")
			}
		}()
		g.Shard(0).RunUntil(End)
	}()
}
