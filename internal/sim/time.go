// Package sim provides a deterministic discrete-event simulation core:
// virtual time, an event scheduler with stable FIFO ordering for
// simultaneous events, and cancellable timers.
//
// The scheduler is single-threaded by design. Determinism is the primary
// goal: given the same initial events and the same seeded random sources,
// a run always produces the same schedule.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. It is intentionally distinct from time.Time: simulated
// clocks have no calendar, no time zones, and no wall-clock drift.
type Time int64

// Common instants.
const (
	// Start is the origin of virtual time.
	Start Time = 0
	// End is the largest representable instant, used as an "infinite"
	// horizon for RunUntil.
	End Time = Time(^uint64(0) >> 1)
)

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Duration converts t to a time.Duration offset from the simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant as seconds with microsecond precision, which
// matches how the paper reports simulation timestamps.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// At converts a duration-from-start to an instant.
func At(d time.Duration) Time { return Time(d) }
