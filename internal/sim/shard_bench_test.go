package sim

import (
	"testing"
	"time"
)

// pingPongGroup builds the cross-shard hot-path workload: two shards,
// each re-arming a local ticker every 700ns that posts a no-op to the
// other shard one lookahead ahead. Both shards are active in every
// window, so every tick exercises the full handoff machinery — logged
// Post, window segment, barrier merge, scheduleSeq on the destination
// wheel. Returns per-destination delivery counters (written only by the
// receiving shard, so the workload is race-free under parallel windows).
func pingPongGroup(parallel bool) (*ShardGroup, *[2]uint64) {
	g := NewShardGroup(2)
	g.SetLookahead(1000)
	g.SetParallel(parallel)
	var delivered [2]uint64
	for i := 0; i < 2; i++ {
		i := i
		src, dst := g.Shard(i), g.Shard(1-i)
		recv := func() { delivered[1-i]++ }
		var tick func()
		tick = func() {
			src.Post(dst, src.Now()+1000, nil, recv)
			src.After(700*time.Nanosecond, tick)
		}
		// Staggered starts so the two tickers never share an instant.
		src.After(time.Duration(100+i*50)*time.Nanosecond, tick)
	}
	return g, &delivered
}

// BenchmarkCrossShardHandoff measures the steady-state cost of one
// cross-shard post round trip: one op is one 700ns slice of simulated
// time carrying one handoff in each direction. The inline variant is
// the per-handoff machinery itself; the parallel variant adds the
// goroutine fan-out and barrier cost per window. Both must report
// 0 allocs/op (enforced at unit level by TestCrossShardHandoffZeroAlloc).
func BenchmarkCrossShardHandoff(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		parallel bool
	}{{"inline", false}, {"parallel", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			g, delivered := pingPongGroup(cfg.parallel)
			// Warm free lists and merge scratch to steady state.
			g.RunUntil(Time(100_000))
			b.ReportAllocs()
			b.ResetTimer()
			g.RunUntil(Time(100_000) + Time(b.N)*700)
			b.StopTimer()
			b.ReportMetric(float64(delivered[0]+delivered[1])/float64(b.N), "handoffs/op")
		})
	}
}

// TestCrossShardHandoffZeroAlloc pins the cross-shard handoff path at
// zero allocations in steady state: logged posts reuse the call log,
// the barrier merge reuses its fixup scratch, and destination events
// come off the free list. A regression here multiplies across every
// packet that crosses a shard cut.
func TestCrossShardHandoffZeroAlloc(t *testing.T) {
	for _, cfg := range []struct {
		name     string
		parallel bool
	}{{"inline", false}, {"parallel", true}} {
		t.Run(cfg.name, func(t *testing.T) {
			g, delivered := pingPongGroup(cfg.parallel)
			g.RunUntil(Time(200_000)) // warm: ~280 windows sizes every scratch slice
			end := Time(200_000)
			allocs := testing.AllocsPerRun(100, func() {
				end += 7_000 // ten ticks per shard, twenty handoffs
				g.RunUntil(end)
			})
			if delivered[0] == 0 || delivered[1] == 0 {
				t.Fatalf("workload did not cross shards: delivered=%v", *delivered)
			}
			if allocs != 0 {
				t.Errorf("cross-shard handoff allocates %.2f allocs/op, want 0", allocs)
			}
		})
	}
}
