package sim

import "math/rand"

// NewRand returns a deterministic random source for the given seed.
// Simulation components must never use the global rand functions; every
// experiment threads one or more seeded *rand.Rand values so that runs are
// reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) //nolint:gosec // simulation, not crypto
}
