package sim

import (
	"testing"
	"time"
)

// The free list recycles fired and cancelled events; generation counters
// must keep stale Timer handles from touching the event's next life.

func TestTimerStopPendingAfterFire(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before firing")
	}
	s.RunUntil(At(10 * time.Millisecond))
	if !fired {
		t.Fatal("timer did not fire")
	}
	if tm.Pending() {
		t.Error("Pending() = true after fire")
	}
	if tm.Stop() {
		t.Error("Stop() = true after fire")
	}
}

func TestTimerGenerationAliasing(t *testing.T) {
	// After a timer fires, its event returns to the free list and is
	// reused by the next schedule. The stale handle must be inert: it
	// must not cancel or report the new occupant.
	s := NewScheduler()
	s.After(time.Millisecond, func() {})
	old := s.After(2*time.Millisecond, func() {})
	s.RunUntil(At(10 * time.Millisecond))

	secondFired := false
	fresh := s.After(time.Millisecond, func() { secondFired = true })
	if old.Pending() {
		t.Error("stale handle reports Pending for recycled event")
	}
	if old.Stop() {
		t.Error("stale handle Stop() returned true")
	}
	if !fresh.Pending() {
		t.Fatal("stale Stop() cancelled the recycled event")
	}
	s.RunUntil(At(20 * time.Millisecond))
	if !secondFired {
		t.Error("recycled event did not fire")
	}
}

func TestTimerStopThenReschedule(t *testing.T) {
	// Stop returns the event to the free list immediately; a new After
	// reuses it. The stopped handle must stay dead.
	s := NewScheduler()
	tm := s.After(time.Millisecond, func() { t.Error("stopped timer fired") })
	if !tm.Stop() {
		t.Fatal("Stop() on pending timer = false")
	}
	if tm.Stop() {
		t.Error("second Stop() = true")
	}
	count := 0
	s.After(time.Millisecond, func() { count++ })
	if tm.Pending() {
		t.Error("stopped handle pending after event reuse")
	}
	s.RunUntil(At(10 * time.Millisecond))
	if count != 1 {
		t.Fatalf("rescheduled event fired %d times, want 1", count)
	}
}

func TestTimerStopFromInsideCallback(t *testing.T) {
	// A callback that stops its own (already firing) timer must see
	// Stop() = false: the event was released before the callback ran.
	s := NewScheduler()
	var tm Timer
	stopped := true
	tm = s.After(time.Millisecond, func() { stopped = tm.Stop() })
	s.RunUntil(At(10 * time.Millisecond))
	if stopped {
		t.Error("Stop() from inside the firing callback returned true")
	}
}

func TestSchedulerLenExcludesCancelled(t *testing.T) {
	s := NewScheduler()
	a := s.After(time.Millisecond, func() {})
	s.After(2*time.Millisecond, func() {})
	if got := s.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
	a.Stop()
	if got := s.Len(); got != 1 {
		t.Fatalf("Len() after Stop = %d, want 1", got)
	}
	s.RunUntil(At(10 * time.Millisecond))
	if got := s.Len(); got != 0 {
		t.Fatalf("Len() after drain = %d, want 0", got)
	}
}

func TestSchedulerSteadyStateZeroAlloc(t *testing.T) {
	// In steady state (free list warmed, heap capacity grown), an
	// After+fire cycle must not allocate: the event comes from the free
	// list and the Timer handle is a value.
	s := NewScheduler()
	fn := func() {}
	// Warm up: populate the free list and grow the heap.
	for i := 0; i < 64; i++ {
		s.After(time.Microsecond, fn)
	}
	s.RunUntil(At(time.Millisecond))

	allocs := testing.AllocsPerRun(1000, func() {
		s.After(time.Microsecond, fn)
		if !s.Step() {
			t.Fatal("Step() found no event")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state After+fire allocates %.2f allocs/op, want 0", allocs)
	}
}

func TestEventReuseIdentity(t *testing.T) {
	// White-box: a fired event's storage is handed back by the next
	// alloc, so long churn keeps a bounded pool instead of growing.
	s := NewScheduler()
	for i := 0; i < 1000; i++ {
		s.After(time.Microsecond, func() {})
		s.Step()
	}
	if got := len(s.free) + s.wheel.count + len(s.overflow); got > 4 {
		t.Errorf("after 1000 sequential events, pool holds %d events, want <= 4", got)
	}
}

func TestManyTimersStressWithCancellation(t *testing.T) {
	// Interleave scheduling, firing, and cancelling at scale; every
	// non-cancelled event fires exactly once and in order.
	s := NewScheduler()
	var fired int
	var last Time
	keep := 0
	for i := 0; i < 5000; i++ {
		d := time.Duration(1+i%97) * time.Microsecond
		tm := s.After(d, func() {
			now := s.Now()
			if now < last {
				t.Fatalf("out-of-order fire: %v after %v", now, last)
			}
			last = now
			fired++
		})
		if i%3 == 0 {
			tm.Stop()
		} else {
			keep++
		}
	}
	s.RunUntil(At(time.Second))
	if fired != keep {
		t.Fatalf("fired %d events, want %d", fired, keep)
	}
}
