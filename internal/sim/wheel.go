package sim

import "math/bits"

// Hierarchical timing wheel: the scheduler's near-future core.
//
// Virtual time is hashed into wheelLevels levels of wheelSlots slots each.
// Level 0 slots are 2^granShift ns wide (~1µs), and each higher level's
// slots are wheelSlots times wider, so the wheel spans 2^wheelSpanShift ns
// (~17.2s) around the current instant. An event lands in the lowest level
// whose resolution still separates it from "now"; everything beyond the
// span overflows to a small auxiliary heap (see scheduler.go).
//
// The level of an event is derived from at XOR now: the position of the
// highest differing bit tells which level's slot walk first reaches the
// event. Because simulated time only moves forward and never past a
// pending event, every occupied slot sits at or after the current index of
// its level, so "find the earliest event" is a bitmap scan from the
// current index — no slot ever wraps behind the clock.
//
// Two properties make the wheel exact rather than approximate:
//
//   - Strict level ordering. After the scheduler's syncWheel pass (which
//     cascades the current slot of each upper level whenever the clock
//     crosses that level's slot boundary), every level-l event fires
//     before every level-(l+1) event, so the global minimum is the
//     earliest event of the lowest occupied level.
//   - In-slot scan. Slots keep an unsorted intrusive doubly-linked list;
//     the minimum is found by a linear (at, seq) scan. Slots are narrow
//     (µs at level 0), so occupancy stays small, and same-instant events
//     compare by seq — preserving the scheduler's FIFO guarantee
//     bit-for-bit.
//
// Insert, remove (eager cancellation), and re-slot (Timer.Reset) are all
// O(1); cascading touches each event at most wheelLevels-1 times over its
// lifetime.

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
	// granShift sets the level-0 slot width: 2^10 ns ≈ 1µs, finer than
	// any per-packet spacing the simulated links produce at 10G.
	granShift = 10
	// wheelSpanShift bounds the wheel's reach: events whose instant
	// differs from the clock at or above this bit (≈17.2s) overflow to
	// the heap until the clock draws near.
	wheelSpanShift = granShift + wheelLevels*wheelBits

	wheelWords = wheelSlots / 64
)

// levelShift returns the bit position where level l's slot index starts.
func levelShift(l int) uint { return granShift + uint(l)*wheelBits }

// levelFor maps x = at XOR now to the wheel level that separates the two
// instants, or wheelLevels when the event is beyond the wheel span.
func levelFor(x uint64) int {
	switch {
	case x>>levelShift(1) == 0:
		return 0
	case x>>levelShift(2) == 0:
		return 1
	case x>>wheelSpanShift == 0:
		return 2
	}
	return wheelLevels
}

// wheel is the slot storage: per-level intrusive lists plus occupancy
// bitmaps so the earliest occupied slot is a few word scans away.
type wheel struct {
	slots [wheelLevels][wheelSlots]*event
	occ   [wheelLevels][wheelWords]uint64
	count int
}

// insert files ev into the slot addressed by its instant relative to now.
// The caller guarantees ev.at is within the wheel span of now.
func (w *wheel) insert(ev *event, now Time) {
	l := levelFor(uint64(ev.at ^ now))
	slot := int(uint64(ev.at)>>levelShift(l)) & wheelMask
	head := w.slots[l][slot]
	ev.prev = nil
	ev.next = head
	if head != nil {
		head.prev = ev
	}
	w.slots[l][slot] = ev
	w.occ[l][slot>>6] |= 1 << (uint(slot) & 63)
	ev.where = placeWheel
	ev.level = uint8(l)
	ev.slot = uint8(slot)
	w.count++
}

// remove unlinks ev from its slot eagerly — cancelled and re-slotted
// events never linger for dispatch to drain.
func (w *wheel) remove(ev *event) {
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		w.slots[ev.level][ev.slot] = ev.next
		if ev.next == nil {
			w.occ[ev.level][ev.slot>>6] &^= 1 << (uint(ev.slot) & 63)
		}
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	}
	ev.next, ev.prev = nil, nil
	ev.where = placeNone
	w.count--
}

// findMin returns the earliest (at, seq) event in the wheel, or nil when
// empty. Levels are strictly ordered after syncWheel, so the first
// occupied slot of the lowest occupied level holds the minimum.
func (w *wheel) findMin(now Time) *event {
	if w.count == 0 {
		return nil
	}
	for l := 0; l < wheelLevels; l++ {
		from := int(uint64(now)>>levelShift(l)) & wheelMask
		idx := nextSet(&w.occ[l], from)
		if idx < 0 {
			continue
		}
		best := w.slots[l][idx]
		for ev := best.next; ev != nil; ev = ev.next {
			if ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
				best = ev
			}
		}
		return best
	}
	panic("sim: timing wheel count positive but no occupied slot at or after the clock")
}

// cascade empties level l's slot idx into lower levels: the clock has
// entered the slot's span, so every event in it now lands strictly below
// level l when re-addressed against now.
func (w *wheel) cascade(l, idx int, now Time) {
	ev := w.slots[l][idx]
	if ev == nil {
		return
	}
	w.slots[l][idx] = nil
	w.occ[l][idx>>6] &^= 1 << (uint(idx) & 63)
	for ev != nil {
		next := ev.next
		w.count--
		w.insert(ev, now)
		ev = next
	}
}

// nextSet returns the first set bit index at or after from, or -1.
func nextSet(bm *[wheelWords]uint64, from int) int {
	wi := from >> 6
	word := bm[wi] &^ (1<<(uint(from)&63) - 1)
	for {
		if word != 0 {
			return wi<<6 + bits.TrailingZeros64(word)
		}
		wi++
		if wi == wheelWords {
			return -1
		}
		word = bm[wi]
	}
}
