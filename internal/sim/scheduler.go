package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrPastEvent is returned when an event is scheduled before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// eventState tracks where an event is in its lifecycle. Cancelled events
// stay in the heap until popped (lazy cancellation); done events live on
// the scheduler's free list awaiting reuse.
type eventState uint8

const (
	evScheduled eventState = iota
	evCancelled
	evDone
)

// event is a scheduled callback. seq provides stable FIFO ordering among
// events with the same firing time so that runs are fully deterministic.
// Events are recycled through a per-scheduler free list; gen is bumped on
// every recycle so stale Timer handles can detect that their event has
// been reused for a different callback.
type event struct {
	at    Time
	seq   uint64
	gen   uint64
	fn    func()
	state eventState
	sched *Scheduler
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. Timer is a small value; the zero Timer is valid and behaves as an
// already-fired timer (Stop reports false, Pending reports false). The
// generation captured at scheduling time guards against the underlying
// event struct being recycled for a later callback.
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the timer. It reports whether the timer was still pending
// (i.e., Stop prevented it from firing).
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.state != evScheduled {
		return false
	}
	ev.state = evCancelled
	ev.fn = nil // release the closure now; the heap entry drains lazily
	ev.sched.live--
	return true
}

// Pending reports whether the timer is scheduled and not yet fired or
// cancelled.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.state == evScheduled
}

// Scheduler is a deterministic discrete-event loop. All simulation
// components share one Scheduler and must be driven from a single
// goroutine.
//
// The pending set is a 4-ary min-heap on (at, seq) with lazy cancellation;
// fired and cancelled events are recycled through a free list, so
// steady-state scheduling performs no allocations.
type Scheduler struct {
	heap    []*event
	free    []*event
	now     Time
	seq     uint64
	live    int
	running bool
	stopped bool
	fired   uint64
}

// NewScheduler returns an empty scheduler positioned at Start.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of live pending events: scheduled callbacks that
// have neither fired nor been cancelled. Cancelled events awaiting lazy
// removal from the heap are not counted.
func (s *Scheduler) Len() int { return s.live }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at the absolute instant t. Scheduling in the past
// returns ErrPastEvent; scheduling at the current instant is allowed and
// runs after all previously scheduled events for that instant.
func (s *Scheduler) At(t Time, fn func()) (Timer, error) {
	if t < s.now {
		return Timer{}, ErrPastEvent
	}
	ev := s.alloc(t, fn)
	s.push(ev)
	s.live++
	return Timer{ev: ev, gen: ev.gen}, nil
}

// After schedules fn to run d after the current instant. Negative d is
// clamped to zero.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	timer, err := s.At(s.now.Add(d), fn)
	if err != nil {
		// Unreachable: now+|d| is never in the past. Keep the event loop
		// alive regardless.
		return Timer{}
	}
	return timer
}

// Stop halts the run loop after the event currently executing returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Step executes the single earliest pending event. It reports whether an
// event was executed.
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		ev := s.pop()
		if ev.state != evScheduled {
			s.release(ev)
			continue
		}
		if invariantChecks.Load() && ev.at < s.now {
			panic(fmt.Sprintf(
				"sim: time went backwards: event seq=%d at=%v fired at now=%v (heap=%d live=%d fired=%d)",
				ev.seq, ev.at, s.now, len(s.heap), s.live, s.fired))
		}
		s.now = ev.at
		s.fired++
		s.live--
		fn := ev.fn
		s.release(ev)
		fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is empty, the horizon
// t is passed, or Stop is called. Time is left at the later of the last
// executed event and t (when the horizon was reached with events pending,
// time advances to t exactly).
func (s *Scheduler) RunUntil(t Time) {
	if s.running {
		return
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()

	for !s.stopped {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > t {
			s.now = t
			return
		}
		s.Step()
	}
	if s.now < t && t != End && s.live == 0 {
		s.now = t
	}
}

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() { s.RunUntil(End) }

// alloc takes an event off the free list (or allocates one) and arms it.
func (s *Scheduler) alloc(at Time, fn func()) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{sched: s}
	}
	ev.at = at
	ev.seq = s.seq
	s.seq++
	ev.fn = fn
	ev.state = evScheduled
	return ev
}

// release recycles a popped event. Bumping gen invalidates every Timer
// handle that still references this event.
func (s *Scheduler) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.state = evDone
	s.free = append(s.free, ev)
}

// peek returns the earliest non-cancelled event without executing it,
// discarding cancelled heap entries along the way.
func (s *Scheduler) peek() *event {
	for len(s.heap) > 0 {
		if s.heap[0].state == evScheduled {
			return s.heap[0]
		}
		s.release(s.pop())
	}
	return nil
}

// --- 4-ary min-heap on (at, seq) ---------------------------------------
//
// A specialized flat heap avoids container/heap's interface dispatch and
// per-element index bookkeeping (lazy cancellation never removes from the
// middle). The wider fan-out halves the tree depth, trading slightly more
// comparisons per level for fewer cache-missing levels — a win for the
// event-churn pattern of the simulator, where the heap rarely exceeds a
// few thousand entries but is pushed/popped millions of times.

func evLess(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (s *Scheduler) push(ev *event) {
	s.heap = append(s.heap, ev)
	s.siftUp(len(s.heap) - 1)
}

func (s *Scheduler) pop() *event {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	s.heap = h[:n]
	if n > 1 {
		s.siftDown(0)
	}
	return top
}

func (s *Scheduler) siftUp(i int) {
	h := s.heap
	ev := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !evLess(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	ev := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if evLess(h[c], h[min]) {
				min = c
			}
		}
		if !evLess(h[min], ev) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = ev
}
