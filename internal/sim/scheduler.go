package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrPastEvent is returned when an event is scheduled before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// eventState tracks where an event is in its lifecycle. Done events live
// on the scheduler's free list awaiting reuse; cancellation releases an
// event eagerly, so there is no lingering cancelled state.
type eventState uint8

const (
	evScheduled eventState = iota
	evDone
)

// Where an armed event is stored.
const (
	placeNone  uint8 = iota
	placeWheel       // linked into a timing-wheel slot
	placeHeap        // referenced by an overflow-heap entry
)

// event is a scheduled callback. seq provides stable FIFO ordering among
// events with the same firing time so that runs are fully deterministic;
// it is reassigned on every arming (schedule or Timer.Reset), which also
// lets stale overflow-heap entries be recognized by seq mismatch. Events
// are recycled through a per-scheduler free list; gen is bumped on every
// recycle so stale Timer handles can detect that their event has been
// reused for a different callback.
type event struct {
	at    Time
	seq   uint64
	gen   uint64
	fn    func()
	next  *event // wheel slot list links (intrusive, nil off-wheel)
	prev  *event
	sched *Scheduler
	state eventState
	where uint8
	level uint8
	slot  uint8
}

// Timer is a handle to a scheduled event that can be cancelled or
// re-armed before it fires. Timer is a small value; the zero Timer is
// valid and behaves as an already-fired timer (Stop and Reset report
// false, Pending reports false). The generation captured at scheduling
// time guards against the underlying event struct being recycled for a
// later callback.
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the timer. It reports whether the timer was still pending
// (i.e., Stop prevented it from firing). The event is compacted out of
// its wheel slot eagerly and returned to the free list.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.state != evScheduled {
		return false
	}
	s := ev.sched
	s.unplace(ev)
	s.live--
	s.release(ev)
	return true
}

// Reset re-arms a still-pending timer to fire d after the current instant
// (negative d is clamped to zero), keeping its callback and its handle
// valid. It reports whether the timer was re-armed: a fired, stopped, or
// zero Timer is left untouched and Reset returns false, in which case the
// caller schedules afresh with After.
//
// Reset is exactly equivalent to a successful Stop followed by After with
// the same callback — it consumes one sequence number, so dispatch order
// is bit-for-bit identical — but re-slots the event in place instead of
// round-tripping it through the free list.
func (t Timer) Reset(d time.Duration) bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.state != evScheduled {
		return false
	}
	if d < 0 {
		d = 0
	}
	s := ev.sched
	s.unplace(ev)
	ev.at = s.now.Add(d)
	s.assignSeq(ev)
	s.place(ev)
	return true
}

// Pending reports whether the timer is scheduled and not yet fired or
// cancelled.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.state == evScheduled
}

// Scheduler is a deterministic discrete-event loop. All simulation
// components share one Scheduler and must be driven from a single
// goroutine.
//
// The pending set is a hybrid hierarchical timing wheel plus overflow
// heap. Near-future events — the overwhelming majority: per-packet pipe
// deliveries, delayed ACKs, RTO and probe deadlines — hash into O(1)
// wheel slots (see wheel.go); far-future events (flap schedules,
// experiment end markers) go to a small 4-ary min-heap and migrate into
// the wheel as the clock approaches. Cancelled events are compacted out
// of wheel slots eagerly; a heap entry whose event was cancelled or
// re-armed is recognized by seq mismatch and discarded when it surfaces.
// Fired and cancelled events are recycled through a free list, so
// steady-state scheduling performs no allocations.
type Scheduler struct {
	now     Time
	seq     uint64
	live    int
	fired   uint64
	running bool
	stopped bool

	wheel    wheel
	overflow []heapEntry
	heapLive int // armed events currently resident in the overflow heap
	free     []*event

	// Wheel synchronization keys: cascadeKey[l] tracks now>>levelShift(l)
	// so crossing a level's slot boundary cascades that level's current
	// slot exactly once; spanKey tracks now>>wheelSpanShift to migrate
	// overflow events that came within the wheel span. Both preserve the
	// strict level ordering findMin relies on.
	cascadeKey [wheelLevels]uint64
	spanKey    uint64

	// Sharding hooks (see shard.go). group is non-nil when this scheduler
	// is one shard of a ShardGroup; shardIdx is its index there. logging
	// is true only while a parallel window segment executes: sequence
	// numbers handed out are then provisional, and every consumption is
	// recorded in calls (aligned with the provisional numbering) so the
	// barrier merge can replay the global assignment deterministically.
	group    *ShardGroup
	shardIdx int
	logging  bool
	calls    []callRec
	execs    []execRec
}

// callRec records one sequence-number consumption during a logged window
// segment. Record k of a segment corresponds to provisional sequence
// base+k; the barrier merge revisits the records in merged dispatch order
// and binds each to its definitive global sequence number.
type callRec struct {
	// Local arming (At/After/Reset): the event armed, and the generation
	// it carried, so the merge can tell whether the arming still stands.
	ev  *event
	gen uint64
	// Cross-shard Post: deferred until the barrier, where the payload
	// transfer runs and the destination event is filed under its
	// definitive sequence number.
	post bool
	dst  *Scheduler
	at   Time
	xfer func()
	fn   func()
}

// execRec records one event dispatched during a logged window segment:
// its firing key (at, raw seq — provisional when >= the segment base) and
// how many callRecs its callback appended. Per-shard exec streams are in
// dispatch order; the merge interleaves them into the global total order.
type execRec struct {
	at     Time
	seq    uint64
	nCalls int32
}

// NewScheduler returns an empty scheduler positioned at Start.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of live pending events: scheduled callbacks that
// have neither fired nor been cancelled.
func (s *Scheduler) Len() int { return s.live }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at the absolute instant t. Scheduling in the past
// returns ErrPastEvent; scheduling at the current instant is allowed and
// runs after all previously scheduled events for that instant.
func (s *Scheduler) At(t Time, fn func()) (Timer, error) {
	if t < s.now {
		return Timer{}, ErrPastEvent
	}
	ev := s.alloc(t, fn)
	s.place(ev)
	s.live++
	return Timer{ev: ev, gen: ev.gen}, nil
}

// After schedules fn to run d after the current instant. Negative d is
// clamped to zero.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	timer, err := s.At(s.now.Add(d), fn)
	if err != nil {
		// Unreachable: now+|d| is never in the past. Keep the event loop
		// alive regardless.
		return Timer{}
	}
	return timer
}

// Stop halts the run loop after the event currently executing returns.
// On a sharded scheduler it halts the whole group; stopping from inside a
// parallel window segment would make the halt instant depend on goroutine
// interleaving, so that is a programming error — stop from a sync event
// (ShardGroup.SyncAt/SyncAfter) instead.
func (s *Scheduler) Stop() {
	if s.group != nil {
		if s.logging {
			panic("sim: Stop called from a parallel shard segment; use a ShardGroup sync event")
		}
		s.group.Stop()
		return
	}
	s.stopped = true
}

// ShardIndex returns this scheduler's index within its ShardGroup, or 0
// for an ungrouped scheduler.
func (s *Scheduler) ShardIndex() int { return s.shardIdx }

// Group returns the ShardGroup this scheduler belongs to, or nil.
func (s *Scheduler) Group() *ShardGroup { return s.group }

// PeekTime returns the firing instant of the earliest pending event, or
// End when the queue is empty. The shard group's window loop uses it as
// the shard's horizon query; it costs one O(1) wheel findMin.
func (s *Scheduler) PeekTime() Time {
	if ev := s.peekEvent(); ev != nil {
		return ev.at
	}
	return End
}

// Step executes the single earliest pending event. It reports whether an
// event was executed.
func (s *Scheduler) Step() bool {
	ev := s.peekEvent()
	if ev == nil {
		return false
	}
	s.dispatch(ev)
	return true
}

// RunUntil executes events in order until the queue is empty, the horizon
// t is passed, or Stop is called. Time is left at the later of the last
// executed event and t (when the horizon was reached with events pending,
// time advances to t exactly).
func (s *Scheduler) RunUntil(t Time) {
	if s.group != nil {
		panic("sim: RunUntil on a sharded scheduler; drive the ShardGroup instead")
	}
	if s.running {
		return
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()

	for !s.stopped {
		ev := s.peekEvent()
		if ev == nil {
			break
		}
		if ev.at > t {
			s.advanceTo(t)
			return
		}
		s.dispatch(ev)
	}
	if s.now < t && t != End && s.live == 0 {
		s.advanceTo(t)
	}
}

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() { s.RunUntil(End) }

// advanceTo moves the clock forward without dispatching, keeping the
// wheel synchronized so later insertions address against the new instant.
func (s *Scheduler) advanceTo(t Time) {
	if t <= s.now {
		return
	}
	s.now = t
	s.syncWheel()
}

// dispatch removes ev from its container, advances the clock to its
// instant, and runs its callback.
func (s *Scheduler) dispatch(ev *event) {
	if invariantChecks.Load() {
		s.verifyDispatch(ev)
	}
	switch ev.where {
	case placeWheel:
		s.wheel.remove(ev)
	case placeHeap:
		// peekEvent returns a heap event only when it is the valid top.
		s.overflowPop()
		s.heapLive--
		ev.where = placeNone
	}
	if ev.at > s.now {
		s.now = ev.at
		s.syncWheel()
	}
	s.fired++
	s.live--
	fn := ev.fn
	s.release(ev)
	fn()
}

// peekEvent returns the earliest pending event without executing it,
// discarding stale overflow entries along the way.
func (s *Scheduler) peekEvent() *event {
	if ev := s.wheel.findMin(s.now); ev != nil {
		return ev
	}
	// The wheel is empty; after migration every heap event is beyond the
	// wheel span, so a valid top is the global minimum.
	for len(s.overflow) > 0 {
		e := s.overflow[0]
		if e.ev.seq == e.seq && e.ev.state == evScheduled {
			return e.ev
		}
		s.overflowPop()
	}
	return nil
}

// place files an armed event into the wheel or, beyond the wheel span,
// the overflow heap.
func (s *Scheduler) place(ev *event) {
	if uint64(ev.at^s.now)>>wheelSpanShift != 0 {
		s.overflowPush(heapEntry{at: ev.at, seq: ev.seq, ev: ev})
		ev.where = placeHeap
		s.heapLive++
		return
	}
	s.wheel.insert(ev, s.now)
}

// unplace detaches a still-armed event from its container: wheel slots
// compact eagerly, heap entries go stale and are discarded when popped.
func (s *Scheduler) unplace(ev *event) {
	switch ev.where {
	case placeWheel:
		s.wheel.remove(ev)
	case placeHeap:
		s.heapLive--
		ev.where = placeNone
	}
}

// syncWheel re-synchronizes the wheel with the clock. Whenever the clock
// crosses a level's slot boundary, that level's now-current slot cascades
// into lower levels; whenever it crosses the wheel-span boundary,
// overflow events within reach migrate into the wheel. Called on every
// clock advance, it restores the invariant that each level's events all
// fire before the next level's — the ordering findMin depends on.
func (s *Scheduler) syncWheel() {
	if k := uint64(s.now) >> wheelSpanShift; k != s.spanKey {
		s.spanKey = k
		s.migrateOverflow()
	}
	for l := wheelLevels - 1; l >= 1; l-- {
		if k := uint64(s.now) >> levelShift(l); k != s.cascadeKey[l] {
			s.cascadeKey[l] = k
			s.wheel.cascade(l, int(k)&wheelMask, s.now)
		}
	}
}

// migrateOverflow drains overflow events that are now within the wheel
// span into the wheel, discarding stale entries as they surface.
func (s *Scheduler) migrateOverflow() {
	for len(s.overflow) > 0 {
		e := s.overflow[0]
		valid := e.ev.seq == e.seq && e.ev.state == evScheduled
		if valid && uint64(e.at^s.now)>>wheelSpanShift != 0 {
			return
		}
		s.overflowPop()
		if valid {
			s.heapLive--
			s.wheel.insert(e.ev, s.now)
		}
	}
}

// alloc takes an event off the free list (or allocates one) and arms it.
func (s *Scheduler) alloc(at Time, fn func()) *event {
	ev := s.allocRaw(at, fn)
	s.assignSeq(ev)
	return ev
}

// allocRaw arms an event without assigning a sequence number; the caller
// supplies one (assignSeq, or a definitive number at the barrier merge).
func (s *Scheduler) allocRaw(at Time, fn func()) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{sched: s}
	}
	ev.at = at
	ev.fn = fn
	ev.state = evScheduled
	return ev
}

// assignSeq hands ev its sequence number for this arming. Ungrouped
// schedulers draw from the local counter; a sharded scheduler draws from
// the group's shared counter (so program-order arming during the
// single-threaded phases numbers exactly as a single core would), except
// during a logged window segment, where numbers are provisional local
// ones and each consumption is recorded for the barrier merge.
func (s *Scheduler) assignSeq(ev *event) {
	if s.logging {
		ev.seq = s.seq
		s.seq++
		s.calls = append(s.calls, callRec{ev: ev, gen: ev.gen})
		return
	}
	if s.group != nil {
		ev.seq = s.group.takeSeq()
		return
	}
	ev.seq = s.seq
	s.seq++
}

// scheduleSeq files a new event under a caller-chosen sequence number
// (the barrier merge uses it to deliver cross-shard posts under their
// definitive global numbers).
func (s *Scheduler) scheduleSeq(at Time, fn func(), seq uint64) {
	if invariantChecks.Load() && at < s.now {
		panic(fmt.Sprintf("sim: cross-shard post at %v is before destination clock %v (lookahead violated)", at, s.now))
	}
	ev := s.allocRaw(at, fn)
	ev.seq = seq
	s.place(ev)
	s.live++
}

// rewriteSeq rebinds a still-armed event to its definitive sequence
// number. Wheel slots are unsorted intrusive lists, so the in-place
// rewrite is safe; an event resident in the overflow heap gets a fresh
// entry under the new key while the old entry goes stale by seq mismatch
// (heapLive counts events, not entries, so it is unchanged).
func (s *Scheduler) rewriteSeq(ev *event, seq uint64) {
	ev.seq = seq
	if ev.where == placeHeap {
		s.overflowPush(heapEntry{at: ev.at, seq: seq, ev: ev})
	}
}

// Post schedules fn on the destination shard dst at the absolute instant
// at, running xfer (which may move payload between shard-local pools)
// before fn becomes reachable by dst. Outside a logged segment it applies
// immediately, numbering from the shared counter exactly as a single core
// would; inside a logged segment it consumes one provisional number and
// is deferred to the barrier, where the merge applies it in global
// dispatch order. Conservative lookahead guarantees at is never in dst's
// past.
func (s *Scheduler) Post(dst *Scheduler, at Time, xfer, fn func()) {
	if s.logging {
		s.seq++
		s.calls = append(s.calls, callRec{post: true, dst: dst, at: at, xfer: xfer, fn: fn})
		return
	}
	if xfer != nil {
		xfer()
	}
	if g := s.group; g != nil && at < g.minPost {
		g.minPost = at
	}
	if _, err := dst.At(at, fn); err != nil {
		panic(fmt.Sprintf("sim: cross-shard post at %v is before destination clock %v (lookahead violated)", at, dst.now))
	}
}

// runSegment dispatches this shard's events with firing key strictly
// below (limAt, limSeq), recording the exec stream for the barrier
// merge. The caller arms logging mode and the provisional base first.
func (s *Scheduler) runSegment(limAt Time, limSeq uint64) {
	for {
		ev := s.peekEvent()
		if ev == nil || ev.at > limAt || (ev.at == limAt && ev.seq >= limSeq) {
			return
		}
		at, seq := ev.at, ev.seq
		nBefore := len(s.calls)
		s.dispatch(ev)
		s.execs = append(s.execs, execRec{at: at, seq: seq, nCalls: int32(len(s.calls) - nBefore)})
	}
}

// release recycles a fired or cancelled event. Bumping gen invalidates
// every Timer handle that still references this event.
func (s *Scheduler) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.state = evDone
	ev.where = placeNone
	s.free = append(s.free, ev)
}

// verifyDispatch runs the per-event invariant assertions: the clock never
// goes backwards, and the live-event accounting covers wheel slots and
// the overflow heap exactly.
func (s *Scheduler) verifyDispatch(ev *event) {
	if ev.at < s.now {
		panic(fmt.Sprintf(
			"sim: time went backwards: event seq=%d at=%v fired at now=%v (wheel=%d overflow=%d live=%d fired=%d)",
			ev.seq, ev.at, s.now, s.wheel.count, s.heapLive, s.live, s.fired))
	}
	if s.live != s.wheel.count+s.heapLive {
		panic(fmt.Sprintf(
			"sim: live-event accounting drift: live=%d but wheel=%d + overflow=%d at now=%v",
			s.live, s.wheel.count, s.heapLive, s.now))
	}
}

// CheckAccounting walks the wheel slots and the overflow heap and
// verifies the scheduler's structural invariants: occupancy bitmaps match
// slot lists, every armed event is addressed where its bookkeeping says,
// nothing is scheduled before the clock, and the live count equals the
// events actually stored. It panics with a diagnostic on violation. Like
// netsim's packet-conservation checker it must run between events; the
// chaos harness schedules it periodically when invariant checking is
// armed.
func (s *Scheduler) CheckAccounting() {
	inWheel := 0
	for l := 0; l < wheelLevels; l++ {
		for idx := 0; idx < wheelSlots; idx++ {
			head := s.wheel.slots[l][idx]
			occupied := s.wheel.occ[l][idx>>6]&(1<<(uint(idx)&63)) != 0
			if occupied != (head != nil) {
				panic(fmt.Sprintf(
					"sim: wheel occupancy bitmap drift at level %d slot %d (bit=%v head=%v)",
					l, idx, occupied, head != nil))
			}
			for ev := head; ev != nil; ev = ev.next {
				if ev.state != evScheduled || ev.where != placeWheel ||
					int(ev.level) != l || int(ev.slot) != idx {
					panic(fmt.Sprintf(
						"sim: misfiled wheel event seq=%d state=%d where=%d level=%d slot=%d found at level %d slot %d",
						ev.seq, ev.state, ev.where, ev.level, ev.slot, l, idx))
				}
				if ev.at < s.now {
					panic(fmt.Sprintf(
						"sim: wheel event seq=%d at=%v is before now=%v", ev.seq, ev.at, s.now))
				}
				inWheel++
			}
		}
	}
	if inWheel != s.wheel.count {
		panic(fmt.Sprintf("sim: wheel count drift: stored %d events, count says %d",
			inWheel, s.wheel.count))
	}
	inHeap := 0
	for _, e := range s.overflow {
		if e.ev.seq != e.seq || e.ev.state != evScheduled {
			continue // stale entry awaiting lazy discard
		}
		if e.ev.where != placeHeap {
			panic(fmt.Sprintf(
				"sim: overflow entry seq=%d references an event filed at %d", e.seq, e.ev.where))
		}
		if e.at < s.now {
			panic(fmt.Sprintf("sim: overflow event seq=%d at=%v is before now=%v",
				e.seq, e.at, s.now))
		}
		inHeap++
	}
	if inHeap != s.heapLive {
		panic(fmt.Sprintf("sim: overflow count drift: %d live entries, heapLive says %d",
			inHeap, s.heapLive))
	}
	if s.live != s.wheel.count+s.heapLive {
		panic(fmt.Sprintf("sim: live-event accounting drift: live=%d but wheel=%d + overflow=%d",
			s.live, s.wheel.count, s.heapLive))
	}
}

// --- Overflow heap ------------------------------------------------------
//
// A 4-ary min-heap on (at, seq) holding the far-future tail: entries are
// small values so cancellation can simply abandon them — a stale entry
// (its event re-armed with a new seq, or cancelled and recycled) is
// recognized and dropped when it reaches the top. The wider fan-out
// halves the tree depth versus a binary heap; the heap stays tiny (flap
// schedules, experiment end markers), so these ops are off the hot path.

// heapEntry pins the (at, seq) key an event carried when it was pushed;
// seq is globally unique per arming, so a mismatch with the event's
// current seq marks the entry stale.
type heapEntry struct {
	at  Time
	seq uint64
	ev  *event
}

func entryLess(a, b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (s *Scheduler) overflowPush(e heapEntry) {
	s.overflow = append(s.overflow, e)
	h := s.overflow
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !entryLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (s *Scheduler) overflowPop() heapEntry {
	h := s.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = heapEntry{}
	s.overflow = h[:n]
	h = s.overflow
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryLess(h[c], h[min]) {
				min = c
			}
		}
		if !entryLess(h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}
