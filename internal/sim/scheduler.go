package sim

import (
	"container/heap"
	"errors"
	"time"
)

// ErrPastEvent is returned when an event is scheduled before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// event is a scheduled callback. seq provides stable FIFO ordering among
// events with the same firing time so that runs are fully deterministic.
type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 when popped
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. The zero value is not usable; timers are created by the Scheduler.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the timer was still pending
// (i.e., Stop prevented it from firing).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.index == -1 {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the timer is scheduled and not yet fired or
// cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && t.ev.index != -1
}

// Scheduler is a deterministic discrete-event loop. All simulation
// components share one Scheduler and must be driven from a single
// goroutine.
type Scheduler struct {
	events  eventHeap
	now     Time
	seq     uint64
	running bool
	stopped bool
	fired   uint64
}

// NewScheduler returns an empty scheduler positioned at Start.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending (possibly cancelled) events.
func (s *Scheduler) Len() int { return len(s.events) }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at the absolute instant t. Scheduling in the past
// returns ErrPastEvent; scheduling at the current instant is allowed and
// runs after all previously scheduled events for that instant.
func (s *Scheduler) At(t Time, fn func()) (*Timer, error) {
	if t < s.now {
		return nil, ErrPastEvent
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{ev: ev}, nil
}

// After schedules fn to run d after the current instant. Negative d is
// clamped to zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	timer, err := s.At(s.now.Add(d), fn)
	if err != nil {
		// Unreachable: now+|d| is never in the past. Keep the event loop
		// alive regardless.
		return &Timer{}
	}
	return timer
}

// Stop halts the run loop after the event currently executing returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Step executes the single earliest pending event. It reports whether an
// event was executed.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		popped, ok := heap.Pop(&s.events).(*event)
		if !ok {
			return false
		}
		if popped.cancelled {
			continue
		}
		s.now = popped.at
		s.fired++
		popped.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is empty, the horizon
// t is passed, or Stop is called. Time is left at the later of the last
// executed event and t (when the horizon was reached with events pending,
// time advances to t exactly).
func (s *Scheduler) RunUntil(t Time) {
	if s.running {
		return
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()

	for !s.stopped {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > t {
			s.now = t
			return
		}
		s.Step()
	}
	if s.now < t && t != End && s.Len() == 0 {
		s.now = t
	}
}

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() { s.RunUntil(End) }

// peek returns the earliest non-cancelled event without executing it,
// discarding cancelled heap entries along the way.
func (s *Scheduler) peek() *event {
	for len(s.events) > 0 {
		if !s.events[0].cancelled {
			return s.events[0]
		}
		heap.Pop(&s.events)
	}
	return nil
}
