package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"tcptrim/internal/sim"
)

func TestPipeFIFOOrderProperty(t *testing.T) {
	// Regardless of offered burst sizes, packets on one pipe arrive in
	// the order they were offered (minus tail drops).
	prop := func(bursts []uint8) bool {
		sched := sim.NewScheduler()
		net := NewNetwork(sched)
		a := net.AddHost("a")
		b := net.AddHost("b")
		net.Connect(a, b, LinkConfig{
			Rate:  Gbps,
			Delay: 10 * time.Microsecond,
			Queue: QueueConfig{CapPackets: 50},
		})
		var got []uint64
		b.SetHandler(func(p *Packet) { got = append(got, p.ID) })
		id := uint64(0)
		for i, n := range bursts {
			if i >= 6 {
				break
			}
			at := sim.At(time.Duration(i*100) * time.Microsecond)
			count := int(n%20) + 1
			if _, err := sched.At(at, func() {
				for k := 0; k < count; k++ {
					id++
					a.Send(&Packet{ID: id, Src: a.ID(), Dst: b.ID(), Size: 1500})
				}
			}); err != nil {
				return false
			}
		}
		sched.Run()
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPipeStatsAccumulate(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	a := net.AddHost("a")
	b := net.AddHost("b")
	ab, _ := net.Connect(a, b, LinkConfig{Rate: Gbps, Delay: time.Microsecond,
		Queue: QueueConfig{CapPackets: 100}})
	b.SetHandler(func(*Packet) {})
	for i := 0; i < 7; i++ {
		a.Send(&Packet{ID: uint64(i), Src: a.ID(), Dst: b.ID(), Size: 1500})
	}
	sched.Run()
	st := ab.Stats()
	if st.SentPackets != 7 || st.SentBytes != 7*1500 {
		t.Errorf("stats = %+v", st)
	}
	if ab.Rate() != Gbps || ab.Delay() != time.Microsecond {
		t.Error("accessors disagree with config")
	}
	if ab.From().Name() != "a" || ab.To().Name() != "b" {
		t.Error("endpoint accessors wrong")
	}
}

func TestEcmpHashDeterministicAndSpreading(t *testing.T) {
	// Same inputs, same hash.
	if ecmpHash(7, 3) != ecmpHash(7, 3) {
		t.Error("hash not deterministic")
	}
	// Across many flows and 4 next hops, every bucket gets a reasonable
	// share (no polarization).
	const hops = 4
	var buckets [hops]int
	const flows = 4000
	for f := 0; f < flows; f++ {
		buckets[ecmpHash(FlowID(f), 5)%hops]++
	}
	for i, n := range buckets {
		if n < flows/hops/2 || n > flows/hops*2 {
			t.Errorf("bucket %d got %d of %d", i, n, flows)
		}
	}
	// Different deciding nodes spread the same flow differently often
	// enough to avoid polarization down the tree.
	differs := 0
	for f := 0; f < 100; f++ {
		if ecmpHash(FlowID(f), 1)%hops != ecmpHash(FlowID(f), 2)%hops {
			differs++
		}
	}
	if differs < 30 {
		t.Errorf("only %d/100 flows hash differently across nodes", differs)
	}
}

func TestHostTapObservesWithoutConsuming(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, b, LinkConfig{Rate: Gbps, Delay: time.Microsecond,
		Queue: QueueConfig{CapPackets: 10}})
	tapped, handled := 0, 0
	b.SetTap(func(*Packet) { tapped++ })
	b.SetHandler(func(*Packet) { handled++ })
	a.Send(&Packet{Src: a.ID(), Dst: b.ID(), Size: 1500})
	sched.Run()
	if tapped != 1 || handled != 1 {
		t.Errorf("tapped=%d handled=%d", tapped, handled)
	}
}

func TestQueueByteAndPacketCapsTogether(t *testing.T) {
	q := NewQueue(QueueConfig{CapPackets: 3, CapBytes: 4000})
	// Byte cap binds first here.
	if !q.Enqueue(dataPkt(1, 1500)) || !q.Enqueue(dataPkt(2, 1500)) {
		t.Fatal("first two must fit")
	}
	if q.Enqueue(dataPkt(3, 1500)) {
		t.Error("byte cap should reject the third")
	}
	// Small packets until the packet cap binds.
	if !q.Enqueue(&Packet{ID: 4, Size: 100}) {
		t.Error("small packet should fit")
	}
	if q.Enqueue(&Packet{ID: 5, Size: 100}) {
		t.Error("packet cap should reject the fourth")
	}
}
