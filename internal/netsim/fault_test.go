package netsim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"tcptrim/internal/sim"
)

// faultRig is a two-host network whose a→b pipe the tests fault.
type faultRig struct {
	sched *sim.Scheduler
	net   *Network
	a, b  *Host
	ab    *Pipe
	got   []uint64 // IDs delivered to b, in arrival order
}

func newFaultRig(t *testing.T, queueCap int) *faultRig {
	t.Helper()
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	r := &faultRig{sched: sched, net: net}
	r.a = net.AddHost("a")
	r.b = net.AddHost("b")
	r.ab, _ = net.Connect(r.a, r.b, LinkConfig{
		Rate:  Gbps,
		Delay: 10 * time.Microsecond,
		Queue: QueueConfig{CapPackets: queueCap},
	})
	r.b.SetHandler(func(p *Packet) { r.got = append(r.got, p.ID) })
	return r
}

// sendAt offers count pooled packets at the given instant.
func (r *faultRig) sendAt(t *testing.T, at time.Duration, count int, firstID uint64) {
	t.Helper()
	if _, err := r.sched.At(sim.At(at), func() {
		for i := 0; i < count; i++ {
			pkt := r.net.AllocPacket()
			pkt.ID = firstID + uint64(i)
			pkt.Src, pkt.Dst = r.a.ID(), r.b.ID()
			pkt.Size = 1500
			r.a.Send(pkt)
		}
	}); err != nil {
		t.Fatalf("schedule send at %v: %v", at, err)
	}
}

// finish drains the scheduler and verifies the pool balanced out.
func (r *faultRig) finish(t *testing.T) {
	t.Helper()
	r.sched.Run()
	r.net.CheckInvariants()
	if live := r.net.LivePackets(); live != 0 {
		t.Fatalf("%d pooled packets leaked", live)
	}
}

func withInvariants(t *testing.T) {
	t.Helper()
	sim.SetInvariantChecks(true)
	t.Cleanup(func() { sim.SetInvariantChecks(false) })
}

func TestGilbertElliottBurstyLossConserved(t *testing.T) {
	withInvariants(t)
	r := newFaultRig(t, 4000)
	// Always-lossy bad state, mean burst length 5 packets, ~33% of time bad.
	r.ab.InjectGilbertElliott(GEConfig{PGoodBad: 0.1, PBadGood: 0.2, LossBad: 1}, sim.NewRand(1))
	const n = 2000
	r.sendAt(t, 0, n, 1)
	r.finish(t)

	st := r.ab.Stats()
	if st.BurstLossDrops == 0 {
		t.Fatal("GE channel never dropped")
	}
	if len(r.got)+st.BurstLossDrops != n {
		t.Errorf("delivered %d + burst drops %d != offered %d", len(r.got), st.BurstLossDrops, n)
	}
	// A bursty channel must drop consecutive packets somewhere; an
	// independent Bernoulli channel at the same rate almost surely would
	// too, so check for a run of at least 3 — vanishingly unlikely unless
	// the state machine actually lingers in the bad state.
	delivered := make(map[uint64]bool, len(r.got))
	for _, id := range r.got {
		delivered[id] = true
	}
	run, maxRun := 0, 0
	for id := uint64(1); id <= n; id++ {
		if delivered[id] {
			run = 0
			continue
		}
		run++
		if run > maxRun {
			maxRun = run
		}
	}
	if maxRun < 3 {
		t.Errorf("longest loss burst = %d packets, want bursty (>= 3)", maxRun)
	}
}

func TestLinkFlapDrainsQueueAndBlackholes(t *testing.T) {
	withInvariants(t)
	r := newFaultRig(t, 100)
	// 40 packets at t=0: one serializes (12 µs at 1 Gbps), rest queue.
	r.sendAt(t, 0, 40, 1)
	// Down mid-burst: the queue drains to the pool, and the packet on the
	// wire is blackholed at its arrival event.
	if _, err := r.sched.At(sim.At(5*time.Microsecond), func() {
		if r.ab.Down() {
			t.Error("Down() true before flap")
		}
		r.ab.SetLinkDown(true)
	}); err != nil {
		t.Fatal(err)
	}
	// Offered while down: dropped at Send.
	r.sendAt(t, 50*time.Microsecond, 5, 100)
	// Back up; traffic flows again.
	if _, err := r.sched.At(sim.At(100*time.Microsecond), func() { r.ab.SetLinkDown(false) }); err != nil {
		t.Fatal(err)
	}
	r.sendAt(t, 150*time.Microsecond, 10, 200)
	r.finish(t)

	st := r.ab.Stats()
	if st.FlapDrops != 45 {
		t.Errorf("FlapDrops = %d, want 45 (39 queued + 1 in flight + 5 offered while down)", st.FlapDrops)
	}
	for _, id := range r.got {
		if id < 200 {
			t.Errorf("packet %d delivered through a dead link", id)
		}
	}
	if len(r.got) != 10 {
		t.Errorf("delivered %d packets after restore, want 10", len(r.got))
	}
}

func TestScheduleFlapsTogglesAndValidates(t *testing.T) {
	withInvariants(t)
	r := newFaultRig(t, 100)
	if err := r.ab.ScheduleFlaps(FlapConfig{DownFor: 0}); err == nil {
		t.Error("DownFor=0 accepted")
	}
	if err := r.ab.ScheduleFlaps(FlapConfig{DownFor: time.Millisecond, Count: 2}); err == nil {
		t.Error("Count>1 with UpFor=0 accepted")
	}
	cfg := FlapConfig{
		FirstDownAt: sim.At(time.Millisecond),
		DownFor:     time.Millisecond,
		UpFor:       2 * time.Millisecond,
		Count:       2,
	}
	if err := r.ab.ScheduleFlaps(cfg); err != nil {
		t.Fatal(err)
	}
	// Probe Down() in the middle of each expected phase:
	// down [1ms,2ms), up [2ms,4ms), down [4ms,5ms), up from 5ms.
	for _, probe := range []struct {
		at   time.Duration
		down bool
	}{
		{500 * time.Microsecond, false},
		{1500 * time.Microsecond, true},
		{3 * time.Millisecond, false},
		{4500 * time.Microsecond, true},
		{6 * time.Millisecond, false},
	} {
		probe := probe
		if _, err := r.sched.At(sim.At(probe.at), func() {
			if got := r.ab.Down(); got != probe.down {
				t.Errorf("Down() at %v = %v, want %v", probe.at, got, probe.down)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	r.finish(t)
}

func TestScheduleFlapsReplacesPendingSchedule(t *testing.T) {
	// A second ScheduleFlaps while the first edge is still pending must
	// re-slot the pipe's flap timer in place: only the new schedule runs.
	withInvariants(t)
	r := newFaultRig(t, 100)
	if err := r.ab.ScheduleFlaps(FlapConfig{
		FirstDownAt: sim.At(time.Millisecond),
		DownFor:     10 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.ab.ScheduleFlaps(FlapConfig{
		FirstDownAt: sim.At(4 * time.Millisecond),
		DownFor:     time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.ab.ScheduleFlaps(FlapConfig{FirstDownAt: sim.At(-time.Millisecond),
		DownFor: time.Millisecond}); err == nil {
		t.Error("FirstDownAt in the past accepted")
	}
	// Replaced schedule: the link must stay up through the old window and
	// flap down only during [4ms, 5ms).
	for _, probe := range []struct {
		at   time.Duration
		down bool
	}{
		{1500 * time.Microsecond, false},
		{3 * time.Millisecond, false},
		{4500 * time.Microsecond, true},
		{6 * time.Millisecond, false},
	} {
		probe := probe
		if _, err := r.sched.At(sim.At(probe.at), func() {
			if got := r.ab.Down(); got != probe.down {
				t.Errorf("Down() at %v = %v, want %v", probe.at, got, probe.down)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	r.finish(t)
}

func TestReorderDeliversEverythingOutOfOrder(t *testing.T) {
	withInvariants(t)
	r := newFaultRig(t, 4000)
	// Every packet is held back up to 200 µs — far beyond the 12 µs
	// serialization gap — so arrival order is thoroughly shuffled.
	r.ab.InjectReorder(1, 200*time.Microsecond, sim.NewRand(2))
	const n = 200
	r.sendAt(t, 0, n, 1)
	r.finish(t)

	if len(r.got) != n {
		t.Fatalf("delivered %d packets, want all %d (reordering must not lose)", len(r.got), n)
	}
	if got := r.ab.Stats().Reordered; got != n {
		t.Errorf("Reordered = %d, want %d", got, n)
	}
	inversions := 0
	for i := 1; i < len(r.got); i++ {
		if r.got[i] < r.got[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("arrival order identical to send order despite reorder injection")
	}
}

func TestDuplicateDeliversTwiceFromDistinctPackets(t *testing.T) {
	withInvariants(t)
	r := newFaultRig(t, 4000)
	r.ab.InjectDuplicate(1, sim.NewRand(3))
	const n = 100
	r.sendAt(t, 0, n, 1)
	r.finish(t)

	if len(r.got) != 2*n {
		t.Fatalf("delivered %d packets, want %d (each exactly twice)", len(r.got), 2*n)
	}
	seen := map[uint64]int{}
	for _, id := range r.got {
		seen[id]++
	}
	for id := uint64(1); id <= n; id++ {
		if seen[id] != 2 {
			t.Errorf("packet %d delivered %d times, want 2", id, seen[id])
		}
	}
	if got := r.ab.Stats().Duplicated; got != n {
		t.Errorf("Duplicated = %d, want %d", got, n)
	}
	// finish() already proved the pool balanced: if a clone had aliased its
	// original, the double release would have panicked under invariants.
}

func TestDuplicateCloneCopiesSack(t *testing.T) {
	withInvariants(t)
	r := newFaultRig(t, 100)
	r.ab.InjectDuplicate(1, sim.NewRand(4))
	var sacks [][2]int64
	r.b.SetHandler(func(p *Packet) {
		for _, blk := range p.Sack {
			sacks = append(sacks, [2]int64{int64(blk.Start), int64(blk.End)})
		}
	})
	if _, err := r.sched.At(0, func() {
		pkt := r.net.AllocPacket()
		pkt.Src, pkt.Dst, pkt.Size = r.a.ID(), r.b.ID(), 40
		pkt.Sack = append(pkt.Sack[:0], SackBlock{Start: 1000, End: 2000})
		r.a.Send(pkt)
	}); err != nil {
		t.Fatal(err)
	}
	r.finish(t)
	if len(sacks) != 2 {
		t.Fatalf("saw %d SACK blocks across deliveries, want 2", len(sacks))
	}
	for _, s := range sacks {
		if s != [2]int64{1000, 2000} {
			t.Errorf("SACK block = %v, want [1000 2000]", s)
		}
	}
}

func TestDoubleReleasePanicsUnderInvariants(t *testing.T) {
	withInvariants(t)
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	pkt := net.AllocPacket()
	net.ReleasePacket(pkt)
	defer func() {
		if recover() == nil {
			t.Error("double ReleasePacket did not panic with invariant checks on")
		}
	}()
	net.ReleasePacket(pkt)
}

func TestSendAfterReleasePanicsUnderInvariants(t *testing.T) {
	withInvariants(t)
	r := newFaultRig(t, 100)
	pkt := r.net.AllocPacket()
	pkt.Src, pkt.Dst, pkt.Size = r.a.ID(), r.b.ID(), 1500
	r.net.ReleasePacket(pkt)
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("Send of a released packet did not panic with invariant checks on")
		}
		if !strings.Contains(fmt.Sprint(rec), "released packet") {
			t.Errorf("panic message %q does not mention released packet", rec)
		}
	}()
	r.ab.Send(pkt)
}
