package netsim

import (
	"fmt"
	"time"

	"tcptrim/internal/sim"
)

// LinkConfig describes one full-duplex cable. The same queue configuration
// is applied to both directions.
type LinkConfig struct {
	Rate  Bitrate
	Delay time.Duration
	Queue QueueConfig
}

// NetworkStats aggregates network-wide drop/forwarding counters that are
// not attributable to a single queue.
type NetworkStats struct {
	// RoutingDrops counts packets dropped for lack of a route or because
	// the hop limit was exceeded.
	RoutingDrops int
}

// Network is a topology of hosts and switches plus its routing state.
// Build the topology first (AddHost/AddSwitch/Connect), then run traffic;
// routes are computed lazily per destination and invalidated on Connect.
type Network struct {
	sched *sim.Scheduler
	nodes []Node
	// out[node] = that node's outgoing pipes. NodeIDs are dense (register
	// hands them out sequentially), so both adjacency and routes live in
	// flat slices: the per-packet forward path indexes instead of hashing.
	out [][]*Pipe
	// routes[dst][node] = equal-cost next-hop pipes from node toward dst;
	// routes[dst] == nil means that destination's tree is not built yet.
	routes [][][]*Pipe
	nextID NodeID

	// pools holds the per-shard packet free lists (see pool.go); an
	// unsharded network has exactly one. shStats likewise keeps routing
	// counters per shard so parallel window segments never share a
	// counter word.
	pools   []pktPool
	shStats []NetworkStats

	// Sharding state (see shard.go): group is non-nil once the topology
	// has been partitioned, nodeShard maps every node to its shard, and
	// routesFrozen marks the route cache immutable (prewarmed for every
	// host) so parallel segments can read it without synchronization.
	group        *sim.ShardGroup
	nodeShard    []int32
	routesFrozen bool
}

// NewNetwork returns an empty network driven by sched.
func NewNetwork(sched *sim.Scheduler) *Network {
	return &Network{
		sched:   sched,
		pools:   make([]pktPool, 1),
		shStats: make([]NetworkStats, 1),
	}
}

// Scheduler returns the event scheduler driving this network (shard 0's
// scheduler once sharded).
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Group returns the shard group partitioning this network, or nil.
func (n *Network) Group() *sim.ShardGroup { return n.group }

// Stats returns the network-wide counters, summed across shards.
func (n *Network) Stats() NetworkStats {
	var s NetworkStats
	for i := range n.shStats {
		s.RoutingDrops += n.shStats[i].RoutingDrops
	}
	return s
}

// shardOf returns the shard owning node id (0 when unsharded).
func (n *Network) shardOf(id NodeID) int32 {
	if n.nodeShard == nil {
		return 0
	}
	return n.nodeShard[id]
}

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return len(n.nodes) }

// Node returns the node with the given id, or nil.
func (n *Network) Node(id NodeID) Node {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		return nil
	}
	return n.nodes[id]
}

// AddHost creates a host. An empty name gets an auto-generated one.
func (n *Network) AddHost(name string) *Host {
	h := &Host{net: n, id: n.nextID, name: name}
	if name == "" {
		h.name = fmt.Sprintf("host%d", h.id)
	}
	n.register(h)
	return h
}

// AddSwitch creates a switch. An empty name gets an auto-generated one.
func (n *Network) AddSwitch(name string) *Switch {
	s := &Switch{net: n, id: n.nextID, name: name}
	if name == "" {
		s.name = fmt.Sprintf("switch%d", s.id)
	}
	n.register(s)
	return s
}

func (n *Network) register(node Node) {
	n.nodes = append(n.nodes, node)
	n.out = append(n.out, nil)
	n.routes = append(n.routes, nil)
	n.nextID++
}

// Connect wires a full-duplex cable between a and b and returns the two
// directed pipes (a→b, b→a). Adding links invalidates cached routes.
func (n *Network) Connect(a, b Node, cfg LinkConfig) (*Pipe, *Pipe) {
	if n.group != nil {
		panic("netsim: Connect after Shard; build the topology before partitioning it")
	}
	ab := &Pipe{
		sched: n.sched, net: n, from: a, to: b,
		rate: cfg.Rate, delay: cfg.Delay,
		queue: NewQueue(cfg.Queue),
	}
	ba := &Pipe{
		sched: n.sched, net: n, from: b, to: a,
		rate: cfg.Rate, delay: cfg.Delay,
		queue: NewQueue(cfg.Queue),
	}
	// Queues stamp enqueue times with the simulation clock (sojourn-time
	// AQMs need it) and return head-dropped packets to the pool.
	for _, q := range [...]*Queue{ab.queue, ba.queue} {
		q.SetClock(n.sched.Now)
		q.SetDropHandler(n.ReleasePacket)
	}
	n.out[a.ID()] = append(n.out[a.ID()], ab)
	n.out[b.ID()] = append(n.out[b.ID()], ba)
	clear(n.routes)
	return ab, ba
}

// PipesFrom returns the outgoing pipes of a node (shared slice; callers
// must not mutate it).
func (n *Network) PipesFrom(id NodeID) []*Pipe { return n.out[id] }

// forward routes pkt out of node toward pkt.Dst, applying per-flow ECMP
// when several shortest-path next hops exist.
func (n *Network) forward(node Node, pkt *Packet) {
	pkt.Hops++
	if pkt.Hops > maxHops {
		sh := n.shardOf(node.ID())
		n.shStats[sh].RoutingDrops++
		n.releaseShard(pkt, sh)
		return
	}
	hops := n.nextHops(node.ID(), pkt.Dst)
	if len(hops) == 0 {
		sh := n.shardOf(node.ID())
		n.shStats[sh].RoutingDrops++
		n.releaseShard(pkt, sh)
		return
	}
	pipe := hops[0]
	if len(hops) > 1 {
		pipe = hops[ecmpHash(pkt.Flow, node.ID())%uint64(len(hops))]
	}
	pipe.Send(pkt)
}

// nextHops returns the equal-cost next-hop pipes from node toward dst,
// computing and caching the destination's routing tree on first use.
// Once the cache is frozen (sharded networks prewarm every host
// destination so parallel segments only ever read the table), a nil tree
// means the destination is not a routable endpoint and the packet drops.
func (n *Network) nextHops(node, dst NodeID) []*Pipe {
	if int(dst) >= len(n.routes) {
		return nil
	}
	table := n.routes[dst]
	if table == nil {
		if n.routesFrozen {
			return nil
		}
		table = n.buildRoutes(dst)
		n.routes[dst] = table
	}
	return table[node]
}

// buildRoutes runs a BFS from dst over reversed links, then records, for
// every node, all outgoing pipes that decrease the distance to dst.
func (n *Network) buildRoutes(dst NodeID) [][]*Pipe {
	const unreachable = int(^uint(0) >> 1)
	dist := make([]int, len(n.nodes))
	for i := range dist {
		dist[i] = unreachable
	}
	dist[dst] = 0
	frontier := []NodeID{dst}
	// Reverse adjacency: node u reaches v when u has a pipe to v; for the
	// BFS from dst we need "who has a pipe INTO the frontier". All cables
	// are full duplex, so out-adjacency doubles as in-adjacency.
	for len(frontier) > 0 {
		var next []NodeID
		for _, v := range frontier {
			for _, pipe := range n.out[v] {
				u := pipe.to.ID()
				if dist[u] == unreachable {
					dist[u] = dist[v] + 1
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	table := make([][]*Pipe, len(n.nodes))
	for id := range n.nodes {
		u := NodeID(id)
		if u == dst || dist[u] == unreachable {
			continue
		}
		for _, pipe := range n.out[u] {
			if dist[pipe.to.ID()] == dist[u]-1 {
				table[u] = append(table[u], pipe)
			}
		}
	}
	return table
}

// ecmpHash mixes the flow id with the deciding node so that different
// switches spread the same flow set differently (avoids hash
// polarization). FNV-1a.
func ecmpHash(flow FlowID, node NodeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range [...]uint64{uint64(flow), uint64(node)} {
		for i := 0; i < 8; i++ {
			h ^= (b >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	return h
}
