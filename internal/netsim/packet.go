// Package netsim models a packet-switched network at NS2 granularity on
// top of the sim event core: unidirectional pipes with a transmission rate
// and propagation delay, drop-tail (optionally ECN-marking) FIFO queues,
// store-and-forward switches, hosts, and static shortest-path routing with
// per-flow ECMP.
package netsim

import (
	"fmt"

	"tcptrim/internal/sim"
)

// NodeID identifies a node within one Network.
type NodeID int

// FlowID identifies a transport flow end to end. Flow IDs are assigned by
// the transport layer and are only required to be unique per Network.
type FlowID uint64

// Wire format constants shared across the simulator. The paper's
// simulations use 1460-byte TCP segments ("packet size is set as 1460
// bytes" refers to the MSS; the wire packet adds 40 bytes of TCP/IP
// header).
const (
	// MSS is the maximum segment size in payload bytes.
	MSS = 1460
	// HeaderSize is the TCP/IP header overhead per packet in bytes.
	HeaderSize = 40
	// AckSize is the wire size of a pure ACK in bytes.
	AckSize = HeaderSize
)

// MaxSackBlocks is the TCP option-space limit on SACK ranges per ACK.
const MaxSackBlocks = 3

// SackBlock is one selectively acknowledged byte range [Start, End).
type SackBlock struct {
	Start, End int64
}

// Packet is the unit of transmission. Packets are passed by pointer and
// owned by exactly one component at a time; they are never shared between
// hops.
type Packet struct {
	ID   uint64
	Flow FlowID
	Src  NodeID
	Dst  NodeID

	// Size is the total wire size in bytes (payload + header).
	Size int
	// Payload is the number of application bytes carried (0 for pure
	// ACKs).
	Payload int
	// Seq is the sequence number of the first payload byte.
	Seq int64

	// IsAck marks a pure acknowledgement.
	IsAck bool
	// Ack is the cumulative acknowledgement: the next byte expected by
	// the receiver. Only meaningful when IsAck.
	Ack int64
	// Sack carries up to MaxSackBlocks selective-acknowledgement ranges
	// of out-of-order data held by the receiver (empty unless the
	// connection negotiated SACK).
	Sack []SackBlock

	// ECT marks an ECN-capable transport; CE is set by a congested queue;
	// ECE echoes CE back to the sender on an ACK.
	ECT bool
	CE  bool
	ECE bool

	// SentAt is stamped by the sending endpoint; Echo carries the
	// timestamp being echoed back on an ACK so the sender can compute
	// RTT with its own clock.
	SentAt sim.Time
	Echo   sim.Time

	// Probe marks a TCP-TRIM probe packet (for tracing/diagnostics; the
	// sender tracks probes by sequence number, not by this flag).
	Probe bool

	// Retransmit marks a retransmitted segment.
	Retransmit bool

	// RecoverySignal marks a switch-originated loss-recovery signal (a
	// T-RACKs agent injection, see tracks.go): an ACK-shaped packet
	// carrying the last cumulative ACK the switch observed for the flow.
	// It rides the normal pipes — and so is subject to the same faults —
	// but never originates at an endpoint.
	RecoverySignal bool

	// Hops counts forwarding steps, guarding against routing loops.
	Hops int

	// pooled marks packets allocated from a Network's free list; inPool
	// guards against double release. Hand-built packets have both false
	// and are never recycled.
	pooled bool
	inPool bool
}

// String renders a compact human-readable packet description for traces.
func (p *Packet) String() string {
	kind := "data"
	if p.IsAck {
		kind = "ack"
	}
	if p.Probe {
		kind += "/probe"
	}
	return fmt.Sprintf("pkt{%d flow=%d %d->%d %s seq=%d ack=%d size=%d}",
		p.ID, p.Flow, p.Src, p.Dst, kind, p.Seq, p.Ack, p.Size)
}
