package netsim

import "tcptrim/internal/sim"

// Node is anything that can terminate or forward packets.
type Node interface {
	// ID returns the node's identity within its Network.
	ID() NodeID
	// Name returns a human-readable label for traces.
	Name() string
	// Receive handles a packet arriving over from.
	Receive(pkt *Packet, from *Pipe)
}

// Handler consumes packets delivered to a host.
type Handler func(pkt *Packet)

// maxHops guards against routing loops; no reproduced topology has paths
// anywhere near this long.
const maxHops = 64

// Host is an end system: packets addressed to it are delivered to its
// handler, anything else is forwarded (hosts in the reproduced topologies
// never actually forward, but the behavior is well defined).
type Host struct {
	net     *Network
	id      NodeID
	name    string
	handler Handler
	tap     Handler

	// Sharding (see shard.go): sched is the owning shard's scheduler (nil
	// until partitioned) and shard its index. The transport layer must arm
	// host-side timers on Scheduler() and allocate from AllocPacket() so
	// its events and pool traffic stay on the host's shard.
	sched *sim.Scheduler
	shard int32
}

var _ Node = (*Host)(nil)

// ID implements Node.
func (h *Host) ID() NodeID { return h.id }

// Name implements Node.
func (h *Host) Name() string { return h.name }

// Network returns the network this host belongs to (the transport layer
// uses it to reach the packet free list).
func (h *Host) Network() *Network { return h.net }

// Scheduler returns the scheduler driving this host's events: its shard's
// once the network is partitioned, the network-wide one before.
func (h *Host) Scheduler() *sim.Scheduler {
	if h.sched != nil {
		return h.sched
	}
	return h.net.sched
}

// AllocPacket draws a packet from this host's shard pool. The transport
// layer must use it (rather than Network.AllocPacket) so a sharded run's
// pool traffic stays shard-local.
func (h *Host) AllocPacket() *Packet { return h.net.allocShard(h.shard) }

// SetHandler installs the delivery callback for packets addressed to this
// host. The transport layer installs its demultiplexer here.
func (h *Host) SetHandler(fn Handler) { h.handler = fn }

// SetTap installs a passive observer invoked for every packet delivered
// to this host, before the handler. Experiments use it to capture traces
// (the paper's Fig. 1 packet-train methodology) without disturbing the
// transport.
func (h *Host) SetTap(fn Handler) { h.tap = fn }

// Receive implements Node.
func (h *Host) Receive(pkt *Packet, _ *Pipe) {
	if pkt.Dst == h.id {
		h.deliver(pkt)
		return
	}
	h.net.forward(h, pkt)
}

// Send injects a packet originated by this host into the network.
func (h *Host) Send(pkt *Packet) {
	if pkt.Dst == h.id {
		// Loopback: deliver immediately at the current instant.
		h.deliver(pkt)
		return
	}
	h.net.forward(h, pkt)
}

// deliver runs the tap and handler, then recycles the packet: delivery is
// the end of a packet's life, and neither taps nor handlers may retain it
// (or its Sack slice) past their return.
func (h *Host) deliver(pkt *Packet) {
	if h.tap != nil {
		h.tap(pkt)
	}
	if h.handler != nil {
		h.handler(pkt)
	}
	h.net.releaseShard(pkt, h.shard)
}

// Switch is a store-and-forward switch. Each egress port is a Pipe with
// its own drop-tail queue; the switch itself only performs the routing
// decision.
type Switch struct {
	net  *Network
	id   NodeID
	name string
	tap  Handler
}

var _ Node = (*Switch)(nil)

// ID implements Node.
func (s *Switch) ID() NodeID { return s.id }

// Name implements Node.
func (s *Switch) Name() string { return s.name }

// SetTap installs a passive observer invoked for every packet the switch
// forwards (the T-RACKs agent's vantage point). Taps must not retain the
// packet or its Sack slice past their return. Under a sharded network a
// tap runs on whichever shard delivers the packet to the switch — safe
// when every pipe into the switch delivers on the switch's own shard, as
// the stock topology shard plans guarantee (cut pipes deliver on their
// destination's shard).
func (s *Switch) SetTap(fn Handler) { s.tap = fn }

// Receive implements Node.
func (s *Switch) Receive(pkt *Packet, _ *Pipe) {
	if s.tap != nil {
		s.tap(pkt)
	}
	s.net.forward(s, pkt)
}
