package netsim

import (
	"fmt"

	"tcptrim/internal/sim"
)

// Packet recycling. Steady-state simulation churns through millions of
// packets whose lifetime is a handful of events (serialize → propagate →
// deliver or drop); allocating each one individually makes the garbage
// collector the bottleneck of large-scale experiments. Every Network owns
// packet free lists instead: the transport layer allocates from them
// and the network layer returns packets at their well-defined death
// points (delivery to a host handler, tail drop, injected loss, routing
// drop).
//
// Unsharded networks keep a single free list with no locking. A sharded
// network (see shard.go) keeps one free list per shard, and every
// alloc/release goes to the pool of the shard *doing* it — the allocating
// sender, the delivering receiver, the dropping queue — so parallel
// window segments never contend: each pool is touched only by its own
// shard's events (or by the single-threaded barrier/sync phases). A
// packet may be allocated from one pool and retired to another; the
// conservation quantity the invariant checker balances is the sum of
// live counts, which individual pools may legitimately see go negative.
//
// Packets built by hand (&Packet{...}, as tests do) are not marked
// pooled and are ignored by release, which keeps external ownership
// semantics unchanged: only packets obtained from AllocPacket are ever
// recycled.

// PoolStats counts packet free-list traffic.
type PoolStats struct {
	// Allocs counts AllocPacket calls that had to allocate a fresh packet.
	Allocs int
	// Reuses counts AllocPacket calls served from the free list.
	Reuses int
	// Releases counts packets returned to the free list.
	Releases int
}

// pktPool is one shard's packet free list and ledger.
type pktPool struct {
	free  []*Packet
	stats PoolStats
	// live counts this pool's allocations minus its releases; negative
	// when a shard retires more cross-shard packets than it originates.
	live int
}

// AllocPacket returns a zeroed packet owned by the caller, drawn from
// the default (shard 0) pool. The packet's Sack slice retains its
// previous capacity so SACK-carrying ACKs do not reallocate in steady
// state. The caller must hand the packet to the network (Host.Send) or
// return it with ReleasePacket.
func (n *Network) AllocPacket() *Packet { return n.allocShard(0) }

// allocShard allocates from shard sh's pool.
func (n *Network) allocShard(sh int32) *Packet {
	pool := &n.pools[sh]
	pool.live++
	if l := len(pool.free); l > 0 {
		p := pool.free[l-1]
		pool.free[l-1] = nil
		pool.free = pool.free[:l-1]
		p.inPool = false
		pool.stats.Reuses++
		return p
	}
	pool.stats.Allocs++
	return &Packet{pooled: true}
}

// ReleasePacket returns a packet obtained from AllocPacket to the
// default pool's free list, zeroing its fields. Packets not allocated
// from any pool (built by hand, as tests do) are ignored, so callers may
// release unconditionally at packet-death points. Releasing the same
// packet twice is a bug — an aliased reference now points into the free
// list — and panics when invariant checks are enabled
// (sim.SetInvariantChecks); otherwise the duplicate release is dropped.
func (n *Network) ReleasePacket(p *Packet) { n.releaseShard(p, 0) }

// releaseShard retires a packet into shard sh's pool.
func (n *Network) releaseShard(p *Packet, sh int32) {
	if p == nil || !p.pooled {
		return
	}
	pool := &n.pools[sh]
	if p.inPool {
		if sim.InvariantChecks() {
			panic(fmt.Sprintf("netsim: double release of pooled packet (pool=%d live=%d)",
				len(pool.free), n.LivePackets()))
		}
		return
	}
	pool.live--
	pool.stats.Releases++
	sack := p.Sack[:0]
	*p = Packet{pooled: true, inPool: true, Sack: sack}
	pool.free = append(pool.free, p)
}

// PoolStats returns the packet free-list counters summed across shards.
func (n *Network) PoolStats() PoolStats {
	var s PoolStats
	for i := range n.pools {
		s.Allocs += n.pools[i].stats.Allocs
		s.Reuses += n.pools[i].stats.Reuses
		s.Releases += n.pools[i].stats.Releases
	}
	return s
}

// LivePackets returns the number of pooled packets currently outside the
// free lists, summed across shards. At quiescence (scheduler drained,
// queues empty) it is zero: every packet has reached one of its death
// points and been recycled.
func (n *Network) LivePackets() int {
	live := 0
	for i := range n.pools {
		live += n.pools[i].live
	}
	return live
}
