package netsim

import (
	"fmt"

	"tcptrim/internal/sim"
)

// Packet recycling. Steady-state simulation churns through millions of
// packets whose lifetime is a handful of events (serialize → propagate →
// deliver or drop); allocating each one individually makes the garbage
// collector the bottleneck of large-scale experiments. Every Network owns
// a free list of packets instead: the transport layer allocates from it
// and the network layer returns packets at their well-defined death
// points (delivery to a host handler, tail drop, injected loss, routing
// drop).
//
// The simulation is single-goroutine per Network, so the free list needs
// no locking. Packets built by hand (&Packet{...}, as tests do) are not
// marked pooled and are ignored by ReleasePacket, which keeps external
// ownership semantics unchanged: only packets obtained from AllocPacket
// are ever recycled.

// PoolStats counts packet free-list traffic.
type PoolStats struct {
	// Allocs counts AllocPacket calls that had to allocate a fresh packet.
	Allocs int
	// Reuses counts AllocPacket calls served from the free list.
	Reuses int
	// Releases counts packets returned to the free list.
	Releases int
}

// AllocPacket returns a zeroed packet owned by the caller. The packet's
// Sack slice retains its previous capacity so SACK-carrying ACKs do not
// reallocate in steady state. The caller must hand the packet to the
// network (Host.Send) or return it with ReleasePacket.
func (n *Network) AllocPacket() *Packet {
	n.livePkts++
	if l := len(n.freePkts); l > 0 {
		p := n.freePkts[l-1]
		n.freePkts[l-1] = nil
		n.freePkts = n.freePkts[:l-1]
		p.inPool = false
		n.poolStats.Reuses++
		return p
	}
	n.poolStats.Allocs++
	return &Packet{pooled: true}
}

// ReleasePacket returns a packet obtained from AllocPacket to the free
// list, zeroing its fields. Packets not allocated from any pool (built by
// hand, as tests do) are ignored, so callers may release unconditionally
// at packet-death points. Releasing the same packet twice is a bug — an
// aliased reference now points into the free list — and panics when
// invariant checks are enabled (sim.SetInvariantChecks); otherwise the
// duplicate release is dropped.
func (n *Network) ReleasePacket(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	if p.inPool {
		if sim.InvariantChecks() {
			panic(fmt.Sprintf("netsim: double release of pooled packet (pool=%d live=%d)",
				len(n.freePkts), n.livePkts))
		}
		return
	}
	n.livePkts--
	n.poolStats.Releases++
	sack := p.Sack[:0]
	*p = Packet{pooled: true, inPool: true, Sack: sack}
	n.freePkts = append(n.freePkts, p)
}

// PoolStats returns a copy of the packet free-list counters.
func (n *Network) PoolStats() PoolStats { return n.poolStats }

// LivePackets returns the number of pooled packets currently outside the
// free list. At quiescence (scheduler drained, queues empty) it is zero:
// every packet has reached one of its death points and been recycled.
func (n *Network) LivePackets() int { return n.livePkts }
