package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"tcptrim/internal/sim"
)

// Bitrate is a link transmission rate in bits per second.
type Bitrate int64

// Common rates.
const (
	Kbps Bitrate = 1_000
	Mbps Bitrate = 1_000_000
	Gbps Bitrate = 1_000_000_000
)

// TransmitTime returns the serialization delay of size bytes at rate r.
func (r Bitrate) TransmitTime(size int) time.Duration {
	if r <= 0 {
		return 0
	}
	return time.Duration(int64(size) * 8 * int64(time.Second) / int64(r))
}

// PacketsPerSecond returns the capacity of the link in packets of the
// given wire size per second — the "C" of the paper's Eq. 22.
func (r Bitrate) PacketsPerSecond(packetSize int) float64 {
	if packetSize <= 0 {
		return 0
	}
	return float64(r) / (8 * float64(packetSize))
}

// PipeStats aggregates lifetime counters for one pipe direction. The
// fault counters are split by injector so experiment output can attribute
// every injected loss to its cause, distinct from congestion tail drops
// (which are counted in the queue's QueueStats.Dropped).
type PipeStats struct {
	SentPackets int
	SentBytes   int64
	// LossDrops counts packets destroyed by injected uniform random loss.
	LossDrops int
	// BurstLossDrops counts packets destroyed by the Gilbert–Elliott
	// bursty-loss model.
	BurstLossDrops int
	// FlapDrops counts packets blackholed by a downed link: offered while
	// down, drained from the queue at the down edge, or already in flight
	// when the link died.
	FlapDrops int
	// Reordered counts packets held back for late out-of-order delivery.
	Reordered int
	// Duplicated counts injected packet clones.
	Duplicated int
}

// InjectedDrops totals the packets destroyed by fault injection, as
// opposed to congestion tail drops.
func (s PipeStats) InjectedDrops() int {
	return s.LossDrops + s.BurstLossDrops + s.FlapDrops
}

// Pipe is a unidirectional link: an egress queue feeding a transmitter
// with a fixed rate and propagation delay. A full-duplex cable is a pair
// of pipes created by Network.Connect.
type Pipe struct {
	sched *sim.Scheduler
	net   *Network
	from  Node
	to    Node
	rate  Bitrate
	delay time.Duration
	queue *Queue
	busy  bool
	stats PipeStats

	// Failure injection: each offered packet is independently destroyed
	// with probability lossRate, drawn from rng. Both are nil/zero in
	// normal operation.
	lossRate float64
	rng      *rand.Rand

	// Jitter injection: each packet's propagation delay is stretched by
	// a uniform draw in [0, maxJitter]. FIFO order is preserved by never
	// letting an arrival precede the previous one.
	maxJitter   time.Duration
	jitterRng   *rand.Rand
	lastArrival sim.Time

	// faults holds the composable fault injectors (bursty loss, link
	// flaps, reordering, duplication); nil until one is configured. See
	// fault.go.
	faults *pipeFaults

	// Per-pipe event plumbing, allocated once instead of one closure per
	// packet: txPkt is the packet currently serializing, inFlight the FIFO
	// of packets on the wire (arrival events fire in schedule order, so
	// the head is always the next to deliver).
	txPkt      *Packet
	inFlight   []*Packet
	flightHead int
	txDoneFn   func()
	deliverFn  func()

	// Sharding (see shard.go). shard owns the pipe's source side; on a cut
	// pipe dstSched is the destination shard's scheduler and arrivals cross
	// via sim.Post: the packet waits in pendingFlight (source-owned) until
	// the barrier runs xferFn, which moves it to inFlight (destination-
	// owned) in global dispatch order. flapDropsDst counts blackholes on
	// the destination side, whose stats word must not be shared with the
	// source shard's FlapDrops during parallel segments.
	dstSched      *sim.Scheduler
	shard         int32
	dstShard      int32
	pendingFlight []*Packet
	pendingHead   int
	xferFn        func()
	flapDropsDst  int
}

// InjectJitter adds uniform random extra propagation delay in
// [0, maxJitter] per packet, preserving FIFO delivery order. A nil rng or
// non-positive maxJitter disables injection.
func (p *Pipe) InjectJitter(maxJitter time.Duration, rng *rand.Rand) {
	if maxJitter < 0 {
		maxJitter = 0
	}
	p.maxJitter = maxJitter
	p.jitterRng = rng
}

// InjectLoss enables random packet loss on this pipe direction for
// failure-injection tests. rate is clamped to [0, 1]; a nil rng disables
// injection.
func (p *Pipe) InjectLoss(rate float64, rng *rand.Rand) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	p.lossRate = rate
	p.rng = rng
}

// From returns the upstream node.
func (p *Pipe) From() Node { return p.from }

// To returns the downstream node.
func (p *Pipe) To() Node { return p.to }

// Rate returns the transmission rate.
func (p *Pipe) Rate() Bitrate { return p.rate }

// Delay returns the propagation delay.
func (p *Pipe) Delay() time.Duration { return p.delay }

// Queue exposes the egress queue (for monitoring and configuration
// inspection by experiments).
func (p *Pipe) Queue() *Queue { return p.queue }

// Stats returns a copy of the transmit counters.
func (p *Pipe) Stats() PipeStats {
	s := p.stats
	s.FlapDrops += p.flapDropsDst
	return s
}

// Send offers pkt to the pipe. If the transmitter is idle the packet
// starts serializing immediately; otherwise it joins the egress queue
// (and may be tail-dropped).
func (p *Pipe) Send(pkt *Packet) {
	if sim.InvariantChecks() && pkt.inPool {
		panic(fmt.Sprintf("netsim: released packet offered to pipe %s->%s: %s",
			p.from.Name(), p.to.Name(), pkt))
	}
	if f := p.faults; f != nil {
		if f.down {
			p.stats.FlapDrops++
			p.release(pkt)
			return
		}
		if f.ge != nil && f.ge.drop() {
			p.stats.BurstLossDrops++
			p.release(pkt)
			return
		}
	}
	if p.rng != nil && p.lossRate > 0 && p.rng.Float64() < p.lossRate {
		p.stats.LossDrops++
		p.release(pkt)
		return
	}
	if !p.busy {
		// An idle transmitter with a non-empty queue is impossible, so
		// the packet goes straight to the wire. ECN marking only applies
		// to queued packets, matching a switch that marks on enqueue.
		p.transmit(pkt)
		return
	}
	if !p.queue.Enqueue(pkt) {
		p.release(pkt)
	}
}

// release returns a dead packet to the free list of the pipe's source
// shard (no-op for hand-built packets or pipes wired without a Network,
// as in unit tests).
func (p *Pipe) release(pkt *Packet) {
	if p.net != nil {
		p.net.releaseShard(pkt, p.shard)
	}
}

// releaseDst retires a packet that died on the destination side of a cut
// pipe into the destination shard's pool.
func (p *Pipe) releaseDst(pkt *Packet) {
	if p.net != nil {
		p.net.releaseShard(pkt, p.dstShard)
	}
}

// transmit serializes pkt and schedules its arrival at the peer, then
// pulls the next queued packet. The serialization-done and delivery
// callbacks are bound once per pipe: per-packet state travels through
// txPkt and the inFlight FIFO instead of fresh closures, keeping the
// transmit path allocation-free.
func (p *Pipe) transmit(pkt *Packet) {
	if p.txDoneFn == nil {
		p.txDoneFn = p.onTxDone
		p.deliverFn = p.onDeliver
	}
	p.busy = true
	p.stats.SentPackets++
	p.stats.SentBytes += int64(pkt.Size)
	p.txPkt = pkt
	p.sched.After(p.rate.TransmitTime(pkt.Size), p.txDoneFn)
}

// onTxDone fires when the current packet finished serializing: put it on
// the wire (or hand it to a fault injector) and start on the next queued
// packet.
func (p *Pipe) onTxDone() {
	pkt := p.txPkt
	p.txPkt = nil
	f := p.faults
	switch {
	case f != nil && f.down:
		// The link died while the packet was serializing.
		p.stats.FlapDrops++
		p.release(pkt)
	default:
		delay := p.delay
		if p.jitterRng != nil && p.maxJitter > 0 {
			delay += time.Duration(p.jitterRng.Int63n(int64(p.maxJitter) + 1))
		}
		at := p.sched.Now().Add(delay)
		if f != nil && f.reorderRng != nil && f.reorderRng.Float64() < f.reorderProb {
			// Held out of the FIFO: later packets may overtake it.
			p.deliverLate(pkt, at)
			break
		}
		if at < p.lastArrival {
			// Keep the wire FIFO: jitter may delay, never reorder.
			at = p.lastArrival
		}
		p.lastArrival = at
		if f != nil && f.dupRng != nil && f.dupRng.Float64() < f.dupProb {
			// The clone rides immediately behind the original at the same
			// instant (FIFO order still holds: equal times fire in push
			// order).
			p.stats.Duplicated++
			p.handoff(pkt, at)
			pkt = p.clonePacket(pkt)
		}
		p.handoff(pkt, at)
	}
	if next := p.queue.Dequeue(); next != nil {
		p.transmit(next)
		return
	}
	p.busy = false
}

// handoff puts pkt on the wire with arrival instant at. Same-shard pipes
// push the flight FIFO and arm a local arrival event. Cut pipes park the
// packet in pendingFlight and post the arrival to the destination shard:
// at the merge barrier xferFn moves it into inFlight in global dispatch
// order, so the FIFO invariant onDeliver relies on holds across the
// boundary too. Both paths are allocation-free: xferFn and deliverFn are
// bound once per pipe.
func (p *Pipe) handoff(pkt *Packet, at sim.Time) {
	if p.dstSched != nil {
		p.pendingFlight = append(p.pendingFlight, pkt)
		p.sched.Post(p.dstSched, at, p.xferFn, p.deliverFn)
		return
	}
	p.pushFlight(pkt)
	p.scheduleDeliver(at)
}

// onXfer is the cut-pipe transfer hook: the barrier runs it (in global
// event order) to move the pending head onto the destination-owned
// flight FIFO before the posted arrival can fire.
func (p *Pipe) onXfer() {
	pkt := p.pendingFlight[p.pendingHead]
	p.pendingFlight[p.pendingHead] = nil
	p.pendingHead++
	if p.pendingHead > 32 && p.pendingHead*2 >= len(p.pendingFlight) {
		n := copy(p.pendingFlight, p.pendingFlight[p.pendingHead:])
		p.pendingFlight = p.pendingFlight[:n]
		p.pendingHead = 0
	}
	p.pushFlight(pkt)
}

// scheduleDeliver arms one arrival event for the flight FIFO.
func (p *Pipe) scheduleDeliver(at sim.Time) {
	if _, err := p.sched.At(at, p.deliverFn); err != nil {
		// Unreachable: at is never in the past.
		p.sched.After(0, p.deliverFn)
	}
}

// onDeliver hands the next wire arrival to the peer. Arrival events are
// scheduled in FIFO order with nondecreasing times, so the scheduler
// fires them in push order and the flight head is always the right
// packet. A downed link blackholes in-flight packets at their arrival
// instant.
func (p *Pipe) onDeliver() {
	pkt := p.popFlight()
	if f := p.faults; f != nil && f.down {
		// On a cut pipe this runs on the destination shard: count and
		// recycle there. (Flapping cut pipes is rejected by ScheduleFlaps,
		// but SetLinkDown at setup time can still get here.)
		if p.dstSched != nil {
			p.flapDropsDst++
			p.releaseDst(pkt)
			return
		}
		p.stats.FlapDrops++
		p.release(pkt)
		return
	}
	p.to.Receive(pkt, p)
}

func (p *Pipe) pushFlight(pkt *Packet) {
	p.inFlight = append(p.inFlight, pkt)
}

func (p *Pipe) popFlight() *Packet {
	pkt := p.inFlight[p.flightHead]
	p.inFlight[p.flightHead] = nil
	p.flightHead++
	// Compact once the dead prefix dominates, keeping amortized O(1).
	if p.flightHead > 32 && p.flightHead*2 >= len(p.inFlight) {
		n := copy(p.inFlight, p.inFlight[p.flightHead:])
		p.inFlight = p.inFlight[:n]
		p.flightHead = 0
	}
	return pkt
}
