package netsim

import (
	"math/rand"
	"time"

	"tcptrim/internal/sim"
)

// Bitrate is a link transmission rate in bits per second.
type Bitrate int64

// Common rates.
const (
	Kbps Bitrate = 1_000
	Mbps Bitrate = 1_000_000
	Gbps Bitrate = 1_000_000_000
)

// TransmitTime returns the serialization delay of size bytes at rate r.
func (r Bitrate) TransmitTime(size int) time.Duration {
	if r <= 0 {
		return 0
	}
	return time.Duration(int64(size) * 8 * int64(time.Second) / int64(r))
}

// PacketsPerSecond returns the capacity of the link in packets of the
// given wire size per second — the "C" of the paper's Eq. 22.
func (r Bitrate) PacketsPerSecond(packetSize int) float64 {
	if packetSize <= 0 {
		return 0
	}
	return float64(r) / (8 * float64(packetSize))
}

// PipeStats aggregates lifetime counters for one pipe direction.
type PipeStats struct {
	SentPackets int
	SentBytes   int64
	// LossDrops counts packets destroyed by injected random loss.
	LossDrops int
}

// Pipe is a unidirectional link: an egress queue feeding a transmitter
// with a fixed rate and propagation delay. A full-duplex cable is a pair
// of pipes created by Network.Connect.
type Pipe struct {
	sched *sim.Scheduler
	from  Node
	to    Node
	rate  Bitrate
	delay time.Duration
	queue *Queue
	busy  bool
	stats PipeStats

	// Failure injection: each offered packet is independently destroyed
	// with probability lossRate, drawn from rng. Both are nil/zero in
	// normal operation.
	lossRate float64
	rng      *rand.Rand

	// Jitter injection: each packet's propagation delay is stretched by
	// a uniform draw in [0, maxJitter]. FIFO order is preserved by never
	// letting an arrival precede the previous one.
	maxJitter   time.Duration
	jitterRng   *rand.Rand
	lastArrival sim.Time
}

// InjectJitter adds uniform random extra propagation delay in
// [0, maxJitter] per packet, preserving FIFO delivery order. A nil rng or
// non-positive maxJitter disables injection.
func (p *Pipe) InjectJitter(maxJitter time.Duration, rng *rand.Rand) {
	if maxJitter < 0 {
		maxJitter = 0
	}
	p.maxJitter = maxJitter
	p.jitterRng = rng
}

// InjectLoss enables random packet loss on this pipe direction for
// failure-injection tests. rate is clamped to [0, 1]; a nil rng disables
// injection.
func (p *Pipe) InjectLoss(rate float64, rng *rand.Rand) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	p.lossRate = rate
	p.rng = rng
}

// From returns the upstream node.
func (p *Pipe) From() Node { return p.from }

// To returns the downstream node.
func (p *Pipe) To() Node { return p.to }

// Rate returns the transmission rate.
func (p *Pipe) Rate() Bitrate { return p.rate }

// Delay returns the propagation delay.
func (p *Pipe) Delay() time.Duration { return p.delay }

// Queue exposes the egress queue (for monitoring and configuration
// inspection by experiments).
func (p *Pipe) Queue() *Queue { return p.queue }

// Stats returns a copy of the transmit counters.
func (p *Pipe) Stats() PipeStats { return p.stats }

// Send offers pkt to the pipe. If the transmitter is idle the packet
// starts serializing immediately; otherwise it joins the egress queue
// (and may be tail-dropped).
func (p *Pipe) Send(pkt *Packet) {
	if p.rng != nil && p.lossRate > 0 && p.rng.Float64() < p.lossRate {
		p.stats.LossDrops++
		return
	}
	if !p.busy {
		// An idle transmitter with a non-empty queue is impossible, so
		// the packet goes straight to the wire. ECN marking only applies
		// to queued packets, matching a switch that marks on enqueue.
		p.transmit(pkt)
		return
	}
	p.queue.Enqueue(pkt)
}

// transmit serializes pkt and schedules its arrival at the peer, then
// pulls the next queued packet.
func (p *Pipe) transmit(pkt *Packet) {
	p.busy = true
	p.stats.SentPackets++
	p.stats.SentBytes += int64(pkt.Size)
	txDone := p.rate.TransmitTime(pkt.Size)
	p.sched.After(txDone, func() {
		arrival := pkt
		delay := p.delay
		if p.jitterRng != nil && p.maxJitter > 0 {
			delay += time.Duration(p.jitterRng.Int63n(int64(p.maxJitter) + 1))
		}
		at := p.sched.Now().Add(delay)
		if at < p.lastArrival {
			// Keep the wire FIFO: jitter may delay, never reorder.
			at = p.lastArrival
		}
		p.lastArrival = at
		if _, err := p.sched.At(at, func() {
			p.to.Receive(arrival, p)
		}); err != nil {
			// Unreachable: at is never in the past.
			p.sched.After(0, func() { p.to.Receive(arrival, p) })
		}
		if next := p.queue.Dequeue(); next != nil {
			p.transmit(next)
			return
		}
		p.busy = false
	})
}
