package netsim

// T-RACKs switch agent (arXiv 2102.07477): a shim at the access switch
// that watches the ACK stream of every flow it forwards. A flow with
// data outstanding whose cumulative ACK has not advanced for a timeout —
// a handful of RTTs, orders of magnitude below the end-host RTO floor —
// gets a recovery signal: an ACK-shaped packet flagged RecoverySignal,
// injected toward the sender through the normal pipes (so it shares
// their fate under fault injection and stays shard-deterministic). The
// tcp TRACKs recovery policy turns a valid signal into a fast
// retransmit.

import (
	"fmt"
	"time"

	"tcptrim/internal/sim"
)

// Default T-RACKs agent parameters: the stagnation timeout is a few
// data-center RTTs (the paper sizes it near the datacenter RTO floor it
// replaces), scanned at a quarter of that period.
const (
	DefaultTRACKsTimeout = time.Millisecond
	DefaultTRACKsPeriod  = 250 * time.Microsecond
)

// TRACKsConfig parameterizes a switch agent. Zero fields take defaults.
type TRACKsConfig struct {
	// Timeout is the ACK-stagnation threshold: a flow with data
	// outstanding and no cumulative-ACK advance for this long is
	// signalled. Signals per flow are rate-limited to one per Timeout.
	Timeout time.Duration
	// Period is the scan interval (default Timeout/4).
	Period time.Duration
}

func (c TRACKsConfig) withDefaults() TRACKsConfig {
	if c.Timeout <= 0 {
		c.Timeout = DefaultTRACKsTimeout
	}
	if c.Period <= 0 {
		c.Period = c.Timeout / 4
	}
	return c
}

// trackFlow is the agent's per-flow state. The paper's hardware sizing
// argument (a handful of bytes per flow in switch SRAM) is mirrored
// here: highest data byte seen, last ACK seen, and two timestamps.
type trackFlow struct {
	flow         FlowID
	sender       NodeID
	highEnd      int64 // highest data end-sequence forwarded
	lastAck      int64 // highest cumulative ACK forwarded
	lastProgress sim.Time
	lastSignal   sim.Time
	signalled    bool
}

// TRACKsAgent is one switch's shim. Attach with AttachTRACKs after the
// network is partitioned (the agent binds to the switch's shard
// scheduler). Flows are scanned in first-seen order so signal emission
// is deterministic.
type TRACKsAgent struct {
	net   *Network
	sw    *Switch
	cfg   TRACKsConfig
	sched *sim.Scheduler
	shard int32

	flows map[FlowID]int // index into order
	order []trackFlow

	timer   sim.Timer
	tickFn  func()
	signals int
	nextID  uint64
}

// AttachTRACKs installs a T-RACKs agent on sw: a packet tap plus a
// periodic scan on the switch's shard scheduler. Attach after
// Network.Shard (if sharding) and before running; the scan ticks until
// the run's horizon, so drive the simulation with RunUntil, not Run.
func AttachTRACKs(n *Network, sw *Switch, cfg TRACKsConfig) (*TRACKsAgent, error) {
	if sw == nil {
		return nil, fmt.Errorf("netsim: T-RACKs agent needs a switch")
	}
	shard := n.shardOf(sw.id)
	sched := n.sched
	if n.group != nil {
		sched = n.group.Shard(int(shard))
	}
	a := &TRACKsAgent{
		net:   n,
		sw:    sw,
		cfg:   cfg.withDefaults(),
		sched: sched,
		shard: shard,
		flows: make(map[FlowID]int),
	}
	a.tickFn = a.tick
	sw.SetTap(a.observe)
	a.timer = sched.After(a.cfg.Period, a.tickFn)
	return a, nil
}

// Signals returns the number of recovery signals the agent has injected.
func (a *TRACKsAgent) Signals() int { return a.signals }

// TrackedFlows returns the number of flows the agent holds state for.
func (a *TRACKsAgent) TrackedFlows() int { return len(a.order) }

// observe is the switch tap: per-flow bookkeeping only, no packet
// mutation or retention.
func (a *TRACKsAgent) observe(pkt *Packet) {
	if pkt.RecoverySignal {
		return // never track our own injections
	}
	if pkt.IsAck {
		i, ok := a.flows[pkt.Flow]
		if !ok {
			return
		}
		f := &a.order[i]
		if pkt.Ack > f.lastAck {
			f.lastAck = pkt.Ack
			f.lastProgress = a.sched.Now()
		}
		return
	}
	if pkt.Payload == 0 {
		return
	}
	end := pkt.Seq + int64(pkt.Payload)
	i, ok := a.flows[pkt.Flow]
	if !ok {
		i = len(a.order)
		a.order = append(a.order, trackFlow{flow: pkt.Flow})
		a.flows[pkt.Flow] = i
	}
	f := &a.order[i]
	f.sender = pkt.Src
	if f.highEnd <= f.lastAck {
		// Idle → active transition: the stagnation clock starts when new
		// data first goes unacknowledged, not at the flow's creation.
		f.lastProgress = a.sched.Now()
	}
	if end > f.highEnd {
		f.highEnd = end
	}
}

// tick scans the flow table and signals stagnant flows, then re-arms.
func (a *TRACKsAgent) tick() {
	now := a.sched.Now()
	for i := range a.order {
		f := &a.order[i]
		if f.highEnd <= f.lastAck {
			continue // nothing outstanding
		}
		if now.Sub(f.lastProgress) < a.cfg.Timeout {
			continue
		}
		if f.signalled && now.Sub(f.lastSignal) < a.cfg.Timeout {
			continue // rate limit: one signal per timeout per flow
		}
		f.lastSignal = now
		f.signalled = true
		a.signals++
		a.inject(f, now)
	}
	if !a.timer.Reset(a.cfg.Period) {
		a.timer = a.sched.After(a.cfg.Period, a.tickFn)
	}
}

// inject crafts the recovery signal and forwards it from the switch
// toward the flow's sender over the normal egress pipes.
func (a *TRACKsAgent) inject(f *trackFlow, now sim.Time) {
	pkt := a.net.allocShard(a.shard)
	a.nextID++
	// Bits 31:30 = 0b11 keep agent IDs disjoint from both endpoint
	// counters (sender data: bit31=0, receiver ACKs: bit31=1, bit30=0).
	pkt.ID = uint64(f.flow)<<32 | 0b11<<30 | a.nextID
	pkt.Flow = f.flow
	pkt.Src = a.sw.id
	pkt.Dst = f.sender
	pkt.Size = AckSize
	pkt.IsAck = true
	pkt.RecoverySignal = true
	pkt.Ack = f.lastAck
	pkt.SentAt = now
	pkt.Echo = now
	a.net.forward(a.sw, pkt)
}
