package netsim

import (
	"math/rand"
	"testing"
	"time"

	"tcptrim/internal/aqm"
	"tcptrim/internal/sim"
)

// TestQueueInterleavedCompactionProperty interleaves bursty enqueues and
// dequeues against a model FIFO so the dead-prefix compaction (head > 64)
// fires repeatedly, and checks FIFO order, byte accounting, and Len()
// after every operation.
func TestQueueInterleavedCompactionProperty(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		q := NewQueue(QueueConfig{})
		drv := rand.New(rand.NewSource(seed))
		var model []*Packet
		modelBytes := 0
		id := uint64(0)
		maxHead := 0
		for op := 0; op < 6000; op++ {
			// Bias phases so the queue alternately grows well past 128 and
			// drains well past 64 pops, crossing the compaction trigger.
			growing := (op/500)%2 == 0
			enq := drv.Intn(10) < 7
			if !growing {
				enq = drv.Intn(10) < 3
			}
			if enq {
				p := dataPkt(id, 40+drv.Intn(1461))
				id++
				if !q.Enqueue(p) {
					t.Fatalf("seed %d op %d: unlimited queue rejected packet", seed, op)
				}
				model = append(model, p)
				modelBytes += p.Size
			} else if len(model) > 0 {
				want := model[0]
				model = model[1:]
				modelBytes -= want.Size
				got := q.Dequeue()
				if got != want {
					t.Fatalf("seed %d op %d: dequeue = %v, want id %d", seed, op, got, want.ID)
				}
			} else if q.Dequeue() != nil {
				t.Fatalf("seed %d op %d: dequeue from empty returned a packet", seed, op)
			}
			if q.Len() != len(model) {
				t.Fatalf("seed %d op %d: Len = %d, model %d", seed, op, q.Len(), len(model))
			}
			if q.Bytes() != modelBytes {
				t.Fatalf("seed %d op %d: Bytes = %d, model %d", seed, op, q.Bytes(), modelBytes)
			}
			if q.head > maxHead {
				maxHead = q.head
			}
		}
		if maxHead <= 64 {
			t.Fatalf("seed %d: driver never pushed head past the compaction trigger (max %d)", seed, maxHead)
		}
		for len(model) > 0 {
			if got := q.Dequeue(); got != model[0] {
				t.Fatalf("seed %d drain: got %v, want id %d", seed, got, model[0].ID)
			}
			model = model[1:]
		}
		if q.Dequeue() != nil || q.Bytes() != 0 {
			t.Fatalf("seed %d: queue not empty after drain", seed)
		}
	}
}

// TestQueueFavouredBandCompaction runs the same churn through the
// favoured band: under FavourQueue every unique-flow packet is favoured,
// so the priority band's own compaction path gets the traffic.
func TestQueueFavouredBandCompaction(t *testing.T) {
	q := NewQueue(QueueConfig{AQM: aqm.Config{Kind: aqm.FavourQueue}})
	drv := rand.New(rand.NewSource(5))
	var model []*Packet
	id := uint64(0)
	maxFavHead := 0
	for op := 0; op < 6000; op++ {
		growing := (op/500)%2 == 0
		enq := drv.Intn(10) < 7
		if !growing {
			enq = drv.Intn(10) < 3
		}
		if enq {
			p := dataPkt(id, 1500)
			p.Flow = FlowID(id) // unique flow: always favoured
			id++
			q.Enqueue(p)
			model = append(model, p)
		} else if len(model) > 0 {
			want := model[0]
			model = model[1:]
			if got := q.Dequeue(); got != want {
				t.Fatalf("op %d: dequeue = %v, want id %d", op, got, want.ID)
			}
		}
		if q.favHead > maxFavHead {
			maxFavHead = q.favHead
		}
	}
	if maxFavHead <= 64 {
		t.Fatalf("favoured band never crossed the compaction trigger (max head %d)", maxFavHead)
	}
	if got := q.AQMStats().Favoured; got != int(id) {
		t.Fatalf("Favoured = %d, want %d (every unique-flow packet)", got, id)
	}
}

// TestQueueFavouredBandOrdering pins the two-band service order: favoured
// packets depart before the unfavoured backlog but keep FIFO order among
// themselves.
func TestQueueFavouredBandOrdering(t *testing.T) {
	q := NewQueue(QueueConfig{CapPackets: 100, AQM: aqm.Config{Kind: aqm.FavourQueue}})
	// Flow 1 builds a standing queue; its later packets find a sibling
	// queued and are not favoured.
	for i := uint64(0); i < 4; i++ {
		p := dataPkt(i, 1500)
		p.Flow = 1
		q.Enqueue(p)
	}
	// Two starting flows: each first packet is favoured.
	for i := uint64(10); i < 12; i++ {
		p := dataPkt(i, 1500)
		p.Flow = FlowID(i)
		q.Enqueue(p)
	}
	// First packet of flow 1 was favoured (empty queue), so service order
	// is 0 (favoured), 10, 11 (favoured), then the flow-1 backlog 1,2,3.
	want := []uint64{0, 10, 11, 1, 2, 3}
	for i, w := range want {
		p := q.Dequeue()
		if p == nil || p.ID != w {
			t.Fatalf("dequeue %d = %v, want id %d", i, p, w)
		}
	}
	if st := q.AQMStats(); st.Favoured != 3 {
		t.Fatalf("Favoured = %d, want 3", st.Favoured)
	}
}

// TestQueueHeadDropReleasedExactlyOnce drives CoDel into its dropping
// state on a hand-built queue and checks the pool-safety contract: every
// head-dropped packet goes through the drop handler exactly once and is
// never also returned from Dequeue.
func TestQueueHeadDropReleasedExactlyOnce(t *testing.T) {
	q := NewQueue(QueueConfig{CapPackets: 1000, AQM: aqm.Config{Kind: aqm.CoDel}})
	now := sim.Time(0)
	q.SetClock(func() sim.Time { return now })
	released := map[uint64]int{}
	q.SetDropHandler(func(p *Packet) { released[p.ID]++ })

	delivered := map[uint64]bool{}
	id := uint64(0)
	offered := 0
	// Saturate: 3 arrivals per service for 40 ms, 50 µs service clock, so
	// sojourn times sit far above the 100 µs target and drops must fire.
	for step := 0; step < 800; step++ {
		now = now.Add(50 * time.Microsecond)
		for i := 0; i < 3; i++ {
			if q.Enqueue(dataPkt(id, 1500)) {
				offered++
			}
			id++
		}
		if p := q.Dequeue(); p != nil {
			if delivered[p.ID] {
				t.Fatalf("packet %d delivered twice", p.ID)
			}
			delivered[p.ID] = true
			if released[p.ID] != 0 {
				t.Fatalf("packet %d both delivered and released", p.ID)
			}
		}
	}
	st := q.Stats()
	if st.HeadDrops == 0 {
		t.Fatal("scenario produced no CoDel head drops")
	}
	if st.HeadDrops != len(released) {
		t.Fatalf("HeadDrops = %d but %d distinct packets released", st.HeadDrops, len(released))
	}
	for pid, n := range released {
		if n != 1 {
			t.Fatalf("packet %d released %d times", pid, n)
		}
	}
	if st.HeadDrops != st.Dropped-st.TailDrops-st.EarlyDrops {
		t.Fatalf("drop split inconsistent: %+v", st)
	}
	if got := len(delivered) + len(released) + q.Len(); got != offered {
		t.Fatalf("conservation: delivered %d + released %d + queued %d != offered %d",
			len(delivered), len(released), q.Len(), offered)
	}
	if st.DroppedBytes != 1500*(st.Dropped) {
		t.Fatalf("DroppedBytes = %d, want %d", st.DroppedBytes, 1500*st.Dropped)
	}
}

// TestCoDelHeadDropsReturnToPool is the network-level pool invariant: an
// overloaded CoDel link drops from the head of the queue, and every such
// packet must land back on the free list (zero live packets at rest, and
// the full-state invariant check passes).
func TestCoDelHeadDropsReturnToPool(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	a := net.AddHost("a")
	b := net.AddHost("b")
	ab, _ := net.Connect(a, b, LinkConfig{
		Rate:  100 * Mbps, // slow drain: 120 µs per packet, sojourn >> target
		Delay: 10 * time.Microsecond,
		Queue: QueueConfig{CapPackets: 400, AQM: aqm.Config{Kind: aqm.CoDel}},
	})
	b.SetHandler(func(*Packet) {})

	// Several spaced bursts keep the queue saturated across many CoDel
	// intervals.
	for burst := 0; burst < 10; burst++ {
		burst := burst
		sched.After(time.Duration(burst)*5*time.Millisecond, func() {
			for i := 0; i < 60; i++ {
				pkt := net.AllocPacket()
				pkt.Src, pkt.Dst = a.ID(), b.ID()
				pkt.Size = 1500
				a.Send(pkt)
			}
		})
	}
	sched.Run()

	st := ab.Queue().Stats()
	if st.HeadDrops == 0 {
		t.Fatalf("overloaded CoDel produced no head drops: %+v", st)
	}
	net.CheckInvariants()
	if live := net.LivePackets(); live != 0 {
		t.Fatalf("%d live packets at rest (head drops leaked?)", live)
	}
	ps := net.PoolStats()
	if ps.Releases != ps.Allocs+ps.Reuses {
		t.Fatalf("pool ledger: %d releases vs %d allocs + %d reuses", ps.Releases, ps.Allocs, ps.Reuses)
	}
}
