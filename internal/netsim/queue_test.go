package netsim

import (
	"testing"
	"testing/quick"
)

func dataPkt(id uint64, size int) *Packet {
	return &Packet{ID: id, Size: size, Payload: size - HeaderSize}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(QueueConfig{CapPackets: 10})
	for i := uint64(0); i < 5; i++ {
		if !q.Enqueue(dataPkt(i, 1500)) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	for i := uint64(0); i < 5; i++ {
		p := q.Dequeue()
		if p == nil || p.ID != i {
			t.Fatalf("dequeue %d = %v", i, p)
		}
	}
	if q.Dequeue() != nil {
		t.Error("dequeue from empty queue should return nil")
	}
}

func TestQueueTailDropPackets(t *testing.T) {
	q := NewQueue(QueueConfig{CapPackets: 3})
	for i := uint64(0); i < 5; i++ {
		q.Enqueue(dataPkt(i, 1500))
	}
	if q.Len() != 3 {
		t.Errorf("Len = %d, want 3", q.Len())
	}
	st := q.Stats()
	if st.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", st.Dropped)
	}
	if st.Enqueued != 3 {
		t.Errorf("Enqueued = %d, want 3", st.Enqueued)
	}
	if st.MaxLen != 3 {
		t.Errorf("MaxLen = %d, want 3", st.MaxLen)
	}
}

func TestQueueByteCapacity(t *testing.T) {
	q := NewQueue(QueueConfig{CapBytes: 4000})
	if !q.Enqueue(dataPkt(1, 1500)) || !q.Enqueue(dataPkt(2, 1500)) {
		t.Fatal("first two packets must fit")
	}
	if q.Enqueue(dataPkt(3, 1500)) {
		t.Error("third 1500B packet should not fit in 4000B")
	}
	// A small ACK still fits.
	if !q.Enqueue(&Packet{ID: 4, Size: AckSize, IsAck: true}) {
		t.Error("40B ack should fit in remaining space")
	}
	if q.Bytes() != 3040 {
		t.Errorf("Bytes = %d, want 3040", q.Bytes())
	}
}

func TestQueueECNMarking(t *testing.T) {
	q := NewQueue(QueueConfig{CapPackets: 100, ECNThresholdPackets: 3})
	var marked int
	for i := uint64(0); i < 6; i++ {
		p := dataPkt(i, 1500)
		p.ECT = true
		q.Enqueue(p)
		if p.CE {
			marked++
		}
	}
	// Packets 0,1,2 arrive below threshold; 3,4,5 see len>=3.
	if marked != 3 {
		t.Errorf("marked = %d, want 3", marked)
	}
	if q.Stats().Marked != 3 {
		t.Errorf("Stats().Marked = %d, want 3", q.Stats().Marked)
	}
}

func TestQueueECNIgnoresNonECT(t *testing.T) {
	q := NewQueue(QueueConfig{CapPackets: 100, ECNThresholdPackets: 1})
	q.Enqueue(dataPkt(1, 1500))
	p := dataPkt(2, 1500)
	q.Enqueue(p)
	if p.CE {
		t.Error("non-ECT packet must not be CE marked")
	}
}

func TestQueueUnlimited(t *testing.T) {
	q := NewQueue(QueueConfig{})
	for i := uint64(0); i < 1000; i++ {
		if !q.Enqueue(dataPkt(i, 1500)) {
			t.Fatal("unlimited queue rejected a packet")
		}
	}
	if q.Len() != 1000 {
		t.Errorf("Len = %d", q.Len())
	}
}

func TestQueueCompaction(t *testing.T) {
	// Interleave enough enqueue/dequeue churn to force head compaction
	// and verify FIFO order is preserved throughout.
	q := NewQueue(QueueConfig{})
	nextIn, nextOut := uint64(0), uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			q.Enqueue(dataPkt(nextIn, 1500))
			nextIn++
		}
		for i := 0; i < 9; i++ {
			p := q.Dequeue()
			if p == nil || p.ID != nextOut {
				t.Fatalf("round %d: got %v, want id %d", round, p, nextOut)
			}
			nextOut++
		}
	}
	for q.Len() > 0 {
		p := q.Dequeue()
		if p.ID != nextOut {
			t.Fatalf("drain: got id %d, want %d", p.ID, nextOut)
		}
		nextOut++
	}
	if nextOut != nextIn {
		t.Errorf("drained %d packets, want %d", nextOut, nextIn)
	}
}

// TestQueueConservationProperty: packets in = packets out + drops +
// still-queued, under random operation sequences.
func TestQueueConservationProperty(t *testing.T) {
	prop := func(ops []bool, cap8 uint8) bool {
		capPkts := int(cap8%20) + 1
		q := NewQueue(QueueConfig{CapPackets: capPkts})
		var offered, dequeued int
		for i, enq := range ops {
			if enq {
				offered++
				q.Enqueue(dataPkt(uint64(i), 1500))
			} else if q.Dequeue() != nil {
				dequeued++
			}
			if q.Len() > capPkts {
				return false
			}
		}
		st := q.Stats()
		return offered == st.Enqueued+st.Dropped &&
			st.Enqueued == dequeued+q.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitrateTransmitTime(t *testing.T) {
	tests := []struct {
		name string
		rate Bitrate
		size int
		want string
	}{
		{"1500B at 1Gbps", Gbps, 1500, "12µs"},
		{"1500B at 100Mbps", 100 * Mbps, 1500, "120µs"},
		{"40B ack at 1Gbps", Gbps, 40, "320ns"},
		{"1500B at 10Gbps", 10 * Gbps, 1500, "1.2µs"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.rate.TransmitTime(tt.size).String(); got != tt.want {
				t.Errorf("TransmitTime = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBitratePacketsPerSecond(t *testing.T) {
	// 1 Gbps / (8 * 1500B) ≈ 83333 packets/s.
	got := Gbps.PacketsPerSecond(1500)
	if got < 83333 || got > 83334 {
		t.Errorf("PacketsPerSecond = %v", got)
	}
}
