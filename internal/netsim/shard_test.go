package netsim

// Differential proof that partitioning a network is a pure relabeling:
// the same star topology, traffic program, and fault schedule run on a
// plain scheduler and on ShardGroups of several sizes (inline and
// parallel), and every observable — delivery traces with exact arrival
// instants, per-pipe fault counters, queue drops, pool ledgers, fired
// event counts — must match bit for bit. Faults cover both sides of the
// cut rule: GE loss / reorder / duplication / jitter on *cut* pipes
// (source-side decisions, legal) and uniform loss + link flaps on
// shard-internal pipes.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tcptrim/internal/sim"
)

const (
	ssSenders = 6
	ssHorizon = 200 * time.Millisecond
)

// ssEntry is one observed delivery: which packet, where, when.
type ssEntry struct {
	flow FlowID
	id   uint64
	at   sim.Time
}

// ssEnv is one run of the star program.
type ssEnv struct {
	sched    *sim.Scheduler
	group    *sim.ShardGroup
	net      *Network
	senders  []*Host
	sw       *Switch
	fe       *Host
	up, down []*Pipe // sender→switch, switch→sender
	swFe     *Pipe
	feSw     *Pipe

	feTrace   []ssEntry
	echoTrace []ssEntry
	echoed    uint64
}

// buildStar wires the topology, traffic program, and fault schedule.
// shards == 0 builds the plain single-scheduler reference.
func buildStar(t *testing.T, shards int, parallel bool, shardOf func(i int) int) *ssEnv {
	t.Helper()
	e := &ssEnv{}
	if shards > 0 {
		e.group = sim.NewShardGroup(shards)
		e.group.SetParallel(parallel)
		e.sched = e.group.Shard(0)
	} else {
		e.sched = sim.NewScheduler()
	}
	e.net = NewNetwork(e.sched)
	e.sw = e.net.AddSwitch("sw")
	e.fe = e.net.AddHost("fe")
	for i := 0; i < ssSenders; i++ {
		e.senders = append(e.senders, e.net.AddHost(fmt.Sprintf("s%d", i)))
	}
	for _, s := range e.senders {
		up, down := e.net.Connect(s, e.sw, LinkConfig{
			Rate: Gbps, Delay: 20 * time.Microsecond,
			Queue: QueueConfig{CapPackets: 64},
		})
		e.up = append(e.up, up)
		e.down = append(e.down, down)
	}
	e.swFe, e.feSw = e.net.Connect(e.sw, e.fe, LinkConfig{
		Rate: Gbps, Delay: 10 * time.Microsecond,
		Queue: QueueConfig{CapPackets: 32},
	})

	if e.group != nil {
		if err := e.net.Shard(e.group, func(n Node) int {
			for i, s := range e.senders {
				if s.ID() == n.ID() {
					return shardOf(i)
				}
			}
			return 0 // switch and frontend stay on shard 0
		}); err != nil {
			t.Fatalf("Shard: %v", err)
		}
	}

	// Frontend: record every arrival; echo every third packet per flow
	// back to its sender so the reverse direction crosses the cut too.
	e.fe.SetHandler(func(p *Packet) {
		e.feTrace = append(e.feTrace, ssEntry{p.Flow, p.ID, e.fe.Scheduler().Now()})
		if p.ID%3 == 0 {
			e.echoed++
			echo := e.fe.AllocPacket()
			echo.ID = 1_000_000 + e.echoed
			echo.Flow = p.Flow
			echo.Src, echo.Dst = e.fe.ID(), NodeID(p.Src)
			echo.Size = 64
			echo.IsAck = true
			e.fe.Send(echo)
		}
	})
	for i, s := range e.senders {
		i := i
		s.SetHandler(func(p *Packet) {
			e.echoTrace = append(e.echoTrace, ssEntry{p.Flow, p.ID, e.senders[i].Scheduler().Now()})
		})
	}

	// Traffic: each sender emits bursts on its own shard's scheduler.
	for i, s := range e.senders {
		i, s := i, s
		for burst := 0; burst < 8; burst++ {
			at := sim.At(time.Duration(1+burst*17+i) * time.Millisecond)
			burst := burst
			if _, err := s.Scheduler().At(at, func() {
				for k := 0; k < 10; k++ {
					pkt := s.AllocPacket()
					pkt.ID = uint64(i)*10_000 + uint64(burst)*100 + uint64(k)
					pkt.Flow = FlowID(i)
					pkt.Src, pkt.Dst = s.ID(), e.fe.ID()
					pkt.Size = 1500
					s.Send(pkt)
				}
			}); err != nil {
				t.Fatalf("schedule burst: %v", err)
			}
		}
	}

	// Faults. Cut pipes get source-side injectors; the shard-internal
	// bottleneck gets uniform loss plus a flap schedule.
	e.up[0].InjectGilbertElliott(GEConfig{PGoodBad: 0.05, PBadGood: 0.3, LossBad: 0.5},
		rand.New(rand.NewSource(101)))
	e.up[1].InjectDuplicate(0.08, rand.New(rand.NewSource(202)))
	e.up[3].InjectReorder(0.1, 40*time.Microsecond, rand.New(rand.NewSource(303)))
	e.up[4].InjectJitter(15*time.Microsecond, rand.New(rand.NewSource(404)))
	e.swFe.InjectLoss(0.02, rand.New(rand.NewSource(505)))
	if err := e.swFe.ScheduleFlaps(FlapConfig{
		FirstDownAt: sim.At(40 * time.Millisecond),
		DownFor:     2 * time.Millisecond,
		UpFor:       30 * time.Millisecond,
		Count:       3,
	}); err != nil {
		t.Fatalf("ScheduleFlaps: %v", err)
	}
	return e
}

func (e *ssEnv) run() {
	if e.group != nil {
		e.group.RunUntil(sim.At(ssHorizon))
		return
	}
	e.sched.RunUntil(sim.At(ssHorizon))
}

func (e *ssEnv) fired() uint64 {
	if e.group != nil {
		return e.group.Fired()
	}
	return e.sched.Fired()
}

// diff compares every observable of two runs.
func (e *ssEnv) diff(o *ssEnv) string {
	if len(e.feTrace) != len(o.feTrace) {
		return fmt.Sprintf("frontend trace length %d != %d", len(e.feTrace), len(o.feTrace))
	}
	for i := range e.feTrace {
		if e.feTrace[i] != o.feTrace[i] {
			return fmt.Sprintf("frontend trace[%d] %+v != %+v", i, e.feTrace[i], o.feTrace[i])
		}
	}
	if len(e.echoTrace) != len(o.echoTrace) {
		return fmt.Sprintf("echo trace length %d != %d", len(e.echoTrace), len(o.echoTrace))
	}
	for i := range e.echoTrace {
		if e.echoTrace[i] != o.echoTrace[i] {
			return fmt.Sprintf("echo trace[%d] %+v != %+v", i, e.echoTrace[i], o.echoTrace[i])
		}
	}
	pipes := func(env *ssEnv) []*Pipe {
		ps := append([]*Pipe{}, env.up...)
		ps = append(ps, env.down...)
		return append(ps, env.swFe, env.feSw)
	}
	ep, op := pipes(e), pipes(o)
	for i := range ep {
		if ep[i].Stats() != op[i].Stats() {
			return fmt.Sprintf("pipe %s->%s stats %+v != %+v",
				ep[i].from.Name(), ep[i].to.Name(), ep[i].Stats(), op[i].Stats())
		}
		if ep[i].Queue().Stats() != op[i].Queue().Stats() {
			return fmt.Sprintf("pipe %s->%s queue stats %+v != %+v",
				ep[i].from.Name(), ep[i].to.Name(), ep[i].Queue().Stats(), op[i].Queue().Stats())
		}
	}
	if e.net.Stats() != o.net.Stats() {
		return fmt.Sprintf("network stats %+v != %+v", e.net.Stats(), o.net.Stats())
	}
	if e.net.LivePackets() != o.net.LivePackets() {
		return fmt.Sprintf("live packets %d != %d", e.net.LivePackets(), o.net.LivePackets())
	}
	if ps, qs := e.net.PoolStats(), o.net.PoolStats(); ps.Releases != qs.Releases {
		return fmt.Sprintf("pool releases %d != %d", ps.Releases, qs.Releases)
	}
	if e.fired() != o.fired() {
		return fmt.Sprintf("fired %d != %d", e.fired(), o.fired())
	}
	return ""
}

// TestNetworkShardDifferential sweeps shard counts and execution modes
// against the sequential reference.
func TestNetworkShardDifferential(t *testing.T) {
	ref := buildStar(t, 0, false, nil)
	ref.run()
	if len(ref.feTrace) == 0 {
		t.Fatal("reference run delivered nothing; traffic program is broken")
	}

	plans := []struct {
		name    string
		shards  int
		shardOf func(i int) int
	}{
		{"1shard", 1, func(int) int { return 0 }},
		{"2shards", 2, func(int) int { return 1 }},
		{"3shards", 3, func(i int) int { return 1 + i/3 }},
		{"7shards", 7, func(i int) int { return 1 + i }},
	}
	for _, plan := range plans {
		for _, parallel := range []bool{false, true} {
			name := plan.name
			if parallel {
				name += "-parallel"
			}
			t.Run(name, func(t *testing.T) {
				e := buildStar(t, plan.shards, parallel, plan.shardOf)
				e.run()
				if d := ref.diff(e); d != "" {
					t.Fatalf("sharded run diverged from sequential reference: %s", d)
				}
			})
		}
	}
}

// TestNetworkShardInvariants runs the 3-shard plan with invariant checks
// and the periodic checker on, exercising cross-shard conservation
// accounting (pendingFlight, held/arrived ledgers, per-shard pools).
func TestNetworkShardInvariants(t *testing.T) {
	old := sim.InvariantChecks()
	sim.SetInvariantChecks(true)
	defer sim.SetInvariantChecks(old)

	e := buildStar(t, 3, true, func(i int) int { return 1 + i/3 })
	e.net.ScheduleInvariantChecks(time.Millisecond)
	e.run()
	e.net.CheckInvariants()
	if live := e.net.LivePackets(); live != 0 {
		t.Fatalf("%d pooled packets leaked", live)
	}
}

// TestShardValidation pins the partitioning preconditions: bad shard
// indices, double sharding, zero-delay cuts, flaps on cut pipes, and
// Connect-after-Shard.
func TestShardValidation(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	a := net.AddHost("a")
	b := net.AddHost("b")
	ab, _ := net.Connect(a, b, LinkConfig{Rate: Gbps, Delay: 10 * time.Microsecond,
		Queue: QueueConfig{CapPackets: 8}})

	g := sim.NewShardGroup(2)
	if err := net.Shard(g, func(Node) int { return 5 }); err == nil {
		t.Fatal("out-of-range shard index not rejected")
	}
	if err := net.Shard(g, func(n Node) int {
		if n.ID() == a.ID() {
			return 0
		}
		return 1
	}); err != nil {
		t.Fatalf("Shard: %v", err)
	}
	if err := net.Shard(g, func(Node) int { return 0 }); err == nil {
		t.Fatal("double Shard not rejected")
	}
	if err := ab.ScheduleFlaps(FlapConfig{FirstDownAt: sim.At(time.Millisecond),
		DownFor: time.Millisecond}); err == nil {
		t.Fatal("flap schedule on a cut pipe not rejected")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Connect after Shard did not panic")
			}
		}()
		net.Connect(a, b, LinkConfig{Rate: Gbps, Delay: time.Microsecond})
	}()

	// Zero-delay cuts admit no lookahead.
	net2 := NewNetwork(sim.NewScheduler())
	c := net2.AddHost("c")
	d := net2.AddHost("d")
	net2.Connect(c, d, LinkConfig{Rate: Gbps, Delay: 0, Queue: QueueConfig{CapPackets: 8}})
	g2 := sim.NewShardGroup(2)
	if err := net2.Shard(g2, func(n Node) int {
		if n.ID() == c.ID() {
			return 0
		}
		return 1
	}); err == nil {
		t.Fatal("zero-delay cut pipe not rejected")
	}
}
