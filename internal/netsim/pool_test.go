package netsim

import (
	"testing"
	"time"

	"tcptrim/internal/sim"
)

func poolPair(t *testing.T) (*sim.Scheduler, *Network, *Host, *Host) {
	t.Helper()
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, b, LinkConfig{Rate: Gbps, Delay: 10 * time.Microsecond, Queue: QueueConfig{CapPackets: 4}})
	return sched, net, a, b
}

func TestPacketPoolRecyclesDeliveredPackets(t *testing.T) {
	sched, net, a, b := poolPair(t)
	delivered := 0
	b.SetHandler(func(*Packet) { delivered++ })

	const rounds = 100
	for i := 0; i < rounds; i++ {
		pkt := net.AllocPacket()
		pkt.ID = uint64(i)
		pkt.Src, pkt.Dst = a.ID(), b.ID()
		pkt.Size = 1500
		a.Send(pkt)
		sched.RunUntil(sched.Now().Add(time.Millisecond))
	}
	if delivered != rounds {
		t.Fatalf("delivered %d, want %d", delivered, rounds)
	}
	st := net.PoolStats()
	if st.Allocs != 1 {
		t.Errorf("Allocs = %d, want 1 (every later packet recycled)", st.Allocs)
	}
	if st.Reuses != rounds-1 {
		t.Errorf("Reuses = %d, want %d", st.Reuses, rounds-1)
	}
}

func TestPacketPoolRecyclesDrops(t *testing.T) {
	// Packets that die in the queue (tail drop) or at routing must also
	// return to the pool, not just delivered ones.
	sched, net, a, b := poolPair(t)
	b.SetHandler(func(*Packet) {})

	// Burst far beyond the 4-packet queue so most are tail-dropped.
	const burst = 50
	sched.After(0, func() {
		for i := 0; i < burst; i++ {
			pkt := net.AllocPacket()
			pkt.Src, pkt.Dst = a.ID(), b.ID()
			pkt.Size = 1500
			a.Send(pkt)
		}
	})
	sched.Run()

	st := net.PoolStats()
	if got := st.Allocs + st.Reuses; got != burst {
		t.Fatalf("Allocs+Reuses = %d, want %d", got, burst)
	}
	// Every packet is dead now; a fresh alloc must come from the pool.
	before := net.PoolStats().Reuses
	net.AllocPacket()
	if net.PoolStats().Reuses != before+1 {
		t.Error("post-drain alloc did not reuse a pooled packet")
	}
}

func TestReleasePacketIgnoresHandBuilt(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	hand := &Packet{ID: 1}
	net.ReleasePacket(hand)
	net.ReleasePacket(nil)
	if got := net.AllocPacket(); got == hand {
		t.Error("hand-built packet entered the pool")
	}
	if st := net.PoolStats(); st.Reuses != 0 {
		t.Errorf("Reuses = %d, want 0", st.Reuses)
	}
}

func TestReleasePacketDoubleReleaseSafe(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	p := net.AllocPacket()
	net.ReleasePacket(p)
	net.ReleasePacket(p) // second release must be a no-op
	x := net.AllocPacket()
	y := net.AllocPacket()
	if x == y {
		t.Fatal("double release duplicated a packet in the pool")
	}
}

func TestReleasePacketResetsStateKeepsSackCapacity(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	p := net.AllocPacket()
	p.ID = 42
	p.IsAck = true
	p.Ack = 99
	p.Sack = append(p.Sack, SackBlock{Start: 1, End: 2}, SackBlock{Start: 3, End: 4})
	saved := cap(p.Sack)
	net.ReleasePacket(p)
	q := net.AllocPacket()
	if q != p {
		t.Fatal("expected the released packet back")
	}
	if q.ID != 0 || q.IsAck || q.Ack != 0 || len(q.Sack) != 0 {
		t.Errorf("recycled packet not reset: %+v", q)
	}
	if cap(q.Sack) != saved {
		t.Errorf("Sack capacity %d, want %d (backing array should survive recycling)", cap(q.Sack), saved)
	}
}

func TestPacketChurnSteadyStateZeroAlloc(t *testing.T) {
	// With the packet pool, event free list, and per-pipe callbacks all
	// warmed, a full send→serialize→propagate→deliver cycle allocates
	// nothing.
	sched, net, a, b := poolPair(t)
	b.SetHandler(func(*Packet) {})
	send := func() {
		pkt := net.AllocPacket()
		pkt.Src, pkt.Dst = a.ID(), b.ID()
		pkt.Size = 1500
		a.Send(pkt)
		sched.RunUntil(sched.Now().Add(time.Millisecond))
	}
	for i := 0; i < 64; i++ {
		send()
	}
	allocs := testing.AllocsPerRun(500, send)
	if allocs != 0 {
		t.Errorf("steady-state packet churn allocates %.2f allocs/op, want 0", allocs)
	}
}
