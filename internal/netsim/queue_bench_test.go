package netsim

import (
	"testing"
	"time"

	"tcptrim/internal/aqm"
	"tcptrim/internal/sim"
)

// BenchmarkQueueDisciplines measures the Enqueue+Dequeue hot path under
// each discipline at a standing occupancy deep enough that every policy
// is active (above droptail's ECN threshold and RED's MinTh, with CoDel
// sojourn times above target). CI's bench smoke runs this with -benchmem:
// the whole cycle must stay allocation-free in steady state.
func BenchmarkQueueDisciplines(b *testing.B) {
	const depth = 30
	cfgs := []struct {
		name string
		aqm  aqm.Config
	}{
		{"droptail", aqm.Config{Kind: aqm.DropTail}},
		{"red", aqm.Config{Kind: aqm.RED, RED: aqm.REDConfig{Seed: 1}}},
		{"ared", aqm.Config{Kind: aqm.RED, RED: aqm.REDConfig{Adaptive: true, Seed: 1}}},
		{"codel", aqm.Config{Kind: aqm.CoDel}},
		{"favour", aqm.Config{Kind: aqm.FavourQueue}},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			q := NewQueue(QueueConfig{CapPackets: 100, ECNThresholdPackets: 20, AQM: cfg.aqm})
			now := sim.Time(0)
			q.SetClock(func() sim.Time { return now })
			q.SetDropHandler(func(*Packet) {})
			// A fixed pool of reusable packets across 8 flows; the bench
			// recycles whatever leaves the queue, so no allocation is the
			// queue's fault if the count stays nonzero.
			pkts := make([]*Packet, 0, depth+1)
			for i := 0; i <= depth; i++ {
				p := dataPkt(uint64(i), 1500)
				p.ECT = true
				p.Flow = FlowID(i % 8)
				pkts = append(pkts, p)
			}
			for _, p := range pkts[:depth] {
				now = now.Add(time.Microsecond)
				q.Enqueue(p)
			}
			spare := pkts[depth]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now = now.Add(10 * time.Microsecond)
				if !q.Enqueue(spare) {
					spare.CE = false
					continue
				}
				if p := q.Dequeue(); p != nil {
					p.CE = false
					spare = p
				} else {
					// Queue momentarily drained by head drops; refill.
					spare = pkts[0]
				}
			}
		})
	}
}

// BenchmarkQueueCompactionChurn exercises the amortized head-compaction
// path: long alternating bursts push the dead prefix past the trigger
// every cycle.
func BenchmarkQueueCompactionChurn(b *testing.B) {
	q := NewQueue(QueueConfig{})
	pkts := make([]*Packet, 200)
	for i := range pkts {
		pkts[i] = dataPkt(uint64(i), 1500)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pkts {
			q.Enqueue(p)
		}
		for range pkts {
			q.Dequeue()
		}
	}
}
