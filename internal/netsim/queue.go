package netsim

// QueueStats aggregates lifetime counters for one queue.
type QueueStats struct {
	Enqueued int
	Dropped  int
	Marked   int
	MaxLen   int // packets
	MaxBytes int
}

// Queue is a drop-tail FIFO with capacity expressed in packets and/or
// bytes (zero means "no limit in that unit") and an optional ECN marking
// threshold. It matches the COTS-switch queue model the paper assumes:
// tail drop, instantaneous-queue ECN marking at enqueue time (DCTCP
// style).
type Queue struct {
	capPackets int
	capBytes   int

	// markThresholdPackets / markThresholdBytes: when > 0, packets whose
	// arrival finds the queue at or above the threshold are CE-marked if
	// they are ECN-capable.
	markThresholdPackets int
	markThresholdBytes   int

	pkts  []*Packet
	head  int
	bytes int
	stats QueueStats
}

// QueueConfig configures a Queue.
type QueueConfig struct {
	// CapPackets limits the queue length in packets (0 = unlimited).
	CapPackets int
	// CapBytes limits the queue length in bytes (0 = unlimited).
	CapBytes int
	// ECNThresholdPackets enables DCTCP-style marking when the
	// instantaneous queue length reaches this many packets (0 = off).
	ECNThresholdPackets int
	// ECNThresholdBytes enables marking on queued bytes (0 = off).
	ECNThresholdBytes int
}

// NewQueue builds a queue from cfg.
func NewQueue(cfg QueueConfig) *Queue {
	return &Queue{
		capPackets:           cfg.CapPackets,
		capBytes:             cfg.CapBytes,
		markThresholdPackets: cfg.ECNThresholdPackets,
		markThresholdBytes:   cfg.ECNThresholdBytes,
	}
}

// Len returns the instantaneous queue length in packets.
func (q *Queue) Len() int { return len(q.pkts) - q.head }

// Bytes returns the instantaneous queued bytes.
func (q *Queue) Bytes() int { return q.bytes }

// Stats returns a copy of the lifetime counters.
func (q *Queue) Stats() QueueStats { return q.stats }

// Enqueue appends p, applying tail drop and ECN marking. It reports
// whether the packet was accepted; a rejected packet is dropped.
func (q *Queue) Enqueue(p *Packet) bool {
	if q.capPackets > 0 && q.Len() >= q.capPackets {
		q.stats.Dropped++
		return false
	}
	if q.capBytes > 0 && q.bytes+p.Size > q.capBytes {
		q.stats.Dropped++
		return false
	}
	if p.ECT && q.shouldMark() {
		p.CE = true
		q.stats.Marked++
	}
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
	q.stats.Enqueued++
	if l := q.Len(); l > q.stats.MaxLen {
		q.stats.MaxLen = l
	}
	if q.bytes > q.stats.MaxBytes {
		q.stats.MaxBytes = q.bytes
	}
	return true
}

// Dequeue removes and returns the head packet, or nil when empty.
func (q *Queue) Dequeue() *Packet {
	if q.Len() == 0 {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= p.Size
	// Compact once the dead prefix dominates, keeping amortized O(1).
	if q.head > 64 && q.head*2 >= len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	return p
}

func (q *Queue) shouldMark() bool {
	if q.markThresholdPackets > 0 && q.Len() >= q.markThresholdPackets {
		return true
	}
	if q.markThresholdBytes > 0 && q.bytes >= q.markThresholdBytes {
		return true
	}
	return false
}
