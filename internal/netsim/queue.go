package netsim

import (
	"tcptrim/internal/aqm"
	"tcptrim/internal/sim"
)

// QueueStats aggregates lifetime counters for one queue. Dropped is the
// total of all congestion drops; TailDrops, EarlyDrops, and HeadDrops
// split it by cause so experiment captions can distinguish a full buffer
// (tail) from an AQM decision (RED's probabilistic early drop, CoDel's
// sojourn-time head drop). Under the default drop-tail discipline every
// drop is a tail drop, preserving the historical meaning of Dropped.
type QueueStats struct {
	Enqueued int
	Dropped  int
	Marked   int
	MaxLen   int // packets
	MaxBytes int

	// DroppedBytes totals the wire bytes of all dropped packets.
	DroppedBytes int
	// TailDrops are rejections for lack of buffer space.
	TailDrops int
	// EarlyDrops are AQM probabilistic drops decided at enqueue (RED).
	EarlyDrops int
	// HeadDrops are AQM drops decided at dequeue (CoDel).
	HeadDrops int
}

// Queue is a switch egress queue with capacity expressed in packets
// and/or bytes (zero means "no limit in that unit"). Admission, ECN
// marking, head drops, and priority placement are delegated to an aqm
// Discipline; the default discipline reproduces the COTS-switch model
// the paper assumes (tail drop, instantaneous-queue ECN marking at
// enqueue time, DCTCP style) exactly.
//
// Storage is two FIFO bands: the favoured band (used only when the
// discipline issues Favour verdicts, e.g. FavourQueue) drains strictly
// before the main band. Both share the configured capacity.
type Queue struct {
	capPackets int
	capBytes   int

	disc   aqm.Discipline
	clock  func() sim.Time
	dropFn func(*Packet)

	pkts  []*Packet
	times []sim.Time // per-packet enqueue instants, aligned with pkts
	head  int

	fav      []*Packet
	favTimes []sim.Time
	favHead  int

	bytes int
	stats QueueStats
}

// QueueConfig configures a Queue.
type QueueConfig struct {
	// CapPackets limits the queue length in packets (0 = unlimited).
	CapPackets int
	// CapBytes limits the queue length in bytes (0 = unlimited).
	CapBytes int
	// ECNThresholdPackets enables DCTCP-style marking when the
	// instantaneous queue length reaches this many packets (0 = off).
	// The threshold is interpreted by the discipline; drop-tail and
	// FavourQueue apply it verbatim, RED and CoDel use their own marking
	// rules instead.
	ECNThresholdPackets int
	// ECNThresholdBytes enables marking on queued bytes (0 = off).
	ECNThresholdBytes int
	// AQM selects the queue discipline. The zero value is drop-tail,
	// byte-identical to the historical hard-coded behavior.
	AQM aqm.Config
}

// limits maps the config onto the discipline's view of the queue.
func (cfg QueueConfig) limits() aqm.Limits {
	return aqm.Limits{
		CapPackets:          cfg.CapPackets,
		CapBytes:            cfg.CapBytes,
		ECNThresholdPackets: cfg.ECNThresholdPackets,
		ECNThresholdBytes:   cfg.ECNThresholdBytes,
	}
}

// NewQueue builds a queue from cfg, constructing a fresh discipline
// instance (disciplines hold per-queue state and are never shared). An
// unknown AQM kind is a configuration bug and panics at build time.
func NewQueue(cfg QueueConfig) *Queue {
	return &Queue{
		capPackets: cfg.CapPackets,
		capBytes:   cfg.CapBytes,
		disc:       cfg.AQM.MustBuild(cfg.limits()),
	}
}

// SetClock installs the simulation clock the queue stamps enqueue times
// with and passes to the discipline (sojourn-time AQMs need it). A nil
// clock — hand-built queues in unit tests — pins time at zero.
func (q *Queue) SetClock(fn func() sim.Time) { q.clock = fn }

// SetDropHandler installs the release hook for packets the discipline
// drops from the head of the queue (tail drops are rejected at Enqueue
// and released by the caller). Network.Connect points it at the packet
// pool; without one, head-dropped packets are simply discarded.
func (q *Queue) SetDropHandler(fn func(*Packet)) { q.dropFn = fn }

// Discipline exposes the queue's AQM policy (for stats reporting).
func (q *Queue) Discipline() aqm.Discipline { return q.disc }

// AQMStats returns the discipline's counter snapshot.
func (q *Queue) AQMStats() aqm.Stats { return q.disc.Stats() }

// Len returns the instantaneous queue length in packets.
func (q *Queue) Len() int {
	return (len(q.pkts) - q.head) + (len(q.fav) - q.favHead)
}

// Bytes returns the instantaneous queued bytes.
func (q *Queue) Bytes() int { return q.bytes }

// Stats returns a copy of the lifetime counters.
func (q *Queue) Stats() QueueStats { return q.stats }

func (q *Queue) now() sim.Time {
	if q.clock == nil {
		return 0
	}
	return q.clock()
}

// Enqueue offers p to the discipline and appends it on admission. It
// reports whether the packet was accepted; a rejected packet has been
// counted as dropped and must be released by the caller.
func (q *Queue) Enqueue(p *Packet) bool {
	now := q.now()
	v := q.disc.OnEnqueue(aqmPkt(p), aqm.State{Len: q.Len(), Bytes: q.bytes}, now)
	if v.Drop {
		q.stats.Dropped++
		q.stats.DroppedBytes += p.Size
		if v.Early {
			q.stats.EarlyDrops++
		} else {
			q.stats.TailDrops++
		}
		return false
	}
	if v.Mark && p.ECT {
		p.CE = true
		q.stats.Marked++
	}
	if v.Favour {
		q.fav = append(q.fav, p)
		q.favTimes = append(q.favTimes, now)
	} else {
		q.pkts = append(q.pkts, p)
		q.times = append(q.times, now)
	}
	q.bytes += p.Size
	q.stats.Enqueued++
	if l := q.Len(); l > q.stats.MaxLen {
		q.stats.MaxLen = l
	}
	if q.bytes > q.stats.MaxBytes {
		q.stats.MaxBytes = q.bytes
	}
	return true
}

// Dequeue removes and returns the next deliverable packet, or nil when
// empty. The discipline inspects each departing head packet (with its
// sojourn time and the occupancy remaining behind it); a Drop verdict
// releases the packet via the drop handler and the next head is offered,
// so one Dequeue call may consume several queued packets.
func (q *Queue) Dequeue() *Packet {
	for {
		p, enq := q.pop()
		if p == nil {
			return nil
		}
		now := q.now()
		v := q.disc.OnDequeue(aqmPkt(p), now.Sub(enq), aqm.State{Len: q.Len(), Bytes: q.bytes}, now)
		q.disc.OnRemove(aqmPkt(p))
		if v.Drop {
			q.stats.Dropped++
			q.stats.DroppedBytes += p.Size
			q.stats.HeadDrops++
			if q.dropFn != nil {
				q.dropFn(p)
			}
			continue
		}
		if v.Mark && p.ECT {
			p.CE = true
			q.stats.Marked++
		}
		return p
	}
}

// DrainOne removes and returns the head packet without consulting the
// discipline's dequeue verdicts: the caller (the fault layer blackholing
// a downed link's backlog) owns the drop decision and its accounting, so
// AQM counters must not claim these packets. The discipline is still
// notified of the departure to keep per-flow state exact.
func (q *Queue) DrainOne() *Packet {
	p, _ := q.pop()
	if p == nil {
		return nil
	}
	q.disc.OnRemove(aqmPkt(p))
	return p
}

// pop removes the head packet — favoured band first — returning it with
// its enqueue instant.
func (q *Queue) pop() (*Packet, sim.Time) {
	if q.favHead < len(q.fav) {
		p, at := q.fav[q.favHead], q.favTimes[q.favHead]
		q.fav[q.favHead] = nil
		q.favHead++
		q.bytes -= p.Size
		// Compact once the dead prefix dominates, keeping amortized O(1).
		if q.favHead > 64 && q.favHead*2 >= len(q.fav) {
			n := copy(q.fav, q.fav[q.favHead:])
			copy(q.favTimes, q.favTimes[q.favHead:])
			q.fav = q.fav[:n]
			q.favTimes = q.favTimes[:n]
			q.favHead = 0
		}
		return p, at
	}
	if q.head >= len(q.pkts) {
		return nil, 0
	}
	p, at := q.pkts[q.head], q.times[q.head]
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= p.Size
	// Compact once the dead prefix dominates, keeping amortized O(1).
	if q.head > 64 && q.head*2 >= len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		copy(q.times, q.times[q.head:])
		q.pkts = q.pkts[:n]
		q.times = q.times[:n]
		q.head = 0
	}
	return p, at
}

// aqmPkt projects the discipline-visible fields of a packet.
func aqmPkt(p *Packet) aqm.Pkt {
	return aqm.Pkt{Size: p.Size, ECT: p.ECT, Flow: uint64(p.Flow)}
}
