package netsim

import (
	"testing"
	"time"

	"tcptrim/internal/sim"
)

// star builds N hosts attached to one switch plus a front-end host, the
// paper's many-to-one scenario.
func star(sched *sim.Scheduler, n int, cfg LinkConfig) (*Network, []*Host, *Host) {
	net := NewNetwork(sched)
	sw := net.AddSwitch("tor")
	senders := make([]*Host, n)
	for i := range senders {
		senders[i] = net.AddHost("")
		net.Connect(senders[i], sw, cfg)
	}
	fe := net.AddHost("frontend")
	net.Connect(sw, fe, cfg)
	return net, senders, fe
}

func TestPacketDeliveryAcrossSwitch(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := LinkConfig{Rate: Gbps, Delay: 50 * time.Microsecond, Queue: QueueConfig{CapPackets: 100}}
	_, senders, fe := star(sched, 2, cfg)

	var gotAt sim.Time
	var got *Packet
	fe.SetHandler(func(p *Packet) { got, gotAt = p, sched.Now() })

	pkt := &Packet{ID: 7, Flow: 1, Src: senders[0].ID(), Dst: fe.ID(), Size: 1500, Payload: 1460}
	sched.After(0, func() { senders[0].Send(pkt) })
	sched.Run()

	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.ID != 7 {
		t.Errorf("got packet %d", got.ID)
	}
	// Two hops: 2 × (12µs serialization + 50µs propagation) = 124µs.
	want := sim.At(124 * time.Microsecond)
	if gotAt != want {
		t.Errorf("delivered at %v, want %v", gotAt, want)
	}
}

func TestLoopbackDelivery(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	h := net.AddHost("h")
	delivered := false
	h.SetHandler(func(*Packet) { delivered = true })
	h.Send(&Packet{Src: h.ID(), Dst: h.ID(), Size: 1500})
	if !delivered {
		t.Error("loopback packet not delivered synchronously")
	}
}

func TestNoRouteDrops(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	a := net.AddHost("a")
	b := net.AddHost("b") // not connected
	a.Send(&Packet{Src: a.ID(), Dst: b.ID(), Size: 1500})
	sched.Run()
	if net.Stats().RoutingDrops != 1 {
		t.Errorf("RoutingDrops = %d, want 1", net.Stats().RoutingDrops)
	}
}

func TestSerializationBacklog(t *testing.T) {
	// Ten packets offered at once to a 1 Gbps pipe serialize back to
	// back: delivery k at (k+1)*12µs + 50µs.
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, b, LinkConfig{Rate: Gbps, Delay: 50 * time.Microsecond, Queue: QueueConfig{CapPackets: 100}})

	var arrivals []sim.Time
	b.SetHandler(func(*Packet) { arrivals = append(arrivals, sched.Now()) })
	sched.After(0, func() {
		for i := 0; i < 10; i++ {
			a.Send(&Packet{ID: uint64(i), Src: a.ID(), Dst: b.ID(), Size: 1500})
		}
	})
	sched.Run()

	if len(arrivals) != 10 {
		t.Fatalf("delivered %d, want 10", len(arrivals))
	}
	for k, at := range arrivals {
		want := sim.At(time.Duration(k+1)*12*time.Microsecond + 50*time.Microsecond)
		if at != want {
			t.Errorf("packet %d at %v, want %v", k, at, want)
		}
	}
}

func TestTailDropUnderOverload(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	a := net.AddHost("a")
	b := net.AddHost("b")
	ab, _ := net.Connect(a, b, LinkConfig{Rate: Gbps, Delay: time.Microsecond, Queue: QueueConfig{CapPackets: 5}})

	delivered := 0
	b.SetHandler(func(*Packet) { delivered++ })
	sched.After(0, func() {
		for i := 0; i < 20; i++ {
			a.Send(&Packet{ID: uint64(i), Src: a.ID(), Dst: b.ID(), Size: 1500})
		}
	})
	sched.Run()

	// 1 in flight + 5 queued = 6 delivered, 14 dropped.
	if delivered != 6 {
		t.Errorf("delivered = %d, want 6", delivered)
	}
	if drops := ab.Queue().Stats().Dropped; drops != 14 {
		t.Errorf("drops = %d, want 14", drops)
	}
}

func TestManyToOneConvergesOnBottleneck(t *testing.T) {
	// 5 senders × 20 packets into one egress: all 100 arrive (queue big
	// enough), and the last arrival is governed by the bottleneck rate.
	sched := sim.NewScheduler()
	cfg := LinkConfig{Rate: Gbps, Delay: 50 * time.Microsecond, Queue: QueueConfig{CapPackets: 200}}
	_, senders, fe := star(sched, 5, cfg)

	count := 0
	var last sim.Time
	fe.SetHandler(func(*Packet) { count++; last = sched.Now() })
	sched.After(0, func() {
		for i, s := range senders {
			for k := 0; k < 20; k++ {
				s.Send(&Packet{ID: uint64(i*100 + k), Flow: FlowID(i), Src: s.ID(), Dst: fe.ID(), Size: 1500})
			}
		}
	})
	sched.Run()

	if count != 100 {
		t.Fatalf("delivered %d, want 100", count)
	}
	// 100 packets × 12µs serialization on the bottleneck ≈ 1.2ms floor.
	if last < sim.At(1200*time.Microsecond) {
		t.Errorf("last arrival %v is faster than bottleneck allows", last)
	}
}

func TestECMPSplitsFlows(t *testing.T) {
	// Two equal-cost paths between edge switches; many flows should use
	// both.
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	src := net.AddHost("src")
	dst := net.AddHost("dst")
	in := net.AddSwitch("in")
	outSw := net.AddSwitch("out")
	mid1 := net.AddSwitch("mid1")
	mid2 := net.AddSwitch("mid2")
	cfg := LinkConfig{Rate: Gbps, Delay: time.Microsecond, Queue: QueueConfig{CapPackets: 1000}}
	net.Connect(src, in, cfg)
	p1, _ := net.Connect(in, mid1, cfg)
	p2, _ := net.Connect(in, mid2, cfg)
	net.Connect(mid1, outSw, cfg)
	net.Connect(mid2, outSw, cfg)
	net.Connect(outSw, dst, cfg)

	delivered := 0
	dst.SetHandler(func(*Packet) { delivered++ })
	sched.After(0, func() {
		for f := 0; f < 64; f++ {
			src.Send(&Packet{ID: uint64(f), Flow: FlowID(f), Src: src.ID(), Dst: dst.ID(), Size: 1500})
		}
	})
	sched.Run()

	if delivered != 64 {
		t.Fatalf("delivered %d, want 64", delivered)
	}
	s1, s2 := p1.Stats().SentPackets, p2.Stats().SentPackets
	if s1+s2 != 64 {
		t.Fatalf("paths carried %d+%d, want 64 total", s1, s2)
	}
	if s1 == 0 || s2 == 0 {
		t.Errorf("ECMP did not split flows: %d vs %d", s1, s2)
	}
}

func TestECMPFlowStickiness(t *testing.T) {
	// All packets of one flow must take the same path (no reordering by
	// the network).
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	src := net.AddHost("src")
	dst := net.AddHost("dst")
	in := net.AddSwitch("in")
	outSw := net.AddSwitch("out")
	mid1 := net.AddSwitch("mid1")
	mid2 := net.AddSwitch("mid2")
	cfg := LinkConfig{Rate: Gbps, Delay: time.Microsecond, Queue: QueueConfig{CapPackets: 1000}}
	net.Connect(src, in, cfg)
	p1, _ := net.Connect(in, mid1, cfg)
	p2, _ := net.Connect(in, mid2, cfg)
	net.Connect(mid1, outSw, cfg)
	net.Connect(mid2, outSw, cfg)
	net.Connect(outSw, dst, cfg)

	sched.After(0, func() {
		for k := 0; k < 50; k++ {
			src.Send(&Packet{ID: uint64(k), Flow: 99, Src: src.ID(), Dst: dst.ID(), Size: 1500})
		}
	})
	sched.Run()

	s1, s2 := p1.Stats().SentPackets, p2.Stats().SentPackets
	if s1 != 0 && s2 != 0 {
		t.Errorf("flow split across paths: %d vs %d", s1, s2)
	}
	if s1+s2 != 50 {
		t.Errorf("carried %d, want 50", s1+s2)
	}
}

func TestRoutesInvalidatedByConnect(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	a := net.AddHost("a")
	b := net.AddHost("b")
	delivered := 0
	b.SetHandler(func(*Packet) { delivered++ })

	a.Send(&Packet{Src: a.ID(), Dst: b.ID(), Size: 1500})
	sched.Run()
	if delivered != 0 {
		t.Fatal("delivered before any link existed")
	}

	net.Connect(a, b, LinkConfig{Rate: Gbps, Delay: time.Microsecond, Queue: QueueConfig{CapPackets: 10}})
	a.Send(&Packet{Src: a.ID(), Dst: b.ID(), Size: 1500})
	sched.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d after link added, want 1", delivered)
	}
}

func TestHostAndSwitchNames(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	h := net.AddHost("")
	s := net.AddSwitch("")
	if h.Name() == "" || s.Name() == "" {
		t.Error("auto-generated names must be non-empty")
	}
	named := net.AddHost("frontend")
	if named.Name() != "frontend" {
		t.Errorf("Name = %q", named.Name())
	}
	if net.Node(named.ID()) != Node(named) {
		t.Error("Node lookup by id failed")
	}
	if net.Node(NodeID(999)) != nil {
		t.Error("out-of-range lookup should be nil")
	}
}
