package netsim

// Fault injection. The paper's experiments only ever stress the stack with
// congestion (tail drops) and, in the extension experiments, independent
// Bernoulli loss and FIFO-preserving jitter. Real data-center failures are
// correlated: optics degrade in bursts, links flap, and LAG/ECMP rehashing
// reorders or duplicates packets. This file adds a composable per-pipe
// fault layer for those behaviors so the resilience experiments can open
// that scenario space. Every injector is opt-in, costs nothing when
// disabled, and keeps its own PipeStats counters so injected faults are
// never conflated with congestion drops (QueueStats.Dropped).
//
// Ownership discipline: a faulted packet always has exactly one owner.
// Drops release the packet to the network pool at the drop point;
// duplication clones through the pool (the clone is a distinct packet, so
// original and copy are released independently); reordering transfers
// ownership to a held-back delivery event that is accounted for by the
// invariant checker (see invariant.go).

import (
	"fmt"
	"math/rand"
	"time"

	"tcptrim/internal/sim"
)

// GEConfig parameterizes the Gilbert–Elliott two-state bursty-loss model.
// The channel is in a good or a bad state; each offered packet is dropped
// with the state's loss probability, and afterwards the state transitions
// with the configured per-packet probabilities. Mean burst length is
// 1/PBadGood packets; stationary loss rate is
// LossGood·P(good) + LossBad·P(bad) with
// P(bad) = PGoodBad/(PGoodBad+PBadGood).
type GEConfig struct {
	// PGoodBad is the per-packet probability of entering the bad state.
	PGoodBad float64
	// PBadGood is the per-packet probability of leaving the bad state.
	PBadGood float64
	// LossGood is the drop probability while in the good state (usually 0).
	LossGood float64
	// LossBad is the drop probability while in the bad state.
	LossBad float64
}

// Enabled reports whether the configuration can ever drop a packet.
func (c GEConfig) Enabled() bool {
	return c.LossGood > 0 || (c.PGoodBad > 0 && c.LossBad > 0)
}

// geState is the per-pipe Gilbert–Elliott channel state.
type geState struct {
	cfg GEConfig
	rng *rand.Rand
	bad bool
}

// drop decides the fate of one offered packet and advances the channel.
func (g *geState) drop() bool {
	loss := g.cfg.LossGood
	if g.bad {
		loss = g.cfg.LossBad
	}
	dropped := loss > 0 && g.rng.Float64() < loss
	if g.bad {
		if g.cfg.PBadGood > 0 && g.rng.Float64() < g.cfg.PBadGood {
			g.bad = false
		}
	} else if g.cfg.PGoodBad > 0 && g.rng.Float64() < g.cfg.PGoodBad {
		g.bad = true
	}
	return dropped
}

// pipeFaults bundles a pipe's active fault injectors. The pointer is nil
// until the first injector is configured, so un-faulted pipes pay one nil
// check on the hot path.
type pipeFaults struct {
	ge *geState

	// down marks the link dead: offered packets, the packet mid-
	// serialization, queued packets, and in-flight packets are all
	// blackholed (released to the pool and counted as FlapDrops).
	down bool

	reorderProb  float64
	reorderExtra time.Duration
	reorderRng   *rand.Rand
	// heldPooled counts pooled packets owned by pending late-delivery
	// events; the invariant checker's conservation sum includes it.
	heldPooled int
	held       int
	// On a cut pipe the late-delivery event runs on the destination shard
	// and must not write the source-side held counters during a parallel
	// segment; it bumps these instead, and the checker balances
	// heldPooled − arrivedPooled.
	arrived       int
	arrivedPooled int

	dupProb float64
	dupRng  *rand.Rand

	// Flap schedule state: one persistent timer per pipe drives every
	// down/up edge (flapTick is bound once, so the timer re-slots in
	// place via Reset instead of chaining fresh closures), and a new
	// ScheduleFlaps replaces a still-pending schedule outright.
	flapTimer     sim.Timer
	flapTick      func()
	flapDownFor   time.Duration
	flapUpFor     time.Duration
	flapRemaining int
	flapNextDown  bool
}

func (p *Pipe) faultState() *pipeFaults {
	if p.faults == nil {
		p.faults = &pipeFaults{}
	}
	return p.faults
}

// InjectGilbertElliott enables bursty loss on this pipe direction. A nil
// rng or a configuration that can never drop disables the model (and
// resets its state).
func (p *Pipe) InjectGilbertElliott(cfg GEConfig, rng *rand.Rand) {
	f := p.faultState()
	if rng == nil || !cfg.Enabled() {
		f.ge = nil
		return
	}
	f.ge = &geState{cfg: cfg, rng: rng}
}

// InjectReorder makes each packet, with the given probability, bypass the
// FIFO wire and arrive after a uniform extra delay in (0, maxExtra] — so
// up to a bounded window of later packets overtake it. A nil rng or
// non-positive probability disables injection.
func (p *Pipe) InjectReorder(prob float64, maxExtra time.Duration, rng *rand.Rand) {
	f := p.faultState()
	if rng == nil || prob <= 0 {
		f.reorderProb, f.reorderRng = 0, nil
		return
	}
	if prob > 1 {
		prob = 1
	}
	if maxExtra <= 0 {
		maxExtra = time.Microsecond
	}
	f.reorderProb, f.reorderExtra, f.reorderRng = prob, maxExtra, rng
}

// InjectDuplicate makes each transmitted packet, with the given
// probability, arrive twice: the original plus a pool-allocated clone
// delivered immediately after it. A nil rng or non-positive probability
// disables injection.
func (p *Pipe) InjectDuplicate(prob float64, rng *rand.Rand) {
	f := p.faultState()
	if rng == nil || prob <= 0 {
		f.dupProb, f.dupRng = 0, nil
		return
	}
	if prob > 1 {
		prob = 1
	}
	f.dupProb, f.dupRng = prob, rng
}

// Down reports whether the link is currently flapped down.
func (p *Pipe) Down() bool { return p.faults != nil && p.faults.down }

// SetLinkDown flaps the link down or back up. Taking the link down drains
// the egress queue into the pool (counted as FlapDrops); packets already
// serializing or on the wire are blackholed when their transmit/arrival
// events fire while the link is still down.
func (p *Pipe) SetLinkDown(down bool) {
	f := p.faultState()
	if f.down == down {
		return
	}
	f.down = down
	if !down {
		return
	}
	// DrainOne bypasses the discipline's dequeue verdicts: the blackholed
	// backlog is the fault layer's doing and must land in FlapDrops, not
	// in the AQM's head-drop counters.
	for {
		pkt := p.queue.DrainOne()
		if pkt == nil {
			return
		}
		p.stats.FlapDrops++
		p.release(pkt)
	}
}

// FlapConfig schedules periodic link outages on a pipe.
type FlapConfig struct {
	// FirstDownAt is the instant of the first down edge.
	FirstDownAt sim.Time
	// DownFor is the outage length; must be positive.
	DownFor time.Duration
	// UpFor is the healthy interval between consecutive outages; must be
	// positive when Count > 1.
	UpFor time.Duration
	// Count is the number of outages; 0 means one.
	Count int
}

// ScheduleFlaps arms cfg.Count down/up cycles starting at cfg.FirstDownAt.
// The last up edge restores the link for good. A pipe carries at most one
// flap schedule: scheduling again while an edge is still pending re-slots
// the pipe's flap timer to the new first edge and adopts the new
// configuration, rather than layering a second chain on top of the first.
func (p *Pipe) ScheduleFlaps(cfg FlapConfig) error {
	if p.dstSched != nil {
		// A flap edge mutates f.down on the source shard while in-flight
		// arrivals read it on the destination shard — unsynchronized under
		// parallel segments. Keep flapped pipes shard-internal: cut the
		// topology elsewhere or merge the two shards.
		return fmt.Errorf("netsim: cannot flap cut pipe %s->%s; keep flapped pipes shard-internal",
			p.from.Name(), p.to.Name())
	}
	if cfg.DownFor <= 0 {
		return fmt.Errorf("netsim: flap DownFor must be positive, got %v", cfg.DownFor)
	}
	count := cfg.Count
	if count <= 0 {
		count = 1
	}
	if count > 1 && cfg.UpFor <= 0 {
		return fmt.Errorf("netsim: flap UpFor must be positive for %d flaps", count)
	}
	if cfg.FirstDownAt < p.sched.Now() {
		return sim.ErrPastEvent
	}
	f := p.faultState()
	if f.flapTick == nil {
		f.flapTick = p.flapEdge
	}
	f.flapDownFor, f.flapUpFor = cfg.DownFor, cfg.UpFor
	f.flapRemaining = count
	f.flapNextDown = true
	if f.flapTimer.Reset(cfg.FirstDownAt.Sub(p.sched.Now())) {
		return nil
	}
	tm, err := p.sched.At(cfg.FirstDownAt, f.flapTick)
	if err != nil {
		return err
	}
	f.flapTimer = tm
	return nil
}

// flapEdge drives the flap schedule: alternate down and up edges until
// the configured cycle count is exhausted.
func (p *Pipe) flapEdge() {
	f := p.faults
	if f.flapNextDown {
		f.flapNextDown = false
		p.SetLinkDown(true)
		p.armFlapEdge(f.flapDownFor)
		return
	}
	p.SetLinkDown(false)
	f.flapRemaining--
	f.flapNextDown = true
	if f.flapRemaining > 0 {
		p.armFlapEdge(f.flapUpFor)
	}
}

// armFlapEdge schedules the next flap edge, re-slotting the persistent
// timer when it is still pending (a replaced schedule) and falling back
// to a fresh event otherwise (the common case: the timer just fired).
func (p *Pipe) armFlapEdge(d time.Duration) {
	f := p.faults
	if !f.flapTimer.Reset(d) {
		f.flapTimer = p.sched.After(d, f.flapTick)
	}
}

// clonePacket duplicates pkt for injection. The clone comes from the
// network pool (a fresh allocation for hand-built packets outside a
// Network), so original and clone have independent lifetimes and a release
// of one can never free the other.
func (p *Pipe) clonePacket(pkt *Packet) *Packet {
	var c *Packet
	if p.net != nil {
		c = p.net.allocShard(p.shard)
	} else {
		c = &Packet{}
	}
	pooled := c.pooled
	sack := c.Sack[:0]
	*c = *pkt
	c.pooled, c.inPool = pooled, false
	c.Sack = append(sack, pkt.Sack...)
	return c
}

// deliverLate delivers pkt outside the FIFO flight: it arrives extra time
// after its nominal arrival instant at, without advancing the FIFO's
// lastArrival clamp, so packets serialized later may overtake it. If the
// link flaps down while the packet is held, it is blackholed on delivery.
func (p *Pipe) deliverLate(pkt *Packet, at sim.Time) {
	f := p.faults
	extra := time.Duration(1 + f.reorderRng.Int63n(int64(f.reorderExtra)))
	p.stats.Reordered++
	f.held++
	if pkt.pooled {
		f.heldPooled++
	}
	if p.dstSched != nil {
		// Cut pipe: the arrival runs on the destination shard. It records
		// consumption in the arrived counters (never touching the source-
		// side held ledger) and retires drops into the destination pool.
		// The per-packet closure allocates, but only under reorder
		// injection — the zero-fault hot path stays closure-free.
		fn := func() {
			f.arrived++
			if pkt.pooled {
				f.arrivedPooled++
			}
			if f.down {
				p.flapDropsDst++
				p.releaseDst(pkt)
				return
			}
			p.to.Receive(pkt, p)
		}
		p.sched.Post(p.dstSched, at.Add(extra), nil, fn)
		return
	}
	fn := func() {
		f.held--
		if pkt.pooled {
			f.heldPooled--
		}
		if f.down {
			p.stats.FlapDrops++
			p.release(pkt)
			return
		}
		p.to.Receive(pkt, p)
	}
	if _, err := p.sched.At(at.Add(extra), fn); err != nil {
		// Unreachable: at is never in the past.
		p.sched.After(extra, fn)
	}
}
