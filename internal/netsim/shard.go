package netsim

// Topology partitioning for the parallel simulation core (see
// internal/sim/shard.go for the PDES engine itself). A network is cut at
// pipe boundaries: every node is assigned to exactly one shard, a pipe
// whose endpoints land on different shards becomes a *cut pipe*, and a
// cut pipe's propagation delay is the physical lookahead that lets the
// shards run conservatively in parallel — a packet put on the wire at t
// cannot affect the far side before t+delay.
//
// The partitioning is a pure relabeling of the sequential simulation:
// every event keeps its instant, and the engine's merge protocol replays
// the exact global dispatch order, so results are byte-identical at any
// shard count. What changes is only which wheel an event lives on and
// which pool a packet is recycled through.

import (
	"fmt"
	"time"

	"tcptrim/internal/sim"
)

// Shard partitions the network across g's shards. shardOf must return a
// stable shard index in [0, g.NumShards()) for every node. Requirements:
//
//   - the topology is complete: Connect panics after Shard;
//   - no traffic has run yet (packet pools and routes are rebuilt);
//   - every cut pipe has a positive propagation delay — a zero-delay cut
//     would mean zero lookahead and no admissible parallel window.
//
// Shard computes the group's lookahead as the minimum cut-pipe delay,
// prewarms and freezes the route cache (parallel segments may only read
// it), and rebinds every pipe, queue and host to its shard's scheduler
// and packet pool. The network's own scheduler becomes shard 0's; drive
// the run through the group (RunUntil/SyncAt), not through it.
func (n *Network) Shard(g *sim.ShardGroup, shardOf func(Node) int) error {
	if n.group != nil {
		return fmt.Errorf("netsim: network already sharded")
	}
	if g == nil {
		return fmt.Errorf("netsim: nil shard group")
	}
	k := g.NumShards()

	// Resolve and validate the node → shard map first; nothing is mutated
	// until the whole assignment is known good.
	assign := make([]int32, len(n.nodes))
	for id, node := range n.nodes {
		s := shardOf(node)
		if s < 0 || s >= k {
			return fmt.Errorf("netsim: node %s assigned to shard %d, want [0,%d)", node.Name(), s, k)
		}
		assign[id] = int32(s)
	}
	var minCut time.Duration
	for _, pipes := range n.out {
		for _, p := range pipes {
			src, dst := assign[p.from.ID()], assign[p.to.ID()]
			if src == dst {
				continue
			}
			if p.delay <= 0 {
				return fmt.Errorf("netsim: cut pipe %s->%s has zero delay; zero lookahead admits no parallel window",
					p.from.Name(), p.to.Name())
			}
			if minCut == 0 || p.delay < minCut {
				minCut = p.delay
			}
		}
	}

	n.group = g
	n.nodeShard = assign
	n.sched = g.Shard(0)
	if minCut > 0 {
		g.SetLookahead(sim.Time(minCut))
	}

	// Grow the pool and stats arrays to one slot per shard, keeping any
	// pool-0 state (tests sometimes preallocate before sharding).
	pools := make([]pktPool, k)
	copy(pools, n.pools)
	n.pools = pools
	shStats := make([]NetworkStats, k)
	copy(shStats, n.shStats)
	n.shStats = shStats

	for _, node := range n.nodes {
		if h, ok := node.(*Host); ok {
			h.shard = assign[h.id]
			h.sched = g.Shard(int(h.shard))
		}
	}
	for _, pipes := range n.out {
		for _, p := range pipes {
			p.shard = assign[p.from.ID()]
			p.dstShard = assign[p.to.ID()]
			p.sched = g.Shard(int(p.shard))
			if p.dstShard != p.shard {
				p.dstSched = g.Shard(int(p.dstShard))
				p.xferFn = p.onXfer
			}
			// The queue's clock and drop handler were bound to the
			// pre-shard scheduler and the default pool; rebind both to the
			// pipe's source shard.
			p.queue.SetClock(p.sched.Now)
			p.queue.SetDropHandler(p.release)
		}
	}

	// Prewarm the route cache for every deliverable destination, then
	// freeze it: parallel segments only ever read the map, and a frozen
	// miss is a routing drop instead of a racing cache fill.
	for _, node := range n.nodes {
		if _, ok := node.(*Host); !ok {
			continue
		}
		dst := node.ID()
		if n.routes[dst] == nil {
			n.routes[dst] = n.buildRoutes(dst)
		}
	}
	n.routesFrozen = true
	return nil
}
