package netsim

import (
	"strings"
	"testing"
	"time"

	"tcptrim/internal/sim"
)

func TestCheckInvariantsDetectsLeak(t *testing.T) {
	r := newFaultRig(t, 100)
	r.sendAt(t, 0, 5, 1)
	r.sched.Run()
	r.net.CheckInvariants() // clean after drain

	// A packet allocated but never handed to the network is a leak: it is
	// live yet owned by no pipe.
	_ = r.net.AllocPacket()
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("CheckInvariants did not panic on a leaked packet")
		}
		msg, _ := rec.(string)
		if !strings.Contains(msg, "packet conservation") {
			t.Errorf("panic %q does not name packet conservation", msg)
		}
	}()
	r.net.CheckInvariants()
}

func TestQueueBoundsCheck(t *testing.T) {
	q := NewQueue(QueueConfig{CapPackets: 2})
	if msg := q.checkBounds(); msg != "" {
		t.Errorf("empty queue flagged: %s", msg)
	}
	q.Enqueue(&Packet{Size: 100})
	q.Enqueue(&Packet{Size: 100})
	if msg := q.checkBounds(); msg != "" {
		t.Errorf("full-but-legal queue flagged: %s", msg)
	}
	// Corrupt the byte accounting the way a miscounted dequeue would.
	q.bytes = -100
	if msg := q.checkBounds(); msg == "" {
		t.Error("negative byte count not flagged")
	}
}

func TestScheduledInvariantChecksCoverFaultyRun(t *testing.T) {
	withInvariants(t)
	r := newFaultRig(t, 50)
	// Every injector at once, checked every 20 µs: the checker must stay
	// silent through queue drains, held reorder deliveries, and clones.
	r.ab.InjectGilbertElliott(GEConfig{PGoodBad: 0.05, PBadGood: 0.1, LossBad: 0.8}, sim.NewRand(5))
	r.ab.InjectReorder(0.3, 100*time.Microsecond, sim.NewRand(6))
	r.ab.InjectDuplicate(0.2, sim.NewRand(7))
	if err := r.ab.ScheduleFlaps(FlapConfig{
		FirstDownAt: sim.At(200 * time.Microsecond),
		DownFor:     100 * time.Microsecond,
		UpFor:       200 * time.Microsecond,
		Count:       3,
	}); err != nil {
		t.Fatal(err)
	}
	for burst := 0; burst < 10; burst++ {
		r.sendAt(t, time.Duration(burst)*100*time.Microsecond, 30, uint64(1+burst*100))
	}
	r.net.ScheduleInvariantChecks(20 * time.Microsecond)
	r.finish(t)
	if st := r.ab.Stats(); st.BurstLossDrops == 0 || st.FlapDrops == 0 || st.Reordered == 0 || st.Duplicated == 0 {
		t.Errorf("chaos run did not exercise every injector: %+v", st)
	}
}
