package netsim

import (
	"testing"
	"time"

	"tcptrim/internal/sim"
)

func TestJitterDelaysButNeverReorders(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	a := net.AddHost("a")
	b := net.AddHost("b")
	ab, _ := net.Connect(a, b, LinkConfig{
		Rate:  Gbps,
		Delay: 50 * time.Microsecond,
		Queue: QueueConfig{CapPackets: 500},
	})
	ab.InjectJitter(200*time.Microsecond, sim.NewRand(3))

	var order []uint64
	var arrivals []sim.Time
	b.SetHandler(func(p *Packet) {
		order = append(order, p.ID)
		arrivals = append(arrivals, sched.Now())
	})
	sched.After(0, func() {
		for i := 0; i < 200; i++ {
			a.Send(&Packet{ID: uint64(i), Src: a.ID(), Dst: b.ID(), Size: 1500})
		}
	})
	sched.Run()

	if len(order) != 200 {
		t.Fatalf("delivered %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("reordered at %d: %d after %d", i, order[i], order[i-1])
		}
		if arrivals[i] < arrivals[i-1] {
			t.Fatalf("arrival times regress at %d", i)
		}
	}
	// Jitter must actually stretch some gaps beyond serialization (12µs).
	stretched := 0
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].Sub(arrivals[i-1]) > 13*time.Microsecond {
			stretched++
		}
	}
	if stretched == 0 {
		t.Error("no arrival gap shows injected jitter")
	}
}

func TestJitterDisabledByDefault(t *testing.T) {
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, b, LinkConfig{Rate: Gbps, Delay: 50 * time.Microsecond,
		Queue: QueueConfig{CapPackets: 10}})
	var at sim.Time
	b.SetHandler(func(*Packet) { at = sched.Now() })
	sched.After(0, func() {
		a.Send(&Packet{Src: a.ID(), Dst: b.ID(), Size: 1500})
	})
	sched.Run()
	if at != sim.At(62*time.Microsecond) {
		t.Errorf("arrival at %v, want deterministic 62µs", at)
	}
}

func TestJitteredTransferStillCompletes(t *testing.T) {
	// End-to-end sanity: heavy jitter (0–500 µs on a 50 µs link) must
	// not break transport correctness.
	sched := sim.NewScheduler()
	net := NewNetwork(sched)
	a := net.AddHost("a")
	sw := net.AddSwitch("sw")
	b := net.AddHost("b")
	link := LinkConfig{Rate: Gbps, Delay: 50 * time.Microsecond,
		Queue: QueueConfig{CapPackets: 200}}
	net.Connect(a, sw, link)
	fwd, _ := net.Connect(sw, b, link)
	fwd.InjectJitter(500*time.Microsecond, sim.NewRand(9))

	delivered := 0
	b.SetHandler(func(*Packet) { delivered++ })
	sched.After(0, func() {
		for i := 0; i < 100; i++ {
			a.Send(&Packet{ID: uint64(i), Src: a.ID(), Dst: b.ID(), Size: 1500})
		}
	})
	sched.Run()
	if delivered != 100 {
		t.Errorf("delivered %d", delivered)
	}
}
