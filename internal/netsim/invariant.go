package netsim

// Simulator invariant checking. The packet pool (pool.go) and the
// fault-injection layer (fault.go) both manipulate packet ownership by
// hand; a missed or doubled release would silently corrupt later
// simulations through the free list. The checker makes three structural
// properties loud:
//
//   - packet conservation: every pooled packet is either in the free list
//     or owned by exactly one pipe (queued, serializing, in flight, or
//     held by a reorder injector) whenever the simulation is between
//     events;
//   - no double release / no use-after-release (inline checks in
//     ReleasePacket and Pipe.Send, gated on sim.InvariantChecks);
//   - queue occupancy within configured bounds.
//
// CheckInvariants is cheap enough to run every simulated millisecond in
// the chaos experiments; violations panic with a per-pipe diagnostic dump.

import (
	"fmt"
	"strings"
	"time"
)

// ownedPooled counts the pooled packets this pipe currently owns.
func (p *Pipe) ownedPooled() int {
	n := 0
	if p.txPkt != nil && p.txPkt.pooled {
		n++
	}
	for _, pkt := range p.inFlight[p.flightHead:] {
		if pkt != nil && pkt.pooled {
			n++
		}
	}
	for _, pkt := range p.pendingFlight[p.pendingHead:] {
		if pkt != nil && pkt.pooled {
			n++
		}
	}
	q := p.queue
	for _, pkt := range q.pkts[q.head:] {
		if pkt != nil && pkt.pooled {
			n++
		}
	}
	for _, pkt := range q.fav[q.favHead:] {
		if pkt != nil && pkt.pooled {
			n++
		}
	}
	if p.faults != nil {
		// On a cut pipe the held ledger splits across shards: the source
		// counts holds, the destination counts consumptions.
		n += p.faults.heldPooled - p.faults.arrivedPooled
	}
	return n
}

// checkBounds verifies the queue's occupancy against its configured
// capacities, returning a non-empty diagnostic on violation.
func (q *Queue) checkBounds() string {
	switch {
	case q.capPackets > 0 && q.Len() > q.capPackets:
		return fmt.Sprintf("queue holds %d packets, cap %d", q.Len(), q.capPackets)
	case q.capBytes > 0 && q.bytes > q.capBytes:
		return fmt.Sprintf("queue holds %d bytes, cap %d", q.bytes, q.capBytes)
	case q.bytes < 0:
		return fmt.Sprintf("queue byte count went negative: %d", q.bytes)
	case q.Len() < 0:
		return fmt.Sprintf("queue length went negative: %d", q.Len())
	}
	return ""
}

// CheckInvariants verifies packet conservation and queue bounds across the
// whole network, panicking with a diagnostic dump on violation. It must be
// called between simulation events (e.g. from its own scheduled event, or
// after the scheduler drained) — mid-event, a packet may legitimately be
// in transit between owners on the call stack.
func (n *Network) CheckInvariants() {
	// The scheduler's own structural walk (wheel slots, bitmaps, overflow
	// heap, live accounting) rides along: a corrupted timer structure
	// would surface as misdelivered packets long after the actual fault.
	// Under sharding every shard's wheel gets the walk, not just shard 0's.
	if g := n.group; g != nil {
		for i := 0; i < g.NumShards(); i++ {
			g.Shard(i).CheckAccounting()
		}
	} else {
		n.sched.CheckAccounting()
	}
	owned := 0
	var violations []string
	for _, pipes := range n.out {
		for _, p := range pipes {
			owned += p.ownedPooled()
			if msg := p.queue.checkBounds(); msg != "" {
				violations = append(violations,
					fmt.Sprintf("pipe %s->%s: %s", p.from.Name(), p.to.Name(), msg))
			}
		}
	}
	if live := n.LivePackets(); owned != live {
		violations = append(violations, fmt.Sprintf(
			"packet conservation: %d pooled packets outstanding but %d owned by pipes (leak or stolen reference of %d)",
			live, owned, live-owned))
	}
	if len(violations) == 0 {
		return
	}
	panic("netsim: invariant violation at " + n.sched.Now().String() + ":\n  " +
		strings.Join(violations, "\n  ") + "\n" + n.dumpState())
}

// dumpState renders the per-pipe ownership picture for invariant panics.
func (n *Network) dumpState() string {
	var b strings.Builder
	free := 0
	for i := range n.pools {
		free += len(n.pools[i].free)
	}
	fmt.Fprintf(&b, "network state: live=%d free=%d pool=%+v stats=%+v\n",
		n.LivePackets(), free, n.PoolStats(), n.Stats())
	for _, pipes := range n.out {
		for _, p := range pipes {
			tx := 0
			if p.txPkt != nil {
				tx = 1
			}
			held := 0
			down := false
			if p.faults != nil {
				held = p.faults.held
				down = p.faults.down
			}
			fmt.Fprintf(&b,
				"  pipe %s->%s: queued=%d inflight=%d tx=%d held=%d down=%v aqm=%s stats=%+v qstats=%+v\n",
				p.from.Name(), p.to.Name(), p.queue.Len(),
				len(p.inFlight)-p.flightHead, tx, held, down,
				p.queue.disc.Name(), p.stats, p.queue.stats)
		}
	}
	return b.String()
}

// ScheduleInvariantChecks runs CheckInvariants every simulated interval
// for as long as other events remain pending; the chaos experiments use
// it to keep the fault layer honest throughout a run, not just at the
// end.
func (n *Network) ScheduleInvariantChecks(every time.Duration) {
	if every <= 0 {
		every = time.Millisecond
	}
	if g := n.group; g != nil {
		// Conservation is only meaningful with every shard halted at the
		// same instant, so the tick rides the group's sync-point machinery.
		// The rearm condition reads the group-wide event count — the same
		// value the unsharded tick sees in its scheduler.
		var tick func()
		tick = func() {
			n.CheckInvariants()
			if g.Len() > 0 {
				g.SyncAfter(n.sched, every, tick)
			}
		}
		g.SyncAfter(n.sched, every, tick)
		return
	}
	var tick func()
	tick = func() {
		n.CheckInvariants()
		if n.sched.Len() > 0 {
			n.sched.After(every, tick)
		}
	}
	n.sched.After(every, tick)
}
