package httpapp

import (
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
)

// rpcStar wires bidirectional connections between the front-end and every
// sender: requests flow front-end → server, responses back.
func rpcStar(t *testing.T, n int) (*sim.Scheduler, []*RPC, *Collector) {
	t.Helper()
	sched := sim.NewScheduler()
	star := topology.NewStar(sched, n, topology.DefaultStarLink(100))
	feStack := tcp.NewStack(star.Net, star.FrontEnd)
	out := &Collector{}
	var rpcs []*RPC
	for i, h := range star.Senders {
		srvStack := tcp.NewStack(star.Net, h)
		req, err := tcp.NewConn(tcp.Config{
			Sender: feStack, Receiver: srvStack,
			Flow:   netsim.FlowID(1000 + i),
			MinRTO: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := tcp.NewConn(tcp.Config{
			Sender: srvStack, Receiver: feStack,
			Flow:   netsim.FlowID(2000 + i),
			MinRTO: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		rpcs = append(rpcs, NewRPC(sched, req, resp, "srv", out))
	}
	return sched, rpcs, out
}

func TestRPCCallRoundTrip(t *testing.T) {
	sched, rpcs, out := rpcStar(t, 1)
	if err := rpcs[0].Call(sim.At(time.Millisecond), 400, 20*tcp.DefaultMSS, 100*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.At(time.Second))
	rs := out.Responses()
	if len(rs) != 1 {
		t.Fatalf("responses = %d", len(rs))
	}
	ct := rs[0].CompletionTime()
	// Must include request RTT + think + response transfer: well above
	// a bare one-way response, well below a timeout.
	if ct < 500*time.Microsecond || ct > 10*time.Millisecond {
		t.Errorf("round-trip = %v", ct)
	}
	if out.Pending() != 0 {
		t.Errorf("pending = %d", out.Pending())
	}
}

func TestRPCRejectsBadSizes(t *testing.T) {
	sched, rpcs, _ := rpcStar(t, 1)
	_ = sched
	if err := rpcs[0].Call(0, 0, 100, 0); err == nil {
		t.Error("zero request size should error")
	}
	if err := rpcs[0].Call(0, 100, -1, 0); err == nil {
		t.Error("negative response size should error")
	}
}

func TestScatterGatherBarrier(t *testing.T) {
	sched, rpcs, out := rpcStar(t, 8)
	sg := NewScatterGather(sched, rpcs, out)
	var barrier time.Duration
	err := sg.Scatter(sim.At(time.Millisecond), 400, 30*tcp.DefaultMSS,
		100*time.Microsecond, func(d time.Duration) { barrier = d })
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.At(2 * time.Second))

	rs := out.Responses()
	if len(rs) != 8 {
		t.Fatalf("responses = %d, want 8", len(rs))
	}
	if barrier == 0 {
		t.Fatal("barrier callback never fired")
	}
	// The barrier equals the slowest worker's completion.
	var worst time.Duration
	for _, r := range rs {
		if ct := r.CompletionTime(); ct > worst {
			worst = ct
		}
	}
	if barrier < worst {
		t.Errorf("barrier %v below slowest worker %v", barrier, worst)
	}
	// 8×30 segments through one 1 Gbps link: at least the serialization
	// floor.
	if barrier < 2*time.Millisecond {
		t.Errorf("barrier %v implausibly fast", barrier)
	}
}

func TestScatterGatherEmptyWorkers(t *testing.T) {
	sched := sim.NewScheduler()
	sg := NewScatterGather(sched, nil, &Collector{})
	if err := sg.Scatter(0, 100, 100, 0, nil); err == nil {
		t.Error("scatter over zero workers should error")
	}
}
