// Package httpapp models the paper's HTTP workload layer: persistent TCP
// connections from back-end servers to a front-end, carrying scheduled
// response packet trains (the ON/OFF pattern of Section II.A), plus the
// collector that records per-response completion times for the
// experiments' ACT/ARCT metrics.
package httpapp

import (
	"fmt"
	"time"

	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/workload"
)

// Response records the lifecycle of one HTTP response (packet train).
type Response struct {
	// Label identifies the sending server / connection group.
	Label string
	// Bytes is the response payload size.
	Bytes int
	// Released / Completed bracket the sender-observed transfer.
	Released  sim.Time
	Completed sim.Time
}

// CompletionTime is the sender-observed response completion time.
func (r Response) CompletionTime() time.Duration {
	return r.Completed.Sub(r.Released)
}

// Collector accumulates completed responses across servers. Under a
// sharded network every server reports into its own shard's bucket, so
// completion callbacks running in parallel window segments never share
// memory; Responses merges the buckets back into global completion
// order. The zero value is ready to use.
type Collector struct {
	buckets []collBucket
	merged  []Response
	tap     func(Response)
}

// Tap registers fn to observe every completion as it is recorded — the
// live-streaming hook the experiment service uses to watch a fleet's
// progress while the run is still simulating. One tap per collector;
// set it before the simulation starts (like bucket growth, only
// single-threaded phases may install it). fn runs on whichever shard
// goroutine records the completion, so it must be safe for concurrent
// invocation and must never touch simulation state.
func (c *Collector) Tap(fn func(Response)) { c.tap = fn }

// collBucket is one shard's private slice of the collector. scheduled
// and completed are kept separately (incremented on possibly different
// shards for RPC chains) so Pending never needs a shared counter.
type collBucket struct {
	responses []Response
	scheduled int
	completed int
}

// bucket returns shard sh's bucket, growing the table as needed. Only
// single-threaded phases (experiment setup, sync events) may grow it;
// parallel completion callbacks index into pre-existing buckets.
func (c *Collector) bucket(sh int) *collBucket {
	for len(c.buckets) <= sh {
		c.buckets = append(c.buckets, collBucket{})
	}
	return &c.buckets[sh]
}

// Add records a completed response into the default (shard 0) bucket.
// Callers on other shards must go through a Server, which records into
// its own shard's bucket.
func (c *Collector) Add(label string, bytes int, res tcp.TrainResult) {
	c.notify(c.bucket(0).add(label, bytes, res))
}

// notify forwards a just-recorded response to the tap, if one is set.
func (c *Collector) notify(r Response) {
	if c.tap != nil {
		c.tap(r)
	}
}

// Reserve pre-grows the bucket table through shard sh without recording
// anything, so later parallel-segment Record calls only index. Like all
// bucket growth it is legal only in single-threaded phases.
func (c *Collector) Reserve(sh int) { c.bucket(sh) }

// NoteScheduled counts one scheduled-but-not-yet-completed response on
// shard sh, growing the bucket table as needed — callable only from
// single-threaded phases (setup, sync events). Record reports the
// completion. The hybrid fleet uses this pair directly because its
// releases are not bound to a Server.
func (c *Collector) NoteScheduled(sh int) {
	c.bucket(sh).scheduled++
}

// Record reports a completed response on shard sh, previously announced
// by NoteScheduled. Unlike NoteScheduled it may run inside a parallel
// window segment: it indexes the pre-grown bucket table and touches only
// shard sh's bucket.
func (c *Collector) Record(sh int, label string, bytes int, res tcp.TrainResult) {
	b := &c.buckets[sh]
	b.completed++
	c.notify(b.add(label, bytes, res))
}

func (b *collBucket) add(label string, bytes int, res tcp.TrainResult) Response {
	r := Response{
		Label:     label,
		Bytes:     bytes,
		Released:  res.Released,
		Completed: res.Completed,
	}
	b.responses = append(b.responses, r)
	return r
}

// Responses returns all completed responses in completion order (shared
// slice; callers must not mutate it). Per-bucket slices are already in
// completion order — callbacks fire at their completion instants — so a
// k-way merge on Completed (ties broken by shard index) reconstructs the
// global order the unsharded simulation would have appended in.
func (c *Collector) Responses() []Response {
	total := 0
	for i := range c.buckets {
		total += len(c.buckets[i].responses)
	}
	if len(c.merged) == total {
		return c.merged
	}
	if len(c.buckets) == 1 {
		c.merged = c.buckets[0].responses
		return c.merged
	}
	idx := make([]int, len(c.buckets))
	merged := make([]Response, 0, total)
	for len(merged) < total {
		best := -1
		for i := range c.buckets {
			if idx[i] >= len(c.buckets[i].responses) {
				continue
			}
			if best < 0 || c.buckets[i].responses[idx[i]].Completed <
				c.buckets[best].responses[idx[best]].Completed {
				best = i
			}
		}
		merged = append(merged, c.buckets[best].responses[idx[best]])
		idx[best]++
	}
	c.merged = merged
	return merged
}

// Pending returns the number of scheduled responses not yet completed.
// Under sharding it is exact only between events of a quiescent group —
// experiment watch loops read it from sync events, where every shard has
// halted at the same instant.
func (c *Collector) Pending() int {
	n := 0
	for i := range c.buckets {
		n += c.buckets[i].scheduled - c.buckets[i].completed
	}
	return n
}

// CompletionTimes returns the distribution of completion times, filtered
// by filter (nil keeps everything).
func (c *Collector) CompletionTimes(filter func(Response) bool) *metrics.Distribution {
	var d metrics.Distribution
	for _, r := range c.Responses() {
		if filter == nil || filter(r) {
			d.AddDuration(r.CompletionTime())
		}
	}
	return &d
}

// ByLabel returns a filter matching one label.
func ByLabel(label string) func(Response) bool {
	return func(r Response) bool { return r.Label == label }
}

// BySizeRange returns a filter keeping responses with lo ≤ Bytes ≤ hi
// (the Fig. 13 "64 KB to 256 KB" sample selection).
func BySizeRange(lo, hi int) func(Response) bool {
	return func(r Response) bool { return r.Bytes >= lo && r.Bytes <= hi }
}

// Server drives one persistent connection: responses scheduled on it are
// appended to the connection's byte stream at their release times.
type Server struct {
	sched     *sim.Scheduler
	conn      *tcp.Conn
	label     string
	collector *Collector
	shard     int
}

// NewServer wraps conn; completions are reported to collector under
// label. sched must be the scheduler owning the connection's sender
// (conn.Scheduler()) so releases and completion records stay on the
// sender's shard. Creating a server pre-grows the collector's bucket
// table, which must only happen in single-threaded phases — construct
// all servers before running the group.
func NewServer(sched *sim.Scheduler, conn *tcp.Conn, label string, collector *Collector) *Server {
	s := &Server{sched: sched, conn: conn, label: label, collector: collector,
		shard: sched.ShardIndex()}
	collector.bucket(s.shard)
	return s
}

// Conn returns the underlying connection.
func (s *Server) Conn() *tcp.Conn { return s.conn }

// Label returns the server's collector label.
func (s *Server) Label() string { return s.label }

// ScheduleResponse releases a response of the given size at the given
// instant.
func (s *Server) ScheduleResponse(at sim.Time, bytes int) error {
	s.collector.bucket(s.shard).scheduled++
	_, err := s.sched.At(at, func() {
		s.conn.SendTrain(bytes, func(res tcp.TrainResult) {
			// Resolve the bucket at completion time: the table may have
			// grown between scheduling and completion (it never grows once
			// the run starts).
			b := &s.collector.buckets[s.shard]
			b.completed++
			s.collector.notify(b.add(s.label, bytes, res))
		})
	})
	if err != nil {
		s.collector.bucket(s.shard).scheduled--
		return fmt.Errorf("schedule response at %v: %w", at, err)
	}
	return nil
}

// ScheduleTrains releases a whole workload schedule.
func (s *Server) ScheduleTrains(trains []workload.Train) error {
	for _, tr := range trains {
		if err := s.ScheduleResponse(tr.At, tr.Bytes); err != nil {
			return err
		}
	}
	return nil
}

// StartBackgroundFlow releases an effectively endless train at the given
// instant: the paper's "LPTs running throughout the test". Its completion
// is not reported to the collector; measure it by throughput instead.
func (s *Server) StartBackgroundFlow(at sim.Time, bytes int) error {
	_, err := s.sched.At(at, func() { s.conn.SendTrain(bytes, nil) })
	if err != nil {
		return fmt.Errorf("schedule background flow at %v: %w", at, err)
	}
	return nil
}

// StartChunkedFlow keeps the connection busy from start to stop by
// feeding fixed-size chunks with two always outstanding (double
// buffering, so the send buffer never drains and no ON/OFF gap appears).
// Used for the convergence test's long flows that must stop at a given
// instant. Completions are not reported to the collector.
func (s *Server) StartChunkedFlow(start, stop sim.Time, chunkBytes int) error {
	var refill func(tcp.TrainResult)
	refill = func(tcp.TrainResult) {
		if s.sched.Now() >= stop {
			return
		}
		s.conn.SendTrain(chunkBytes, refill)
	}
	_, err := s.sched.At(start, func() {
		s.conn.SendTrain(chunkBytes, refill)
		s.conn.SendTrain(chunkBytes, refill)
	})
	if err != nil {
		return fmt.Errorf("schedule chunked flow at %v: %w", start, err)
	}
	return nil
}

// Fleet wires a group of sender hosts to a single front-end with one
// persistent connection each, a common base configuration, and a fresh
// congestion-control policy per connection.
type Fleet struct {
	Servers   []*Server
	Conns     []*tcp.Conn
	Collector *Collector
	frontEnd  *tcp.Stack
}

// FleetConfig configures NewFleet.
type FleetConfig struct {
	// Senders are the back-end hosts; FrontEnd receives every response.
	Senders  []*netsim.Host
	FrontEnd *netsim.Host
	// ConnsPerSender opens that many persistent connections per sender
	// host (sharing one transport stack each); 0 means 1, the historical
	// one-connection-per-server shape. Flow ids and labels number
	// globally across hosts.
	ConnsPerSender int
	// NewCC creates the per-connection window policy (nil → Reno).
	NewCC func() tcp.CongestionControl
	// NewRecovery creates the per-connection loss-recovery policy (nil →
	// the Base config's policy, i.e. Classic when Base leaves it unset).
	NewRecovery func() tcp.RecoveryPolicy
	// Base provides shared tcp.Config fields (MinRTO, ECN, LinkRate,
	// windows); Sender/Receiver/Flow/CC are filled per connection.
	Base tcp.Config
	// FirstFlow is the first flow id to assign (sequential after it).
	FirstFlow netsim.FlowID
	// LabelPrefix labels servers "<prefix><index+1>" (default "server").
	LabelPrefix string
}

// NewFleet builds one persistent connection per sender.
func NewFleet(net *netsim.Network, cfg FleetConfig) (*Fleet, error) {
	if cfg.FrontEnd == nil {
		return nil, fmt.Errorf("httpapp: front end required")
	}
	if cfg.LabelPrefix == "" {
		cfg.LabelPrefix = "server"
	}
	if cfg.FirstFlow == 0 {
		cfg.FirstFlow = 1
	}
	f := &Fleet{
		Collector: &Collector{},
		frontEnd:  tcp.NewStack(net, cfg.FrontEnd),
	}
	per := cfg.ConnsPerSender
	if per <= 0 {
		per = 1
	}
	i := 0
	for _, h := range cfg.Senders {
		stack := tcp.NewStack(net, h)
		for k := 0; k < per; k++ {
			c := cfg.Base
			c.Sender = stack
			c.Receiver = f.frontEnd
			c.Flow = cfg.FirstFlow + netsim.FlowID(i)
			if cfg.NewCC != nil {
				c.CC = cfg.NewCC()
			}
			if cfg.NewRecovery != nil {
				c.Recovery = cfg.NewRecovery()
			}
			conn, err := tcp.NewConn(c)
			if err != nil {
				return nil, fmt.Errorf("fleet conn %d: %w", i, err)
			}
			f.Conns = append(f.Conns, conn)
			label := fmt.Sprintf("%s%d", cfg.LabelPrefix, i+1)
			f.Servers = append(f.Servers, NewServer(conn.Scheduler(), conn, label, f.Collector))
			i++
		}
	}
	return f, nil
}

// FrontEndStack returns the shared receiver stack (for wiring additional
// connections to the same front-end).
func (f *Fleet) FrontEndStack() *tcp.Stack { return f.frontEnd }

// TotalTimeouts sums TCP timeouts across the fleet's connections.
func (f *Fleet) TotalTimeouts() int {
	total := 0
	for _, c := range f.Conns {
		total += c.Stats().Timeouts
	}
	return total
}

// TotalDelivered sums receiver-side delivered bytes across connections.
func (f *Fleet) TotalDelivered() int64 {
	var total int64
	for _, c := range f.Conns {
		total += c.DeliveredBytes()
	}
	return total
}

// RetransBreakdown splits a fleet's retransmissions by what triggered
// them — the paper's core claim is that concurrent trains push recovery
// from fast retransmit into RTO stalls, and this is where that shift is
// measured. Timeout+Fast+Probes == Total; Spurious counts receiver-side
// duplicates (segments retransmitted although the original arrived) and
// Signals counts switch recovery signals consumed (T-RACKs).
type RetransBreakdown struct {
	Total    int
	Timeout  int
	Fast     int
	Probes   int
	Spurious int
	Signals  int
}

// Retransmissions sums the per-trigger retransmission breakdown across
// the fleet's connections.
func (f *Fleet) Retransmissions() RetransBreakdown {
	var b RetransBreakdown
	for _, c := range f.Conns {
		st := c.Stats()
		b.Total += st.RetransSegs
		b.Timeout += st.RTORetransSegs
		b.Fast += st.FastRetransSegs
		b.Probes += st.TLPProbes
		b.Spurious += st.SpuriousRetransSegs
		b.Signals += st.RecoverySignals
	}
	return b
}
