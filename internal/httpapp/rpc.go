package httpapp

import (
	"fmt"
	"time"

	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// RPC couples a request connection (front-end → back-end) with a response
// connection (back-end → front-end) over the same persistent pair: the
// paper's request/response multiplexing, with the response released only
// when the request actually arrives (plus a server think time) rather
// than at a pre-scheduled instant. The user-perceived latency spans from
// request release to response completion.
//
// The request/response chain hops between the two endpoints' schedulers
// through plain closures, so RPC traffic requires both endpoints on the
// same shard (or an unsharded network); it records into the collector's
// default bucket.
type RPC struct {
	sched    *sim.Scheduler
	request  *tcp.Conn // front-end → server
	response *tcp.Conn // server → front-end
	label    string
	out      *Collector
}

// NewRPC wires an RPC endpoint pair. request must carry data toward the
// server host and response back to the front-end.
func NewRPC(sched *sim.Scheduler, request, response *tcp.Conn, label string, out *Collector) *RPC {
	return &RPC{sched: sched, request: request, response: response, label: label, out: out}
}

// Call issues a request of reqBytes at the given instant; once the
// request is fully acknowledged (a sender-side proxy for "delivered and
// parsed"), the server thinks for think and then sends respBytes back.
// The recorded completion spans the whole exchange.
func (r *RPC) Call(at sim.Time, reqBytes, respBytes int, think time.Duration) error {
	if reqBytes <= 0 || respBytes <= 0 {
		return fmt.Errorf("httpapp: rpc sizes must be positive (req %d, resp %d)", reqBytes, respBytes)
	}
	r.out.bucket(0).scheduled++
	_, err := r.sched.At(at, func() {
		issued := r.sched.Now()
		r.request.SendTrain(reqBytes, func(tcp.TrainResult) {
			r.sched.After(think, func() {
				r.response.SendTrain(respBytes, func(res tcp.TrainResult) {
					b := r.out.bucket(0)
					b.completed++
					b.add(r.label, respBytes, tcp.TrainResult{
						Released:  issued,
						Completed: res.Completed,
						Bytes:     respBytes,
					})
				})
			})
		})
	})
	if err != nil {
		r.out.bucket(0).scheduled--
		return fmt.Errorf("schedule rpc at %v: %w", at, err)
	}
	return nil
}

// ScatterGather is the paper's partition/aggregation pattern: one
// front-end fans a request out to every back-end worker and waits for all
// responses — the aggregation barrier whose latency is governed by the
// slowest worker (and thus by incast behaviour at the front-end's link).
type ScatterGather struct {
	sched   *sim.Scheduler
	workers []*RPC
	out     *Collector
}

// NewScatterGather groups worker RPCs that share a front-end.
func NewScatterGather(sched *sim.Scheduler, workers []*RPC, out *Collector) *ScatterGather {
	return &ScatterGather{sched: sched, workers: workers, out: out}
}

// Scatter issues the request to every worker at the given instant; done
// (if non-nil) receives the barrier latency — issue to last response —
// when the final worker answers.
func (s *ScatterGather) Scatter(at sim.Time, reqBytes, respBytes int, think time.Duration, done func(time.Duration)) error {
	remaining := len(s.workers)
	if remaining == 0 {
		return fmt.Errorf("httpapp: scatter over zero workers")
	}
	barrier := &Collector{}
	for i, w := range s.workers {
		// Track per-worker completion privately; the shared collector
		// still records individual responses through the worker's own
		// collector.
		probe := NewRPC(s.sched, w.request, w.response, fmt.Sprintf("worker%d", i+1), barrier)
		if err := probe.Call(at, reqBytes, respBytes, think); err != nil {
			return err
		}
	}
	var watch func()
	watch = func() {
		if barrier.Pending() > 0 {
			s.sched.After(100*time.Microsecond, watch)
			return
		}
		var last sim.Time
		for _, r := range barrier.Responses() {
			if r.Completed > last {
				last = r.Completed
			}
		}
		for _, r := range barrier.Responses() {
			s.out.Add(r.Label, r.Bytes, tcp.TrainResult{
				Released: r.Released, Completed: r.Completed, Bytes: r.Bytes,
			})
		}
		if done != nil {
			done(last.Sub(at))
		}
	}
	if _, err := s.sched.At(at, watch); err != nil {
		return fmt.Errorf("schedule scatter at %v: %w", at, err)
	}
	return nil
}
