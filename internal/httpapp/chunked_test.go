package httpapp

import (
	"testing"
	"time"

	"tcptrim/internal/core"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
)

// newTrimStar builds a 1-sender star whose fleet runs TCP-TRIM.
func newTrimStar(t *testing.T, sched *sim.Scheduler) (*topology.Star, *Fleet) {
	t.Helper()
	star := topology.NewStar(sched, 1, topology.DefaultStarLink(100))
	fleet, err := NewFleet(star.Net, FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC:    func() tcp.CongestionControl { return core.New(core.Config{}) },
		Base:     tcp.Config{LinkRate: netsim.Gbps},
	})
	if err != nil {
		t.Fatal(err)
	}
	return star, fleet
}

func TestChunkedFlowRunsBetweenStartAndStop(t *testing.T) {
	_, fleet, sched := newStarFleet(t, 1, tcp.Config{})
	start := sim.At(100 * time.Millisecond)
	stop := sim.At(300 * time.Millisecond)
	if err := fleet.Servers[0].StartChunkedFlow(start, stop, 64<<10); err != nil {
		t.Fatal(err)
	}
	conn := fleet.Conns[0]

	sched.RunUntil(sim.At(50 * time.Millisecond))
	if conn.DeliveredBytes() != 0 {
		t.Fatal("flow started early")
	}
	sched.RunUntil(sim.At(200 * time.Millisecond))
	mid := conn.DeliveredBytes()
	if mid == 0 {
		t.Fatal("flow not running mid-window")
	}
	sched.RunUntil(sim.At(2 * time.Second))
	final := conn.DeliveredBytes()
	if final <= mid {
		t.Error("flow did not progress through the window")
	}
	// After stop, at most the two outstanding chunks drain.
	if final > mid+int64(3*(64<<10))+(200*125000) {
		t.Errorf("flow kept sending after stop: %d vs %d", final, mid)
	}
	// Roughly: ~200 ms at ~1 Gbps payload ≈ 24 MB; require at least half
	// (the flow must actually keep the pipe busy, not trickle).
	if final < 12<<20 {
		t.Errorf("delivered only %d bytes in 200 ms of 1 Gbps", final)
	}
}

func TestChunkedFlowDoesNotTriggerTrimProbes(t *testing.T) {
	// Double buffering must keep the send buffer non-empty so TRIM sees
	// no inter-train gaps mid-flow (no ON/OFF artifacts at chunk
	// boundaries).
	sched := sim.NewScheduler()
	star, fleet := newTrimStar(t, sched)
	_ = star
	if err := fleet.Servers[0].StartChunkedFlow(
		sim.At(100*time.Millisecond), sim.At(600*time.Millisecond), 128<<10); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.At(700 * time.Millisecond))
	trim, ok := fleet.Conns[0].CC().(probeCounter)
	if !ok {
		t.Fatal("policy does not expose probe rounds")
	}
	if got := trim.ProbeRounds(); got > 1 {
		t.Errorf("probe rounds = %d; chunk boundaries must not look like gaps", got)
	}
}

type probeCounter interface{ ProbeRounds() int }
