package httpapp

import (
	"math/rand"
	"testing"
	"time"

	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
	"tcptrim/internal/workload"
)

func newStarFleet(t *testing.T, n int, base tcp.Config) (*topology.Star, *Fleet, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler()
	star := topology.NewStar(sched, n, topology.DefaultStarLink(100))
	fleet, err := NewFleet(star.Net, FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		Base:     base,
	})
	if err != nil {
		t.Fatal(err)
	}
	return star, fleet, sched
}

func TestFleetBuildsOneConnPerSender(t *testing.T) {
	_, fleet, _ := newStarFleet(t, 5, tcp.Config{})
	if len(fleet.Conns) != 5 || len(fleet.Servers) != 5 {
		t.Fatalf("fleet size: %d conns, %d servers", len(fleet.Conns), len(fleet.Servers))
	}
	if fleet.Servers[0].Label() != "server1" || fleet.Servers[4].Label() != "server5" {
		t.Errorf("labels: %q .. %q", fleet.Servers[0].Label(), fleet.Servers[4].Label())
	}
}

func TestScheduledResponsesComplete(t *testing.T) {
	_, fleet, sched := newStarFleet(t, 3, tcp.Config{})
	for i, srv := range fleet.Servers {
		for k := 0; k < 4; k++ {
			at := sim.At(time.Duration(10+i+5*k) * time.Millisecond)
			if err := srv.ScheduleResponse(at, 8*tcp.DefaultMSS); err != nil {
				t.Fatal(err)
			}
		}
	}
	if fleet.Collector.Pending() != 12 {
		t.Fatalf("pending = %d", fleet.Collector.Pending())
	}
	sched.RunUntil(sim.At(time.Second))
	if fleet.Collector.Pending() != 0 {
		t.Fatalf("still pending: %d", fleet.Collector.Pending())
	}
	rs := fleet.Collector.Responses()
	if len(rs) != 12 {
		t.Fatalf("responses = %d", len(rs))
	}
	for _, r := range rs {
		if ct := r.CompletionTime(); ct <= 0 || ct > 100*time.Millisecond {
			t.Errorf("completion time %v for %s", ct, r.Label)
		}
	}
}

func TestCollectorFilters(t *testing.T) {
	var c Collector
	c.Add("a", 1000, tcp.TrainResult{Released: 0, Completed: sim.At(time.Millisecond)})
	c.Add("b", 200_000, tcp.TrainResult{Released: 0, Completed: sim.At(2 * time.Millisecond)})
	c.Add("a", 70_000, tcp.TrainResult{Released: 0, Completed: sim.At(3 * time.Millisecond)})

	if got := c.CompletionTimes(nil).Count(); got != 3 {
		t.Errorf("unfiltered = %d", got)
	}
	if got := c.CompletionTimes(ByLabel("a")).Count(); got != 2 {
		t.Errorf("label a = %d", got)
	}
	if got := c.CompletionTimes(BySizeRange(64<<10, 256<<10)).Count(); got != 2 {
		t.Errorf("size range = %d", got)
	}
	mean := c.CompletionTimes(ByLabel("a")).Mean()
	if mean != 0.002 {
		t.Errorf("mean = %v, want 2ms", mean)
	}
}

func TestScheduleTrainsFromWorkload(t *testing.T) {
	_, fleet, sched := newStarFleet(t, 1, tcp.Config{})
	rng := rand.New(rand.NewSource(9))
	trains := workload.ScheduleCount(rng, sim.At(time.Millisecond), 50,
		workload.UniformSize{Min: 2048, Max: 10240},
		workload.ExponentialGap{Mean: time.Millisecond})
	if err := fleet.Servers[0].ScheduleTrains(trains); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.At(time.Second))
	if got := len(fleet.Collector.Responses()); got != 50 {
		t.Fatalf("responses = %d", got)
	}
}

func TestBackgroundFlowDelivers(t *testing.T) {
	_, fleet, sched := newStarFleet(t, 2, tcp.Config{})
	if err := fleet.Servers[0].StartBackgroundFlow(sim.At(time.Millisecond), 1<<30); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.At(100 * time.Millisecond))
	if fleet.Conns[0].DeliveredBytes() == 0 {
		t.Error("background flow delivered nothing")
	}
	if len(fleet.Collector.Responses()) != 0 {
		t.Error("background flow must not report to the collector")
	}
}

func TestFleetAggregates(t *testing.T) {
	_, fleet, sched := newStarFleet(t, 3, tcp.Config{})
	for _, srv := range fleet.Servers {
		if err := srv.ScheduleResponse(sim.At(time.Millisecond), 10*tcp.DefaultMSS); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(sim.At(time.Second))
	if got := fleet.TotalDelivered(); got != 3*10*tcp.DefaultMSS {
		t.Errorf("TotalDelivered = %d", got)
	}
	if fleet.TotalTimeouts() != 0 {
		t.Errorf("TotalTimeouts = %d", fleet.TotalTimeouts())
	}
}

func TestFleetRequiresFrontEnd(t *testing.T) {
	sched := sim.NewScheduler()
	star := topology.NewStar(sched, 1, topology.DefaultStarLink(100))
	if _, err := NewFleet(star.Net, FleetConfig{Senders: star.Senders}); err == nil {
		t.Error("missing front end must error")
	}
}
