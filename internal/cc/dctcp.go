// Package cc implements the congestion-control variants the paper
// compares against: DCTCP (SIGCOMM'10), L2DCT (INFOCOM'13), CUBIC (the
// Linux default in the testbed experiments), and GIP (ICNP'13, the
// restart-each-unit-at-minimum-window baseline for the window-inheritance
// ablation). The baseline Reno lives in package tcp as the default policy.
package cc

import (
	"tcptrim/internal/netsim"
	"tcptrim/internal/tcp"
)

// DCTCP defaults from Alizadeh et al.: estimation gain g = 1/16. The
// marking threshold K lives in the switch queue configuration, not here.
const (
	DefaultDCTCPGain = 1.0 / 16
)

// DCTCP implements Data Center TCP: the receiver path echoes CE marks
// per packet (our receiver ACKs every packet, so the echo is exact), and
// the sender maintains an EWMA α of the marked fraction, cutting the
// window by α/2 at most once per window of data.
//
// Connections running DCTCP must set tcp.Config.ECN and the bottleneck
// queues must enable an ECN threshold; otherwise DCTCP degenerates to
// Reno.
type DCTCP struct {
	ctl  tcp.Control
	gain float64

	alpha      float64
	ackedSegs  int
	markedSegs int
	windowEnd  int64
	ceInWindow bool
	mss        int
}

var _ tcp.CongestionControl = (*DCTCP)(nil)

// NewDCTCP returns a DCTCP policy with the standard gain.
func NewDCTCP() *DCTCP { return &DCTCP{gain: DefaultDCTCPGain} }

// Name implements tcp.CongestionControl.
func (d *DCTCP) Name() string { return "DCTCP" }

// Attach implements tcp.CongestionControl.
func (d *DCTCP) Attach(ctl tcp.Control) {
	d.ctl = ctl
	d.mss = ctl.WirePacketSize() - netsim.HeaderSize
}

// Alpha returns the current marked-fraction estimate.
func (d *DCTCP) Alpha() float64 { return d.alpha }

// BeforeSend implements tcp.CongestionControl.
func (d *DCTCP) BeforeSend() {}

// OnSent implements tcp.CongestionControl.
func (d *DCTCP) OnSent(tcp.SendEvent) bool { return false }

// OnAck implements tcp.CongestionControl.
func (d *DCTCP) OnAck(ev tcp.AckEvent) {
	tcp.GrowReno(d.ctl, ev)

	d.ackedSegs += ev.AckedSegs
	if ev.ECE {
		d.markedSegs += ev.AckedSegs
		d.ceInWindow = true
	}
	if ev.Ack < d.windowEnd {
		return
	}
	// One observation window of data has been acknowledged: fold the
	// marked fraction F into α and apply the once-per-window cut.
	if d.ackedSegs > 0 {
		f := float64(d.markedSegs) / float64(d.ackedSegs)
		d.alpha = (1-d.gain)*d.alpha + d.gain*f
	}
	if d.ceInWindow {
		cut := d.ctl.Cwnd() * (1 - d.alpha/2)
		d.ctl.SetCwnd(cut)
		d.ctl.SetSsthresh(cut)
	}
	d.ackedSegs, d.markedSegs, d.ceInWindow = 0, 0, false
	d.windowEnd = ev.Ack + int64(d.ctl.Cwnd()*float64(d.mss))
}

// OnDupAck implements tcp.CongestionControl.
func (d *DCTCP) OnDupAck() {}

// SsthreshAfterLoss implements tcp.CongestionControl: on real loss DCTCP
// behaves exactly like Reno.
func (d *DCTCP) SsthreshAfterLoss() float64 { return tcp.HalfWindow(d.ctl) }

// OnTimeout implements tcp.CongestionControl: α is preserved across
// timeouts (per the DCTCP paper).
func (d *DCTCP) OnTimeout() {}
