package cc

import (
	"math"

	"tcptrim/internal/netsim"
	"tcptrim/internal/tcp"
)

// L2DCT weighting constants, following the INFOCOM'13 paper's published
// range: the per-RTT additive-increase weight w_c shrinks from WMax for
// fresh (short, so far) flows to WMin for flows that have already sent a
// lot — Least Attained Service emulation on top of DCTCP's ECN estimator.
const (
	L2DCTWMax = 2.5
	L2DCTWMin = 0.125
	// l2dctSmallBytes / l2dctLargeBytes delimit the size band over which
	// the weight decays (log-linear). Flows below the small bound get
	// the full weight; above the large bound the minimum.
	l2dctSmallBytes = 100 << 10 // 100 KiB
	l2dctLargeBytes = 10 << 20  // 10 MiB
)

// L2DCT implements the L2DCT sender: DCTCP's marked-fraction estimator α,
// with flow-size-aware growth (cwnd += w_c per RTT in congestion
// avoidance) and back-off (cwnd ×= 1 − α·b/2, where the penalty b grows
// as the flow's attained service grows). Short flows therefore grab
// bandwidth quickly and yield little; long flows yield more, emulating
// LAS scheduling without switch support beyond ECN.
//
// The exact constants of the original NS2 implementation are not public;
// the weight band [WMin, WMax] is the paper's, and the log-linear decay
// between 100 KiB and 10 MiB is our documented interpolation (see
// DESIGN.md).
type L2DCT struct {
	ctl  tcp.Control
	gain float64

	alpha      float64
	ackedSegs  int
	markedSegs int
	windowEnd  int64
	ceInWindow bool
	mss        int

	sentBytes int64
}

var _ tcp.CongestionControl = (*L2DCT)(nil)

// NewL2DCT returns an L2DCT policy with the standard DCTCP gain.
func NewL2DCT() *L2DCT { return &L2DCT{gain: DefaultDCTCPGain} }

// Name implements tcp.CongestionControl.
func (l *L2DCT) Name() string { return "L2DCT" }

// Attach implements tcp.CongestionControl.
func (l *L2DCT) Attach(ctl tcp.Control) {
	l.ctl = ctl
	l.mss = ctl.WirePacketSize() - netsim.HeaderSize
}

// Weight returns the current LAS weight w_c for the flow.
func (l *L2DCT) Weight() float64 {
	if l.sentBytes <= l2dctSmallBytes {
		return L2DCTWMax
	}
	if l.sentBytes >= l2dctLargeBytes {
		return L2DCTWMin
	}
	// Log-linear decay between the two bounds.
	frac := math.Log(float64(l.sentBytes)/float64(l2dctSmallBytes)) /
		math.Log(float64(l2dctLargeBytes)/float64(l2dctSmallBytes))
	return L2DCTWMax - frac*(L2DCTWMax-L2DCTWMin)
}

// Alpha returns the marked-fraction estimate.
func (l *L2DCT) Alpha() float64 { return l.alpha }

// BeforeSend implements tcp.CongestionControl.
func (l *L2DCT) BeforeSend() {}

// OnSent implements tcp.CongestionControl: attained service accounting.
func (l *L2DCT) OnSent(ev tcp.SendEvent) bool {
	if !ev.Retransmit {
		l.sentBytes += ev.EndSeq - ev.Seq
	}
	return false
}

// OnAck implements tcp.CongestionControl.
func (l *L2DCT) OnAck(ev tcp.AckEvent) {
	w := l.Weight()
	if !ev.InRecovery {
		cwnd := l.ctl.Cwnd()
		if cwnd < l.ctl.Ssthresh() {
			// Slow start is unchanged.
			l.ctl.SetCwnd(cwnd + float64(ev.AckedSegs))
		} else {
			// Weighted congestion avoidance: +w_c per RTT.
			l.ctl.SetCwnd(cwnd + w*float64(ev.AckedSegs)/cwnd)
		}
	}

	l.ackedSegs += ev.AckedSegs
	if ev.ECE {
		l.markedSegs += ev.AckedSegs
		l.ceInWindow = true
	}
	if ev.Ack < l.windowEnd {
		return
	}
	if l.ackedSegs > 0 {
		f := float64(l.markedSegs) / float64(l.ackedSegs)
		l.alpha = (1-l.gain)*l.alpha + l.gain*f
	}
	if l.ceInWindow {
		// Penalty b ∈ (0,1]: long flows (small w) back off almost the
		// full DCTCP α/2; short flows back off more gently.
		b := 1 - (w-L2DCTWMin)/(L2DCTWMax-L2DCTWMin)*(1-L2DCTWMin/L2DCTWMax)
		cut := l.ctl.Cwnd() * (1 - l.alpha*b/2)
		l.ctl.SetCwnd(cut)
		l.ctl.SetSsthresh(cut)
	}
	l.ackedSegs, l.markedSegs, l.ceInWindow = 0, 0, false
	l.windowEnd = ev.Ack + int64(l.ctl.Cwnd()*float64(l.mss))
}

// OnDupAck implements tcp.CongestionControl.
func (l *L2DCT) OnDupAck() {}

// SsthreshAfterLoss implements tcp.CongestionControl.
func (l *L2DCT) SsthreshAfterLoss() float64 { return tcp.HalfWindow(l.ctl) }

// OnTimeout implements tcp.CongestionControl.
func (l *L2DCT) OnTimeout() {}
