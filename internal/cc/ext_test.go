package cc

import (
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// --- D2TCP ---------------------------------------------------------------

func TestD2TCPWithoutDeadlineMatchesDCTCP(t *testing.T) {
	runPolicy := func(p tcp.CongestionControl) float64 {
		ctl := newFakeCtl()
		ctl.ssthresh = 1
		p.Attach(ctl)
		var ack int64
		for i := 0; i < 500; i++ {
			ack += 1460
			ece := i%3 == 0
			p.OnAck(ackSegs(1, ece, ack))
		}
		return ctl.cwnd
	}
	dctcp := runPolicy(NewDCTCP())
	d2 := runPolicy(NewD2TCP(0, 0)) // no deadline → urgency 1
	if dctcp != d2 {
		t.Errorf("deadline-less D2TCP cwnd %v != DCTCP %v", d2, dctcp)
	}
}

func TestD2TCPUrgencyBounds(t *testing.T) {
	ctl := newFakeCtl()
	d := NewD2TCP(sim.At(10*time.Millisecond), 1<<20)
	d.Attach(ctl)
	if got := d.Urgency(); got != 1 {
		t.Errorf("urgency before start = %v, want neutral 1", got)
	}
	d.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
	// Advance close to the deadline with almost nothing acked: maximal
	// urgency, clamped at 2.
	ctl.sched.After(9*time.Millisecond, func() {})
	ctl.sched.Run()
	d.OnAck(tcp.AckEvent{Ack: 1460, AckedBytes: 1460, AckedSegs: 1, RTT: 100 * time.Microsecond})
	if got := d.Urgency(); got != D2TCPMaxUrgency {
		t.Errorf("urgency near deadline = %v, want clamp at %v", got, D2TCPMaxUrgency)
	}
}

func TestD2TCPFarDeadlineLowUrgency(t *testing.T) {
	ctl := newFakeCtl()
	// Huge deadline, tiny flow: urgency clamps at the minimum.
	d := NewD2TCP(sim.At(time.Hour), 10*1460)
	d.Attach(ctl)
	d.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
	ctl.sched.After(time.Millisecond, func() {})
	ctl.sched.Run()
	d.OnAck(tcp.AckEvent{Ack: 1460, AckedBytes: 1460, AckedSegs: 1, RTT: 100 * time.Microsecond})
	if got := d.Urgency(); got != D2TCPMinUrgency {
		t.Errorf("urgency with an hour to spare = %v, want clamp at %v", got, D2TCPMinUrgency)
	}
}

func TestD2TCPNearDeadlineCutsLess(t *testing.T) {
	// With equal alpha, a near-deadline flow (urgency 2) must retain
	// more window after a marked round than a far-deadline one
	// (urgency 0.5): p = α^d shrinks as d grows for α < 1.
	cut := func(deadline sim.Time) float64 {
		ctl := newFakeCtl()
		ctl.ssthresh = 1
		d := NewD2TCP(deadline, 100<<20)
		d.Attach(ctl)
		d.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
		// Prime alpha to ≈0.5 with alternating marks.
		var ack int64
		for i := 0; i < 400; i++ {
			ack += 1460
			d.OnAck(ackSegs(1, i%2 == 0, ack))
		}
		// Advance the clock so attained-rate history exists.
		ctl.sched.After(10*time.Millisecond, func() {})
		ctl.sched.Run()
		ctl.cwnd = 100
		before := ctl.cwnd
		for i := 0; i < 300 && ctl.cwnd >= before; i++ {
			ack += 1460
			d.OnAck(ackSegs(1, true, ack))
			if ctl.cwnd > before {
				before = ctl.cwnd
			}
		}
		return ctl.cwnd / before
	}
	near := cut(sim.At(11 * time.Millisecond)) // already basically due
	far := cut(sim.At(time.Hour))
	if near <= far {
		t.Errorf("near-deadline keep-ratio %v should exceed far-deadline %v", near, far)
	}
}

// --- Vegas ---------------------------------------------------------------

func TestVegasTracksBaseRTT(t *testing.T) {
	ctl := newFakeCtl()
	v := NewVegas()
	v.Attach(ctl)
	v.OnAck(tcp.AckEvent{Ack: 1460, AckedSegs: 1, RTT: 500 * time.Microsecond})
	v.OnAck(tcp.AckEvent{Ack: 2920, AckedSegs: 1, RTT: 300 * time.Microsecond})
	v.OnAck(tcp.AckEvent{Ack: 4380, AckedSegs: 1, RTT: 900 * time.Microsecond})
	if v.BaseRTT() != 300*time.Microsecond {
		t.Errorf("BaseRTT = %v", v.BaseRTT())
	}
}

func TestVegasBacklogRule(t *testing.T) {
	step := func(rtt time.Duration, cwnd float64) float64 {
		ctl := newFakeCtl()
		ctl.ssthresh = 1 // CA
		ctl.cwnd = cwnd
		v := NewVegas()
		v.Attach(ctl)
		v.baseRTT = 200 * time.Microsecond
		v.OnAck(tcp.AckEvent{Ack: 1460, AckedSegs: 1, RTT: rtt})
		return ctl.cwnd
	}
	// diff = cwnd(RTT-base)/RTT. cwnd=10, RTT=210µs: diff ≈ 0.48 < α →
	// +1.
	if got := step(210*time.Microsecond, 10); got != 11 {
		t.Errorf("low backlog: cwnd = %v, want 11", got)
	}
	// RTT=300µs: diff = 10×100/300 ≈ 3.3 in [α, β] → hold.
	if got := step(300*time.Microsecond, 10); got != 10 {
		t.Errorf("in-band backlog: cwnd = %v, want 10", got)
	}
	// RTT=400µs: diff = 10×200/400 = 5 > β → −1.
	if got := step(400*time.Microsecond, 10); got != 9 {
		t.Errorf("high backlog: cwnd = %v, want 9", got)
	}
}

func TestVegasOneAdjustmentPerRTT(t *testing.T) {
	ctl := newFakeCtl()
	ctl.ssthresh = 1
	ctl.cwnd = 10
	v := NewVegas()
	v.Attach(ctl)
	v.baseRTT = 200 * time.Microsecond
	// Two low-backlog ACKs at the same instant: only one +1.
	v.OnAck(tcp.AckEvent{Ack: 1460, AckedSegs: 1, RTT: 210 * time.Microsecond})
	v.OnAck(tcp.AckEvent{Ack: 2920, AckedSegs: 1, RTT: 210 * time.Microsecond})
	if ctl.cwnd != 11 {
		t.Errorf("cwnd = %v, want a single per-RTT adjustment", ctl.cwnd)
	}
}

func TestVegasIntegrationKeepsQueueShort(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.NewNetwork(sched)
	link := netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 100},
	}
	hs := net.AddHost("s")
	sw := net.AddSwitch("sw")
	hr := net.AddHost("r")
	net.Connect(hs, sw, link)
	upPipe, _ := net.Connect(sw, hr, link)
	up := upPipe.Queue()
	conn, err := tcp.NewConn(tcp.Config{
		Sender:   tcp.NewStack(net, hs),
		Receiver: tcp.NewStack(net, hr),
		Flow:     1,
		CC:       NewVegas(),
		MinRTO:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn.SendTrain(50_000*tcp.DefaultMSS, nil)
	maxQ := 0
	var probeTick func()
	probeTick = func() {
		if l := up.Len(); l > maxQ {
			maxQ = l
		}
		if sched.Now() < sim.At(400*time.Millisecond) {
			sched.After(time.Millisecond, probeTick)
		}
	}
	sched.After(50*time.Millisecond, probeTick)
	sched.RunUntil(sim.At(500 * time.Millisecond))

	if conn.Stats().Timeouts != 0 {
		t.Errorf("Vegas timeouts = %d", conn.Stats().Timeouts)
	}
	// Backlog bounded by β plus slack.
	if maxQ > 10 {
		t.Errorf("Vegas steady queue = %d packets, want ≈β", maxQ)
	}
	// And the link should still be nearly full.
	gbps := float64(conn.DeliveredBytes()) * 8 / 0.5 / 1e9
	if gbps < 0.85 {
		t.Errorf("Vegas goodput = %.3f Gbps", gbps)
	}
}
