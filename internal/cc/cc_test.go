package cc

import (
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// fakeCtl mirrors the minimal Control used in core's tests.
type fakeCtl struct {
	sched    *sim.Scheduler
	cwnd     float64
	ssthresh float64
	minCwnd  float64
	flight   int
	srtt     time.Duration
	susp     bool
	bonus    int
	gap      time.Duration
	hasSent  bool
	rate     netsim.Bitrate
}

var _ tcp.Control = (*fakeCtl)(nil)

func newFakeCtl() *fakeCtl {
	return &fakeCtl{sched: sim.NewScheduler(), cwnd: 10, ssthresh: 1 << 30, minCwnd: 2}
}

func (f *fakeCtl) Now() sim.Time { return f.sched.Now() }
func (f *fakeCtl) After(d time.Duration, fn func()) sim.Timer {
	return f.sched.After(d, fn)
}
func (f *fakeCtl) Cwnd() float64 { return f.cwnd }
func (f *fakeCtl) SetCwnd(w float64) {
	if w < f.minCwnd {
		w = f.minCwnd
	}
	f.cwnd = w
}
func (f *fakeCtl) Ssthresh() float64                    { return f.ssthresh }
func (f *fakeCtl) SetSsthresh(w float64)                { f.ssthresh = w }
func (f *fakeCtl) MinCwnd() float64                     { return f.minCwnd }
func (f *fakeCtl) FlightSegs() int                      { return f.flight }
func (f *fakeCtl) SRTT() time.Duration                  { return f.srtt }
func (f *fakeCtl) SinceLastSend() (time.Duration, bool) { return f.gap, f.hasSent }
func (f *fakeCtl) Suspend()                             { f.susp = true }
func (f *fakeCtl) Resume()                              { f.susp = false }
func (f *fakeCtl) AllowBeyondWindow(n int)              { f.bonus = n }
func (f *fakeCtl) LinkRate() netsim.Bitrate             { return f.rate }
func (f *fakeCtl) WirePacketSize() int                  { return 1500 }

func ackSegs(n int, ece bool, ack int64) tcp.AckEvent {
	return tcp.AckEvent{Ack: ack, AckedBytes: int64(n) * 1460, AckedSegs: n, RTT: 100 * time.Microsecond, ECE: ece}
}

// --- DCTCP ---------------------------------------------------------------

func TestDCTCPAlphaConvergesToMarkRate(t *testing.T) {
	ctl := newFakeCtl()
	ctl.ssthresh = 1 // CA, growth negligible
	d := NewDCTCP()
	d.Attach(ctl)

	// All ACKs marked: α should converge toward 1.
	var ack int64
	for i := 0; i < 300; i++ {
		ack += 1460
		d.OnAck(ackSegs(1, true, ack))
	}
	if d.Alpha() < 0.8 {
		t.Errorf("alpha = %v after sustained marking, want → 1", d.Alpha())
	}

	// Then no marks: α decays toward 0.
	for i := 0; i < 600; i++ {
		ack += 1460
		d.OnAck(ackSegs(1, false, ack))
	}
	if d.Alpha() > 0.2 {
		t.Errorf("alpha = %v after mark-free period, want → 0", d.Alpha())
	}
}

func TestDCTCPGentleCutScalesWithAlpha(t *testing.T) {
	ctl := newFakeCtl()
	ctl.ssthresh = 1
	d := NewDCTCP()
	d.Attach(ctl)

	// Prime α to ~1 with fully marked windows.
	var ack int64
	for i := 0; i < 400; i++ {
		ack += 1460
		d.OnAck(ackSegs(1, true, ack))
	}
	// With α≈1 one marked window cuts the window by at most half (the
	// DCTCP worst case = Reno). Feed ACKs until the first cut after
	// inflating cwnd and verify its depth is a single (1−α/2) factor.
	ctl.cwnd = 100
	before := ctl.cwnd
	for i := 0; i < 300 && ctl.cwnd >= before; i++ {
		ack += 1460
		d.OnAck(ackSegs(1, true, ack))
		if ctl.cwnd > before {
			before = ctl.cwnd // CA growth before the boundary
		}
	}
	if ctl.cwnd >= before {
		t.Fatal("no cut happened despite sustained marking")
	}
	ratio := ctl.cwnd / before
	if ratio < 0.45 || ratio > 0.75 {
		t.Errorf("single-window cut ratio = %v, want ≈ 1−α/2 with α≈1", ratio)
	}
}

func TestDCTCPNoECENoCut(t *testing.T) {
	ctl := newFakeCtl()
	ctl.ssthresh = 1
	d := NewDCTCP()
	d.Attach(ctl)
	ctl.cwnd = 50
	var ack int64
	for i := 0; i < 200; i++ {
		ack += 1460
		d.OnAck(ackSegs(1, false, ack))
	}
	if ctl.cwnd < 50 {
		t.Errorf("cwnd shrank without any ECE: %v", ctl.cwnd)
	}
}

func TestDCTCPLossFallsBackToReno(t *testing.T) {
	ctl := newFakeCtl()
	d := NewDCTCP()
	d.Attach(ctl)
	ctl.flight = 40
	if got := d.SsthreshAfterLoss(); got != 20 {
		t.Errorf("SsthreshAfterLoss = %v, want flight/2", got)
	}
}

// --- L2DCT ---------------------------------------------------------------

func TestL2DCTWeightDecaysWithAttainedService(t *testing.T) {
	ctl := newFakeCtl()
	l := NewL2DCT()
	l.Attach(ctl)
	if w := l.Weight(); w != L2DCTWMax {
		t.Errorf("fresh flow weight = %v, want max", w)
	}
	l.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1 << 20}) // 1 MiB sent
	mid := l.Weight()
	if mid >= L2DCTWMax || mid <= L2DCTWMin {
		t.Errorf("1MiB flow weight = %v, want strictly between bounds", mid)
	}
	l.OnSent(tcp.SendEvent{Seq: 1 << 20, EndSeq: 64 << 20})
	if w := l.Weight(); w != L2DCTWMin {
		t.Errorf("64MiB flow weight = %v, want min", w)
	}
}

func TestL2DCTRetransmitNotCountedAsService(t *testing.T) {
	ctl := newFakeCtl()
	l := NewL2DCT()
	l.Attach(ctl)
	l.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1 << 20, Retransmit: true})
	if w := l.Weight(); w != L2DCTWMax {
		t.Errorf("retransmissions changed the weight: %v", w)
	}
}

func TestL2DCTShortFlowGrowsFasterThanLong(t *testing.T) {
	grow := func(sent int64) float64 {
		ctl := newFakeCtl()
		ctl.ssthresh = 1 // CA
		ctl.cwnd = 10
		l := NewL2DCT()
		l.Attach(ctl)
		l.sentBytes = sent
		var ack int64
		for i := 0; i < 100; i++ {
			ack += 1460
			l.OnAck(ackSegs(1, false, ack))
		}
		return ctl.cwnd
	}
	short := grow(0)
	long := grow(64 << 20)
	if short <= long {
		t.Errorf("short-flow growth %v should exceed long-flow growth %v", short, long)
	}
}

func TestL2DCTLongFlowBacksOffHarder(t *testing.T) {
	cut := func(sent int64) float64 {
		ctl := newFakeCtl()
		ctl.ssthresh = 1
		l := NewL2DCT()
		l.Attach(ctl)
		l.sentBytes = sent
		// Prime alpha high.
		var ack int64
		for i := 0; i < 400; i++ {
			ack += 1460
			l.OnAck(ackSegs(1, true, ack))
		}
		ctl.cwnd = 100
		before := ctl.cwnd
		for i := 0; i < 120; i++ {
			ack += 1460
			l.OnAck(ackSegs(1, true, ack))
		}
		return ctl.cwnd / before
	}
	shortRatio := cut(0)
	longRatio := cut(64 << 20)
	if longRatio >= shortRatio {
		t.Errorf("long flows must back off harder: short keeps %v, long keeps %v",
			shortRatio, longRatio)
	}
}

// --- CUBIC ---------------------------------------------------------------

func TestCubicBetaBackoff(t *testing.T) {
	ctl := newFakeCtl()
	c := NewCubic()
	c.Attach(ctl)
	ctl.cwnd = 100
	if got := c.SsthreshAfterLoss(); got != 70 {
		t.Errorf("SsthreshAfterLoss = %v, want 100×0.7", got)
	}
}

func TestCubicGrowsTowardWMax(t *testing.T) {
	ctl := newFakeCtl()
	c := NewCubic()
	c.Attach(ctl)
	ctl.cwnd = 100
	ctl.ssthresh = 1 << 30
	_ = c.SsthreshAfterLoss() // wMax=100, epoch reset
	ctl.cwnd = 70
	ctl.ssthresh = 70 // in CA

	// Feed ACKs while advancing virtual time. With wMax=100 and
	// cwnd=70, K = ∛((100−70)/0.4) ≈ 4.2 s; after ~4.5 s the curve
	// should have recovered to ≈ wMax.
	var ack int64
	mid := 0.0
	for step := 0; step < 9000; step++ {
		ctl.sched.After(500*time.Microsecond, func() {})
		ctl.sched.Run()
		ack += 1460
		c.OnAck(tcp.AckEvent{Ack: ack, AckedSegs: 1, RTT: 500 * time.Microsecond})
		if step == 2000 {
			mid = ctl.cwnd
		}
	}
	if mid < 80 || mid > 100 {
		t.Errorf("cwnd = %v at 1s, want concave progress toward wMax", mid)
	}
	if ctl.cwnd < 95 {
		t.Errorf("cwnd = %v after ~4.5s, want ≈ wMax=100", ctl.cwnd)
	}
}

func TestCubicSlowStartUnchanged(t *testing.T) {
	ctl := newFakeCtl()
	c := NewCubic()
	c.Attach(ctl)
	ctl.cwnd, ctl.ssthresh = 2, 64
	c.OnAck(tcp.AckEvent{Ack: 1460, AckedSegs: 1, RTT: 100 * time.Microsecond})
	if ctl.cwnd != 3 {
		t.Errorf("slow start growth = %v, want +1/ack", ctl.cwnd)
	}
}

// --- GIP -----------------------------------------------------------------

func TestGIPResetsWindowOnGap(t *testing.T) {
	ctl := newFakeCtl()
	g := NewGIP()
	g.Attach(ctl)
	ctl.cwnd = 500
	ctl.srtt = 200 * time.Microsecond
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	g.BeforeSend()
	if ctl.cwnd != 2 {
		t.Errorf("cwnd = %v after gap, want unconditional restart at 2", ctl.cwnd)
	}
	if ctl.ssthresh != 250 {
		t.Errorf("ssthresh = %v, want half the old window", ctl.ssthresh)
	}
	if g.Resets() != 1 {
		t.Errorf("Resets = %d", g.Resets())
	}
}

func TestGIPIgnoresShortGap(t *testing.T) {
	ctl := newFakeCtl()
	g := NewGIP()
	g.Attach(ctl)
	ctl.cwnd = 500
	ctl.srtt = 200 * time.Microsecond
	ctl.hasSent, ctl.gap = true, 100*time.Microsecond
	g.BeforeSend()
	if ctl.cwnd != 500 {
		t.Errorf("cwnd = %v, short gap must not reset", ctl.cwnd)
	}
}

// --- Integration: DCTCP keeps the queue near K ---------------------------

func TestDCTCPIntegrationBoundsQueue(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.NewNetwork(sched)
	link := netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 200, ECNThresholdPackets: 20},
	}
	hs := net.AddHost("s")
	sw := net.AddSwitch("sw")
	hr := net.AddHost("r")
	net.Connect(hs, sw, link)
	up, _ := net.Connect(sw, hr, link)
	conn, err := tcp.NewConn(tcp.Config{
		Sender:   tcp.NewStack(net, hs),
		Receiver: tcp.NewStack(net, hr),
		Flow:     1,
		CC:       NewDCTCP(),
		ECN:      true,
		MinRTO:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn.SendTrain(50_000*tcp.DefaultMSS, nil)

	// Sample the bottleneck queue after convergence.
	maxLen := 0
	for at := 100 * time.Millisecond; at <= 500*time.Millisecond; at += time.Millisecond {
		at := at
		if _, err := sched.At(sim.At(at), func() {
			if l := up.Queue().Len(); l > maxLen {
				maxLen = l
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(sim.At(500 * time.Millisecond))

	if drops := up.Queue().Stats().Dropped; drops != 0 {
		t.Errorf("DCTCP dropped %d packets with a 200-deep queue", drops)
	}
	if maxLen > 60 {
		t.Errorf("queue peaked at %d, want bounded near the K=20 threshold", maxLen)
	}
	if conn.Stats().Timeouts != 0 {
		t.Errorf("timeouts = %d", conn.Stats().Timeouts)
	}
	// Goodput should still be near line rate.
	gbps := float64(conn.DeliveredBytes()) * 8 / 0.5 / 1e9
	if gbps < 0.85 {
		t.Errorf("goodput = %.3f Gbps, want near line rate", gbps)
	}
}
