package cc

import (
	"math"
	"math/rand"
	"testing"

	"tcptrim/internal/netsim"
	"tcptrim/internal/tcp"
)

// Naive-transcription oracles for the comparison policies, in the same
// spirit as internal/conformance: each model re-derives the published
// update rule independently of the implementation under test and is run
// in lockstep over randomized ACK streams, compared exactly. A drive-by
// edit that changes the estimator gain, the once-per-window gating, or
// the weight band fails here with the step at which the trajectories
// part.

// naiveDCTCP transcribes Alizadeh et al. (SIGCOMM'10 §3.3): per window
// of data, α ← (1−g)·α + g·F with g = 1/16, and — only if any ACK in
// the window echoed CE — a single cut w ← w·(1−α/2). Growth is plain
// Reno; real loss is untouched.
type naiveDCTCP struct {
	gain           float64
	alpha          float64
	cwnd, ssthresh float64
	acked, marked  int
	windowEnd      int64
	ce             bool
	mss            int
}

func (n *naiveDCTCP) setCwnd(w float64) {
	// fakeCtl's clamp, replicated so the replicas share arithmetic.
	if w < 2 {
		w = 2
	}
	if w > 1<<30 {
		w = 1 << 30
	}
	n.cwnd = w
}

func (n *naiveDCTCP) onAck(ev tcp.AckEvent) {
	if !ev.InRecovery {
		if n.cwnd < n.ssthresh {
			n.setCwnd(n.cwnd + float64(ev.AckedSegs))
		} else {
			n.setCwnd(n.cwnd + float64(ev.AckedSegs)/n.cwnd)
		}
	}
	n.acked += ev.AckedSegs
	if ev.ECE {
		n.marked += ev.AckedSegs
		n.ce = true
	}
	if ev.Ack < n.windowEnd {
		return
	}
	if n.acked > 0 {
		f := float64(n.marked) / float64(n.acked)
		n.alpha = (1-n.gain)*n.alpha + n.gain*f
	}
	if n.ce {
		cut := n.cwnd * (1 - n.alpha/2)
		n.setCwnd(cut)
		n.ssthresh = cut
	}
	n.acked, n.marked, n.ce = 0, 0, false
	n.windowEnd = ev.Ack + int64(n.cwnd*float64(n.mss))
}

func TestDCTCPMatchesNaiveTranscription(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ctl := newFakeCtl()
		ctl.ssthresh = float64(rng.Intn(40) + 2) // mix slow start and CA
		d := NewDCTCP()
		d.Attach(ctl)

		n := &naiveDCTCP{
			gain:     DefaultDCTCPGain,
			cwnd:     ctl.cwnd,
			ssthresh: ctl.ssthresh,
			mss:      1500 - netsim.HeaderSize,
		}
		mss := int64(n.mss)
		var ack int64
		for i := 0; i < 500; i++ {
			segs := rng.Intn(4) + 1
			ece := rng.Float64() < 0.3
			ack += int64(segs) * mss
			ev := tcp.AckEvent{Ack: ack, AckedBytes: int64(segs) * mss, AckedSegs: segs, ECE: ece}
			d.OnAck(ev)
			n.onAck(ev)
			if n.cwnd != ctl.cwnd || n.alpha != d.Alpha() {
				t.Fatalf("seed %d step %d: live (cwnd=%v α=%v) != naive (cwnd=%v α=%v)",
					seed, i, ctl.cwnd, d.Alpha(), n.cwnd, n.alpha)
			}
		}
	}
}

func TestDCTCPAlphaStaysInUnitInterval(t *testing.T) {
	// α is an EWMA of fractions in [0,1]; no mark pattern may push it
	// outside the unit interval.
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ctl := newFakeCtl()
		d := NewDCTCP()
		d.Attach(ctl)
		var ack int64
		for i := 0; i < 1000; i++ {
			segs := rng.Intn(8) + 1
			ack += int64(segs) * 1460
			d.OnAck(ackSegs(segs, rng.Intn(2) == 0, ack))
			if a := d.Alpha(); a < 0 || a > 1 {
				t.Fatalf("seed %d step %d: alpha = %v outside [0,1]", seed, i, a)
			}
		}
	}
}

// naiveL2DCTWeight transcribes the documented weight rule: the paper's
// band [WMin, WMax] with the repo's log-linear decay between 100 KiB
// and 10 MiB of attained service (DESIGN.md).
func naiveL2DCTWeight(sentBytes int64) float64 {
	const small, large = 100 << 10, 10 << 20
	if sentBytes <= small {
		return L2DCTWMax
	}
	if sentBytes >= large {
		return L2DCTWMin
	}
	frac := math.Log(float64(sentBytes)/float64(small)) / math.Log(float64(large)/float64(small))
	return L2DCTWMax - frac*(L2DCTWMax-L2DCTWMin)
}

// naiveL2DCT layers the weight rule over the DCTCP estimator: growth
// +w_c per RTT in congestion avoidance, back-off ×(1 − α·b/2) with the
// penalty b sliding from WMin/WMax (freshest flow) to 1 (longest).
type naiveL2DCT struct {
	naiveDCTCP
	sentBytes int64
}

func (n *naiveL2DCT) onSent(ev tcp.SendEvent) {
	if !ev.Retransmit {
		n.sentBytes += ev.EndSeq - ev.Seq
	}
}

func (n *naiveL2DCT) onAck(ev tcp.AckEvent) {
	w := naiveL2DCTWeight(n.sentBytes)
	if !ev.InRecovery {
		if n.cwnd < n.ssthresh {
			n.setCwnd(n.cwnd + float64(ev.AckedSegs))
		} else {
			n.setCwnd(n.cwnd + w*float64(ev.AckedSegs)/n.cwnd)
		}
	}
	n.acked += ev.AckedSegs
	if ev.ECE {
		n.marked += ev.AckedSegs
		n.ce = true
	}
	if ev.Ack < n.windowEnd {
		return
	}
	if n.acked > 0 {
		f := float64(n.marked) / float64(n.acked)
		n.alpha = (1-n.gain)*n.alpha + n.gain*f
	}
	if n.ce {
		b := 1 - (w-L2DCTWMin)/(L2DCTWMax-L2DCTWMin)*(1-L2DCTWMin/L2DCTWMax)
		cut := n.cwnd * (1 - n.alpha*b/2)
		n.setCwnd(cut)
		n.ssthresh = cut
	}
	n.acked, n.marked, n.ce = 0, 0, false
	n.windowEnd = ev.Ack + int64(n.cwnd*float64(n.mss))
}

func TestL2DCTMatchesNaiveTranscription(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ctl := newFakeCtl()
		ctl.ssthresh = float64(rng.Intn(40) + 2)
		l := NewL2DCT()
		l.Attach(ctl)

		n := &naiveL2DCT{naiveDCTCP: naiveDCTCP{
			gain:     DefaultDCTCPGain,
			cwnd:     ctl.cwnd,
			ssthresh: ctl.ssthresh,
			mss:      1500 - netsim.HeaderSize,
		}}
		mss := int64(n.mss)
		var ack, sent int64
		for i := 0; i < 500; i++ {
			segs := rng.Intn(4) + 1
			// Attained service advances before the ACK, crossing the
			// weight band's 100 KiB bound early in every run.
			sendEv := tcp.SendEvent{Seq: sent, EndSeq: sent + int64(segs)*mss}
			sent += int64(segs) * mss
			l.OnSent(sendEv)
			n.onSent(sendEv)

			ece := rng.Float64() < 0.3
			ack += int64(segs) * mss
			ev := tcp.AckEvent{Ack: ack, AckedBytes: int64(segs) * mss, AckedSegs: segs, ECE: ece}
			l.OnAck(ev)
			n.onAck(ev)
			if n.cwnd != ctl.cwnd || n.alpha != l.Alpha() {
				t.Fatalf("seed %d step %d (service=%d): live (cwnd=%v α=%v w=%v) != naive (cwnd=%v α=%v w=%v)",
					seed, i, sent, ctl.cwnd, l.Alpha(), l.Weight(), n.cwnd, n.alpha, naiveL2DCTWeight(n.sentBytes))
			}
		}
	}
}

func TestL2DCTWeightStaysInPublishedBand(t *testing.T) {
	// The INFOCOM'13 band [0.125, 2.5] must hold at every service level,
	// and the weight must never increase as service accumulates.
	l := NewL2DCT()
	l.Attach(newFakeCtl())
	prev := l.Weight()
	if prev != L2DCTWMax {
		t.Fatalf("fresh-flow weight = %v, want WMax = %v", prev, L2DCTWMax)
	}
	for sent := int64(0); sent < 20<<20; sent += 64 << 10 {
		l.OnSent(tcp.SendEvent{Seq: sent, EndSeq: sent + 64<<10})
		w := l.Weight()
		if w < L2DCTWMin || w > L2DCTWMax {
			t.Fatalf("weight = %v outside [%v, %v] at %d bytes", w, L2DCTWMin, L2DCTWMax, sent)
		}
		if w > prev {
			t.Fatalf("weight increased %v → %v at %d bytes", prev, w, sent)
		}
		prev = w
	}
	if prev != L2DCTWMin {
		t.Errorf("long-flow weight = %v, want WMin = %v", prev, L2DCTWMin)
	}
}
