package cc

import (
	"math"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// D2TCP deadline-urgency bounds from Vamanan et al. (SIGCOMM'12): the
// urgency exponent d is clamped to [0.5, 2].
const (
	D2TCPMinUrgency = 0.5
	D2TCPMaxUrgency = 2.0
)

// D2TCP implements Deadline-Aware Datacenter TCP, an extension the paper
// discusses in related work: DCTCP's ECN machinery with a deadline-aware
// penalty. On a marked window the back-off is cwnd × (1 − p/2) with
// p = α^d, where the urgency d compares the time the flow still needs
// (at its current rate) against the time its deadline leaves: far-deadline
// flows (d < 1) back off harder and release bandwidth to near-deadline
// flows (d > 1), which back off more gently.
//
// A D2TCP policy is created per flow with its deadline and expected size;
// flows without a deadline behave exactly like DCTCP (d = 1).
type D2TCP struct {
	ctl  tcp.Control
	gain float64

	alpha      float64
	ackedSegs  int
	markedSegs int
	windowEnd  int64
	ceInWindow bool
	mss        int

	deadline   sim.Time
	totalBytes int64
	ackedBytes int64
	started    bool
	startAt    sim.Time
}

var _ tcp.CongestionControl = (*D2TCP)(nil)

// NewD2TCP returns a deadline-aware policy for a flow of totalBytes that
// must complete by the given absolute instant. A zero deadline or
// non-positive size disables urgency (pure DCTCP behaviour).
func NewD2TCP(deadline sim.Time, totalBytes int) *D2TCP {
	return &D2TCP{
		gain:       DefaultDCTCPGain,
		deadline:   deadline,
		totalBytes: int64(totalBytes),
	}
}

// Name implements tcp.CongestionControl.
func (d *D2TCP) Name() string { return "D2TCP" }

// Attach implements tcp.CongestionControl.
func (d *D2TCP) Attach(ctl tcp.Control) {
	d.ctl = ctl
	d.mss = ctl.WirePacketSize() - netsim.HeaderSize
}

// Alpha returns the marked-fraction estimate.
func (d *D2TCP) Alpha() float64 { return d.alpha }

// Urgency returns the current deadline-urgency exponent d.
func (d *D2TCP) Urgency() float64 {
	if d.deadline <= 0 || d.totalBytes <= 0 || !d.started {
		return 1
	}
	now := d.ctl.Now()
	remainingBytes := d.totalBytes - d.ackedBytes
	if remainingBytes <= 0 {
		return 1
	}
	timeLeft := d.deadline.Sub(now)
	if timeLeft <= 0 {
		// Deadline already missed: maximum urgency.
		return D2TCPMaxUrgency
	}
	elapsed := now.Sub(d.startAt)
	if elapsed <= 0 || d.ackedBytes == 0 {
		return 1
	}
	// Time still needed at the achieved average rate.
	rate := float64(d.ackedBytes) / elapsed.Seconds() // bytes/s
	needed := time.Duration(float64(remainingBytes) / rate * float64(time.Second))
	u := float64(needed) / float64(timeLeft)
	if u < D2TCPMinUrgency {
		return D2TCPMinUrgency
	}
	if u > D2TCPMaxUrgency {
		return D2TCPMaxUrgency
	}
	return u
}

// BeforeSend implements tcp.CongestionControl.
func (d *D2TCP) BeforeSend() {}

// OnSent implements tcp.CongestionControl.
func (d *D2TCP) OnSent(ev tcp.SendEvent) bool {
	if !d.started && !ev.Retransmit {
		d.started = true
		d.startAt = d.ctl.Now()
	}
	return false
}

// OnAck implements tcp.CongestionControl.
func (d *D2TCP) OnAck(ev tcp.AckEvent) {
	tcp.GrowReno(d.ctl, ev)
	d.ackedBytes += ev.AckedBytes

	d.ackedSegs += ev.AckedSegs
	if ev.ECE {
		d.markedSegs += ev.AckedSegs
		d.ceInWindow = true
	}
	if ev.Ack < d.windowEnd {
		return
	}
	if d.ackedSegs > 0 {
		f := float64(d.markedSegs) / float64(d.ackedSegs)
		d.alpha = (1-d.gain)*d.alpha + d.gain*f
	}
	if d.ceInWindow {
		p := math.Pow(d.alpha, d.Urgency())
		cut := d.ctl.Cwnd() * (1 - p/2)
		d.ctl.SetCwnd(cut)
		d.ctl.SetSsthresh(cut)
	}
	d.ackedSegs, d.markedSegs, d.ceInWindow = 0, 0, false
	d.windowEnd = ev.Ack + int64(d.ctl.Cwnd()*float64(d.mss))
}

// OnDupAck implements tcp.CongestionControl.
func (d *D2TCP) OnDupAck() {}

// SsthreshAfterLoss implements tcp.CongestionControl.
func (d *D2TCP) SsthreshAfterLoss() float64 { return tcp.HalfWindow(d.ctl) }

// OnTimeout implements tcp.CongestionControl.
func (d *D2TCP) OnTimeout() {}
