package cc

import (
	"time"

	"tcptrim/internal/tcp"
)

// Vegas thresholds (Brakmo et al., SIGCOMM'94): keep between alpha and
// beta packets queued at the bottleneck.
const (
	VegasAlpha = 2.0
	VegasBeta  = 4.0
)

// Vegas implements TCP Vegas, the classic delay-based congestion control
// the paper cites as the ancestor of its own queue-control idea. Once per
// RTT the sender compares expected throughput (cwnd/baseRTT) with actual
// throughput (cwnd/RTT); the difference estimates the flow's packets
// queued at the bottleneck, and the window is nudged to keep that backlog
// between alpha and beta. Slow start is left standard, and loss recovery
// is Reno's.
//
// Vegas is included as a related-work reference point: like TCP-TRIM it
// needs no switch support, but it has no answer to the window-inheritance
// problem TRIM targets.
type Vegas struct {
	ctl tcp.Control

	baseRTT    time.Duration
	lastAdjust time.Duration // virtual-time of the last per-RTT adjustment, as sim duration
	haveAdjust bool
}

var _ tcp.CongestionControl = (*Vegas)(nil)

// NewVegas returns a Vegas policy.
func NewVegas() *Vegas { return &Vegas{} }

// Name implements tcp.CongestionControl.
func (v *Vegas) Name() string { return "Vegas" }

// Attach implements tcp.CongestionControl.
func (v *Vegas) Attach(ctl tcp.Control) { v.ctl = ctl }

// BaseRTT returns the observed minimum RTT.
func (v *Vegas) BaseRTT() time.Duration { return v.baseRTT }

// BeforeSend implements tcp.CongestionControl.
func (v *Vegas) BeforeSend() {}

// OnSent implements tcp.CongestionControl.
func (v *Vegas) OnSent(tcp.SendEvent) bool { return false }

// OnAck implements tcp.CongestionControl.
func (v *Vegas) OnAck(ev tcp.AckEvent) {
	if ev.RTT > 0 && (v.baseRTT == 0 || ev.RTT < v.baseRTT) {
		v.baseRTT = ev.RTT
	}
	if ev.InRecovery || ev.RTT <= 0 || v.baseRTT <= 0 {
		return
	}
	cwnd := v.ctl.Cwnd()
	if cwnd < v.ctl.Ssthresh() {
		// Vegas moderates slow start (growth every other RTT in the
		// original); plain doubling is kept for simplicity, the backlog
		// rule below catches up immediately after.
		v.ctl.SetCwnd(cwnd + float64(ev.AckedSegs))
		return
	}
	// One adjustment per RTT.
	now := time.Duration(v.ctl.Now())
	if v.haveAdjust && now-v.lastAdjust < ev.RTT {
		return
	}
	v.lastAdjust, v.haveAdjust = now, true

	// diff = cwnd × (RTT − baseRTT)/RTT packets queued at the bottleneck.
	diff := cwnd * float64(ev.RTT-v.baseRTT) / float64(ev.RTT)
	switch {
	case diff < VegasAlpha:
		v.ctl.SetCwnd(cwnd + 1)
	case diff > VegasBeta:
		v.ctl.SetCwnd(cwnd - 1)
	}
	// Leaving slow start once the backlog rule engages keeps growth
	// linear afterwards.
	v.ctl.SetSsthresh(v.ctl.Cwnd())
}

// OnDupAck implements tcp.CongestionControl.
func (v *Vegas) OnDupAck() {}

// SsthreshAfterLoss implements tcp.CongestionControl.
func (v *Vegas) SsthreshAfterLoss() float64 { return tcp.HalfWindow(v.ctl) }

// OnTimeout implements tcp.CongestionControl.
func (v *Vegas) OnTimeout() {}
