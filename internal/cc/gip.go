package cc

import (
	"time"

	"tcptrim/internal/tcp"
)

// GIP approximates the window-restart scheme of Zhang et al. (ICNP'13,
// reference [13] of the paper): every new stripe unit / packet train
// starts with the minimum congestion window, unconditionally discarding
// the inherited window. The paper argues this is overly conservative when
// the network has spare capacity — GIP is the ablation baseline for
// TCP-TRIM's conditional inheritance.
//
// GIP's second mechanism (redundant retransmission of a unit's last
// packet) is not modeled; it affects tail-loss timeouts, not window
// inheritance, and is documented as a deviation in DESIGN.md.
type GIP struct {
	ctl tcp.Control

	lastResetGap time.Duration
	resets       int
}

var _ tcp.CongestionControl = (*GIP)(nil)

// NewGIP returns a GIP policy.
func NewGIP() *GIP { return &GIP{} }

// Name implements tcp.CongestionControl.
func (g *GIP) Name() string { return "GIP" }

// Attach implements tcp.CongestionControl.
func (g *GIP) Attach(ctl tcp.Control) { g.ctl = ctl }

// Resets returns how many times the window was restarted at a train
// boundary.
func (g *GIP) Resets() int { return g.resets }

// BeforeSend implements tcp.CongestionControl: on an inter-train gap
// (idle longer than the smoothed RTT, same detector as TCP-TRIM), restart
// from the minimum window with slow start.
func (g *GIP) BeforeSend() {
	srtt := g.ctl.SRTT()
	if srtt == 0 {
		return
	}
	gap, sent := g.ctl.SinceLastSend()
	if !sent || gap <= srtt {
		return
	}
	g.resets++
	g.lastResetGap = gap
	// Re-enter slow start toward the old window's midpoint, like a
	// restarted connection.
	half := g.ctl.Cwnd() / 2
	if minW := g.ctl.MinCwnd(); half < minW {
		half = minW
	}
	g.ctl.SetCwnd(g.ctl.MinCwnd())
	g.ctl.SetSsthresh(half)
}

// OnSent implements tcp.CongestionControl.
func (g *GIP) OnSent(tcp.SendEvent) bool { return false }

// OnAck implements tcp.CongestionControl.
func (g *GIP) OnAck(ev tcp.AckEvent) { tcp.GrowReno(g.ctl, ev) }

// OnDupAck implements tcp.CongestionControl.
func (g *GIP) OnDupAck() {}

// SsthreshAfterLoss implements tcp.CongestionControl.
func (g *GIP) SsthreshAfterLoss() float64 { return tcp.HalfWindow(g.ctl) }

// OnTimeout implements tcp.CongestionControl.
func (g *GIP) OnTimeout() {}
