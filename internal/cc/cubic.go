package cc

import (
	"math"

	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// CUBIC constants per RFC 8312: scaling C = 0.4, multiplicative decrease
// β = 0.7.
const (
	CubicC    = 0.4
	CubicBeta = 0.7
)

// Cubic implements CUBIC congestion control (the Linux default, used by
// the paper's testbed baseline in Fig. 13). Window growth in congestion
// avoidance follows W(t) = C·(t−K)³ + Wmax with the TCP-friendly region
// of RFC 8312; slow start is standard.
type Cubic struct {
	ctl tcp.Control

	wMax       float64
	epochStart sim.Time
	inEpoch    bool
	k          float64 // seconds
	originW    float64

	// TCP-friendly estimate state.
	wEst      float64
	ackedSegs float64
}

var _ tcp.CongestionControl = (*Cubic)(nil)

// NewCubic returns a CUBIC policy.
func NewCubic() *Cubic { return &Cubic{} }

// Name implements tcp.CongestionControl.
func (c *Cubic) Name() string { return "CUBIC" }

// Attach implements tcp.CongestionControl.
func (c *Cubic) Attach(ctl tcp.Control) { c.ctl = ctl }

// BeforeSend implements tcp.CongestionControl.
func (c *Cubic) BeforeSend() {}

// OnSent implements tcp.CongestionControl.
func (c *Cubic) OnSent(tcp.SendEvent) bool { return false }

// OnAck implements tcp.CongestionControl.
func (c *Cubic) OnAck(ev tcp.AckEvent) {
	if ev.InRecovery {
		return
	}
	cwnd := c.ctl.Cwnd()
	if cwnd < c.ctl.Ssthresh() {
		c.ctl.SetCwnd(cwnd + float64(ev.AckedSegs))
		return
	}
	if !c.inEpoch {
		c.startEpoch(cwnd)
	}
	t := c.ctl.Now().Sub(c.epochStart).Seconds() + ev.RTT.Seconds()
	target := c.originW + CubicC*math.Pow(t-c.k, 3)

	// TCP-friendly region (simplified RFC 8312 Reno emulation).
	c.ackedSegs += float64(ev.AckedSegs)
	if c.wEst < cwnd {
		c.wEst = cwnd
	}
	c.wEst += 3 * (1 - CubicBeta) / (1 + CubicBeta) * c.ackedSegs / cwnd
	c.ackedSegs = 0
	if target < c.wEst {
		target = c.wEst
	}

	if target > cwnd {
		// Approach the target over roughly one RTT of ACKs.
		c.ctl.SetCwnd(cwnd + (target-cwnd)/cwnd*float64(ev.AckedSegs))
	} else {
		// Slow drift upward in the concave plateau.
		c.ctl.SetCwnd(cwnd + 0.01*float64(ev.AckedSegs)/cwnd)
	}
}

func (c *Cubic) startEpoch(cwnd float64) {
	c.inEpoch = true
	c.epochStart = c.ctl.Now()
	c.originW = cwnd
	if c.wMax > cwnd {
		c.k = math.Cbrt((c.wMax - cwnd) / CubicC)
		c.originW = c.wMax
	} else {
		c.k = 0
	}
	c.wEst = cwnd
}

// OnDupAck implements tcp.CongestionControl.
func (c *Cubic) OnDupAck() {}

// SsthreshAfterLoss implements tcp.CongestionControl: β-scaled window,
// starting a new cubic epoch.
func (c *Cubic) SsthreshAfterLoss() float64 {
	cwnd := c.ctl.Cwnd()
	// Fast convergence (RFC 8312 §4.6).
	if cwnd < c.wMax {
		c.wMax = cwnd * (1 + CubicBeta) / 2
	} else {
		c.wMax = cwnd
	}
	c.inEpoch = false
	target := cwnd * CubicBeta
	if minW := c.ctl.MinCwnd(); target < minW {
		return minW
	}
	return target
}

// OnTimeout implements tcp.CongestionControl: restart the epoch from the
// minimum window.
func (c *Cubic) OnTimeout() {
	c.wMax = c.ctl.Cwnd()
	c.inEpoch = false
}
