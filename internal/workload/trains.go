package workload

import (
	"math/rand"
	"time"

	"tcptrim/internal/sim"
)

// Train is one scheduled packet train (HTTP response) on a connection.
type Train struct {
	At    sim.Time
	Bytes int
}

// Schedule generates the release times and sizes of a connection's trains
// between start and end: each train's size comes from sizes, and the gap
// to the next train from gaps.
func Schedule(rng *rand.Rand, start, end sim.Time, sizes SizeDist, gaps GapDist) []Train {
	var out []Train
	at := start
	for at < end {
		out = append(out, Train{At: at, Bytes: sizes.Sample(rng)})
		gap := gaps.Sample(rng)
		if gap <= 0 {
			gap = time.Nanosecond
		}
		at = at.Add(gap)
	}
	return out
}

// ScheduleCount generates exactly n trains starting at start, separated by
// gaps.
func ScheduleCount(rng *rand.Rand, start sim.Time, n int, sizes SizeDist, gaps GapDist) []Train {
	out := make([]Train, 0, n)
	at := start
	for i := 0; i < n; i++ {
		out = append(out, Train{At: at, Bytes: sizes.Sample(rng)})
		gap := gaps.Sample(rng)
		if gap <= 0 {
			gap = time.Nanosecond
		}
		at = at.Add(gap)
	}
	return out
}

// PacketRecord is one observed packet in a trace (the analyzer's input).
type PacketRecord struct {
	At    sim.Time
	Bytes int
}

// TrainInfo is one packet train recovered from a trace.
type TrainInfo struct {
	Start   sim.Time
	End     sim.Time
	Packets int
	Bytes   int
}

// Interval returns the train's duration.
func (t TrainInfo) Interval() time.Duration { return t.End.Sub(t.Start) }

// SplitTrains recovers packet trains from a time-ordered packet trace
// using the paper's definition (Section II.A): packets whose spacing
// exceeds the inter-train gap threshold belong to different trains.
func SplitTrains(trace []PacketRecord, gapThreshold time.Duration) []TrainInfo {
	if len(trace) == 0 {
		return nil
	}
	var out []TrainInfo
	cur := TrainInfo{Start: trace[0].At, End: trace[0].At, Packets: 1, Bytes: trace[0].Bytes}
	for _, p := range trace[1:] {
		if p.At.Sub(cur.End) > gapThreshold {
			out = append(out, cur)
			cur = TrainInfo{Start: p.At, End: p.At, Packets: 1, Bytes: p.Bytes}
			continue
		}
		cur.End = p.At
		cur.Packets++
		cur.Bytes += p.Bytes
	}
	return append(out, cur)
}

// Gaps returns the inter-train gaps of a recovered train sequence
// (Fig. 2(b)'s metric).
func Gaps(trains []TrainInfo) []time.Duration {
	if len(trains) < 2 {
		return nil
	}
	out := make([]time.Duration, 0, len(trains)-1)
	for i := 1; i < len(trains); i++ {
		out = append(out, trains[i].Start.Sub(trains[i-1].End))
	}
	return out
}

// LongTrainThresholdPackets separates the paper's short packet trains
// (SPT, a few to dozens of packets) from long ones (LPT, "nearly one
// hundred packets or more").
const LongTrainThresholdPackets = 90

// IsLong reports whether the train is an LPT under the paper's taxonomy.
func (t TrainInfo) IsLong() bool { return t.Packets >= LongTrainThresholdPackets }
