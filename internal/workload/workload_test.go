package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tcptrim/internal/sim"
)

func TestPTSizesMatchPaperBands(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := PTSizes{}
	const n = 20000
	var tiny, large int
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s < PTMinBytes || s > PTMaxBytes {
			t.Fatalf("sample %d outside [0.5KB, 256KB]", s)
		}
		if s <= PTSmallBytes {
			tiny++
		}
		if s > PTLargeBytes {
			large++
		}
	}
	tinyFrac := float64(tiny) / n
	largeFrac := float64(large) / n
	// Paper: "the proportion of tiny PTs (≤4 KB) is lower than 20%,
	// while 10% is larger than 128 KB"; about 70% is between.
	if tinyFrac < 0.17 || tinyFrac > 0.23 {
		t.Errorf("tiny fraction = %.3f, want ≈0.20", tinyFrac)
	}
	if largeFrac < 0.08 || largeFrac > 0.12 {
		t.Errorf("large fraction = %.3f, want ≈0.10", largeFrac)
	}
}

func TestPTGapsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := PTGaps{}
	var subMs int
	const n = 10000
	for i := 0; i < n; i++ {
		v := g.Sample(rng)
		if v < GapMin || v > GapMax {
			t.Fatalf("gap %v outside range", v)
		}
		if v < time.Millisecond {
			subMs++
		}
	}
	// Log-uniform on [100µs, 10ms]: half the mass below 1 ms.
	frac := float64(subMs) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("sub-millisecond fraction = %.3f, want ≈0.5", frac)
	}
}

func TestExponentialGapMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ExponentialGap{Mean: time.Millisecond}
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += g.Sample(rng)
	}
	mean := sum / n
	if mean < 950*time.Microsecond || mean > 1050*time.Microsecond {
		t.Errorf("mean = %v, want ≈1ms", mean)
	}
}

func TestUniformDists(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	us := UniformSize{Min: 2048, Max: 10240}
	for i := 0; i < 1000; i++ {
		if s := us.Sample(rng); s < 2048 || s > 10240 {
			t.Fatalf("uniform size %d out of range", s)
		}
	}
	ug := UniformGap{Min: time.Millisecond, Max: 2 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		if g := ug.Sample(rng); g < time.Millisecond || g >= 2*time.Millisecond {
			t.Fatalf("uniform gap %v out of range", g)
		}
	}
	if (FixedSize{Bytes: 77}).Sample(rng) != 77 {
		t.Error("FixedSize")
	}
	if (FixedGap{D: time.Second}).Sample(rng) != time.Second {
		t.Error("FixedGap")
	}
}

func TestJitteredSize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	j := JitteredSize{Mean: 100_000, Jitter: 0.1}
	var sum int64
	for i := 0; i < 10000; i++ {
		v := j.Sample(rng)
		if v < 90_000 || v > 110_000 {
			t.Fatalf("jittered size %d outside ±10%%", v)
		}
		sum += int64(v)
	}
	mean := sum / 10000
	if mean < 99_000 || mean > 101_000 {
		t.Errorf("mean = %d, want ≈100000", mean)
	}
}

func TestScheduleRespectsWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	trains := Schedule(rng, sim.At(100*time.Millisecond), sim.At(600*time.Millisecond),
		PTSizes{}, PTGaps{})
	if len(trains) == 0 {
		t.Fatal("no trains generated")
	}
	for i, tr := range trains {
		if tr.At < sim.At(100*time.Millisecond) || tr.At >= sim.At(600*time.Millisecond) {
			t.Fatalf("train %d at %v outside window", i, tr.At)
		}
		if i > 0 && tr.At <= trains[i-1].At {
			t.Fatalf("train times not strictly increasing at %d", i)
		}
	}
}

func TestScheduleCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trains := ScheduleCount(rng, sim.At(time.Millisecond), 200,
		UniformSize{Min: 2048, Max: 10240}, ExponentialGap{Mean: time.Millisecond})
	if len(trains) != 200 {
		t.Fatalf("trains = %d", len(trains))
	}
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	gen := func() []Train {
		rng := rand.New(rand.NewSource(42))
		return ScheduleCount(rng, 0, 50, PTSizes{}, PTGaps{})
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d", i)
		}
	}
}

func TestSplitTrains(t *testing.T) {
	mk := func(atUs int64) sim.Time { return sim.At(time.Duration(atUs) * time.Microsecond) }
	trace := []PacketRecord{
		{At: mk(0), Bytes: 1500},
		{At: mk(12), Bytes: 1500},
		{At: mk(24), Bytes: 1500},
		// 5 ms gap → new train.
		{At: mk(5024), Bytes: 1500},
		{At: mk(5036), Bytes: 1000},
	}
	trains := SplitTrains(trace, 300*time.Microsecond)
	if len(trains) != 2 {
		t.Fatalf("trains = %d, want 2", len(trains))
	}
	if trains[0].Packets != 3 || trains[0].Bytes != 4500 {
		t.Errorf("train 0 = %+v", trains[0])
	}
	if trains[1].Packets != 2 || trains[1].Bytes != 2500 {
		t.Errorf("train 1 = %+v", trains[1])
	}
	gaps := Gaps(trains)
	if len(gaps) != 1 || gaps[0] != 5*time.Millisecond {
		t.Errorf("gaps = %v", gaps)
	}
}

func TestSplitTrainsEmptyAndSingle(t *testing.T) {
	if got := SplitTrains(nil, time.Millisecond); got != nil {
		t.Error("empty trace should yield nil")
	}
	one := SplitTrains([]PacketRecord{{At: 0, Bytes: 99}}, time.Millisecond)
	if len(one) != 1 || one[0].Bytes != 99 {
		t.Errorf("single-packet trace: %+v", one)
	}
	if Gaps(one) != nil {
		t.Error("single train has no gaps")
	}
}

// TestSplitTrainsConservation: packets and bytes are conserved across the
// split for arbitrary traces.
func TestSplitTrainsConservation(t *testing.T) {
	prop := func(deltas []uint16) bool {
		var trace []PacketRecord
		at := sim.Time(0)
		for _, d := range deltas {
			at = at.Add(time.Duration(d) * time.Microsecond)
			trace = append(trace, PacketRecord{At: at, Bytes: 1500})
		}
		trains := SplitTrains(trace, 300*time.Microsecond)
		var pkts, bytes int
		for _, tr := range trains {
			pkts += tr.Packets
			bytes += tr.Bytes
		}
		if len(trace) == 0 {
			return trains == nil
		}
		return pkts == len(trace) && bytes == 1500*len(trace)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIsLong(t *testing.T) {
	if (TrainInfo{Packets: 10}).IsLong() {
		t.Error("10-packet train classified long")
	}
	if !(TrainInfo{Packets: 120}).IsLong() {
		t.Error("120-packet train classified short")
	}
}
