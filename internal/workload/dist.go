// Package workload generates the paper's HTTP traffic: packet trains
// whose size distribution matches the Fig. 2(a) CDF (≈20% of trains ≤4 KB,
// ≈70% between 4 KB and 128 KB, ≈10% above 128 KB, overall range
// 0.5–256 KB), inter-train gaps from hundreds of microseconds to several
// milliseconds (Fig. 2(b)), and the uniform/exponential response intervals
// used by the large-scale experiment (Fig. 8). It also provides the
// packet-train analyzer of Section II.A (trains split at gaps exceeding an
// inter-train threshold, after Jain's packet-train model).
//
// The paper's 2 TB campus trace is proprietary; these generators are the
// documented substitution (see DESIGN.md): every downstream experiment
// consumes only the published distribution shapes reproduced here.
package workload

import (
	"math"
	"math/rand"
	"time"
)

// Packet-train size mixture bounds (bytes), from Fig. 2(a).
const (
	PTMinBytes   = 512
	PTSmallBytes = 4 << 10   // 4 KB: ≈20% of trains are at or below
	PTLargeBytes = 128 << 10 // 128 KB: ≈10% of trains are above
	PTMaxBytes   = 256 << 10
)

// Mixture weights for the three Fig. 2(a) bands.
const (
	ptTinyFraction  = 0.20
	ptLargeFraction = 0.10
)

// Inter-train gap range from Fig. 2(b): hundreds of microseconds to
// several milliseconds, log-uniform.
const (
	GapMin = 100 * time.Microsecond
	GapMax = 10 * time.Millisecond
)

// SizeDist draws packet-train sizes in bytes.
type SizeDist interface {
	Sample(rng *rand.Rand) int
}

// GapDist draws inter-train gaps.
type GapDist interface {
	Sample(rng *rand.Rand) time.Duration
}

// PTSizes is the Fig. 2(a) mixture: log-uniform within each band,
// band weights 20/70/10.
type PTSizes struct{}

var _ SizeDist = PTSizes{}

// Sample implements SizeDist.
func (PTSizes) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < ptTinyFraction:
		return logUniformInt(rng, PTMinBytes, PTSmallBytes)
	case u < 1-ptLargeFraction:
		return logUniformInt(rng, PTSmallBytes, PTLargeBytes)
	default:
		return logUniformInt(rng, PTLargeBytes, PTMaxBytes)
	}
}

// UniformSize draws sizes uniformly in [Min, Max] bytes (the paper's
// "2 KB to 10 KB" responses in Section II.B).
type UniformSize struct {
	Min, Max int
}

var _ SizeDist = UniformSize{}

// Sample implements SizeDist.
func (u UniformSize) Sample(rng *rand.Rand) int {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + rng.Intn(u.Max-u.Min+1)
}

// FixedSize always returns Bytes.
type FixedSize struct {
	Bytes int
}

var _ SizeDist = FixedSize{}

// Sample implements SizeDist.
func (f FixedSize) Sample(*rand.Rand) int { return f.Bytes }

// JitteredSize draws Mean with a ± Jitter fraction of uniform noise (the
// testbed's "same mean size with 10% variation").
type JitteredSize struct {
	Mean   int
	Jitter float64
}

var _ SizeDist = JitteredSize{}

// Sample implements SizeDist.
func (j JitteredSize) Sample(rng *rand.Rand) int {
	if j.Jitter <= 0 {
		return j.Mean
	}
	f := 1 + j.Jitter*(2*rng.Float64()-1)
	v := int(float64(j.Mean) * f)
	if v < 1 {
		v = 1
	}
	return v
}

// PTGaps is the Fig. 2(b) log-uniform gap distribution.
type PTGaps struct{}

var _ GapDist = PTGaps{}

// Sample implements GapDist.
func (PTGaps) Sample(rng *rand.Rand) time.Duration {
	return logUniformDuration(rng, GapMin, GapMax)
}

// ExponentialGap draws intervals exponentially with the given mean (the
// Section II.B "interval between two neighboring responses is randomly
// generated based on 1 ms mean").
type ExponentialGap struct {
	Mean time.Duration
}

var _ GapDist = ExponentialGap{}

// Sample implements GapDist.
func (e ExponentialGap) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(e.Mean))
}

// UniformGap draws intervals uniformly in [Min, Max].
type UniformGap struct {
	Min, Max time.Duration
}

var _ GapDist = UniformGap{}

// Sample implements GapDist.
func (u UniformGap) Sample(rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// FixedGap always returns D.
type FixedGap struct {
	D time.Duration
}

var _ GapDist = FixedGap{}

// Sample implements GapDist.
func (f FixedGap) Sample(*rand.Rand) time.Duration { return f.D }

func logUniformInt(rng *rand.Rand, lo, hi int) int {
	v := logUniform(rng, float64(lo), float64(hi))
	n := int(v)
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

func logUniformDuration(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	v := logUniform(rng, float64(lo), float64(hi))
	d := time.Duration(v)
	if d < lo {
		d = lo
	}
	if d > hi {
		d = hi
	}
	return d
}

func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}
