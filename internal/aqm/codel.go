package aqm

import (
	"math"
	"time"

	"tcptrim/internal/sim"
)

// CoDelConfig parameterizes Controlled Delay (Nichols & Jacobson, ACM
// Queue 2012). Zero-valued fields take data-center defaults: the
// published 5 ms / 100 ms target/interval are tuned for WAN RTTs, while
// the simulated fabrics drain a full 100-packet buffer in ~1.2 ms.
type CoDelConfig struct {
	// Target is the acceptable standing sojourn time (default 100 µs).
	Target time.Duration
	// Interval is the sliding window in which the target must be met at
	// least once (default 1 ms, on the order of the worst-case RTT).
	Interval time.Duration
	// MTU is the backlog floor: CoDel never drops when at most one MTU of
	// bytes remains queued (default 1500).
	MTU int
	// ECN makes drop verdicts CE-mark ECT packets instead of discarding
	// them; the control-law state advances identically.
	ECN bool
}

func (c CoDelConfig) withDefaults() CoDelConfig {
	if c.Target <= 0 {
		c.Target = 100 * time.Microsecond
	}
	if c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	if c.MTU <= 0 {
		c.MTU = 1500
	}
	return c
}

// codel implements the reference dequeue state machine. The queue calls
// OnDequeue for each head packet and re-invokes it on the next head after
// a Drop verdict, which reproduces the reference implementation's
// drop-while loop.
type codel struct {
	cfg   CoDelConfig
	lim   Limits
	stats Stats

	// firstAbove is when the sojourn time, continuously above target,
	// will have been above it for a full interval (0 = not above).
	firstAbove sim.Time
	// dropNext is the instant of the next control-law drop while in the
	// dropping state.
	dropNext  sim.Time
	count     int
	lastCount int
	dropping  bool
}

func newCoDel(cfg CoDelConfig, lim Limits) *codel {
	return &codel{cfg: cfg.withDefaults(), lim: lim}
}

func (c *codel) Name() string { return "codel" }

func (c *codel) OnEnqueue(p Pkt, q State, _ sim.Time) EnqueueVerdict {
	if !c.lim.admits(p, q) {
		return EnqueueVerdict{Drop: true}
	}
	return EnqueueVerdict{}
}

// okToDrop is the reference should_drop: the sojourn time has been above
// target for at least one interval and more than an MTU remains queued.
func (c *codel) okToDrop(sojourn time.Duration, q State, now sim.Time) bool {
	if sojourn < c.cfg.Target || q.Bytes <= c.cfg.MTU {
		c.firstAbove = 0
		return false
	}
	if c.firstAbove == 0 {
		c.firstAbove = now.Add(c.cfg.Interval)
		return false
	}
	return now >= c.firstAbove
}

// controlLaw spaces successive drops by interval/sqrt(count).
func (c *codel) controlLaw(t sim.Time) sim.Time {
	return t.Add(time.Duration(float64(c.cfg.Interval) / math.Sqrt(float64(c.count))))
}

func (c *codel) OnDequeue(p Pkt, sojourn time.Duration, q State, now sim.Time) DequeueVerdict {
	ok := c.okToDrop(sojourn, q, now)
	if c.dropping {
		switch {
		case !ok:
			c.dropping = false
		case now >= c.dropNext:
			c.count++
			c.dropNext = c.controlLaw(c.dropNext)
			return c.dropOrMark(p)
		}
		return DequeueVerdict{}
	}
	if !ok {
		return DequeueVerdict{}
	}
	// Enter the dropping state. If we were dropping recently, resume at
	// the last drop rate instead of relearning it from 1 (the reference
	// implementation's count restoration).
	c.dropping = true
	delta := c.count - c.lastCount
	c.count = 1
	if delta > 1 && now.Sub(c.dropNext) < 16*c.cfg.Interval {
		c.count = delta
	}
	c.dropNext = c.controlLaw(now)
	c.lastCount = c.count
	return c.dropOrMark(p)
}

// dropOrMark converts a control-law drop into a CE mark for ECT packets
// when ECN mode is on.
func (c *codel) dropOrMark(p Pkt) DequeueVerdict {
	if c.cfg.ECN && p.ECT {
		c.stats.Marks++
		return DequeueVerdict{Mark: true}
	}
	c.stats.HeadDrops++
	return DequeueVerdict{Drop: true}
}

func (c *codel) OnRemove(Pkt) {}

func (c *codel) Stats() Stats { return c.stats }
