package aqm

import (
	"testing"
	"time"

	"tcptrim/internal/sim"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in      string
		kind    Kind
		ared    bool
		wantErr bool
	}{
		{in: "droptail", kind: DropTail},
		{in: "DropTail", kind: DropTail},
		{in: "fifo", kind: DropTail},
		{in: "red", kind: RED},
		{in: "ared", kind: RED, ared: true},
		{in: "codel", kind: CoDel},
		{in: "CoDel", kind: CoDel},
		{in: "favour", kind: FavourQueue},
		{in: "favor", kind: FavourQueue},
		{in: "favourqueue", kind: FavourQueue},
		{in: "fq", kind: FavourQueue},
		{in: "", kind: DropTail}, // empty = the scenario default
		{in: "bogus", wantErr: true},
		{in: "taildrop", wantErr: true},
	}
	for _, c := range cases {
		cfg, err := Parse(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("Parse(%q): want error, got %+v", c.in, cfg)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if cfg.Kind != c.kind || cfg.RED.Adaptive != c.ared {
			t.Errorf("Parse(%q) = kind %v adaptive %v, want %v %v",
				c.in, cfg.Kind, cfg.RED.Adaptive, c.kind, c.ared)
		}
	}
}

func TestConfigBuildNames(t *testing.T) {
	lim := Limits{CapPackets: 100}
	cases := []struct {
		cfg  Config
		name string
	}{
		{Config{}, "droptail"},
		{Config{Kind: RED}, "red"},
		{Config{Kind: RED, RED: REDConfig{Adaptive: true}}, "ared"},
		{Config{Kind: CoDel}, "codel"},
		{Config{Kind: FavourQueue}, "favour"},
	}
	for _, c := range cases {
		d, err := c.cfg.Build(lim)
		if err != nil {
			t.Fatalf("Build(%+v): %v", c.cfg, err)
		}
		if d.Name() != c.name {
			t.Errorf("Build(%+v).Name() = %q, want %q", c.cfg, d.Name(), c.name)
		}
	}
	if _, err := (Config{Kind: Kind(99)}).Build(lim); err == nil {
		t.Error("Build with invalid kind: want error")
	}
}

func TestLimitsAdmits(t *testing.T) {
	cases := []struct {
		lim  Limits
		p    Pkt
		q    State
		want bool
	}{
		{Limits{CapPackets: 2}, Pkt{Size: 100}, State{Len: 1, Bytes: 100}, true},
		{Limits{CapPackets: 2}, Pkt{Size: 100}, State{Len: 2, Bytes: 200}, false},
		{Limits{CapBytes: 300}, Pkt{Size: 100}, State{Len: 2, Bytes: 200}, true},
		{Limits{CapBytes: 300}, Pkt{Size: 101}, State{Len: 2, Bytes: 200}, false},
		{Limits{}, Pkt{Size: 100}, State{Len: 1 << 20, Bytes: 1 << 30}, true}, // unlimited
	}
	for i, c := range cases {
		if got := c.lim.admits(c.p, c.q); got != c.want {
			t.Errorf("case %d: admits(%+v, %+v) = %v, want %v", i, c.p, c.q, got, c.want)
		}
	}
}

// TestDropTailMatchesHistoricalSemantics is the satellite's table-driven
// pin of the extracted behavior: tail drop against the occupancy the
// arriving packet finds, and instantaneous ECN marking at the threshold,
// both evaluated pre-insert.
func TestDropTailMatchesHistoricalSemantics(t *testing.T) {
	lim := Limits{CapPackets: 4, ECNThresholdPackets: 2}
	d := newDropTail(lim)
	cases := []struct {
		p    Pkt
		q    State
		want EnqueueVerdict
	}{
		{Pkt{Size: 1500, ECT: true}, State{Len: 0}, EnqueueVerdict{}},
		{Pkt{Size: 1500, ECT: true}, State{Len: 1, Bytes: 1500}, EnqueueVerdict{}},
		// Marking threshold compares the pre-insert length.
		{Pkt{Size: 1500, ECT: true}, State{Len: 2, Bytes: 3000}, EnqueueVerdict{Mark: true}},
		{Pkt{Size: 1500, ECT: true}, State{Len: 3, Bytes: 4500}, EnqueueVerdict{Mark: true}},
		// Non-ECT traffic above the threshold is left alone.
		{Pkt{Size: 1500}, State{Len: 3, Bytes: 4500}, EnqueueVerdict{}},
		// At capacity: tail drop, never an "early" drop.
		{Pkt{Size: 1500, ECT: true}, State{Len: 4, Bytes: 6000}, EnqueueVerdict{Drop: true}},
	}
	for i, c := range cases {
		if got := d.OnEnqueue(c.p, c.q, sim.Time(i)); got != c.want {
			t.Errorf("case %d: OnEnqueue(%+v, %+v) = %+v, want %+v", i, c.p, c.q, got, c.want)
		}
	}
	if marks := d.Stats().Marks; marks != 2 {
		t.Errorf("Stats().Marks = %d, want 2", marks)
	}
	// Byte-threshold marking, as ksweep-style scenarios configure it.
	db := newDropTail(Limits{CapPackets: 10, ECNThresholdBytes: 3000})
	if v := db.OnEnqueue(Pkt{Size: 100, ECT: true}, State{Len: 2, Bytes: 2999}, 0); v.Mark {
		t.Errorf("byte threshold marked below threshold")
	}
	if v := db.OnEnqueue(Pkt{Size: 100, ECT: true}, State{Len: 2, Bytes: 3000}, 0); !v.Mark {
		t.Errorf("byte threshold failed to mark at threshold")
	}
}

// TestDisciplineHotPathAllocationFree guards the CI bench budget at unit
// level: no discipline may allocate in OnEnqueue/OnDequeue/OnRemove
// steady state. FavourQueue's map writes reuse existing buckets once the
// flow set is warm, so it is held to the same zero.
func TestDisciplineHotPathAllocationFree(t *testing.T) {
	lim := Limits{CapPackets: 100, ECNThresholdPackets: 20}
	disciplines := []Discipline{
		newDropTail(lim),
		newRED(REDConfig{MinTh: 5, MaxTh: 15, Seed: 1}, lim),
		newCoDel(CoDelConfig{}, lim),
		newFavourQueue(lim),
	}
	for _, d := range disciplines {
		d := d
		p := Pkt{Size: 1500, ECT: true, Flow: 7}
		// Warm up any lazily grown state (FavourQueue's flow map).
		d.OnEnqueue(p, State{Len: 3, Bytes: 4500}, 0)
		d.OnRemove(p)
		var now sim.Time
		allocs := testing.AllocsPerRun(500, func() {
			now = now.Add(10 * time.Microsecond)
			d.OnEnqueue(p, State{Len: 3, Bytes: 4500}, now)
			d.OnDequeue(p, 200*time.Microsecond, State{Len: 3, Bytes: 4500}, now)
			d.OnRemove(p)
			d.Stats()
		})
		if allocs != 0 {
			t.Errorf("%s: hot path allocates %.1f allocs/op, want 0", d.Name(), allocs)
		}
	}
}
