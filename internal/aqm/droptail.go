package aqm

import (
	"time"

	"tcptrim/internal/sim"
)

// dropTail is the paper's COTS switch queue: tail drop at capacity and
// instantaneous-queue ECN marking at enqueue time (DCTCP style). It is a
// verbatim extraction of the behavior historically hard-coded in
// netsim.Queue, and the default discipline — simulations that do not opt
// into AQM are byte-identical to the pre-aqm tree.
type dropTail struct {
	lim   Limits
	stats Stats
}

func newDropTail(lim Limits) *dropTail { return &dropTail{lim: lim} }

func (d *dropTail) Name() string { return "droptail" }

func (d *dropTail) OnEnqueue(p Pkt, q State, _ sim.Time) EnqueueVerdict {
	if !d.lim.admits(p, q) {
		return EnqueueVerdict{Drop: true}
	}
	if p.ECT && d.shouldMark(p, q) {
		d.stats.Marks++
		return EnqueueVerdict{Mark: true}
	}
	return EnqueueVerdict{}
}

// shouldMark is the historical instantaneous ECN threshold test, against
// the occupancy the arriving packet finds.
func (d *dropTail) shouldMark(_ Pkt, q State) bool {
	if d.lim.ECNThresholdPackets > 0 && q.Len >= d.lim.ECNThresholdPackets {
		return true
	}
	if d.lim.ECNThresholdBytes > 0 && q.Bytes >= d.lim.ECNThresholdBytes {
		return true
	}
	return false
}

func (d *dropTail) OnDequeue(Pkt, time.Duration, State, sim.Time) DequeueVerdict {
	return DequeueVerdict{}
}

func (d *dropTail) OnRemove(Pkt) {}

func (d *dropTail) Stats() Stats { return d.stats }
