package aqm

import (
	"math/rand"
	"testing"

	"tcptrim/internal/sim"
)

// naiveFavour models the FavourQueue promotion rule with a plain slice
// multiset of queued flows: a packet is favoured iff no packet of its
// flow is currently in the queue.
type naiveFavour struct {
	flows []uint64
}

func (n *naiveFavour) favoured(flow uint64) bool {
	for _, f := range n.flows {
		if f == flow {
			return false
		}
	}
	return true
}

func (n *naiveFavour) add(flow uint64) { n.flows = append(n.flows, flow) }

func (n *naiveFavour) remove(flow uint64) {
	for i, f := range n.flows {
		if f == flow {
			n.flows = append(n.flows[:i], n.flows[i+1:]...)
			return
		}
	}
}

// TestFavourQueueMatchesNaivePromotionRule runs the live discipline and
// the slice-multiset model in lockstep over random enqueue/remove
// streams and compares every promotion decision.
func TestFavourQueueMatchesNaivePromotionRule(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		live := newFavourQueue(Limits{CapPackets: 60})
		naive := &naiveFavour{}
		drv := rand.New(rand.NewSource(seed))
		var q []Pkt // the shared model queue, in arrival (not service) order
		var bytes int
		favoured := 0
		for i := 0; i < 3000; i++ {
			now := sim.Time(i * 1000)
			if drv.Intn(3) == 0 && len(q) > 0 {
				// Remove a random queued packet (models delivery, head
				// drop, or drain — OnRemove must cover them all).
				j := drv.Intn(len(q))
				p := q[j]
				q = append(q[:j], q[j+1:]...)
				bytes -= p.Size
				live.OnRemove(p)
				naive.remove(p.Flow)
				continue
			}
			p := Pkt{Size: 100 + drv.Intn(1400), ECT: drv.Intn(2) == 0, Flow: uint64(drv.Intn(6))}
			st := State{Len: len(q), Bytes: bytes}
			v := live.OnEnqueue(p, st, now)
			if v.Drop {
				if len(q) < 60 {
					t.Fatalf("seed %d step %d: drop below capacity", seed, i)
				}
				continue
			}
			if want := naive.favoured(p.Flow); v.Favour != want {
				t.Fatalf("seed %d step %d flow %d: live favour=%v, naive %v (queue %v)",
					seed, i, p.Flow, v.Favour, want, naive.flows)
			}
			if v.Favour {
				favoured++
			}
			naive.add(p.Flow)
			q = append(q, p)
			bytes += p.Size
		}
		if favoured == 0 {
			t.Fatalf("seed %d: driver never exercised a promotion", seed)
		}
		if got := live.Stats().Favoured; got != favoured {
			t.Fatalf("seed %d: Stats().Favoured = %d, observed %d", seed, got, favoured)
		}
		// Drain everything: the per-flow bookkeeping must return to empty.
		for _, p := range q {
			live.OnRemove(p)
		}
		if len(live.queued) != 0 {
			t.Fatalf("seed %d: residual flow bookkeeping after drain: %v", seed, live.queued)
		}
	}
}

// TestFavourQueueAdmissionIsDropTail pins that FavourQueue changes only
// ordering: its admission and ECN-marking verdicts are exactly
// drop-tail's for identical inputs.
func TestFavourQueueAdmissionIsDropTail(t *testing.T) {
	lim := Limits{CapPackets: 10, ECNThresholdPackets: 4}
	fav := newFavourQueue(lim)
	dt := newDropTail(lim)
	drv := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		p := Pkt{Size: 1500, ECT: drv.Intn(2) == 0, Flow: uint64(i)} // unique flows: always favoured
		st := State{Len: drv.Intn(12), Bytes: drv.Intn(12) * 1500}
		got := fav.OnEnqueue(p, st, sim.Time(i))
		want := dt.OnEnqueue(p, st, sim.Time(i))
		got.Favour = false // ordering is the one permitted difference
		if got != want {
			t.Fatalf("step %d state %+v: favour %+v != droptail %+v", i, st, got, want)
		}
		if !got.Drop {
			fav.OnRemove(p)
		}
	}
}
