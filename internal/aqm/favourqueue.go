package aqm

import (
	"tcptrim/internal/sim"
)

// favourQueue implements FavourQueue (Anelli, Diana & Lochin, "A
// Parameterless Scheduler for Mitigating Flows' Latency", 2014): a
// drop-tail FIFO in which a packet whose flow has no other packet
// currently queued is "favoured" — enqueued ahead of the unfavoured
// backlog (behind earlier favoured packets). Short and starting flows,
// whose packets rarely find a queued sibling, thus skip the standing
// queue that long flows build; the rule needs no thresholds, timers, or
// randomness. Admission and ECN marking are exactly drop-tail's.
type favourQueue struct {
	dropTail
	// queued counts this queue's packets per flow. Exact bookkeeping
	// relies on OnRemove firing for every departure, however the packet
	// left (delivered, head-dropped, drained).
	queued map[uint64]int
}

func newFavourQueue(lim Limits) *favourQueue {
	return &favourQueue{dropTail: dropTail{lim: lim}, queued: make(map[uint64]int)}
}

func (f *favourQueue) Name() string { return "favour" }

func (f *favourQueue) OnEnqueue(p Pkt, q State, now sim.Time) EnqueueVerdict {
	v := f.dropTail.OnEnqueue(p, q, now)
	if v.Drop {
		return v
	}
	if f.queued[p.Flow] == 0 {
		v.Favour = true
		f.stats.Favoured++
	}
	f.queued[p.Flow]++
	return v
}

func (f *favourQueue) OnRemove(p Pkt) {
	if c := f.queued[p.Flow]; c <= 1 {
		delete(f.queued, p.Flow)
	} else {
		f.queued[p.Flow] = c - 1
	}
}
