package aqm

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tcptrim/internal/sim"
)

// naiveCoDel is an independent flat transcription of the CoDel dequeue
// state machine (target/interval/firstAbove/dropNext/count), written as
// explicit mode dispatch rather than the live implementation's nested
// flow. Run in lockstep it guards every refactor of codel.go.
type naiveCoDel struct {
	target, interval time.Duration
	mtu              int
	ecn              bool

	firstAbove, dropNext sim.Time
	count, lastCount     int
	dropping             bool
}

func newNaiveCoDel(cfg CoDelConfig) *naiveCoDel {
	cfg = cfg.withDefaults()
	return &naiveCoDel{target: cfg.Target, interval: cfg.Interval, mtu: cfg.MTU, ecn: cfg.ECN}
}

// verdict codes for the lockstep comparison.
const (
	vPass = iota
	vDrop
	vMark
)

func (n *naiveCoDel) shouldDrop(sojourn time.Duration, backlogBytes int, now sim.Time) bool {
	// Below target or down to one MTU: reset the above-target clock.
	if sojourn < n.target || backlogBytes <= n.mtu {
		n.firstAbove = 0
		return false
	}
	// Above target: arm the clock, then require a full interval above it.
	if n.firstAbove == 0 {
		n.firstAbove = now.Add(n.interval)
		return false
	}
	return now >= n.firstAbove
}

func (n *naiveCoDel) act(ect bool) int {
	if n.ecn && ect {
		return vMark
	}
	return vDrop
}

func (n *naiveCoDel) dequeue(sojourn time.Duration, backlogBytes int, ect bool, now sim.Time) int {
	ok := n.shouldDrop(sojourn, backlogBytes, now)
	switch {
	case n.dropping && !ok:
		n.dropping = false
		return vPass
	case n.dropping && now >= n.dropNext:
		n.count++
		n.dropNext = n.dropNext.Add(time.Duration(float64(n.interval) / math.Sqrt(float64(n.count))))
		return n.act(ect)
	case n.dropping:
		return vPass
	case !ok:
		return vPass
	default: // enter dropping, with count restoration for recent episodes
		n.dropping = true
		if delta := n.count - n.lastCount; delta > 1 && now.Sub(n.dropNext) < 16*n.interval {
			n.count = delta
		} else {
			n.count = 1
		}
		n.lastCount = n.count
		n.dropNext = now.Add(time.Duration(float64(n.interval) / math.Sqrt(float64(n.count))))
		return n.act(ect)
	}
}

// toyPkt is a timestamped packet in the lockstep driver's model queue.
type toyPkt struct {
	size int
	ect  bool
	enq  sim.Time
}

// driveCoDel feeds identical arrival/service processes to the live codel
// (via the same call pattern netsim.Queue uses, re-invoking OnDequeue
// after a Drop verdict) and to the naive machine, comparing every
// verdict. The service is deliberately slower than arrivals so sojourn
// times climb through the target and the dropping state engages.
func driveCoDel(t *testing.T, cfg CoDelConfig, seed int64, steps int) {
	t.Helper()
	live := newCoDel(cfg, Limits{CapPackets: 10000})
	naive := newNaiveCoDel(cfg)
	drv := rand.New(rand.NewSource(seed))
	var q []toyPkt
	var bytes int
	now := sim.Time(0)
	serviced := 0
	for i := 0; i < steps; i++ {
		now = now.Add(time.Duration(drv.Intn(120)+1) * time.Microsecond)
		if drv.Intn(5) < 3 { // arrival (more likely than service)
			p := toyPkt{size: 1500, ect: drv.Intn(2) == 0, enq: now}
			q = append(q, p)
			bytes += p.size
			continue
		}
		// One service opportunity: pop until a packet survives.
		for len(q) > 0 {
			head := q[0]
			q = q[1:]
			bytes -= head.size
			sojourn := now.Sub(head.enq)
			st := State{Len: len(q), Bytes: bytes}
			v := live.OnDequeue(Pkt{Size: head.size, ECT: head.ect}, sojourn, st, now)
			got := vPass
			switch {
			case v.Drop:
				got = vDrop
			case v.Mark:
				got = vMark
			}
			want := naive.dequeue(sojourn, bytes, head.ect, now)
			if got != want {
				t.Fatalf("seed %d step %d (sojourn %v, backlog %d): live verdict %d != naive %d",
					seed, i, sojourn, bytes, got, want)
			}
			serviced++
			if !v.Drop {
				break // delivered; this service opportunity is used up
			}
		}
	}
	if serviced == 0 {
		t.Fatalf("seed %d: driver never serviced a packet", seed)
	}
	if live.dropping != naive.dropping || live.count != naive.count ||
		live.dropNext != naive.dropNext || live.firstAbove != naive.firstAbove {
		t.Fatalf("seed %d: final state diverged: live {dropping %v count %d next %v above %v} naive {%v %d %v %v}",
			seed, live.dropping, live.count, live.dropNext, live.firstAbove,
			naive.dropping, naive.count, naive.dropNext, naive.firstAbove)
	}
}

func TestCoDelMatchesNaiveTranscription(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		driveCoDel(t, CoDelConfig{}, seed, 4000)
	}
}

func TestCoDelECNMatchesNaiveTranscription(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		driveCoDel(t, CoDelConfig{ECN: true}, seed, 4000)
	}
}

func TestCoDelWANParamsMatchNaiveTranscription(t *testing.T) {
	// The canonical 5 ms / 100 ms parameters, to cover config plumbing.
	cfg := CoDelConfig{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond}
	for seed := int64(1); seed <= 5; seed++ {
		driveCoDel(t, cfg, seed, 4000)
	}
}

// TestCoDelNeverDropsBelowTarget pins the good-queue property: sojourn
// times under the target never trigger the control law.
func TestCoDelNeverDropsBelowTarget(t *testing.T) {
	c := newCoDel(CoDelConfig{}, Limits{CapPackets: 100})
	for i := 0; i < 1000; i++ {
		now := sim.Time(i * 1000)
		v := c.OnDequeue(Pkt{Size: 1500}, 50*time.Microsecond, State{Len: 10, Bytes: 15000}, now)
		if v.Drop || v.Mark {
			t.Fatalf("step %d: verdict %+v for sojourn below target", i, v)
		}
	}
	if c.Stats().HeadDrops != 0 || c.Stats().Marks != 0 {
		t.Fatalf("stats recorded action below target: %+v", c.Stats())
	}
}

// TestCoDelMTUBacklogFloor pins the standing-backlog floor: with at most
// one MTU queued, CoDel stays passive however large the sojourn time.
func TestCoDelMTUBacklogFloor(t *testing.T) {
	c := newCoDel(CoDelConfig{}, Limits{CapPackets: 100})
	for i := 0; i < 100; i++ {
		now := sim.Time(i * 100_000)
		v := c.OnDequeue(Pkt{Size: 1500}, 10*time.Millisecond, State{Len: 1, Bytes: 1500}, now)
		if v.Drop || v.Mark {
			t.Fatalf("step %d: verdict %+v with backlog at MTU floor", i, v)
		}
	}
}

// TestCoDelControlLawSpacing checks the interval/sqrt(count) schedule:
// under a persistently bad queue, the gap between the n-th and n+1-th
// drop is interval/sqrt(n+1).
func TestCoDelControlLawSpacing(t *testing.T) {
	cfg := CoDelConfig{}.withDefaults()
	c := newCoDel(cfg, Limits{CapPackets: 100})
	st := State{Len: 50, Bytes: 75000}
	soj := 500 * time.Microsecond // persistently above target
	var drops []sim.Time
	for i := 0; i < 400_000 && len(drops) < 6; i++ {
		now := sim.Time(i * 1000) // 1 µs service clock
		if c.OnDequeue(Pkt{Size: 1500}, soj, st, now).Drop {
			drops = append(drops, now)
		}
	}
	if len(drops) < 6 {
		t.Fatalf("persistent overload produced only %d drops", len(drops))
	}
	for n := 1; n < len(drops)-1; n++ {
		gap := drops[n+1].Sub(drops[n])
		want := time.Duration(float64(cfg.Interval) / math.Sqrt(float64(n+1)))
		if diff := (gap - want).Abs(); diff > 2*time.Microsecond {
			t.Fatalf("drop %d->%d gap %v, control law wants %v", n, n+1, gap, want)
		}
	}
}
