// Package aqm provides pluggable active-queue-management disciplines for
// the netsim switch queues. The paper's simulations assume one switch
// model — a drop-tail FIFO with an instantaneous ECN threshold — but the
// TRIM-vs-AQM interplay question (is end-host delay control redundant,
// complementary, or harmful when the switch also manages its queue?)
// needs the queue's admission, marking, and head-drop policy to be
// swappable. A Discipline makes those three decisions; the queue itself
// keeps owning storage, byte accounting, and packet lifetime (drops are
// returned to the network's packet pool by the queue's owner).
//
// Four disciplines are provided:
//
//   - DropTail: the paper's COTS switch, byte-identical to the historical
//     hard-coded behavior (tail drop + instantaneous ECN threshold);
//   - RED/ARED: early random drop/mark from an EWMA of the queue length
//     (Floyd & Jacobson 1993; adaptive max-probability per Floyd 2001);
//   - CoDel: sojourn-time target/interval control with head drop
//     (Nichols & Jacobson, ACM Queue 2012), marking instead of dropping
//     for ECN-capable packets;
//   - FavourQueue: parameterless priority for packets of starting flows
//     (Anelli, Diana & Lochin 2014) — a packet is enqueued ahead of the
//     backlog when no other packet of its flow is queued.
//
// Disciplines are deterministic: any randomness (RED's uniformization
// draw) comes from a seeded source fixed at construction, so simulations
// stay reproducible. Hot-path methods must not allocate.
package aqm

import (
	"fmt"
	"strings"
	"time"

	"tcptrim/internal/sim"
)

// Pkt is the slice of a packet a discipline may inspect. It deliberately
// excludes everything else (payload, sequence numbers, ...) so a
// discipline cannot depend on transport internals.
type Pkt struct {
	// Size is the wire size in bytes.
	Size int
	// ECT marks an ECN-capable transport; a Mark verdict only has effect
	// on ECT packets.
	ECT bool
	// Flow identifies the packet's transport flow (FavourQueue's
	// promotion rule is per flow).
	Flow uint64
}

// State is the queue occupancy a discipline decides against. For enqueue
// verdicts it is the occupancy before the arriving packet is added
// (matching enqueue-time ECN marking); for dequeue verdicts it is the
// occupancy after the head packet was removed (matching CoDel's
// remaining-backlog test).
type State struct {
	Len   int // packets
	Bytes int
}

// EnqueueVerdict is the fate of an arriving packet.
type EnqueueVerdict struct {
	// Drop rejects the packet; the caller releases it.
	Drop bool
	// Early distinguishes an AQM early drop (probabilistic, RED) from a
	// capacity tail drop. Only meaningful when Drop is set.
	Early bool
	// Mark requests a CE mark. The queue applies it only to ECT packets.
	Mark bool
	// Favour enqueues the packet into the priority band, ahead of the
	// unfavoured backlog but behind earlier favoured packets.
	Favour bool
}

// DequeueVerdict is the fate of the packet at the head of the queue.
type DequeueVerdict struct {
	// Drop discards the head packet (a CoDel head drop); the queue
	// releases it and presents the next packet to the discipline.
	Drop bool
	// Mark requests a CE mark on the departing packet (CoDel-ECN).
	Mark bool
}

// Stats is a snapshot of per-discipline counters. Fields irrelevant to a
// discipline stay zero.
type Stats struct {
	// EarlyDrops counts probabilistic drops decided at enqueue (RED).
	EarlyDrops int
	// HeadDrops counts drops decided at dequeue (CoDel).
	HeadDrops int
	// Marks counts CE-mark verdicts on ECT packets.
	Marks int
	// Favoured counts packets admitted into the priority band
	// (FavourQueue).
	Favoured int
	// AvgQueue is RED's current EWMA queue length in packets.
	AvgQueue float64
	// MaxP is RED's current maximum drop probability (adapted by ARED).
	MaxP float64
}

// Discipline is one queue's AQM policy. A Discipline instance belongs to
// exactly one queue: it may carry per-queue state (EWMA, drop-cycle state,
// per-flow presence) and is never shared.
type Discipline interface {
	// Name returns the discipline's configuration-space name (see Parse).
	Name() string
	// OnEnqueue decides the fate of an arriving packet; q is the
	// occupancy before insertion.
	OnEnqueue(p Pkt, q State, now sim.Time) EnqueueVerdict
	// OnDequeue decides the fate of the head packet; sojourn is the time
	// it spent queued and q the occupancy after its removal. When the
	// verdict drops the packet, the queue calls OnDequeue again for the
	// next head.
	OnDequeue(p Pkt, sojourn time.Duration, q State, now sim.Time) DequeueVerdict
	// OnRemove observes every departure from the queue — delivered,
	// head-dropped, or drained by a link failure — so per-flow presence
	// tracking stays exact regardless of how a packet left.
	OnRemove(p Pkt)
	// Stats returns a snapshot of the discipline's counters.
	Stats() Stats
}

// Limits conveys the owning queue's physical capacities and configured
// ECN threshold to a discipline at construction (0 = unlimited/off).
type Limits struct {
	CapPackets          int
	CapBytes            int
	ECNThresholdPackets int
	ECNThresholdBytes   int
}

// admits applies the physical-capacity tail check every discipline
// enforces: a queue never holds more than its buffer.
func (l Limits) admits(p Pkt, q State) bool {
	if l.CapPackets > 0 && q.Len >= l.CapPackets {
		return false
	}
	if l.CapBytes > 0 && q.Bytes+p.Size > l.CapBytes {
		return false
	}
	return true
}

// Kind selects a discipline implementation.
type Kind int

// The available disciplines. The zero value is DropTail, so a zero
// Config preserves the historical switch model.
const (
	DropTail Kind = iota
	RED
	CoDel
	FavourQueue
)

// String returns the kind's configuration-space name.
func (k Kind) String() string {
	switch k {
	case DropTail:
		return "droptail"
	case RED:
		return "red"
	case CoDel:
		return "codel"
	case FavourQueue:
		return "favour"
	default:
		return fmt.Sprintf("aqm.Kind(%d)", int(k))
	}
}

// Parse maps a configuration-space name to its Kind. Accepted names:
// droptail, red, ared, codel, favour (plus a few aliases).
func Parse(name string) (Config, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "droptail", "drop-tail", "fifo":
		return Config{Kind: DropTail}, nil
	case "red":
		return Config{Kind: RED}, nil
	case "ared":
		return Config{Kind: RED, RED: REDConfig{Adaptive: true}}, nil
	case "codel":
		return Config{Kind: CoDel}, nil
	case "favour", "favor", "favourqueue", "favorqueue", "fq":
		return Config{Kind: FavourQueue}, nil
	default:
		return Config{}, fmt.Errorf("aqm: unknown discipline %q (known: droptail, red, ared, codel, favour)", name)
	}
}

// Names lists the canonical discipline names Parse accepts.
func Names() []string {
	return []string{"droptail", "red", "ared", "codel", "favour"}
}

// Tiny-buffer regime: shallow commodity ToR buffers (a few packets per
// port) are where concurrent-train tail drops and the resulting RTO
// stalls are at their worst — the regime the loss-recovery sweep and the
// buffer ablation's leading rows probe.
const (
	// TinyBufferPackets is the canonical tiny per-port queue capacity.
	TinyBufferPackets = 8
)

// TinyBufferCaps are the shallow per-port capacities (in packets) the
// buffer ablation prepends to its sweep.
func TinyBufferCaps() []int { return []int{4, 8, 16} }

// TinyCoDelConfig returns CoDel parameters rescaled for a tiny buffer:
// an 8-packet queue at 1 Gbps drains in ~96 µs, so the data-center
// defaults (100 µs target, 1 ms interval) would never see a standing
// queue above target. Target and interval shrink by the same ratio.
func TinyCoDelConfig() CoDelConfig {
	return CoDelConfig{Target: 20 * time.Microsecond, Interval: 200 * time.Microsecond}
}

// Config describes which discipline a queue should build and with what
// parameters. The zero value is DropTail. Config is a value type so a
// LinkConfig can be reused across links: every queue builds its own
// Discipline instance from it and no state is ever shared.
type Config struct {
	Kind  Kind
	RED   REDConfig   // parameters when Kind == RED (zero = defaults)
	CoDel CoDelConfig // parameters when Kind == CoDel (zero = defaults)
}

// Build constructs a fresh discipline instance for a queue with the given
// limits. Out-of-range parameters are normalized to defaults; the only
// error is an unknown Kind.
func (c Config) Build(lim Limits) (Discipline, error) {
	switch c.Kind {
	case DropTail:
		return newDropTail(lim), nil
	case RED:
		return newRED(c.RED, lim), nil
	case CoDel:
		return newCoDel(c.CoDel, lim), nil
	case FavourQueue:
		return newFavourQueue(lim), nil
	default:
		return nil, fmt.Errorf("aqm: unknown discipline kind %d", int(c.Kind))
	}
}

// MustBuild is Build for known-constant configurations (topology
// construction paths that cannot propagate an error).
func (c Config) MustBuild(lim Limits) Discipline {
	d, err := c.Build(lim)
	if err != nil {
		panic(err)
	}
	return d
}
