package aqm

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tcptrim/internal/sim"
)

// Naive-transcription oracle for RED, in the internal/cc oracle-test
// style: an independent re-derivation of the published update rule
// (EWMA with idle decay, the count-uniformized drop curve, ARED's AIMD
// step) run in lockstep over randomized arrival streams and compared
// verdict by verdict. The random draw is consumed at exactly one point
// of the decision sequence (the in-band test), which both sides mirror.
type naiveRED struct {
	cfg  REDConfig
	lim  Limits
	rng  *rand.Rand
	avg  float64
	cnt  int
	seen bool
	last sim.Time
	next sim.Time
	maxP float64
}

func newNaiveRED(cfg REDConfig, lim Limits) *naiveRED {
	cfg = cfg.withDefaults(lim)
	return &naiveRED{cfg: cfg, lim: lim, rng: rand.New(rand.NewSource(cfg.Seed)), cnt: -1, maxP: cfg.MaxP}
}

func (n *naiveRED) onEnqueue(p Pkt, q State, now sim.Time) EnqueueVerdict {
	// 1. EWMA update.
	if q.Len == 0 && n.seen {
		m := float64(now-n.last) / float64(n.cfg.MeanPktTime)
		if m > 0 {
			n.avg *= math.Pow(1-n.cfg.Wq, m)
		}
	} else {
		n.avg = (1-n.cfg.Wq)*n.avg + n.cfg.Wq*float64(q.Len)
	}
	n.seen, n.last = true, now
	// 2. ARED AIMD step.
	if n.cfg.Adaptive && now >= n.next {
		band := float64(n.cfg.MaxTh - n.cfg.MinTh)
		low, high := float64(n.cfg.MinTh)+0.4*band, float64(n.cfg.MinTh)+0.6*band
		if n.avg > high && n.maxP < 0.5 {
			n.maxP = math.Min(0.5, n.maxP+math.Min(0.01, n.maxP/4))
		} else if n.avg < low && n.maxP > 0.01 {
			n.maxP = math.Max(0.01, n.maxP*0.9)
		}
		n.next = now.Add(n.cfg.AdaptInterval)
	}
	// 3. Physical capacity.
	full := (n.lim.CapPackets > 0 && q.Len >= n.lim.CapPackets) ||
		(n.lim.CapBytes > 0 && q.Bytes+p.Size > n.lim.CapBytes)
	if full {
		n.cnt = 0
		return EnqueueVerdict{Drop: true}
	}
	// 4. The three bands.
	if n.avg < float64(n.cfg.MinTh) {
		n.cnt = -1
		return EnqueueVerdict{}
	}
	if n.avg >= float64(n.cfg.MaxTh) {
		n.cnt = 0
		return EnqueueVerdict{Drop: true, Early: true}
	}
	n.cnt++
	pb := n.maxP * (n.avg - float64(n.cfg.MinTh)) / float64(n.cfg.MaxTh-n.cfg.MinTh)
	pa := 1.0
	if cp := float64(n.cnt) * pb; cp < 1 {
		pa = pb / (1 - cp)
	}
	if n.rng.Float64() < pa {
		n.cnt = 0
		if n.cfg.ECN && p.ECT {
			return EnqueueVerdict{Mark: true}
		}
		return EnqueueVerdict{Drop: true, Early: true}
	}
	return EnqueueVerdict{}
}

// driveRED runs live and naive RED in lockstep over a randomized toy
// queue, with the verdicts feeding the queue state both sides see next.
func driveRED(t *testing.T, cfg REDConfig, lim Limits, seed int64, steps int) {
	t.Helper()
	live := newRED(cfg, lim)
	naive := newNaiveRED(cfg, lim)
	drv := rand.New(rand.NewSource(seed))
	var qLen, qBytes int
	now := sim.Time(0)
	for i := 0; i < steps; i++ {
		now = now.Add(time.Duration(drv.Intn(50)+1) * time.Microsecond)
		if drv.Intn(3) == 0 && qLen > 0 { // departure
			qLen--
			qBytes -= 1500
			continue
		}
		p := Pkt{Size: 1500, ECT: drv.Intn(2) == 0, Flow: uint64(drv.Intn(8))}
		st := State{Len: qLen, Bytes: qBytes}
		got := live.OnEnqueue(p, st, now)
		want := naive.onEnqueue(p, st, now)
		if got != want {
			t.Fatalf("seed %d step %d (avg=%.4f): live %+v != naive %+v",
				seed, i, naive.avg, got, want)
		}
		if lv := live.Stats().AvgQueue; math.Abs(lv-naive.avg) > 1e-12 {
			t.Fatalf("seed %d step %d: avg diverged: live %v naive %v", seed, i, lv, naive.avg)
		}
		if lv := live.Stats().MaxP; lv != naive.maxP {
			t.Fatalf("seed %d step %d: maxP diverged: live %v naive %v", seed, i, lv, naive.maxP)
		}
		if !got.Drop {
			qLen++
			qBytes += p.Size
		}
	}
}

func TestREDMatchesNaiveTranscription(t *testing.T) {
	lim := Limits{CapPackets: 40}
	for seed := int64(1); seed <= 20; seed++ {
		driveRED(t, REDConfig{MinTh: 5, MaxTh: 15, Seed: seed}, lim, seed, 2000)
	}
}

func TestREDECNMatchesNaiveTranscription(t *testing.T) {
	lim := Limits{CapPackets: 40}
	for seed := int64(1); seed <= 10; seed++ {
		driveRED(t, REDConfig{MinTh: 5, MaxTh: 15, ECN: true, Seed: seed}, lim, seed, 2000)
	}
}

func TestAREDMatchesNaiveTranscription(t *testing.T) {
	lim := Limits{CapPackets: 40}
	for seed := int64(1); seed <= 10; seed++ {
		driveRED(t, REDConfig{MinTh: 5, MaxTh: 15, Adaptive: true,
			AdaptInterval: 500 * time.Microsecond, Seed: seed}, lim, seed, 3000)
	}
}

// TestREDDropCurve pins the probability bands: a short queue never drops
// early, a saturated average always does.
func TestREDDropCurve(t *testing.T) {
	lim := Limits{CapPackets: 1000}
	r := newRED(REDConfig{MinTh: 5, MaxTh: 15, Wq: 0.5, Seed: 1}, lim)
	// Average stays ~1 << minTh: no early action ever.
	for i := 0; i < 100; i++ {
		if v := r.OnEnqueue(Pkt{Size: 1500}, State{Len: 1, Bytes: 1500}, sim.Time(i)); v.Drop || v.Mark {
			t.Fatalf("below MinTh: unexpected verdict %+v", v)
		}
	}
	// Drive the average far above maxTh: every arrival is a forced early
	// drop.
	for i := 0; i < 50; i++ {
		r.OnEnqueue(Pkt{Size: 1500}, State{Len: 500, Bytes: 500 * 1500}, sim.Time(1000+i))
	}
	v := r.OnEnqueue(Pkt{Size: 1500}, State{Len: 500, Bytes: 500 * 1500}, 2000)
	if !v.Drop || !v.Early {
		t.Fatalf("above MaxTh: want forced early drop, got %+v", v)
	}
}

// TestREDIdleDecay pins the idle-time estimator: a long silence shrinks
// the average toward zero instead of freezing it.
func TestREDIdleDecay(t *testing.T) {
	r := newRED(REDConfig{MinTh: 5, MaxTh: 15, Wq: 0.2, Seed: 1}, Limits{CapPackets: 100})
	for i := 0; i < 50; i++ {
		r.OnEnqueue(Pkt{Size: 1500}, State{Len: 10, Bytes: 10 * 1500}, sim.Time(i*1000))
	}
	before := r.Stats().AvgQueue
	r.OnEnqueue(Pkt{Size: 1500}, State{Len: 0, Bytes: 0}, sim.At(time.Second))
	after := r.Stats().AvgQueue
	if after >= before/10 {
		t.Fatalf("idle decay too weak: avg %v -> %v", before, after)
	}
}

// TestREDDeterminism: same seed, same verdict stream.
func TestREDDeterminism(t *testing.T) {
	run := func() []EnqueueVerdict {
		r := newRED(REDConfig{MinTh: 2, MaxTh: 8, Seed: 7}, Limits{CapPackets: 20})
		var out []EnqueueVerdict
		for i := 0; i < 500; i++ {
			out = append(out, r.OnEnqueue(Pkt{Size: 1500}, State{Len: i % 15, Bytes: (i % 15) * 1500}, sim.Time(i*10)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: %+v != %+v", i, a[i], b[i])
		}
	}
}
