package aqm

import (
	"math"
	"math/rand"
	"time"

	"tcptrim/internal/sim"
)

// REDConfig parameterizes Random Early Detection (Floyd & Jacobson 1993)
// with the optional adaptive max-probability of ARED (Floyd, Gummadi &
// Shenker 2001). All queue-length quantities are in packets. Zero-valued
// fields take defaults derived from the queue's limits.
type REDConfig struct {
	// Wq is the EWMA weight of the average-queue estimator (default
	// 0.002).
	Wq float64
	// MinTh / MaxTh bound the early-drop band (defaults CapPackets/6 and
	// CapPackets/2; 5 and 15 for an unlimited queue).
	MinTh, MaxTh int
	// MaxP is the drop probability at MaxTh (default 0.1); ARED adapts
	// it within [0.01, 0.5].
	MaxP float64
	// ECN makes in-band early "drops" CE-mark ECT packets instead of
	// discarding them; non-ECT packets and the forced region at or above
	// MaxTh still drop.
	ECN bool
	// Adaptive enables ARED's AIMD adjustment of MaxP toward keeping the
	// average queue centered in the band.
	Adaptive bool
	// AdaptInterval is the ARED adjustment period (default 10 ms — the
	// published 500 ms is tuned for WAN RTTs; data-center queues drain
	// three orders of magnitude faster).
	AdaptInterval time.Duration
	// MeanPktTime is the assumed per-packet transmission time used to
	// decay the average across idle periods (default 12 µs, one 1500 B
	// packet at 1 Gbps).
	MeanPktTime time.Duration
	// Seed drives the uniformization draw (default 1). Each queue builds
	// its own generator, so two queues sharing a config are independent
	// but deterministic.
	Seed int64
}

// withDefaults normalizes out-of-range parameters.
func (c REDConfig) withDefaults(lim Limits) REDConfig {
	if c.Wq <= 0 || c.Wq >= 1 {
		c.Wq = 0.002
	}
	if c.MinTh <= 0 {
		if lim.CapPackets > 0 {
			c.MinTh = lim.CapPackets / 6
		}
		if c.MinTh < 2 {
			c.MinTh = 5
		}
	}
	if c.MaxTh <= c.MinTh {
		if lim.CapPackets > 0 && lim.CapPackets/2 > c.MinTh {
			c.MaxTh = lim.CapPackets / 2
		} else {
			c.MaxTh = 3 * c.MinTh
		}
	}
	if c.MaxP <= 0 || c.MaxP > 1 {
		c.MaxP = 0.1
	}
	if c.AdaptInterval <= 0 {
		c.AdaptInterval = 10 * time.Millisecond
	}
	if c.MeanPktTime <= 0 {
		c.MeanPktTime = 12 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// red implements the discipline. The decision sequence per arrival is
// fixed (and mirrored by the test oracle):
//
//  1. update the EWMA: toward the instantaneous length when the queue is
//     backlogged, exponentially decayed by the idle time (in units of
//     MeanPktTime) when the packet finds the queue empty;
//  2. run the ARED adjustment if its interval elapsed;
//  3. enforce physical capacity (a tail drop, not an early drop);
//  4. avg < MinTh: admit, count ← −1;
//     avg ≥ MaxTh: forced early drop, count ← 0;
//     otherwise: count++, pb = MaxP·(avg−MinTh)/(MaxTh−MinTh),
//     pa = pb/(1−count·pb) (1 when count·pb ≥ 1); with probability pa
//     mark (ECN mode, ECT packet) or drop, count ← 0.
type red struct {
	cfg   REDConfig
	lim   Limits
	rng   *rand.Rand
	stats Stats

	avg         float64
	count       int
	hasArrival  bool
	lastArrival sim.Time
	nextAdapt   sim.Time
	maxP        float64
}

func newRED(cfg REDConfig, lim Limits) *red {
	cfg = cfg.withDefaults(lim)
	return &red{
		cfg:   cfg,
		lim:   lim,
		rng:   rand.New(rand.NewSource(cfg.Seed)), //nolint:gosec // simulation, not crypto
		count: -1,
		maxP:  cfg.MaxP,
	}
}

func (r *red) Name() string {
	if r.cfg.Adaptive {
		return "ared"
	}
	return "red"
}

func (r *red) OnEnqueue(p Pkt, q State, now sim.Time) EnqueueVerdict {
	r.updateAvg(q, now)
	if r.cfg.Adaptive && now >= r.nextAdapt {
		r.adapt()
		r.nextAdapt = now.Add(r.cfg.AdaptInterval)
	}
	if !r.lim.admits(p, q) {
		r.count = 0
		return EnqueueVerdict{Drop: true}
	}
	switch {
	case r.avg < float64(r.cfg.MinTh):
		r.count = -1
		return EnqueueVerdict{}
	case r.avg >= float64(r.cfg.MaxTh):
		r.count = 0
		r.stats.EarlyDrops++
		return EnqueueVerdict{Drop: true, Early: true}
	}
	r.count++
	pb := r.maxP * (r.avg - float64(r.cfg.MinTh)) / float64(r.cfg.MaxTh-r.cfg.MinTh)
	pa := 1.0
	if cp := float64(r.count) * pb; cp < 1 {
		pa = pb / (1 - cp)
	}
	if r.rng.Float64() < pa {
		r.count = 0
		if r.cfg.ECN && p.ECT {
			r.stats.Marks++
			return EnqueueVerdict{Mark: true}
		}
		r.stats.EarlyDrops++
		return EnqueueVerdict{Drop: true, Early: true}
	}
	return EnqueueVerdict{}
}

// updateAvg advances the EWMA for one arrival that finds occupancy q.
func (r *red) updateAvg(q State, now sim.Time) {
	if q.Len == 0 && r.hasArrival {
		// Idle decay: the estimator would have seen ~m empty samples had
		// packets kept arriving every MeanPktTime.
		m := float64(now.Sub(r.lastArrival)) / float64(r.cfg.MeanPktTime)
		if m > 0 {
			r.avg *= math.Pow(1-r.cfg.Wq, m)
		}
	} else {
		r.avg = (1-r.cfg.Wq)*r.avg + r.cfg.Wq*float64(q.Len)
	}
	r.hasArrival = true
	r.lastArrival = now
}

// adapt is ARED's AIMD step: nudge maxP up when the average sits above
// the band's upper target, decay it when below the lower target.
func (r *red) adapt() {
	band := float64(r.cfg.MaxTh - r.cfg.MinTh)
	low := float64(r.cfg.MinTh) + 0.4*band
	high := float64(r.cfg.MinTh) + 0.6*band
	switch {
	case r.avg > high && r.maxP < 0.5:
		add := 0.01
		if q := r.maxP / 4; q < add {
			add = q
		}
		r.maxP += add
		if r.maxP > 0.5 {
			r.maxP = 0.5
		}
	case r.avg < low && r.maxP > 0.01:
		r.maxP *= 0.9
		if r.maxP < 0.01 {
			r.maxP = 0.01
		}
	}
}

func (r *red) OnDequeue(Pkt, time.Duration, State, sim.Time) DequeueVerdict {
	return DequeueVerdict{}
}

func (r *red) OnRemove(Pkt) {}

func (r *red) Stats() Stats {
	s := r.stats
	s.AvgQueue = r.avg
	s.MaxP = r.maxP
	return s
}
