// Package cellcache is the content-addressed memoization store for
// individual experiment cells. A sweep runner decomposes its matrix into
// machine-independent cell specs (runner family, cell coordinates, the
// cell's SplitSeed-derived seed); each cell's result is keyed by a
// SHA-256 over the canonical spec and the code version and stored as the
// result struct's JSON encoding.
//
// The cache is sound because the simulator underneath is deterministic:
// a cell is a pure function of its spec — worker count, shard count, and
// Progress hooks provably never change results (the differential
// *ShardInvariant test family pins this), so none of them appear in the
// key. Go's JSON encoding round-trips float64 and int64 values exactly
// (shortest-representation floats, full-precision integers), so a row
// decoded from the cache renders byte-identically to one just computed.
//
// The same store backs both the batch path (trimsim -cache) and the
// experiment service (trimsvc), whose run-level cache becomes a
// composition of cell hits on a warm store.
package cellcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
)

// Key returns the content address of one cell result: a hex SHA-256 over
// the canonical cell spec (its JSON encoding — struct order, zero values
// omitted where tagged) and the code version. Any code change rolls the
// version and so invalidates every cached cell.
func Key(spec any, codeVersion string) string {
	b, err := json.Marshal(spec)
	if err != nil {
		// Cell specs are structs of scalars and strings; failing to
		// marshal one is a programming error, not a runtime condition.
		panic(fmt.Sprintf("cellcache: unmarshalable cell spec %T: %v", spec, err))
	}
	h := sha256.New()
	h.Write(b)
	h.Write([]byte{0})
	h.Write([]byte(codeVersion))
	return hex.EncodeToString(h.Sum(nil))
}

// CodeVersion identifies the running simulator build for cache keying:
// the VCS revision stamped into the binary (plus a dirty marker for
// modified trees), or "dev" when no build info is embedded (go test,
// unstamped `go build` / `go run` trees). "dev" results are still sound
// within one process — an in-memory store dies with it — but a
// persistent cache directory shared across differing "dev" builds would
// be unsound; see ValidatePersistent.
func CodeVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev, modified string
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			if kv.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	if rev == "" {
		return "dev"
	}
	return rev + modified
}

// ValidatePersistent is the refusal rule both trimsim -cache and trimsvc
// -cache share: a persistent cache directory needs a stamped, clean code
// version, because two different "dev" (or dirty) builds writing the
// same key could disagree about its value. force overrides the refusal
// for users who know their tree is stable (iterating on experiment
// parameters without touching simulator code).
func ValidatePersistent(codeVersion string, force bool) error {
	if force {
		return nil
	}
	if codeVersion == "dev" {
		return fmt.Errorf("cellcache: this build has no stamped VCS revision (built from " +
			"an unpacked tree or via go run/go test), so a persistent cache directory " +
			"cannot be validated against the code that fills it; commit and rebuild, " +
			"or force with -cache-force if the tree is stable")
	}
	if strings.HasSuffix(codeVersion, "+dirty") {
		return fmt.Errorf("cellcache: this build came from a modified tree (%s) — every "+
			"dirty build at this revision shares that version string regardless of what "+
			"was modified, so a persistent cache directory cannot tell their results "+
			"apart; commit and rebuild, or force with -cache-force if the tree is stable",
			codeVersion)
	}
	return nil
}

// DefaultMemLimit bounds the in-memory tier of a store: beyond it the
// least recently used payloads are evicted (they remain on disk when the
// store is persistent). Cell payloads are small JSON rows — a few
// hundred bytes to a few hundred KB for series-bearing results — so the
// default comfortably holds every sweep in the repo.
const DefaultMemLimit = 64 << 20

// Store is a two-tier content-addressed store: an in-memory LRU over
// JSON payloads, optionally backed by a directory where every payload is
// written as it arrives (named by its key, atomically renamed into
// place, so a crash never leaves a torn result). All methods are safe
// for concurrent use — sweep cells resolve from parallel trial workers.
type Store struct {
	mu      sync.Mutex
	dir     string // "" = memory only
	memCap  int64
	memUsed int64
	lru     *list.List // front = most recently used
	mem     map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

// lruEntry is one in-memory payload.
type lruEntry struct {
	key     string
	payload []byte
}

// Open returns a store persisting under dir; dir == "" keeps results in
// memory only.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, memCap: DefaultMemLimit,
		lru: list.New(), mem: map[string]*list.Element{}}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cellcache: cache dir: %w", err)
	}
	return s, nil
}

// NewMemory returns a memory-only store (a persistent store with no
// directory).
func NewMemory() *Store {
	s, _ := Open("")
	return s
}

// SetMemLimit adjusts the in-memory tier's byte budget (0 or negative
// disables in-memory retention entirely; disk-backed stores then read
// every hit from disk).
func (s *Store) SetMemLimit(bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.memCap = bytes
	s.evictLocked()
}

// Dir returns the persistence directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// path is the on-disk location of one cell payload.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".cell")
}

// Get returns the payload cached under key, if any, and counts the
// lookup as a hit or a miss. Callers must not mutate the returned slice.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.mem[key]; ok {
		s.lru.MoveToFront(el)
		payload := el.Value.(*lruEntry).payload
		s.mu.Unlock()
		s.hits.Add(1)
		return payload, true
	}
	s.mu.Unlock()
	if s.dir != "" {
		if payload, err := os.ReadFile(s.path(key)); err == nil {
			s.mu.Lock()
			s.insertLocked(key, payload)
			s.mu.Unlock()
			s.hits.Add(1)
			return payload, true
		}
	}
	s.misses.Add(1)
	return nil, false
}

// Put stores a payload under key: into the memory tier, and — for
// persistent stores — onto disk immediately (tmp file renamed into
// place, so concurrent readers never observe a torn write).
func (s *Store) Put(key string, payload []byte) error {
	s.mu.Lock()
	s.insertLocked(key, payload)
	s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	tmp := s.path(key) + ".tmp"
	if err := os.WriteFile(tmp, payload, 0o644); err != nil {
		return fmt.Errorf("cellcache: write: %w", err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		return fmt.Errorf("cellcache: write: %w", err)
	}
	return nil
}

// insertLocked adds or refreshes a memory-tier entry and evicts down to
// the budget. Caller holds s.mu.
func (s *Store) insertLocked(key string, payload []byte) {
	if el, ok := s.mem[key]; ok {
		e := el.Value.(*lruEntry)
		s.memUsed += int64(len(payload)) - int64(len(e.payload))
		e.payload = payload
		s.lru.MoveToFront(el)
	} else {
		s.mem[key] = s.lru.PushFront(&lruEntry{key: key, payload: payload})
		s.memUsed += int64(len(payload))
	}
	s.evictLocked()
}

// evictLocked drops least recently used entries until the memory tier
// fits its budget. Caller holds s.mu.
func (s *Store) evictLocked() {
	for s.memUsed > s.memCap {
		el := s.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*lruEntry)
		s.lru.Remove(el)
		delete(s.mem, e.key)
		s.memUsed -= int64(len(e.payload))
	}
}

// Len reports how many payloads the memory tier currently holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Hits returns how many Gets found a payload. On a warm sweep re-run
// this equals the number of cells reassembled from cache.
func (s *Store) Hits() int64 { return s.hits.Load() }

// Misses returns how many Gets came up empty. On a warm sweep re-run
// this equals the number of cells that actually simulated — the
// only-changed-cells assertions in the tests and /v1/stats both read it.
func (s *Store) Misses() int64 { return s.misses.Load() }

// ResetStats zeroes the hit/miss counters (payloads are kept).
func (s *Store) ResetStats() {
	s.hits.Store(0)
	s.misses.Store(0)
}
