package cellcache

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestKeyDeterministicAndSensitive(t *testing.T) {
	type spec struct {
		Family      string `json:"family"`
		Concurrency int    `json:"concurrency"`
		Seed        int64  `json:"seed"`
	}
	base := Key(spec{"aqmsweep", 10, 1}, "v1")
	if again := Key(spec{"aqmsweep", 10, 1}, "v1"); again != base {
		t.Fatalf("same spec hashed twice: %s vs %s", base, again)
	}
	if len(base) != 64 {
		t.Fatalf("key %q is not a hex sha256", base)
	}
	for name, other := range map[string]string{
		"family":       Key(spec{"recoverysweep", 10, 1}, "v1"),
		"concurrency":  Key(spec{"aqmsweep", 40, 1}, "v1"),
		"seed":         Key(spec{"aqmsweep", 10, 2}, "v1"),
		"code version": Key(spec{"aqmsweep", 10, 1}, "v2"),
	} {
		if other == base {
			t.Errorf("changing the %s did not change the key", name)
		}
	}
}

func TestKeyPanicsOnUnmarshalableSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Key accepted a spec json.Marshal cannot encode")
		}
	}()
	Key(map[string]any{"f": func() {}}, "v1")
}

func TestStoreMemoryTier(t *testing.T) {
	s := NewMemory()
	if _, ok := s.Get("k"); ok {
		t.Fatal("empty store returned a payload")
	}
	if s.Misses() != 1 {
		t.Fatalf("misses = %d after one empty Get, want 1", s.Misses())
	}
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Get after Put = %q, %v", got, ok)
	}
	if s.Hits() != 1 || s.Len() != 1 {
		t.Fatalf("hits=%d len=%d, want 1, 1", s.Hits(), s.Len())
	}
	s.ResetStats()
	if s.Hits() != 0 || s.Misses() != 0 {
		t.Fatal("ResetStats left counters nonzero")
	}
}

func TestStoreDiskTierSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("deadbeef", []byte("row")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "deadbeef.cell")); err != nil {
		t.Fatalf("payload not on disk: %v", err)
	}
	// A fresh store over the same directory (new process) must serve the
	// payload from disk and count it as a hit.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("deadbeef")
	if !ok || string(got) != "row" {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
	if s2.Hits() != 1 {
		t.Fatalf("reopened hits = %d, want 1", s2.Hits())
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewMemory()
	s.SetMemLimit(10)
	if err := s.Put("a", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	// Touch a so b is the LRU victim when c overflows the budget.
	if _, ok := s.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	if err := s.Put("c", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("LRU entry b survived past the memory budget")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}

	// A disk-backed store refills evicted entries from disk.
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.SetMemLimit(4)
	if err := d.Put("x", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("oversized payload retained in memory (len=%d)", d.Len())
	}
	if got, ok := d.Get("x"); !ok || string(got) != "12345" {
		t.Fatalf("disk refill Get = %q, %v", got, ok)
	}
}

func TestValidatePersistent(t *testing.T) {
	if err := ValidatePersistent("dev", false); err == nil {
		t.Fatal("dev build accepted for a persistent cache without force")
	} else if !strings.Contains(err.Error(), "-cache-force") {
		t.Fatalf("refusal does not name the override flag: %v", err)
	}
	if err := ValidatePersistent("dev", true); err != nil {
		t.Fatalf("forced dev build refused: %v", err)
	}
	if err := ValidatePersistent("abc123+dirty", false); err == nil {
		t.Fatal("dirty-tree build accepted for a persistent cache without force")
	} else if !strings.Contains(err.Error(), "-cache-force") {
		t.Fatalf("dirty refusal does not name the override flag: %v", err)
	}
	if err := ValidatePersistent("abc123+dirty", true); err != nil {
		t.Fatalf("forced dirty build refused: %v", err)
	}
	if err := ValidatePersistent("abc123", false); err != nil {
		t.Fatalf("stamped build refused: %v", err)
	}
}

func TestCodeVersionNonEmpty(t *testing.T) {
	// Under `go test` there is no vcs stamp, so this exercises the "dev"
	// fallback; the contract is only that the version is never empty.
	if CodeVersion() == "" {
		t.Fatal("CodeVersion() returned an empty string")
	}
}
