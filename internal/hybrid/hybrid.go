// Package hybrid is the million-connection scale layer: a fleet of
// persistent HTTP connections that can run at two fidelities. Packet
// fidelity materializes every connection up front (delegating to
// httpapp.Fleet — the historical shape, byte for byte). Hybrid fidelity
// keeps each connection as a few-dozen-byte record in a struct-of-arrays
// flow store while it is OFF, advancing the whole idle population in one
// chained synchronization event per epoch, and drops to packet level
// only for connections with an ON train: a release materializes the flow
// into a real tcp.Conn (arena-backed hot state, congestion window and
// RTT estimator inherited from the store — TRIM's cross-train window
// inheritance intact), and a per-epoch sweep detaches connections that
// have gone quiescent back into the store. Small-scale runs are
// byte-identical across fidelities; the differential tests in
// internal/experiment prove it per figure.
package hybrid

import (
	"fmt"
	"sort"
	"time"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// Fidelity selects how a fleet simulates its connections.
type Fidelity string

const (
	// FidelityPacket materializes every connection at setup; every
	// segment of every flow is simulated. The historical default.
	FidelityPacket Fidelity = "packet"
	// FidelityHybrid keeps OFF-period connections as compact flow-store
	// records and simulates packets only for connections with an active
	// train.
	FidelityHybrid Fidelity = "hybrid"
)

// ParseFidelity resolves a fidelity name; empty means packet.
func ParseFidelity(s string) (Fidelity, error) {
	switch Fidelity(s) {
	case "", FidelityPacket:
		return FidelityPacket, nil
	case FidelityHybrid:
		return FidelityHybrid, nil
	}
	return "", fmt.Errorf("hybrid: unknown fidelity %q (known: %s, %s)",
		s, FidelityPacket, FidelityHybrid)
}

// Names returns the accepted fidelity names.
func Names() []string { return []string{string(FidelityPacket), string(FidelityHybrid)} }

// Syncer schedules a callback as a global synchronization point: every
// shard quiesced at exactly the callback's instant, cross-shard reads
// and writes legal. sim.ShardGroup implements it; a nil Syncer means the
// fleet runs on a sequential scheduler and plain At suffices.
type Syncer interface {
	SyncAt(s *sim.Scheduler, t sim.Time, fn func()) (sim.Timer, error)
}

// DefaultEpoch is the hybrid demote-sweep period: how long a quiescent
// connection may stay materialized past its last event before the sweep
// folds it back into the flow store.
const DefaultEpoch = 10 * time.Millisecond

// FleetConfig configures NewFleet. Senders, FrontEnd, NewCC,
// NewRecovery, Base, FirstFlow, and LabelPrefix mean exactly what they
// mean on httpapp.FleetConfig.
type FleetConfig struct {
	Senders []*netsim.Host
	// ConnsPerSender opens that many flows per sender host; 0 means 1.
	ConnsPerSender int
	FrontEnd       *netsim.Host
	NewCC          func() tcp.CongestionControl
	NewRecovery    func() tcp.RecoveryPolicy
	Base           tcp.Config
	FirstFlow      netsim.FlowID
	LabelPrefix    string
	// Fidelity selects the simulation mode; empty means packet.
	Fidelity Fidelity
	// Sync provides global sync points under sharding (pass the
	// sim.ShardGroup); nil means the network runs on one sequential
	// scheduler. Hybrid fidelity requires it to match the network: all
	// materialize/demote transitions run inside sync events because they
	// mutate the (shard-0) front-end stack's flow table.
	Sync Syncer
	// Epoch is the demote-sweep period; 0 means DefaultEpoch.
	Epoch time.Duration
}

// releaseKind discriminates timeline entries.
const (
	relResponse = uint8(iota)
	relBackground
	relConn
)

// release is one deferred ON event of a flow.
type release struct {
	at    sim.Time
	flow  int32
	bytes int
	kind  uint8
	label string
	coll  *httpapp.Collector
	fn    func(*tcp.Conn)
}

// flowStore is the struct-of-arrays compact state: one slot per flow,
// valid when the saved flag is set (the flow has been materialized and
// detached at least once). Fields mirror tcp.SavedState; splitting them
// into parallel arrays keeps the hot ones (offset, cwnd) contiguous for
// the sweep and total-delivered scans and costs nothing for fields a
// given experiment never touches.
type flowStore struct {
	offset     []int64
	cwnd       []float64
	ssthresh   []float64
	srtt       []time.Duration
	rttvar     []time.Duration
	lastRTOAt  []sim.Time
	lastSendAt []sim.Time
	nextPkt    []uint64
	nextAck    []uint64
	backoff    []int32
	sackRotate []int32
	flags      []uint8
	stats      []tcp.Stats
}

const (
	flagSaved = uint8(1 << iota)
	flagHasSent
	flagRcvCE
)

func newFlowStore(n int) *flowStore {
	return &flowStore{
		offset:     make([]int64, n),
		cwnd:       make([]float64, n),
		ssthresh:   make([]float64, n),
		srtt:       make([]time.Duration, n),
		rttvar:     make([]time.Duration, n),
		lastRTOAt:  make([]sim.Time, n),
		lastSendAt: make([]sim.Time, n),
		nextPkt:    make([]uint64, n),
		nextAck:    make([]uint64, n),
		backoff:    make([]int32, n),
		sackRotate: make([]int32, n),
		flags:      make([]uint8, n),
		stats:      make([]tcp.Stats, n),
	}
}

func (s *flowStore) saved(i int32) bool { return s.flags[i]&flagSaved != 0 }

func (s *flowStore) save(i int32, st tcp.SavedState) {
	s.offset[i] = st.Offset
	s.cwnd[i] = st.Cwnd
	s.ssthresh[i] = st.Ssthresh
	s.srtt[i] = st.SRTT
	s.rttvar[i] = st.RTTVar
	s.lastRTOAt[i] = st.LastRTOAt
	s.lastSendAt[i] = st.LastSendAt
	s.nextPkt[i] = st.NextPkt
	s.nextAck[i] = st.NextAck
	s.backoff[i] = int32(st.Backoff)
	s.sackRotate[i] = int32(st.SackRotate)
	flags := flagSaved
	if st.HasSent {
		flags |= flagHasSent
	}
	if st.RcvCE {
		flags |= flagRcvCE
	}
	s.flags[i] = flags
	s.stats[i] = st.Stats
}

func (s *flowStore) load(i int32) tcp.SavedState {
	return tcp.SavedState{
		Offset:     s.offset[i],
		Cwnd:       s.cwnd[i],
		Ssthresh:   s.ssthresh[i],
		SRTT:       s.srtt[i],
		RTTVar:     s.rttvar[i],
		Backoff:    int(s.backoff[i]),
		LastRTOAt:  s.lastRTOAt[i],
		HasSent:    s.flags[i]&flagHasSent != 0,
		LastSendAt: s.lastSendAt[i],
		SackRotate: int(s.sackRotate[i]),
		RcvCE:      s.flags[i]&flagRcvCE != 0,
		NextPkt:    s.nextPkt[i],
		NextAck:    s.nextAck[i],
		Stats:      s.stats[i],
	}
}

// Fleet is a group of persistent connections from sender hosts to one
// front-end, at either fidelity. The scheduling API is the same in both
// modes, so a runner written against Fleet honors a fidelity option with
// no further changes; accessors (Cwnd, Stats, DeliveredBytes) resolve
// through the live connection or the flow store transparently.
type Fleet struct {
	cfg   FleetConfig
	mode  Fidelity
	epoch time.Duration

	// Packet fidelity.
	pkt *httpapp.Fleet

	// Hybrid fidelity.
	net      *netsim.Network
	frontEnd *tcp.Stack
	stacks   []*tcp.Stack // one per sender host
	per      int          // flows per sender
	drv      *sim.Scheduler
	coll     *httpapp.Collector
	store    *flowStore
	conns    []*tcp.Conn             // non-nil while materialized
	ccs      []tcp.CongestionControl // persistent per-flow policy
	recs     []tcp.RecoveryPolicy    // persistent per-flow policy
	arenas   []*tcp.Arena            // per shard
	live     [][]int32               // per shard: materialized flows
	initCwnd float64                 // resolved Base.InitialCwnd

	timeline  []release
	nextRel   int
	armed     bool
	liveCount int
	peakLive  int
	firstErr  error
}

// NewFleet builds the fleet. In packet fidelity every connection exists
// on return; in hybrid fidelity no connection exists until its first
// release fires.
func NewFleet(net *netsim.Network, cfg FleetConfig) (*Fleet, error) {
	mode, err := ParseFidelity(string(cfg.Fidelity))
	if err != nil {
		return nil, err
	}
	if cfg.FrontEnd == nil {
		return nil, fmt.Errorf("hybrid: front end required")
	}
	if cfg.LabelPrefix == "" {
		cfg.LabelPrefix = "server"
	}
	if cfg.FirstFlow == 0 {
		cfg.FirstFlow = 1
	}
	f := &Fleet{cfg: cfg, mode: mode, epoch: cfg.Epoch}
	if f.epoch <= 0 {
		f.epoch = DefaultEpoch
	}
	if mode == FidelityPacket {
		f.pkt, err = httpapp.NewFleet(net, httpapp.FleetConfig{
			Senders:        cfg.Senders,
			ConnsPerSender: cfg.ConnsPerSender,
			FrontEnd:       cfg.FrontEnd,
			NewCC:          cfg.NewCC,
			NewRecovery:    cfg.NewRecovery,
			Base:           cfg.Base,
			FirstFlow:      cfg.FirstFlow,
			LabelPrefix:    cfg.LabelPrefix,
		})
		return f, err
	}

	f.per = cfg.ConnsPerSender
	if f.per <= 0 {
		f.per = 1
	}
	n := len(cfg.Senders) * f.per
	f.net = net
	f.frontEnd = tcp.NewStack(net, cfg.FrontEnd)
	f.drv = cfg.FrontEnd.Scheduler()
	f.stacks = make([]*tcp.Stack, len(cfg.Senders))
	for i, h := range cfg.Senders {
		f.stacks[i] = tcp.NewStack(net, h)
	}
	f.coll = &httpapp.Collector{}
	f.store = newFlowStore(n)
	f.conns = make([]*tcp.Conn, n)
	f.ccs = make([]tcp.CongestionControl, n)
	f.recs = make([]tcp.RecoveryPolicy, n)
	f.initCwnd = cfg.Base.InitialCwnd
	if f.initCwnd == 0 {
		f.initCwnd = tcp.DefaultInitCwnd
	}
	// Pre-grow collector buckets and live lists for every sender shard
	// (single-threaded setup; parallel callbacks only index).
	for i := range f.stacks {
		sh := f.shardOfStack(i)
		for len(f.live) <= sh {
			f.live = append(f.live, nil)
		}
		f.coll.Reserve(sh)
	}
	return f, nil
}

// Fidelity returns the fleet's simulation mode.
func (f *Fleet) Fidelity() Fidelity { return f.mode }

// NumFlows returns the number of logical connections.
func (f *Fleet) NumFlows() int {
	if f.pkt != nil {
		return len(f.pkt.Conns)
	}
	return len(f.conns)
}

// Collector returns the fleet's default completion collector.
func (f *Fleet) Collector() *httpapp.Collector {
	if f.pkt != nil {
		return f.pkt.Collector
	}
	return f.coll
}

// shardOfStack returns the shard index of sender stack i.
func (f *Fleet) shardOfStack(i int) int {
	return f.stacks[i].Host().Scheduler().ShardIndex()
}

// stackOf returns the sender-stack index owning flow i.
func (f *Fleet) stackOf(i int32) int { return int(i) / f.per }

// label returns flow i's default collector label.
func (f *Fleet) label(i int) string {
	return fmt.Sprintf("%s%d", f.cfg.LabelPrefix, i+1)
}

// checkFlow validates a flow index.
func (f *Fleet) checkFlow(i int) error {
	if i < 0 || i >= f.NumFlows() {
		return fmt.Errorf("hybrid: flow %d out of range [0, %d)", i, f.NumFlows())
	}
	return nil
}

// ScheduleResponse releases a response on flow i at the given instant,
// reporting completion to the fleet's collector under the flow's default
// label.
func (f *Fleet) ScheduleResponse(i int, at sim.Time, bytes int) error {
	if err := f.checkFlow(i); err != nil {
		return err
	}
	if f.pkt != nil {
		return f.pkt.Servers[i].ScheduleResponse(at, bytes)
	}
	return f.ScheduleResponseAs(i, at, bytes, f.label(i), f.coll)
}

// ScheduleResponseAs is ScheduleResponse with an explicit label and
// collector (the large-scale runner's separate measured-SPT collector).
func (f *Fleet) ScheduleResponseAs(i int, at sim.Time, bytes int, label string, coll *httpapp.Collector) error {
	if err := f.checkFlow(i); err != nil {
		return err
	}
	if f.pkt != nil {
		conn := f.pkt.Conns[i]
		srv := httpapp.NewServer(conn.Scheduler(), conn, label, coll)
		return srv.ScheduleResponse(at, bytes)
	}
	if f.armed {
		return fmt.Errorf("hybrid: schedule after Arm")
	}
	coll.NoteScheduled(f.shardOfStack(f.stackOf(int32(i))))
	f.timeline = append(f.timeline, release{
		at: at, flow: int32(i), bytes: bytes, kind: relResponse,
		label: label, coll: coll,
	})
	return nil
}

// StartBackgroundFlow releases an effectively endless train on flow i:
// completion is not collected (measure by throughput). The flow stays
// materialized for as long as the train runs.
func (f *Fleet) StartBackgroundFlow(i int, at sim.Time, bytes int) error {
	if err := f.checkFlow(i); err != nil {
		return err
	}
	if f.pkt != nil {
		return f.pkt.Servers[i].StartBackgroundFlow(at, bytes)
	}
	if f.armed {
		return fmt.Errorf("hybrid: schedule after Arm")
	}
	f.timeline = append(f.timeline, release{
		at: at, flow: int32(i), bytes: bytes, kind: relBackground,
	})
	return nil
}

// ScheduleConnAt runs fn against flow i's live connection at the given
// instant, materializing it first in hybrid mode (the impairment
// runner's window snapshot + long-train release).
func (f *Fleet) ScheduleConnAt(i int, at sim.Time, fn func(*tcp.Conn)) error {
	if err := f.checkFlow(i); err != nil {
		return err
	}
	if f.pkt != nil {
		conn := f.pkt.Conns[i]
		_, err := conn.Scheduler().At(at, func() { fn(conn) })
		return err
	}
	if f.armed {
		return fmt.Errorf("hybrid: schedule after Arm")
	}
	f.timeline = append(f.timeline, release{at: at, flow: int32(i), kind: relConn, fn: fn})
	return nil
}

// Arm finalizes the hybrid release timeline and starts the sync-event
// driver. Call exactly once, after all scheduling and before the run; in
// packet mode it is a no-op.
func (f *Fleet) Arm() error {
	if f.pkt != nil {
		return nil
	}
	if f.armed {
		return fmt.Errorf("hybrid: Arm called twice")
	}
	f.armed = true
	// Stable by release instant: equal-instant releases keep their
	// scheduling order, which is exactly the event-insertion order the
	// packet fidelity would have used.
	sort.SliceStable(f.timeline, func(a, b int) bool { return f.timeline[a].at < f.timeline[b].at })
	if len(f.timeline) == 0 {
		return nil
	}
	return f.syncAt(f.timeline[0].at, f.step)
}

// syncAt schedules fn at t as a global sync point (plain event when the
// network is unsharded).
func (f *Fleet) syncAt(t sim.Time, fn func()) error {
	if f.cfg.Sync != nil {
		_, err := f.cfg.Sync.SyncAt(f.drv, t, fn)
		return err
	}
	_, err := f.drv.At(t, fn)
	return err
}

// step is the chained driver: demote-sweep, fire due releases, re-arm at
// the next release or epoch tick — one sync event in flight at any time,
// so the group's sync registry stays O(1) regardless of timeline length.
func (f *Fleet) step() {
	now := f.drv.Now()
	f.sweep()
	for f.nextRel < len(f.timeline) && f.timeline[f.nextRel].at <= now {
		f.fire(&f.timeline[f.nextRel])
		f.nextRel++
	}
	next := sim.End
	if f.nextRel < len(f.timeline) {
		next = f.timeline[f.nextRel].at
	}
	if f.liveCount > 0 {
		if et := now.Add(f.epoch); et < next {
			next = et
		}
	}
	if next == sim.End {
		// Nothing materialized and no release pending: the fleet is
		// fully folded into the store and the chain ends.
		return
	}
	if err := f.syncAt(next, f.step); err != nil && f.firstErr == nil {
		f.firstErr = err
	}
}

// sweep detaches every quiescent materialized connection into the flow
// store. Runs inside a sync event: every shard is halted, so detaching
// (which unregisters from the shard-0 front-end stack) is safe.
func (f *Fleet) sweep() {
	for sh := range f.live {
		list := f.live[sh]
		kept := list[:0]
		for _, i := range list {
			c := f.conns[i]
			if !c.Quiescent() {
				kept = append(kept, i)
				continue
			}
			st, err := c.Detach()
			if err != nil {
				if f.firstErr == nil {
					f.firstErr = fmt.Errorf("hybrid: demote flow %d: %w", i, err)
				}
				kept = append(kept, i)
				continue
			}
			f.store.save(i, st)
			f.conns[i] = nil
			f.liveCount--
		}
		f.live[sh] = kept
	}
}

// fire materializes a release's flow and starts its train.
func (f *Fleet) fire(r *release) {
	c, err := f.materialize(r.flow)
	if err != nil {
		if f.firstErr == nil {
			f.firstErr = fmt.Errorf("hybrid: release flow %d at %v: %w", r.flow, r.at, err)
		}
		return
	}
	switch r.kind {
	case relConn:
		r.fn(c)
	case relBackground:
		c.SendTrain(r.bytes, nil)
	default:
		sh := f.shardOfStack(f.stackOf(r.flow))
		coll, label, bytes := r.coll, r.label, r.bytes
		c.SendTrain(bytes, func(res tcp.TrainResult) {
			coll.Record(sh, label, bytes, res)
		})
	}
}

// materialize returns flow i's live connection, creating it from the
// store (or from scratch on first release) if needed. Runs inside sync
// events only.
func (f *Fleet) materialize(i int32) (*tcp.Conn, error) {
	if c := f.conns[i]; c != nil {
		return c, nil
	}
	cfg := f.cfg.Base
	si := f.stackOf(i)
	cfg.Sender = f.stacks[si]
	cfg.Receiver = f.frontEnd
	cfg.Flow = f.cfg.FirstFlow + netsim.FlowID(i)
	sh := f.shardOfStack(si)
	cfg.Arena = f.arena(sh)
	if f.ccs[i] == nil && f.cfg.NewCC != nil {
		f.ccs[i] = f.cfg.NewCC()
	}
	if f.ccs[i] != nil {
		cfg.CC = f.ccs[i]
	}
	if f.recs[i] == nil && f.cfg.NewRecovery != nil {
		f.recs[i] = f.cfg.NewRecovery()
	}
	if f.recs[i] != nil {
		cfg.Recovery = f.recs[i]
	}
	var st tcp.SavedState
	if f.store.saved(i) {
		st = f.store.load(i)
		cfg.Restore = &st
	}
	c, err := tcp.NewConn(cfg)
	if err != nil {
		return nil, err
	}
	// Capture the defaulted policies so the flow's next life reuses the
	// same objects (window inheritance lives in them, not the config).
	f.ccs[i] = c.CC()
	f.recs[i] = c.Recovery()
	f.conns[i] = c
	f.live[sh] = append(f.live[sh], i)
	f.liveCount++
	if f.liveCount > f.peakLive {
		f.peakLive = f.liveCount
	}
	return c, nil
}

// arena returns shard sh's connection arena, creating it on first use.
func (f *Fleet) arena(sh int) *tcp.Arena {
	for len(f.arenas) <= sh {
		f.arenas = append(f.arenas, nil)
	}
	if f.arenas[sh] == nil {
		f.arenas[sh] = tcp.NewArena()
	}
	return f.arenas[sh]
}

// Err returns the first asynchronous error the driver hit (a failed
// materialize or re-arm); runners check it after the run.
func (f *Fleet) Err() error { return f.firstErr }

// Live returns the number of currently materialized connections
// (NumFlows in packet mode).
func (f *Fleet) Live() int {
	if f.pkt != nil {
		return len(f.pkt.Conns)
	}
	return f.liveCount
}

// PeakLive returns the high-water mark of simultaneously materialized
// connections (NumFlows in packet mode).
func (f *Fleet) PeakLive() int {
	if f.pkt != nil {
		return len(f.pkt.Conns)
	}
	return f.peakLive
}

// ArenaCap returns the total hot-state slots ever allocated across the
// sender-shard arenas — the materialized-connection high-water mark as
// the arena saw it. Zero in packet mode, where connections use
// standalone hot state.
func (f *Fleet) ArenaCap() int {
	n := 0
	for _, a := range f.arenas {
		if a != nil {
			n += a.Cap()
		}
	}
	return n
}

// SchedulerOf returns the scheduler owning flow i's sender-side state
// (for samplers that must live on the sender's shard).
func (f *Fleet) SchedulerOf(i int) *sim.Scheduler {
	if f.pkt != nil {
		return f.pkt.Conns[i].Scheduler()
	}
	return f.stacks[f.stackOf(int32(i))].Host().Scheduler()
}

// Cwnd returns flow i's congestion window in segments: the live value
// when materialized, the inherited store value when folded, the initial
// window before the first release. A demoted flow's window cannot change
// while OFF, so the three sources agree with what packet fidelity would
// report.
func (f *Fleet) Cwnd(i int) float64 {
	if f.pkt != nil {
		return f.pkt.Conns[i].Cwnd()
	}
	if c := f.conns[i]; c != nil {
		return c.Cwnd()
	}
	if f.store.saved(int32(i)) {
		return f.store.cwnd[i]
	}
	return f.initCwnd
}

// DeliveredBytes returns flow i's receiver-side delivered byte count.
func (f *Fleet) DeliveredBytes(i int) int64 {
	if f.pkt != nil {
		return f.pkt.Conns[i].DeliveredBytes()
	}
	if c := f.conns[i]; c != nil {
		return c.DeliveredBytes()
	}
	return f.store.offset[i]
}

// TotalDelivered sums delivered bytes across all flows.
func (f *Fleet) TotalDelivered() int64 {
	if f.pkt != nil {
		return f.pkt.TotalDelivered()
	}
	var total int64
	for i := range f.conns {
		if c := f.conns[i]; c != nil {
			total += c.DeliveredBytes()
		} else {
			total += f.store.offset[i]
		}
	}
	return total
}

// Stats returns flow i's lifetime counters (live or folded).
func (f *Fleet) Stats(i int) tcp.Stats {
	if f.pkt != nil {
		return f.pkt.Conns[i].Stats()
	}
	if c := f.conns[i]; c != nil {
		return c.Stats()
	}
	return f.store.stats[i]
}

// TotalTimeouts sums TCP timeouts across the fleet.
func (f *Fleet) TotalTimeouts() int {
	total := 0
	for i := 0; i < f.NumFlows(); i++ {
		total += f.Stats(i).Timeouts
	}
	return total
}

// Retransmissions sums the per-trigger retransmission breakdown across
// the fleet (see httpapp.RetransBreakdown).
func (f *Fleet) Retransmissions() httpapp.RetransBreakdown {
	var b httpapp.RetransBreakdown
	for i := 0; i < f.NumFlows(); i++ {
		st := f.Stats(i)
		b.Total += st.RetransSegs
		b.Timeout += st.RTORetransSegs
		b.Fast += st.FastRetransSegs
		b.Probes += st.TLPProbes
		b.Spurious += st.SpuriousRetransSegs
		b.Signals += st.RecoverySignals
	}
	return b
}
