package hybrid

// Differential coverage for the scale layer: a hybrid-fidelity fleet must
// be observationally identical to the packet-fidelity fleet on the same
// workload — same completion records at the same nanoseconds, same
// per-flow delivered bytes, stats, and windows — while actually folding
// idle connections into the flow store (peak live well below the fleet
// size). The fuzz target drives random fleets through both fidelities in
// lockstep.

import (
	"testing"
	"time"

	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
)

func TestParseFidelity(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Fidelity
		ok   bool
	}{
		{"", FidelityPacket, true},
		{"packet", FidelityPacket, true},
		{"hybrid", FidelityHybrid, true},
		{"flow", "", false},
	} {
		got, err := ParseFidelity(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseFidelity(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// trainSpec is one scheduled response in a differential scenario.
type trainSpec struct {
	flow  int
	at    sim.Time
	bytes int
}

// buildFleet wires a star network with n senders × per connections at the
// given fidelity on a fresh sequential scheduler.
func buildFleet(tb testing.TB, n, per int, base tcp.Config, fid Fidelity, epoch time.Duration) (*Fleet, *sim.Scheduler) {
	tb.Helper()
	sched := sim.NewScheduler()
	star := topology.NewStar(sched, n, topology.DefaultStarLink(100))
	fleet, err := NewFleet(star.Net, FleetConfig{
		Senders:        star.Senders,
		ConnsPerSender: per,
		FrontEnd:       star.FrontEnd,
		Base:           base,
		Fidelity:       fid,
		Epoch:          epoch,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return fleet, sched
}

// runScenario executes the same schedule at both fidelities and returns
// the two fleets after running to horizon.
func runScenario(tb testing.TB, n, per int, base tcp.Config, epoch time.Duration,
	trains []trainSpec, horizon sim.Time) (pkt, hyb *Fleet) {
	tb.Helper()
	fleets := make([]*Fleet, 2)
	for fi, fid := range []Fidelity{FidelityPacket, FidelityHybrid} {
		fleet, sched := buildFleet(tb, n, per, base, fid, epoch)
		for _, tr := range trains {
			if err := fleet.ScheduleResponse(tr.flow, tr.at, tr.bytes); err != nil {
				tb.Fatal(err)
			}
		}
		if err := fleet.Arm(); err != nil {
			tb.Fatal(err)
		}
		sched.RunUntil(horizon)
		if err := fleet.Err(); err != nil {
			tb.Fatalf("%s fleet error: %v", fid, err)
		}
		fleets[fi] = fleet
	}
	return fleets[0], fleets[1]
}

// compareFleets asserts observational identity between the two fidelities.
func compareFleets(tb testing.TB, pkt, hyb *Fleet) {
	tb.Helper()
	pr, hr := pkt.Collector().Responses(), hyb.Collector().Responses()
	if len(pr) != len(hr) {
		tb.Fatalf("completions: packet %d, hybrid %d", len(pr), len(hr))
	}
	for i := range pr {
		if pr[i] != hr[i] {
			tb.Fatalf("completion %d: packet %+v, hybrid %+v", i, pr[i], hr[i])
		}
	}
	if pkt.Collector().Pending() != hyb.Collector().Pending() {
		tb.Fatalf("pending: packet %d, hybrid %d",
			pkt.Collector().Pending(), hyb.Collector().Pending())
	}
	for i := 0; i < pkt.NumFlows(); i++ {
		if p, h := pkt.DeliveredBytes(i), hyb.DeliveredBytes(i); p != h {
			tb.Fatalf("flow %d delivered: packet %d, hybrid %d", i, p, h)
		}
		if p, h := pkt.Stats(i), hyb.Stats(i); p != h {
			tb.Fatalf("flow %d stats: packet %+v, hybrid %+v", i, p, h)
		}
		if p, h := pkt.Cwnd(i), hyb.Cwnd(i); p != h {
			tb.Fatalf("flow %d cwnd: packet %v, hybrid %v", i, p, h)
		}
	}
	if p, h := pkt.TotalDelivered(), hyb.TotalDelivered(); p != h {
		tb.Fatalf("total delivered: packet %d, hybrid %d", p, h)
	}
	if p, h := pkt.Retransmissions(), hyb.Retransmissions(); p != h {
		tb.Fatalf("retrans: packet %+v, hybrid %+v", p, h)
	}
}

func TestHybridLockstepStaggered(t *testing.T) {
	// 3 hosts × 2 conns; trains staggered so the hybrid fleet demotes
	// most flows most of the time.
	var trains []trainSpec
	for i := 0; i < 6; i++ {
		trains = append(trains, trainSpec{
			flow:  i,
			at:    sim.At(time.Duration(5+40*i)*time.Millisecond + time.Duration(i)),
			bytes: (3 + 2*i) * tcp.DefaultMSS,
		})
		trains = append(trains, trainSpec{
			flow:  i,
			at:    sim.At(time.Duration(305+40*i)*time.Millisecond + time.Duration(i)),
			bytes: 5 * tcp.DefaultMSS,
		})
	}
	pkt, hyb := runScenario(t, 3, 2, tcp.Config{}, 5*time.Millisecond,
		trains, sim.At(2*time.Second))
	compareFleets(t, pkt, hyb)
	if hyb.Live() != 0 {
		t.Errorf("hybrid still has %d live conns after drain", hyb.Live())
	}
	if hyb.PeakLive() == 0 || hyb.PeakLive() >= hyb.NumFlows() {
		t.Errorf("peak live = %d of %d flows; wanted partial materialization",
			hyb.PeakLive(), hyb.NumFlows())
	}
	if pkt.PeakLive() != pkt.NumFlows() {
		t.Errorf("packet peak live = %d, want all %d", pkt.PeakLive(), pkt.NumFlows())
	}
	// The second train on each flow inherited the first train's window
	// through the store: the final window must exceed the initial one.
	if hyb.Cwnd(0) <= tcp.DefaultInitCwnd {
		t.Errorf("flow 0 cwnd %v never grew past initial %v — no inheritance?",
			hyb.Cwnd(0), float64(tcp.DefaultInitCwnd))
	}
}

func TestHybridDemotesBetweenTrains(t *testing.T) {
	trains := []trainSpec{
		{flow: 0, at: sim.At(5 * time.Millisecond), bytes: 4 * tcp.DefaultMSS},
		{flow: 0, at: sim.At(500 * time.Millisecond), bytes: 4 * tcp.DefaultMSS},
	}
	hyb, sched := buildFleet(t, 1, 1, tcp.Config{}, FidelityHybrid, 5*time.Millisecond)
	for _, tr := range trains {
		if err := hyb.ScheduleResponse(tr.flow, tr.at, tr.bytes); err != nil {
			t.Fatal(err)
		}
	}
	if err := hyb.Arm(); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.At(250 * time.Millisecond))
	if hyb.Live() != 0 {
		t.Fatalf("flow not demoted between trains: %d live", hyb.Live())
	}
	if hyb.Cwnd(0) <= tcp.DefaultInitCwnd {
		t.Errorf("demoted cwnd %v did not retain growth", hyb.Cwnd(0))
	}
	if hyb.DeliveredBytes(0) != 4*int64(tcp.DefaultMSS) {
		t.Errorf("demoted delivered = %d", hyb.DeliveredBytes(0))
	}
	sched.RunUntil(sim.At(2 * time.Second))
	if err := hyb.Err(); err != nil {
		t.Fatal(err)
	}
	if got := hyb.DeliveredBytes(0); got != 8*int64(tcp.DefaultMSS) {
		t.Errorf("final delivered = %d", got)
	}
	if n := len(hyb.Collector().Responses()); n != 2 {
		t.Errorf("completions = %d", n)
	}
}

func TestHybridBackgroundFlowStaysLive(t *testing.T) {
	hyb, sched := buildFleet(t, 2, 1, tcp.Config{}, FidelityHybrid, 5*time.Millisecond)
	if err := hyb.StartBackgroundFlow(0, sim.At(time.Millisecond), 1<<30); err != nil {
		t.Fatal(err)
	}
	if err := hyb.ScheduleResponse(1, sim.At(time.Millisecond), 2*tcp.DefaultMSS); err != nil {
		t.Fatal(err)
	}
	if err := hyb.Arm(); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.At(time.Second))
	if hyb.Live() != 1 {
		t.Errorf("live = %d, want 1 (only the background flow)", hyb.Live())
	}
	if hyb.DeliveredBytes(0) == 0 {
		t.Error("background flow idle")
	}
}

func TestHybridScheduleConnAt(t *testing.T) {
	hyb, sched := buildFleet(t, 1, 1, tcp.Config{}, FidelityHybrid, 5*time.Millisecond)
	var sawCwnd float64
	var sawAt sim.Time
	err := hyb.ScheduleConnAt(0, sim.At(10*time.Millisecond), func(c *tcp.Conn) {
		sawCwnd = c.Cwnd()
		sawAt = c.Now()
		c.SendTrain(3*tcp.DefaultMSS, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := hyb.Arm(); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.At(time.Second))
	if sawAt != sim.At(10*time.Millisecond) {
		t.Errorf("callback ran at %v", sawAt)
	}
	if sawCwnd != tcp.DefaultInitCwnd {
		t.Errorf("fresh conn cwnd %v", sawCwnd)
	}
	if hyb.DeliveredBytes(0) != 3*int64(tcp.DefaultMSS) {
		t.Errorf("delivered = %d", hyb.DeliveredBytes(0))
	}
}

func TestHybridScheduleAfterArm(t *testing.T) {
	hyb, _ := buildFleet(t, 1, 1, tcp.Config{}, FidelityHybrid, 0)
	if err := hyb.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := hyb.ScheduleResponse(0, sim.At(time.Millisecond), tcp.DefaultMSS); err == nil {
		t.Error("schedule after Arm succeeded")
	}
	if err := hyb.Arm(); err == nil {
		t.Error("double Arm succeeded")
	}
}

func TestHybridFlowRangeChecks(t *testing.T) {
	for _, fid := range []Fidelity{FidelityPacket, FidelityHybrid} {
		fleet, _ := buildFleet(t, 2, 1, tcp.Config{}, fid, 0)
		if err := fleet.ScheduleResponse(2, sim.At(time.Millisecond), 1); err == nil {
			t.Errorf("%s: out-of-range flow accepted", fid)
		}
		if err := fleet.StartBackgroundFlow(-1, sim.At(time.Millisecond), 1); err == nil {
			t.Errorf("%s: negative flow accepted", fid)
		}
	}
}

// FuzzHybridFleetLockstep drives randomized fleets through both
// fidelities and demands observational identity. Release instants get a
// unique sub-microsecond offset per train so that no release ever
// coincides exactly with another flow's packet events — exact-nanosecond
// ties are the one place event insertion order differs by construction
// between the fidelities (packet fidelity registers releases at setup,
// hybrid fires them from the chained sync event).
func FuzzHybridFleetLockstep(f *testing.F) {
	for seed := int64(1); seed <= 5; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := sim.NewRand(seed)
		n := 1 + int(rng.Int63n(4))
		per := 1 + int(rng.Int63n(3))
		epoch := time.Duration(1+rng.Int63n(20)) * time.Millisecond
		var trains []trainSpec
		for flow := 0; flow < n*per; flow++ {
			k := int(rng.Int63n(3))
			for j := 0; j < k; j++ {
				trains = append(trains, trainSpec{
					flow: flow,
					at: sim.At(time.Duration(1+rng.Int63n(400))*time.Millisecond +
						time.Duration(len(trains)+1)),
					bytes: 1 + int(rng.Int63n(20*tcp.DefaultMSS)),
				})
			}
		}
		if len(trains) == 0 {
			trains = append(trains, trainSpec{flow: 0, at: sim.At(time.Millisecond), bytes: 1})
		}
		pkt, hyb := runScenario(t, n, per, tcp.Config{}, epoch,
			trains, sim.At(3*time.Second))
		compareFleets(t, pkt, hyb)
		if hyb.Live() != 0 {
			t.Errorf("seed %d: %d conns still live", seed, hyb.Live())
		}
	})
}
