package tcp

// TRACKs (T-RACKs, arXiv 2102.07477): switch-assisted loss recovery. A
// per-switch agent (netsim.TRACKsAgent, attached at the access switch)
// tracks the last cumulative ACK it forwarded for every flow with data
// outstanding; when a flow's ACK stream stalls for a RACK-style timeout —
// far below the end-host RTO floor — the switch injects a recovery
// signal toward the sender. This end-host shim is Classic recovery plus
// that signal path: a valid signal forces the fast-retransmit/fast-
// recovery the three duplicate ACKs never arrived to trigger, so
// tail-drop victims of highly concurrent trains recover in switch-timer
// time instead of RTO time.

// TRACKs is Classic recovery extended with switch-signal handling.
// Construct with NewTRACKs; one instance per connection. The policy is
// inert unless a netsim.TRACKsAgent is attached to a switch on the
// flow's path.
type TRACKs struct {
	classic
}

// NewTRACKs returns the switch-assisted recovery policy.
func NewTRACKs() *TRACKs { return &TRACKs{} }

var _ RecoveryPolicy = (*TRACKs)(nil)

// Name implements RecoveryPolicy.
func (p *TRACKs) Name() string { return "tracks" }

// onSignal reacts to a switch recovery signal: when the signal's ACK
// still matches the left window edge and data is outstanding, the hole
// at sndUna has been stuck for the agent's whole timeout — enter fast
// recovery as if the dup-ACK threshold had been reached. A stale signal
// (the window moved while the signal was in flight) proves nothing and
// is dropped; during an open recovery the repair is already under way
// and the RTO backstop covers a lost repair.
func (p *TRACKs) onSignal(ack int64) {
	c := p.c
	if ack != c.hot.sndUna || c.hot.sndNxt == c.hot.sndUna {
		return
	}
	c.observe(EventRecoverySignal, 0, ack)
	if c.inRecovery {
		return
	}
	c.enterFastRecovery()
	c.trySend()
}
