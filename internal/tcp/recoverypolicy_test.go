package tcp

// Recovery-policy behavior: the Karn back-off fix, RACK-TLP's probe-led
// repair of tail loss, T-RACKs switch-assisted recovery, and a safety
// property sweep that runs every policy through the fault matrix with
// the simulator's invariant checks armed (the sendSegment invariant
// rejects any targeted repair beyond the highest sequence sent or below
// the cumulative ACK, so a policy emitting a bogus repair panics).

import (
	"fmt"
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

// switchFaultNet is a sender — switch — receiver dumbbell with direct
// access to every pipe, for fault injection on a topology that can also
// host a T-RACKs agent.
type switchFaultNet struct {
	sched    *sim.Scheduler
	net      *netsim.Network
	sw       *netsim.Switch
	sender   *Stack
	receiver *Stack
	// up/down are the data-direction pipes (sender→switch→receiver);
	// revUp/revDown carry the ACK stream back.
	up, down       *netsim.Pipe
	revDown, revUp *netsim.Pipe
}

func newSwitchFaultNet(t *testing.T, link netsim.LinkConfig) *switchFaultNet {
	t.Helper()
	sched := sim.NewScheduler()
	net := netsim.NewNetwork(sched)
	hs := net.AddHost("sender")
	sw := net.AddSwitch("sw")
	hr := net.AddHost("receiver")
	up, revUp := net.Connect(hs, sw, link)
	down, revDown := net.Connect(sw, hr, link)
	return &switchFaultNet{
		sched:    sched,
		net:      net,
		sw:       sw,
		sender:   NewStack(net, hs),
		receiver: NewStack(net, hr),
		up:       up,
		down:     down,
		revDown:  revDown,
		revUp:    revUp,
	}
}

func (sn *switchFaultNet) asTestNet() *testNet {
	return &testNet{sched: sn.sched, net: sn.net, sender: sn.sender, receiver: sn.receiver}
}

func (sn *switchFaultNet) at(t *testing.T, at time.Duration, f func()) {
	t.Helper()
	if _, err := sn.sched.At(sim.At(at), f); err != nil {
		t.Fatalf("schedule at %v: %v", at, err)
	}
}

// TestKarnBackoffIgnoresPreRTOEcho is the regression test for the Karn
// fix: an ACK whose echoed timestamp predates the last RTO proves only
// that a pre-timeout transmission survived, so it must NOT reset the
// exponential back-off; an ACK echoing a post-RTO timestamp must.
func TestKarnBackoffIgnoresPreRTOEcho(t *testing.T) {
	sim.SetInvariantChecks(true)
	t.Cleanup(func() { sim.SetInvariantChecks(false) })

	const (
		minRTO       = 10 * time.Millisecond
		maxRTO       = 160 * time.Millisecond
		blackoutFrom = 100 * time.Millisecond
		probeAt      = 500 * time.Millisecond
	)
	fn := newFaultNet(t, gigLink(100))
	c := newTestConn(t, fn.asTestNet(), Config{MinRTO: minRTO, MaxRTO: maxRTO})

	// Warm the estimator, then black out the link and offer a train so
	// the RTO backs off repeatedly.
	c.SendTrain(20*DefaultMSS, nil)
	fn.at(t, blackoutFrom, func() {
		fn.setLinkDown(true)
		c.SendTrain(50*DefaultMSS, nil)
	})

	// Mid-blackout, deliver two hand-crafted advancing ACKs straight to
	// the sender (the wire is down; this is the spurious-ACK shape a
	// delayed original would produce). The first echoes a pre-RTO
	// timestamp and must leave the back-off untouched; the second echoes
	// the last RTO instant itself and must reset it.
	fn.at(t, probeAt, func() {
		before := c.backoff
		if before == 0 {
			t.Fatalf("backoff = 0 mid-blackout, scenario never backed off")
		}
		if c.lastRTOAt == 0 {
			t.Fatal("lastRTOAt never recorded")
		}
		c.handleAck(&netsim.Packet{
			IsAck: true,
			Ack:   c.hot.sndUna + DefaultMSS,
			Echo:  c.lastRTOAt.Add(-time.Microsecond),
		})
		if c.backoff != before {
			t.Errorf("pre-RTO echo changed backoff: %d -> %d (Karn violation)", before, c.backoff)
		}
		c.handleAck(&netsim.Packet{
			IsAck: true,
			Ack:   c.hot.sndUna + DefaultMSS,
			Echo:  c.lastRTOAt,
		})
		if c.backoff != 0 {
			t.Errorf("post-RTO echo left backoff = %d, want 0", c.backoff)
		}
	})

	// The synthetic ACKs desynchronize sender and receiver on purpose;
	// stop at a horizon instead of draining the transfer.
	fn.sched.RunUntil(sim.At(600 * time.Millisecond))
	fn.net.CheckInvariants()
}

// TestRACKTLPRepairsTailLossWithoutRTO blacks out the data path for the
// entirety of a short train (the no-dup-ACK regime: nothing arrives, so
// dup-ACK recovery has no signal at all). RACK-TLP's probe timer fires
// well under the RTO, the probe's echo gives delivery evidence, and the
// time-based detector repairs the rest — no timeout. Classic recovery on
// the identical scenario can only wait for the RTO backstop.
func TestRACKTLPRepairsTailLossWithoutRTO(t *testing.T) {
	sim.SetInvariantChecks(true)
	t.Cleanup(func() { sim.SetInvariantChecks(false) })

	const (
		minRTO  = 10 * time.Millisecond
		quietAt = 50 * time.Millisecond
		restore = 250 * time.Microsecond // < the ~2·SRTT probe timeout
	)
	run := func(t *testing.T, recovery RecoveryPolicy) (*Conn, TrainResult) {
		fn := newFaultNet(t, gigLink(100))
		c := newTestConn(t, fn.asTestNet(), Config{
			MinRTO:   minRTO,
			SACK:     true,
			Recovery: recovery,
		})
		c.SendTrain(20*DefaultMSS, nil) // warm RTT estimator and cwnd
		var result TrainResult
		fn.at(t, quietAt, func() {
			fn.fwd.SetLinkDown(true) // data direction only; ACK path stays up
			c.SendTrain(4*DefaultMSS, func(r TrainResult) { result = r })
		})
		fn.at(t, quietAt+restore, func() { fn.fwd.SetLinkDown(false) })
		fn.sched.RunUntil(sim.At(time.Second))
		fn.net.CheckInvariants()
		if result.Bytes == 0 {
			t.Fatalf("%s: train never completed", recovery.Name())
		}
		if lp := fn.net.LivePackets(); lp != 0 {
			t.Errorf("%s: %d pooled packets leaked", recovery.Name(), lp)
		}
		return c, result
	}

	rackConn, rackRes := run(t, NewRACKTLP())
	classicConn, classicRes := run(t, NewClassicRecovery())

	rackStats, classicStats := rackConn.Stats(), classicConn.Stats()
	if rackStats.TLPProbes == 0 {
		t.Error("RACK-TLP never sent a tail-loss probe")
	}
	if rackStats.Timeouts != 0 {
		t.Errorf("RACK-TLP took %d RTO timeouts, want probe-led recovery", rackStats.Timeouts)
	}
	if classicStats.Timeouts == 0 {
		t.Error("classic recovered the blackout without an RTO — scenario no longer RTO-bound")
	}
	rackT, classicT := rackRes.CompletionTime(), classicRes.CompletionTime()
	if rackT >= minRTO {
		t.Errorf("RACK-TLP completion %v not under the %v RTO floor", rackT, minRTO)
	}
	if rackT*2 >= classicT {
		t.Errorf("RACK-TLP (%v) not decisively faster than classic (%v)", rackT, classicT)
	}
}

// TestTRACKsSwitchAssistedRecovery drops the tail of a train on the
// switch→receiver pipe under the stock 200 ms MinRTO. With no packets
// after the loss there are no dup ACKs, so classic stalls a full RTO;
// the T-RACKs agent notices the stalled ACK stream within its ~1 ms
// timeout and signals the sender into fast recovery.
func TestTRACKsSwitchAssistedRecovery(t *testing.T) {
	sim.SetInvariantChecks(true)
	t.Cleanup(func() { sim.SetInvariantChecks(false) })

	const (
		start    = 50 * time.Millisecond
		downFrom = start + 100*time.Microsecond
		downTo   = start + 800*time.Microsecond
	)
	run := func(t *testing.T, recovery RecoveryPolicy, withAgent bool) (*Conn, TrainResult, *netsim.TRACKsAgent) {
		sn := newSwitchFaultNet(t, gigLink(100))
		var agent *netsim.TRACKsAgent
		if withAgent {
			var err error
			agent, err = netsim.AttachTRACKs(sn.net, sn.sw, netsim.TRACKsConfig{})
			if err != nil {
				t.Fatalf("AttachTRACKs: %v", err)
			}
		}
		c := newTestConn(t, sn.asTestNet(), Config{SACK: true, Recovery: recovery})
		c.SendTrain(20*DefaultMSS, nil) // warm: grow cwnd past the drop window
		var result TrainResult
		sn.at(t, start, func() { c.SendTrain(50*DefaultMSS, func(r TrainResult) { result = r }) })
		sn.at(t, downFrom, func() { sn.down.SetLinkDown(true) })
		sn.at(t, downTo, func() { sn.down.SetLinkDown(false) })
		// The agent's scan timer never drains; run to a horizon.
		sn.sched.RunUntil(sim.At(2 * time.Second))
		sn.net.CheckInvariants()
		if result.Bytes == 0 {
			t.Fatalf("%s: train never completed", recovery.Name())
		}
		return c, result, agent
	}

	tracksConn, tracksRes, agent := run(t, NewTRACKs(), true)
	classicConn, classicRes, _ := run(t, NewClassicRecovery(), false)

	if agent.Signals() == 0 {
		t.Fatal("agent never injected a recovery signal")
	}
	if agent.TrackedFlows() != 1 {
		t.Errorf("agent tracks %d flows, want 1", agent.TrackedFlows())
	}
	tracksStats := tracksConn.Stats()
	if tracksStats.RecoverySignals == 0 {
		t.Error("sender never consumed a recovery signal")
	}
	if tracksStats.Timeouts != 0 {
		t.Errorf("T-RACKs took %d RTO timeouts, want signal-led recovery", tracksStats.Timeouts)
	}
	if got := classicConn.Stats().Timeouts; got == 0 {
		t.Error("classic recovered without an RTO — scenario no longer RTO-bound")
	}
	tracksT, classicT := tracksRes.CompletionTime(), classicRes.CompletionTime()
	if tracksT*5 >= classicT {
		t.Errorf("T-RACKs (%v) not decisively faster than classic (%v)", tracksT, classicT)
	}
}

// TestRecoveryPoliciesSafeUnderFaults is the cross-policy safety sweep:
// every policy, over several fault seeds, must complete a transfer
// through bursty loss + reordering + duplication on a shallow-buffered
// switch path without tripping the armed invariants — in particular the
// sendSegment check that forbids a targeted repair from retransmitting
// beyond the highest sequence sent or re-sending cumulatively
// acknowledged data — and must keep the retransmission breakdown
// consistent.
func TestRecoveryPoliciesSafeUnderFaults(t *testing.T) {
	sim.SetInvariantChecks(true)
	t.Cleanup(func() { sim.SetInvariantChecks(false) })

	for _, name := range RecoveryNames() {
		for _, seed := range []int64{1, 7, 42} {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				sn := newSwitchFaultNet(t, gigLink(16))
				if name == "tracks" {
					if _, err := netsim.AttachTRACKs(sn.net, sn.sw, netsim.TRACKsConfig{}); err != nil {
						t.Fatalf("AttachTRACKs: %v", err)
					}
				}
				rec, err := NewRecoveryPolicy(name)
				if err != nil {
					t.Fatal(err)
				}
				c := newTestConn(t, sn.asTestNet(), Config{
					MinRTO:   10 * time.Millisecond,
					SACK:     true,
					Recovery: rec,
				})
				// Faults on the data bottleneck for a fixed window.
				sn.at(t, time.Millisecond, func() {
					sn.down.InjectGilbertElliott(netsim.GEConfig{
						PGoodBad: 0.02, PBadGood: 0.05, LossBad: 0.7,
					}, sim.NewRand(seed))
					sn.down.InjectReorder(0.1, 500*time.Microsecond, sim.NewRand(seed+1))
					sn.down.InjectDuplicate(0.05, sim.NewRand(seed+2))
				})
				sn.at(t, 100*time.Millisecond, func() {
					sn.down.InjectGilbertElliott(netsim.GEConfig{}, nil)
					sn.down.InjectReorder(0, 0, nil)
					sn.down.InjectDuplicate(0, nil)
				})
				done := false
				c.SendTrain(400*DefaultMSS, func(TrainResult) { done = true })
				sn.sched.RunUntil(sim.At(10 * time.Second))
				sn.net.CheckInvariants()

				if !done {
					t.Fatal("train never completed after faults cleared")
				}
				if got := c.DeliveredBytes(); got != 400*DefaultMSS {
					t.Errorf("DeliveredBytes = %d, want %d", got, 400*DefaultMSS)
				}
				st := c.Stats()
				if sum := st.RTORetransSegs + st.FastRetransSegs + st.TLPProbes; sum != st.RetransSegs {
					t.Errorf("retransmission breakdown %d+%d+%d = %d, want RetransSegs %d",
						st.RTORetransSegs, st.FastRetransSegs, st.TLPProbes, sum, st.RetransSegs)
				}
			})
		}
	}
}
