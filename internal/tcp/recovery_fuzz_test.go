package tcp

// Differential fuzz over the recovery extraction. Two obligations:
//
//  1. Lockstep: a connection with an explicitly constructed Classic
//     policy must be bit-for-bit indistinguishable (final stats,
//     delivered bytes) from one using the implicit default, across
//     randomized fault scenarios — the refactor guard that keeps the
//     extraction verbatim.
//  2. Safety: whichever policy the fuzzer picks must survive the same
//     scenario with invariant checks armed (the sendSegment invariant
//     forbids bogus retransmissions) and drain the transfer.

import (
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

// fuzzRecoveryRun executes one randomized fault scenario with the given
// policy and returns the connection after the run. armLoneTail turns on
// Config.ArmRTOOnLoneTail — with it, the run must always drain: the
// classic-semantics stall exemption below does not apply.
func fuzzRecoveryRun(t *testing.T, rec RecoveryPolicy, withAgent, armLoneTail bool,
	seed int64, loss, reorder, dup uint8, segs int) *Conn {
	t.Helper()
	sn := newSwitchFaultNet(t, gigLink(16))
	if withAgent {
		if _, err := netsim.AttachTRACKs(sn.net, sn.sw, netsim.TRACKsConfig{}); err != nil {
			t.Fatalf("AttachTRACKs: %v", err)
		}
	}
	c := newTestConn(t, sn.asTestNet(), Config{
		MinRTO:           10 * time.Millisecond,
		SACK:             true,
		Recovery:         rec,
		ArmRTOOnLoneTail: armLoneTail,
	})
	ge := netsim.GEConfig{
		PGoodBad: float64(loss%32) / 100,
		PBadGood: 0.1,
		LossBad:  0.5,
	}
	sn.at(t, time.Millisecond, func() {
		if ge.Enabled() {
			sn.down.InjectGilbertElliott(ge, sim.NewRand(seed))
		}
		if reorder%32 > 0 {
			sn.down.InjectReorder(float64(reorder%32)/100, 300*time.Microsecond, sim.NewRand(seed+1))
		}
		if dup%16 > 0 {
			sn.down.InjectDuplicate(float64(dup%16)/100, sim.NewRand(seed+2))
		}
	})
	sn.at(t, 60*time.Millisecond, func() {
		sn.down.InjectGilbertElliott(netsim.GEConfig{}, nil)
		sn.down.InjectReorder(0, 0, nil)
		sn.down.InjectDuplicate(0, nil)
	})
	done := false
	c.SendTrain(segs*DefaultMSS, func(TrainResult) { done = true })
	sn.sched.RunUntil(sim.At(10 * time.Second))
	sn.net.CheckInvariants()
	if !done {
		// Classic (and TRACKs without its switch agent, which embeds
		// classic) inherits a seed-verbatim quirk: armRTO's idle test runs
		// before trySend advances sndNxt, so a lone tail segment sent from
		// an idle window arms no timer at all — losing it stalls the
		// connection forever. That wart is pinned by figure byte-identity;
		// RACK-TLP's probe and the T-RACKs agent repair exactly this case,
		// so only classic-semantics runs may end in that precise state.
		name := "default"
		if rec != nil {
			name = rec.Name()
		}
		classicSemantics := !armLoneTail && (rec == nil || name == "classic" ||
			(name == "tracks" && !withAgent))
		loneTailStall := c.hot.sndUna < c.hot.sndNxt && c.hot.sndNxt == c.hot.maxSent &&
			c.hot.maxSent == c.hot.bufEnd && c.hot.maxSent-c.hot.sndUna <= int64(c.mss) &&
			!c.rtoTimer.Pending()
		if !classicSemantics || !loneTailStall {
			t.Fatalf("%s: train never completed after faults cleared "+
				"(sndUna=%d sndNxt=%d maxSent=%d bufEnd=%d rtoPending=%v)",
				name, c.hot.sndUna, c.hot.sndNxt, c.hot.maxSent, c.hot.bufEnd,
				c.rtoTimer.Pending())
		}
	}
	return c
}

func FuzzClassicRecoveryLockstep(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(3), uint8(1), uint16(80), uint8(0))
	f.Add(int64(7), uint8(20), uint8(10), uint8(5), uint16(200), uint8(1))
	f.Add(int64(42), uint8(31), uint8(0), uint8(0), uint16(40), uint8(2))
	f.Add(int64(-3), uint8(0), uint8(15), uint8(9), uint16(120), uint8(1))

	f.Fuzz(func(t *testing.T, seed int64, loss, reorder, dup uint8, trainSegs uint16, policyIdx uint8) {
		sim.SetInvariantChecks(true)
		t.Cleanup(func() { sim.SetInvariantChecks(false) })
		segs := int(trainSegs)%300 + 20

		// Lockstep: implicit default vs explicit Classic.
		implicit := fuzzRecoveryRun(t, nil, false, false, seed, loss, reorder, dup, segs)
		explicit := fuzzRecoveryRun(t, NewClassicRecovery(), false, false, seed, loss, reorder, dup, segs)
		if implicit.Stats() != explicit.Stats() {
			t.Errorf("explicit classic diverged from default:\n default: %+v\nexplicit: %+v",
				implicit.Stats(), explicit.Stats())
		}
		if a, b := implicit.DeliveredBytes(), explicit.DeliveredBytes(); a != b {
			t.Errorf("delivered bytes diverged: default %d, explicit %d", a, b)
		}

		// Safety: the fuzzer-chosen policy survives the same scenario.
		name := RecoveryNames()[int(policyIdx)%len(RecoveryNames())]
		rec, err := NewRecoveryPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		c := fuzzRecoveryRun(t, rec, name == "tracks", false, seed, loss, reorder, dup, segs)
		st := c.Stats()
		if sum := st.RTORetransSegs + st.FastRetransSegs + st.TLPProbes; sum != st.RetransSegs {
			t.Errorf("%s breakdown %d+%d+%d != RetransSegs %d",
				name, st.RTORetransSegs, st.FastRetransSegs, st.TLPProbes, st.RetransSegs)
		}

		// With ArmRTOOnLoneTail the stall is unreachable: the same policy
		// under the same scenario must drain, no exemption granted.
		rec2, err := NewRecoveryPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		fuzzRecoveryRun(t, rec2, name == "tracks", true, seed, loss, reorder, dup, segs)
	})
}
