package tcp

// Detach/Restore equivalence: a connection detached between trains and
// rebuilt from its SavedState must be indistinguishable — in delivered
// bytes, lifetime stats, inherited window, and RTT estimator — from one
// that stayed alive across the same train schedule. This is the
// correctness core of the hybrid-fidelity fleet's demote/materialize
// cycle.

import (
	"testing"
	"time"

	"tcptrim/internal/sim"
)

func TestDetachRestoreMatchesPersistentConn(t *testing.T) {
	sim.SetInvariantChecks(true)
	t.Cleanup(func() { sim.SetInvariantChecks(false) })

	type snap struct {
		stats   Stats
		deliver int64
		cwnd    float64
		srtt    time.Duration
	}
	sizes := []int{3 * DefaultMSS, 10*DefaultMSS + 77, DefaultMSS}

	run := func(detach bool) snap {
		tn := newTestNet(t, gigLink(100))
		arena := NewArena()
		cfg := Config{
			Sender: tn.sender, Receiver: tn.receiver, Flow: 9,
			MinRTO: 10 * time.Millisecond, Arena: arena,
			Recovery: NewRACKTLP(),
		}
		c, err := NewConn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, size := range sizes {
			size := size
			at := sim.At(time.Duration(i) * 5 * time.Millisecond)
			if _, err := tn.sched.At(at, func() {
				if detach && i > 0 {
					// The previous train drained ≥ one RTO ago: demote and
					// rematerialize, continuing the same flow.
					st, err := c.Detach()
					if err != nil {
						t.Fatalf("Detach: %v", err)
					}
					if arena.Live() != 0 {
						t.Fatalf("arena live = %d after detach", arena.Live())
					}
					next := cfg
					next.Restore = &st
					if c, err = NewConn(next); err != nil {
						t.Fatalf("NewConn(restore): %v", err)
					}
				}
				c.SendTrain(size, nil)
			}); err != nil {
				t.Fatal(err)
			}
		}
		tn.sched.Run()
		tn.net.CheckInvariants()
		if !c.Quiescent() {
			t.Fatal("connection not quiescent after drain")
		}
		return snap{c.Stats(), c.DeliveredBytes(), c.Cwnd(), c.SRTT()}
	}

	persistent := run(false)
	cycled := run(true)
	if persistent != cycled {
		t.Errorf("detach/restore diverged:\npersistent: %+v\n    cycled: %+v", persistent, cycled)
	}
	var want int64
	for _, s := range sizes {
		want += int64(s)
	}
	if cycled.deliver != want {
		t.Errorf("DeliveredBytes = %d, want %d", cycled.deliver, want)
	}
}

func TestDetachRefusesBusyConn(t *testing.T) {
	tn := newTestNet(t, gigLink(100))
	c := newTestConn(t, tn, Config{})
	c.SendTrain(50*DefaultMSS, nil)
	tn.sched.RunUntil(sim.At(10 * time.Microsecond))
	if c.Quiescent() {
		t.Fatal("mid-transfer connection reports quiescent")
	}
	if _, err := c.Detach(); err == nil {
		t.Fatal("Detach of a busy connection succeeded")
	}
	tn.sched.Run()
	if !c.Quiescent() {
		t.Fatal("drained connection not quiescent")
	}
	if _, err := c.Detach(); err != nil {
		t.Fatalf("Detach after drain: %v", err)
	}
	// The stacks forgot the flow: a fresh NewConn may reuse it.
	if _, err := NewConn(Config{Sender: tn.sender, Receiver: tn.receiver, Flow: 1}); err != nil {
		t.Fatalf("flow not released: %v", err)
	}
}
