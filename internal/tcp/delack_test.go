package tcp

import (
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

func TestDelayedAckHalvesAckCount(t *testing.T) {
	run := func(delack time.Duration) Stats {
		tn := newTestNet(t, gigLink(1000))
		c := newTestConn(t, tn, Config{DelayedAck: delack})
		c.SendTrain(200*DefaultMSS, nil)
		tn.sched.Run()
		if c.DeliveredBytes() != 200*DefaultMSS {
			t.Fatalf("incomplete transfer with delack=%v", delack)
		}
		return c.Stats()
	}
	perPacket := run(0)
	delayed := run(400 * time.Microsecond)
	if perPacket.AcksSent != 200 {
		t.Errorf("per-packet AcksSent = %d, want 200", perPacket.AcksSent)
	}
	// Coalescing two-per-ACK should roughly halve the count.
	if delayed.AcksSent > perPacket.AcksSent*2/3 {
		t.Errorf("delayed AcksSent = %d, want well below %d", delayed.AcksSent, perPacket.AcksSent)
	}
	if delayed.AcksSent < perPacket.AcksSent/3 {
		t.Errorf("delayed AcksSent = %d, implausibly low", delayed.AcksSent)
	}
}

func TestDelayedAckTimerFlushesLoneSegment(t *testing.T) {
	tn := newTestNet(t, gigLink(100))
	c := newTestConn(t, tn, Config{DelayedAck: 400 * time.Microsecond})
	// A single segment has no companion; only the deadline ACKs it.
	done := false
	c.SendTrain(DefaultMSS, func(TrainResult) { done = true })
	tn.sched.RunUntil(sim.At(300 * time.Microsecond))
	if done {
		t.Fatal("ACK arrived before the delayed-ACK deadline")
	}
	tn.sched.Run()
	if !done {
		t.Fatal("train never completed")
	}
	if got := c.Stats().AcksSent; got != 1 {
		t.Errorf("AcksSent = %d, want 1", got)
	}
}

func TestDelayedAckStillRecoversFromLoss(t *testing.T) {
	// Out-of-order arrivals must be acknowledged immediately, so fast
	// retransmit keeps working with coalescing enabled.
	tn := newTestNet(t, netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 20},
	})
	c := newTestConn(t, tn, Config{DelayedAck: 400 * time.Microsecond})
	done := false
	c.SendTrain(500*DefaultMSS, func(TrainResult) { done = true })
	tn.sched.Run()
	if !done {
		t.Fatal("transfer never completed")
	}
	st := c.Stats()
	if st.FastRecoveries == 0 {
		t.Error("expected fast recoveries under overflow")
	}
	if st.Timeouts != 0 {
		t.Errorf("timeouts = %d; dup ACKs should have sufficed", st.Timeouts)
	}
}

func TestDelayedAckCompletionTimeComparable(t *testing.T) {
	// Coalescing must not meaningfully slow a bulk transfer (the ACK
	// clock still ticks every other packet).
	measure := func(delack time.Duration) time.Duration {
		tn := newTestNet(t, gigLink(1000))
		c := newTestConn(t, tn, Config{DelayedAck: delack})
		var ct time.Duration
		c.SendTrain(1000*DefaultMSS, func(r TrainResult) { ct = r.CompletionTime() })
		tn.sched.Run()
		return ct
	}
	perPacket := measure(0)
	delayed := measure(400 * time.Microsecond)
	if delayed > perPacket*3/2 {
		t.Errorf("delayed-ACK transfer %v vs per-packet %v", delayed, perPacket)
	}
}

func TestLossInjectionRecovered(t *testing.T) {
	// 1% random loss on the forward path: the transfer must still
	// complete via retransmissions.
	sched := sim.NewScheduler()
	net := netsim.NewNetwork(sched)
	a := net.AddHost("a")
	sw := net.AddSwitch("sw")
	b := net.AddHost("b")
	net.Connect(a, sw, gigLink(1000))
	fwd, _ := net.Connect(sw, b, gigLink(1000))
	fwd.InjectLoss(0.01, sim.NewRand(7))

	c, err := NewConn(Config{
		Sender:   NewStack(net, a),
		Receiver: NewStack(net, b),
		Flow:     1,
		MinRTO:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	c.SendTrain(2000*DefaultMSS, func(TrainResult) { done = true })
	sched.RunUntil(sim.At(10 * time.Second))

	if !done {
		t.Fatal("transfer never completed under 1% loss")
	}
	if fwd.Stats().LossDrops == 0 {
		t.Error("no packets were actually dropped")
	}
	if c.Stats().RetransSegs == 0 {
		t.Error("no retransmissions despite loss")
	}
	if c.DeliveredBytes() != 2000*DefaultMSS {
		t.Errorf("DeliveredBytes = %d", c.DeliveredBytes())
	}
}

func TestLossInjectionClampAndDisable(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.NewNetwork(sched)
	a := net.AddHost("a")
	b := net.AddHost("b")
	ab, _ := net.Connect(a, b, gigLink(100))

	// Rate 0 with rng set: nothing dropped.
	ab.InjectLoss(0, sim.NewRand(1))
	delivered := 0
	b.SetHandler(func(*netsim.Packet) { delivered++ })
	for i := 0; i < 50; i++ {
		a.Send(&netsim.Packet{ID: uint64(i), Src: a.ID(), Dst: b.ID(), Size: 1500})
	}
	sched.Run()
	if delivered != 50 {
		t.Errorf("delivered = %d with zero loss rate", delivered)
	}

	// Rate above 1 clamps to 1: everything dropped.
	ab.InjectLoss(5, sim.NewRand(1))
	for i := 0; i < 20; i++ {
		a.Send(&netsim.Packet{ID: uint64(100 + i), Src: a.ID(), Dst: b.ID(), Size: 1500})
	}
	sched.Run()
	if delivered != 50 {
		t.Errorf("delivered = %d, total-loss pipe leaked packets", delivered)
	}
	if ab.Stats().LossDrops != 20 {
		t.Errorf("LossDrops = %d, want 20", ab.Stats().LossDrops)
	}
}
