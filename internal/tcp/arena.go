package tcp

import (
	"fmt"
	"time"
)

// connHot is the per-connection hot state: the sequence pointers, the
// congestion window, and the RTT estimator — the fields every ACK and
// every send touch. It is exactly one 64-byte cache line, so an arena
// slab packs the hot lines of co-sharded connections contiguously while
// the cold remainder of Conn stays behind the pointer.
type connHot struct {
	sndUna  int64
	sndNxt  int64
	maxSent int64
	bufEnd  int64

	cwnd     float64
	ssthresh float64

	srtt   time.Duration
	rttvar time.Duration
}

// arenaSlabSize is the number of hot records per slab. Slabs are never
// reallocated, so &slab[i] stays stable for the arena's lifetime.
const arenaSlabSize = 1024

// Arena is a slab allocator for connection hot state, one per shard.
// Freed slots are recycled LIFO, keeping the working set of a
// materialize/detach churn (the hybrid-fidelity fleet's steady state)
// inside a few hot cache lines regardless of how many connections have
// ever existed. Not safe for concurrent use: an arena belongs to one
// shard and is only touched from that shard's event context or from a
// sync (quiesced) section.
type Arena struct {
	slabs [][]connHot
	free  []int32
	next  int32
	inUse []bool
}

// NewArena returns an empty hot-state arena.
func NewArena() *Arena { return &Arena{} }

// Live returns the number of slots currently allocated.
func (a *Arena) Live() int { return int(a.next) - len(a.free) }

// Cap returns the total slots ever created (live + recyclable).
func (a *Arena) Cap() int { return int(a.next) }

// alloc hands out a zeroed hot record and its slot index, recycling the
// most recently freed slot first.
func (a *Arena) alloc() (*connHot, int32) {
	var slot int32
	if n := len(a.free); n > 0 {
		slot = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		slot = a.next
		a.next++
		if int(slot)/arenaSlabSize >= len(a.slabs) {
			a.slabs = append(a.slabs, make([]connHot, arenaSlabSize))
		}
		a.inUse = append(a.inUse, false)
	}
	if a.inUse[slot] {
		panic(fmt.Sprintf("tcp: arena slot %d allocated twice", slot))
	}
	a.inUse[slot] = true
	h := a.at(slot)
	*h = connHot{}
	return h, slot
}

// release returns a slot to the arena. Releasing a slot twice, or one the
// arena never issued, panics: aliasing a recycled hot record with a live
// connection would corrupt both silently.
func (a *Arena) release(slot int32) {
	if slot < 0 || slot >= a.next {
		panic(fmt.Sprintf("tcp: arena release of unissued slot %d (cap %d)", slot, a.next))
	}
	if !a.inUse[slot] {
		panic(fmt.Sprintf("tcp: arena slot %d released twice", slot))
	}
	a.inUse[slot] = false
	a.free = append(a.free, slot)
}

// at returns the record backing slot.
func (a *Arena) at(slot int32) *connHot {
	return &a.slabs[int(slot)/arenaSlabSize][int(slot)%arenaSlabSize]
}
