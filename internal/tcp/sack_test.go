package tcp

import (
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

// lossyNet builds sender—switch—receiver with loss injected on the
// switch→receiver pipe.
func lossyNet(t *testing.T, lossRate float64, seed int64, sack bool) (*sim.Scheduler, *Conn, *netsim.Pipe) {
	t.Helper()
	sched := sim.NewScheduler()
	net := netsim.NewNetwork(sched)
	a := net.AddHost("a")
	sw := net.AddSwitch("sw")
	b := net.AddHost("b")
	link := netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 1000},
	}
	net.Connect(a, sw, link)
	fwd, _ := net.Connect(sw, b, link)
	fwd.InjectLoss(lossRate, sim.NewRand(seed))
	c, err := NewConn(Config{
		Sender:   NewStack(net, a),
		Receiver: NewStack(net, b),
		Flow:     1,
		SACK:     sack,
		MinRTO:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sched, c, fwd
}

func TestSACKTransferCompletesUnderLoss(t *testing.T) {
	sched, c, fwd := lossyNet(t, 0.02, 11, true)
	done := false
	c.SendTrain(3000*DefaultMSS, func(TrainResult) { done = true })
	sched.RunUntil(sim.At(30 * time.Second))
	if !done {
		t.Fatal("SACK transfer never completed under 2% loss")
	}
	if fwd.Stats().LossDrops == 0 {
		t.Fatal("no loss was injected")
	}
	if c.DeliveredBytes() != 3000*DefaultMSS {
		t.Errorf("DeliveredBytes = %d", c.DeliveredBytes())
	}
}

func TestSACKBeatsNewRenoUnderHeavyLoss(t *testing.T) {
	// SACK's payoff regime is multi-loss windows: NewReno repairs one
	// hole per partial-ACK round trip and falls back to timeouts, while
	// the scoreboard repairs several holes per RTT. Under 8% random loss
	// SACK must complete substantially faster with fewer timeouts and
	// fewer retransmissions. (At light loss the two are comparable —
	// NewReno's partial-ACK crawl is short.)
	run := func(sack bool) (Stats, time.Duration) {
		sched, c, _ := lossyNet(t, 0.08, 11, sack)
		done := false
		var ct time.Duration
		c.SendTrain(3000*DefaultMSS, func(r TrainResult) { done, ct = true, r.CompletionTime() })
		sched.RunUntil(sim.At(60 * time.Second))
		if !done {
			t.Fatalf("transfer (sack=%v) never completed", sack)
		}
		return c.Stats(), ct
	}
	plain, plainCT := run(false)
	sacked, sackedCT := run(true)
	if sacked.Timeouts >= plain.Timeouts {
		t.Errorf("SACK timeouts %d not below NewReno %d", sacked.Timeouts, plain.Timeouts)
	}
	if sacked.RetransSegs >= plain.RetransSegs {
		t.Errorf("SACK retransmits %d not below NewReno %d",
			sacked.RetransSegs, plain.RetransSegs)
	}
	if sackedCT >= plainCT {
		t.Errorf("SACK completion %v not below NewReno %v", sackedCT, plainCT)
	}
}

func TestSACKScoreboardMergeAndTrim(t *testing.T) {
	c := (&Conn{mss: 1460, cfg: Config{SACK: true}}).withHot()
	c.mergeSack([]netsim.SackBlock{{Start: 2920, End: 4380}})
	c.mergeSack([]netsim.SackBlock{{Start: 5840, End: 7300}})
	c.mergeSack([]netsim.SackBlock{{Start: 4380, End: 5840}}) // bridges the two
	if len(c.sacked) != 1 || c.sacked[0] != (interval{2920, 7300}) {
		t.Fatalf("scoreboard = %v", c.sacked)
	}
	if c.sackedBytes() != 7300-2920 {
		t.Errorf("sackedBytes = %d", c.sackedBytes())
	}
	c.trimSackBelow(4000)
	if len(c.sacked) != 1 || c.sacked[0] != (interval{4000, 7300}) {
		t.Errorf("after trim: %v", c.sacked)
	}
	c.trimSackBelow(9999)
	if len(c.sacked) != 0 {
		t.Errorf("after full trim: %v", c.sacked)
	}
}

func TestSACKIgnoresStaleBlocks(t *testing.T) {
	c := (&Conn{mss: 1460, cfg: Config{SACK: true}}).withHot()
	c.hot.sndUna = 5000
	c.mergeSack([]netsim.SackBlock{
		{Start: 1000, End: 2000}, // entirely below una
		{Start: 4000, End: 6000}, // straddles una
		{Start: 9000, End: 9000}, // empty
		{Start: 9000, End: 8000}, // inverted
	})
	if len(c.sacked) != 1 || c.sacked[0] != (interval{5000, 6000}) {
		t.Errorf("scoreboard = %v", c.sacked)
	}
}

func TestSACKNextHoleSelection(t *testing.T) {
	c := (&Conn{mss: 1460, cfg: Config{SACK: true}}).withHot()
	c.hot.sndUna = 0
	c.hot.sndNxt = 10 * 1460
	c.hot.maxSent = 10 * 1460
	c.mergeSack([]netsim.SackBlock{
		{Start: 1460, End: 2920},
		{Start: 4380, End: 5840},
		{Start: 7300, End: 10220},
	})

	// First hole: [0, 1460) — clipped by the first SACK block, and lost
	// under the IsLost rule (≥3 MSS of SACKed data above it).
	seq, end := c.nextHole()
	if seq != 0 || end != 1460 {
		t.Fatalf("hole 1 = [%d, %d)", seq, end)
	}
	c.rtxHint = end
	// Next hole skips the first SACKed block: [2920, 4380) with exactly
	// 3 MSS SACKed above.
	seq, end = c.nextHole()
	if seq != 2920 || end != 4380 {
		t.Fatalf("hole 2 = [%d, %d)", seq, end)
	}
	c.rtxHint = end
	// The gap at [5840, 7300) has only 2 MSS SACKed above: not yet
	// lost, so no hole is reported (the data may simply be in flight).
	seq, end = c.nextHole()
	if end > seq {
		t.Fatalf("hole 3 = [%d, %d), want none under IsLost", seq, end)
	}
}

func TestSACKFlightExcludesScoreboard(t *testing.T) {
	c := (&Conn{mss: 1460, cfg: Config{SACK: true}}).withHot()
	c.hot.sndUna, c.hot.sndNxt = 0, 10*1460
	if c.FlightSegs() != 10 {
		t.Fatalf("flight = %d", c.FlightSegs())
	}
	c.mergeSack([]netsim.SackBlock{{Start: 1460, End: 4 * 1460}})
	if c.FlightSegs() != 7 {
		t.Errorf("flight = %d after SACKing 3 segments, want 7", c.FlightSegs())
	}
}

func TestSACKReceiverReportsBlocks(t *testing.T) {
	// Drop one mid-window packet and capture the dup ACKs' SACK blocks
	// at the sender side via a tap.
	sched := sim.NewScheduler()
	net := netsim.NewNetwork(sched)
	a := net.AddHost("a")
	sw := net.AddSwitch("sw")
	b := net.AddHost("b")
	link := netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 1000},
	}
	net.Connect(a, sw, link)
	fwd, _ := net.Connect(sw, b, link)
	c, err := NewConn(Config{
		Sender:   NewStack(net, a),
		Receiver: NewStack(net, b),
		Flow:     1,
		SACK:     true,
		MinRTO:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Use a one-shot "lose exactly the 5th data packet" rule via a
	// counting tap on the forward pipe: loss injection is random, so
	// instead drop deterministically by injecting 100% loss just for
	// that packet using the pipe's rng hook is awkward — approximate by
	// 30% loss with a fixed seed and assert SACK blocks were observed.
	fwd.InjectLoss(0.3, sim.NewRand(5))
	sawSack := false
	a.SetTap(func(p *netsim.Packet) {
		if p.IsAck && len(p.Sack) > 0 {
			sawSack = true
			for _, blk := range p.Sack {
				if blk.End <= blk.Start {
					t.Errorf("malformed SACK block %+v", blk)
				}
			}
		}
	})
	c.SendTrain(200*DefaultMSS, nil)
	sched.RunUntil(sim.At(5 * time.Second))
	if !sawSack {
		t.Error("no SACK blocks observed despite loss")
	}
}
