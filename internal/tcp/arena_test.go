package tcp

// Arena allocator properties: no two live slots alias, slots recycle
// LIFO, and misuse (double release, unissued slot) panics rather than
// corrupting a neighbour.

import (
	"testing"

	"tcptrim/internal/sim"
)

func TestArenaNoAliasingUnderChurn(t *testing.T) {
	a := NewArena()
	rng := sim.NewRand(42)
	live := map[int32]*connHot{}
	var order []int32 // allocation order, for deterministic victim picks
	for step := 0; step < 20000; step++ {
		if len(order) == 0 || rng.Int63()%3 != 0 {
			h, slot := a.alloc()
			if h.sndUna != 0 || h.cwnd != 0 {
				t.Fatalf("recycled slot %d not zeroed: %+v", slot, *h)
			}
			for s, other := range live {
				if other == h {
					t.Fatalf("slot %d aliases live slot %d", slot, s)
				}
			}
			h.sndUna = int64(slot) + 1 // brand it
			live[slot] = h
			order = append(order, slot)
		} else {
			i := int(rng.Int63()) % len(order)
			slot := order[i]
			order = append(order[:i], order[i+1:]...)
			if got := live[slot].sndUna; got != int64(slot)+1 {
				t.Fatalf("slot %d brand overwritten: %d", slot, got)
			}
			a.release(slot)
			delete(live, slot)
		}
	}
	if a.Live() != len(live) {
		t.Errorf("Live = %d, want %d", a.Live(), len(live))
	}
	// Every survivor still carries its brand — no release corrupted a
	// live neighbour.
	for slot, h := range live {
		if h.sndUna != int64(slot)+1 {
			t.Errorf("slot %d brand = %d", slot, h.sndUna)
		}
	}
}

func TestArenaSlabPointerStability(t *testing.T) {
	a := NewArena()
	var first *connHot
	// Force several slab growths; the first record must not move.
	for i := 0; i < 3*arenaSlabSize; i++ {
		h, slot := a.alloc()
		if i == 0 {
			first = h
			h.bufEnd = 7777
		}
		_ = slot
	}
	if a.at(0) != first || first.bufEnd != 7777 {
		t.Fatal("slab growth moved or clobbered slot 0")
	}
}

func TestArenaReleaseExactlyOnce(t *testing.T) {
	a := NewArena()
	_, slot := a.alloc()
	a.release(slot)
	mustPanic(t, "double release", func() { a.release(slot) })
	mustPanic(t, "unissued slot", func() { a.release(99) })
	mustPanic(t, "negative slot", func() { a.release(-1) })
}

func TestArenaLIFORecycle(t *testing.T) {
	a := NewArena()
	_, s0 := a.alloc()
	_, s1 := a.alloc()
	a.release(s0)
	a.release(s1)
	if _, got := a.alloc(); got != s1 {
		t.Errorf("recycled %d, want most recently freed %d", got, s1)
	}
	if a.Cap() != 2 {
		t.Errorf("Cap = %d, want 2", a.Cap())
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}
