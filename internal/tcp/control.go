// Package tcp implements a packet-granularity TCP endpoint over the
// netsim substrate, at the fidelity of NS2's TCP agents: cumulative ACKs,
// NewReno fast retransmit / fast recovery without SACK, go-back-N on
// retransmission timeout, RFC 6298 RTO estimation with a configurable
// floor, and per-packet echo timestamps for RTT measurement.
//
// Window policy is pluggable through the CongestionControl interface
// (package cc provides DCTCP, L2DCT, CUBIC and GIP; package core provides
// the paper's TCP-TRIM). The baseline Reno policy lives here because it is
// the default.
package tcp

import (
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

// Control is the surface a congestion-control module uses to observe and
// steer its connection. It is implemented by *Conn.
type Control interface {
	// Now returns the current virtual time.
	Now() sim.Time
	// After schedules fn on the simulation clock (for policy-internal
	// timers such as TCP-TRIM's probe deadline).
	After(d time.Duration, fn func()) sim.Timer

	// Cwnd returns the congestion window in segments.
	Cwnd() float64
	// SetCwnd sets the congestion window in segments; values below the
	// configured minimum window are clamped.
	SetCwnd(w float64)
	// Ssthresh returns the slow-start threshold in segments.
	Ssthresh() float64
	// SetSsthresh sets the slow-start threshold in segments.
	SetSsthresh(w float64)
	// MinCwnd returns the configured window floor in segments.
	MinCwnd() float64

	// FlightSegs returns the number of segments currently outstanding.
	FlightSegs() int

	// SRTT returns the connection's RFC 6298 smoothed RTT estimate (zero
	// before the first sample).
	SRTT() time.Duration

	// SinceLastSend returns the idle interval since the last data
	// transmission and whether any data was ever sent.
	SinceLastSend() (time.Duration, bool)

	// Suspend stops transmission of new data until Resume is called.
	// Retransmissions and ACK processing continue.
	Suspend()
	// Resume re-enables transmission and immediately tries to send.
	Resume()
	// AllowBeyondWindow sets (not accumulates) an allowance of n new
	// segments that may be transmitted even if the congestion window is
	// full (used by TCP-TRIM to emit its probe packets regardless of
	// stale flight). Pass 0 to revoke an unused allowance.
	AllowBeyondWindow(n int)

	// LinkRate returns the configured access-link capacity (the "C" of
	// the paper's Eq. 22), or 0 when not configured.
	LinkRate() netsim.Bitrate
	// WirePacketSize returns the full wire size in bytes of an MSS
	// segment (payload + header).
	WirePacketSize() int
}

// AckEvent describes an ACK that advanced the left window edge.
type AckEvent struct {
	// Ack is the cumulative acknowledgement (next expected byte).
	Ack int64
	// AckedBytes / AckedSegs quantify the newly acknowledged data.
	AckedBytes int64
	AckedSegs  int
	// RTT is the sample measured from the ACK's echoed timestamp.
	RTT time.Duration
	// ECE reports whether the ACK carried an ECN congestion echo.
	ECE bool
	// InRecovery reports whether the connection is in fast recovery.
	InRecovery bool
}

// SendEvent describes a data segment handed to the network.
type SendEvent struct {
	// Seq / EndSeq delimit the segment's payload bytes.
	Seq    int64
	EndSeq int64
	// Retransmit marks retransmissions.
	Retransmit bool
	// Gap is the idle interval since the previous data transmission
	// (zero for the first segment of a connection).
	Gap time.Duration
}

// EventKind classifies connection-lifecycle events for observers.
type EventKind int

// Connection event kinds.
const (
	EventSend EventKind = iota + 1
	EventRetransmit
	EventAck
	EventDupAck
	EventEnterRecovery
	EventExitRecovery
	EventTimeout
	// EventRecoverySignal marks a switch-assisted recovery signal acted
	// on by the TRACKs policy; EventTLPProbe a RACK-TLP tail-loss probe.
	EventRecoverySignal
	EventTLPProbe
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventSend:
		return "send"
	case EventRetransmit:
		return "retransmit"
	case EventAck:
		return "ack"
	case EventDupAck:
		return "dupack"
	case EventEnterRecovery:
		return "enter-recovery"
	case EventExitRecovery:
		return "exit-recovery"
	case EventTimeout:
		return "timeout"
	case EventRecoverySignal:
		return "recovery-signal"
	case EventTLPProbe:
		return "tlp-probe"
	default:
		return "unknown"
	}
}

// Event is one observable connection state transition.
type Event struct {
	At   sim.Time
	Kind EventKind
	// Seq is the segment sequence for send events; Ack the cumulative
	// acknowledgement for ack events.
	Seq int64
	Ack int64
	// Cwnd and Flight snapshot the window state after the transition.
	Cwnd   float64
	Flight int
}

// Observer receives connection events (see package trace for a ready
// recorder). Observers must not mutate the connection.
type Observer interface {
	Record(ev Event)
}

// CongestionControl is the pluggable window policy. The connection owns
// all transport mechanics (sequencing, loss detection, timers) and
// consults the policy at these points. Implementations are per-connection
// and not safe for concurrent use — the simulation is single-threaded.
type CongestionControl interface {
	// Name identifies the variant in experiment output.
	Name() string
	// Attach binds the policy to its connection before any traffic.
	Attach(ctl Control)
	// BeforeSend is consulted immediately before each new-data (never
	// retransmitted) segment is generated. The policy may mutate window
	// state or suspend the sender.
	BeforeSend()
	// OnSent is notified after a new-data segment is handed to the
	// network. Returning true tags the packet as a probe (trace marker).
	OnSent(ev SendEvent) bool
	// OnAck handles a window-advancing ACK: growth and any delay- or
	// ECN-based reduction policy.
	OnAck(ev AckEvent)
	// OnDupAck is notified of each duplicate ACK.
	OnDupAck()
	// SsthreshAfterLoss returns the slow-start threshold (in segments)
	// to install when loss is detected; the connection applies its own
	// fast-recovery window mechanics around it.
	SsthreshAfterLoss() float64
	// OnTimeout is notified after an RTO fired; the connection has
	// already set cwnd to the minimum window and updated ssthresh.
	OnTimeout()
}
