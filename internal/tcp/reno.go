package tcp

// Reno is the baseline window policy: slow start, congestion avoidance,
// and half-window back-off. It is what the paper calls "TCP".
type Reno struct {
	ctl Control
}

var _ CongestionControl = (*Reno)(nil)

// NewReno returns the baseline Reno policy.
func NewReno() *Reno { return &Reno{} }

// Name implements CongestionControl.
func (r *Reno) Name() string { return "TCP" }

// Attach implements CongestionControl.
func (r *Reno) Attach(ctl Control) { r.ctl = ctl }

// BeforeSend implements CongestionControl.
func (r *Reno) BeforeSend() {}

// OnSent implements CongestionControl.
func (r *Reno) OnSent(SendEvent) bool { return false }

// OnAck implements CongestionControl: standard slow-start / congestion-
// avoidance growth.
func (r *Reno) OnAck(ev AckEvent) {
	GrowReno(r.ctl, ev)
}

// OnDupAck implements CongestionControl.
func (r *Reno) OnDupAck() {}

// SsthreshAfterLoss implements CongestionControl: half the window.
func (r *Reno) SsthreshAfterLoss() float64 {
	return HalfWindow(r.ctl)
}

// OnTimeout implements CongestionControl.
func (r *Reno) OnTimeout() {}

// GrowReno applies standard Reno window growth for an advancing ACK:
// +1 segment per acked segment in slow start, +acked/cwnd in congestion
// avoidance. Growth is frozen during fast recovery (the connection handles
// inflation itself). Shared by the Reno-derived policies (DCTCP, L2DCT,
// TRIM).
func GrowReno(ctl Control, ev AckEvent) {
	if ev.InRecovery {
		return
	}
	cwnd := ctl.Cwnd()
	if cwnd < ctl.Ssthresh() {
		ctl.SetCwnd(cwnd + float64(ev.AckedSegs))
		return
	}
	ctl.SetCwnd(cwnd + float64(ev.AckedSegs)/cwnd)
}

// HalfWindow returns max(flight/2, minimum window), the classic Reno
// back-off target, shared by Reno-derived policies.
func HalfWindow(ctl Control) float64 {
	half := float64(ctl.FlightSegs()) / 2
	if minW := ctl.MinCwnd(); half < minW {
		return minW
	}
	return half
}
