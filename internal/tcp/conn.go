package tcp

import (
	"errors"
	"fmt"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

// Configuration defaults. The 200 ms RTO floor matches the paper's default
// ("the retransmission timeout (RTO) is 200 milliseconds"); experiments
// override it per scenario (20 ms in Fig. 8, 1 ms in Fig. 9b).
const (
	DefaultMSS        = netsim.MSS
	DefaultMinCwnd    = 2
	DefaultInitCwnd   = 2
	DefaultMinRTO     = 200 * time.Millisecond
	DefaultMaxRTO     = 10 * time.Second
	defaultSsthresh   = 1 << 30 // effectively unbounded slow start
	maxBackoffShift   = 6
	dupAckThreshold   = 3
	windowSlack       = 1e-9 // float tolerance in window comparisons
	maxSegmentsLimit  = 1 << 30
	minRTTSampleFloor = time.Nanosecond
)

// Config describes one unidirectional TCP connection (data flows
// Sender→Receiver; ACKs flow back).
type Config struct {
	// Sender and Receiver are the endpoints' stacks.
	Sender   *Stack
	Receiver *Stack
	// Flow must be unique within the network.
	Flow netsim.FlowID
	// CC is the window policy; nil means Reno.
	CC CongestionControl
	// MSS in payload bytes; 0 means DefaultMSS.
	MSS int
	// InitialCwnd / MinCwnd in segments; 0 means the defaults (2).
	InitialCwnd float64
	MinCwnd     float64
	// MinRTO / MaxRTO bound the retransmission timer; 0 means defaults.
	MinRTO time.Duration
	MaxRTO time.Duration
	// ECN marks data packets ECN-capable, enabling switch CE marking.
	ECN bool
	// SACK enables selective acknowledgements: the receiver reports its
	// out-of-order ranges (up to netsim.MaxSackBlocks per ACK, rotating
	// so consecutive ACKs cover the whole picture) and the sender keeps
	// a scoreboard — directing retransmissions at holes that qualify as
	// lost (RFC 6675's three-segments-above rule), excluding SACKed data
	// from its in-flight estimate, and skipping SACKed ranges in the
	// post-timeout go-back-N sweep. The payoff regime is multi-loss
	// windows (heavy or bursty loss); under light loss it performs like
	// NewReno. Off by default — the paper's NS2 experiments use
	// Reno/NewReno without SACK; this is a documented extension.
	SACK bool
	// DelayedAck enables receiver ACK coalescing: an ACK is emitted for
	// every second in-order data packet or after this delay, whichever
	// comes first. Out-of-order arrivals, duplicates, and CE-state
	// changes (the DCTCP rule) are acknowledged immediately so loss
	// detection and ECN feedback stay prompt. Zero disables coalescing
	// (per-packet ACKs — the paper's NS2-like default, used by every
	// reproduced experiment).
	DelayedAck time.Duration
	// LinkRate is the access-link capacity hint used by delay-based
	// policies (TCP-TRIM's K); 0 when unknown.
	LinkRate netsim.Bitrate
	// Recovery selects the loss-recovery policy; nil means Classic
	// (dup-ACK threshold + NewReno/SACK recovery, the historical inline
	// behavior). A policy instance binds to exactly one connection at a
	// time; Detach releases it for reuse on a successor connection.
	Recovery RecoveryPolicy
	// ArmRTOOnLoneTail arms the retransmission backstop for every data
	// segment handed to the network. The seed-verbatim default judges
	// idleness from sndUna == sndNxt *before* trySend advances sndNxt, so
	// a lone segment sent from an idle window arms no RTO at all and a
	// loss of it stalls the connection forever (the wart pinned in
	// recovery_fuzz_test.go). Off by default so the pinned figures stay
	// byte-identical; hybrid-fidelity fleets and the recovery sweep turn
	// it on. The deviation is catalogued in DESIGN.md §7.
	ArmRTOOnLoneTail bool
	// Arena, when non-nil, places the connection's hot state (sequence
	// pointers, window, RTT estimator) in the given shard-local arena
	// instead of a standalone allocation, keeping co-sharded connections'
	// hot lines contiguous. Detach returns the slot to the arena.
	Arena *Arena
	// Restore, when non-nil, seeds the connection from state captured by
	// Detach on a predecessor, continuing the same logical flow: sequence
	// space, congestion window, RTT estimator, Karn back-off, packet-ID
	// counters, and lifetime stats all carry over.
	Restore *SavedState
	// Observer, when non-nil, receives connection lifecycle events
	// (sends, ACKs, recoveries, timeouts) for tracing.
	Observer Observer
}

// Stats aggregates lifetime counters for one connection.
type Stats struct {
	Timeouts       int
	FastRecoveries int
	RetransSegs    int
	SentSegs       int
	ProbeSegs      int
	AcksSent       int
	AckedBytes     int64
	DeliveredBytes int64
	ECESeen        int

	// Recovery-path breakdown of RetransSegs: RTORetransSegs counts the
	// post-timeout go-back-N resends, FastRetransSegs the loss-detection
	// repairs (dup-ACK threshold, SACK holes, RACK markings, signal-
	// triggered), and TLPProbes the RACK-TLP tail probes. The three sum
	// to RetransSegs.
	RTORetransSegs  int
	FastRetransSegs int
	TLPProbes       int
	// SpuriousRetransSegs counts, at the receiver, retransmissions that
	// carried no bytes the receiver was missing (the data was already
	// cumulatively delivered or fully inside the out-of-order store).
	SpuriousRetransSegs int
	// RecoverySignals counts switch-assisted recovery signals received
	// (netsim.TRACKsAgent injections), whether or not the policy acted.
	RecoverySignals int
}

// TrainResult reports the completion of one application packet train.
type TrainResult struct {
	// Released is when the train was handed to the connection; Completed
	// is when the sender received the cumulative ACK covering its last
	// byte.
	Released  sim.Time
	Completed sim.Time
	// Bytes is the train's payload size.
	Bytes int
}

// CompletionTime returns the train's sender-observed completion time.
func (r TrainResult) CompletionTime() time.Duration {
	return r.Completed.Sub(r.Released)
}

type train struct {
	end      int64
	released sim.Time
	bytes    int
	done     func(TrainResult)
}

type interval struct{ start, end int64 }

// Conn is one simulated TCP connection. It holds both the sender and the
// receiver endpoint state; the simulation has a global view, so splitting
// them into separate objects would only add plumbing. Not safe for
// concurrent use by arbitrary callers; under a sharded network the
// sender-side methods run on the sender host's shard and the
// receiver-side ones (handleData through sendAck) on the receiver's,
// which touch disjoint fields — sched/rsched keep each side's timers on
// its own shard, and the packet-ID counters are split per side.
type Conn struct {
	sched    *sim.Scheduler // sender host's scheduler
	rsched   *sim.Scheduler // receiver host's scheduler (delayed-ACK timer)
	cfg      Config
	cc       CongestionControl
	recovery RecoveryPolicy
	mss      int

	// hot is the connection's hot state — sequence pointers, congestion
	// window, and the RTT estimator — split out of the struct so arenas
	// can pack co-sharded connections' hot lines contiguously (cold state
	// stays behind this index). Standalone when cfg.Arena is nil.
	hot     *connHot
	arena   *Arena
	slot    int32
	minCwnd float64

	dupAcks    int
	inRecovery bool
	recover    int64

	suspended bool
	bonus     int
	sending   bool // re-entrancy guard for trySend

	hasSent    bool
	lastSendAt sim.Time

	// SACK scoreboard: received-but-unacknowledged ranges above sndUna,
	// sorted and merged. rtxHint is the recovery retransmission
	// high-water mark (holes below it were already retransmitted this
	// recovery).
	sacked  []interval
	rtxHint int64

	// RTO state (RFC 6298; the smoothed estimator lives in hot).
	rtoTimer sim.Timer
	backoff  int
	// lastRTOAt is when the most recent RTO fired (zero if none). Karn's
	// algorithm: while backed off, only an ACK whose echoed timestamp
	// postdates the timeout — proof a post-RTO (re)transmission was
	// delivered — may reset the back-off; a straggling ACK of a pre-RTO
	// original is ambiguous and must not.
	lastRTOAt sim.Time
	// rtoFn is c.onRTO bound once at construction so re-arming the timer
	// does not allocate a fresh method-value closure per segment.
	rtoFn func()

	trains []train

	// Receiver state.
	rcvNxt int64
	ooo    []interval
	// sackRotate cycles which scoreboard blocks are advertised so the
	// sender learns the whole out-of-order picture across consecutive
	// ACKs (the option space fits only MaxSackBlocks per ACK).
	sackRotate int
	// lastTouched is the ooo range most recently created or extended;
	// it is always advertised first (RFC 2018 behaviour).
	lastTouched interval
	// Delayed-ACK state (only used when cfg.DelayedAck > 0).
	ackPending   bool
	pendingEcho  sim.Time
	pendingCE    bool
	pendingProbe bool
	ackTimer     sim.Timer
	ackFlushFn   func()
	rcvCEState   bool

	stats   Stats
	nextPkt uint64
	nextAck uint64
}

var _ Control = (*Conn)(nil)

// NewConn validates cfg, registers the connection with both stacks, and
// returns it ready to carry trains.
func NewConn(cfg Config) (*Conn, error) {
	if cfg.Sender == nil || cfg.Receiver == nil {
		return nil, errors.New("tcp: both sender and receiver stacks are required")
	}
	if cfg.Sender.net != cfg.Receiver.net {
		return nil, errors.New("tcp: endpoints belong to different networks")
	}
	if cfg.CC == nil {
		cfg.CC = NewReno()
	}
	if cfg.MSS == 0 {
		cfg.MSS = DefaultMSS
	}
	if cfg.MSS < 1 {
		return nil, fmt.Errorf("tcp: invalid MSS %d", cfg.MSS)
	}
	if cfg.InitialCwnd == 0 {
		cfg.InitialCwnd = DefaultInitCwnd
	}
	if cfg.MinCwnd == 0 {
		cfg.MinCwnd = DefaultMinCwnd
	}
	if cfg.MinRTO == 0 {
		cfg.MinRTO = DefaultMinRTO
	}
	if cfg.MaxRTO == 0 {
		cfg.MaxRTO = DefaultMaxRTO
	}
	if cfg.Recovery == nil {
		cfg.Recovery = NewClassicRecovery()
	}
	c := &Conn{
		sched:    cfg.Sender.host.Scheduler(),
		rsched:   cfg.Receiver.host.Scheduler(),
		cfg:      cfg,
		cc:       cfg.CC,
		recovery: cfg.Recovery,
		mss:      cfg.MSS,
		slot:     -1,
		minCwnd:  cfg.MinCwnd,
	}
	if cfg.Arena != nil {
		c.arena = cfg.Arena
		c.hot, c.slot = cfg.Arena.alloc()
	} else {
		c.hot = &connHot{}
	}
	c.hot.cwnd = cfg.InitialCwnd
	c.hot.ssthresh = defaultSsthresh
	if cfg.Restore != nil {
		c.restore(cfg.Restore)
	}
	c.rtoFn = c.onRTO
	c.ackFlushFn = c.flushPendingAck
	if err := cfg.Sender.registerSender(cfg.Flow, c); err != nil {
		c.releaseHot()
		return nil, err
	}
	if err := cfg.Receiver.registerReceiver(cfg.Flow, c); err != nil {
		cfg.Sender.unregisterSender(cfg.Flow)
		c.releaseHot()
		return nil, err
	}
	c.recovery.attach(c)
	c.cc.Attach(c)
	return c, nil
}

// releaseHot returns the hot-state slot to the arena, if any, and poisons
// the pointer so any further use of the connection faults loudly.
func (c *Conn) releaseHot() {
	if c.arena != nil {
		c.arena.release(c.slot)
		c.arena = nil
		c.slot = -1
	}
	c.hot = nil
}

// Scheduler returns the scheduler driving the sender side of this
// connection — the sender host's shard under a partitioned network. The
// application layer must schedule train releases on it so they run on
// the shard that owns the connection's sender state.
func (c *Conn) Scheduler() *sim.Scheduler { return c.sched }

// Flow returns the connection's flow id.
func (c *Conn) Flow() netsim.FlowID { return c.cfg.Flow }

// CC returns the attached congestion-control policy.
func (c *Conn) CC() CongestionControl { return c.cc }

// Recovery returns the attached loss-recovery policy.
func (c *Conn) Recovery() RecoveryPolicy { return c.recovery }

// Stats returns a copy of the connection counters.
func (c *Conn) Stats() Stats { return c.stats }

// SendTrain appends a packet train (an HTTP response, in the paper's
// terms) of size bytes to the send buffer. done, if non-nil, is invoked
// when the sender receives the cumulative ACK covering the train's last
// byte.
func (c *Conn) SendTrain(size int, done func(TrainResult)) {
	if size <= 0 {
		if done != nil {
			now := c.sched.Now()
			done(TrainResult{Released: now, Completed: now})
		}
		return
	}
	c.hot.bufEnd += int64(size)
	c.trains = append(c.trains, train{
		end:      c.hot.bufEnd,
		released: c.sched.Now(),
		bytes:    size,
		done:     done,
	})
	c.trySend()
}

// Pending returns the number of bytes appended but not yet acknowledged.
func (c *Conn) Pending() int64 { return c.hot.bufEnd - c.hot.sndUna }

// --- Control implementation -------------------------------------------

// Now implements Control.
func (c *Conn) Now() sim.Time { return c.sched.Now() }

// After implements Control.
func (c *Conn) After(d time.Duration, fn func()) sim.Timer {
	return c.sched.After(d, fn)
}

// Cwnd implements Control.
func (c *Conn) Cwnd() float64 { return c.hot.cwnd }

// SetCwnd implements Control.
func (c *Conn) SetCwnd(w float64) {
	if w < c.minCwnd {
		w = c.minCwnd
	}
	if w > maxSegmentsLimit {
		w = maxSegmentsLimit
	}
	c.hot.cwnd = w
}

// Ssthresh implements Control.
func (c *Conn) Ssthresh() float64 { return c.hot.ssthresh }

// SetSsthresh implements Control.
func (c *Conn) SetSsthresh(w float64) {
	if w < c.minCwnd {
		w = c.minCwnd
	}
	c.hot.ssthresh = w
}

// MinCwnd implements Control.
func (c *Conn) MinCwnd() float64 { return c.minCwnd }

// FlightSegs implements Control. With SACK enabled, selectively
// acknowledged bytes do not count as in flight (the RFC 6675 "pipe").
func (c *Conn) FlightSegs() int {
	bytes := c.hot.sndNxt - c.hot.sndUna
	if c.cfg.SACK {
		bytes -= c.sackedBytes()
	}
	if bytes <= 0 {
		return 0
	}
	return int((bytes + int64(c.mss) - 1) / int64(c.mss))
}

// sackedBytes returns the total bytes currently on the scoreboard.
func (c *Conn) sackedBytes() int64 {
	var total int64
	for _, iv := range c.sacked {
		total += iv.end - iv.start
	}
	return total
}

// SRTT implements Control.
func (c *Conn) SRTT() time.Duration { return c.hot.srtt }

// Suspend implements Control.
func (c *Conn) Suspend() { c.suspended = true }

// Resume implements Control.
func (c *Conn) Resume() {
	if !c.suspended {
		return
	}
	c.suspended = false
	c.trySend()
}

// AllowBeyondWindow implements Control.
func (c *Conn) AllowBeyondWindow(n int) {
	if n < 0 {
		n = 0
	}
	c.bonus = n
}

// LinkRate implements Control.
func (c *Conn) LinkRate() netsim.Bitrate { return c.cfg.LinkRate }

// WirePacketSize implements Control.
func (c *Conn) WirePacketSize() int { return c.mss + netsim.HeaderSize }

// SinceLastSend returns the idle time since the last data transmission
// and whether any data was ever sent.
func (c *Conn) SinceLastSend() (time.Duration, bool) {
	if !c.hasSent {
		return 0, false
	}
	return c.sched.Now().Sub(c.lastSendAt), true
}

// --- Sender ------------------------------------------------------------

// trySend transmits as much new data as the window (plus any bonus
// grants) allows.
func (c *Conn) trySend() {
	if c.sending {
		return
	}
	c.sending = true
	defer func() { c.sending = false }()

	for !c.suspended && c.hot.sndNxt < c.hot.bufEnd {
		if !c.windowOpen() {
			break
		}
		// After a timeout, go-back-N resends below maxSent; with SACK the
		// sweep skips ranges the receiver already holds.
		if c.cfg.SACK {
			for _, iv := range c.sacked {
				if iv.start <= c.hot.sndNxt && c.hot.sndNxt < iv.end {
					c.hot.sndNxt = iv.end
				}
			}
			if c.hot.sndNxt >= c.hot.bufEnd {
				break
			}
		}
		isRtx := c.hot.sndNxt < c.hot.maxSent
		if !isRtx {
			// Algorithm 1 consults the policy "before sending a new
			// packet (not a retransmission packet)".
			c.cc.BeforeSend()
			if c.suspended {
				break
			}
			if !c.windowOpen() {
				break
			}
		}
		seg := int64(c.mss)
		if rem := c.hot.bufEnd - c.hot.sndNxt; rem < seg {
			seg = rem
		}
		if c.cfg.SACK {
			for _, iv := range c.sacked {
				if iv.start > c.hot.sndNxt && iv.start < c.hot.sndNxt+seg {
					seg = iv.start - c.hot.sndNxt
					break
				}
			}
		}
		usedBonus := !c.fitsWindow()
		kind := sendNew
		if isRtx {
			// Below maxSent only after an RTO rewound sndNxt: the
			// go-back-N sweep is the timeout-driven retransmission path.
			kind = sendRtxTimeout
		}
		c.sendSegment(c.hot.sndNxt, c.hot.sndNxt+seg, kind)
		c.hot.sndNxt += seg
		if c.hot.sndNxt > c.hot.maxSent {
			c.hot.maxSent = c.hot.sndNxt
		}
		if usedBonus && c.bonus > 0 {
			c.bonus--
		}
	}
}

// fitsWindow reports whether one more segment fits in the congestion
// window proper (ignoring bonus grants).
func (c *Conn) fitsWindow() bool {
	return float64(c.FlightSegs()+1) <= c.hot.cwnd+windowSlack
}

// windowOpen reports whether a segment may be sent, counting bonus
// capacity when the window proper is full.
func (c *Conn) windowOpen() bool {
	return c.fitsWindow() || c.bonus > 0
}

// sendKind classifies a data transmission for the retransmission
// breakdown counters (Stats.RTORetransSegs / FastRetransSegs /
// TLPProbes).
type sendKind uint8

const (
	sendNew        sendKind = iota // first transmission
	sendRtxTimeout                 // post-RTO go-back-N resend
	sendRtxFast                    // loss-detection repair (dup-ACK, SACK hole, RACK, signal)
	sendRtxProbe                   // RACK-TLP tail-loss probe
)

// sendSegment emits one data segment onto the network.
func (c *Conn) sendSegment(seq, end int64, kind sendKind) {
	retransmit := kind != sendNew
	if retransmit && sim.InvariantChecks() {
		// No recovery policy's targeted repair may resend data already
		// cumulatively ACKed, nor claim to retransmit data never sent.
		// The post-RTO go-back-N sweep is exempt on both edges: a delayed
		// ACK can overtake the rewind (the sweep then re-covers acked
		// bytes, which the receiver discards and counts as spurious), and
		// a sweep segment may mix old bytes with data appended after the
		// rewind, extending past maxSent.
		if seq >= c.hot.maxSent || end <= seq {
			panic(fmt.Sprintf("tcp: invalid retransmission [%d,%d) with sndUna=%d maxSent=%d",
				seq, end, c.hot.sndUna, c.hot.maxSent))
		}
		if kind != sendRtxTimeout && (seq < c.hot.sndUna || end > c.hot.maxSent) {
			panic(fmt.Sprintf("tcp: repair retransmission [%d,%d) outside [sndUna=%d, maxSent=%d]",
				seq, end, c.hot.sndUna, c.hot.maxSent))
		}
	}
	now := c.sched.Now()
	var gap time.Duration
	if c.hasSent {
		gap = now.Sub(c.lastSendAt)
	}
	payload := int(end - seq)
	pkt := c.cfg.Sender.host.AllocPacket()
	pkt.ID = c.nextPktID()
	pkt.Flow = c.cfg.Flow
	pkt.Src = c.cfg.Sender.host.ID()
	pkt.Dst = c.cfg.Receiver.host.ID()
	pkt.Size = payload + netsim.HeaderSize
	pkt.Payload = payload
	pkt.Seq = seq
	pkt.ECT = c.cfg.ECN
	pkt.SentAt = now
	pkt.Retransmit = retransmit
	probe := c.cc.OnSent(SendEvent{Seq: seq, EndSeq: end, Retransmit: retransmit, Gap: gap})
	if probe {
		pkt.Probe = true
		c.stats.ProbeSegs++
	}
	c.stats.SentSegs++
	switch kind {
	case sendRtxTimeout:
		c.stats.RetransSegs++
		c.stats.RTORetransSegs++
	case sendRtxFast:
		c.stats.RetransSegs++
		c.stats.FastRetransSegs++
	case sendRtxProbe:
		c.stats.RetransSegs++
		c.stats.TLPProbes++
	}
	c.hasSent = true
	c.lastSendAt = now
	ev := EventSend
	if retransmit {
		ev = EventRetransmit
	}
	c.observe(ev, seq, 0)
	c.cfg.Sender.host.Send(pkt)
	// RFC 6298: start the timer if it is not running; transmissions must
	// not postpone an already-armed timer (otherwise a steady stream of
	// dup-ACK-driven sends can starve the RTO forever). Note armRTO's
	// idle test reads sndUna == sndNxt, and trySend advances sndNxt only
	// after sendSegment returns — so a lone segment sent from an idle
	// window arms no timer and stalls the connection if it is lost. With
	// ArmRTOOnLoneTail the timer is armed unconditionally here (a segment
	// was just handed to the network, so data is outstanding by
	// construction); the default keeps the quirk verbatim for
	// byte-identity with the seed figures — RACK-TLP's tail-loss probe
	// repairs exactly this case.
	if !c.rtoTimer.Pending() {
		if c.cfg.ArmRTOOnLoneTail {
			d := c.rto()
			if !c.rtoTimer.Reset(d) {
				c.rtoTimer = c.sched.After(d, c.rtoFn)
			}
		} else {
			c.armRTO()
		}
	}
	c.recovery.onSent(seq, end, retransmit)
}

func (c *Conn) nextPktID() uint64 {
	c.nextPkt++
	return uint64(c.cfg.Flow)<<32 | c.nextPkt
}

// nextAckID numbers receiver-originated packets from a counter the
// sender side never touches (the two endpoints may live on different
// shards); bit 31 keeps the two ID spaces disjoint.
func (c *Conn) nextAckID() uint64 {
	c.nextAck++
	return uint64(c.cfg.Flow)<<32 | 1<<31 | c.nextAck
}

// observe reports a lifecycle event to the configured observer, if any.
func (c *Conn) observe(kind EventKind, seq, ack int64) {
	if c.cfg.Observer == nil {
		return
	}
	c.cfg.Observer.Record(Event{
		At:     c.sched.Now(),
		Kind:   kind,
		Seq:    seq,
		Ack:    ack,
		Cwnd:   c.hot.cwnd,
		Flight: c.FlightSegs(),
	})
}

// handleAck processes an ACK arriving at the sender.
func (c *Conn) handleAck(pkt *netsim.Packet) {
	if pkt.RecoverySignal {
		// Switch-assisted recovery signal (netsim.TRACKsAgent): not a
		// receiver ACK — no RTT sample, no window-edge bookkeeping. The
		// policy decides whether to act on it.
		c.stats.RecoverySignals++
		c.recovery.onSignal(pkt.Ack)
		return
	}
	now := c.sched.Now()
	rtt := now.Sub(pkt.Echo)
	if pkt.ECE {
		c.stats.ECESeen++
	}

	if pkt.Ack > c.hot.sndUna {
		c.onAdvancingAck(pkt, rtt)
		return
	}
	c.onDuplicateAck(pkt)
}

func (c *Conn) onAdvancingAck(pkt *netsim.Packet, rtt time.Duration) {
	if c.cfg.SACK {
		c.mergeSack(pkt.Sack)
	}
	ackedBytes := pkt.Ack - c.hot.sndUna
	ackedSegs := int((ackedBytes + int64(c.mss) - 1) / int64(c.mss))
	c.hot.sndUna = pkt.Ack
	if c.cfg.SACK {
		c.trimSackBelow(c.hot.sndUna)
		if c.rtxHint < c.hot.sndUna {
			c.rtxHint = c.hot.sndUna
		}
	}
	c.stats.AckedBytes += ackedBytes
	if rtt >= minRTTSampleFloor {
		c.updateRTOEstimator(rtt)
	}
	if c.backoff == 0 || pkt.Echo >= c.lastRTOAt {
		// Karn: reset the exponential back-off only when the ACK echoes a
		// timestamp from after the last timeout — evidence a post-RTO
		// transmission got through. A late ACK of a pre-RTO original
		// advances the window but says nothing about the retransmitted
		// segment's fate, so the back-off must survive it.
		c.backoff = 0
	}

	c.recovery.onAckAdvance(pkt, ackedSegs, rtt)

	c.cc.OnAck(AckEvent{
		Ack:        pkt.Ack,
		AckedBytes: ackedBytes,
		AckedSegs:  ackedSegs,
		RTT:        rtt,
		ECE:        pkt.ECE,
		InRecovery: c.inRecovery,
	})

	c.observe(EventAck, 0, pkt.Ack)
	c.completeTrains()
	c.armRTO()
	c.trySend()
}

func (c *Conn) onDuplicateAck(pkt *netsim.Packet) {
	if pkt.Ack != c.hot.sndUna || c.hot.sndNxt == c.hot.sndUna {
		return // stale ACK or nothing in flight
	}
	if c.cfg.SACK {
		before := c.sackedBytes()
		c.mergeSack(pkt.Sack)
		if c.sackedBytes() == before && before == 0 {
			// A duplicate ACK carrying no SACK information while the
			// scoreboard is empty is a byte-identical copy — network
			// duplication of the ACK, or the receiver's echo of a
			// duplicated data segment — and signals nothing about loss;
			// counting it would fire spurious fast retransmits under
			// fault injection. Once the scoreboard holds data a recovery
			// is in progress, and no-new-info duplicates keep counting as
			// RFC 5681 loss signals.
			return
		}
	}
	c.dupAcks++
	c.observe(EventDupAck, 0, pkt.Ack)
	c.cc.OnDupAck()
	c.recovery.onDupAck(pkt)
}

func (c *Conn) enterFastRecovery() {
	c.inRecovery = true
	c.recover = c.hot.sndNxt
	// The retransmission high-water mark survives back-to-back
	// recoveries: holes already repaired (whose rtx may still be in
	// flight) are not re-sent at each recovery entry.
	if c.rtxHint < c.hot.sndUna {
		c.rtxHint = c.hot.sndUna
	}
	c.stats.FastRecoveries++
	c.SetSsthresh(c.cc.SsthreshAfterLoss())
	c.SetCwnd(c.hot.ssthresh + dupAckThreshold)
	c.observe(EventEnterRecovery, c.hot.sndUna, 0)
	c.retransmitFirstUnacked()
}

func (c *Conn) retransmitFirstUnacked() {
	end := c.hot.sndUna + int64(c.mss)
	if c.cfg.SACK && len(c.sacked) > 0 && c.sacked[0].start < end {
		// Do not re-send bytes the receiver already holds.
		end = c.sacked[0].start
	}
	if end > c.hot.maxSent {
		end = c.hot.maxSent
	}
	if end <= c.hot.sndUna {
		return
	}
	c.sendSegment(c.hot.sndUna, end, sendRtxFast)
	if c.rtxHint < end {
		c.rtxHint = end
	}
}

// retransmitNextHole repairs the first scoreboard hole at or above the
// recovery high-water mark, when the congestion window has room. It
// reports whether a retransmission was sent.
func (c *Conn) retransmitNextHole() bool {
	if !c.fitsWindow() {
		return false
	}
	seq, end := c.nextHole()
	if end <= seq {
		return false
	}
	c.sendSegment(seq, end, sendRtxFast)
	c.rtxHint = end
	return true
}

// nextHole returns the next unsacked segment in [max(sndUna, rtxHint),
// sndNxt) that qualifies as lost under the RFC 6675 heuristic — at least
// three segments' worth of SACKed data lie above it (data merely still in
// flight is not a hole). The segment is clipped to one MSS and to the
// following SACK block. Returns an empty range when no hole qualifies.
func (c *Conn) nextHole() (seq, end int64) {
	seq = c.hot.sndUna
	if c.rtxHint > seq {
		seq = c.rtxHint
	}
	// Skip past any block covering seq.
	for _, iv := range c.sacked {
		if iv.start <= seq && seq < iv.end {
			seq = iv.end
		}
	}
	if seq >= c.hot.sndNxt {
		return seq, seq
	}
	end = seq + int64(c.mss)
	for _, iv := range c.sacked {
		if iv.start > seq && iv.start < end {
			end = iv.start
			break
		}
	}
	if end > c.hot.maxSent {
		end = c.hot.maxSent
	}
	if c.sackedBytesAbove(end) < int64(dupAckThreshold*c.mss) {
		return seq, seq
	}
	return seq, end
}

// sackedBytesAbove returns the scoreboard bytes strictly above pos.
func (c *Conn) sackedBytesAbove(pos int64) int64 {
	var total int64
	for _, iv := range c.sacked {
		if iv.end <= pos {
			continue
		}
		start := iv.start
		if start < pos {
			start = pos
		}
		total += iv.end - start
	}
	return total
}

// mergeSack folds the ACK's SACK blocks into the scoreboard.
func (c *Conn) mergeSack(blocks []netsim.SackBlock) {
	for _, b := range blocks {
		if b.End <= b.Start || b.End <= c.hot.sndUna {
			continue
		}
		start := b.Start
		if start < c.hot.sndUna {
			start = c.hot.sndUna
		}
		c.insertSacked(interval{start, b.End})
	}
}

func (c *Conn) insertSacked(iv interval) {
	pos := len(c.sacked)
	for i, cur := range c.sacked {
		if iv.start < cur.start {
			pos = i
			break
		}
	}
	c.sacked = append(c.sacked, interval{})
	copy(c.sacked[pos+1:], c.sacked[pos:])
	c.sacked[pos] = iv
	merged := c.sacked[:1]
	for _, cur := range c.sacked[1:] {
		last := &merged[len(merged)-1]
		if cur.start <= last.end {
			if cur.end > last.end {
				last.end = cur.end
			}
			continue
		}
		merged = append(merged, cur)
	}
	c.sacked = merged
}

// trimSackBelow drops scoreboard data at or below the cumulative ACK.
func (c *Conn) trimSackBelow(una int64) {
	out := c.sacked[:0]
	for _, iv := range c.sacked {
		if iv.end <= una {
			continue
		}
		if iv.start < una {
			iv.start = una
		}
		out = append(out, iv)
	}
	c.sacked = out
}

func (c *Conn) completeTrains() {
	now := c.sched.Now()
	for len(c.trains) > 0 && c.trains[0].end <= c.hot.sndUna {
		tr := c.trains[0]
		c.trains = c.trains[1:]
		if tr.done != nil {
			tr.done(TrainResult{Released: tr.released, Completed: now, Bytes: tr.bytes})
		}
	}
}

// --- RTO ---------------------------------------------------------------

func (c *Conn) updateRTOEstimator(rtt time.Duration) {
	if c.hot.srtt == 0 {
		c.hot.srtt = rtt
		c.hot.rttvar = rtt / 2
		return
	}
	// RFC 6298 with the standard gains.
	diff := c.hot.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	c.hot.rttvar = (3*c.hot.rttvar + diff) / 4
	c.hot.srtt = (7*c.hot.srtt + rtt) / 8
}

// rto returns the current retransmission timeout including back-off.
func (c *Conn) rto() time.Duration {
	base := c.hot.srtt + 4*c.hot.rttvar
	if base < c.cfg.MinRTO {
		base = c.cfg.MinRTO
	}
	shift := c.backoff
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	rto := base << shift
	if rto > c.cfg.MaxRTO {
		rto = c.cfg.MaxRTO
	}
	return rto
}

// armRTO (re)starts the retransmission timer while data is outstanding
// and stops it otherwise. The happy path — a still-pending timer pushed
// out by an ACK — re-slots the event in place via Reset instead of
// cancelling and rescheduling, which this path does once per ACK.
func (c *Conn) armRTO() {
	if c.hot.sndUna == c.hot.sndNxt {
		c.rtoTimer.Stop()
		c.rtoTimer = sim.Timer{}
		return
	}
	d := c.rto()
	if !c.rtoTimer.Reset(d) {
		c.rtoTimer = c.sched.After(d, c.rtoFn)
	}
}

func (c *Conn) onRTO() {
	c.rtoTimer = sim.Timer{}
	if c.hot.sndUna == c.hot.sndNxt {
		return
	}
	c.lastRTOAt = c.sched.Now()
	c.stats.Timeouts++
	c.observe(EventTimeout, c.hot.sndUna, 0)
	c.SetSsthresh(c.cc.SsthreshAfterLoss())
	c.SetCwnd(c.minCwnd)
	c.inRecovery = false
	c.dupAcks = 0
	c.bonus = 0
	// Exponential back-off, saturating at the shift that already pins
	// rto() to MaxRTO: a long blackout must not wind the counter past the
	// cap it would have to unwind from.
	if c.backoff < maxBackoffShift {
		c.backoff++
	}
	// Go-back-N: everything past the cumulative ACK is presumed lost.
	// With SACK the scoreboard survives the timeout so the resend sweep
	// skips data the receiver already holds.
	if !c.cfg.SACK {
		c.sacked = c.sacked[:0]
	}
	c.rtxHint = c.hot.sndUna
	c.hot.sndNxt = c.hot.sndUna
	c.recovery.onTimeout()
	c.cc.OnTimeout()
	c.trySend()
	c.armRTO()
}

// --- Receiver ----------------------------------------------------------

// handleData processes a data packet arriving at the receiver. With
// per-packet acknowledgements (the default), every arrival is ACKed
// immediately, echoing the packet's timestamp and CE mark. With
// DelayedAck configured, in-order arrivals coalesce two-per-ACK with a
// deadline, while out-of-order arrivals, duplicates, and CE transitions
// flush immediately.
func (c *Conn) handleData(pkt *netsim.Packet) {
	seq, end := pkt.Seq, pkt.Seq+int64(pkt.Payload)
	if pkt.Retransmit {
		// Spurious-retransmission accounting (counter only): the resend
		// brought nothing the receiver was missing — its bytes were
		// already delivered in order, or sit whole in an out-of-order
		// island.
		if end <= c.rcvNxt {
			c.stats.SpuriousRetransSegs++
		} else {
			for _, iv := range c.ooo {
				if iv.start <= seq && end <= iv.end {
					c.stats.SpuriousRetransSegs++
					break
				}
			}
		}
	}
	inOrder := seq <= c.rcvNxt && end > c.rcvNxt
	switch {
	case inOrder:
		c.rcvNxt = end
		c.drainOutOfOrder()
	case seq > c.rcvNxt:
		c.insertOutOfOrder(interval{seq, end})
		c.lastTouched = interval{seq, end}
	}

	if c.cfg.DelayedAck <= 0 {
		c.sendAck(pkt.SentAt, pkt.CE, pkt.Probe)
		return
	}

	ceChanged := pkt.CE != c.rcvCEState
	c.rcvCEState = pkt.CE
	if !inOrder || ceChanged {
		// Prompt feedback: dup ACKs drive fast retransmit, and exact CE
		// transitions keep DCTCP's fraction estimate faithful.
		c.flushPendingAck()
		c.sendAck(pkt.SentAt, pkt.CE, pkt.Probe)
		return
	}
	if c.ackPending {
		// Second in-order segment: acknowledge both.
		c.clearPendingAck()
		c.sendAck(pkt.SentAt, pkt.CE, pkt.Probe)
		return
	}
	c.ackPending = true
	c.pendingEcho = pkt.SentAt
	c.pendingCE = pkt.CE
	c.pendingProbe = pkt.Probe
	if !c.ackTimer.Reset(c.cfg.DelayedAck) {
		c.ackTimer = c.rsched.After(c.cfg.DelayedAck, c.ackFlushFn)
	}
}

// flushPendingAck emits a deferred ACK, if any.
func (c *Conn) flushPendingAck() {
	if !c.ackPending {
		return
	}
	echo, ce, probe := c.pendingEcho, c.pendingCE, c.pendingProbe
	c.clearPendingAck()
	c.sendAck(echo, ce, probe)
}

func (c *Conn) clearPendingAck() {
	c.ackPending = false
	c.ackTimer.Stop()
	c.ackTimer = sim.Timer{}
}

// sendAck emits a cumulative acknowledgement from the receiver,
// attaching SACK blocks for any out-of-order data when negotiated.
func (c *Conn) sendAck(echo sim.Time, ce, probe bool) {
	c.stats.AcksSent++
	ack := c.cfg.Receiver.host.AllocPacket()
	ack.ID = c.nextAckID()
	ack.Flow = c.cfg.Flow
	ack.Src = c.cfg.Receiver.host.ID()
	ack.Dst = c.cfg.Sender.host.ID()
	ack.Size = netsim.AckSize
	ack.IsAck = true
	ack.Ack = c.rcvNxt
	ack.Echo = echo
	ack.ECE = ce
	ack.Probe = probe
	if c.cfg.SACK && len(c.ooo) > 0 {
		ack.Sack = c.appendSackBlocks(ack.Sack[:0])
	}
	c.cfg.Receiver.host.Send(ack)
}

// DeliveredBytes returns the number of bytes delivered in order at the
// receiver, the goodput numerator.
func (c *Conn) DeliveredBytes() int64 { return c.rcvNxt }

// appendSackBlocks advertises up to MaxSackBlocks scoreboard ranges into
// blocks (typically a recycled packet's Sack slice): the most recently
// touched block first, then the remaining blocks in rotation so
// consecutive ACKs cover the whole out-of-order picture.
func (c *Conn) appendSackBlocks(blocks []netsim.SackBlock) []netsim.SackBlock {
	appendIv := func(iv interval) {
		for _, b := range blocks {
			if b.Start == iv.start && b.End == iv.end {
				return
			}
		}
		blocks = append(blocks, netsim.SackBlock{Start: iv.start, End: iv.end})
	}
	// Most recent first: find the (possibly merged) block containing the
	// last-touched range.
	for _, iv := range c.ooo {
		if c.lastTouched.start >= iv.start && c.lastTouched.start < iv.end {
			appendIv(iv)
			break
		}
	}
	for i := 0; i < len(c.ooo) && len(blocks) < netsim.MaxSackBlocks; i++ {
		appendIv(c.ooo[(c.sackRotate+i)%len(c.ooo)])
	}
	c.sackRotate++
	return blocks
}

func (c *Conn) drainOutOfOrder() {
	for len(c.ooo) > 0 && c.ooo[0].start <= c.rcvNxt {
		if c.ooo[0].end > c.rcvNxt {
			c.rcvNxt = c.ooo[0].end
		}
		c.ooo = c.ooo[1:]
	}
}

func (c *Conn) insertOutOfOrder(iv interval) {
	// Keep the list sorted by start and merged; out-of-order islands are
	// tiny (no SACK), so linear insertion is fine.
	pos := len(c.ooo)
	for i, cur := range c.ooo {
		if iv.start < cur.start {
			pos = i
			break
		}
	}
	c.ooo = append(c.ooo, interval{})
	copy(c.ooo[pos+1:], c.ooo[pos:])
	c.ooo[pos] = iv
	// Merge overlaps.
	merged := c.ooo[:1]
	for _, cur := range c.ooo[1:] {
		last := &merged[len(merged)-1]
		if cur.start <= last.end {
			if cur.end > last.end {
				last.end = cur.end
			}
			continue
		}
		merged = append(merged, cur)
	}
	c.ooo = merged
}
