package tcp

// Regression coverage for the lone-tail-from-idle stall: armRTO's idle
// test (sndUna == sndNxt) runs inside sendSegment, before trySend
// advances sndNxt — so a single segment sent from an idle window arms no
// retransmission timer at all, and losing it stalls the connection
// forever. Config.ArmRTOOnLoneTail fixes it; the default keeps the seed
// wart for figure byte-identity.

import (
	"testing"
	"time"

	"tcptrim/internal/sim"
)

// runLoneTail sends one train (establishing an RTT estimate and an idle
// window), blacks out the data path, releases a lone 1-MSS train into the
// blackout, lifts the blackout, and runs to quiet.
func runLoneTail(t *testing.T, armed bool) (*Conn, *int) {
	t.Helper()
	fn := newFaultNet(t, gigLink(100))
	c := newTestConn(t, fn.asTestNet(), Config{
		MinRTO:           10 * time.Millisecond,
		ArmRTOOnLoneTail: armed,
	})
	completed := 0
	c.SendTrain(DefaultMSS, func(TrainResult) { completed++ })
	fn.at(t, 5*time.Millisecond, func() { fn.fwd.SetLinkDown(true) })
	fn.at(t, 6*time.Millisecond, func() {
		c.SendTrain(DefaultMSS, func(TrainResult) { completed++ })
	})
	fn.at(t, 8*time.Millisecond, func() { fn.fwd.SetLinkDown(false) })
	fn.sched.RunUntil(sim.At(2 * time.Second))
	fn.net.CheckInvariants()
	return c, &completed
}

func TestLoneTailFromIdleStallsByDefault(t *testing.T) {
	sim.SetInvariantChecks(true)
	t.Cleanup(func() { sim.SetInvariantChecks(false) })
	c, completed := runLoneTail(t, false)
	if *completed != 1 {
		t.Fatalf("completed = %d, want exactly the first train (seed semantics)", *completed)
	}
	// The precise stall state the recovery fuzzer's exemption describes:
	// one un-ACKed tail segment and no timer to ever resend it.
	h := c.hot
	if h.sndUna >= h.sndNxt || h.sndNxt != h.maxSent || h.maxSent != h.bufEnd {
		t.Errorf("unexpected window state: sndUna=%d sndNxt=%d maxSent=%d bufEnd=%d",
			h.sndUna, h.sndNxt, h.maxSent, h.bufEnd)
	}
	if h.maxSent-h.sndUna > int64(c.mss) {
		t.Errorf("outstanding %d bytes, want a lone tail ≤ one MSS", h.maxSent-h.sndUna)
	}
	if c.rtoTimer.Pending() {
		t.Error("RTO pending — the stall should have no timer at all")
	}
	if c.Stats().Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 (nothing ever fires)", c.Stats().Timeouts)
	}
}

func TestArmRTOOnLoneTailRecovers(t *testing.T) {
	sim.SetInvariantChecks(true)
	t.Cleanup(func() { sim.SetInvariantChecks(false) })
	c, completed := runLoneTail(t, true)
	if *completed != 2 {
		t.Fatalf("completed = %d, want both trains", *completed)
	}
	if c.DeliveredBytes() != 2*DefaultMSS {
		t.Errorf("DeliveredBytes = %d, want %d", c.DeliveredBytes(), 2*DefaultMSS)
	}
	if c.Stats().Timeouts == 0 {
		t.Error("want at least one timeout: only the armed RTO can repair the lone tail")
	}
	if c.rtoTimer.Pending() {
		t.Error("drained connection should have stopped its RTO")
	}
}

// TestArmRTOOnLoneTailIdenticalWhenLossless: with no losses the knob must
// be invisible — the unconditionally armed timer is pushed/stopped by the
// same ACKs that drive armRTO, so stats and delivery match bit-for-bit.
func TestArmRTOOnLoneTailIdenticalWhenLossless(t *testing.T) {
	run := func(armed bool) Stats {
		tn := newTestNet(t, gigLink(100))
		c := newTestConn(t, tn, Config{ArmRTOOnLoneTail: armed})
		for i := 0; i < 5; i++ {
			at := sim.At(time.Duration(i) * 2 * time.Millisecond)
			if _, err := tn.sched.At(at, func() { c.SendTrain(7*DefaultMSS+123, nil) }); err != nil {
				t.Fatal(err)
			}
		}
		tn.sched.Run()
		return c.Stats()
	}
	off, on := run(false), run(true)
	if off != on {
		t.Errorf("lossless run diverged:\n off: %+v\n  on: %+v", off, on)
	}
}
