package tcp

// White-box tests of connection internals: the RTO estimator, the
// back-off schedule, the window-control surface, and reassembly
// invariants under randomized input.

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

func TestRTOEstimatorFirstSample(t *testing.T) {
	c := (&Conn{cfg: Config{MinRTO: time.Millisecond, MaxRTO: time.Second}}).withHot()
	c.updateRTOEstimator(400 * time.Microsecond)
	if c.hot.srtt != 400*time.Microsecond {
		t.Errorf("srtt = %v", c.hot.srtt)
	}
	if c.hot.rttvar != 200*time.Microsecond {
		t.Errorf("rttvar = %v", c.hot.rttvar)
	}
	// rto = srtt + 4×rttvar = 1.2ms, above the 1ms floor.
	if got := c.rto(); got != 1200*time.Microsecond {
		t.Errorf("rto = %v", got)
	}
}

func TestRTOEstimatorConvergesOnSteadyRTT(t *testing.T) {
	c := (&Conn{cfg: Config{MinRTO: time.Microsecond, MaxRTO: time.Second}}).withHot()
	for i := 0; i < 100; i++ {
		c.updateRTOEstimator(300 * time.Microsecond)
	}
	if c.hot.srtt < 295*time.Microsecond || c.hot.srtt > 305*time.Microsecond {
		t.Errorf("srtt = %v, want ≈300µs", c.hot.srtt)
	}
	// Variance decays toward zero on a constant signal.
	if c.hot.rttvar > 20*time.Microsecond {
		t.Errorf("rttvar = %v, want near 0", c.hot.rttvar)
	}
}

func TestRTOBackoffDoublesAndCaps(t *testing.T) {
	c := (&Conn{cfg: Config{MinRTO: 10 * time.Millisecond, MaxRTO: 100 * time.Millisecond}}).withHot()
	base := c.rto()
	if base != 10*time.Millisecond {
		t.Fatalf("base rto = %v", base)
	}
	c.backoff = 1
	if got := c.rto(); got != 20*time.Millisecond {
		t.Errorf("backoff 1: rto = %v", got)
	}
	c.backoff = 3
	if got := c.rto(); got != 80*time.Millisecond {
		t.Errorf("backoff 3: rto = %v", got)
	}
	c.backoff = 4
	if got := c.rto(); got != 100*time.Millisecond {
		t.Errorf("backoff 4: rto = %v, want MaxRTO cap", got)
	}
	c.backoff = 100
	if got := c.rto(); got != 100*time.Millisecond {
		t.Errorf("backoff 100: rto = %v, want shift clamp + cap", got)
	}
}

func TestSetCwndClamps(t *testing.T) {
	c := (&Conn{minCwnd: 2}).withHot()
	c.SetCwnd(0.5)
	if c.Cwnd() != 2 {
		t.Errorf("cwnd = %v, want floor 2", c.Cwnd())
	}
	c.SetCwnd(1e18)
	if c.Cwnd() > float64(maxSegmentsLimit) {
		t.Errorf("cwnd = %v, want ceiling", c.Cwnd())
	}
	c.SetSsthresh(1)
	if c.Ssthresh() != 2 {
		t.Errorf("ssthresh = %v, want floor", c.Ssthresh())
	}
}

func TestFlightSegsRounding(t *testing.T) {
	c := (&Conn{mss: 1460}).withHot()
	c.hot.sndUna, c.hot.sndNxt = 0, 0
	if c.FlightSegs() != 0 {
		t.Error("empty flight")
	}
	c.hot.sndNxt = 1
	if c.FlightSegs() != 1 {
		t.Error("1 byte should count as 1 segment")
	}
	c.hot.sndNxt = 1460
	if c.FlightSegs() != 1 {
		t.Error("exactly one MSS = 1 segment")
	}
	c.hot.sndNxt = 1461
	if c.FlightSegs() != 2 {
		t.Error("one MSS + 1 byte = 2 segments")
	}
}

func TestAllowBeyondWindowSetsNotAccumulates(t *testing.T) {
	c := (&Conn{minCwnd: 2}).withHot()
	c.AllowBeyondWindow(2)
	c.AllowBeyondWindow(2)
	if c.bonus != 2 {
		t.Errorf("bonus = %d, want set semantics", c.bonus)
	}
	c.AllowBeyondWindow(0)
	if c.bonus != 0 {
		t.Errorf("bonus = %d after revoke", c.bonus)
	}
	c.AllowBeyondWindow(-5)
	if c.bonus != 0 {
		t.Errorf("bonus = %d after negative", c.bonus)
	}
}

func TestSinceLastSend(t *testing.T) {
	tn := newTestNet(t, gigLink(100))
	c := newTestConn(t, tn, Config{})
	if _, sent := c.SinceLastSend(); sent {
		t.Error("fresh connection reports a last send")
	}
	c.SendTrain(DefaultMSS, nil)
	tn.sched.RunUntil(sim.At(5 * time.Millisecond))
	gap, sent := c.SinceLastSend()
	if !sent {
		t.Fatal("no last send recorded")
	}
	if gap < 4*time.Millisecond || gap > 5*time.Millisecond {
		t.Errorf("gap = %v, want ≈5ms", gap)
	}
}

func TestSuspendResumeGateSending(t *testing.T) {
	tn := newTestNet(t, gigLink(100))
	c := newTestConn(t, tn, Config{})
	c.Suspend()
	c.SendTrain(10*DefaultMSS, nil)
	tn.sched.RunUntil(sim.At(10 * time.Millisecond))
	if c.Stats().SentSegs != 0 {
		t.Fatalf("suspended conn sent %d segments", c.Stats().SentSegs)
	}
	c.Resume()
	tn.sched.Run()
	if c.DeliveredBytes() != 10*DefaultMSS {
		t.Errorf("DeliveredBytes = %d after resume", c.DeliveredBytes())
	}
}

// TestReassemblyProperty feeds random segment permutations with overlaps
// to the receiver and requires rcvNxt to land exactly at the stream end
// with no leftover intervals.
func TestReassemblyProperty(t *testing.T) {
	prop := func(order []uint8, overlap bool) bool {
		const segs = 12
		c := (&Conn{mss: 1460}).withHot()
		// Build segment list [i*1460, (i+1)*1460), shuffled by order.
		idx := make([]int, segs)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			oa, ob := uint8(0), uint8(0)
			if a < len(order) {
				oa = order[a]
			}
			if b < len(order) {
				ob = order[b]
			}
			return oa < ob
		})
		for _, i := range idx {
			start, end := int64(i)*1460, int64(i+1)*1460
			if overlap && i%3 == 0 && start > 0 {
				start -= 100 // overlapping retransmission
			}
			iv := interval{start, end}
			if iv.start <= c.rcvNxt && iv.end > c.rcvNxt {
				c.rcvNxt = iv.end
				c.drainOutOfOrder()
			} else if iv.start > c.rcvNxt {
				c.insertOutOfOrder(iv)
			}
		}
		return c.rcvNxt == segs*1460 && len(c.ooo) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestByteConservationProperty runs random train workloads end to end and
// checks sender/receiver byte accounting.
func TestByteConservationProperty(t *testing.T) {
	prop := func(sizes []uint16, queueCap8 uint8) bool {
		queueCap := int(queueCap8%60) + 5
		tn := newTestNet(t, gigLink(queueCap))
		c := newTestConn(t, tn, Config{MinRTO: 5 * time.Millisecond})
		var total int64
		completed := 0
		scheduled := 0
		for i, s16 := range sizes {
			if i >= 8 {
				break
			}
			size := int(s16)%50000 + 1
			total += int64(size)
			scheduled++
			at := sim.At(time.Duration(i) * 3 * time.Millisecond)
			if _, err := tn.sched.At(at, func() {
				c.SendTrain(size, func(TrainResult) { completed++ })
			}); err != nil {
				return false
			}
		}
		tn.sched.RunUntil(sim.At(20 * time.Second))
		return completed == scheduled &&
			c.DeliveredBytes() == total &&
			c.Stats().AckedBytes == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTrainResultFields(t *testing.T) {
	r := TrainResult{
		Released:  sim.At(time.Millisecond),
		Completed: sim.At(3 * time.Millisecond),
		Bytes:     999,
	}
	if r.CompletionTime() != 2*time.Millisecond {
		t.Errorf("CompletionTime = %v", r.CompletionTime())
	}
}

func TestStackStrayPackets(t *testing.T) {
	tn := newTestNet(t, gigLink(100))
	// No connection registered for flow 42: data to the receiver host is
	// stray.
	host := tn.sender.Host()
	peer := tn.receiver.Host()
	tn.sched.After(0, func() {
		host.Send(&netsim.Packet{
			Flow: 42, Src: host.ID(), Dst: peer.ID(),
			Size: 1500, Payload: 1460,
		})
	})
	tn.sched.Run()
	if tn.receiver.StrayPackets() != 1 {
		t.Errorf("stray = %d, want 1", tn.receiver.StrayPackets())
	}
}
