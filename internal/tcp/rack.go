package tcp

// RACK-TLP loss recovery (RFC 8985): detect losses by *time* rather than
// by duplicate-ACK counts. Every transmitted segment is stamped with its
// (latest) send time; once any segment sent at time t is known delivered,
// every outstanding segment sent more than a reordering window before t
// is deemed lost and retransmitted, with a timer (built on the timing
// wheel's Timer.Reset) covering segments whose window has not yet
// elapsed. A tail-loss probe retransmits the newest outstanding segment
// after two smoothed RTTs of ACK silence, converting tail drops — which
// generate no dup ACKs at all and would otherwise wait out the full RTO
// floor — into fast recoveries. The classic RTO remains armed underneath
// as the backstop of last resort.
//
// Delivery evidence comes from three sources: cumulative ACK advances,
// SACK blocks (when negotiated), and the ACK's echoed timestamp — the
// echo identifies *which transmission* triggered the ACK, which both
// supplies evidence without SACK and implements Karn's rule for
// retransmitted segments (a retransmission's send time is only trusted
// when the echo proves the retransmission, not the original, was
// delivered).

import (
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

const (
	// rackReoWndFraction sets the reordering window to srtt/4 (the
	// RFC 8985 §7.1 starting value). Smaller detects faster but risks
	// spurious retransmits under reordering; the conservative default
	// keeps the policy safe under the fault matrix's injected reordering.
	rackReoWndFraction = 4
	// tlpPTOFactor is the tail-loss-probe timeout in smoothed RTTs
	// (RFC 8985 §7.3's 2·SRTT).
	tlpPTOFactor = 2
	// tlpMinPTO floors the probe timeout well above same-instant
	// scheduling noise.
	tlpMinPTO = 100 * time.Microsecond
)

// rackSeg tracks one outstanding segment's latest transmission.
type rackSeg struct {
	start, end int64
	sentAt     sim.Time
	rtx        bool // ever retransmitted (Karn ambiguity applies)
	sacked     bool // fully covered by the scoreboard
	lost       bool // marked lost, retransmission pending
}

// RACKTLP is the RFC 8985 policy. Construct with NewRACKTLP; one
// instance per connection.
type RACKTLP struct {
	c    *Conn
	segs []rackSeg // outstanding segments, sorted by start

	// Most recent delivery evidence: the newest transmission time known
	// delivered, the end sequence of that transmission (sequence
	// tiebreak for same-instant bursts), and the RTT it measured.
	xmitTime sim.Time
	xmitEnd  int64
	rtt      time.Duration

	timer   sim.Timer // reordering-window timer
	timerFn func()
	ptoTmr  sim.Timer // tail-loss-probe timer
	ptoFn   func()
	tlpOut  bool // one probe per ACK-silence episode
}

// NewRACKTLP returns a RACK-TLP recovery policy.
func NewRACKTLP() *RACKTLP { return &RACKTLP{} }

var _ RecoveryPolicy = (*RACKTLP)(nil)

// Name implements RecoveryPolicy.
func (p *RACKTLP) Name() string { return "rack-tlp" }

func (p *RACKTLP) attach(c *Conn) {
	if p.c != nil {
		panic("tcp: recovery policy already attached to a connection")
	}
	p.c = c
	p.timerFn = p.onReorderTimer
	p.ptoFn = p.onPTO
}

func (p *RACKTLP) onSent(seq, end int64, retransmit bool) {
	now := p.c.sched.Now()
	p.noteSent(seq, end, retransmit, now)
	// A segment was just transmitted, so data is outstanding by
	// construction — sndNxt and maxSent are stale here (trySend updates
	// them only after sendSegment returns), and judging idleness from
	// them would cancel the probe exactly when a lone segment leaves an
	// idle window, the one case where the probe is the only repair
	// (armRTO applies the same stale idle test and arms no RTO either).
	p.armPTO(false)
}

// noteSent records or refreshes the segment covering [seq, end). A
// retransmission updates the existing record's send time in place (RACK
// tracks the most recent transmission); SACK-clipped partial resends
// refresh the whole covering record — a conservative approximation that
// only ever delays a loss marking.
func (p *RACKTLP) noteSent(seq, end int64, retransmit bool, now sim.Time) {
	pos := len(p.segs)
	for i := range p.segs {
		s := &p.segs[i]
		if s.start <= seq && seq < s.end {
			s.sentAt = now
			if retransmit {
				s.rtx = true
			}
			s.lost = false
			return
		}
		if seq < s.start {
			pos = i
			break
		}
	}
	p.segs = append(p.segs, rackSeg{})
	copy(p.segs[pos+1:], p.segs[pos:])
	p.segs[pos] = rackSeg{start: seq, end: end, sentAt: now, rtx: retransmit}
}

func (p *RACKTLP) onAckAdvance(pkt *netsim.Packet, ackedSegs int, rtt time.Duration) {
	c := p.c
	now := c.sched.Now()

	// Cumulatively acknowledged segments are delivered: fold their send
	// times into the evidence, then drop them.
	keep := p.segs[:0]
	for i := range p.segs {
		s := &p.segs[i]
		if s.end <= pkt.Ack {
			p.noteDelivered(s, pkt.Echo, rtt)
			continue
		}
		if s.start < pkt.Ack {
			s.start = pkt.Ack
		}
		keep = append(keep, *s)
	}
	p.segs = keep
	p.noteSackDelivered(pkt, rtt)
	p.noteEchoDelivered(pkt, now)

	// Recovery episode ends when the ACK covers its start; partial ACKs
	// need no NewReno deflation — the pipe rule plus time-based marking
	// repair remaining holes.
	if c.inRecovery && pkt.Ack >= c.recover {
		c.inRecovery = false
		c.dupAcks = 0
		c.SetCwnd(c.hot.ssthresh)
		c.observe(EventExitRecovery, 0, pkt.Ack)
	} else if !c.inRecovery {
		c.dupAcks = 0
	}

	p.tlpOut = false // forward progress opens a new probe budget
	p.detectLosses(now)
	p.armPTO(c.hot.sndNxt == c.hot.sndUna)
}

func (p *RACKTLP) onDupAck(pkt *netsim.Packet) {
	c := p.c
	now := c.sched.Now()
	// The scoreboard (merged by the connection) plus the echoed timestamp
	// are this ACK's delivery evidence; detection is purely time-based —
	// no dup-ACK threshold.
	p.noteSackDelivered(pkt, now.Sub(pkt.Echo))
	p.noteEchoDelivered(pkt, now)
	p.detectLosses(now)
	p.armPTO(c.hot.sndNxt == c.hot.sndUna)
}

// onSignal ignores switch recovery signals; combine with the TRACKs
// policy for switch-assisted recovery.
func (p *RACKTLP) onSignal(ack int64) {}

// quiescent requires an empty outstanding-segment table and both timers
// idle; the delivery evidence (xmitTime/rtt) is pure history and may
// carry across a detach.
func (p *RACKTLP) quiescent() bool {
	return len(p.segs) == 0 && !p.tlpOut &&
		!p.timer.Pending() && !p.ptoTmr.Pending()
}

func (p *RACKTLP) detach() {
	p.timer.Stop()
	p.timer = sim.Timer{}
	p.ptoTmr.Stop()
	p.ptoTmr = sim.Timer{}
	p.c = nil
}

func (p *RACKTLP) onTimeout() {
	// The RTO backstop rewound sndNxt: the go-back-N sweep re-records
	// every segment as it is resent. Drop stale records and timers; the
	// delivery evidence stays (it can only mark resends lost after even
	// newer deliveries).
	p.segs = p.segs[:0]
	p.timer.Stop()
	p.timer = sim.Timer{}
	p.ptoTmr.Stop()
	p.ptoTmr = sim.Timer{}
	p.tlpOut = false
}

// noteDelivered folds one delivered segment's send time into the
// evidence. Karn: a retransmitted segment's latest send time is only
// trusted when the ACK's echo does not predate it.
func (p *RACKTLP) noteDelivered(s *rackSeg, echo sim.Time, rtt time.Duration) {
	if s.rtx && echo < s.sentAt {
		return
	}
	if s.sentAt > p.xmitTime || (s.sentAt == p.xmitTime && s.end > p.xmitEnd) {
		p.xmitTime = s.sentAt
		p.xmitEnd = s.end
		p.rtt = rtt
	}
}

// noteSackDelivered marks records now fully covered by the scoreboard.
func (p *RACKTLP) noteSackDelivered(pkt *netsim.Packet, rtt time.Duration) {
	c := p.c
	if !c.cfg.SACK || len(c.sacked) == 0 {
		return
	}
	for i := range p.segs {
		s := &p.segs[i]
		if s.sacked {
			continue
		}
		for _, iv := range c.sacked {
			if iv.start <= s.start && s.end <= iv.end {
				s.sacked = true
				s.lost = false
				p.noteDelivered(s, pkt.Echo, rtt)
				break
			}
		}
	}
}

// noteEchoDelivered uses the ACK's echoed timestamp directly: whichever
// transmission carried that stamp was delivered, even when no SACK block
// says so (per-packet ACKs without SACK, or option-space-rotated blocks).
func (p *RACKTLP) noteEchoDelivered(pkt *netsim.Packet, now sim.Time) {
	t := pkt.Echo
	if t == 0 || t < p.xmitTime {
		return
	}
	end := p.c.hot.maxSent
	for i := range p.segs {
		if p.segs[i].sentAt == t {
			end = p.segs[i].end
			break
		}
	}
	if t > p.xmitTime || (t == p.xmitTime && end > p.xmitEnd) {
		p.xmitTime = t
		p.xmitEnd = end
		p.rtt = now.Sub(t)
	}
}

// reoWnd is the reordering window: srtt/4, floored at zero (a cold
// estimator disables marking until the first RTT sample).
func (p *RACKTLP) reoWnd() time.Duration {
	return p.c.hot.srtt / rackReoWndFraction
}

// detectLosses marks and repairs every outstanding segment sent
// "sufficiently before" the newest delivered transmission (RFC 8985
// §6.2: its deadline sentAt + rtt + reoWnd has passed), and (re)arms the
// reordering timer for the earliest still-pending deadline.
func (p *RACKTLP) detectLosses(now sim.Time) {
	c := p.c
	if p.xmitTime == 0 || p.rtt <= 0 {
		return
	}
	reoWnd := p.reoWnd()
	var nextFire sim.Time
	haveNext := false
	repaired := false
	for i := range p.segs {
		s := &p.segs[i]
		if s.sacked || s.lost || s.end <= c.hot.sndUna {
			continue
		}
		// Sent-after relation with sequence tiebreak: only segments the
		// delivered transmission postdates are candidates.
		if !(p.xmitTime > s.sentAt || (p.xmitTime == s.sentAt && p.xmitEnd > s.end)) {
			continue
		}
		deadline := s.sentAt.Add(p.rtt + reoWnd)
		if now >= deadline {
			s.lost = true
			p.repair(s)
			repaired = true
			continue
		}
		if !haveNext || deadline < nextFire {
			nextFire = deadline
			haveNext = true
		}
	}
	if haveNext {
		d := nextFire.Sub(now)
		if !p.timer.Reset(d) {
			p.timer = c.sched.After(d, p.timerFn)
		}
	} else {
		p.timer.Stop()
		p.timer = sim.Timer{}
	}
	if repaired {
		c.trySend()
	}
}

// repair retransmits one marked-lost segment, entering a recovery
// episode (one window reduction) if none is open. Each marking buys
// exactly one retransmission; marking again requires delivery evidence
// newer than the retransmission itself, so repair cannot loop.
func (p *RACKTLP) repair(s *rackSeg) {
	c := p.c
	if !c.inRecovery {
		c.inRecovery = true
		c.recover = c.hot.sndNxt
		c.stats.FastRecoveries++
		c.SetSsthresh(c.cc.SsthreshAfterLoss())
		c.SetCwnd(c.hot.ssthresh)
		c.observe(EventEnterRecovery, c.hot.sndUna, 0)
	}
	seq, end := s.start, s.end
	if seq < c.hot.sndUna {
		seq = c.hot.sndUna
	}
	if end > c.hot.maxSent {
		end = c.hot.maxSent
	}
	if end <= seq {
		s.lost = false
		return
	}
	// sendSegment → onSent refreshes the record (rtx, new sentAt) and
	// clears its lost mark.
	c.sendSegment(seq, end, sendRtxFast)
}

func (p *RACKTLP) onReorderTimer() {
	p.timer = sim.Timer{}
	p.detectLosses(p.c.sched.Now())
}

// pto is the tail-loss-probe timeout: 2·SRTT (plus the peer's maximum
// ACK delay when delayed ACKs are on), or half the RTO floor before the
// first RTT sample.
func (p *RACKTLP) pto() time.Duration {
	c := p.c
	if c.hot.srtt == 0 {
		return c.cfg.MinRTO / 2
	}
	pto := tlpPTOFactor * c.hot.srtt
	if c.cfg.DelayedAck > 0 {
		pto += c.cfg.DelayedAck
	}
	if pto < tlpMinPTO {
		pto = tlpMinPTO
	}
	return pto
}

// armPTO (re)schedules the tail-loss probe while data is outstanding
// outside recovery and the episode's probe budget is unspent. The
// caller supplies idleness: onSent must pass false (it runs before
// trySend advances sndNxt, so no field reflects the segment in flight),
// while the ACK paths pass sndNxt == sndUna.
func (p *RACKTLP) armPTO(idle bool) {
	c := p.c
	if idle || c.inRecovery || p.tlpOut {
		p.ptoTmr.Stop()
		p.ptoTmr = sim.Timer{}
		return
	}
	d := p.pto()
	if !p.ptoTmr.Reset(d) {
		p.ptoTmr = c.sched.After(d, p.ptoFn)
	}
}

// onPTO fires the tail-loss probe: retransmit the newest outstanding
// segment to provoke an ACK (or SACK) that RACK detection can work with.
// The RTO stays armed underneath — a lost probe still ends in a timeout.
func (p *RACKTLP) onPTO() {
	p.ptoTmr = sim.Timer{}
	c := p.c
	if c.hot.sndUna == c.hot.sndNxt || c.inRecovery || p.tlpOut {
		return
	}
	end := c.hot.sndNxt
	seq := end - int64(c.mss)
	if seq < c.hot.sndUna {
		seq = c.hot.sndUna
	}
	if end <= seq {
		return
	}
	p.tlpOut = true
	c.observe(EventTLPProbe, seq, 0)
	c.sendSegment(seq, end, sendRtxProbe)
}
