package tcp

import (
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

// testNet is a two-host dumbbell: sender — switch — receiver, every link
// with the given config.
type testNet struct {
	sched    *sim.Scheduler
	net      *netsim.Network
	sender   *Stack
	receiver *Stack
	upQueue  *netsim.Queue // switch → receiver egress (the bottleneck)
}

func newTestNet(t *testing.T, link netsim.LinkConfig) *testNet {
	t.Helper()
	sched := sim.NewScheduler()
	net := netsim.NewNetwork(sched)
	hs := net.AddHost("sender")
	sw := net.AddSwitch("sw")
	hr := net.AddHost("receiver")
	net.Connect(hs, sw, link)
	up, _ := net.Connect(sw, hr, link)
	return &testNet{
		sched:    sched,
		net:      net,
		sender:   NewStack(net, hs),
		receiver: NewStack(net, hr),
		upQueue:  up.Queue(),
	}
}

// withHot equips a bare white-box Conn literal (no NewConn) with
// standalone hot state.
func (c *Conn) withHot() *Conn {
	c.hot = &connHot{}
	c.slot = -1
	return c
}

func gigLink(queueCap int) netsim.LinkConfig {
	return netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: queueCap},
	}
}

func newTestConn(t *testing.T, tn *testNet, cfg Config) *Conn {
	t.Helper()
	cfg.Sender = tn.sender
	cfg.Receiver = tn.receiver
	if cfg.Flow == 0 {
		cfg.Flow = 1
	}
	c, err := NewConn(cfg)
	if err != nil {
		t.Fatalf("NewConn: %v", err)
	}
	return c
}

func TestTransferCompletes(t *testing.T) {
	tn := newTestNet(t, gigLink(100))
	c := newTestConn(t, tn, Config{})

	var result TrainResult
	completed := false
	c.SendTrain(100*DefaultMSS, func(r TrainResult) { result, completed = r, true })
	tn.sched.Run()

	if !completed {
		t.Fatal("train never completed")
	}
	if c.DeliveredBytes() != 100*DefaultMSS {
		t.Errorf("DeliveredBytes = %d, want %d", c.DeliveredBytes(), 100*DefaultMSS)
	}
	if result.Bytes != 100*DefaultMSS {
		t.Errorf("result.Bytes = %d", result.Bytes)
	}
	if got := c.Stats(); got.Timeouts != 0 || got.RetransSegs != 0 {
		t.Errorf("unexpected losses: %+v", got)
	}
	// 100 MSS at 1 Gbps through 2 hops with slow start from cwnd=2: well
	// under 10 ms.
	if ct := result.CompletionTime(); ct > 10*time.Millisecond || ct <= 0 {
		t.Errorf("completion time = %v", ct)
	}
}

func TestPartialTailSegment(t *testing.T) {
	tn := newTestNet(t, gigLink(100))
	c := newTestConn(t, tn, Config{})
	const size = 10*DefaultMSS + 123
	done := false
	c.SendTrain(size, func(TrainResult) { done = true })
	tn.sched.Run()
	if !done {
		t.Fatal("train with partial tail never completed")
	}
	if c.DeliveredBytes() != size {
		t.Errorf("DeliveredBytes = %d, want %d", c.DeliveredBytes(), size)
	}
}

func TestSlowStartDoubling(t *testing.T) {
	tn := newTestNet(t, gigLink(1000))
	c := newTestConn(t, tn, Config{})
	c.SendTrain(1000*DefaultMSS, nil)

	// After k RTTs of slow start, cwnd ≈ 2^(k+1). Base RTT: data path
	// 2×(12+50)µs plus ACK path 2×(0.32+50)µs ≈ 224µs.
	tn.sched.RunUntil(sim.At(3 * 224 * time.Microsecond))
	if c.Cwnd() < 8 || c.Cwnd() > 40 {
		t.Errorf("cwnd after ~3 RTT = %v, want ≈16", c.Cwnd())
	}
	got := c.Cwnd()
	tn.sched.RunUntil(sim.At(5 * 224 * time.Microsecond))
	if c.Cwnd() < 2*got {
		t.Errorf("cwnd stopped doubling: %v -> %v", got, c.Cwnd())
	}
}

func TestCongestionAvoidanceLinearGrowth(t *testing.T) {
	tn := newTestNet(t, gigLink(5000))
	c := newTestConn(t, tn, Config{})
	c.SetSsthresh(4) // force CA almost immediately
	c.SendTrain(4000*DefaultMSS, nil)
	tn.sched.RunUntil(sim.At(2 * time.Millisecond)) // ~16 RTTs
	// Linear growth: roughly +1 per RTT from 4 → ~20, far below the
	// >1000 slow start would reach.
	if c.Cwnd() < 6 || c.Cwnd() > 60 {
		t.Errorf("cwnd in CA = %v, want slow linear growth", c.Cwnd())
	}
}

func TestFastRetransmitRecoversSingleLoss(t *testing.T) {
	// Queue of 20 packets: slow start overshoot causes drops, recovered
	// by fast retransmit without any RTO (min RTO 200ms would dominate
	// the completion time otherwise).
	tn := newTestNet(t, gigLink(20))
	c := newTestConn(t, tn, Config{})
	done := false
	var result TrainResult
	c.SendTrain(500*DefaultMSS, func(r TrainResult) { result, done = r, true })
	tn.sched.Run()

	if !done {
		t.Fatal("transfer never completed")
	}
	st := c.Stats()
	if st.FastRecoveries == 0 {
		t.Error("expected at least one fast recovery")
	}
	if st.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 (fast retransmit should suffice)", st.Timeouts)
	}
	if ct := result.CompletionTime(); ct > 100*time.Millisecond {
		t.Errorf("completion time %v suggests an RTO fired", ct)
	}
	if c.DeliveredBytes() != 500*DefaultMSS {
		t.Errorf("DeliveredBytes = %d", c.DeliveredBytes())
	}
}

func TestTimeoutOnTotalLoss(t *testing.T) {
	// A 2-packet queue with a burst exactly the window size: the tail of
	// the burst is lost and nothing follows to generate dup ACKs, so
	// only the RTO can recover — the paper's Fig. 3(b) situation.
	tn := newTestNet(t, netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 2},
	})
	c := newTestConn(t, tn, Config{InitialCwnd: 64, MinRTO: 10 * time.Millisecond})
	done := false
	var result TrainResult
	c.SendTrain(64*DefaultMSS, func(r TrainResult) { result, done = r, true })
	tn.sched.RunUntil(sim.At(5 * time.Second))

	if !done {
		t.Fatal("transfer never completed despite RTO recovery")
	}
	if c.Stats().Timeouts == 0 {
		t.Error("expected RTO timeouts under tail loss")
	}
	if result.CompletionTime() < 10*time.Millisecond {
		t.Errorf("completion %v is faster than the RTO floor", result.CompletionTime())
	}
	if c.DeliveredBytes() != 64*DefaultMSS {
		t.Errorf("DeliveredBytes = %d", c.DeliveredBytes())
	}
}

func TestTrainsCompleteInOrder(t *testing.T) {
	tn := newTestNet(t, gigLink(100))
	c := newTestConn(t, tn, Config{})
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.SendTrain(10*DefaultMSS, func(TrainResult) { order = append(order, i) })
	}
	tn.sched.Run()
	if len(order) != 5 {
		t.Fatalf("completed %d trains, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v", order)
		}
	}
}

func TestOnOffTrainsKeepWindow(t *testing.T) {
	// The paper's core observation: after an idle OFF period, Reno
	// restarts with the inherited (possibly huge) window.
	tn := newTestNet(t, gigLink(1000))
	c := newTestConn(t, tn, Config{})
	c.SendTrain(200*DefaultMSS, nil)
	tn.sched.RunUntil(sim.At(100 * time.Millisecond)) // train done, idle
	inherited := c.Cwnd()
	if inherited < 10 {
		t.Fatalf("cwnd after first train = %v, want growth", inherited)
	}
	c.SendTrain(10*DefaultMSS, nil)
	tn.sched.RunUntil(sim.At(200 * time.Millisecond))
	if c.Cwnd() < inherited {
		t.Errorf("Reno should inherit the window across OFF periods: %v -> %v",
			inherited, c.Cwnd())
	}
}

func TestRTTEstimate(t *testing.T) {
	tn := newTestNet(t, gigLink(100))
	c := newTestConn(t, tn, Config{})
	c.SendTrain(50*DefaultMSS, nil)
	tn.sched.Run()
	// Unloaded RTT: 2 hops × (12µs + 50µs) data + 2 hops × (0.32µs +
	// 50µs) ack ≈ 224µs; queueing adds some.
	if c.SRTT() < 200*time.Microsecond || c.SRTT() > 2*time.Millisecond {
		t.Errorf("SRTT = %v, want a few hundred µs", c.SRTT())
	}
}

func TestRTOHonorsFloor(t *testing.T) {
	tn := newTestNet(t, gigLink(100))
	c := newTestConn(t, tn, Config{MinRTO: 123 * time.Millisecond})
	c.SendTrain(10*DefaultMSS, nil)
	tn.sched.Run()
	if got := c.rto(); got != 123*time.Millisecond {
		t.Errorf("rto = %v, want the floor with µs-scale SRTT", got)
	}
}

func TestECNMarksEchoed(t *testing.T) {
	tn := newTestNet(t, netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 200, ECNThresholdPackets: 5},
	})
	c := newTestConn(t, tn, Config{ECN: true})
	c.SendTrain(500*DefaultMSS, nil)
	tn.sched.Run()
	if c.Stats().ECESeen == 0 {
		t.Error("no ECE seen despite marking threshold")
	}
}

func TestNonECNConnNeverSeesECE(t *testing.T) {
	tn := newTestNet(t, netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 200, ECNThresholdPackets: 5},
	})
	c := newTestConn(t, tn, Config{})
	c.SendTrain(500*DefaultMSS, nil)
	tn.sched.Run()
	if c.Stats().ECESeen != 0 {
		t.Error("non-ECN connection saw ECE")
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.NewNetwork(sched)
	link := gigLink(100)
	s1 := net.AddHost("s1")
	s2 := net.AddHost("s2")
	sw := net.AddSwitch("sw")
	fe := net.AddHost("fe")
	net.Connect(s1, sw, link)
	net.Connect(s2, sw, link)
	net.Connect(sw, fe, link)
	st1, st2, fes := NewStack(net, s1), NewStack(net, s2), NewStack(net, fe)

	c1, err := NewConn(Config{Sender: st1, Receiver: fes, Flow: 1, MinRTO: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewConn(Config{Sender: st2, Receiver: fes, Flow: 2, MinRTO: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const size = 3000 * DefaultMSS
	c1.SendTrain(size, nil)
	c2.SendTrain(size, nil)
	sched.RunUntil(sim.At(5 * time.Second))

	d1, d2 := c1.DeliveredBytes(), c2.DeliveredBytes()
	if d1 != size || d2 != size {
		t.Fatalf("incomplete: %d / %d of %d", d1, d2, size)
	}
	if fes.StrayPackets() != 0 {
		t.Errorf("stray packets at front end: %d", fes.StrayPackets())
	}
}

func TestZeroSizeTrainCompletesImmediately(t *testing.T) {
	tn := newTestNet(t, gigLink(100))
	c := newTestConn(t, tn, Config{})
	done := false
	c.SendTrain(0, func(r TrainResult) {
		done = true
		if r.CompletionTime() != 0 {
			t.Errorf("zero train completion time = %v", r.CompletionTime())
		}
	})
	if !done {
		t.Error("zero-size train should complete synchronously")
	}
}

func TestConfigValidation(t *testing.T) {
	tn := newTestNet(t, gigLink(100))
	if _, err := NewConn(Config{}); err == nil {
		t.Error("missing stacks should error")
	}
	if _, err := NewConn(Config{Sender: tn.sender, Receiver: tn.receiver, Flow: 9, MSS: -1}); err == nil {
		t.Error("negative MSS should error")
	}
	// Duplicate flow registration.
	if _, err := NewConn(Config{Sender: tn.sender, Receiver: tn.receiver, Flow: 10}); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	if _, err := NewConn(Config{Sender: tn.sender, Receiver: tn.receiver, Flow: 10}); err == nil {
		t.Error("duplicate flow should error")
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	c := (&Conn{mss: DefaultMSS}).withHot()
	// Arrivals: [1460,2920), [4380,5840), [2920,4380) then in-order head.
	c.insertOutOfOrder(interval{1460, 2920})
	c.insertOutOfOrder(interval{4380, 5840})
	c.insertOutOfOrder(interval{2920, 4380})
	if len(c.ooo) != 1 {
		t.Fatalf("intervals not merged: %v", c.ooo)
	}
	c.rcvNxt = 1460
	c.drainOutOfOrder()
	if c.rcvNxt != 5840 {
		t.Errorf("rcvNxt = %d, want 5840", c.rcvNxt)
	}
	if len(c.ooo) != 0 {
		t.Errorf("leftover intervals: %v", c.ooo)
	}
}

func TestOutOfOrderOverlapMerge(t *testing.T) {
	c := (&Conn{mss: DefaultMSS}).withHot()
	c.insertOutOfOrder(interval{100, 200})
	c.insertOutOfOrder(interval{150, 300})
	c.insertOutOfOrder(interval{50, 120})
	if len(c.ooo) != 1 || c.ooo[0] != (interval{50, 300}) {
		t.Errorf("merge result: %v", c.ooo)
	}
}

func TestGoodputMatchesLinkCapacity(t *testing.T) {
	// A single long flow should fill ~1 Gbps minus header overhead.
	tn := newTestNet(t, gigLink(100))
	c := newTestConn(t, tn, Config{})
	c.SendTrain(100_000*DefaultMSS, nil)
	tn.sched.RunUntil(sim.At(1 * time.Second))
	gbps := float64(c.DeliveredBytes()) * 8 / 1e9
	// Payload efficiency is 1460/1500 ≈ 0.973.
	if gbps < 0.90 || gbps > 0.98 {
		t.Errorf("goodput = %.3f Gbps, want ≈0.95", gbps)
	}
}
