package tcp

// Loss-recovery robustness under injected faults: RTO back-off through a
// full link blackout, and dup-ACK tolerance of packet duplication and
// reordering (the netsim fault layer's failure modes).

import (
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

// faultNet is a two-host network with direct access to both pipe
// directions so tests can flap or fault them.
type faultNet struct {
	sched    *sim.Scheduler
	net      *netsim.Network
	sender   *Stack
	receiver *Stack
	fwd, rev *netsim.Pipe
}

func newFaultNet(t *testing.T, link netsim.LinkConfig) *faultNet {
	t.Helper()
	sched := sim.NewScheduler()
	net := netsim.NewNetwork(sched)
	hs := net.AddHost("sender")
	hr := net.AddHost("receiver")
	fwd, rev := net.Connect(hs, hr, link)
	return &faultNet{
		sched:    sched,
		net:      net,
		sender:   NewStack(net, hs),
		receiver: NewStack(net, hr),
		fwd:      fwd,
		rev:      rev,
	}
}

func (fn *faultNet) setLinkDown(down bool) {
	fn.fwd.SetLinkDown(down)
	fn.rev.SetLinkDown(down)
}

func (fn *faultNet) at(t *testing.T, at time.Duration, f func()) {
	t.Helper()
	if _, err := fn.sched.At(sim.At(at), f); err != nil {
		t.Fatalf("schedule at %v: %v", at, err)
	}
}

// TestRTOBackoffCapsThroughBlackout blackouts the link until rto() pins at
// MaxRTO, then restores it and checks that the connection recovers: the
// back-off counter saturates at maxBackoffShift during the outage, resets
// on the first advancing ACK, and the RTT estimator re-converges to the
// path's real RTT.
func TestRTOBackoffCapsThroughBlackout(t *testing.T) {
	sim.SetInvariantChecks(true)
	t.Cleanup(func() { sim.SetInvariantChecks(false) })

	const (
		minRTO       = 10 * time.Millisecond
		maxRTO       = 160 * time.Millisecond
		blackoutFrom = 100 * time.Millisecond
		blackoutTo   = 2 * time.Second
	)
	fn := newFaultNet(t, gigLink(100))
	c := newTestConn(t, fn.asTestNet(), Config{MinRTO: minRTO, MaxRTO: maxRTO})

	// Warm the estimator with a clean transfer.
	warm := false
	c.SendTrain(20*DefaultMSS, func(TrainResult) { warm = true })

	// Blackout, then offer a train into the dead link.
	fn.at(t, blackoutFrom, func() {
		fn.setLinkDown(true)
		c.SendTrain(50*DefaultMSS, nil)
	})

	// Just before restore: back-off must sit exactly at the saturation
	// shift and the timeout must be pinned to MaxRTO.
	fn.at(t, blackoutTo-time.Millisecond, func() {
		if c.backoff != maxBackoffShift {
			t.Errorf("backoff during blackout = %d, want saturated at %d", c.backoff, maxBackoffShift)
		}
		if got := c.rto(); got != maxRTO {
			t.Errorf("rto() during blackout = %v, want pinned at MaxRTO %v", got, maxRTO)
		}
	})
	fn.at(t, blackoutTo, func() { fn.setLinkDown(false) })

	fn.sched.Run()
	fn.net.CheckInvariants()

	if !warm {
		t.Fatal("warm-up train never completed")
	}
	stats := c.Stats()
	if stats.Timeouts < int(maxBackoffShift) {
		t.Errorf("timeouts = %d, want at least %d (one per back-off doubling)", stats.Timeouts, maxBackoffShift)
	}
	if c.Pending() != 0 {
		t.Fatalf("%d bytes still unacknowledged after restore", c.Pending())
	}
	if c.backoff != 0 {
		t.Errorf("backoff after recovery = %d, want 0", c.backoff)
	}

	// Feed the estimator fresh post-restore samples and check it settles
	// near the real path RTT (~a few hundred µs on this link), far below
	// the blackout-era MaxRTO regime.
	done := false
	c.SendTrain(40*DefaultMSS, func(TrainResult) { done = true })
	fn.sched.Run()
	if !done {
		t.Fatal("post-restore train never completed")
	}
	if c.hot.srtt <= 0 || c.hot.srtt > 5*time.Millisecond {
		t.Errorf("srtt after recovery = %v, want re-converged under 5ms", c.hot.srtt)
	}
	if got := c.rto(); got != minRTO {
		t.Errorf("rto() after recovery = %v, want back at the %v floor", got, minRTO)
	}
	if fn.net.LivePackets() != 0 {
		t.Errorf("%d pooled packets leaked", fn.net.LivePackets())
	}
}

// asTestNet adapts faultNet to the newTestConn helper.
func (fn *faultNet) asTestNet() *testNet {
	return &testNet{sched: fn.sched, net: fn.net, sender: fn.sender, receiver: fn.receiver}
}

// TestInjectedDuplicationNoSpuriousFastRetransmit duplicates every data
// packet and every ACK on the wire. With SACK enabled, the duplicates
// carry no new scoreboard information, so the sender must not count them
// as loss signals: no fast recoveries, no retransmissions.
func TestInjectedDuplicationNoSpuriousFastRetransmit(t *testing.T) {
	sim.SetInvariantChecks(true)
	t.Cleanup(func() { sim.SetInvariantChecks(false) })

	fn := newFaultNet(t, gigLink(200))
	fn.fwd.InjectDuplicate(1, sim.NewRand(11))
	fn.rev.InjectDuplicate(1, sim.NewRand(12))
	c := newTestConn(t, fn.asTestNet(), Config{SACK: true})

	done := false
	c.SendTrain(100*DefaultMSS, func(TrainResult) { done = true })
	fn.sched.Run()
	fn.net.CheckInvariants()

	if !done {
		t.Fatal("train never completed under duplication")
	}
	stats := c.Stats()
	if stats.FastRecoveries != 0 {
		t.Errorf("duplication alone triggered %d fast recoveries", stats.FastRecoveries)
	}
	if stats.RetransSegs != 0 {
		t.Errorf("duplication alone triggered %d retransmissions", stats.RetransSegs)
	}
	if stats.Timeouts != 0 {
		t.Errorf("duplication alone triggered %d timeouts", stats.Timeouts)
	}
	if got := fn.fwd.Stats().Duplicated; got == 0 {
		t.Error("data pipe never duplicated a packet")
	}
	if fn.net.LivePackets() != 0 {
		t.Errorf("%d pooled packets leaked", fn.net.LivePackets())
	}
}

// TestInjectedReorderingDelivers runs a transfer through a pipe that
// reorders a third of its packets and checks the connection still delivers
// everything without timeouts (fast retransmits are legal RFC behavior
// under deep reordering; stalls are not).
func TestInjectedReorderingDelivers(t *testing.T) {
	sim.SetInvariantChecks(true)
	t.Cleanup(func() { sim.SetInvariantChecks(false) })

	fn := newFaultNet(t, gigLink(200))
	fn.fwd.InjectReorder(0.3, 100*time.Microsecond, sim.NewRand(7))
	c := newTestConn(t, fn.asTestNet(), Config{})

	done := false
	c.SendTrain(200*DefaultMSS, func(TrainResult) { done = true })
	fn.sched.Run()
	fn.net.CheckInvariants()

	if !done {
		t.Fatal("train never completed under reordering")
	}
	if got := c.DeliveredBytes(); got != 200*DefaultMSS {
		t.Errorf("DeliveredBytes = %d, want %d", got, 200*DefaultMSS)
	}
	if got := c.Stats().Timeouts; got != 0 {
		t.Errorf("reordering caused %d timeouts", got)
	}
	if got := fn.fwd.Stats().Reordered; got == 0 {
		t.Error("pipe never reordered a packet")
	}
	if fn.net.LivePackets() != 0 {
		t.Errorf("%d pooled packets leaked", fn.net.LivePackets())
	}
}
