package tcp

import (
	"fmt"

	"tcptrim/internal/netsim"
)

// Stack is the per-host transport demultiplexer. It installs itself as the
// host's packet handler and routes ACKs to sending connections and data to
// receiving connections by flow id.
type Stack struct {
	net   *netsim.Network
	host  *netsim.Host
	send  map[netsim.FlowID]*Conn
	recv  map[netsim.FlowID]*Conn
	stray int
}

// NewStack attaches a transport stack to host.
func NewStack(net *netsim.Network, host *netsim.Host) *Stack {
	s := &Stack{
		net:  net,
		host: host,
		send: make(map[netsim.FlowID]*Conn),
		recv: make(map[netsim.FlowID]*Conn),
	}
	host.SetHandler(s.dispatch)
	return s
}

// Host returns the underlying host.
func (s *Stack) Host() *netsim.Host { return s.host }

// StrayPackets returns the number of packets received with no matching
// connection (useful for catching wiring mistakes in experiments).
func (s *Stack) StrayPackets() int { return s.stray }

func (s *Stack) dispatch(pkt *netsim.Packet) {
	if pkt.IsAck {
		if c, ok := s.send[pkt.Flow]; ok {
			c.handleAck(pkt)
			return
		}
	} else if c, ok := s.recv[pkt.Flow]; ok {
		c.handleData(pkt)
		return
	}
	s.stray++
}

func (s *Stack) registerSender(flow netsim.FlowID, c *Conn) error {
	if _, dup := s.send[flow]; dup {
		return fmt.Errorf("tcp: flow %d already has a sender on %s", flow, s.host.Name())
	}
	s.send[flow] = c
	return nil
}

func (s *Stack) registerReceiver(flow netsim.FlowID, c *Conn) error {
	if _, dup := s.recv[flow]; dup {
		return fmt.Errorf("tcp: flow %d already has a receiver on %s", flow, s.host.Name())
	}
	s.recv[flow] = c
	return nil
}

// unregisterSender and unregisterReceiver forget a flow (Conn.Detach);
// a packet of the flow arriving afterwards counts as stray.
func (s *Stack) unregisterSender(flow netsim.FlowID)   { delete(s.send, flow) }
func (s *Stack) unregisterReceiver(flow netsim.FlowID) { delete(s.recv, flow) }
