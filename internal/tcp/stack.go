package tcp

import (
	"fmt"

	"tcptrim/internal/netsim"
)

// Stack is the per-host transport demultiplexer. It installs itself as the
// host's packet handler and routes ACKs to sending connections and data to
// receiving connections by flow id.
type Stack struct {
	net   *netsim.Network
	host  *netsim.Host
	send  flowTable
	recv  flowTable
	stray int
}

// NewStack attaches a transport stack to host.
func NewStack(net *netsim.Network, host *netsim.Host) *Stack {
	s := &Stack{
		net:  net,
		host: host,
	}
	host.SetHandler(s.dispatch)
	return s
}

// Host returns the underlying host.
func (s *Stack) Host() *netsim.Host { return s.host }

// StrayPackets returns the number of packets received with no matching
// connection (useful for catching wiring mistakes in experiments).
func (s *Stack) StrayPackets() int { return s.stray }

func (s *Stack) dispatch(pkt *netsim.Packet) {
	if pkt.IsAck {
		if c := s.send.get(pkt.Flow); c != nil {
			c.handleAck(pkt)
			return
		}
	} else if c := s.recv.get(pkt.Flow); c != nil {
		c.handleData(pkt)
		return
	}
	s.stray++
}

func (s *Stack) registerSender(flow netsim.FlowID, c *Conn) error {
	if !s.send.put(flow, c) {
		return fmt.Errorf("tcp: flow %d already has a sender on %s", flow, s.host.Name())
	}
	return nil
}

func (s *Stack) registerReceiver(flow netsim.FlowID, c *Conn) error {
	if !s.recv.put(flow, c) {
		return fmt.Errorf("tcp: flow %d already has a receiver on %s", flow, s.host.Name())
	}
	return nil
}

// unregisterSender and unregisterReceiver forget a flow (Conn.Detach);
// a packet of the flow arriving afterwards counts as stray.
func (s *Stack) unregisterSender(flow netsim.FlowID)   { s.send.del(flow) }
func (s *Stack) unregisterReceiver(flow netsim.FlowID) { s.recv.del(flow) }

// maxDenseFlowSpan bounds the dense table's id span (entries, 8 B each):
// flows within the span resolve by one bounds-checked index on the
// per-packet dispatch path; pathological outliers spill to a map instead
// of growing the slice without bound.
const maxDenseFlowSpan = 1 << 22

// flowTable maps flow ids to connections. Experiments assign flow ids
// densely (httpapp numbers them sequentially per fleet), so the table is
// a base-offset slice — dispatch, the hottest per-packet path on
// front-end hosts, replaces a map lookup with an index. Ids far outside
// the dense span fall back to a spill map; lookups stay correct either
// way. A Stack is owned by one shard, so the table needs no locking.
type flowTable struct {
	base  netsim.FlowID
	dense []*Conn
	spill map[netsim.FlowID]*Conn
}

// get returns the connection registered for f, or nil.
func (t *flowTable) get(f netsim.FlowID) *Conn {
	if i := uint64(f) - uint64(t.base); i < uint64(len(t.dense)) {
		return t.dense[i]
	}
	if t.spill == nil {
		return nil
	}
	return t.spill[f]
}

// put registers c under f; it reports false when f is already taken.
func (t *flowTable) put(f netsim.FlowID, c *Conn) bool {
	if t.get(f) != nil {
		return false
	}
	if t.dense == nil {
		t.base = f
		t.dense = append(t.dense, c)
		return true
	}
	if f >= t.base {
		i := uint64(f) - uint64(t.base)
		if i < maxDenseFlowSpan {
			for uint64(len(t.dense)) <= i {
				t.dense = append(t.dense, nil)
			}
			t.dense[i] = c
			return true
		}
	} else if span := uint64(t.base) - uint64(f) + uint64(len(t.dense)); span <= maxDenseFlowSpan {
		// A smaller id than the base: shift the table down (rare — flows
		// are almost always registered in ascending order).
		shifted := make([]*Conn, span)
		copy(shifted[t.base-f:], t.dense)
		shifted[0] = c
		t.base, t.dense = f, shifted
		return true
	}
	if t.spill == nil {
		t.spill = make(map[netsim.FlowID]*Conn)
	}
	t.spill[f] = c
	return true
}

// del forgets f.
func (t *flowTable) del(f netsim.FlowID) {
	if i := uint64(f) - uint64(t.base); i < uint64(len(t.dense)) {
		t.dense[i] = nil
		return
	}
	delete(t.spill, f)
}
