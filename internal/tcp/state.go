package tcp

import (
	"fmt"
	"time"

	"tcptrim/internal/sim"
)

// Compact connection state for the hybrid-fidelity scale layer. A
// persistent HTTP connection in the paper's workload spends most of its
// life OFF (between trains); Detach captures everything a quiescent
// connection would carry into its next ON period into a SavedState worth
// tens of bytes, releases the Conn (maps, timers, slices, arena slot),
// and a later NewConn with Config.Restore resumes the same logical flow.
// TRIM's whole premise — the congestion window inherited across ON/OFF
// train boundaries — survives because the window, the RTT estimator, and
// the congestion-control policy object all carry over.

// SavedState is the portable state of a quiescent (drained) connection.
// The sequence space is fully collapsed at quiescence, so one Offset
// stands in for sndUna/sndNxt/maxSent/bufEnd/rcvNxt.
type SavedState struct {
	// Offset is the next byte of the flow's sequence space.
	Offset int64
	// Cwnd and Ssthresh are the congestion window to inherit.
	Cwnd     float64
	Ssthresh float64
	// SRTT and RTTVar restore the RFC 6298 estimator.
	SRTT   time.Duration
	RTTVar time.Duration
	// Backoff and LastRTOAt carry Karn's exponential back-off state.
	Backoff   int
	LastRTOAt sim.Time
	// HasSent and LastSendAt preserve the idle-gap clock delay-based
	// policies read through SinceLastSend.
	HasSent    bool
	LastSendAt sim.Time
	// SackRotate continues the receiver's SACK advertisement rotation.
	SackRotate int
	// RcvCE is the receiver's last-seen CE mark (the DCTCP delayed-ACK
	// state machine).
	RcvCE bool
	// NextPkt and NextAck continue the per-side packet-ID counters.
	NextPkt uint64
	NextAck uint64
	// Stats carries the lifetime counters forward.
	Stats Stats
}

// Quiescent reports whether the connection is fully drained and inert: no
// unsent or unacknowledged data, no out-of-order state on either side, no
// pending timers in the connection, its recovery policy, or its
// congestion-control policy. Only a quiescent connection may Detach.
func (c *Conn) Quiescent() bool {
	h := c.hot
	if h.sndUna != h.sndNxt || h.sndNxt != h.maxSent || h.maxSent != h.bufEnd {
		return false
	}
	if c.rcvNxt != h.sndUna {
		return false
	}
	if len(c.trains) != 0 || len(c.sacked) != 0 || len(c.ooo) != 0 {
		return false
	}
	if c.inRecovery || c.dupAcks != 0 || c.suspended || c.bonus != 0 || c.sending {
		return false
	}
	if c.rtoTimer.Pending() || c.ackPending || c.ackTimer.Pending() {
		return false
	}
	if !c.recovery.quiescent() {
		return false
	}
	if q, ok := c.cc.(Quiescer); ok && !q.Quiescent() {
		return false
	}
	return true
}

// Quiescer is implemented by congestion-control policies that hold timers
// or multi-event episodes of their own (TRIM's probe cycle); policies
// without it are assumed quiescent whenever the connection is.
type Quiescer interface {
	Quiescent() bool
}

// Detach captures the connection's compact state and dismantles the
// connection: both stacks forget the flow, the recovery policy unbinds
// (ready to re-attach to a successor), and the arena slot — if any — is
// released. The Conn must not be used afterwards. Errors if the
// connection is not Quiescent.
func (c *Conn) Detach() (SavedState, error) {
	if !c.Quiescent() {
		return SavedState{}, fmt.Errorf("tcp: flow %d not quiescent (pending=%d rto=%v trains=%d)",
			c.cfg.Flow, c.Pending(), c.rtoTimer.Pending(), len(c.trains))
	}
	h := c.hot
	st := SavedState{
		Offset:     h.sndUna,
		Cwnd:       h.cwnd,
		Ssthresh:   h.ssthresh,
		SRTT:       h.srtt,
		RTTVar:     h.rttvar,
		Backoff:    c.backoff,
		LastRTOAt:  c.lastRTOAt,
		HasSent:    c.hasSent,
		LastSendAt: c.lastSendAt,
		SackRotate: c.sackRotate,
		RcvCE:      c.rcvCEState,
		NextPkt:    c.nextPkt,
		NextAck:    c.nextAck,
		Stats:      c.stats,
	}
	c.cfg.Sender.unregisterSender(c.cfg.Flow)
	c.cfg.Receiver.unregisterReceiver(c.cfg.Flow)
	c.recovery.detach()
	c.releaseHot()
	return st, nil
}

// restore seeds a fresh connection from a SavedState (NewConn calls it
// before registration). The whole collapsed sequence space resumes at
// Offset on both sides.
func (c *Conn) restore(r *SavedState) {
	h := c.hot
	h.sndUna, h.sndNxt, h.maxSent, h.bufEnd = r.Offset, r.Offset, r.Offset, r.Offset
	h.cwnd = r.Cwnd
	h.ssthresh = r.Ssthresh
	h.srtt = r.SRTT
	h.rttvar = r.RTTVar
	c.rcvNxt = r.Offset
	c.rtxHint = r.Offset
	c.backoff = r.Backoff
	c.lastRTOAt = r.LastRTOAt
	c.hasSent = r.HasSent
	c.lastSendAt = r.LastSendAt
	c.sackRotate = r.SackRotate
	c.rcvCEState = r.RcvCE
	c.nextPkt = r.NextPkt
	c.nextAck = r.NextAck
	c.stats = r.Stats
}
