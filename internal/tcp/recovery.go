package tcp

// Pluggable loss recovery. The connection owns all shared transport state
// (sequence bookkeeping, the SACK scoreboard, the RFC 6298 estimator and
// its backstop timer); a RecoveryPolicy owns only the *decisions* — when
// to treat data as lost, what to retransmit, and how to react to the
// switch-assisted recovery signals the netsim T-RACKs agent can inject.
//
// Three policies ship:
//
//   - Classic (the default): dup-ACK-threshold fast retransmit with
//     NewReno partial-ACK / RFC 6675 SACK recovery — a verbatim
//     extraction of the historical inline logic, so a default-config
//     connection behaves byte-for-byte like the pre-refactor code.
//   - RACK-TLP (RFC 8985): time-based loss detection with a reordering
//     window plus tail-loss probes; see rack.go.
//   - TRACKs (arXiv 2102.07477): Classic plus fast retransmit on a
//     switch-originated recovery signal; see tracks.go.
//
// The hook methods are unexported: external packages select a policy via
// the constructors (or NewRecoveryPolicy) but cannot implement their own,
// which keeps the conformance shadow oracle's assumptions about recovery
// behavior closed under this package.

import (
	"fmt"
	"time"

	"tcptrim/internal/netsim"
)

// RecoveryPolicy decides when and what a connection retransmits. A policy
// instance is bound to exactly one connection and is not safe for
// concurrent use; obtain instances from NewClassicRecovery, NewRACKTLP,
// NewTRACKs, or NewRecoveryPolicy.
type RecoveryPolicy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// attach binds the policy to its connection before any traffic.
	attach(c *Conn)
	// onSent runs after a data segment was handed to the network and the
	// RTO backstop (re)armed.
	onSent(seq, end int64, retransmit bool)
	// onAckAdvance runs when the cumulative ACK advanced: sndUna has
	// moved, the scoreboard is trimmed, and the RTT estimator updated.
	// The policy decides recovery exit and any repair retransmissions.
	onAckAdvance(pkt *netsim.Packet, ackedSegs int, rtt time.Duration)
	// onDupAck runs for each duplicate ACK that survived the generic
	// no-new-information filter, after dupAcks++ and cc.OnDupAck.
	onDupAck(pkt *netsim.Packet)
	// onSignal handles a switch-assisted recovery signal carrying the
	// receiver's last cumulative ACK (see netsim.TRACKsAgent).
	onSignal(ack int64)
	// onTimeout runs when the RTO backstop fired, after the connection's
	// go-back-N bookkeeping but before cc.OnTimeout and the resend sweep.
	onTimeout()
	// quiescent reports whether the policy holds no pending timers or
	// episode state of its own (Conn.Quiescent folds it in).
	quiescent() bool
	// detach unbinds the policy from its connection (Conn.Detach), after
	// which attach may bind it to a successor. Only called quiescent.
	detach()
}

// RecoveryNames lists the selectable policies in NewRecoveryPolicy order.
func RecoveryNames() []string { return []string{"classic", "rack-tlp", "tracks"} }

// NewRecoveryPolicy builds a policy by name ("" selects classic).
func NewRecoveryPolicy(name string) (RecoveryPolicy, error) {
	switch name {
	case "", "classic":
		return NewClassicRecovery(), nil
	case "rack-tlp":
		return NewRACKTLP(), nil
	case "tracks":
		return NewTRACKs(), nil
	}
	return nil, fmt.Errorf("tcp: unknown recovery policy %q (known: %v)", name, RecoveryNames())
}

// classic is dup-ACK-threshold fast retransmit with NewReno partial-ACK
// deflation (or RFC 6675 SACK-directed repair) — the stack's historical
// behavior, extracted verbatim so the default configuration stays
// byte-identical to the pre-refactor code.
type classic struct {
	c *Conn
}

// NewClassicRecovery returns the default dup-ACK/NewReno policy.
func NewClassicRecovery() RecoveryPolicy { return &classic{} }

// Name implements RecoveryPolicy.
func (p *classic) Name() string { return "classic" }

func (p *classic) attach(c *Conn) {
	if p.c != nil {
		panic("tcp: recovery policy already attached to a connection")
	}
	p.c = c
}

func (p *classic) onSent(seq, end int64, retransmit bool) {}

func (p *classic) onAckAdvance(pkt *netsim.Packet, ackedSegs int, rtt time.Duration) {
	c := p.c
	if c.inRecovery {
		if pkt.Ack >= c.recover {
			// Full ACK: leave recovery, deflate to ssthresh.
			c.inRecovery = false
			c.dupAcks = 0
			c.SetCwnd(c.hot.ssthresh)
			c.observe(EventExitRecovery, 0, pkt.Ack)
		} else if c.cfg.SACK {
			// Partial ACK with SACK: the pipe rule keeps the window
			// honest without NewReno's deflation. The stall at the new
			// left edge means that hole (or its retransmission) is
			// missing — repair it.
			c.retransmitFirstUnacked()
		} else {
			// Partial ACK (NewReno): retransmit the next hole, deflate
			// by the amount acked, re-inflate by one.
			c.SetCwnd(c.hot.cwnd - float64(ackedSegs) + 1)
			c.retransmitFirstUnacked()
		}
	} else {
		c.dupAcks = 0
	}
}

func (p *classic) onDupAck(pkt *netsim.Packet) {
	c := p.c
	switch {
	case !c.inRecovery && c.dupAcks == dupAckThreshold:
		c.enterFastRecovery()
	case c.inRecovery && c.cfg.SACK:
		// SACK-directed recovery (RFC 6675 style): no window inflation —
		// the pipe rule (flight excludes SACKed bytes) already frees
		// window space as the scoreboard fills. Repair the next lost
		// hole, then refill with new data.
		c.retransmitNextHole()
		c.trySend()
	case c.inRecovery:
		// Window inflation keeps the pipe full while the hole repairs.
		c.SetCwnd(c.hot.cwnd + 1)
		c.trySend()
	}
}

// onSignal ignores switch recovery signals: classic recovery predates
// switch assistance, and an unsolicited signal proves nothing a dup ACK
// would not (the connection still counts it in Stats.RecoverySignals).
func (p *classic) onSignal(ack int64) {}

func (p *classic) onTimeout() {}

// quiescent: classic keeps all its state in the connection.
func (p *classic) quiescent() bool { return true }

func (p *classic) detach() { p.c = nil }
