// Package topology builds the paper's four evaluation topologies on the
// netsim substrate: the many-to-one star (Sections II.B, IV.A, IV.B), the
// two-level large-scale tree of Fig. 8(a), the dual-bottleneck multi-hop
// network of Fig. 11(a), and the k-pod fat-tree of the protocol comparison
// (Fig. 12).
package topology

import (
	"fmt"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

// Star is the many-to-one scenario: N senders and one front-end behind a
// single switch.
type Star struct {
	Net      *netsim.Network
	Senders  []*netsim.Host
	FrontEnd *netsim.Host
	Switch   *netsim.Switch
	// Bottleneck is the switch→front-end pipe whose queue the paper
	// instruments.
	Bottleneck *netsim.Pipe
}

// NewStar builds a star with n senders, all links using cfg. The paper's
// default: 1 Gbps, 50 µs latency, 100-packet buffers.
func NewStar(sched *sim.Scheduler, n int, cfg netsim.LinkConfig) *Star {
	net := netsim.NewNetwork(sched)
	sw := net.AddSwitch("tor")
	s := &Star{Net: net, Switch: sw, Senders: make([]*netsim.Host, n)}
	for i := range s.Senders {
		s.Senders[i] = net.AddHost(fmt.Sprintf("server%d", i+1))
		net.Connect(s.Senders[i], sw, cfg)
	}
	s.FrontEnd = net.AddHost("frontend")
	s.Bottleneck, _ = net.Connect(sw, s.FrontEnd, cfg)
	return s
}

// DefaultStarLink returns the paper's star link configuration.
func DefaultStarLink(bufferPackets int) netsim.LinkConfig {
	return netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: bufferPackets},
	}
}

// TwoLevelTree is the Fig. 8(a) large-scale topology: numToR switches,
// each with serversPerToR servers, aggregated by a fabric switch that
// feeds the single front-end.
type TwoLevelTree struct {
	Net *netsim.Network
	// Servers[t][i] is server i under ToR t.
	Servers  [][]*netsim.Host
	ToRs     []*netsim.Switch
	Fabric   *netsim.Switch
	FrontEnd *netsim.Host
	// FrontEndLink is the fabric→front-end pipe (the 10 Gbps cable
	// "nearest the front-end").
	FrontEndLink *netsim.Pipe
}

// TwoLevelTreeConfig sizes the tree. Zero values take the paper's
// settings: 42 servers per ToR, 1 Gbps/20 µs edges, 10 Gbps/10 µs root,
// 100-packet buffers.
type TwoLevelTreeConfig struct {
	ToRs          int
	ServersPerToR int
	EdgeLink      netsim.LinkConfig
	RootLink      netsim.LinkConfig
}

func (c *TwoLevelTreeConfig) applyDefaults() {
	if c.ServersPerToR == 0 {
		c.ServersPerToR = 42
	}
	if c.EdgeLink.Rate == 0 {
		c.EdgeLink = netsim.LinkConfig{
			Rate:  netsim.Gbps,
			Delay: 20 * time.Microsecond,
			Queue: netsim.QueueConfig{CapPackets: 100},
		}
	}
	if c.RootLink.Rate == 0 {
		c.RootLink = netsim.LinkConfig{
			Rate:  10 * netsim.Gbps,
			Delay: 10 * time.Microsecond,
			Queue: netsim.QueueConfig{CapPackets: 100},
		}
	}
}

// NewTwoLevelTree builds the Fig. 8(a) topology.
func NewTwoLevelTree(sched *sim.Scheduler, cfg TwoLevelTreeConfig) *TwoLevelTree {
	cfg.applyDefaults()
	net := netsim.NewNetwork(sched)
	t := &TwoLevelTree{Net: net, Fabric: net.AddSwitch("fabric")}
	for i := 0; i < cfg.ToRs; i++ {
		tor := net.AddSwitch(fmt.Sprintf("tor%d", i+1))
		t.ToRs = append(t.ToRs, tor)
		net.Connect(tor, t.Fabric, cfg.RootLink)
		servers := make([]*netsim.Host, cfg.ServersPerToR)
		for j := range servers {
			servers[j] = net.AddHost(fmt.Sprintf("s%d-%d", i+1, j+1))
			net.Connect(servers[j], tor, cfg.EdgeLink)
		}
		t.Servers = append(t.Servers, servers)
	}
	t.FrontEnd = net.AddHost("frontend")
	t.FrontEndLink, _ = net.Connect(t.Fabric, t.FrontEnd, cfg.RootLink)
	return t
}

// AllServers returns every server across ToRs in a flat slice.
func (t *TwoLevelTree) AllServers() []*netsim.Host {
	var out []*netsim.Host
	for _, group := range t.Servers {
		out = append(out, group...)
	}
	return out
}

// MultiHop is the Fig. 11(a) dual-bottleneck topology: groups A and C
// attach to switch 1, group B and the group-D receivers to switch 2; the
// two 10 Gbps links (switch1→switch2 and switch2→front-end) are the
// bottlenecks; every other link is 1 Gbps.
type MultiHop struct {
	Net      *netsim.Network
	GroupA   []*netsim.Host
	GroupB   []*netsim.Host
	GroupC   []*netsim.Host
	GroupD   []*netsim.Host
	Switch1  *netsim.Switch
	Switch2  *netsim.Switch
	FrontEnd *netsim.Host
	// Bottleneck1 is switch1→switch2, Bottleneck2 is switch2→front-end.
	Bottleneck1 *netsim.Pipe
	Bottleneck2 *netsim.Pipe
}

// MultiHopConfig sizes the multi-hop network; zero values take the
// paper's: 10 hosts per group, 1 Gbps/50 µs edges, 10 Gbps bottlenecks,
// 100-packet buffers.
type MultiHopConfig struct {
	GroupSize      int
	EdgeLink       netsim.LinkConfig
	BottleneckLink netsim.LinkConfig
}

func (c *MultiHopConfig) applyDefaults() {
	if c.GroupSize == 0 {
		c.GroupSize = 10
	}
	if c.EdgeLink.Rate == 0 {
		c.EdgeLink = netsim.LinkConfig{
			Rate:  netsim.Gbps,
			Delay: 50 * time.Microsecond,
			Queue: netsim.QueueConfig{CapPackets: 100},
		}
	}
	if c.BottleneckLink.Rate == 0 {
		c.BottleneckLink = netsim.LinkConfig{
			Rate:  10 * netsim.Gbps,
			Delay: 50 * time.Microsecond,
			Queue: netsim.QueueConfig{CapPackets: 100},
		}
	}
}

// NewMultiHop builds the Fig. 11(a) topology.
func NewMultiHop(sched *sim.Scheduler, cfg MultiHopConfig) *MultiHop {
	cfg.applyDefaults()
	net := netsim.NewNetwork(sched)
	m := &MultiHop{
		Net:     net,
		Switch1: net.AddSwitch("switch1"),
		Switch2: net.AddSwitch("switch2"),
	}
	m.Bottleneck1, _ = net.Connect(m.Switch1, m.Switch2, cfg.BottleneckLink)
	m.FrontEnd = net.AddHost("frontend")
	m.Bottleneck2, _ = net.Connect(m.Switch2, m.FrontEnd, cfg.BottleneckLink)
	group := func(prefix string, sw *netsim.Switch) []*netsim.Host {
		hosts := make([]*netsim.Host, cfg.GroupSize)
		for i := range hosts {
			hosts[i] = net.AddHost(fmt.Sprintf("%s%d", prefix, i+1))
			net.Connect(hosts[i], sw, cfg.EdgeLink)
		}
		return hosts
	}
	m.GroupA = group("a", m.Switch1)
	m.GroupC = group("c", m.Switch1)
	m.GroupB = group("b", m.Switch2)
	m.GroupD = group("d", m.Switch2)
	return m
}

// FatTree is the canonical k-ary fat-tree: k pods, each with k/2 edge and
// k/2 aggregation switches, k/2 hosts per edge switch, and (k/2)² core
// switches; k³/4 hosts in total. Per-flow ECMP spreads flows over the
// equal-cost paths.
type FatTree struct {
	Net   *netsim.Network
	K     int
	Hosts []*netsim.Host
	Edge  [][]*netsim.Switch // [pod][i]
	Agg   [][]*netsim.Switch // [pod][i]
	Core  []*netsim.Switch
}

// NewFatTree builds a k-pod fat-tree with every link using cfg. k must be
// even and ≥ 2.
func NewFatTree(sched *sim.Scheduler, k int, cfg netsim.LinkConfig) (*FatTree, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree k must be even and >= 2, got %d", k)
	}
	net := netsim.NewNetwork(sched)
	f := &FatTree{Net: net, K: k}
	half := k / 2

	for c := 0; c < half*half; c++ {
		f.Core = append(f.Core, net.AddSwitch(fmt.Sprintf("core%d", c)))
	}
	for p := 0; p < k; p++ {
		edges := make([]*netsim.Switch, half)
		aggs := make([]*netsim.Switch, half)
		for i := 0; i < half; i++ {
			edges[i] = net.AddSwitch(fmt.Sprintf("edge%d-%d", p, i))
			aggs[i] = net.AddSwitch(fmt.Sprintf("agg%d-%d", p, i))
		}
		// Full bipartite edge↔agg inside the pod.
		for _, e := range edges {
			for _, a := range aggs {
				net.Connect(e, a, cfg)
			}
		}
		// Agg i connects to core switches [i·half, (i+1)·half).
		for i, a := range aggs {
			for j := 0; j < half; j++ {
				net.Connect(a, f.Core[i*half+j], cfg)
			}
		}
		// Hosts.
		for i, e := range edges {
			for h := 0; h < half; h++ {
				host := net.AddHost(fmt.Sprintf("h%d-%d-%d", p, i, h))
				net.Connect(host, e, cfg)
				f.Hosts = append(f.Hosts, host)
			}
		}
		f.Edge = append(f.Edge, edges)
		f.Agg = append(f.Agg, aggs)
	}
	return f, nil
}
