package topology

// Shard-cut plans for the evaluation topologies. The cut heuristic is the
// same everywhere: keep each bottleneck queue and the hosts that feed it
// most tightly on one shard, and cut only at links whose propagation
// delay is large enough to serve as PDES lookahead. Concretely the
// aggregation core (bottleneck switch + front-end) always lands on shard
// 0, and sender populations — which dominate event volume with their
// per-connection timers — spread round-robin over the remaining shards.
// A one-shard group degenerates to the sequential simulation (the
// engine's solo path), so every plan accepts any group size ≥ 1.

import (
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

// shardPlan maps nodes to shards and adapts to the netsim callback.
type shardPlan map[netsim.NodeID]int

func (p shardPlan) fn(n netsim.Node) int { return p[n.ID()] }

// senderShard spreads sender index i over shards 1..k-1 (everything on
// shard 0 for k == 1).
func senderShard(i, k int) int {
	if k <= 1 {
		return 0
	}
	return 1 + i%(k-1)
}

// Shard partitions the star for g: switch and front-end on shard 0,
// senders round-robin over the rest. The cut pipes are the sender↔switch
// links, so the lookahead is their propagation delay.
func (s *Star) Shard(g *sim.ShardGroup) error {
	k := g.NumShards()
	plan := shardPlan{s.Switch.ID(): 0, s.FrontEnd.ID(): 0}
	for i, h := range s.Senders {
		plan[h.ID()] = senderShard(i, k)
	}
	return s.Net.Shard(g, plan.fn)
}

// Shard partitions the two-level tree for g: fabric and front-end on
// shard 0, each ToR with its servers round-robin over the rest. The cut
// pipes are the ToR↔fabric root links.
func (t *TwoLevelTree) Shard(g *sim.ShardGroup) error {
	k := g.NumShards()
	plan := shardPlan{t.Fabric.ID(): 0, t.FrontEnd.ID(): 0}
	for i, tor := range t.ToRs {
		sh := senderShard(i, k)
		plan[tor.ID()] = sh
		for _, srv := range t.Servers[i] {
			plan[srv.ID()] = sh
		}
	}
	return t.Net.Shard(g, plan.fn)
}

// Shard partitions the multi-hop network for g at its first bottleneck:
// switch 2's side (groups B and D plus the front-end) on shard 0,
// switch 1's side (groups A and C) on shard 1. More than two shards
// leave the extras idle — the dual-bottleneck topology has exactly one
// delay-bearing cut that separates sender populations.
func (m *MultiHop) Shard(g *sim.ShardGroup) error {
	k := g.NumShards()
	side1 := 0
	if k > 1 {
		side1 = 1
	}
	plan := shardPlan{
		m.Switch1.ID(): side1, m.Switch2.ID(): 0, m.FrontEnd.ID(): 0,
	}
	for _, grp := range [][]*netsim.Host{m.GroupA, m.GroupC} {
		for _, h := range grp {
			plan[h.ID()] = side1
		}
	}
	for _, grp := range [][]*netsim.Host{m.GroupB, m.GroupD} {
		for _, h := range grp {
			plan[h.ID()] = 0
		}
	}
	return m.Net.Shard(g, plan.fn)
}

// Shard partitions the fat-tree for g: the core layer on shard 0, each
// pod (edge + aggregation switches and hosts) round-robin over the rest.
// The cut pipes are the agg↔core links, which every inter-pod path
// crosses exactly twice.
func (f *FatTree) Shard(g *sim.ShardGroup) error {
	k := g.NumShards()
	plan := shardPlan{}
	for _, c := range f.Core {
		plan[c.ID()] = 0
	}
	for p := range f.Edge {
		sh := senderShard(p, k)
		for _, e := range f.Edge[p] {
			plan[e.ID()] = sh
		}
		for _, a := range f.Agg[p] {
			plan[a.ID()] = sh
		}
	}
	for i, h := range f.Hosts {
		// Hosts are created pod-major (K/2 edge switches × K/2 hosts per
		// pod): host i lives in pod i / (K/2)².
		pod := i / ((f.K / 2) * (f.K / 2))
		plan[h.ID()] = senderShard(pod, k)
	}
	return f.Net.Shard(g, plan.fn)
}
