package topology

import (
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

func TestStarShape(t *testing.T) {
	sched := sim.NewScheduler()
	s := NewStar(sched, 5, DefaultStarLink(100))
	if len(s.Senders) != 5 {
		t.Fatalf("senders = %d", len(s.Senders))
	}
	// 5 senders + 1 switch + 1 front-end.
	if s.Net.Nodes() != 7 {
		t.Errorf("nodes = %d, want 7", s.Net.Nodes())
	}
	if s.Bottleneck.Rate() != netsim.Gbps {
		t.Errorf("bottleneck rate = %v", s.Bottleneck.Rate())
	}

	// Every sender reaches the front-end.
	delivered := 0
	s.FrontEnd.SetHandler(func(*netsim.Packet) { delivered++ })
	for i, h := range s.Senders {
		pkt := &netsim.Packet{ID: uint64(i), Flow: netsim.FlowID(i), Src: h.ID(), Dst: s.FrontEnd.ID(), Size: 1500}
		h.Send(pkt)
	}
	sched.Run()
	if delivered != 5 {
		t.Errorf("delivered = %d", delivered)
	}
}

func TestTwoLevelTreeShape(t *testing.T) {
	sched := sim.NewScheduler()
	tree := NewTwoLevelTree(sched, TwoLevelTreeConfig{ToRs: 5})
	if got := len(tree.AllServers()); got != 210 {
		t.Fatalf("servers = %d, want 5×42", got)
	}
	if tree.FrontEndLink.Rate() != 10*netsim.Gbps {
		t.Errorf("front-end link = %v", tree.FrontEndLink.Rate())
	}

	// A server under the last ToR reaches the front-end across 3 hops.
	src := tree.Servers[4][41]
	var at sim.Time
	tree.FrontEnd.SetHandler(func(*netsim.Packet) { at = sched.Now() })
	src.Send(&netsim.Packet{Flow: 9, Src: src.ID(), Dst: tree.FrontEnd.ID(), Size: 1500})
	sched.Run()
	if at == 0 {
		t.Fatal("packet not delivered")
	}
	// Path: server→ToR (20µs, 1G), ToR→fabric (10µs, 10G),
	// fabric→front-end (10µs, 10G): 12+20 + 1.2+10 + 1.2+10 ≈ 54.4µs.
	if at < sim.At(50*time.Microsecond) || at > sim.At(60*time.Microsecond) {
		t.Errorf("delivery at %v, want ≈54µs", at)
	}
}

func TestMultiHopPaths(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMultiHop(sched, MultiHopConfig{})
	if len(m.GroupA) != 10 || len(m.GroupD) != 10 {
		t.Fatalf("group sizes wrong")
	}

	// Group A traffic crosses both bottlenecks; group B only the second;
	// group C→D only the first.
	before1 := m.Bottleneck1.Stats().SentPackets
	before2 := m.Bottleneck2.Stats().SentPackets
	m.FrontEnd.SetHandler(func(*netsim.Packet) {})
	m.GroupD[0].SetHandler(func(*netsim.Packet) {})

	a := m.GroupA[0]
	a.Send(&netsim.Packet{Flow: 1, Src: a.ID(), Dst: m.FrontEnd.ID(), Size: 1500})
	sched.Run()
	if m.Bottleneck1.Stats().SentPackets != before1+1 || m.Bottleneck2.Stats().SentPackets != before2+1 {
		t.Error("group A packet must cross both bottlenecks")
	}

	b := m.GroupB[0]
	b.Send(&netsim.Packet{Flow: 2, Src: b.ID(), Dst: m.FrontEnd.ID(), Size: 1500})
	sched.Run()
	if m.Bottleneck1.Stats().SentPackets != before1+1 {
		t.Error("group B packet must not cross bottleneck 1")
	}
	if m.Bottleneck2.Stats().SentPackets != before2+2 {
		t.Error("group B packet must cross bottleneck 2")
	}

	c := m.GroupC[0]
	c.Send(&netsim.Packet{Flow: 3, Src: c.ID(), Dst: m.GroupD[0].ID(), Size: 1500})
	sched.Run()
	if m.Bottleneck1.Stats().SentPackets != before1+2 {
		t.Error("group C packet must cross bottleneck 1")
	}
	if m.Bottleneck2.Stats().SentPackets != before2+2 {
		t.Error("group C packet must not cross bottleneck 2")
	}
}

func TestFatTreeShape(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := netsim.LinkConfig{Rate: 10 * netsim.Gbps, Delay: 10 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 1000}}
	f, err := NewFatTree(sched, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Hosts) != 16 {
		t.Errorf("hosts = %d, want k³/4 = 16", len(f.Hosts))
	}
	if len(f.Core) != 4 {
		t.Errorf("core = %d, want (k/2)² = 4", len(f.Core))
	}
	// 16 hosts + 4 core + 8 edge + 8 agg = 36 nodes.
	if f.Net.Nodes() != 36 {
		t.Errorf("nodes = %d, want 36", f.Net.Nodes())
	}
}

func TestFatTreeAllPairsReachable(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := netsim.LinkConfig{Rate: 10 * netsim.Gbps, Delay: 10 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 1000}}
	f, err := NewFatTree(sched, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	received := make(map[netsim.NodeID]int)
	for _, h := range f.Hosts {
		h := h
		h.SetHandler(func(*netsim.Packet) { received[h.ID()]++ })
	}
	flow := netsim.FlowID(0)
	for _, src := range f.Hosts {
		for _, dst := range f.Hosts {
			if src == dst {
				continue
			}
			flow++
			src.Send(&netsim.Packet{Flow: flow, Src: src.ID(), Dst: dst.ID(), Size: 1500})
		}
	}
	sched.Run()
	if f.Net.Stats().RoutingDrops != 0 {
		t.Fatalf("routing drops = %d", f.Net.Stats().RoutingDrops)
	}
	for _, h := range f.Hosts {
		if received[h.ID()] != len(f.Hosts)-1 {
			t.Errorf("%s received %d, want %d", h.Name(), received[h.ID()], len(f.Hosts)-1)
		}
	}
}

func TestFatTreeECMPUsesMultipleCores(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := netsim.LinkConfig{Rate: 10 * netsim.Gbps, Delay: 10 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 1000}}
	f, err := NewFatTree(sched, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst := f.Hosts[len(f.Hosts)-1] // other pod
	dst.SetHandler(func(*netsim.Packet) {})
	src := f.Hosts[0]
	for i := 0; i < 200; i++ {
		src.Send(&netsim.Packet{Flow: netsim.FlowID(i), Src: src.ID(), Dst: dst.ID(), Size: 1500})
	}
	sched.Run()
	coresUsed := 0
	for _, c := range f.Core {
		for _, p := range f.Net.PipesFrom(c.ID()) {
			if p.Stats().SentPackets > 0 {
				coresUsed++
				break
			}
		}
	}
	if coresUsed < 2 {
		t.Errorf("cores used = %d, want ECMP spread over several", coresUsed)
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	sched := sim.NewScheduler()
	if _, err := NewFatTree(sched, 5, netsim.LinkConfig{Rate: netsim.Gbps}); err == nil {
		t.Error("odd k must be rejected")
	}
	if _, err := NewFatTree(sched, 0, netsim.LinkConfig{Rate: netsim.Gbps}); err == nil {
		t.Error("k=0 must be rejected")
	}
}
