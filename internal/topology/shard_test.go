package topology

import (
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
)

func TestShardPlans(t *testing.T) {
	link := DefaultStarLink(100)
	for _, k := range []int{1, 2, 4, 8} {
		g := sim.NewShardGroup(k)
		s := NewStar(g.Shard(0), 16, link)
		if err := s.Shard(g); err != nil {
			t.Fatalf("star k=%d: %v", k, err)
		}
		if k > 1 && g.Lookahead() != sim.Time(50*time.Microsecond) {
			t.Fatalf("star k=%d lookahead = %v, want 50µs (sender link delay)", k, g.Lookahead())
		}

		g2 := sim.NewShardGroup(k)
		tree := NewTwoLevelTree(g2.Shard(0), TwoLevelTreeConfig{ToRs: 4, ServersPerToR: 3})
		if err := tree.Shard(g2); err != nil {
			t.Fatalf("tree k=%d: %v", k, err)
		}
		if k > 1 && g2.Lookahead() != sim.Time(10*time.Microsecond) {
			t.Fatalf("tree k=%d lookahead = %v, want 10µs (root link delay)", k, g2.Lookahead())
		}

		g3 := sim.NewShardGroup(k)
		m := NewMultiHop(g3.Shard(0), MultiHopConfig{GroupSize: 2})
		if err := m.Shard(g3); err != nil {
			t.Fatalf("multihop k=%d: %v", k, err)
		}

		g4 := sim.NewShardGroup(k)
		f, err := NewFatTree(g4.Shard(0), 4, netsim.LinkConfig{
			Rate: netsim.Gbps, Delay: 20 * time.Microsecond,
			Queue: netsim.QueueConfig{CapPackets: 100},
		})
		if err != nil {
			t.Fatalf("fat-tree: %v", err)
		}
		if err := f.Shard(g4); err != nil {
			t.Fatalf("fat-tree k=%d: %v", k, err)
		}
	}
}
