package trace

import (
	"strings"
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

func ev(kind tcp.EventKind, atUs int64) tcp.Event {
	return tcp.Event{At: sim.At(time.Duration(atUs) * time.Microsecond), Kind: kind}
}

func TestRecorderCountsAndRetains(t *testing.T) {
	r := NewRecorder(10)
	r.Record(ev(tcp.EventSend, 1))
	r.Record(ev(tcp.EventAck, 2))
	r.Record(ev(tcp.EventSend, 3))
	if r.Count(tcp.EventSend) != 2 || r.Count(tcp.EventAck) != 1 {
		t.Errorf("counts: send=%d ack=%d", r.Count(tcp.EventSend), r.Count(tcp.EventAck))
	}
	if r.Total() != 3 {
		t.Errorf("Total = %d", r.Total())
	}
	events := r.Events()
	if len(events) != 3 || events[0].Kind != tcp.EventSend || events[1].Kind != tcp.EventAck {
		t.Errorf("events = %v", events)
	}
	if got := r.Filter(tcp.EventSend); len(got) != 2 {
		t.Errorf("Filter(send) = %d", len(got))
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(3)
	for i := int64(1); i <= 5; i++ {
		r.Record(ev(tcp.EventSend, i))
	}
	if !r.Dropped() {
		t.Error("ring should have evicted")
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d", len(events))
	}
	// The newest three (3, 4, 5 µs) survive, in order.
	for i, want := range []int64{3, 4, 5} {
		if events[i].At != sim.At(time.Duration(want)*time.Microsecond) {
			t.Errorf("events[%d].At = %v, want %dµs", i, events[i].At, want)
		}
	}
	// Counts are not subject to eviction.
	if r.Count(tcp.EventSend) != 5 {
		t.Errorf("Count = %d, want 5", r.Count(tcp.EventSend))
	}
}

func TestRecorderKeepFilter(t *testing.T) {
	r := NewRecorder(10).Keep(tcp.EventTimeout)
	r.Record(ev(tcp.EventSend, 1))
	r.Record(ev(tcp.EventTimeout, 2))
	if len(r.Events()) != 1 {
		t.Errorf("retained %d, want only timeouts", len(r.Events()))
	}
	if r.Count(tcp.EventSend) != 1 {
		t.Error("counting must still cover filtered kinds")
	}
	r.Keep() // reset
	r.Record(ev(tcp.EventSend, 3))
	if len(r.Events()) != 2 {
		t.Error("Keep() should restore retain-everything")
	}
}

func TestRecorderCSVAndSummary(t *testing.T) {
	r := NewRecorder(10)
	r.Record(tcp.Event{At: sim.At(time.Millisecond), Kind: tcp.EventSend, Seq: 1460, Cwnd: 2, Flight: 1})
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "seconds,kind,seq,ack,cwnd,flight\n0.001000000,send,1460,0,2,1\n"
	if sb.String() != want {
		t.Errorf("CSV = %q", sb.String())
	}
	if got := r.Summary(); got != "send=1" {
		t.Errorf("Summary = %q", got)
	}
	if got := NewRecorder(1).Summary(); got != "no events" {
		t.Errorf("empty Summary = %q", got)
	}
}

func TestEventKindStrings(t *testing.T) {
	for kind, want := range map[tcp.EventKind]string{
		tcp.EventSend:          "send",
		tcp.EventRetransmit:    "retransmit",
		tcp.EventAck:           "ack",
		tcp.EventDupAck:        "dupack",
		tcp.EventEnterRecovery: "enter-recovery",
		tcp.EventExitRecovery:  "exit-recovery",
		tcp.EventTimeout:       "timeout",
		tcp.EventKind(0):       "unknown",
	} {
		if kind.String() != want {
			t.Errorf("String(%d) = %q, want %q", kind, kind.String(), want)
		}
	}
}

// TestRecorderEndToEnd traces a real lossy transfer and checks that the
// recorded events tell a coherent story.
func TestRecorderEndToEnd(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.NewNetwork(sched)
	a := net.AddHost("a")
	sw := net.AddSwitch("sw")
	b := net.AddHost("b")
	link := netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 20},
	}
	net.Connect(a, sw, link)
	net.Connect(sw, b, link)

	rec := NewRecorder(0)
	conn, err := tcp.NewConn(tcp.Config{
		Sender:   tcp.NewStack(net, a),
		Receiver: tcp.NewStack(net, b),
		Flow:     1,
		MinRTO:   10 * time.Millisecond,
		Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn.SendTrain(500*tcp.DefaultMSS, nil)
	sched.RunUntil(sim.At(5 * time.Second))

	st := conn.Stats()
	if got := rec.Count(tcp.EventSend) + rec.Count(tcp.EventRetransmit); got != st.SentSegs {
		t.Errorf("send events %d != SentSegs %d", got, st.SentSegs)
	}
	if got := rec.Count(tcp.EventRetransmit); got != st.RetransSegs {
		t.Errorf("retransmit events %d != RetransSegs %d", got, st.RetransSegs)
	}
	if got := rec.Count(tcp.EventEnterRecovery); got != st.FastRecoveries {
		t.Errorf("recovery events %d != FastRecoveries %d", got, st.FastRecoveries)
	}
	if got := rec.Count(tcp.EventTimeout); got != st.Timeouts {
		t.Errorf("timeout events %d != Timeouts %d", got, st.Timeouts)
	}
	if rec.Count(tcp.EventEnterRecovery) == 0 {
		t.Error("expected at least one recovery on the shallow queue")
	}
	// Events must be time-ordered.
	events := rec.Events()
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
}
