// Package trace records TCP connection lifecycle events (sends, ACKs,
// recoveries, timeouts) through the tcp.Observer hook, with a bounded
// ring buffer, kind filtering, summaries, and CSV export — the
// observability layer for debugging protocol behaviour in experiments.
package trace

import (
	"fmt"
	"io"

	"tcptrim/internal/tcp"
)

// DefaultCapacity bounds a Recorder that was created with capacity 0.
const DefaultCapacity = 1 << 16

// Recorder implements tcp.Observer: it retains the most recent events up
// to its capacity and counts every event by kind (counts are not subject
// to eviction).
type Recorder struct {
	capacity int
	events   []tcp.Event
	start    int // ring start index when full
	full     bool
	counts   map[tcp.EventKind]int
	keep     map[tcp.EventKind]bool
}

var _ tcp.Observer = (*Recorder)(nil)

// NewRecorder returns a recorder retaining up to capacity events
// (0 = DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		capacity: capacity,
		counts:   make(map[tcp.EventKind]int),
	}
}

// Keep restricts retention to the given kinds (counting still covers all
// kinds). Calling Keep with no arguments restores retain-everything.
func (r *Recorder) Keep(kinds ...tcp.EventKind) *Recorder {
	if len(kinds) == 0 {
		r.keep = nil
		return r
	}
	r.keep = make(map[tcp.EventKind]bool, len(kinds))
	for _, k := range kinds {
		r.keep[k] = true
	}
	return r
}

// Record implements tcp.Observer.
func (r *Recorder) Record(ev tcp.Event) {
	r.counts[ev.Kind]++
	if r.keep != nil && !r.keep[ev.Kind] {
		return
	}
	if len(r.events) < r.capacity {
		r.events = append(r.events, ev)
		return
	}
	// Ring: overwrite the oldest.
	r.events[r.start] = ev
	r.start = (r.start + 1) % r.capacity
	r.full = true
}

// Count returns how many events of the kind were recorded (including any
// evicted from the ring).
func (r *Recorder) Count(kind tcp.EventKind) int { return r.counts[kind] }

// Total returns the total number of observed events.
func (r *Recorder) Total() int {
	total := 0
	for _, n := range r.counts {
		total += n
	}
	return total
}

// Dropped reports whether the ring evicted events.
func (r *Recorder) Dropped() bool { return r.full }

// Events returns the retained events in arrival order (a copy).
func (r *Recorder) Events() []tcp.Event {
	out := make([]tcp.Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Filter returns the retained events of the given kind, in order.
func (r *Recorder) Filter(kind tcp.EventKind) []tcp.Event {
	var out []tcp.Event
	for _, ev := range r.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// WriteCSV exports the retained events as
// "seconds,kind,seq,ack,cwnd,flight" rows.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "seconds,kind,seq,ack,cwnd,flight"); err != nil {
		return err
	}
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintf(w, "%.9f,%s,%d,%d,%g,%d\n",
			ev.At.Seconds(), ev.Kind, ev.Seq, ev.Ack, ev.Cwnd, ev.Flight); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders per-kind counts as a short human-readable line.
func (r *Recorder) Summary() string {
	kinds := []tcp.EventKind{
		tcp.EventSend, tcp.EventRetransmit, tcp.EventAck, tcp.EventDupAck,
		tcp.EventEnterRecovery, tcp.EventExitRecovery, tcp.EventTimeout,
	}
	out := ""
	for _, k := range kinds {
		if n := r.counts[k]; n > 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s=%d", k, n)
		}
	}
	if out == "" {
		return "no events"
	}
	return out
}
