package service

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"tcptrim/internal/experiment"
)

func TestSpecKeyCanonical(t *testing.T) {
	a := RunSpec{Runner: "fig4"}
	b := RunSpec{Runner: "fig4", Seed: 0, Reps: 0} // zero values omit from the encoding
	if a.Key("v1") != b.Key("v1") {
		t.Error("equivalent specs hash differently")
	}
	if a.Key("v1") == a.Key("v2") {
		t.Error("code version does not roll the key")
	}
	if a.Key("v1") == (RunSpec{Runner: "fig4", Seed: 2}).Key("v1") {
		t.Error("seed change does not roll the key")
	}
	if a.Key("v1") == (RunSpec{Runner: "fig6"}).Key("v1") {
		t.Error("runner change does not roll the key")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (RunSpec{Runner: "fig4"}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (RunSpec{}).Validate(); err == nil {
		t.Error("empty runner accepted")
	}
	if err := (RunSpec{Runner: "nope"}).Validate(); err == nil {
		t.Error("unknown runner accepted")
	}
	if err := (RunSpec{Runner: "fig4", Shards: -1}).Validate(); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestCachePersistsAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Runner: "fig4"}
	key := spec.Key("v1")
	if err := c1.Put(key, spec, []byte("result bytes")); err != nil {
		t.Fatal(err)
	}
	if err := c1.SaveIndex(); err != nil {
		t.Fatal(err)
	}

	// A "new process": fresh cache over the same directory.
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok || string(got) != "result bytes" {
		t.Fatalf("Get after reload = %q, %t", got, ok)
	}
	if _, ok := c2.Get(spec.Key("v2")); ok {
		t.Error("different code version hit the cache")
	}

	// An index entry whose result file vanished is a miss, not an error.
	if err := os.Remove(filepath.Join(dir, key+".out")); err != nil {
		t.Fatal(err)
	}
	c3, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Get(key); ok {
		t.Error("hit with the result file missing")
	}
}

func TestStreamReplayAndFanout(t *testing.T) {
	st := newStream()
	st.publish([]byte("a"))
	st.publish([]byte("b"))

	replay, live, cancel := st.subscribe()
	defer cancel()
	if len(replay) != 2 || string(replay[0]) != "a" || string(replay[1]) != "b" {
		t.Fatalf("replay = %q", replay)
	}
	st.publish([]byte("c"))
	select {
	case data := <-live:
		if string(data) != "c" {
			t.Fatalf("live = %q", data)
		}
	case <-time.After(time.Second):
		t.Fatal("live event not delivered")
	}

	st.close([]byte("end"))
	if data, ok := <-live; !ok || string(data) != "end" {
		t.Fatalf("terminal = %q, %t", data, ok)
	}
	if _, ok := <-live; ok {
		t.Fatal("channel not closed after terminal")
	}

	// Subscribing after close: full replay, no live channel.
	replay, live, cancel = st.subscribe()
	defer cancel()
	if live != nil {
		t.Error("live channel on a closed stream")
	}
	if len(replay) != 4 || string(replay[3]) != "end" {
		t.Fatalf("post-close replay = %q", replay)
	}
}

func TestSinkThrottlesSamples(t *testing.T) {
	st := newStream()
	s := newSink(st, time.Hour) // nothing but the first of each metric passes
	for i := 0; i < 10; i++ {
		s.Publish(experiment.ProgressEvent{Kind: "sample", Name: "goodput", Value: float64(i)})
		s.Publish(experiment.ProgressEvent{Kind: "sample", Name: "cwnd", Value: float64(i)})
		s.Publish(experiment.ProgressEvent{Kind: "cell", Name: "c", Done: i + 1, Total: 10})
	}
	replay, _, cancel := st.subscribe()
	cancel()
	// 1 goodput + 1 cwnd + 10 cells: milestones bypass the throttle.
	if len(replay) != 12 {
		t.Fatalf("got %d events, want 12: %s", len(replay), replay)
	}
}
