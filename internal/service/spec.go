// Package service is the long-running experiment control plane: a REST
// API over the experiment registry (submit runs, watch them live over
// SSE, fetch byte-exact results) with a content-addressed result cache.
//
// The cache is sound because the simulator underneath is deterministic:
// the same RunSpec at the same code version produces byte-identical
// output on every machine, at any shard count, with or without a
// Progress hook armed. A result keyed by (canonical spec, code version)
// can therefore be replayed forever without re-simulating.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"tcptrim/internal/cellcache"
	"tcptrim/internal/experiment"
)

// RunSpec is the client-facing description of one experiment run. It
// mirrors the experiment.Options surface minus the server-side knobs
// (CSVDir writes server-local files; Progress and Context belong to the
// service, not the spec). Zero values mean the scenario defaults, same
// as the trimsim flags.
type RunSpec struct {
	// Runner is the registry id (see GET /v1/runners or trimsim -list).
	Runner string `json:"runner"`
	// Seed drives every random draw (0 = default seed 1).
	Seed int64 `json:"seed,omitempty"`
	// Reps repeats randomized scenarios (0 = runner default).
	Reps int `json:"reps,omitempty"`
	// Shards partitions the simulated network (0/1 = sequential).
	// Results are byte-identical at any shard count.
	Shards int `json:"shards,omitempty"`
	// AQM / Recovery / Fidelity name overrides, as in trimsim flags.
	AQM      string `json:"aqm,omitempty"`
	Recovery string `json:"recovery,omitempty"`
	Fidelity string `json:"fidelity,omitempty"`
}

// Options converts the spec to runner options. Progress and Context are
// attached by the job runner, not the spec.
func (s RunSpec) Options() experiment.Options {
	return experiment.Options{
		Seed:     s.Seed,
		Reps:     s.Reps,
		Shards:   s.Shards,
		AQM:      s.AQM,
		Recovery: s.Recovery,
		Fidelity: s.Fidelity,
	}
}

// Validate rejects a malformed spec before it is queued: the runner must
// exist and the option surface must pass the same experiment.Options
// gate trimsim uses.
func (s RunSpec) Validate() error {
	if s.Runner == "" {
		return fmt.Errorf("service: spec has no runner (see GET /v1/runners)")
	}
	if _, ok := experiment.Describe(s.Runner); !ok {
		return fmt.Errorf("service: unknown runner %q (see GET /v1/runners)", s.Runner)
	}
	return s.Options().Validate()
}

// canonical returns the spec's canonical encoding: JSON with fields in
// struct order and zero values omitted, so two specs that mean the same
// run encode identically. Shards is deliberately part of the key even
// though results are shard-invariant — proving that invariance is the
// differential tests' job, not the cache's.
func (s RunSpec) canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A struct of scalars cannot fail to marshal.
		panic(err)
	}
	return b
}

// Key returns the content address of the spec's result: a hex SHA-256
// over the canonical spec and the code version. Any code change rolls
// the version and so invalidates every cached result.
func (s RunSpec) Key(codeVersion string) string {
	h := sha256.New()
	h.Write(s.canonical())
	h.Write([]byte{0})
	h.Write([]byte(codeVersion))
	return hex.EncodeToString(h.Sum(nil))
}

// CodeVersion identifies the running simulator build for cache keying.
// It is cellcache.CodeVersion: the run-level cache and the cell store
// must agree on the version or a warm run could mix results from
// different builds.
func CodeVersion() string {
	return cellcache.CodeVersion()
}
