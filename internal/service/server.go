package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tcptrim/internal/cellcache"
	"tcptrim/internal/experiment"
)

// Job states. A job is terminal in done, failed, or canceled.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is one submitted run and its lifecycle.
type Job struct {
	ID     string  `json:"id"`
	Spec   RunSpec `json:"spec"`
	State  string  `json:"state"`
	Error  string  `json:"error,omitempty"`
	Cached bool    `json:"cached"`

	output []byte
	cancel context.CancelFunc
	stream *stream
}

// Config tunes a Server.
type Config struct {
	// Workers is the number of concurrent simulations (0 = GOMAXPROCS/2,
	// minimum 1; each simulation may itself use Shards goroutines).
	Workers int
	// CacheDir persists results across restarts ("" = memory only).
	CacheDir string
	// CodeVersion overrides the cache key's code component (tests pin
	// it; "" = CodeVersion()).
	CodeVersion string
	// StreamMinGap throttles high-frequency SSE events per metric
	// (0 = DefaultStreamMinGap; negative = no throttle).
	StreamMinGap time.Duration
	// QueueDepth bounds jobs waiting for a worker (0 = 1024). A full
	// queue rejects new submissions with 503 rather than blocking.
	QueueDepth int
}

// DefaultStreamMinGap is the per-metric SSE throttle: at most one
// "sample"/"responses" event per metric per gap.
const DefaultStreamMinGap = 50 * time.Millisecond

// Server is the experiment service: REST control plane, SSE streams,
// result cache, worker pool. It implements http.Handler.
type Server struct {
	mux         *http.ServeMux
	cache       *Cache
	cells       *cellcache.Store
	codeVersion string
	minGap      time.Duration

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string
	seq   int

	queue   chan *Job
	quit    chan struct{}
	wg      sync.WaitGroup
	baseCtx context.Context
	stop    context.CancelFunc

	closing     atomic.Bool
	simulations atomic.Int64
	cacheHits   atomic.Int64
}

// New builds a Server and starts its workers.
func New(cfg Config) (*Server, error) {
	cache, err := NewCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	// The cell store shares the run cache's directory: run results are
	// <key>.out, cells <key>.cell, so the two stores never collide. With
	// it armed, a run that misses the run-level cache still skips every
	// sweep cell some earlier run (of any runner) already computed.
	cells, err := cellcache.Open(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / 2
		if workers < 1 {
			workers = 1
		}
	}
	version := cfg.CodeVersion
	if version == "" {
		version = CodeVersion()
	}
	minGap := cfg.StreamMinGap
	switch {
	case minGap == 0:
		minGap = DefaultStreamMinGap
	case minGap < 0:
		minGap = 0
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 1024
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cache:       cache,
		cells:       cells,
		codeVersion: version,
		minGap:      minGap,
		jobs:        map[string]*Job{},
		queue:       make(chan *Job, depth),
		quit:        make(chan struct{}),
		baseCtx:     ctx,
		stop:        cancel,
	}
	s.routes()
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v1/runners", s.handleRunners)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/runs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// --- handlers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleRunners lists the registry: the same ids, descriptions, and
// honored-option schemas trimsim -list prints.
func (s *Server) handleRunners(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runners": experiment.Runners()})
}

// handleStats exposes the counters the CI cache assertion reads:
// simulations is the number of actual experiment.Run invocations, which
// a cache hit must NOT increment.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"codeVersion":   s.codeVersion,
		"jobs":          jobs,
		"simulations":   s.simulations.Load(),
		"cacheHits":     s.cacheHits.Load(),
		"cachedResults": s.cache.Len(),
		// Cell-grained counters: cellMisses is the number of sweep cells
		// actually simulated, cellHits the number answered from the store.
		"cellHits":    s.cells.Hits(),
		"cellMisses":  s.cells.Misses(),
		"cachedCells": s.cells.Len(),
	})
}

// handleSubmit validates a spec, answers from the cache when the result
// is already known, and queues a simulation otherwise.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is shutting down")
		return
	}
	var spec RunSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	job := &Job{Spec: spec, stream: newStream()}
	s.mu.Lock()
	s.seq++
	job.ID = fmt.Sprintf("run-%06d", s.seq)
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)

	if output, ok := s.cache.Get(spec.Key(s.codeVersion)); ok {
		// Same spec, same code version: the result is already exact.
		job.State = StateDone
		job.Cached = true
		job.output = output
		s.mu.Unlock()
		s.cacheHits.Add(1)
		job.stream.close(terminalEvent("done", ""))
		writeJSON(w, http.StatusCreated, job)
		return
	}

	job.State = StateQueued
	s.mu.Unlock()
	select {
	case s.queue <- job:
		writeJSON(w, http.StatusCreated, job)
	default:
		s.finishJob(job, StateFailed, "run queue is full")
		writeError(w, http.StatusServiceUnavailable, "run queue is full")
	}
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return nil
	}
	return job
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.snapshotLocked(s.jobs[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"runs": jobs})
}

// snapshotLocked copies a job's public fields under s.mu.
func (s *Server) snapshotLocked(job *Job) Job {
	return Job{ID: job.ID, Spec: job.Spec, State: job.State, Error: job.Error, Cached: job.Cached}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	s.mu.Lock()
	snap := s.snapshotLocked(job)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, snap)
}

// handleResult serves the raw result bytes — exactly what trimsim would
// have printed for the same spec.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	s.mu.Lock()
	state, output := job.State, job.output
	s.mu.Unlock()
	if state != StateDone {
		writeError(w, http.StatusConflict, "run %s is %s, not done", job.ID, state)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(output)
}

// handleCancel cancels a queued or running job. Terminal jobs are left
// as they are (204 anyway — cancel is idempotent).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	s.mu.Lock()
	state := job.State
	cancel := job.cancel
	s.mu.Unlock()
	switch state {
	case StateQueued:
		// The worker skips jobs already terminal when it dequeues them.
		s.finishJob(job, StateCanceled, "canceled by client")
	case StateRunning:
		if cancel != nil {
			cancel() // the worker observes ctx and finishes the job
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleEvents streams the job's events as SSE: every event is a JSON
// ProgressEvent (or terminal {"kind":"done"|"error"|"canceled"|
// "shutdown"}) in a data: line. The replay buffer means a subscriber
// attaching after completion still sees the whole (bounded) history.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := job.stream.subscribe()
	defer cancel()
	for _, data := range replay {
		fmt.Fprintf(w, "data: %s\n\n", data)
	}
	flusher.Flush()
	if live == nil {
		return // stream already closed; replay ended with the terminal event
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case data, ok := <-live:
			if !ok {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
			flusher.Flush()
		}
	}
}

// --- job execution ---

// terminalEvent encodes the end-of-stream event.
func terminalEvent(kind, msg string) []byte {
	ev := map[string]string{"kind": kind}
	if msg != "" {
		ev["error"] = msg
	}
	data, _ := json.Marshal(ev)
	return data
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

// runJob executes one queued job to a terminal state.
func (s *Server) runJob(job *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	s.mu.Lock()
	if job.State != StateQueued { // canceled while waiting
		s.mu.Unlock()
		return
	}
	job.State = StateRunning
	job.cancel = cancel
	s.mu.Unlock()

	opts := job.Spec.Options()
	opts.Context = ctx
	opts.Cache = s.cells
	opts.Progress = newSink(job.stream, s.minGap)
	var buf bytes.Buffer
	s.simulations.Add(1)
	err := experiment.Run(job.Spec.Runner, opts, &buf)
	switch {
	case err == nil:
		// A failed cache write only costs a future re-simulation; the
		// run itself succeeded, so the job still completes as done.
		_ = s.cache.Put(job.Spec.Key(s.codeVersion), job.Spec, buf.Bytes())
		s.mu.Lock()
		job.output = buf.Bytes()
		job.State = StateDone
		job.cancel = nil
		s.mu.Unlock()
		job.stream.close(terminalEvent("done", ""))
	case errors.Is(err, context.Canceled) && s.closing.Load():
		s.finishJob(job, StateCanceled, "service shut down before completion")
	case errors.Is(err, context.Canceled):
		s.finishJob(job, StateCanceled, "canceled by client")
	default:
		s.finishJob(job, StateFailed, err.Error())
	}
}

// finishJob moves a job to a terminal state and closes its stream. The
// terminal SSE kind matches the state ("shutdown" when the service, not
// the client, ended the run).
func (s *Server) finishJob(job *Job, state, msg string) {
	s.mu.Lock()
	if job.State == StateDone || job.State == StateFailed || job.State == StateCanceled {
		s.mu.Unlock()
		return
	}
	job.State = state
	job.Error = msg
	job.cancel = nil
	s.mu.Unlock()
	kind := "error"
	if state == StateCanceled {
		kind = "canceled"
		if s.closing.Load() {
			kind = "shutdown"
		}
	}
	job.stream.close(terminalEvent(kind, msg))
}

// --- shutdown ---

// Shutdown drains the service: new submissions are refused, queued jobs
// are canceled, and running jobs get until ctx's deadline to finish on
// their own before their contexts are canceled (runners stop at the
// next cell boundary). Every open SSE stream receives a terminal event,
// and the cache index is persisted last.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	close(s.quit)
	// Workers race s.quit against the queue; drain whatever they leave.
	for {
		select {
		case job := <-s.queue:
			s.finishJob(job, StateCanceled, "service shut down before start")
			continue
		default:
		}
		break
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.stop() // deadline passed: interrupt in-flight runs
		<-done
		err = ctx.Err()
	}
	s.stop()
	// Workers are gone; any job still non-terminal (queued jobs a worker
	// dequeued but skipped, etc.) gets its terminal event now.
	s.mu.Lock()
	var open []*Job
	for _, job := range s.jobs {
		if job.State == StateQueued || job.State == StateRunning {
			open = append(open, job)
		}
	}
	s.mu.Unlock()
	for _, job := range open {
		s.finishJob(job, StateCanceled, "service shut down before completion")
	}
	if serr := s.cache.SaveIndex(); serr != nil && err == nil {
		err = serr
	}
	return err
}
