package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cache is the content-addressed result store. Results live in memory
// keyed by RunSpec.Key; with a directory configured each result is also
// written to disk as it arrives (named by its key, so a crash can lose
// at most the index), and an index of what is cached is persisted at
// shutdown for the next process to preload.
type Cache struct {
	mu  sync.Mutex
	dir string // "" = memory only
	mem map[string]cacheEntry
}

type cacheEntry struct {
	Spec RunSpec `json:"spec"`
	// output is kept in memory only while the entry is hot; a preloaded
	// index entry leaves it nil and Get reads the result file on demand.
	output []byte
}

// cacheIndex is the persisted shutdown snapshot: which keys are cached
// and the spec each one answers, so the next process (and curious
// humans) can see what is in the store without hashing specs.
type cacheIndex struct {
	Version int                   `json:"version"`
	Entries map[string]cacheEntry `json:"entries"`
}

// NewCache opens a cache. dir == "" keeps results in memory only;
// otherwise results persist under dir and a prior index is preloaded.
func NewCache(dir string) (*Cache, error) {
	c := &Cache{dir: dir, mem: map[string]cacheEntry{}}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: cache dir: %w", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: cache index: %w", err)
	}
	var idx cacheIndex
	if err := json.Unmarshal(raw, &idx); err != nil {
		return nil, fmt.Errorf("service: cache index: %w", err)
	}
	for key, e := range idx.Entries {
		c.mem[key] = cacheEntry{Spec: e.Spec}
	}
	return c, nil
}

// resultPath is the on-disk location of one result.
func (c *Cache) resultPath(key string) string {
	return filepath.Join(c.dir, key+".out")
}

// Get returns the cached result for key, if any.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.mem[key]
	if !ok {
		return nil, false
	}
	if e.output == nil && c.dir != "" {
		out, err := os.ReadFile(c.resultPath(key))
		if err != nil {
			// The index promised a result the disk no longer has; treat
			// as a miss so the run is simply recomputed.
			delete(c.mem, key)
			return nil, false
		}
		e.output = out
		c.mem[key] = e
	}
	return e.output, e.output != nil
}

// Put stores a result. The result file is written immediately (renamed
// into place so readers never see a torn write); the index waits for
// SaveIndex at shutdown.
func (c *Cache) Put(key string, spec RunSpec, output []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[key] = cacheEntry{Spec: spec, output: output}
	if c.dir == "" {
		return nil
	}
	tmp := c.resultPath(key) + ".tmp"
	if err := os.WriteFile(tmp, output, 0o644); err != nil {
		return fmt.Errorf("service: cache write: %w", err)
	}
	if err := os.Rename(tmp, c.resultPath(key)); err != nil {
		return fmt.Errorf("service: cache write: %w", err)
	}
	return nil
}

// Len reports how many results are cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// SaveIndex persists the index of cached keys. No-op for a memory-only
// cache.
func (c *Cache) SaveIndex() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	idx := cacheIndex{Version: 1, Entries: make(map[string]cacheEntry, len(c.mem))}
	for key, e := range c.mem {
		idx.Entries[key] = cacheEntry{Spec: e.Spec}
	}
	raw, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(c.dir, "index.json.tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("service: cache index: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, "index.json")); err != nil {
		return fmt.Errorf("service: cache index: %w", err)
	}
	return nil
}
