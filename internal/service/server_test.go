package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tcptrim/internal/experiment"
)

// blockStarted signals that the test-block runner is executing; the
// runner then parks on its Context, exercising cancellation paths.
var blockStarted = make(chan struct{}, 64)

func init() {
	err := experiment.Register(experiment.RunnerInfo{
		ID:          "test-block",
		Description: "test runner that blocks until canceled",
	}, func(opts experiment.Options, w io.Writer) error {
		blockStarted <- struct{}{}
		<-opts.Context.Done()
		return opts.Context.Err()
	})
	if err != nil {
		panic(err)
	}
	// Two overlapping concurrency slices: wide's first three cells are
	// exactly narrow's cells, so a narrow-then-wide submission exercises
	// cross-runner cell reuse through the shared store.
	for id, maxSPT := range map[string]int{"test-conc-narrow": 3, "test-conc-wide": 4} {
		maxSPT := maxSPT
		err := experiment.Register(experiment.RunnerInfo{
			ID:          id,
			Description: "test slice of the concurrency sweep",
		}, func(opts experiment.Options, w io.Writer) error {
			res, err := experiment.RunConcurrency(experiment.ProtoTRIM, []int{2}, maxSPT, opts)
			if err != nil {
				return err
			}
			return res.WriteTables(w)
		})
		if err != nil {
			panic(err)
		}
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CodeVersion == "" {
		cfg.CodeVersion = "test-v1"
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, ts
}

func submit(t *testing.T, ts *httptest.Server, spec RunSpec) Job {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

func getJob(t *testing.T, ts *httptest.Server, id string) Job {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

func waitState(t *testing.T, ts *httptest.Server, id, want string) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		job := getJob(t, ts, id)
		if job.State == want {
			return job
		}
		if job.State == StateFailed && want != StateFailed {
			t.Fatalf("run %s failed: %s", id, job.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %s", id, want)
	return Job{}
}

// readEvents drains the run's SSE stream until it ends, returning the
// decoded event payloads.
func readEvents(t *testing.T, ts *httptest.Server, id string) []map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	var events []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}

func kinds(events []map[string]any) map[string]int {
	n := map[string]int{}
	for _, ev := range events {
		if k, ok := ev["kind"].(string); ok {
			n[k]++
		}
	}
	return n
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, body := range []string{
		`{"runner":"nope"}`,
		`{"runner":"fig4","shards":-1}`,
		`{"runner":"fig4","bogus":true}`, // unknown fields are typos, not extensions
		`{`,
	} {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestRunnersEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/runners")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Runners []experiment.RunnerInfo `json:"runners"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range got.Runners {
		if info.ID == "fig4" {
			found = true
			if info.Description == "" {
				t.Error("fig4 has no description")
			}
			if len(info.Options) == 0 {
				t.Error("fig4 declares no options")
			}
		}
	}
	if !found {
		t.Error("fig4 missing from /v1/runners")
	}
}

// TestRunStreamCache is the core tentpole path: submit a real run, watch
// its SSE stream, check the result is byte-identical to a direct
// experiment.Run of the same options, then resubmit and check the cache
// answers without a second simulation.
func TestRunStreamCache(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	spec := RunSpec{Runner: "fig4"}
	job := submit(t, ts, spec)
	if job.Cached {
		t.Fatal("first submission reported cached")
	}
	waitState(t, ts, job.ID, StateDone)

	// The SSE stream (read from replay, after the fact) carries live
	// metrics and ends with the terminal event.
	events := readEvents(t, ts, job.ID)
	n := kinds(events)
	if n["sample"] == 0 {
		t.Errorf("no sample events streamed (kinds: %v)", n)
	}
	if n["fct"] == 0 || n["retrans"] == 0 {
		t.Errorf("missing fct/retrans milestones (kinds: %v)", n)
	}
	if n["done"] != 1 || events[len(events)-1]["kind"] != "done" {
		t.Errorf("stream did not end with one done event (kinds: %v)", n)
	}

	// Byte-identical to the batch path: an armed Progress hook and a
	// Context may not perturb the simulation.
	var want bytes.Buffer
	if err := experiment.Run(spec.Runner, spec.Options(), &want); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("service result differs from direct run (%d vs %d bytes)", len(got), want.Len())
	}

	// Resubmit: cache hit, no new simulation, same bytes, stream closes
	// immediately with done.
	simsBefore := svc.simulations.Load()
	job2 := submit(t, ts, spec)
	if !job2.Cached {
		t.Fatal("resubmission not served from cache")
	}
	if got := waitState(t, ts, job2.ID, StateDone); !got.Cached {
		t.Fatal("cached job lost its flag")
	}
	if sims := svc.simulations.Load(); sims != simsBefore {
		t.Fatalf("cache hit ran a simulation (%d -> %d)", simsBefore, sims)
	}
	resp2, err := http.Get(ts.URL + "/v1/runs/" + job2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(got2, want.Bytes()) {
		t.Fatal("cached result differs from direct run")
	}
	ev2 := kinds(readEvents(t, ts, job2.ID))
	if ev2["done"] != 1 {
		t.Errorf("cached run's stream has no done event: %v", ev2)
	}

	// A different seed is a different address.
	job3 := submit(t, ts, RunSpec{Runner: "fig4", Seed: 7})
	if job3.Cached {
		t.Fatal("different seed hit the cache")
	}
	resp4, err := http.DefaultClient.Do(mustReq(t, http.MethodDelete, ts.URL+"/v1/runs/"+job3.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
}

func mustReq(t *testing.T, method, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	job := submit(t, ts, RunSpec{Runner: "test-block"})
	<-blockStarted

	resp, err := http.DefaultClient.Do(mustReq(t, http.MethodDelete, ts.URL+"/v1/runs/"+job.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	got := waitState(t, ts, job.ID, StateCanceled)
	if got.Error == "" {
		t.Error("canceled job carries no reason")
	}
	events := readEvents(t, ts, job.ID)
	if len(events) == 0 || events[len(events)-1]["kind"] != "canceled" {
		t.Errorf("stream did not end with canceled: %v", events)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	running := submit(t, ts, RunSpec{Runner: "test-block"})
	<-blockStarted
	queued := submit(t, ts, RunSpec{Runner: "test-block", Seed: 2})

	resp, err := http.DefaultClient.Do(mustReq(t, http.MethodDelete, ts.URL+"/v1/runs/"+queued.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, queued.ID, StateCanceled)

	// Unblock the worker.
	resp, err = http.DefaultClient.Do(mustReq(t, http.MethodDelete, ts.URL+"/v1/runs/"+running.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, running.ID, StateCanceled)
}

// TestShutdownDrains exercises the graceful path: SIGTERM-equivalent
// Shutdown with an already-expired drain deadline cancels the in-flight
// run, closes its SSE stream with a shutdown event, refuses new
// submissions, and persists the cache index.
func TestShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	job := submit(t, ts, RunSpec{Runner: "test-block"})
	<-blockStarted

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // drain deadline already passed: in-flight runs are interrupted
	if err := svc.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("Shutdown = %v, want context.Canceled", err)
	}

	got := getJob(t, ts, job.ID)
	if got.State != StateCanceled {
		t.Fatalf("in-flight job state = %s after shutdown", got.State)
	}
	events := readEvents(t, ts, job.ID)
	if len(events) == 0 || events[len(events)-1]["kind"] != "shutdown" {
		t.Errorf("stream did not end with shutdown: %v", events)
	}

	body, _ := json.Marshal(RunSpec{Runner: "fig4"})
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: status %d, want 503", resp.StatusCode)
	}

	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		t.Errorf("cache index not persisted: %v", err)
	}
}

// TestShutdownFinishesIdle: with nothing running, Shutdown returns
// promptly and cleanly even with a generous deadline.
func TestShutdownFinishesIdle(t *testing.T) {
	svc, _ := newTestServer(t, Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("idle Shutdown = %v", err)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"codeVersion", "jobs", "simulations", "cacheHits", "cachedResults",
		"cellHits", "cellMisses", "cachedCells"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("stats missing %q: %v", key, stats)
		}
	}
	if stats["codeVersion"] != "test-v1" {
		t.Errorf("codeVersion = %v", stats["codeVersion"])
	}
}

// TestCellCacheComposesAcrossRunners pins the tentpole property at the
// service layer: two different runners whose sweeps overlap share cells
// through the store, so the second run simulates only its novel cells
// even though the run-level cache (keyed by the whole spec) misses.
func TestCellCacheComposesAcrossRunners(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})

	cellStats := func() (hits, misses, simulations int64) {
		return svc.cells.Hits(), svc.cells.Misses(), svc.simulations.Load()
	}

	narrow := submit(t, ts, RunSpec{Runner: "test-conc-narrow"})
	waitState(t, ts, narrow.ID, StateDone)
	hits, misses, sims := cellStats()
	if hits != 0 || misses != 3 || sims != 1 {
		t.Fatalf("after narrow: hits=%d misses=%d simulations=%d, want 0, 3, 1", hits, misses, sims)
	}

	wide := submit(t, ts, RunSpec{Runner: "test-conc-wide"})
	done := waitState(t, ts, wide.ID, StateDone)
	if done.Cached {
		t.Fatal("wide run answered from the run-level cache; it should have run with cell reuse")
	}
	hits, misses, sims = cellStats()
	if hits != 3 || misses != 4 || sims != 2 {
		t.Fatalf("after wide: hits=%d misses=%d simulations=%d, want 3 (narrow's cells reused), 4 (one new cell), 2", hits, misses, sims)
	}

	// A cold server rendering wide from scratch must produce the same
	// bytes the warm composition did.
	warmOut := fetchResult(t, ts, wide.ID)
	_, ts2 := newTestServer(t, Config{Workers: 1})
	coldJob := submit(t, ts2, RunSpec{Runner: "test-conc-wide"})
	waitState(t, ts2, coldJob.ID, StateDone)
	coldOut := fetchResult(t, ts2, coldJob.ID)
	if !bytes.Equal(warmOut, coldOut) {
		t.Errorf("cell-composed result differs from cold run:\n-- warm --\n%s\n-- cold --\n%s", warmOut, coldOut)
	}
}

// fetchResult reads a done run's raw result bytes.
func fetchResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestListRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	a := submit(t, ts, RunSpec{Runner: "test-block"})
	<-blockStarted
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Runs []Job `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 || got.Runs[0].ID != a.ID {
		t.Fatalf("list = %+v", got.Runs)
	}
	del, err := http.DefaultClient.Do(mustReq(t, http.MethodDelete, ts.URL+"/v1/runs/"+a.ID))
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
}

func TestResultConflictBeforeDone(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	job := submit(t, ts, RunSpec{Runner: "test-block"})
	<-blockStarted
	resp, err := http.Get(ts.URL + "/v1/runs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result before done: status %d, want 409", resp.StatusCode)
	}
	del, err := http.DefaultClient.Do(mustReq(t, http.MethodDelete, ts.URL+"/v1/runs/"+job.ID))
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
}
