package service

import (
	"encoding/json"
	"sync"
	"time"

	"tcptrim/internal/experiment"
)

// sink adapts a run's stream to the experiment.Progress interface. It
// runs on the simulation's critical path (sampler Records, collector
// completions fire it), so it must stay cheap: high-frequency event
// kinds are throttled per metric to one event per minGap of wall-clock
// time (the first of each metric always passes), and publishing into
// the stream never blocks. Milestone kinds (cell, fct, retrans) always
// pass — they are rare and each one matters.
//
// The sink only observes; it never touches simulation state, which is
// what keeps an armed hook from perturbing results.
type sink struct {
	st     *stream
	minGap time.Duration

	mu   sync.Mutex
	last map[string]time.Time
}

func newSink(st *stream, minGap time.Duration) *sink {
	return &sink{st: st, minGap: minGap, last: map[string]time.Time{}}
}

// Publish implements experiment.Progress.
func (s *sink) Publish(ev experiment.ProgressEvent) {
	switch ev.Kind {
	case "sample", "responses":
		if !s.pass(ev.Kind + "/" + ev.Name) {
			return
		}
	}
	s.emit(ev)
}

// pass claims a throttle slot for key.
func (s *sink) pass(key string) bool {
	if s.minGap <= 0 {
		return true
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if last, ok := s.last[key]; ok && now.Sub(last) < s.minGap {
		return false
	}
	s.last[key] = now
	return true
}

// emit encodes and publishes one event; encoding failures are dropped
// (an observability path must never fail the run).
func (s *sink) emit(ev experiment.ProgressEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	s.st.publish(data)
}
