package service

import "sync"

// stream is one run's event channel: a bounded replay buffer (late
// subscribers catch up from the start of the run) plus live fan-out to
// current subscribers. Publishing never blocks — a subscriber that
// cannot keep up has events dropped from its live channel, while the
// replay buffer stays authoritative for everything within its bound.
type stream struct {
	mu     sync.Mutex
	buf    [][]byte
	subs   map[chan []byte]struct{}
	closed bool
}

// replayCap bounds the per-run replay buffer. A fig4 run emits a few
// thousand samples; beyond the cap the oldest events are forgotten
// (dropped count is visible as a gap in "responses" counters, which are
// cumulative by design).
const replayCap = 8192

// subCap is each live subscriber's channel depth.
const subCap = 256

func newStream() *stream {
	return &stream{subs: map[chan []byte]struct{}{}}
}

// publish appends one encoded event and fans it out.
func (st *stream) publish(data []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	if len(st.buf) >= replayCap {
		st.buf = st.buf[1:]
	}
	st.buf = append(st.buf, data)
	for ch := range st.subs {
		select {
		case ch <- data:
		default: // slow subscriber: drop, replay buffer keeps the record
		}
	}
}

// close publishes an optional terminal event and ends the stream; every
// subscriber's channel is closed after the terminal event.
func (st *stream) close(terminal []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	if terminal != nil {
		if len(st.buf) >= replayCap {
			st.buf = st.buf[1:]
		}
		st.buf = append(st.buf, terminal)
		for ch := range st.subs {
			select {
			case ch <- terminal:
			default:
			}
		}
	}
	st.closed = true
	for ch := range st.subs {
		close(ch)
	}
	st.subs = map[chan []byte]struct{}{}
}

// subscribe returns the replay so far and a live channel (nil if the
// stream already closed — the replay then ends with the terminal event).
// cancel must be called when the subscriber goes away.
func (st *stream) subscribe() (replay [][]byte, ch chan []byte, cancel func()) {
	st.mu.Lock()
	defer st.mu.Unlock()
	replay = make([][]byte, len(st.buf))
	copy(replay, st.buf)
	if st.closed {
		return replay, nil, func() {}
	}
	ch = make(chan []byte, subCap)
	st.subs[ch] = struct{}{}
	return replay, ch, func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		if _, ok := st.subs[ch]; ok {
			delete(st.subs, ch)
			close(ch)
		}
	}
}
