// Package core implements TCP-TRIM, the paper's primary contribution: a
// sender-only congestion-control policy for persistent HTTP connections
// that (a) conditionally inherits the congestion window across ON/OFF
// gaps using two probe packets (Algorithm 1 and Eq. 1), and (b) bounds the
// switch queue with a delay threshold K and DCTCP-style gentle decrease
// (Algorithm 2, Eq. 2–3), with K chosen per the steady-state analysis of
// Section III.B (Eq. 22).
package core

import (
	"math"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// DefaultAlpha is the paper's smoothing weight for the new RTT sample
// ("α … is set to 0.25 throughout all the tests").
const DefaultAlpha = 0.25

// probeCount is the number of probe packets sent at the start of an ON
// period (Algorithm 1 sets cwnd to 2 and sends both packets as probes).
const probeCount = 2

// DefaultProbeDeadlineFactor is the default probe-deadline scale: 2× the
// smoothed RTT rather than Algorithm 2's literal 1× (a declared deviation;
// the rationale is on Config.ProbeDeadlineFactor).
const DefaultProbeDeadlineFactor = 2

// Config tunes TCP-TRIM. The zero value reproduces the paper's settings.
type Config struct {
	// Alpha is the smoothed-RTT gain; 0 means DefaultAlpha.
	Alpha float64
	// K fixes the delay threshold. Zero derives K from Eq. 22 using the
	// connection's configured link rate and the measured minimum RTT,
	// recomputed whenever minRTT drops.
	K time.Duration
	// BaseRTT, when set, is the known queue-free round-trip time D of
	// Eq. 22 and Eq. 1. In the paper's analysis D is a topology constant,
	// not a per-flow measurement; configuring it keeps K identical across
	// flows, which is what makes concurrent TRIM flows converge to the
	// fair share (a flow that starts against a standing queue can never
	// observe the true D on its own). Zero falls back to the measured
	// minimum RTT.
	BaseRTT time.Duration
	// FallbackKFactor sets K = factor × minRTT when no link rate is
	// configured and K is not fixed; 0 means 2.
	FallbackKFactor float64
	// ProbeDeadlineFactor scales the probe-ACK deadline of Algorithm 2
	// line 11 in units of the smoothed RTT; 0 means
	// DefaultProbeDeadlineFactor. The paper's literal pseudocode waits
	// 1× the smoothed RTT, but a 1× deadline races the probe ACKs it is
	// waiting for (their RTT is at least the smoothed RTT whenever any
	// queueing exists), so the default is a declared deviation — see
	// DESIGN.md §7 "Conformance". Set 1 for the paper-literal behavior.
	ProbeDeadlineFactor float64

	// DisableProbing turns off the inter-train probe mechanism
	// (ablation: queue control only).
	DisableProbing bool
	// DisableQueueControl turns off the delay-based decrease
	// (ablation: probing only).
	DisableQueueControl bool
}

// Trim is the TCP-TRIM window policy. Create one per connection.
type Trim struct {
	cfg Config
	ctl tcp.Control

	smoothRTT time.Duration
	minRTT    time.Duration
	k         time.Duration

	probing     bool
	savedCwnd   float64
	probeEnds   []int64
	probeRTTs   []time.Duration
	probesSent  int
	probeTimer  sim.Timer
	probeFn     func()
	probeRounds int
	// lastResume marks when the last probe exchange ended; the idle-gap
	// test measures from it so the probe pause itself never reads as a
	// new inter-train gap.
	lastResume    sim.Time
	everResumed   bool
	probeTimeouts int

	lastDecrease    sim.Time
	everDecreased   bool
	queueReductions int
}

var _ tcp.CongestionControl = (*Trim)(nil)

// WithDefaults returns the configuration with every zero field resolved
// to its default, exactly as New resolves it. The conformance oracle uses
// this to mirror the live policy's effective settings.
func (c Config) WithDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.FallbackKFactor == 0 {
		c.FallbackKFactor = 2
	}
	if c.ProbeDeadlineFactor <= 0 {
		c.ProbeDeadlineFactor = DefaultProbeDeadlineFactor
	}
	return c
}

// New returns a TCP-TRIM policy with cfg (zero value = paper settings).
func New(cfg Config) *Trim {
	return &Trim{cfg: cfg.WithDefaults()}
}

// Name implements tcp.CongestionControl.
func (t *Trim) Name() string { return "TCP-TRIM" }

// Attach implements tcp.CongestionControl.
func (t *Trim) Attach(ctl tcp.Control) {
	t.ctl = ctl
	t.probeFn = t.onProbeDeadline
	if t.cfg.BaseRTT > 0 {
		// K is a topology constant when D is configured; no need to wait
		// for RTT samples.
		t.updateK()
	}
}

// SmoothRTT returns the policy's smoothed RTT (Algorithm 2 line 2).
func (t *Trim) SmoothRTT() time.Duration { return t.smoothRTT }

// MinRTT returns the observed minimum RTT (the queue-free latency D).
func (t *Trim) MinRTT() time.Duration { return t.minRTT }

// baseRTT returns the queue-free RTT estimate: the configured constant
// when provided, else the measured minimum.
func (t *Trim) baseRTT() time.Duration {
	if t.cfg.BaseRTT > 0 {
		return t.cfg.BaseRTT
	}
	return t.minRTT
}

// K returns the current delay threshold.
func (t *Trim) K() time.Duration { return t.k }

// Probing reports whether a probe exchange is in flight.
func (t *Trim) Probing() bool { return t.probing }

// Quiescent implements tcp.Quiescer: TRIM holds cross-event state of its
// own (the probe cycle and its deadline timer); a connection may only be
// detached between probe exchanges. The inherited window, RTT estimate,
// and probe history persist in the policy object across detach/attach —
// the paper's cross-train window inheritance.
func (t *Trim) Quiescent() bool { return !t.probing && !t.probeTimer.Pending() }

// ProbeRounds returns how many probe exchanges were started.
func (t *Trim) ProbeRounds() int { return t.probeRounds }

// ProbeTimeouts returns how many probe exchanges expired without their
// ACKs and fell back to the minimum window.
func (t *Trim) ProbeTimeouts() int { return t.probeTimeouts }

// QueueReductions returns how many delay-triggered window cuts were made.
func (t *Trim) QueueReductions() int { return t.queueReductions }

// BeforeSend implements tcp.CongestionControl: Algorithm 1. If the idle
// interval since the last transmission exceeds the smoothed RTT, save the
// accumulated window, drop to the probe window, and let the next packets
// go out as probes.
func (t *Trim) BeforeSend() {
	if t.cfg.DisableProbing || t.probing || t.smoothRTT == 0 {
		return
	}
	gap, sent := t.ctl.SinceLastSend()
	if !sent {
		return
	}
	if t.everResumed {
		// Waiting out our own probe exchange is not application idle
		// time; measure from whichever is more recent.
		if since := t.ctl.Now().Sub(t.lastResume); since < gap {
			gap = since
		}
	}
	if gap <= t.smoothRTT {
		return
	}
	t.probing = true
	t.probeRounds++
	t.savedCwnd = t.ctl.Cwnd()
	t.probeEnds = t.probeEnds[:0]
	t.probeRTTs = t.probeRTTs[:0]
	t.probesSent = 0
	t.ctl.SetCwnd(probeCount)
	// Stale flight from a stalled previous train must not dead-lock the
	// probe exchange: grant the probes passage beyond the (now tiny)
	// window.
	t.ctl.AllowBeyondWindow(probeCount)
}

// OnSent implements tcp.CongestionControl: tag up to two new-data packets
// as probes, then suspend transmission and arm the probe deadline of one
// smoothed RTT (Algorithm 2 lines 8 and 11).
func (t *Trim) OnSent(ev tcp.SendEvent) bool {
	if !t.probing || ev.Retransmit || t.probesSent >= probeCount {
		return false
	}
	t.probesSent++
	t.probeEnds = append(t.probeEnds, ev.EndSeq)
	if t.probesSent == 1 {
		t.armProbeDeadline()
	}
	if t.probesSent == probeCount {
		t.ctl.Suspend()
	}
	return true
}

func (t *Trim) armProbeDeadline() {
	// Algorithm 2 waits "a smoothed RTT" for the probe ACKs, scaled by
	// the ProbeDeadlineFactor deviation knob (default 2× — still far
	// below any RTO; see Config.ProbeDeadlineFactor).
	deadline := time.Duration(t.cfg.ProbeDeadlineFactor * float64(t.smoothRTT))
	if deadline <= 0 {
		deadline = time.Millisecond
	}
	if !t.probeTimer.Reset(deadline) {
		t.probeTimer = t.ctl.After(deadline, t.probeFn)
	}
}

// onProbeDeadline fires when a probe ACK failed to arrive within one
// smoothed RTT: fall back to the minimum window (Algorithm 2 line 12).
func (t *Trim) onProbeDeadline() {
	if !t.probing {
		return
	}
	t.probeTimeouts++
	t.endProbe()
	t.ctl.SetCwnd(probeCount)
	t.ctl.Resume()
}

func (t *Trim) endProbe() {
	t.probing = false
	t.lastResume = t.ctl.Now()
	t.everResumed = true
	// Revoke any unused beyond-window allowance: it exists only so the
	// probes themselves can depart past stale flight.
	t.ctl.AllowBeyondWindow(0)
	t.probeTimer.Stop()
	t.probeTimer = sim.Timer{}
}

// OnAck implements tcp.CongestionControl: Algorithm 2.
func (t *Trim) OnAck(ev tcp.AckEvent) {
	if ev.RTT > 0 {
		t.observeRTT(ev.RTT)
	}

	if t.probing {
		t.onProbeAck(ev)
		return
	}

	// Standard window growth rides underneath TRIM's regulation.
	tcp.GrowReno(t.ctl, ev)

	if t.cfg.DisableQueueControl || ev.RTT <= 0 {
		return
	}
	t.queueControl(ev.RTT)
}

// onProbeAck collects probe RTT samples; once every sent probe is covered
// by the cumulative ACK, tune the inherited window per Eq. 1 and resume.
func (t *Trim) onProbeAck(ev tcp.AckEvent) {
	matched := false
	for len(t.probeEnds) > 0 && t.probeEnds[0] <= ev.Ack {
		t.probeEnds = t.probeEnds[1:]
		matched = true
	}
	if matched && ev.RTT > 0 {
		t.probeRTTs = append(t.probeRTTs, ev.RTT)
	}
	if t.probesSent == 0 || len(t.probeEnds) > 0 {
		return
	}
	t.endProbe()
	w := t.tunedWindow()
	t.ctl.SetCwnd(w)
	// The tuned window already reflects the probed congestion state;
	// continue in congestion avoidance rather than doubling from it
	// (same spirit as RFC 2861's window validation after idle).
	t.ctl.SetSsthresh(w)
	t.ctl.Resume()
}

// tunedWindow applies Eq. 1: cwnd = s_cwnd × (1 − (probeRTT−minRTT)/minRTT),
// clamped to the legacy minimum window when the probe RTT indicates the
// congestion state changed drastically (Section III.C).
func (t *Trim) tunedWindow() float64 {
	minW := t.ctl.MinCwnd()
	base := t.baseRTT()
	if len(t.probeRTTs) == 0 || base <= 0 {
		return minW
	}
	var sum time.Duration
	for _, r := range t.probeRTTs {
		sum += r
	}
	probeRTT := sum / time.Duration(len(t.probeRTTs))
	factor := 1 - float64(probeRTT-base)/float64(base)
	w := t.savedCwnd * factor
	if w < minW {
		return minW
	}
	if w > t.savedCwnd {
		w = t.savedCwnd
	}
	return w
}

// queueControl applies Eq. 2–3 at most once per smoothed RTT: when the
// measured RTT exceeds K, shrink the window in proportion to half the
// excess-delay fraction.
func (t *Trim) queueControl(rtt time.Duration) {
	if t.k <= 0 || rtt < t.k {
		return
	}
	now := t.ctl.Now()
	if t.everDecreased && now.Sub(t.lastDecrease) < t.smoothRTT {
		return
	}
	ep := float64(rtt-t.k) / float64(rtt)
	t.ctl.SetCwnd(t.ctl.Cwnd() * (1 - ep/2))
	// A delay-triggered cut is a congestion signal: leave slow start so
	// exponential growth cannot immediately overshoot the queue again.
	t.ctl.SetSsthresh(t.ctl.Cwnd())
	t.lastDecrease = now
	t.everDecreased = true
	t.queueReductions++
}

// observeRTT maintains smooth_RTT, min_RTT, and K (Algorithm 2 lines 2–6).
func (t *Trim) observeRTT(rtt time.Duration) {
	if t.smoothRTT == 0 {
		t.smoothRTT = rtt
	} else {
		a := t.cfg.Alpha
		t.smoothRTT = time.Duration((1-a)*float64(t.smoothRTT) + a*float64(rtt))
	}
	if t.minRTT == 0 || rtt < t.minRTT {
		t.minRTT = rtt
		t.updateK()
	}
}

func (t *Trim) updateK() {
	if t.cfg.K > 0 {
		t.k = t.cfg.K
		return
	}
	base := t.baseRTT()
	rate := t.ctl.LinkRate()
	if rate <= 0 {
		t.k = time.Duration(t.cfg.FallbackKFactor * float64(base))
		return
	}
	c := rate.PacketsPerSecond(t.ctl.WirePacketSize())
	t.k = GuidelineK(c, base)
}

// OnDupAck implements tcp.CongestionControl.
func (t *Trim) OnDupAck() {}

// SsthreshAfterLoss implements tcp.CongestionControl: TRIM keeps the
// legacy Reno loss response.
func (t *Trim) SsthreshAfterLoss() float64 { return tcp.HalfWindow(t.ctl) }

// OnTimeout implements tcp.CongestionControl: abandon any probe exchange
// (its packets are being retransmitted) and let the sender restart.
func (t *Trim) OnTimeout() {
	if t.probing {
		t.endProbe()
	}
	t.ctl.Resume()
}

// GuidelineK evaluates Eq. 22: K ≥ max( (√(2·C·D) − 1)² / C , D ), with C
// the bottleneck capacity in packets per second and D the queue-free
// round-trip time. The returned K guarantees full bottleneck utilization
// in the paper's synchronized steady-state model for any number of flows.
func GuidelineK(packetsPerSecond float64, d time.Duration) time.Duration {
	if packetsPerSecond <= 0 || d <= 0 {
		return d
	}
	dSec := d.Seconds()
	root := math.Sqrt(2*packetsPerSecond*dSec) - 1
	kSec := root * root / packetsPerSecond
	k := time.Duration(kSec * float64(time.Second))
	// The floor K ≥ D must hold exactly in Duration space; the float
	// round trip can land one nanosecond short.
	if k < d {
		k = d
	}
	return k
}

// GuidelineKForLink is a convenience wrapper computing C from a link rate
// and wire packet size.
func GuidelineKForLink(rate netsim.Bitrate, wirePacketSize int, d time.Duration) time.Duration {
	return GuidelineK(rate.PacketsPerSecond(wirePacketSize), d)
}
