package core

// Tests of the Config knobs added around the paper's core algorithm:
// fixed K, BaseRTT, fallback factor, and the probe/tuning interactions
// with them.

import (
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

func TestFixedKOverridesEverything(t *testing.T) {
	ctl := newFakeCtl()
	ctl.rate = netsim.Gbps
	tr := New(Config{K: 777 * time.Microsecond, BaseRTT: 100 * time.Microsecond})
	tr.Attach(ctl)
	if tr.K() != 777*time.Microsecond {
		t.Errorf("K = %v at attach", tr.K())
	}
	seedRTT(tr, 200*time.Microsecond)
	if tr.K() != 777*time.Microsecond {
		t.Errorf("K = %v after samples, fixed K must stick", tr.K())
	}
}

func TestBaseRTTSetsKAtAttach(t *testing.T) {
	ctl := newFakeCtl()
	ctl.rate = netsim.Gbps
	tr := New(Config{BaseRTT: 225 * time.Microsecond})
	tr.Attach(ctl)
	want := GuidelineKForLink(netsim.Gbps, 1500, 225*time.Microsecond)
	if tr.K() != want {
		t.Errorf("K = %v at attach, want %v from the configured D", tr.K(), want)
	}
	// A smaller measured RTT must not disturb the configured-D K.
	seedRTT(tr, 120*time.Microsecond)
	if tr.K() != want {
		t.Errorf("K = %v after a smaller sample, configured D must win", tr.K())
	}
}

func TestBaseRTTUsedInEq1(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{BaseRTT: 200 * time.Microsecond})
	tr.Attach(ctl)
	// Even though the measured minimum is inflated (flow started against
	// a standing queue), Eq. 1 uses the configured D.
	seedRTT(tr, 400*time.Microsecond)
	ctl.cwnd = 100
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
	tr.OnSent(tcp.SendEvent{Seq: 1460, EndSeq: 2920})
	// probeRTT = 240µs: with D=200µs the factor is 1−40/200 = 0.8 → 80.
	// With the inflated measured minRTT (400µs) it would have been
	// capped at the saved window (probeRTT < minRTT).
	tr.OnAck(tcp.AckEvent{Ack: 2920, AckedSegs: 2, RTT: 240 * time.Microsecond})
	if ctl.cwnd != 80 {
		t.Errorf("tuned cwnd = %v, want 80 from configured D", ctl.cwnd)
	}
}

func TestTunedWindowNeverExceedsSaved(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{BaseRTT: 400 * time.Microsecond})
	tr.Attach(ctl)
	seedRTT(tr, 400*time.Microsecond)
	ctl.cwnd = 50
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
	tr.OnSent(tcp.SendEvent{Seq: 1460, EndSeq: 2920})
	// Probe RTT below D (configured D was conservative): Eq. 1's factor
	// exceeds 1; inheritance must cap at the saved window.
	tr.OnAck(tcp.AckEvent{Ack: 2920, AckedSegs: 2, RTT: 300 * time.Microsecond})
	if ctl.cwnd != 50 {
		t.Errorf("tuned cwnd = %v, want cap at saved 50", ctl.cwnd)
	}
}

func TestFallbackKFactor(t *testing.T) {
	ctl := newFakeCtl() // no link rate
	tr := New(Config{FallbackKFactor: 3})
	tr.Attach(ctl)
	seedRTT(tr, 100*time.Microsecond)
	if tr.K() != 300*time.Microsecond {
		t.Errorf("K = %v, want 3×minRTT", tr.K())
	}
}

func TestQueueControlSetsSsthresh(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{K: 300 * time.Microsecond})
	tr.Attach(ctl)
	seedRTT(tr, 200*time.Microsecond)
	ctl.cwnd, ctl.ssthresh = 100, 1<<30
	tr.OnAck(tcp.AckEvent{Ack: 100, AckedSegs: 1, RTT: 600 * time.Microsecond})
	if ctl.ssthresh > ctl.cwnd+1e-9 {
		t.Errorf("ssthresh = %v above cwnd %v: slow start would re-overshoot", ctl.ssthresh, ctl.cwnd)
	}
}

func TestProbeResolutionSetsSsthresh(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	seedRTT(tr, 200*time.Microsecond)
	ctl.cwnd, ctl.ssthresh = 100, 1<<30
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
	tr.OnSent(tcp.SendEvent{Seq: 1460, EndSeq: 2920})
	tr.OnAck(tcp.AckEvent{Ack: 2920, AckedSegs: 2, RTT: 220 * time.Microsecond})
	if ctl.ssthresh != ctl.cwnd {
		t.Errorf("ssthresh = %v, want tuned window %v (CA restart)", ctl.ssthresh, ctl.cwnd)
	}
}

func TestNoReProbeAfterResolution(t *testing.T) {
	// After a probe exchange resolves, the pause it created must not be
	// misread as a fresh inter-train gap.
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	seedRTT(tr, 200*time.Microsecond)
	ctl.cwnd = 50
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
	tr.OnSent(tcp.SendEvent{Seq: 1460, EndSeq: 2920})
	tr.OnAck(tcp.AckEvent{Ack: 2920, AckedSegs: 2, RTT: 220 * time.Microsecond})
	if tr.ProbeRounds() != 1 {
		t.Fatalf("rounds = %d", tr.ProbeRounds())
	}
	// The sender's last transmission is one probe-RTT old, but the
	// exchange just resolved: BeforeSend must not start round 2.
	ctl.gap = 250 * time.Microsecond
	tr.BeforeSend()
	if tr.ProbeRounds() != 1 {
		t.Errorf("re-probed immediately after resolution: rounds = %d", tr.ProbeRounds())
	}
}

func TestProbeDeadlineRevokesAllowance(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	seedRTT(tr, 200*time.Microsecond)
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	if ctl.bonus != 2 {
		t.Fatalf("bonus = %d", ctl.bonus)
	}
	tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
	ctl.sched.RunUntil(ctl.sched.Now().Add(time.Second))
	if tr.Probing() {
		t.Fatal("deadline did not fire")
	}
	if ctl.bonus != 0 {
		t.Errorf("bonus = %d after probe end, must be revoked", ctl.bonus)
	}
	if tr.ProbeTimeouts() != 1 {
		t.Errorf("ProbeTimeouts = %d", tr.ProbeTimeouts())
	}
}

func TestProbeDeadlineFactorScalesDeadline(t *testing.T) {
	// The deadline must fire exactly at factor × smoothed RTT: one tick
	// before it the exchange is still pending, at it the exchange has
	// timed out.
	for _, tc := range []struct {
		factor float64
		fireAt time.Duration
	}{
		{0, 200 * time.Microsecond}, // zero resolves to the default 2×
		{1, 100 * time.Microsecond}, // paper-literal Algorithm 2 line 11
		{3, 300 * time.Microsecond},
	} {
		ctl := newFakeCtl()
		tr := New(Config{ProbeDeadlineFactor: tc.factor})
		tr.Attach(ctl)
		seedRTT(tr, 100*time.Microsecond)
		ctl.hasSent, ctl.gap = true, 5*time.Millisecond
		tr.BeforeSend()
		if !tr.Probing() {
			t.Fatalf("factor %v: probe round did not start", tc.factor)
		}
		tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
		ctl.sched.RunUntil(sim.At(tc.fireAt - time.Nanosecond))
		if !tr.Probing() {
			t.Fatalf("factor %v: deadline fired before %v", tc.factor, tc.fireAt)
		}
		ctl.sched.RunUntil(sim.At(tc.fireAt))
		if tr.Probing() || tr.ProbeTimeouts() != 1 {
			t.Errorf("factor %v: deadline did not fire at %v (probing=%v timeouts=%d)",
				tc.factor, tc.fireAt, tr.Probing(), tr.ProbeTimeouts())
		}
	}
}

func TestWithDefaultsResolvesZeroFields(t *testing.T) {
	got := Config{}.WithDefaults()
	if got.Alpha != DefaultAlpha || got.FallbackKFactor != 2 ||
		got.ProbeDeadlineFactor != DefaultProbeDeadlineFactor {
		t.Errorf("WithDefaults() = %+v", got)
	}
	// Explicit settings survive untouched.
	cfg := Config{Alpha: 0.5, FallbackKFactor: 3, ProbeDeadlineFactor: 1,
		K: time.Millisecond, BaseRTT: 2 * time.Millisecond}
	if got := cfg.WithDefaults(); got != cfg {
		t.Errorf("WithDefaults() = %+v, want %+v", got, cfg)
	}
}
