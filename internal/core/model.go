package core

import (
	"math"
	"time"
)

// SteadyState numerically evaluates the paper's Section III.B fluid model
// of N totally synchronized TCP-TRIM long flows sharing one bottleneck:
// every flow grows its window by one packet per round; when the round-trip
// time exceeds K, each flow j backs off by Eq. 3 with its own RTT of
// Eq. 8. The model exposes the quantity the K guideline is derived from —
// the minimum queue occupancy right after a synchronized back-off
// (Eq. 11): utilization is full iff that minimum never goes negative.
//
// This is the analysis, not the packet simulator; the TestModel* tests
// cross-check the closed-form guideline (Eq. 22) against this executable
// version of the derivation, and the eq22 experiment checks both against
// packet-level behaviour.
type SteadyState struct {
	// N is the number of synchronized flows.
	N int
	// C is the bottleneck capacity in packets per second.
	C float64
	// D is the queue-free round-trip time.
	D time.Duration
	// K is the back-off threshold.
	K time.Duration
}

// ModelResult summarizes the model's steady-state cycle.
type ModelResult struct {
	// WindowBeforeBackoff is each flow's window when RTT first exceeds K
	// (Eq. 6: CK/N + 1).
	WindowBeforeBackoff float64
	// QueueMax is the queue right before back-off (Eq. 7).
	QueueMax float64
	// TotalDecrement is the synchronized window reduction (Eq. 10).
	TotalDecrement float64
	// QueueMin is the queue right after back-off (left side of Eq. 11).
	QueueMin float64
	// FullUtilization reports whether the queue never drains to zero.
	FullUtilization bool
}

// Evaluate runs one cycle of the synchronized steady state.
func (m SteadyState) Evaluate() ModelResult {
	var res ModelResult
	if m.N <= 0 || m.C <= 0 || m.D <= 0 || m.K < m.D {
		return res
	}
	ck := m.C * m.K.Seconds()
	n := float64(m.N)

	// Eq. 5–6: the window the threshold admits, plus the +1 growth that
	// overshoots it.
	res.WindowBeforeBackoff = ck/n + 1
	// Eq. 7: Qmax = C(K−D) + N.
	res.QueueMax = m.C*(m.K.Seconds()-m.D.Seconds()) + n

	// Eq. 8–10: flow j sees RTT = K + j/C, so ep_j = j/(CK+j) and its
	// decrement is W(i+1) × ep_j / 2; summed exactly rather than through
	// the paper's integral approximation (Eq. 13).
	var sum float64
	for j := 1; j <= m.N; j++ {
		sum += float64(j) / (ck + float64(j))
	}
	// Eq. 10's prefactor (CK+N)/(2N) is W(i+1)/2 with W(i+1) = (CK+N)/N.
	res.TotalDecrement = res.WindowBeforeBackoff / 2 * sum
	res.QueueMin = res.QueueMax - res.TotalDecrement
	res.FullUtilization = res.QueueMin > 0
	return res
}

// MinimalFullUtilizationK searches the smallest K (at microsecond
// resolution) for which the model keeps the queue busy — the model-exact
// counterpart of the closed-form guideline, which is an upper bound
// because of the integral and ln-term relaxations in Eq. 13–15.
func (m SteadyState) MinimalFullUtilizationK(lo, hi time.Duration) time.Duration {
	if lo < m.D {
		lo = m.D
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		probe := m
		probe.K = mid
		if probe.Evaluate().FullUtilization {
			hi = mid
		} else {
			lo = mid + time.Microsecond
		}
	}
	return lo
}

// GuidelineWorstCaseN returns the flow count that maximizes the right
// side of Eq. 16 (the stationary point of F(N), Eq. 19): the N the
// closed-form guideline is sized for.
func GuidelineWorstCaseN(c float64, d time.Duration) float64 {
	if c <= 0 || d <= 0 {
		return 0
	}
	// N² + 2N + 1 − 2DC = 0 → N = −1 + √(2DC).
	return -1 + math.Sqrt(2*c*d.Seconds())
}
