package core

import (
	"testing"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// Probe edge cases surfaced by the conformance oracle model
// (internal/conformance): exchanges that never reach Suspend, races at
// the deadline instant, and RTOs preempting the exchange. Each test pins
// the exact behavior the oracle transcribes, so a future refactor that
// shifts one of these boundaries fails here before it fails the shadow
// sweep.

// TestSingleSegmentTrainNeverSuspends: a 1-packet train sends only the
// first of the two probes, so Suspend — which Algorithm 1 issues after
// the second probe — must never be called, and the deadline armed at the
// *first* probe (deviation [deadline-at-first-probe], DESIGN.md §7) must
// still collect the exchange when the ACK never returns. Arming at
// suspension instead would leave this half-open exchange dangling until
// the RTO.
func TestSingleSegmentTrainNeverSuspends(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	seedRTT(tr, 200*time.Microsecond)
	ctl.cwnd = 50
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	if !tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460}) {
		t.Fatal("single packet should be tagged as a probe")
	}
	if ctl.susp {
		t.Fatal("Suspend called with only one probe sent")
	}
	if !tr.Probing() {
		t.Fatal("exchange not open after the first probe")
	}

	// The probe ACK is lost. One tick before the 2×sRTT deadline the
	// exchange is still open; at the deadline it times out.
	fireAt := sim.At(2 * 200 * time.Microsecond)
	ctl.sched.RunUntil(fireAt.Add(-time.Nanosecond))
	if !tr.Probing() {
		t.Fatal("exchange closed before the deadline")
	}
	ctl.sched.RunUntil(fireAt)
	if tr.Probing() {
		t.Fatal("deadline did not collect the one-probe exchange")
	}
	if tr.ProbeTimeouts() != 1 {
		t.Errorf("ProbeTimeouts = %d, want 1", tr.ProbeTimeouts())
	}
	if ctl.susp {
		t.Error("sender suspended after deadline")
	}
	if ctl.resumed != 1 {
		t.Errorf("Resume called %d times, want exactly 1", ctl.resumed)
	}
	if ctl.bonus != 0 {
		t.Errorf("beyond-window grant not revoked: bonus = %d", ctl.bonus)
	}
	if ctl.cwnd != 2 {
		t.Errorf("cwnd = %v, want the conservative floor 2", ctl.cwnd)
	}
}

// TestProbeAckExactlyAtDeadlineTick: when both probe ACKs arrive at the
// exact instant the deadline fires, the timeout wins. The scheduler
// breaks equal-time ties by insertion order, and the deadline timer was
// armed when the first probe departed — necessarily before any ACK for
// it could be scheduled — so the ordering is deterministic, not racy:
// the exchange resolves as a timeout (cwnd floor, no Eq. 1 tuning) and
// the simultaneous ACK is then absorbed as a plain post-probe ACK.
func TestProbeAckExactlyAtDeadlineTick(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	seedRTT(tr, 200*time.Microsecond)
	ctl.cwnd = 50
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
	tr.OnSent(tcp.SendEvent{Seq: 1460, EndSeq: 2920})
	if !ctl.susp {
		t.Fatal("not suspended after both probes")
	}

	// Deadline armed at t=0 for 2×sRTT = 400µs. Deliver both probe ACKs
	// at exactly that instant.
	fireAt := sim.At(400 * time.Microsecond)
	if _, err := ctl.sched.At(fireAt, func() {
		tr.OnAck(tcp.AckEvent{Ack: 2920, AckedSegs: 2, RTT: 220 * time.Microsecond})
	}); err != nil {
		t.Fatal(err)
	}
	ctl.sched.RunUntil(fireAt)

	if tr.ProbeTimeouts() != 1 {
		t.Fatalf("ProbeTimeouts = %d, want 1 (deadline must win the tie)", tr.ProbeTimeouts())
	}
	if tr.Probing() || ctl.susp {
		t.Fatal("exchange still open after the deadline tick")
	}
	// Had the ACK been treated as a probe resolution, Eq. 1 would set
	// cwnd = 50 × (1 − (220−200)/200) = 45. Instead: timeout floors the
	// window to 2, then the ACK slow-starts it to 4.
	if ctl.cwnd != 4 {
		t.Errorf("cwnd = %v, want 4 (timeout floor + slow-start), not the Eq. 1 window", ctl.cwnd)
	}
	if tr.QueueReductions() != 0 {
		t.Errorf("QueueReductions = %d, want 0 (220µs sample is below K)", tr.QueueReductions())
	}
}

// TestRTOPreemptsProbeExchange drives the OnTimeout path
// (trim.go: endProbe + Resume) from a real retransmission timeout over
// a live network: both probes of an exchange are lost on a downed link,
// and with ProbeDeadlineFactor large enough that the probe deadline can
// never fire before the RTO, the RTO itself must dissolve the exchange,
// revoke the suspension, and let go-back-N recover the train.
func TestRTOPreemptsProbeExchange(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.NewNetwork(sched)
	link := netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 64},
	}
	hs := net.AddHost("s")
	sw := net.AddSwitch("sw")
	hr := net.AddHost("r")
	fwd, _ := net.Connect(hs, sw, link)
	net.Connect(sw, hr, link)

	// Deadline = 500 × sRTT ≈ 110 ms with sRTT ≈ 220 µs: the 10 ms
	// MinRTO always fires first, even across several backoff doublings.
	tr := New(Config{ProbeDeadlineFactor: 500})
	conn, err := tcp.NewConn(tcp.Config{
		Sender:   tcp.NewStack(net, hs),
		Receiver: tcp.NewStack(net, hr),
		Flow:     1,
		CC:       tr,
		LinkRate: netsim.Gbps,
		MinRTO:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Warm up: short trains grow the window and settle sRTT.
	for i := 0; i < 20; i++ {
		at := sim.At(time.Duration(i) * time.Millisecond)
		if _, err := sched.At(at, func() { conn.SendTrain(4*tcp.DefaultMSS, nil) }); err != nil {
			t.Fatal(err)
		}
	}

	// After an idle gap the next train opens a probe exchange; the
	// downed forward link swallows both probes.
	done := false
	if _, err := sched.At(sim.At(100*time.Millisecond), func() {
		fwd.SetLinkDown(true)
		conn.SendTrain(30*tcp.DefaultMSS, func(tcp.TrainResult) { done = true })
	}); err != nil {
		t.Fatal(err)
	}

	// Before the first RTO (≈110 ms) the exchange must be in flight.
	midProbe := false
	if _, err := sched.At(sim.At(105*time.Millisecond), func() {
		midProbe = tr.Probing()
	}); err != nil {
		t.Fatal(err)
	}

	// Restore the link while retransmissions are still backing off.
	if _, err := sched.At(sim.At(135*time.Millisecond), func() {
		fwd.SetLinkDown(false)
	}); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.At(3 * time.Second))

	if !midProbe {
		t.Fatal("exchange was not open when the RTO was about to fire")
	}
	if conn.Stats().Timeouts == 0 {
		t.Fatal("no RTO fired — the probe loss was not exercised")
	}
	if tr.ProbeTimeouts() != 0 {
		t.Errorf("ProbeTimeouts = %d, want 0: only the RTO may dissolve the exchange", tr.ProbeTimeouts())
	}
	if tr.Probing() {
		t.Error("probe exchange still open after recovery")
	}
	if !done {
		t.Fatal("train never completed after the link came back")
	}
}
