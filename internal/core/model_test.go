package core

import (
	"testing"
	"testing/quick"
	"time"

	"tcptrim/internal/netsim"
)

func gigModel(n int, k time.Duration) SteadyState {
	return SteadyState{
		N: n,
		C: netsim.Gbps.PacketsPerSecond(1500),
		D: 225 * time.Microsecond,
		K: k,
	}
}

func TestModelGuidelineKeepsQueueBusy(t *testing.T) {
	// The closed-form K (Eq. 22) must yield full utilization in the
	// executable model for every flow count — that is exactly what the
	// derivation promises.
	kStar := GuidelineKForLink(netsim.Gbps, 1500, 225*time.Microsecond)
	for n := 1; n <= 200; n++ {
		res := gigModel(n, kStar).Evaluate()
		if !res.FullUtilization {
			t.Fatalf("N=%d: guideline K=%v drains the queue (min %f)", n, kStar, res.QueueMin)
		}
	}
}

func TestModelGuidelineIsNotGrosslyLoose(t *testing.T) {
	// At the worst-case N the model-exact minimal K should be within a
	// factor of ~2 of the closed-form bound (the bound relaxes Eq. 13's
	// sum and drops the negative ln term, so some slack is expected).
	kStar := GuidelineKForLink(netsim.Gbps, 1500, 225*time.Microsecond)
	worstN := int(GuidelineWorstCaseN(netsim.Gbps.PacketsPerSecond(1500), 225*time.Microsecond))
	if worstN < 1 {
		t.Fatalf("worst-case N = %d", worstN)
	}
	m := gigModel(worstN, 0)
	minK := m.MinimalFullUtilizationK(225*time.Microsecond, 10*time.Millisecond)
	if minK > kStar {
		t.Errorf("model needs K=%v above the closed-form bound %v", minK, kStar)
	}
	if kStar > 3*minK {
		t.Errorf("bound %v is more than 3× the model-exact %v", kStar, minK)
	}
}

func TestModelExactSumIsLessConservativeThanEq15(t *testing.T) {
	// An analytical finding of this reproduction: evaluating Eq. 10's sum
	// exactly (instead of the Σ→N−1 relaxation of Eq. 15) shows the
	// per-flow decrement W(i+1)·ep_j/2 with ep_j < 1 always totals less
	// than Qmax = C(K−D)+N whenever K ≥ D — the synchronized model never
	// drains the queue, so the closed-form K* is a safe but conservative
	// bound. Packet-level underutilization only appears for K < D
	// (cf. the eq22 sweep at K*/4 ≈ 79 µs < D = 225 µs).
	for _, n := range []int{1, 3, 5, 20, 100, 1000} {
		for _, k := range []time.Duration{225 * time.Microsecond, 240 * time.Microsecond, 2 * time.Millisecond} {
			res := gigModel(n, k).Evaluate()
			if !res.FullUtilization {
				t.Errorf("N=%d K=%v: exact model drained the queue (min %f)", n, k, res.QueueMin)
			}
		}
	}
}

func TestModelQuantitiesMatchPaperFormulas(t *testing.T) {
	m := gigModel(10, 500*time.Microsecond)
	res := m.Evaluate()
	ck := m.C * m.K.Seconds()
	if got, want := res.WindowBeforeBackoff, ck/10+1; !close(got, want) {
		t.Errorf("W(i+1) = %v, want %v", got, want)
	}
	if got, want := res.QueueMax, m.C*(m.K.Seconds()-m.D.Seconds())+10; !close(got, want) {
		t.Errorf("Qmax = %v, want %v", got, want)
	}
	if res.QueueMin >= res.QueueMax {
		t.Error("back-off must reduce the queue")
	}
}

func TestModelDegenerateInputs(t *testing.T) {
	for _, m := range []SteadyState{
		{N: 0, C: 1000, D: time.Millisecond, K: 2 * time.Millisecond},
		{N: 5, C: 0, D: time.Millisecond, K: 2 * time.Millisecond},
		{N: 5, C: 1000, D: 0, K: 2 * time.Millisecond},
		{N: 5, C: 1000, D: 2 * time.Millisecond, K: time.Millisecond}, // K < D
	} {
		if res := m.Evaluate(); res.FullUtilization {
			t.Errorf("degenerate %+v claimed full utilization", m)
		}
	}
}

// TestModelGuidelineProperty: for random capacities, delays, and flow
// counts, Eq. 22's K always keeps the model's queue busy.
func TestModelGuidelineProperty(t *testing.T) {
	prop := func(cRaw uint32, dus uint16, n8 uint8) bool {
		c := float64(cRaw%1_000_000) + 1_000 // 1k–1M packets/s
		d := time.Duration(int(dus)%2000+20) * time.Microsecond
		n := int(n8)%100 + 1
		k := GuidelineK(c, d)
		m := SteadyState{N: n, C: c, D: d, K: k}
		return m.Evaluate().FullUtilization
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGuidelineWorstCaseN(t *testing.T) {
	c := netsim.Gbps.PacketsPerSecond(1500)
	d := 225 * time.Microsecond
	n := GuidelineWorstCaseN(c, d)
	// √(2×83333×0.000225) − 1 ≈ 5.12.
	if n < 4 || n > 7 {
		t.Errorf("worst-case N = %v", n)
	}
	if GuidelineWorstCaseN(0, d) != 0 || GuidelineWorstCaseN(c, 0) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func close(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff < 1e-6*(1+b)
}
