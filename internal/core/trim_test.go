package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// fakeCtl is a scriptable tcp.Control for unit-testing the TRIM state
// machine without a network.
type fakeCtl struct {
	sched    *sim.Scheduler
	cwnd     float64
	ssthresh float64
	minCwnd  float64
	flight   int
	srtt     time.Duration
	susp     bool
	bonus    int
	gap      time.Duration
	hasSent  bool
	rate     netsim.Bitrate
	resumed  int
}

var _ tcp.Control = (*fakeCtl)(nil)

func newFakeCtl() *fakeCtl {
	return &fakeCtl{sched: sim.NewScheduler(), cwnd: 10, ssthresh: 1 << 30, minCwnd: 2}
}

func (f *fakeCtl) Now() sim.Time { return f.sched.Now() }
func (f *fakeCtl) After(d time.Duration, fn func()) sim.Timer {
	return f.sched.After(d, fn)
}
func (f *fakeCtl) Cwnd() float64 { return f.cwnd }
func (f *fakeCtl) SetCwnd(w float64) {
	if w < f.minCwnd {
		w = f.minCwnd
	}
	f.cwnd = w
}
func (f *fakeCtl) Ssthresh() float64                    { return f.ssthresh }
func (f *fakeCtl) SetSsthresh(w float64)                { f.ssthresh = w }
func (f *fakeCtl) MinCwnd() float64                     { return f.minCwnd }
func (f *fakeCtl) FlightSegs() int                      { return f.flight }
func (f *fakeCtl) SRTT() time.Duration                  { return f.srtt }
func (f *fakeCtl) SinceLastSend() (time.Duration, bool) { return f.gap, f.hasSent }
func (f *fakeCtl) Suspend()                             { f.susp = true }
func (f *fakeCtl) Resume()                              { f.susp = false; f.resumed++ }
func (f *fakeCtl) AllowBeyondWindow(n int) {
	if n < 0 {
		n = 0
	}
	f.bonus = n
}
func (f *fakeCtl) LinkRate() netsim.Bitrate { return f.rate }
func (f *fakeCtl) WirePacketSize() int      { return 1500 }

// seedRTT feeds one advancing ACK so smoothRTT/minRTT are initialized.
func seedRTT(tr *Trim, rtt time.Duration) {
	tr.OnAck(tcp.AckEvent{Ack: 1, AckedBytes: 1460, AckedSegs: 1, RTT: rtt})
}

func TestGuidelineKHandValues(t *testing.T) {
	// C = 83333 pkt/s (1 Gbps, 1500 B), D = 224 µs:
	// 2CD = 37.33, (√37.33−1)² / C ≈ 313 µs.
	k := GuidelineK(83333, 224*time.Microsecond)
	if k < 300*time.Microsecond || k > 330*time.Microsecond {
		t.Errorf("K = %v, want ≈313µs", k)
	}
}

func TestGuidelineKNeverBelowD(t *testing.T) {
	// Tiny capacity: the (√(2CD)−1)²/C term can dip below D; the floor
	// must win.
	d := time.Millisecond
	if k := GuidelineK(100, d); k < d {
		t.Errorf("K = %v < D = %v", k, d)
	}
	prop := func(c uint32, dus uint16) bool {
		cap := float64(c%1_000_000) + 1
		d := time.Duration(int(dus)+1) * time.Microsecond
		return GuidelineK(cap, d) >= d
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGuidelineKMonotonicInD(t *testing.T) {
	const c = 83333.0
	prev := time.Duration(0)
	for d := 50 * time.Microsecond; d <= time.Millisecond; d += 50 * time.Microsecond {
		k := GuidelineK(c, d)
		if k < prev {
			t.Fatalf("K not monotone at D=%v: %v < %v", d, k, prev)
		}
		prev = k
	}
}

func TestGuidelineKDegenerateInputs(t *testing.T) {
	if k := GuidelineK(0, time.Millisecond); k != time.Millisecond {
		t.Errorf("zero capacity: K = %v", k)
	}
	if k := GuidelineK(1000, 0); k != 0 {
		t.Errorf("zero D: K = %v", k)
	}
}

func TestGuidelineKForLinkMatchesManual(t *testing.T) {
	want := GuidelineK(netsim.Gbps.PacketsPerSecond(1500), 224*time.Microsecond)
	got := GuidelineKForLink(netsim.Gbps, 1500, 224*time.Microsecond)
	if got != want {
		t.Errorf("wrapper %v != manual %v", got, want)
	}
}

func TestSmoothRTTUsesAlpha(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	seedRTT(tr, 100*time.Microsecond)
	if tr.SmoothRTT() != 100*time.Microsecond {
		t.Fatalf("first sample sets smoothRTT directly, got %v", tr.SmoothRTT())
	}
	seedRTT(tr, 200*time.Microsecond)
	// 0.75×100 + 0.25×200 = 125µs.
	if tr.SmoothRTT() != 125*time.Microsecond {
		t.Errorf("smoothRTT = %v, want 125µs", tr.SmoothRTT())
	}
}

func TestMinRTTOnlyDecreases(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	seedRTT(tr, 300*time.Microsecond)
	seedRTT(tr, 500*time.Microsecond)
	if tr.MinRTT() != 300*time.Microsecond {
		t.Errorf("minRTT = %v", tr.MinRTT())
	}
	seedRTT(tr, 200*time.Microsecond)
	if tr.MinRTT() != 200*time.Microsecond {
		t.Errorf("minRTT = %v after smaller sample", tr.MinRTT())
	}
}

func TestGapTriggersProbe(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	ctl.cwnd = 900 // the paper's Fig. 4(b) inherited window
	seedRTT(tr, 200*time.Microsecond)

	// Idle shorter than smoothRTT: no probe.
	ctl.hasSent = true
	ctl.gap = 100 * time.Microsecond
	tr.BeforeSend()
	if tr.Probing() {
		t.Fatal("short gap must not trigger probing")
	}

	// Idle longer than smoothRTT: probe.
	ctl.gap = 5 * time.Millisecond
	tr.BeforeSend()
	if !tr.Probing() {
		t.Fatal("long gap must trigger probing")
	}
	if ctl.cwnd != 2 {
		t.Errorf("probe cwnd = %v, want 2", ctl.cwnd)
	}
	if ctl.bonus != 2 {
		t.Errorf("bonus = %d, want 2", ctl.bonus)
	}

	// The two probes go out; the second suspends the sender.
	if !tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460}) {
		t.Error("first packet should be tagged probe")
	}
	if ctl.susp {
		t.Error("suspended after a single probe")
	}
	if !tr.OnSent(tcp.SendEvent{Seq: 1460, EndSeq: 2920}) {
		t.Error("second packet should be tagged probe")
	}
	if !ctl.susp {
		t.Error("not suspended after both probes")
	}
	if tr.OnSent(tcp.SendEvent{Seq: 2920, EndSeq: 4380}) {
		t.Error("third packet must not be a probe")
	}
}

func TestNoProbeBeforeFirstSendOrRTT(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	tr.BeforeSend() // no RTT sample, never sent
	if tr.Probing() {
		t.Error("must not probe before any RTT sample")
	}
	seedRTT(tr, 200*time.Microsecond)
	ctl.hasSent = false
	tr.BeforeSend()
	if tr.Probing() {
		t.Error("must not probe before first transmission")
	}
}

func TestProbeAckTunesWindowPerEq1(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	seedRTT(tr, 200*time.Microsecond) // minRTT = 200µs
	ctl.cwnd = 100
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
	tr.OnSent(tcp.SendEvent{Seq: 1460, EndSeq: 2920})

	// Probe RTTs average 250µs: factor = 1 − (250−200)/200 = 0.75 →
	// cwnd = 100 × 0.75 = 75.
	tr.OnAck(tcp.AckEvent{Ack: 1460, AckedSegs: 1, RTT: 240 * time.Microsecond})
	if !tr.Probing() {
		t.Fatal("one probe acked, still waiting for the second")
	}
	tr.OnAck(tcp.AckEvent{Ack: 2920, AckedSegs: 1, RTT: 260 * time.Microsecond})
	if tr.Probing() {
		t.Fatal("probe exchange should be resolved")
	}
	if math.Abs(ctl.cwnd-75) > 1e-9 {
		t.Errorf("tuned cwnd = %v, want 75", ctl.cwnd)
	}
	if ctl.susp {
		t.Error("sender still suspended after tuning")
	}
}

func TestProbeAckLargeRTTClampsToMinWindow(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	ctl.cwnd = 100
	seedRTT(tr, 200*time.Microsecond)
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
	tr.OnSent(tcp.SendEvent{Seq: 1460, EndSeq: 2920})
	// probeRTT ≥ 2×minRTT → Eq. 1 non-positive → clamp to 2
	// (implementation issue 2 in Section III.C).
	tr.OnAck(tcp.AckEvent{Ack: 2920, AckedSegs: 2, RTT: 500 * time.Microsecond})
	if ctl.cwnd != 2 {
		t.Errorf("cwnd = %v, want clamp to 2", ctl.cwnd)
	}
}

func TestProbeDeadlineFallsBackToMinWindow(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	ctl.cwnd = 100
	seedRTT(tr, 200*time.Microsecond)
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
	tr.OnSent(tcp.SendEvent{Seq: 1460, EndSeq: 2920})
	if !ctl.susp {
		t.Fatal("not suspended")
	}
	// No probe ACKs arrive; the deadline (one smoothed RTT) fires.
	ctl.sched.RunUntil(sim.At(time.Second))
	if tr.Probing() {
		t.Fatal("probe exchange should have timed out")
	}
	if ctl.cwnd != 2 {
		t.Errorf("cwnd = %v, want 2 after probe deadline", ctl.cwnd)
	}
	if ctl.susp {
		t.Error("sender must resume after probe deadline")
	}
}

func TestSingleSegmentTrainProbes(t *testing.T) {
	// Section III.C: a 1-packet train is still sent as a probe and the
	// regulation of Eq. 1 applies when its ACK returns.
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	seedRTT(tr, 200*time.Microsecond)
	ctl.cwnd = 50
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	if !tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1000}) {
		t.Fatal("single packet should be a probe")
	}
	// ACK covers the only probe sent: resolve with one sample.
	tr.OnAck(tcp.AckEvent{Ack: 1000, AckedSegs: 1, RTT: 220 * time.Microsecond})
	if tr.Probing() {
		t.Fatal("probe should resolve with a single outstanding probe")
	}
	// factor = 1 − (220−200)/200 = 0.9 → 45.
	if math.Abs(ctl.cwnd-45) > 1e-9 {
		t.Errorf("cwnd = %v, want 45", ctl.cwnd)
	}
}

func TestQueueControlCutsOncePerRTT(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{K: 300 * time.Microsecond})
	tr.Attach(ctl)
	ctl.cwnd = 100
	ctl.ssthresh = 1 // congestion avoidance: growth ≈ +1/cwnd per ACK
	seedRTT(tr, 200*time.Microsecond)

	// RTT = 400µs ≥ K: ep = (400−300)/400 = 0.25 → cwnd ×= 0.875.
	before := ctl.cwnd
	tr.OnAck(tcp.AckEvent{Ack: 100, AckedSegs: 1, RTT: 400 * time.Microsecond})
	if ctl.cwnd > before*0.88 || ctl.cwnd < before*0.87 {
		t.Errorf("cwnd = %v, want ≈ %v×0.875", ctl.cwnd, before)
	}
	if tr.QueueReductions() != 1 {
		t.Fatalf("reductions = %d", tr.QueueReductions())
	}

	// A second over-K ACK within the same smoothed RTT must not cut.
	tr.OnAck(tcp.AckEvent{Ack: 200, AckedSegs: 1, RTT: 400 * time.Microsecond})
	if tr.QueueReductions() != 1 {
		t.Errorf("second cut within one RTT: reductions = %d", tr.QueueReductions())
	}

	// After one smoothed RTT elapses, the next over-K ACK cuts again.
	ctl.sched.After(time.Millisecond, func() {})
	ctl.sched.Run()
	tr.OnAck(tcp.AckEvent{Ack: 300, AckedSegs: 1, RTT: 400 * time.Microsecond})
	if tr.QueueReductions() != 2 {
		t.Errorf("reductions after an RTT = %d, want 2", tr.QueueReductions())
	}
}

func TestQueueControlRespectsK(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{K: 300 * time.Microsecond})
	tr.Attach(ctl)
	ctl.cwnd = 100
	seedRTT(tr, 200*time.Microsecond)
	tr.OnAck(tcp.AckEvent{Ack: 100, AckedSegs: 1, RTT: 250 * time.Microsecond})
	if tr.QueueReductions() != 0 {
		t.Error("RTT below K must not cut the window")
	}
}

func TestKDerivedFromLinkRate(t *testing.T) {
	ctl := newFakeCtl()
	ctl.rate = netsim.Gbps
	tr := New(Config{})
	tr.Attach(ctl)
	seedRTT(tr, 224*time.Microsecond)
	want := GuidelineKForLink(netsim.Gbps, 1500, 224*time.Microsecond)
	if tr.K() != want {
		t.Errorf("K = %v, want %v", tr.K(), want)
	}
}

func TestKFallbackWithoutLinkRate(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	seedRTT(tr, 200*time.Microsecond)
	if tr.K() != 400*time.Microsecond {
		t.Errorf("fallback K = %v, want 2×minRTT", tr.K())
	}
}

func TestAblationDisableProbing(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{DisableProbing: true})
	tr.Attach(ctl)
	seedRTT(tr, 200*time.Microsecond)
	ctl.cwnd = 100
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	if tr.Probing() {
		t.Error("probing disabled but triggered")
	}
	if ctl.cwnd != 100 {
		t.Errorf("cwnd touched: %v", ctl.cwnd)
	}
}

func TestAblationDisableQueueControl(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{K: 300 * time.Microsecond, DisableQueueControl: true})
	tr.Attach(ctl)
	ctl.cwnd = 100
	seedRTT(tr, 200*time.Microsecond)
	tr.OnAck(tcp.AckEvent{Ack: 100, AckedSegs: 1, RTT: 900 * time.Microsecond})
	if tr.QueueReductions() != 0 {
		t.Error("queue control disabled but cut anyway")
	}
}

func TestTimeoutAbandonsProbe(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	ctl.cwnd = 100
	seedRTT(tr, 200*time.Microsecond)
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460})
	tr.OnSent(tcp.SendEvent{Seq: 1460, EndSeq: 2920})
	tr.OnTimeout()
	if tr.Probing() {
		t.Error("probe state must be cleared on RTO")
	}
	if ctl.susp {
		t.Error("sender must be resumed on RTO")
	}
}

func TestRetransmitNeverTaggedProbe(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	seedRTT(tr, 200*time.Microsecond)
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	if tr.OnSent(tcp.SendEvent{Seq: 0, EndSeq: 1460, Retransmit: true}) {
		t.Error("retransmission tagged as probe")
	}
}

// --- Integration over a real network ------------------------------------

func TestTrimIntegrationAvoidsInheritedBurst(t *testing.T) {
	// ON/OFF workload over a shallow queue: Reno inherits a big window
	// and suffers timeouts; TRIM probes and completes cleanly. This is
	// the essence of the paper's Fig. 4 vs Fig. 6.
	run := func(mk func() tcp.CongestionControl) (timeouts int, cwndBeforeLPT float64, done bool) {
		sched := sim.NewScheduler()
		net := netsim.NewNetwork(sched)
		link := netsim.LinkConfig{
			Rate:  netsim.Gbps,
			Delay: 50 * time.Microsecond,
			Queue: netsim.QueueConfig{CapPackets: 40},
		}
		hs := net.AddHost("s")
		sw := net.AddSwitch("sw")
		hr := net.AddHost("r")
		net.Connect(hs, sw, link)
		net.Connect(sw, hr, link)
		conn, err := tcp.NewConn(tcp.Config{
			Sender:   tcp.NewStack(net, hs),
			Receiver: tcp.NewStack(net, hr),
			Flow:     1,
			CC:       mk(),
			LinkRate: netsim.Gbps,
			MinRTO:   10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		// 300 small responses, 1 ms apart: grows cwnd far beyond the
		// 40-packet queue without ever congesting.
		for i := 0; i < 300; i++ {
			at := sim.At(time.Duration(i) * time.Millisecond)
			if _, err := sched.At(at, func() { conn.SendTrain(4*tcp.DefaultMSS, nil) }); err != nil {
				t.Fatal(err)
			}
		}
		// Then one long train after an idle gap.
		if _, err := sched.At(sim.At(400*time.Millisecond), func() {
			cwndBeforeLPT = conn.Cwnd()
			conn.SendTrain(300*tcp.DefaultMSS, func(tcp.TrainResult) { done = true })
		}); err != nil {
			t.Fatal(err)
		}
		sched.RunUntil(sim.At(3 * time.Second))
		return conn.Stats().Timeouts, cwndBeforeLPT, done
	}

	renoTO, renoCwnd, renoDone := run(func() tcp.CongestionControl { return tcp.NewReno() })
	trimTO, trimCwnd, trimDone := run(func() tcp.CongestionControl { return New(Config{}) })

	if !renoDone || !trimDone {
		t.Fatalf("transfers incomplete: reno=%v trim=%v", renoDone, trimDone)
	}
	if renoCwnd < 100 {
		t.Errorf("Reno inherited cwnd = %v, expected large accumulated window", renoCwnd)
	}
	if renoTO == 0 {
		t.Errorf("Reno should suffer timeouts from the inherited burst (cwnd=%v)", renoCwnd)
	}
	if trimTO != 0 {
		t.Errorf("TRIM suffered %d timeouts, want 0", trimTO)
	}
	_ = trimCwnd
}

func TestTrimProbeRoundsCounted(t *testing.T) {
	ctl := newFakeCtl()
	tr := New(Config{})
	tr.Attach(ctl)
	seedRTT(tr, 200*time.Microsecond)
	ctl.hasSent, ctl.gap = true, 5*time.Millisecond
	tr.BeforeSend()
	if tr.ProbeRounds() != 1 {
		t.Errorf("ProbeRounds = %d", tr.ProbeRounds())
	}
	// Re-entry while probing must not start another round.
	tr.BeforeSend()
	if tr.ProbeRounds() != 1 {
		t.Errorf("ProbeRounds after re-entry = %d", tr.ProbeRounds())
	}
}
