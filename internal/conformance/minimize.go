package conformance

import (
	"time"

	"tcptrim/internal/netsim"
)

// Minimize shrinks a failing scenario to a (locally) minimal one that
// still fails, using greedy delta-debugging: faults are stripped, the
// train schedule is chunk-reduced, train sizes and gaps are shrunk, and
// optional connection features are turned off — keeping each
// simplification only if the scenario still fails. fails reports
// whether a candidate scenario still reproduces the divergence (it is
// called many times; scenarios are pure values, so each call is an
// independent deterministic run).
//
// The returned scenario is what a regression test should pin: small
// enough to read, still failing on the code under investigation.
func Minimize(sc Scenario, fails func(Scenario) bool) Scenario {
	if !fails(sc) {
		return sc // not failing: nothing to minimize
	}
	best := sc

	try := func(cand Scenario) bool {
		cand.normalizeHorizon()
		if fails(cand) {
			best = cand
			return true
		}
		return false
	}

	// Pass 1: strip whole features. Order matters only for greed; each
	// removal is retried after later passes shrink the trains.
	for changed := true; changed; {
		changed = false
		if best.Loss.Enabled() {
			cand := best
			cand.Loss = netsim.GEConfig{}
			changed = try(cand) || changed
		}
		if best.ReorderProb > 0 {
			cand := best
			cand.ReorderProb, cand.ReorderExtra = 0, 0
			changed = try(cand) || changed
		}
		if best.DupProb > 0 {
			cand := best
			cand.DupProb = 0
			changed = try(cand) || changed
		}
		if best.Jitter > 0 {
			cand := best
			cand.Jitter = 0
			changed = try(cand) || changed
		}
		if len(best.CrossTrains) > 0 {
			cand := best
			cand.CrossTrains = nil
			changed = try(cand) || changed
		}
		if best.SACK {
			cand := best
			cand.SACK = false
			changed = try(cand) || changed
		}
		if best.DelayedAck > 0 {
			cand := best
			cand.DelayedAck = 0
			changed = try(cand) || changed
		}

		// Pass 2: ddmin over the train list — drop progressively
		// smaller chunks while the failure survives.
		for chunk := len(best.Trains) / 2; chunk >= 1; chunk /= 2 {
			for at := 0; at+chunk <= len(best.Trains); {
				cand := best
				cand.Trains = append(append([]Train(nil), best.Trains[:at]...), best.Trains[at+chunk:]...)
				if len(cand.Trains) > 0 && try(cand) {
					changed = true
					continue // same offset now holds the next chunk
				}
				at += chunk
			}
		}

		// Pass 3: shrink each surviving train to one segment and close
		// up long gaps, one train at a time.
		for i := range best.Trains {
			if best.Trains[i].Bytes > 1460 {
				cand := best
				cand.Trains = append([]Train(nil), best.Trains...)
				cand.Trains[i].Bytes = 1460
				changed = try(cand) || changed
			}
		}
		for i := 1; i < len(best.Trains); i++ {
			gap := best.Trains[i].Start - best.Trains[i-1].Start
			if gap > 2*time.Millisecond {
				cand := best
				cand.Trains = append([]Train(nil), best.Trains...)
				delta := gap - 2*time.Millisecond
				for j := i; j < len(cand.Trains); j++ {
					cand.Trains[j].Start -= delta
				}
				changed = try(cand) || changed
			}
		}
	}
	return best
}

// normalizeHorizon keeps the run window tight after train reduction.
func (sc *Scenario) normalizeHorizon() {
	last := time.Duration(0)
	for _, t := range sc.Trains {
		if t.Start > last {
			last = t.Start
		}
	}
	for _, t := range sc.CrossTrains {
		if t.Start > last {
			last = t.Start
		}
	}
	sc.Horizon = last + 500*time.Millisecond
}

// MinimizeFailing is Minimize with the standard oracle check: a
// scenario "fails" when the shadow records any divergence.
func MinimizeFailing(sc Scenario) Scenario {
	return Minimize(sc, func(cand Scenario) bool {
		res, err := RunScenario(cand)
		return err == nil && res.Total > 0
	})
}
