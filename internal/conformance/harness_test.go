package conformance

import (
	"testing"
	"time"

	"tcptrim/internal/core"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// harness is a scripted stand-in for the sending connection: it
// implements tcp.Control with the sender's exact clamp semantics and
// drives the Shadow through arbitrary hook sequences — including ones a
// real network run would rarely reach (partial probe coverage,
// timeouts mid-exchange, RTT-less ACKs) — without a simulator topology.
type harness struct {
	t     *testing.T
	sched *sim.Scheduler
	sh    *Shadow

	cwnd      float64
	ssthresh  float64
	minCwnd   float64
	flight    int
	sndUna    int64
	sndNxt    int64
	suspended bool
	bonus     int
	hasSent   bool
	lastSend  sim.Time
	rate      netsim.Bitrate
}

var _ tcp.Control = (*harness)(nil)

const harnessMSS = 1460

func newHarness(t *testing.T, cfg core.Config) *harness {
	h := &harness{
		t:        t,
		sched:    sim.NewScheduler(),
		cwnd:     10,
		ssthresh: 1 << 30,
		minCwnd:  2,
		rate:     netsim.Gbps,
	}
	h.sh = NewShadow(cfg)
	h.sh.Attach(h)
	return h
}

func (h *harness) Now() sim.Time { return h.sched.Now() }
func (h *harness) After(d time.Duration, fn func()) sim.Timer {
	return h.sched.After(d, fn)
}
func (h *harness) Cwnd() float64 { return h.cwnd }
func (h *harness) SetCwnd(w float64) {
	// Conn.SetCwnd's clamp, replicated exactly.
	if w < h.minCwnd {
		w = h.minCwnd
	}
	if w > 1<<30 {
		w = 1 << 30
	}
	h.cwnd = w
}
func (h *harness) Ssthresh() float64 { return h.ssthresh }
func (h *harness) SetSsthresh(w float64) {
	if w < h.minCwnd {
		w = h.minCwnd
	}
	h.ssthresh = w
}
func (h *harness) MinCwnd() float64 { return h.minCwnd }
func (h *harness) FlightSegs() int  { return h.flight }
func (h *harness) SRTT() time.Duration {
	return 0 // unused by the policy under test
}
func (h *harness) SinceLastSend() (time.Duration, bool) {
	if !h.hasSent {
		return 0, false
	}
	return h.sched.Now().Sub(h.lastSend), true
}
func (h *harness) Suspend() { h.suspended = true }
func (h *harness) Resume()  { h.suspended = false }
func (h *harness) AllowBeyondWindow(n int) {
	if n < 0 {
		n = 0
	}
	h.bonus = n
}
func (h *harness) LinkRate() netsim.Bitrate { return h.rate }
func (h *harness) WirePacketSize() int      { return harnessMSS + netsim.HeaderSize }

// send attempts one new-data segment with the sender's gating order:
// BeforeSend, suspension re-check, window check (bonus included).
func (h *harness) send() bool {
	if h.suspended {
		return false
	}
	h.sh.BeforeSend()
	if h.suspended {
		return false
	}
	fits := float64(h.flight+1) <= h.cwnd+1e-9
	if !fits && h.bonus == 0 {
		return false
	}
	seq := h.sndNxt
	h.sndNxt += harnessMSS
	h.flight++
	var gap time.Duration
	if h.hasSent {
		gap = h.sched.Now().Sub(h.lastSend)
	}
	h.sh.OnSent(tcp.SendEvent{Seq: seq, EndSeq: h.sndNxt, Gap: gap})
	h.hasSent = true
	h.lastSend = h.sched.Now()
	if !fits && h.bonus > 0 {
		h.bonus--
	}
	return true
}

// retransmit re-sends the first unacked segment (no window gate, like
// the sender's loss-recovery paths).
func (h *harness) retransmit() {
	if h.sndUna == h.sndNxt {
		return
	}
	h.sh.OnSent(tcp.SendEvent{Seq: h.sndUna, EndSeq: h.sndUna + harnessMSS, Retransmit: true})
}

// ack advances the cumulative ACK over segs segments with the given
// RTT sample (0 = no sample, as after a retransmission ambiguity).
func (h *harness) ack(segs int, rtt time.Duration, inRecovery bool) {
	if segs > h.flight {
		segs = h.flight
	}
	if segs <= 0 {
		return
	}
	h.sndUna += int64(segs) * harnessMSS
	h.flight -= segs
	h.sh.OnAck(tcp.AckEvent{
		Ack:        h.sndUna,
		AckedBytes: int64(segs) * harnessMSS,
		AckedSegs:  segs,
		RTT:        rtt,
		InRecovery: inRecovery,
	})
}

// timeout replays the sender's RTO sequence: ssthresh from the policy,
// window to the floor, grants revoked, go-back-N, then the hook.
func (h *harness) timeout() {
	h.SetSsthresh(h.sh.SsthreshAfterLoss())
	h.SetCwnd(h.minCwnd)
	h.bonus = 0
	h.sndNxt = h.sndUna
	h.flight = 0
	h.sh.OnTimeout()
}

// advance moves simulated time forward, firing any armed deadline.
func (h *harness) advance(d time.Duration) {
	h.sched.RunUntil(h.sched.Now().Add(d))
}

// check fails the test on any recorded divergence.
func (h *harness) check() {
	h.t.Helper()
	for _, d := range h.sh.Divergences() {
		h.t.Errorf("divergence: %s", d)
	}
	if h.sh.Total() > len(h.sh.Divergences()) {
		h.t.Errorf("%d divergences in total", h.sh.Total())
	}
}

// --- deterministic lockstep tests ---------------------------------------

// TestLockstepProbeCycle walks a full probe exchange — idle gap, two
// probes, suspension, both ACKs — checking live-vs-oracle at each hook.
func TestLockstepProbeCycle(t *testing.T) {
	h := newHarness(t, core.Config{})
	// Grow an initial window with a first train.
	for i := 0; i < 4; i++ {
		h.send()
	}
	h.advance(100 * time.Microsecond)
	h.ack(4, 100*time.Microsecond, false)
	// Idle beyond the smoothed RTT, then a new train probes.
	h.advance(2 * time.Millisecond)
	if !h.send() || !h.send() {
		t.Fatal("probe packets refused")
	}
	if !h.sh.Live().Probing() || !h.suspended {
		t.Fatalf("probing=%v suspended=%v after two probes", h.sh.Live().Probing(), h.suspended)
	}
	if h.send() {
		t.Fatal("send while suspended")
	}
	h.advance(120 * time.Microsecond)
	h.ack(2, 120*time.Microsecond, false)
	if h.sh.Live().Probing() || h.suspended {
		t.Fatal("exchange did not resolve on the second probe ACK")
	}
	h.check()
}

// TestLockstepPartialProbeAck covers one probe ACKed and the deadline
// collecting the other.
func TestLockstepPartialProbeAck(t *testing.T) {
	h := newHarness(t, core.Config{})
	for i := 0; i < 4; i++ {
		h.send()
	}
	h.ack(4, 150*time.Microsecond, false)
	h.advance(3 * time.Millisecond)
	h.send()
	h.send()
	h.ack(1, 150*time.Microsecond, false) // only the first probe returns
	if !h.sh.Live().Probing() {
		t.Fatal("exchange resolved with a probe outstanding")
	}
	h.advance(5 * time.Millisecond) // deadline fires
	if h.sh.Live().Probing() || h.sh.Live().ProbeTimeouts() != 1 {
		t.Fatalf("probing=%v timeouts=%d after deadline", h.sh.Live().Probing(), h.sh.Live().ProbeTimeouts())
	}
	h.check()
}

// TestLockstepTimeoutMidProbe covers an RTO while suspended with both
// probes outstanding.
func TestLockstepTimeoutMidProbe(t *testing.T) {
	h := newHarness(t, core.Config{})
	for i := 0; i < 4; i++ {
		h.send()
	}
	h.ack(4, 150*time.Microsecond, false)
	h.advance(3 * time.Millisecond)
	h.send()
	h.send()
	h.timeout()
	if h.sh.Live().Probing() || h.suspended || h.bonus != 0 {
		t.Fatalf("probing=%v suspended=%v bonus=%d after RTO", h.sh.Live().Probing(), h.suspended, h.bonus)
	}
	h.check()
}

// TestTamperedOracleDetected proves the lockstep comparison is not
// vacuous: a one-percent tampering of the oracle's alpha must diverge.
func TestTamperedOracleDetected(t *testing.T) {
	divs := 0
	for seed := int64(1); seed <= 20; seed++ {
		sc := GenScenario(seed)
		sh := NewShadow(sc.Cfg)
		sh.oracle.cfg.Alpha += 0.01
		res, err := runScenarioWith(sc, sh)
		if err != nil {
			t.Fatal(err)
		}
		divs += res.Total
	}
	if divs == 0 {
		t.Fatal("tampered oracle produced zero divergences — the checker is vacuous")
	}
}

// FuzzShadowHookStream feeds arbitrary hook sequences — sends, ACKs
// with arbitrary RTTs (including none), retransmissions, RTOs, and time
// jumps — through the live policy and the Oracle in lockstep. Any
// divergence is a conformance bug.
func FuzzShadowHookStream(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 40, 1, 4, 60, 0, 0, 90, 1, 2, 50})
	f.Add([]byte{0, 0, 90, 1, 4, 120, 0, 0, 3, 90})
	f.Add([]byte{0, 0, 0, 0, 40, 1, 4, 60, 90, 0, 0, 2, 90, 1, 2, 50})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		// Vary the deviation knobs from the stream's first byte so the
		// paper-literal deadline is fuzzed too.
		cfg := core.Config{}
		if len(ops) > 0 {
			cfg.ProbeDeadlineFactor = []float64{0, 1, 2, 3}[ops[0]%4]
			if ops[0]%5 == 0 {
				cfg.BaseRTT = 200 * time.Microsecond
			}
		}
		h := newHarness(t, cfg)
		for i := 0; i < len(ops); i++ {
			op := ops[i]
			arg := func() int {
				i++
				if i < len(ops) {
					return int(ops[i])
				}
				return 1
			}
			switch op % 6 {
			case 0: // send one segment
				h.send()
			case 1: // cumulative ACK: segs then rtt (µs; 0 = no sample)
				segs := arg()%8 + 1
				rtt := time.Duration(arg()*7) * time.Microsecond
				h.ack(segs, rtt, false)
			case 2: // ACK during fast recovery
				h.ack(arg()%4+1, time.Duration(arg()*11)*time.Microsecond, true)
			case 3: // retransmission
				h.retransmit()
			case 4: // dup ACK
				h.sh.OnDupAck()
			case 5: // time advance (µs, quadratic to reach deadlines)
				n := arg()
				h.advance(time.Duration(n*n) * time.Microsecond)
			}
		}
		// Drain any armed deadline, then settle.
		h.advance(time.Second)
		h.timeout()
		h.check()
	})
}
