package conformance

import (
	"fmt"
	"strings"
	"time"

	"tcptrim/internal/core"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// Divergence is one disagreement between the live policy and the
// Oracle: a field (window write, control call, counter, RTT estimator,
// probe flag, ...) where the two computed different values for the same
// hook invocation.
type Divergence struct {
	// Hook names the hook invocation that diverged (with its event).
	Hook string
	// At is the simulation time of the hook.
	At sim.Time
	// Field names what disagreed.
	Field string
	// Live and Oracle are the two values, formatted.
	Live, Oracle string
	// Trace holds the most recent hook invocations up to the
	// divergence, oldest first — the minimized context for a report.
	Trace []string
}

func (d Divergence) String() string {
	return fmt.Sprintf("%v %s: %s: live=%s oracle=%s", d.At, d.Hook, d.Field, d.Live, d.Oracle)
}

const (
	traceLen = 48 // hook invocations kept for divergence context
	maxDivs  = 16 // detailed divergences kept (total is still counted)
)

// Shadow is a tcp.CongestionControl that runs the live core.Trim and
// the reference Oracle in lockstep: every hook is first evaluated by
// the Oracle on a snapshot of the live connection's state, then
// executed by the live policy through an interposed tcp.Control that
// records the calls it actually makes, and the two are compared. It is
// transparent — the live policy's outputs always drive the connection,
// so a shadowed connection behaves identically to an unshadowed one.
type Shadow struct {
	live   *core.Trim
	oracle *Oracle
	inner  tcp.Control

	frames []*frame
	divs   []Divergence
	total  int

	trace  [traceLen]string
	traceN int

	// Run-wide invariants checked by Finish.
	liveSuspends int
	liveResumes  int
	lastGrant    int // -1 until the first AllowBeyondWindow call
}

var _ tcp.CongestionControl = (*Shadow)(nil)

// frame is one in-flight hook invocation; nested hooks (Resume →
// trySend → BeforeSend/OnSent) push their own frames so recorded calls
// are attributed to the hook that made them.
type frame struct {
	hook string
	at   sim.Time
	got  Calls
}

// NewShadow builds a shadowed TRIM policy for cfg. Use it anywhere a
// tcp.CongestionControl is accepted.
func NewShadow(cfg core.Config) *Shadow {
	return &Shadow{
		live:      core.New(cfg),
		oracle:    NewOracle(cfg),
		lastGrant: -1,
	}
}

// Live exposes the shadowed policy (for its accessors).
func (s *Shadow) Live() *core.Trim { return s.live }

// Divergences returns the recorded divergences (capped at maxDivs;
// Total reports how many occurred in all).
func (s *Shadow) Divergences() []Divergence { return s.divs }

// Total returns the total number of divergences observed.
func (s *Shadow) Total() int { return s.total }

// --- tcp.CongestionControl ---------------------------------------------

// Name implements tcp.CongestionControl, delegating to the live policy
// so stats and captions are unchanged by shadowing.
func (s *Shadow) Name() string { return s.live.Name() }

// Attach implements tcp.CongestionControl: the live policy is attached
// through the recording interposer.
func (s *Shadow) Attach(ctl tcp.Control) {
	s.inner = ctl
	f := s.begin("Attach")
	s.oracle.BeginHook(s.snap())
	s.oracle.Attach()
	want := s.oracle.C.clone()
	s.live.Attach(&shadowCtl{Control: ctl, s: s})
	s.finish(f, want)
}

// BeforeSend implements tcp.CongestionControl.
func (s *Shadow) BeforeSend() {
	f := s.begin("BeforeSend")
	s.oracle.BeginHook(s.snap())
	s.oracle.BeforeSend()
	want := s.oracle.C.clone()
	s.live.BeforeSend()
	s.finish(f, want)
}

// OnSent implements tcp.CongestionControl.
func (s *Shadow) OnSent(ev tcp.SendEvent) bool {
	f := s.begin(fmt.Sprintf("OnSent seq=%d end=%d rtx=%v", ev.Seq, ev.EndSeq, ev.Retransmit))
	s.oracle.BeginHook(s.snap())
	wantProbe := s.oracle.OnSent(ev)
	want := s.oracle.C.clone()
	probe := s.live.OnSent(ev)
	if probe != wantProbe {
		s.diverge(f, "probe tag", fmt.Sprint(probe), fmt.Sprint(wantProbe))
	}
	s.finish(f, want)
	return probe
}

// OnAck implements tcp.CongestionControl.
func (s *Shadow) OnAck(ev tcp.AckEvent) {
	f := s.begin(fmt.Sprintf("OnAck ack=%d segs=%d rtt=%v rec=%v", ev.Ack, ev.AckedSegs, ev.RTT, ev.InRecovery))
	s.oracle.BeginHook(s.snap())
	s.oracle.OnAck(ev)
	want := s.oracle.C.clone()
	s.live.OnAck(ev)
	s.finish(f, want)
}

// OnDupAck implements tcp.CongestionControl.
func (s *Shadow) OnDupAck() {
	f := s.begin("OnDupAck")
	s.oracle.BeginHook(s.snap())
	want := s.oracle.C.clone() // the paper's policy ignores dup ACKs
	s.live.OnDupAck()
	s.finish(f, want)
}

// SsthreshAfterLoss implements tcp.CongestionControl: both sides
// compute the back-off target from the same snapshot; the live value is
// returned either way.
func (s *Shadow) SsthreshAfterLoss() float64 {
	f := s.begin("SsthreshAfterLoss")
	s.oracle.BeginHook(s.snap())
	wantW := s.oracle.SsthreshAfterLoss()
	want := s.oracle.C.clone()
	w := s.live.SsthreshAfterLoss()
	if w != wantW {
		s.diverge(f, "loss ssthresh", formatF(w), formatF(wantW))
	}
	s.finish(f, want)
	return w
}

// OnTimeout implements tcp.CongestionControl.
func (s *Shadow) OnTimeout() {
	f := s.begin("OnTimeout")
	s.oracle.BeginHook(s.snap())
	s.oracle.OnTimeout()
	want := s.oracle.C.clone()
	s.live.OnTimeout()
	s.finish(f, want)
}

// --- lockstep machinery ------------------------------------------------

// snap captures the live connection's observable state before a hook.
func (s *Shadow) snap() Snapshot {
	gap, hasSent := s.inner.SinceLastSend()
	return Snapshot{
		Now:            s.inner.Now(),
		Cwnd:           s.inner.Cwnd(),
		Ssthresh:       s.inner.Ssthresh(),
		MinCwnd:        s.inner.MinCwnd(),
		FlightSegs:     s.inner.FlightSegs(),
		Gap:            gap,
		HasSent:        hasSent,
		LinkRate:       s.inner.LinkRate(),
		WirePacketSize: s.inner.WirePacketSize(),
	}
}

func (s *Shadow) begin(hook string) *frame {
	f := &frame{hook: hook, at: s.inner.Now()}
	s.frames = append(s.frames, f)
	s.trace[s.traceN%traceLen] = fmt.Sprintf("%v %s", f.at, hook)
	s.traceN++
	return f
}

// finish pops the hook's frame, compares the recorded live calls with
// the expectation, and then compares the paper-visible policy state.
func (s *Shadow) finish(f *frame, want Calls) {
	s.frames = s.frames[:len(s.frames)-1]
	s.compareCalls(f, f.got, want)
	s.compareState(f)
}

func (s *Shadow) compareCalls(f *frame, got, want Calls) {
	if got.Suspends != want.Suspends {
		s.diverge(f, "Suspend calls", fmt.Sprint(got.Suspends), fmt.Sprint(want.Suspends))
	}
	if got.Resumes != want.Resumes {
		s.diverge(f, "Resume calls", fmt.Sprint(got.Resumes), fmt.Sprint(want.Resumes))
	}
	if !intsEqual(got.Grants, want.Grants) {
		s.diverge(f, "AllowBeyondWindow grants", fmt.Sprint(got.Grants), fmt.Sprint(want.Grants))
	}
	if !durationsEqual(got.Deadlines, want.Deadlines) {
		s.diverge(f, "probe deadlines", fmt.Sprint(got.Deadlines), fmt.Sprint(want.Deadlines))
	}
	if !floatsEqual(got.CwndSets, want.CwndSets) {
		s.diverge(f, "cwnd writes", formatFs(got.CwndSets), formatFs(want.CwndSets))
	}
	if !floatsEqual(got.SsthreshSets, want.SsthreshSets) {
		s.diverge(f, "ssthresh writes", formatFs(got.SsthreshSets), formatFs(want.SsthreshSets))
	}
}

// compareState checks the policy-internal state the paper defines:
// the RTT estimators, the threshold K, and the probe accounting.
func (s *Shadow) compareState(f *frame) {
	o := s.oracle
	if got, want := s.live.SmoothRTT(), o.SmoothRTT; got != want {
		s.diverge(f, "smoothed RTT", got.String(), want.String())
	}
	if got, want := s.live.MinRTT(), o.MinRTT; got != want {
		s.diverge(f, "min RTT", got.String(), want.String())
	}
	if got, want := s.live.K(), o.K; got != want {
		s.diverge(f, "K", got.String(), want.String())
	}
	if got, want := s.live.Probing(), o.Probing; got != want {
		s.diverge(f, "probing flag", fmt.Sprint(got), fmt.Sprint(want))
	}
	if got, want := s.live.ProbeRounds(), o.ProbeRounds; got != want {
		s.diverge(f, "probe rounds", fmt.Sprint(got), fmt.Sprint(want))
	}
	if got, want := s.live.ProbeTimeouts(), o.ProbeTimeouts; got != want {
		s.diverge(f, "probe timeouts", fmt.Sprint(got), fmt.Sprint(want))
	}
	if got, want := s.live.QueueReductions(), o.QueueReductions; got != want {
		s.diverge(f, "queue reductions", fmt.Sprint(got), fmt.Sprint(want))
	}
}

// onDeadlineFire runs when the live probe-deadline timer fires: the
// Oracle's deadline transition runs first on a fresh snapshot, then the
// live callback, then the two are compared like any other hook.
func (s *Shadow) onDeadlineFire(fn func()) {
	f := s.begin("ProbeDeadline")
	if !s.oracle.DeadlineArmed {
		// The live policy let a stale timer survive a probe resolution.
		s.diverge(f, "deadline fire", "fired", "disarmed")
	}
	s.oracle.BeginHook(s.snap())
	s.oracle.OnProbeDeadline()
	want := s.oracle.C.clone()
	fn()
	s.finish(f, want)
}

// diverge records one divergence against the given frame.
func (s *Shadow) diverge(f *frame, field, live, oracle string) {
	s.total++
	if len(s.divs) >= maxDivs {
		return
	}
	s.divs = append(s.divs, Divergence{
		Hook:   f.hook,
		At:     f.at,
		Field:  field,
		Live:   live,
		Oracle: oracle,
		Trace:  s.traceTail(),
	})
}

// traceTail copies the hook-invocation ring, oldest first.
func (s *Shadow) traceTail() []string {
	n := s.traceN
	if n > traceLen {
		n = traceLen
	}
	out := make([]string, 0, n)
	for i := s.traceN - n; i < s.traceN; i++ {
		out = append(out, s.trace[i%traceLen])
	}
	return out
}

// Finish runs the end-of-run invariants and returns every recorded
// divergence. Call it after the simulation horizon:
//   - Suspend/Resume pairing: outside a probe exchange the sender must
//     not be left suspended (every Suspend answered by a Resume);
//   - grant revocation: outside a probe exchange the last
//     AllowBeyondWindow call must have been the revoking zero.
func (s *Shadow) Finish() []Divergence {
	f := &frame{hook: "Finish", at: s.inner.Now()}
	if !s.live.Probing() {
		if s.liveSuspends > s.liveResumes {
			s.diverge(f, "suspend/resume pairing",
				fmt.Sprintf("%d suspends, %d resumes", s.liveSuspends, s.liveResumes),
				"suspends ≤ resumes when idle")
		}
		if s.lastGrant > 0 {
			s.diverge(f, "beyond-window grant revocation",
				fmt.Sprintf("last grant %d", s.lastGrant), "0")
		}
	}
	return s.divs
}

// shadowCtl interposes the live policy's tcp.Control: reads pass
// through untouched; the write calls the conformance contract cares
// about are recorded against the current hook frame before delegating.
type shadowCtl struct {
	tcp.Control
	s *Shadow
}

func (c *shadowCtl) top() *frame {
	if n := len(c.s.frames); n > 0 {
		return c.s.frames[n-1]
	}
	return nil
}

func (c *shadowCtl) SetCwnd(w float64) {
	if f := c.top(); f != nil {
		f.got.CwndSets = append(f.got.CwndSets, w)
	}
	c.Control.SetCwnd(w)
}

func (c *shadowCtl) SetSsthresh(w float64) {
	if f := c.top(); f != nil {
		f.got.SsthreshSets = append(f.got.SsthreshSets, w)
	}
	c.Control.SetSsthresh(w)
}

func (c *shadowCtl) Suspend() {
	c.s.liveSuspends++
	if f := c.top(); f != nil {
		f.got.Suspends++
	}
	c.Control.Suspend()
}

func (c *shadowCtl) Resume() {
	c.s.liveResumes++
	if f := c.top(); f != nil {
		f.got.Resumes++
	}
	c.Control.Resume()
}

func (c *shadowCtl) AllowBeyondWindow(n int) {
	c.s.lastGrant = n
	if f := c.top(); f != nil {
		f.got.Grants = append(f.got.Grants, n)
	}
	c.Control.AllowBeyondWindow(n)
}

// After wraps the policy's only timer — the probe deadline — so its
// firing runs through the lockstep comparison too.
func (c *shadowCtl) After(d time.Duration, fn func()) sim.Timer {
	if f := c.top(); f != nil {
		f.got.Deadlines = append(f.got.Deadlines, d)
	}
	return c.Control.After(d, func() { c.s.onDeadlineFire(fn) })
}

// --- comparison helpers -------------------------------------------------

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func durationsEqual(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// floatsEqual compares window-write sequences exactly: the Oracle
// replicates the live arithmetic operation-for-operation, so even the
// float results must agree bit-for-bit.
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func formatF(v float64) string { return fmt.Sprintf("%.9g", v) }

func formatFs(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = formatF(v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
