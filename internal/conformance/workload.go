package conformance

import (
	"fmt"
	"math/rand"
	"time"

	"tcptrim/internal/core"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// Train is one application burst: Bytes released at Start.
type Train struct {
	Bytes int
	Start time.Duration
}

// Scenario is a fully-specified conformance workload: a shadowed TRIM
// connection driving randomized ON/OFF packet trains across a
// fault-injected bottleneck, optionally against Reno cross-traffic. A
// Scenario is a pure value — running it is deterministic, so a failing
// seed replays byte-identically and shrinks cleanly.
type Scenario struct {
	Seed int64

	// Topology: sender — switch — receiver, all links identical.
	Rate   netsim.Bitrate
	Delay  time.Duration
	Queue  int
	MinRTO time.Duration

	// Connection options.
	SACK       bool
	DelayedAck time.Duration

	// Cfg is the TRIM configuration under test (deviation knobs
	// included, so declared deviations are exercised at every setting).
	Cfg core.Config

	// Trains drive the shadowed connection.
	Trains []Train
	// CrossTrains drive one Reno connection sharing the bottleneck,
	// building real queues (and hence RTT ≥ K episodes and losses).
	CrossTrains []Train

	// Fault injection on the bottleneck (forward data / reverse ACKs).
	Loss         netsim.GEConfig
	ReorderProb  float64
	ReorderExtra time.Duration
	DupProb      float64
	Jitter       time.Duration

	Horizon time.Duration

	// Shards > 1 runs the scenario on a sharded PDES group (senders on
	// their own shards, the faulted bottleneck and receiver on shard 0).
	// The shadow executor sees the identical event order either way, so
	// divergence results are shard-count independent. GenScenario leaves
	// it zero; sweeps set it to prove sharding under the oracle.
	Shards int
}

// Describe summarizes the scenario for reports.
func (sc Scenario) Describe() string {
	faults := ""
	if sc.Loss.Enabled() {
		faults += "L"
	}
	if sc.ReorderProb > 0 {
		faults += "R"
	}
	if sc.DupProb > 0 {
		faults += "D"
	}
	if sc.Jitter > 0 {
		faults += "J"
	}
	if faults == "" {
		faults = "-"
	}
	return fmt.Sprintf("trains=%d cross=%d faults=%s sack=%v dack=%v pdf=%g",
		len(sc.Trains), len(sc.CrossTrains), faults, sc.SACK, sc.DelayedAck > 0,
		sc.Cfg.WithDefaults().ProbeDeadlineFactor)
}

// GenScenario draws a random scenario from the seed. Every draw is a
// pure function of the seed (sim.NewRand), so the same seed always
// yields the same scenario.
func GenScenario(seed int64) Scenario {
	rng := sim.NewRand(seed)
	sc := Scenario{Seed: seed}

	rates := []netsim.Bitrate{netsim.Gbps, 100 * netsim.Mbps, 10 * netsim.Gbps}
	sc.Rate = rates[rng.Intn(len(rates))]
	sc.Delay = 20*time.Microsecond + time.Duration(rng.Intn(180))*time.Microsecond
	sc.Queue = 10 + rng.Intn(90)
	sc.MinRTO = time.Duration(5+rng.Intn(20)) * time.Millisecond
	sc.SACK = rng.Intn(2) == 1
	if rng.Intn(3) == 0 {
		sc.DelayedAck = 200 * time.Microsecond
	}

	// Deviation knobs: exercise the default, the paper-literal deadline,
	// and a loose one; occasionally a configured D, a fixed K, a
	// non-default alpha, and the two ablations.
	factors := []float64{0, 0, 1, 2, 3}
	sc.Cfg.ProbeDeadlineFactor = factors[rng.Intn(len(factors))]
	if rng.Intn(4) == 0 {
		sc.Cfg.BaseRTT = 4 * sc.Delay // the topology's queue-free RTT
	}
	if rng.Intn(8) == 0 {
		sc.Cfg.K = time.Duration(200+rng.Intn(800)) * time.Microsecond
	}
	alphas := []float64{0, 0, 0, 0.125, 0.5}
	sc.Cfg.Alpha = alphas[rng.Intn(len(alphas))]
	if rng.Intn(10) == 0 {
		sc.Cfg.DisableProbing = true
	}
	if rng.Intn(10) == 0 {
		sc.Cfg.DisableQueueControl = true
	}

	sc.Trains = genTrains(rng, 3+rng.Intn(14))
	for i := 0; i < rng.Intn(3); i++ {
		sc.CrossTrains = append(sc.CrossTrains, genTrains(rng, 2+rng.Intn(6))...)
	}

	// Fault layer: bursty loss, reordering, duplication, jitter — each
	// armed independently so scenarios cover the full cross product.
	if rng.Intn(2) == 0 {
		sc.Loss = netsim.GEConfig{
			PGoodBad: 0.005 + 0.015*rng.Float64(),
			PBadGood: 0.1 + 0.4*rng.Float64(),
			LossBad:  0.3 + 0.7*rng.Float64(),
		}
	}
	if rng.Intn(3) == 0 {
		sc.ReorderProb = 0.01 + 0.04*rng.Float64()
		sc.ReorderExtra = time.Duration(50+rng.Intn(150)) * time.Microsecond
	}
	if rng.Intn(3) == 0 {
		sc.DupProb = 0.005 + 0.015*rng.Float64()
	}
	if rng.Intn(3) == 0 {
		sc.Jitter = time.Duration(20+rng.Intn(130)) * time.Microsecond
	}

	last := time.Duration(0)
	for _, t := range sc.Trains {
		if t.Start > last {
			last = t.Start
		}
	}
	sc.Horizon = last + 500*time.Millisecond
	return sc
}

// genTrains draws an ON/OFF train schedule: sizes mix single-segment,
// small, and large trains; gaps mix sub-RTT spacing (no probe) with
// multi-millisecond idle periods (probe rounds).
func genTrains(rng *rand.Rand, n int) []Train {
	trains := make([]Train, 0, n)
	start := time.Duration(rng.Intn(1000)) * time.Microsecond
	for i := 0; i < n; i++ {
		var segs int
		switch r := rng.Intn(10); {
		case r < 2:
			segs = 1
		case r < 8:
			segs = 2 + rng.Intn(29)
		default:
			segs = 50 + rng.Intn(151)
		}
		bytes := segs*tcp.DefaultMSS - rng.Intn(tcp.DefaultMSS/2)
		trains = append(trains, Train{Bytes: bytes, Start: start})
		if rng.Intn(2) == 0 {
			start += time.Duration(rng.Intn(300)) * time.Microsecond
		} else {
			start += 500*time.Microsecond + time.Duration(rng.Intn(4500))*time.Microsecond
		}
	}
	return trains
}

// Result is one scenario run's outcome.
type Result struct {
	Divergences []Divergence
	// Total counts every divergence (Divergences is capped).
	Total int
	// Activity counters prove the run exercised the machinery.
	Hooks           int
	ProbeRounds     int
	ProbeTimeouts   int
	QueueReductions int
	Timeouts        int
	TrainsDone      int
}

// RunScenario executes the scenario with the live policy shadowed by
// the Oracle and returns every divergence found.
func RunScenario(sc Scenario) (*Result, error) {
	return runScenarioWith(sc, NewShadow(sc.Cfg))
}

// runScenarioWith runs the scenario with a caller-supplied shadow
// (tests use it to prove a tampered oracle is detected).
func runScenarioWith(sc Scenario, shadow *Shadow) (*Result, error) {
	var group *sim.ShardGroup
	sched := sim.NewScheduler()
	if sc.Shards > 1 {
		group = sim.NewShardGroup(sc.Shards)
		sched = group.Shard(0)
	}
	net := netsim.NewNetwork(sched)
	rng := sim.NewRand(sc.Seed)

	link := netsim.LinkConfig{
		Rate:  sc.Rate,
		Delay: sc.Delay,
		Queue: netsim.QueueConfig{CapPackets: sc.Queue},
	}
	hs := net.AddHost("s")
	sw := net.AddSwitch("sw")
	hr := net.AddHost("r")
	net.Connect(hs, sw, link)
	fwd, rev := net.Connect(sw, hr, link)
	var hx *netsim.Host
	if len(sc.CrossTrains) > 0 {
		hx = net.AddHost("x")
		net.Connect(hx, sw, link)
	}
	if group != nil {
		// Senders own their shards; the switch, receiver, and hence every
		// faulted pipe (sw↔hr) stay together on shard 0. The cut pipes
		// are the sender uplinks, whose delay is the lookahead.
		crossShard := 1
		if sc.Shards > 2 {
			crossShard = 2
		}
		if err := net.Shard(group, func(n netsim.Node) int {
			switch {
			case n.ID() == hs.ID():
				return 1
			case hx != nil && n.ID() == hx.ID():
				return crossShard
			default:
				return 0
			}
		}); err != nil {
			return nil, err
		}
	}

	if sc.Loss.Enabled() {
		fwd.InjectGilbertElliott(sc.Loss, rng)
	}
	if sc.ReorderProb > 0 {
		fwd.InjectReorder(sc.ReorderProb, sc.ReorderExtra, rng)
		rev.InjectReorder(sc.ReorderProb, sc.ReorderExtra, rng)
	}
	if sc.DupProb > 0 {
		fwd.InjectDuplicate(sc.DupProb, rng)
	}
	if sc.Jitter > 0 {
		fwd.InjectJitter(sc.Jitter, rng)
		rev.InjectJitter(sc.Jitter, rng)
	}

	senderStack := tcp.NewStack(net, hs)
	recvStack := tcp.NewStack(net, hr)
	conn, err := tcp.NewConn(tcp.Config{
		Sender:     senderStack,
		Receiver:   recvStack,
		Flow:       1,
		CC:         shadow,
		LinkRate:   sc.Rate,
		MinRTO:     sc.MinRTO,
		SACK:       sc.SACK,
		DelayedAck: sc.DelayedAck,
	})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	schedule := func(c *tcp.Conn, trains []Train, counted bool) error {
		for _, tr := range trains {
			bytes := tr.Bytes
			if _, err := c.Scheduler().At(sim.At(tr.Start), func() {
				c.SendTrain(bytes, func(tcp.TrainResult) {
					if counted {
						res.TrainsDone++
					}
				})
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := schedule(conn, sc.Trains, true); err != nil {
		return nil, err
	}

	if hx != nil {
		cross, err := tcp.NewConn(tcp.Config{
			Sender:   tcp.NewStack(net, hx),
			Receiver: recvStack,
			Flow:     2,
			CC:       tcp.NewReno(),
			MinRTO:   sc.MinRTO,
		})
		if err != nil {
			return nil, err
		}
		if err := schedule(cross, sc.CrossTrains, false); err != nil {
			return nil, err
		}
	}

	if group != nil {
		group.RunUntil(sim.At(sc.Horizon))
	} else {
		sched.RunUntil(sim.At(sc.Horizon))
	}

	res.Divergences = shadow.Finish()
	res.Total = shadow.Total()
	res.Hooks = shadow.traceN
	res.ProbeRounds = shadow.Live().ProbeRounds()
	res.ProbeTimeouts = shadow.Live().ProbeTimeouts()
	res.QueueReductions = shadow.Live().QueueReductions()
	res.Timeouts = conn.Stats().Timeouts
	return res, nil
}
