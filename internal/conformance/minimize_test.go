package conformance

import (
	"testing"
	"time"

	"tcptrim/internal/netsim"
)

// tamperedFails runs the scenario with an oracle whose alpha is
// perturbed — a stand-in for a real policy bug, so the minimizer has a
// genuine failure to shrink.
func tamperedFails(sc Scenario) bool {
	sh := NewShadow(sc.Cfg)
	sh.oracle.cfg.Alpha += 0.01
	res, err := runScenarioWith(sc, sh)
	return err == nil && res.Total > 0
}

func TestMinimizeShrinksTamperedFailure(t *testing.T) {
	// Find a seed whose scenario diverges under the tampered oracle.
	var sc Scenario
	found := false
	for seed := int64(1); seed <= 50; seed++ {
		sc = GenScenario(seed)
		if tamperedFails(sc) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no tampered-failing scenario in 50 seeds")
	}
	min := Minimize(sc, tamperedFails)
	if !tamperedFails(min) {
		t.Fatal("minimized scenario no longer fails")
	}
	if len(min.Trains) > len(sc.Trains) {
		t.Errorf("minimizer grew the schedule: %d → %d trains", len(sc.Trains), len(min.Trains))
	}
	// The alpha tamper needs only RTT samples: a genuinely minimal
	// reproduction is a handful of trains with no faults.
	if len(min.Trains) > 3 {
		t.Errorf("minimized to %d trains, want ≤ 3", len(min.Trains))
	}
	if min.Loss.Enabled() || min.ReorderProb > 0 || min.DupProb > 0 || min.Jitter > 0 || len(min.CrossTrains) > 0 {
		t.Errorf("minimizer left faults armed: %s", min.Describe())
	}
	t.Logf("minimized %q → %q", sc.Describe(), min.Describe())
}

func TestMinimizeReturnsPassingScenarioUntouched(t *testing.T) {
	sc := GenScenario(1)
	min := Minimize(sc, func(Scenario) bool { return false })
	if min.Horizon != sc.Horizon || len(min.Trains) != len(sc.Trains) {
		t.Error("non-failing scenario was modified")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	// Same seed → byte-identical scenario and identical run counters;
	// this is what makes a failing seed replayable and shrinkable.
	for seed := int64(1); seed <= 5; seed++ {
		a, b := GenScenario(seed), GenScenario(seed)
		if a.Describe() != b.Describe() || a.Horizon != b.Horizon || len(a.Trains) != len(b.Trains) {
			t.Fatalf("seed %d: scenario generation not deterministic", seed)
		}
		ra, err := RunScenario(a)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := RunScenario(b)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Hooks != rb.Hooks || ra.ProbeRounds != rb.ProbeRounds || ra.Timeouts != rb.Timeouts {
			t.Fatalf("seed %d: replay differs: %+v vs %+v", seed, ra, rb)
		}
	}
}

// FuzzScenario decodes a bounded scenario directly from fuzz bytes —
// independent of GenScenario's distributions — and requires a clean
// lockstep run.
func FuzzScenario(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(0), uint8(2), false, false)
	f.Add(int64(7), uint8(12), uint8(40), uint8(9), uint8(0), true, true)
	f.Fuzz(func(t *testing.T, seed int64, trains, queue, faults, knobs uint8, sack, dack bool) {
		sc := GenScenario(seed) // base draws (rates, fault params)
		sc.Queue = 4 + int(queue)
		sc.SACK = sack
		if dack {
			sc.DelayedAck = 200 * time.Microsecond
		} else {
			sc.DelayedAck = 0
		}
		// Rebuild the train schedule from the byte arguments.
		n := int(trains)%16 + 1
		sc.Trains = sc.Trains[:0]
		start := time.Duration(0)
		for i := 0; i < n; i++ {
			segs := (i*7+int(faults))%40 + 1
			sc.Trains = append(sc.Trains, Train{Bytes: segs * 1460, Start: start})
			if i%2 == 0 {
				start += time.Duration(int(faults)*13%400) * time.Microsecond
			} else {
				start += time.Duration(500+int(knobs)*37) * time.Microsecond
			}
		}
		if faults%2 == 0 {
			sc.Loss = netsimGE(faults)
		}
		sc.Cfg.ProbeDeadlineFactor = []float64{0, 1, 2, 3}[knobs%4]
		sc.Cfg.DisableProbing = knobs%8 == 5
		sc.Cfg.DisableQueueControl = knobs%8 == 6
		sc.normalizeHorizon()
		res, err := RunScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total > 0 {
			min := MinimizeFailing(sc)
			t.Fatalf("%d divergences; first: %s\nminimized repro: %+v",
				res.Total, res.Divergences[0], min)
		}
	})
}

// netsimGE maps one byte to a bursty-loss configuration.
func netsimGE(b uint8) netsim.GEConfig {
	return netsim.GEConfig{
		PGoodBad: 0.002 * float64(b%8+1),
		PBadGood: 0.25,
		LossBad:  0.1 * float64(b%10+1),
	}
}
