// Package conformance checks the live TCP-TRIM policy against the
// paper's pseudocode. It holds a deliberately naive reference
// implementation (Oracle) of Algorithm 1 (conditional window
// inheritance), Algorithm 2 (delay-based gentle decrease), Eq. 1 (the
// tuned inherited window) and Eq. 22 (the K guideline), transcribed
// line-by-line from PAPER.md, plus a shadow executor (Shadow) that
// replays every congestion-control hook through both core.Trim and the
// Oracle in lockstep and records any divergence.
//
// The Oracle is intentionally NOT shared code with internal/core: it is
// a second, independent transcription, kept as close to the paper's
// prose as Go allows, so that a bug in the live policy cannot hide by
// being "consistent with itself". Intentional deviations from the
// paper's literal pseudocode are mirrored here, each marked with a
// "Deviation" comment naming its core.Config knob and the DESIGN.md §7
// entry that declares it — everything else diverging is a bug.
package conformance

import (
	"math"
	"time"

	"tcptrim/internal/core"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// probeWindow is Algorithm 1's probe window: "saves the accumulated
// window s_cwnd, shrinks cwnd to 2, sends the two packets as probes".
const probeWindow = 2

// maxCwndSegs mirrors the connection's hard window ceiling so the
// Oracle's clamp arithmetic matches the live sender's SetCwnd exactly.
const maxCwndSegs = 1 << 30

// Snapshot is the pre-hook view of the live connection's observable
// state. The Shadow fills one from the real tcp.Control before every
// hook so the Oracle's arithmetic always starts from the exact values
// the live policy saw.
type Snapshot struct {
	Now            sim.Time
	Cwnd           float64
	Ssthresh       float64
	MinCwnd        float64
	FlightSegs     int
	Gap            time.Duration
	HasSent        bool
	LinkRate       netsim.Bitrate
	WirePacketSize int
}

// Calls is the control-plane effect of one hook: every call the policy
// is expected to make on its tcp.Control during that hook, in order.
// TRIM only ever writes these (it never reads suspension or grant
// state back), so comparing call logs is exactly the Suspend/Resume
// pairing and AllowBeyondWindow grant-and-revoke check.
type Calls struct {
	Suspends int
	Resumes  int
	// Grants lists the AllowBeyondWindow arguments issued, in order.
	Grants []int
	// Deadlines lists the durations of probe deadlines armed, in order.
	Deadlines []time.Duration
	// CwndSets / SsthreshSets list the raw (pre-clamp) arguments of
	// every SetCwnd / SetSsthresh the policy issued, in order. Comparing
	// the write sequence — rather than absolute post-hook window state —
	// keeps the check exact even when a hook re-enters the sender
	// (Resume → trySend → nested BeforeSend/OnSent).
	CwndSets     []float64
	SsthreshSets []float64
}

func (c *Calls) reset() {
	c.Suspends, c.Resumes = 0, 0
	c.Grants = c.Grants[:0]
	c.Deadlines = c.Deadlines[:0]
	c.CwndSets = c.CwndSets[:0]
	c.SsthreshSets = c.SsthreshSets[:0]
}

// clone deep-copies the call log so an expectation captured before the
// live hook runs survives the oracle's next BeginHook reset.
func (c Calls) clone() Calls {
	c.Grants = append([]int(nil), c.Grants...)
	c.Deadlines = append([]time.Duration(nil), c.Deadlines...)
	c.CwndSets = append([]float64(nil), c.CwndSets...)
	c.SsthreshSets = append([]float64(nil), c.SsthreshSets...)
	return c
}

// Oracle is the naive reference policy. Feed it the same hook sequence
// as the live core.Trim (via BeginHook + the hook methods) and it
// produces, per hook, the expected post-hook cwnd/ssthresh and control
// calls, plus the paper-visible internal state (smoothed RTT, minimum
// RTT, K, probe accounting) for comparison.
type Oracle struct {
	cfg core.Config

	// S is the pre-hook snapshot; Cwnd/Ssthresh are mutated by the hook
	// transitions into the expected post-hook values.
	S Snapshot
	// C collects the control calls the current hook is expected to make.
	C Calls

	// Algorithm 2 lines 2-6: the RTT estimators and the threshold K.
	SmoothRTT time.Duration
	MinRTT    time.Duration
	K         time.Duration

	// Algorithm 1 probe-exchange state.
	Probing       bool
	SavedCwnd     float64 // s_cwnd of Algorithm 1 line 3
	ProbeEnds     []int64 // end sequence of each in-flight probe
	ProbeRTTs     []time.Duration
	ProbesSent    int
	DeadlineArmed bool
	LastResume    sim.Time
	EverResumed   bool

	// Counters mirrored against the live policy's accessors.
	ProbeRounds     int
	ProbeTimeouts   int
	QueueReductions int

	// Algorithm 2's once-per-sRTT decrease cadence (declared deviation).
	LastDecrease  sim.Time
	EverDecreased bool
}

// NewOracle builds the reference policy for the given TRIM
// configuration. The config is resolved through core.Config.WithDefaults
// so the Oracle sees exactly the effective knobs the live policy runs
// with (Alpha, ProbeDeadlineFactor, FallbackKFactor, ...).
func NewOracle(cfg core.Config) *Oracle {
	return &Oracle{cfg: cfg.WithDefaults()}
}

// BeginHook installs the pre-hook snapshot and clears the expected call
// log. Call it immediately before each hook method.
func (o *Oracle) BeginHook(s Snapshot) {
	o.S = s
	o.C.reset()
}

// setCwnd records the expected SetCwnd argument and applies the
// sender's window clamp (cwnd ∈ [minCwnd, 2^30]), replicated so the
// tracked value matches Conn.SetCwnd bit-for-bit.
func (o *Oracle) setCwnd(w float64) {
	o.C.CwndSets = append(o.C.CwndSets, w)
	if w < o.S.MinCwnd {
		w = o.S.MinCwnd
	}
	if w > maxCwndSegs {
		w = maxCwndSegs
	}
	o.S.Cwnd = w
}

// setSsthresh records the expected SetSsthresh argument and applies the
// sender's ssthresh clamp (≥ minCwnd).
func (o *Oracle) setSsthresh(w float64) {
	o.C.SsthreshSets = append(o.C.SsthreshSets, w)
	if w < o.S.MinCwnd {
		w = o.S.MinCwnd
	}
	o.S.Ssthresh = w
}

// Attach is the policy's attach-time transition: with a configured
// queue-free RTT D, K is a topology constant and is computed before any
// RTT sample arrives.
func (o *Oracle) Attach() {
	if o.cfg.BaseRTT > 0 {
		o.updateK()
	}
}

// BeforeSend transcribes Algorithm 1 lines 1-5: before sending a new
// (non-retransmission) packet, if the idle time since the last send
// exceeds the smoothed RTT, save the accumulated window, shrink to the
// probe window, and send the next packets as probes.
func (o *Oracle) BeforeSend() {
	// Ablation knob: probing disabled means Algorithm 1 never runs.
	if o.cfg.DisableProbing {
		return
	}
	// A probe exchange is already in flight, or no RTT estimate exists
	// yet (the very first train has nothing to inherit).
	if o.Probing || o.SmoothRTT == 0 {
		return
	}
	if !o.S.HasSent {
		return // nothing ever sent: no inter-train gap to measure
	}
	gap := o.S.Gap
	// Deviation [probe-pause-not-idle-gap], DESIGN.md §7: the pause
	// while waiting out our own probe exchange is not application idle
	// time, so the gap is measured from the later of the last send and
	// the last probe resolution.
	if o.EverResumed {
		if since := o.S.Now.Sub(o.LastResume); since < gap {
			gap = since
		}
	}
	// Algorithm 1 line 2: "if now − last_send > smooth_RTT".
	if gap <= o.SmoothRTT {
		return
	}
	// Line 3: s_cwnd ← cwnd.
	o.Probing = true
	o.ProbeRounds++
	o.SavedCwnd = o.S.Cwnd
	o.ProbeEnds = o.ProbeEnds[:0]
	o.ProbeRTTs = o.ProbeRTTs[:0]
	o.ProbesSent = 0
	// Line 4: cwnd ← 2.
	o.setCwnd(probeWindow)
	// Deviation [beyond-window-probe-grant], DESIGN.md §7: stale flight
	// from a stalled previous train must not dead-lock the exchange, so
	// the two probes are granted passage beyond the shrunken window.
	o.C.Grants = append(o.C.Grants, probeWindow)
}

// OnSent transcribes Algorithm 1 lines 5-6: the next two new-data
// packets go out tagged as probes; after the second, transmission is
// suspended and the probe deadline is armed. Returns whether the packet
// is expected to carry the probe tag.
func (o *Oracle) OnSent(ev tcp.SendEvent) bool {
	if !o.Probing || ev.Retransmit || o.ProbesSent >= probeWindow {
		return false
	}
	o.ProbesSent++
	o.ProbeEnds = append(o.ProbeEnds, ev.EndSeq)
	if o.ProbesSent == 1 {
		// Deviation [deadline-at-first-probe], DESIGN.md §7: the
		// deadline is armed when the first probe departs (not at
		// suspension) so a one-segment train — which can only ever emit
		// one probe and therefore never suspends — still times out
		// instead of dead-locking until the RTO.
		o.armDeadline()
	}
	if o.ProbesSent == probeWindow {
		// Algorithm 1 line 6: suspend transmission until the probe ACKs
		// return or the deadline expires.
		o.C.Suspends++
	}
	return true
}

// armDeadline computes the probe-ACK deadline of Algorithm 2 line 11:
// "wait a smoothed RTT", scaled by the declared ProbeDeadlineFactor
// deviation knob (DESIGN.md §7; 1 is the paper-literal value).
func (o *Oracle) armDeadline() {
	d := time.Duration(o.cfg.ProbeDeadlineFactor * float64(o.SmoothRTT))
	if d <= 0 {
		d = time.Millisecond
	}
	o.DeadlineArmed = true
	o.C.Deadlines = append(o.C.Deadlines, d)
}

// OnProbeDeadline transcribes Algorithm 2 line 12: the probe ACKs did
// not return within the deadline, so the congestion state is assumed to
// have changed drastically — resume with the legacy minimum window.
func (o *Oracle) OnProbeDeadline() {
	if !o.Probing {
		return
	}
	o.ProbeTimeouts++
	o.endProbe()
	o.setCwnd(probeWindow)
	o.C.Resumes++
}

// endProbe closes the exchange bookkeeping shared by every exit path
// (both ACKs in, deadline expired, or retransmission timeout).
func (o *Oracle) endProbe() {
	o.Probing = false
	o.LastResume = o.S.Now
	o.EverResumed = true
	o.DeadlineArmed = false
	// Deviation [beyond-window-probe-grant], DESIGN.md §7: the unused
	// remainder of the probes' beyond-window allowance is revoked.
	o.C.Grants = append(o.C.Grants, 0)
}

// OnAck transcribes Algorithm 2: every ACK updates the RTT estimators;
// probe ACKs resolve the inheritance decision (Eq. 1); all other ACKs
// grow the window by the legacy rules and then apply the delay-based
// decrease when RTT ≥ K.
func (o *Oracle) OnAck(ev tcp.AckEvent) {
	// Algorithm 2 lines 2-6.
	if ev.RTT > 0 {
		o.observeRTT(ev.RTT)
	}
	if o.Probing {
		o.onProbeAck(ev)
		return
	}
	// Legacy growth (paper: "the standard TCP window adjustment rides
	// underneath TRIM's regulation") — Reno slow start / congestion
	// avoidance, frozen during fast recovery.
	o.growReno(ev)
	if o.cfg.DisableQueueControl || ev.RTT <= 0 {
		return
	}
	o.queueControl(ev.RTT)
}

// growReno is the naive transcription of the legacy window growth the
// live policy delegates to tcp.GrowReno.
func (o *Oracle) growReno(ev tcp.AckEvent) {
	if ev.InRecovery {
		return
	}
	if o.S.Cwnd < o.S.Ssthresh {
		o.setCwnd(o.S.Cwnd + float64(ev.AckedSegs)) // slow start
		return
	}
	o.setCwnd(o.S.Cwnd + float64(ev.AckedSegs)/o.S.Cwnd) // avoidance
}

// onProbeAck transcribes Algorithm 1 lines 7-9 and Eq. 1: collect the
// probe RTT samples; when the cumulative ACK covers every probe sent,
// tune the inherited window and resume.
func (o *Oracle) onProbeAck(ev tcp.AckEvent) {
	matched := false
	for len(o.ProbeEnds) > 0 && o.ProbeEnds[0] <= ev.Ack {
		o.ProbeEnds = o.ProbeEnds[1:]
		matched = true
	}
	if matched && ev.RTT > 0 {
		o.ProbeRTTs = append(o.ProbeRTTs, ev.RTT)
	}
	if o.ProbesSent == 0 || len(o.ProbeEnds) > 0 {
		return // an old-train ACK, or one probe still unacknowledged
	}
	o.endProbe()
	w := o.tunedWindow()
	// Algorithm 1 line 8 / Eq. 1: resume with the tuned window.
	o.setCwnd(w)
	// Deviation [ssthresh-on-resolve], DESIGN.md §7: the tuned window
	// already reflects the probed congestion state, so slow start must
	// not double from it (RFC 2861 spirit).
	o.setSsthresh(w)
	o.C.Resumes++
}

// tunedWindow transcribes Eq. 1:
//
//	cwnd = s_cwnd × (1 − (probeRTT − minRTT)/minRTT)
//
// floored at the legacy minimum window when the probe RTT indicates the
// congestion state changed drastically (Section III.C), and never above
// the saved window. probeRTT is the average of the probe samples.
func (o *Oracle) tunedWindow() float64 {
	minW := o.S.MinCwnd
	base := o.baseRTT()
	if len(o.ProbeRTTs) == 0 || base <= 0 {
		return minW
	}
	var sum time.Duration
	for _, r := range o.ProbeRTTs {
		sum += r
	}
	probeRTT := sum / time.Duration(len(o.ProbeRTTs))
	factor := 1 - float64(probeRTT-base)/float64(base)
	w := o.SavedCwnd * factor
	if w < minW {
		return minW
	}
	if w > o.SavedCwnd {
		w = o.SavedCwnd
	}
	return w
}

// queueControl transcribes Algorithm 2 lines 13-16 and Eq. 2-3: when
// the measured RTT reaches the threshold K, the congestion level is
// ep = (RTT − K)/RTT and the window shrinks by half that fraction.
func (o *Oracle) queueControl(rtt time.Duration) {
	if o.K <= 0 || rtt < o.K {
		return
	}
	// Deviation [once-per-srtt-decrease], DESIGN.md §7: at most one
	// decrease per smoothed RTT, so a single standing queue is not
	// charged once per ACK of the same flight.
	if o.EverDecreased && o.S.Now.Sub(o.LastDecrease) < o.SmoothRTT {
		return
	}
	ep := float64(rtt-o.K) / float64(rtt)
	o.setCwnd(o.S.Cwnd * (1 - ep/2))
	// Deviation [ssthresh-on-cut], DESIGN.md §7: a delay-triggered cut
	// is a congestion signal, so slow start ends at the cut window.
	o.setSsthresh(o.S.Cwnd)
	o.LastDecrease = o.S.Now
	o.EverDecreased = true
	o.QueueReductions++
}

// OnTimeout transcribes the paper's implicit RTO interaction: the probe
// packets are being retransmitted by the legacy machinery, so the
// exchange is abandoned and transmission resumes.
func (o *Oracle) OnTimeout() {
	if o.Probing {
		o.endProbe()
	}
	o.C.Resumes++
}

// SsthreshAfterLoss is the legacy Reno back-off target the paper keeps
// for packet loss: max(flight/2, minimum window).
func (o *Oracle) SsthreshAfterLoss() float64 {
	half := float64(o.S.FlightSegs) / 2
	if half < o.S.MinCwnd {
		return o.S.MinCwnd
	}
	return half
}

// observeRTT transcribes Algorithm 2 lines 2-6: the smoothed RTT is an
// EWMA with gain α, and the minimum RTT (the queue-free latency D)
// only ever decreases, recomputing K when it does.
func (o *Oracle) observeRTT(rtt time.Duration) {
	if o.SmoothRTT == 0 {
		o.SmoothRTT = rtt
	} else {
		a := o.cfg.Alpha
		o.SmoothRTT = time.Duration((1-a)*float64(o.SmoothRTT) + a*float64(rtt))
	}
	if o.MinRTT == 0 || rtt < o.MinRTT {
		o.MinRTT = rtt
		o.updateK()
	}
}

// baseRTT is the queue-free RTT estimate D: the configured topology
// constant when provided (DESIGN.md §7 [configured-base-rtt]), else the
// measured minimum.
func (o *Oracle) baseRTT() time.Duration {
	if o.cfg.BaseRTT > 0 {
		return o.cfg.BaseRTT
	}
	return o.MinRTT
}

// updateK recomputes the delay threshold: a fixed configured K wins;
// otherwise Eq. 22 from the link capacity, falling back to
// FallbackKFactor × D when no link rate is known.
func (o *Oracle) updateK() {
	if o.cfg.K > 0 {
		o.K = o.cfg.K
		return
	}
	base := o.baseRTT()
	rate := o.S.LinkRate
	if rate <= 0 {
		o.K = time.Duration(o.cfg.FallbackKFactor * float64(base))
		return
	}
	o.K = eq22K(rate.PacketsPerSecond(o.S.WirePacketSize), base)
}

// eq22K transcribes Eq. 22: K ≥ max((√(2CD) − 1)²/C, D), with C the
// bottleneck capacity in packets per second and D the queue-free RTT.
func eq22K(c float64, d time.Duration) time.Duration {
	if c <= 0 || d <= 0 {
		return d
	}
	dSec := d.Seconds()
	root := math.Sqrt(2*c*dSec) - 1
	k := time.Duration(root * root / c * float64(time.Second))
	if k < d {
		k = d // the K ≥ D floor must hold exactly in Duration space
	}
	return k
}
