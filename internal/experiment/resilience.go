package experiment

// resilience: fault-injection matrix. The paper evaluates TCP-TRIM under
// congestion only; this extension stresses TCP, TCP-TRIM, and DCTCP with
// correlated data-center failures — Gilbert–Elliott bursty loss, link
// flaps, bounded reordering, and packet duplication — injected on the
// star's bottleneck during a fixed fault window. Each cell reports goodput
// retention inside the window (relative to the same protocol's fault-free
// baseline), loss-recovery effort, and how long the fleet needs to drain
// its backlog once the last fault clears. Every cell runs with the
// simulator's invariant checker armed, so a fault-layer accounting bug
// (leaked or double-released packet, queue over bound) fails the
// experiment loudly instead of skewing the numbers.

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/aqm"
	"tcptrim/internal/httpapp"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
	"tcptrim/internal/workload"
)

// FaultIntensity bundles one named level of injected faults. The zero
// value (all fields off) is a clean baseline.
type FaultIntensity struct {
	Name string
	// GE is the bursty-loss channel applied during the fault window.
	GE netsim.GEConfig
	// FlapCount outages of FlapDown each, FlapUp apart, inside the window.
	FlapCount int
	FlapDown  time.Duration
	FlapUp    time.Duration
	// ReorderProb of packets arrive up to ReorderExtra late (out of order).
	ReorderProb  float64
	ReorderExtra time.Duration
	// DupProb of packets arrive twice.
	DupProb float64
}

// clean reports whether the intensity injects nothing (a baseline cell).
func (fi FaultIntensity) clean() bool {
	return !fi.GE.Enabled() && fi.FlapCount == 0 && fi.ReorderProb == 0 && fi.DupProb == 0
}

// DefaultFaultIntensities is the ladder the resilience experiment sweeps.
// GE stationary loss rates: mild ≈ 0.7%, moderate ≈ 4.5%, severe ≈ 20%,
// with mean burst lengths of 5, 10, and 20 packets respectively.
var DefaultFaultIntensities = []FaultIntensity{
	{Name: "none"},
	{
		Name:         "mild",
		GE:           netsim.GEConfig{PGoodBad: 0.005, PBadGood: 0.2, LossBad: 0.3},
		ReorderProb:  0.02,
		ReorderExtra: 100 * time.Microsecond,
		DupProb:      0.01,
	},
	{
		Name:         "moderate",
		GE:           netsim.GEConfig{PGoodBad: 0.01, PBadGood: 0.1, LossBad: 0.5},
		FlapCount:    1,
		FlapDown:     20 * time.Millisecond,
		FlapUp:       100 * time.Millisecond,
		ReorderProb:  0.05,
		ReorderExtra: 200 * time.Microsecond,
		DupProb:      0.02,
	},
	{
		Name:         "severe",
		GE:           netsim.GEConfig{PGoodBad: 0.02, PBadGood: 0.05, LossBad: 0.7},
		FlapCount:    3,
		FlapDown:     40 * time.Millisecond,
		FlapUp:       150 * time.Millisecond,
		ReorderProb:  0.1,
		ReorderExtra: 500 * time.Microsecond,
		DupProb:      0.05,
	},
}

// ResilienceProtocols are the matrix's default protocol axis.
var ResilienceProtocols = []Protocol{ProtoTCP, ProtoTRIM, ProtoDCTCP}

// ResilienceRow is one (protocol, intensity) cell.
type ResilienceRow struct {
	Protocol  Protocol
	Intensity string
	// WindowMbps is the fleet goodput measured inside the fault window;
	// Retention is WindowMbps relative to the protocol's clean baseline
	// (negative when no baseline cell ran).
	WindowMbps float64
	Retention  float64
	Timeouts   int
	Retrans    int
	// RecoveryTime is how long after the fault window the last response
	// completed (0 if the backlog drained inside the window; negative if
	// responses never completed).
	RecoveryTime time.Duration
	Complete     int
	Total        int
	// Injected separates fault-layer drops/mutations (bottleneck pipe
	// counters) from CongestionDrops (the bottleneck queue's drops:
	// tail, AQM early, and AQM head — split in QueueStats).
	Injected        netsim.PipeStats
	CongestionDrops int
	// QueueStats carries the drop split by cause for the bottleneck.
	QueueStats netsim.QueueStats
}

// ResilienceResult holds the matrix.
type ResilienceResult struct {
	Rows []ResilienceRow
	// FaultWindow documents the injection interval used by every cell.
	FaultStart, FaultEnd time.Duration
}

// Resilience scenario constants: the Fig. 4-style star with an ON/OFF
// response workload shaped to keep the bottleneck busy across the whole
// fault window.
const (
	rsServers    = 3
	rsPerServer  = 250
	rsFaultStart = 200 * time.Millisecond
	rsFaultEnd   = 1200 * time.Millisecond
	rsDeadline   = 30 * time.Second
	rsCheckEvery = 5 * time.Millisecond
)

// RunResilience sweeps protocols × intensities, one independent simulation
// per cell, each seeded via SplitSeed so the matrix is byte-identical
// regardless of worker count.
func RunResilience(protos []Protocol, intensities []FaultIntensity, opts Options) (*ResilienceResult, error) {
	type cell struct {
		proto Protocol
		fi    FaultIntensity
	}
	var cells []cell
	for _, p := range protos {
		for _, fi := range intensities {
			cells = append(cells, cell{p, fi})
		}
	}
	aqmCfg, aqmSet, err := opts.aqmOverride()
	if err != nil {
		return nil, err
	}
	recovery, _, err := opts.recoveryOverride()
	if err != nil {
		return nil, err
	}
	ctr := opts.cells(len(cells))
	rows, err := RunSeededTrialsWorkers(len(cells), opts.seed(), trialWorkers(opts.shards()), func(i int, seed int64) (*ResilienceRow, error) {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		c := cells[i]
		// AQM is keyed by the raw option string ("" = the scenario's
		// default drop-tail switch) and Recovery by the canonical policy
		// name ("" = the fleet default): both distinguish "unset" from an
		// explicit selection, because the explicit forms change wiring
		// (ECN thresholds, the T-RACKs agent) even when they name the
		// default behavior.
		spec := struct {
			Family    string         `json:"family"`
			Protocol  Protocol       `json:"protocol"`
			Intensity FaultIntensity `json:"intensity"`
			AQM       string         `json:"aqm,omitempty"`
			Recovery  string         `json:"recovery,omitempty"`
			Seed      int64          `json:"seed"`
		}{"resilience", c.proto, c.fi, opts.AQM, recovery, seed}
		// Retention is derived after the fan-out from the full row set,
		// so the cached cell carries it unset and the recomputation below
		// stays exact on warm runs.
		row, _, err := cachedCell(opts, spec, func() (*ResilienceRow, error) {
			return runResilienceCell(c.proto, c.fi, seed, aqmCfg, aqmSet, recovery, opts.shards())
		})
		if err == nil {
			ctr.finished(fmt.Sprintf("%s/%s", c.proto, c.fi.Name))
		}
		return row, err
	})
	if err != nil {
		return nil, err
	}
	out := &ResilienceResult{FaultStart: rsFaultStart, FaultEnd: rsFaultEnd}
	// Baseline goodput per protocol (a clean cell, if the sweep has one).
	baseline := map[Protocol]float64{}
	for i, r := range rows {
		if cells[i].fi.clean() {
			baseline[r.Protocol] = r.WindowMbps
		}
	}
	for _, r := range rows {
		if base, ok := baseline[r.Protocol]; ok && base > 0 {
			r.Retention = r.WindowMbps / base
		} else {
			r.Retention = -1
		}
		out.Rows = append(out.Rows, *r)
	}
	return out, nil
}

func runResilienceCell(proto Protocol, fi FaultIntensity, seed int64, aqmCfg aqm.Config, aqmSet bool, recovery string, shards int) (*ResilienceRow, error) {
	rng := sim.NewRand(seed)
	env := newSimEnv(shards)
	sched := env.sched
	queueCfg := netsim.QueueConfig{CapPackets: 100, ECNThresholdPackets: 20}
	if aqmSet {
		queueCfg.AQM = aqmCfg
		if aqmCfg.Kind == aqm.RED {
			queueCfg.AQM.RED.Seed = SplitSeed(seed, 4)
		}
	}
	star := topology.NewStar(sched, rsServers, netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: queueCfg,
	})
	// The whole fault matrix injects on the bottleneck (switch →
	// front-end), which the star's shard plan keeps on shard 0 together
	// with both its endpoints — so every injector, including flaps, stays
	// shard-internal and the fault-arming events below run on the pipe's
	// own shard.
	if err := env.partition(star.Shard); err != nil {
		return nil, err
	}
	var newRecovery func() tcp.RecoveryPolicy
	if recovery != "" {
		newRecovery = func() tcp.RecoveryPolicy { return mustRecovery(recovery) }
		if recovery == "tracks" {
			// Switch assistance: the agent taps the star's ToR (attached
			// after partitioning so it binds to the switch's shard).
			if _, err := netsim.AttachTRACKs(star.Net, star.Switch, netsim.TRACKsConfig{}); err != nil {
				return nil, err
			}
		}
	}
	fleet, err := httpapp.NewFleet(star.Net, httpapp.FleetConfig{
		Senders:     star.Senders,
		FrontEnd:    star.FrontEnd,
		NewCC:       func() tcp.CongestionControl { return MustCCWithBaseRTT(proto, ksBaseRTT) },
		NewRecovery: newRecovery,
		Base: tcp.Config{
			MinRTO:   10 * time.Millisecond,
			SACK:     true,
			ECN:      UsesECN(proto),
			LinkRate: netsim.Gbps,
		},
	})
	if err != nil {
		return nil, err
	}
	for _, srv := range fleet.Servers {
		trains := workload.ScheduleCount(rng, sim.At(100*time.Millisecond), rsPerServer,
			workload.UniformSize{Min: 8 << 10, Max: 64 << 10},
			workload.ExponentialGap{Mean: 4 * time.Millisecond})
		if err := srv.ScheduleTrains(trains); err != nil {
			return nil, err
		}
	}

	// Arm the faults on the bottleneck for the window [rsFaultStart,
	// rsFaultEnd). Each injector gets its own SplitSeed-derived stream so
	// adding one fault never perturbs another's draws.
	bn := star.Bottleneck
	if _, err := sched.At(sim.At(rsFaultStart), func() {
		if fi.GE.Enabled() {
			bn.InjectGilbertElliott(fi.GE, sim.NewRand(SplitSeed(seed, 1)))
		}
		if fi.ReorderProb > 0 {
			bn.InjectReorder(fi.ReorderProb, fi.ReorderExtra, sim.NewRand(SplitSeed(seed, 2)))
		}
		if fi.DupProb > 0 {
			bn.InjectDuplicate(fi.DupProb, sim.NewRand(SplitSeed(seed, 3)))
		}
	}); err != nil {
		return nil, err
	}
	if _, err := sched.At(sim.At(rsFaultEnd), func() {
		bn.InjectGilbertElliott(netsim.GEConfig{}, nil)
		bn.InjectReorder(0, 0, nil)
		bn.InjectDuplicate(0, nil)
	}); err != nil {
		return nil, err
	}
	if fi.FlapCount > 0 {
		if err := bn.ScheduleFlaps(netsim.FlapConfig{
			FirstDownAt: sim.At(rsFaultStart + 50*time.Millisecond),
			DownFor:     fi.FlapDown,
			UpFor:       fi.FlapUp,
			Count:       fi.FlapCount,
		}); err != nil {
			return nil, err
		}
	}

	// Goodput inside the fault window, by snapshotting delivered bytes at
	// its edges.
	var bytesAtStart, bytesAtEnd int64
	if _, err := sched.At(sim.At(rsFaultStart), func() { bytesAtStart = fleet.TotalDelivered() }); err != nil {
		return nil, err
	}
	if _, err := sched.At(sim.At(rsFaultEnd), func() { bytesAtEnd = fleet.TotalDelivered() }); err != nil {
		return nil, err
	}

	star.Net.ScheduleInvariantChecks(rsCheckEvery)
	env.runUntil(sim.At(rsDeadline))
	star.Net.CheckInvariants()

	row := &ResilienceRow{
		Protocol:  proto,
		Intensity: fi.Name,
		Total:     rsServers * rsPerServer,
		WindowMbps: float64(bytesAtEnd-bytesAtStart) * 8 /
			(rsFaultEnd - rsFaultStart).Seconds() / 1e6,
		Injected:        bn.Stats(),
		QueueStats:      bn.Queue().Stats(),
		CongestionDrops: bn.Queue().Stats().Dropped,
	}
	for _, c := range fleet.Conns {
		row.Timeouts += c.Stats().Timeouts
		row.Retrans += c.Stats().RetransSegs
	}
	row.Complete = len(fleet.Collector.Responses())
	var last sim.Time
	for _, resp := range fleet.Collector.Responses() {
		if resp.Completed > last {
			last = resp.Completed
		}
	}
	switch {
	case row.Complete < row.Total:
		row.RecoveryTime = -1
	case last > sim.At(rsFaultEnd):
		row.RecoveryTime = last.Sub(sim.At(rsFaultEnd))
	}
	return row, nil
}

// WriteTables renders the matrix with injected-fault drops reported
// separately from congestion (tail) drops.
func (r *ResilienceResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title: "Extension: resilience under injected faults",
		Header: []string{"protocol", "faults", "goodput", "retention", "timeouts",
			"retrans", "recovery", "inj burst", "inj flap", "inj reord", "inj dup",
			"cong drops", "completed"},
		Caption: fmt.Sprintf("goodput measured inside the fault window [%v, %v); "+
			"injected counters are fault-layer events on the bottleneck, distinct from congestion tail drops",
			r.FaultStart, r.FaultEnd),
	}
	for _, row := range r.Rows {
		retention := "-"
		if row.Retention >= 0 {
			retention = fmt.Sprintf("%.1f%%", 100*row.Retention)
		}
		recovery := row.RecoveryTime.Round(100 * time.Microsecond).String()
		if row.RecoveryTime < 0 {
			recovery = "never"
		}
		// Congestion drops split by cause when an AQM actually acted;
		// the plain total otherwise (historical format).
		cong := fmt.Sprintf("%d", row.CongestionDrops)
		if q := row.QueueStats; q.EarlyDrops > 0 || q.HeadDrops > 0 {
			cong = fmt.Sprintf("%d(%dt/%de/%dh)",
				row.CongestionDrops, q.TailDrops, q.EarlyDrops, q.HeadDrops)
		}
		t.Rows = append(t.Rows, []string{
			string(row.Protocol),
			row.Intensity,
			fmt.Sprintf("%.1f Mbps", row.WindowMbps),
			retention,
			fmt.Sprintf("%d", row.Timeouts),
			fmt.Sprintf("%d", row.Retrans),
			recovery,
			fmt.Sprintf("%d", row.Injected.BurstLossDrops),
			fmt.Sprintf("%d", row.Injected.FlapDrops),
			fmt.Sprintf("%d", row.Injected.Reordered),
			fmt.Sprintf("%d", row.Injected.Duplicated),
			cong,
			fmt.Sprintf("%d/%d", row.Complete, row.Total),
		})
	}
	return t.Write(w)
}

var _ = register("resilience",
	"Fault-injection matrix: protocol x fault intensity, goodput retention and recovery time",
	[]string{"aqm", "recovery"},
	func(opts Options, w io.Writer) error {
		res, err := RunResilience(ResilienceProtocols, DefaultFaultIntensities, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})

// resilience-smoke is the CI chaos check: one protocol, clean + mild, fast
// enough for every push.
var _ = register("resilience-smoke",
	"CI slice of resilience: one protocol, clean + mild faults",
	[]string{"aqm", "recovery"},
	func(opts Options, w io.Writer) error {
		res, err := RunResilience([]Protocol{ProtoTRIM}, DefaultFaultIntensities[:2], opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
