package experiment

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/core"
	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
)

// Eq. 22 validation: five TCP-TRIM long flows on the star, sweeping K
// around the guideline value K*. The analysis predicts: K ≥ K* keeps the
// bottleneck fully utilized, K below K* underutilizes, and K above K*
// buys nothing but standing queue.
const (
	// Queue-free RTT of the star: ≈ 225 µs (see convergence.go).
	ksBaseRTT = 225 * time.Microsecond
	ksFlows   = 5
)

// KSweepRow is one K setting's outcome.
type KSweepRow struct {
	// Factor is K/K*; K is the resulting threshold.
	Factor float64
	K      time.Duration
	// Utilization is payload goodput over the payload-capacity ceiling.
	Utilization float64
	AvgQueue    float64
	MaxQueue    int
	Drops       int
}

// KSweepResult holds the Eq. 22 sweep.
type KSweepResult struct {
	KStar time.Duration
	Rows  []KSweepRow
}

// RunKSweep sweeps K across the given multiples of the Eq. 22 guideline.
func RunKSweep(factors []float64, opts Options) (*KSweepResult, error) {
	kStar := core.GuidelineKForLink(netsim.Gbps, netsim.MSS+netsim.HeaderSize, ksBaseRTT)
	out := &KSweepResult{KStar: kStar, Rows: make([]KSweepRow, len(factors))}
	rows, err := RunTrials(len(factors), func(i int) (*KSweepRow, error) {
		row, err := runKSweepCell(time.Duration(factors[i] * float64(kStar)))
		if err != nil {
			return nil, err
		}
		row.Factor = factors[i]
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for i, row := range rows {
		out.Rows[i] = *row
	}
	_ = opts
	return out, nil
}

func runKSweepCell(k time.Duration) (*KSweepRow, error) {
	sched := sim.NewScheduler()
	star := topology.NewStar(sched, ksFlows, topology.DefaultStarLink(100))
	fleet, err := httpapp.NewFleet(star.Net, httpapp.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC: func() tcp.CongestionControl {
			return core.New(core.Config{K: k, BaseRTT: ksBaseRTT})
		},
		Base: tcp.Config{
			MinRTO:   10 * time.Millisecond,
			LinkRate: netsim.Gbps,
		},
	})
	if err != nil {
		return nil, err
	}
	for _, srv := range fleet.Servers {
		if err := srv.StartBackgroundFlow(sim.At(propFlowStart), concBackground); err != nil {
			return nil, err
		}
	}
	queue := star.Bottleneck.Queue()
	series := metrics.Sample(sched, sim.At(propFlowStart), sim.At(propFlowStop),
		propSampleStep, func() float64 { return float64(queue.Len()) })
	var startBytes int64
	if _, err := sched.At(sim.At(propFlowStart), func() { startBytes = fleet.TotalDelivered() }); err != nil {
		return nil, err
	}
	sched.RunUntil(sim.At(propFlowStop))

	window := (propFlowStop - propFlowStart).Seconds()
	goodput := float64(fleet.TotalDelivered()-startBytes) * 8 / window
	ceiling := float64(netsim.Gbps) * netsim.MSS / (netsim.MSS + netsim.HeaderSize)
	return &KSweepRow{
		K:           k,
		Utilization: goodput / ceiling,
		AvgQueue:    series.Mean(),
		MaxQueue:    int(series.Max()),
		Drops:       queue.Stats().Dropped,
	}, nil
}

// WriteTables renders the sweep.
func (r *KSweepResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  fmt.Sprintf("Eq. 22 sweep: K* = %v (1 Gbps star, 5 TRIM flows)", r.KStar),
		Header: []string{"K/K*", "K", "utilization", "avg queue", "max queue", "drops"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", row.Factor),
			row.K.Round(time.Microsecond).String(),
			fmt.Sprintf("%.3f", row.Utilization),
			fmt.Sprintf("%.1f", row.AvgQueue),
			fmt.Sprintf("%d", row.MaxQueue),
			fmt.Sprintf("%d", row.Drops),
		})
	}
	return t.Write(w)
}

var _ = register("eq22",
	"K guideline sweep around Eq. 22's K*: utilization, queue, drops vs K (Sec. III-D)",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunKSweep([]float64{0.25, 0.5, 0.75, 1, 1.5, 2, 4}, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
