package experiment

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/core"
	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
)

// Ablations for the design choices DESIGN.md calls out:
//
//   - abl-inherit: window-inheritance policies on the Fig. 4 workload —
//     blind inheritance (Reno), unconditional restart (GIP), conditional
//     probe-based inheritance (TRIM).
//   - abl-probe: TRIM without probing and without queue control on the
//     Fig. 5 worst case.
//   - abl-alpha: the smoothed-RTT gain α on the Fig. 9 queue metrics.

// InheritanceRow is one protocol's outcome on the impairment workload.
type InheritanceRow struct {
	Protocol Protocol
	// LPTMean is the mean long-train completion time — the cost of
	// being too conservative (GIP) or too aggressive (Reno) after idle.
	LPTMean time.Duration
	// Timeouts across all connections.
	Timeouts int
	QueueMax int
}

// InheritanceResult holds the abl-inherit comparison.
type InheritanceResult struct {
	Rows []InheritanceRow
}

// Row returns the row for proto, or nil.
func (r *InheritanceResult) Row(proto Protocol) *InheritanceRow {
	for i := range r.Rows {
		if r.Rows[i].Protocol == proto {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunInheritanceAblation compares window-inheritance policies on the
// Section II.B workload.
func RunInheritanceAblation(opts Options) (*InheritanceResult, error) {
	out := &InheritanceResult{}
	for _, proto := range []Protocol{ProtoTCP, ProtoGIP, ProtoTRIM} {
		res, err := RunImpairment(proto, opts)
		if err != nil {
			return nil, err
		}
		var mean metrics.Summary
		for _, ct := range res.LPTCompletion {
			mean.Add(ct.Seconds())
		}
		out.Rows = append(out.Rows, InheritanceRow{
			Protocol: proto,
			LPTMean:  secondsToDuration(mean.Mean()),
			Timeouts: res.TotalTimeouts(),
			QueueMax: res.QueueMax,
		})
	}
	return out, nil
}

// WriteTables renders abl-inherit.
func (r *InheritanceResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  "Ablation: window inheritance policy (Fig. 4 workload)",
		Header: []string{"policy", "mean LPT completion", "timeouts", "queue max"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			string(row.Protocol),
			row.LPTMean.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", row.Timeouts),
			fmt.Sprintf("%d", row.QueueMax),
		})
	}
	return t.Write(w)
}

// MechanismRow is one TRIM variant's outcome on the concurrency worst
// case.
type MechanismRow struct {
	Protocol Protocol
	ACT      time.Duration
	MaxCT    time.Duration
	Timeouts int
}

// MechanismResult holds the abl-probe comparison.
type MechanismResult struct {
	Rows []MechanismRow
}

// Row returns the row for proto, or nil.
func (r *MechanismResult) Row(proto Protocol) *MechanismRow {
	for i := range r.Rows {
		if r.Rows[i].Protocol == proto {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunMechanismAblation compares full TRIM against its two mechanisms in
// isolation (and Reno) on the 2-LPT × 8-SPT concurrency cell.
func RunMechanismAblation(opts Options) (*MechanismResult, error) {
	out := &MechanismResult{}
	for _, proto := range []Protocol{ProtoTCP, ProtoTRIMNoProbe, ProtoTRIMNoQueue, ProtoTRIM} {
		res, err := RunConcurrency(proto, []int{2}, 8, opts)
		if err != nil {
			return nil, err
		}
		cell := res.Cell(2, 8)
		if cell == nil {
			return nil, fmt.Errorf("ablation: missing cell for %s", proto)
		}
		out.Rows = append(out.Rows, MechanismRow{
			Protocol: proto,
			ACT:      cell.ACT,
			MaxCT:    cell.Max,
			Timeouts: cell.Timeouts,
		})
	}
	return out, nil
}

// WriteTables renders abl-probe.
func (r *MechanismResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  "Ablation: TRIM mechanisms (2 LPTs × 8 SPTs)",
		Header: []string{"variant", "ACT", "max CT", "SPT timeouts"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			string(row.Protocol),
			row.ACT.Round(10 * time.Microsecond).String(),
			row.MaxCT.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", row.Timeouts),
		})
	}
	return t.Write(w)
}

// AlphaRow is one smoothing-gain setting's outcome.
type AlphaRow struct {
	Alpha       float64
	AvgQueue    float64
	Drops       int
	GoodputMbps float64
}

// AlphaResult holds the abl-alpha sweep.
type AlphaResult struct {
	Rows []AlphaRow
}

// RunAlphaAblation sweeps TRIM's smoothed-RTT gain on the Fig. 9 5-flow
// scenario.
func RunAlphaAblation(alphas []float64, opts Options) (*AlphaResult, error) {
	out := &AlphaResult{}
	for _, alpha := range alphas {
		row, err := runAlphaCell(alpha)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, *row)
	}
	_ = opts
	return out, nil
}

func runAlphaCell(alpha float64) (*AlphaRow, error) {
	sched := sim.NewScheduler()
	star := topology.NewStar(sched, 5, topology.DefaultStarLink(100))
	fleet, err := httpapp.NewFleet(star.Net, httpapp.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC: func() tcp.CongestionControl {
			return core.New(core.Config{Alpha: alpha, BaseRTT: ksBaseRTT})
		},
		Base: tcp.Config{
			MinRTO:   10 * time.Millisecond,
			LinkRate: netsim.Gbps,
		},
	})
	if err != nil {
		return nil, err
	}
	for _, srv := range fleet.Servers {
		if err := srv.StartBackgroundFlow(sim.At(propFlowStart), concBackground); err != nil {
			return nil, err
		}
	}
	queue := star.Bottleneck.Queue()
	series := metrics.Sample(sched, sim.At(propFlowStart), sim.At(propFlowStop),
		propSampleStep, func() float64 { return float64(queue.Len()) })
	sched.RunUntil(sim.At(propFlowStop))

	window := (propFlowStop - propFlowStart).Seconds()
	return &AlphaRow{
		Alpha:       alpha,
		AvgQueue:    series.Mean(),
		Drops:       queue.Stats().Dropped,
		GoodputMbps: float64(fleet.TotalDelivered()) * 8 / window / 1e6,
	}, nil
}

// WriteTables renders abl-alpha.
func (r *AlphaResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  "Ablation: smoothed-RTT gain α (Fig. 9 scenario, 5 TRIM flows)",
		Header: []string{"alpha", "avg queue", "drops", "goodput (Mbps)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", row.Alpha),
			fmt.Sprintf("%.1f", row.AvgQueue),
			fmt.Sprintf("%d", row.Drops),
			fmt.Sprintf("%.0f", row.GoodputMbps),
		})
	}
	return t.Write(w)
}

var _ = register("abl-inherit",
	"Ablation: window inheritance policy on the Fig. 4 workload",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunInheritanceAblation(opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})

var _ = register("abl-probe",
	"Ablation: TRIM probe and queue-control mechanisms (2 LPTs x 8 SPTs)",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunMechanismAblation(opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})

var _ = register("abl-alpha",
	"Ablation: smoothed-RTT gain alpha on the Fig. 9 scenario",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunAlphaAblation([]float64{0.125, 0.25, 0.5}, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
