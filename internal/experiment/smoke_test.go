package experiment

// Smoke tests for the registered runners' output paths (the heavy
// scenario assertions live in paper_test.go).

import (
	"os"
	"strings"
	"testing"
)

func TestSmokeFig4(t *testing.T) {
	if err := Run("fig4", Options{}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestSmokeFig6(t *testing.T) {
	if err := Run("fig6", Options{}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestSmokeFig1(t *testing.T) {
	if err := Run("fig1", Options{}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestSmokeAQMSweep(t *testing.T) {
	var sb strings.Builder
	if err := Run("aqmsweep-smoke", Options{}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"droptail", "red", "codel", "favour"} {
		if !strings.Contains(out, want) {
			t.Errorf("aqmsweep-smoke output missing discipline %q:\n%s", want, out)
		}
	}
}

func TestSmokeImpairmentAQMOverride(t *testing.T) {
	// The -aqm plumbing end to end: a CoDel override must run and report
	// the drop split; a bad name must fail before simulating.
	var sb strings.Builder
	if err := Run("fig4", Options{AQM: "codel"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "aqm-head") {
		t.Errorf("codel override produced no drop split in caption:\n%s", sb.String())
	}
	if err := Run("fig4", Options{AQM: "bogus"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "unknown discipline") {
		t.Errorf("bogus AQM name: err = %v", err)
	}
}

func TestRunnersRegistered(t *testing.T) {
	want := []string{
		"abl-alpha", "abl-buffer", "abl-inherit", "abl-probe",
		"aqmsweep", "aqmsweep-smoke",
		"conformance", "eq22",
		"ext-deadline", "ext-delay", "ext-jitter", "ext-loss", "ext-scatter",
		"fig1", "fig10", "fig11", "fig12", "fig13", "fig13a",
		"fig2", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig8million", "fig8million-smoke", "fig9",
		"recoverysweep", "recoverysweep-smoke",
		"resilience", "resilience-smoke", "table1",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	err := Run("nope", Options{}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "unknown id") {
		t.Errorf("err = %v", err)
	}
}

func TestWriteTableAlignment(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Header:  []string{"col", "longer column"},
		Rows:    [][]string{{"a-very-long-cell", "b"}, {"c", "d"}},
		Caption: "caption",
	}
	var sb strings.Builder
	if err := tbl.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== Demo ==", "a-very-long-cell", "-- caption"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Header and first row must align on the second column.
	if strings.Index(lines[1], "longer column") != strings.Index(lines[2], "b") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestNewCCAllProtocols(t *testing.T) {
	for _, p := range []Protocol{
		ProtoTCP, ProtoTRIM, ProtoDCTCP, ProtoL2DCT, ProtoCUBIC, ProtoGIP,
		ProtoTRIMNoProbe, ProtoTRIMNoQueue,
	} {
		policy, err := NewCC(p)
		if err != nil {
			t.Errorf("NewCC(%s): %v", p, err)
			continue
		}
		if policy.Name() == "" {
			t.Errorf("NewCC(%s): empty name", p)
		}
	}
	if _, err := NewCC(Protocol("bogus")); err == nil {
		t.Error("bogus protocol should error")
	}
}

func TestUsesECN(t *testing.T) {
	if !UsesECN(ProtoDCTCP) || !UsesECN(ProtoL2DCT) {
		t.Error("DCTCP/L2DCT need ECN")
	}
	if UsesECN(ProtoTCP) || UsesECN(ProtoTRIM) || UsesECN(ProtoCUBIC) {
		t.Error("non-ECN protocols flagged")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.seed() != 1 {
		t.Errorf("default seed = %d", o.seed())
	}
	if o.reps(3) != 3 {
		t.Errorf("default reps = %d", o.reps(3))
	}
	o = Options{Seed: 9, Reps: 5}
	if o.seed() != 9 || o.reps(3) != 5 {
		t.Errorf("explicit options ignored: %d %d", o.seed(), o.reps(3))
	}
}
