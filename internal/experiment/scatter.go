package experiment

// ext-scatter: request-driven partition/aggregation. Unlike the
// pre-scheduled bursts of the reproduced figures, here the front-end
// actually fans a request out over persistent connections and the
// responses synchronize themselves (the request arrival is the trigger) —
// the closest model of the paper's production pattern. Repeated scatters
// grow the response connections' windows between rounds, so each round
// replays the window-inheritance hazard; the metric is the aggregation
// barrier latency (slowest worker).

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
)

const (
	scWorkers   = 24
	scRounds    = 50
	scInterval  = 20 * time.Millisecond
	scReqBytes  = 400
	scRespBytes = 48 << 10
	scThink     = 200 * time.Microsecond
	scHorizon   = 5 * time.Second
)

// ScatterRow is one protocol's scatter/gather outcome.
type ScatterRow struct {
	Protocol    Protocol
	Rounds      int
	MeanBarrier time.Duration
	P99Barrier  time.Duration
	MaxBarrier  time.Duration
	Timeouts    int
}

// ScatterResult holds ext-scatter.
type ScatterResult struct {
	Rows []ScatterRow
}

// Row returns the row for proto, or nil.
func (r *ScatterResult) Row(proto Protocol) *ScatterRow {
	for i := range r.Rows {
		if r.Rows[i].Protocol == proto {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunScatterGather executes the request-driven partition/aggregation
// comparison.
func RunScatterGather(protos []Protocol, opts Options) (*ScatterResult, error) {
	out := &ScatterResult{}
	for _, proto := range protos {
		row, err := runScatterCell(proto, opts.seed())
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

func runScatterCell(proto Protocol, seed int64) (*ScatterRow, error) {
	if _, err := NewCC(proto); err != nil {
		return nil, err
	}
	_ = seed
	sched := sim.NewScheduler()
	// ECN marking enabled at the standard 1 Gbps threshold so DCTCP has
	// its signal; non-ECT traffic (TCP, TRIM) is unaffected.
	star := topology.NewStar(sched, scWorkers, netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 100, ECNThresholdPackets: 20},
	})
	feStack := tcp.NewStack(star.Net, star.FrontEnd)
	collector := &httpapp.Collector{}
	var rpcs []*httpapp.RPC
	var respConns []*tcp.Conn
	for i, h := range star.Senders {
		srvStack := tcp.NewStack(star.Net, h)
		// Requests are tiny and flow front-end → server on plain TCP;
		// the protocol under test carries the responses.
		req, err := tcp.NewConn(tcp.Config{
			Sender: feStack, Receiver: srvStack,
			Flow:   netsim.FlowID(1000 + i),
			MinRTO: impairmentRTO,
		})
		if err != nil {
			return nil, err
		}
		resp, err := tcp.NewConn(tcp.Config{
			Sender: srvStack, Receiver: feStack,
			Flow:     netsim.FlowID(2000 + i),
			CC:       MustCCWithBaseRTT(proto, ksBaseRTT),
			ECN:      UsesECN(proto),
			MinRTO:   impairmentRTO,
			LinkRate: netsim.Gbps,
		})
		if err != nil {
			return nil, err
		}
		respConns = append(respConns, resp)
		rpcs = append(rpcs, httpapp.NewRPC(sched, req, resp, fmt.Sprintf("w%d", i+1), collector))
	}
	sg := httpapp.NewScatterGather(sched, rpcs, collector)
	var barriers metrics.Distribution
	for round := 0; round < scRounds; round++ {
		at := sim.At(100*time.Millisecond + time.Duration(round)*scInterval)
		if err := sg.Scatter(at, scReqBytes, scRespBytes, scThink, func(d time.Duration) {
			barriers.AddDuration(d)
		}); err != nil {
			return nil, err
		}
	}
	sched.RunUntil(sim.At(scHorizon))

	row := &ScatterRow{Protocol: proto, Rounds: barriers.Count()}
	row.MeanBarrier = secondsToDuration(barriers.Mean())
	row.P99Barrier = secondsToDuration(barriers.Percentile(99))
	row.MaxBarrier = secondsToDuration(barriers.Max())
	for _, c := range respConns {
		row.Timeouts += c.Stats().Timeouts
	}
	return row, nil
}

// WriteTables renders ext-scatter.
func (r *ScatterResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title: fmt.Sprintf("Extension: request-driven scatter/gather (%d workers × %d rounds, %dKB responses)",
			scWorkers, scRounds, scRespBytes>>10),
		Header: []string{"protocol", "rounds", "mean barrier", "P99 barrier", "max barrier", "timeouts"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			string(row.Protocol),
			fmt.Sprintf("%d", row.Rounds),
			row.MeanBarrier.Round(10 * time.Microsecond).String(),
			row.P99Barrier.Round(10 * time.Microsecond).String(),
			row.MaxBarrier.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", row.Timeouts),
		})
	}
	return t.Write(w)
}

var _ = register("ext-scatter",
	"Extension: request-driven scatter/gather - aggregation barrier latency across rounds",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunScatterGather([]Protocol{ProtoTCP, ProtoDCTCP, ProtoTRIM}, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
