package experiment

// Cell-grained memoization: every sweep runner decomposes its matrix
// into canonical cell specs and resolves each cell through cachedCell,
// so a warm re-run of a sweep where one axis value changed simulates
// only the affected cells and reassembles the rest byte-identically from
// the store.
//
// What goes into a cell key — and, more importantly, what doesn't:
//
//   - Coordinates and seed: everything that determines the cell's output
//     (protocol, discipline/policy names, concurrency, fault intensity,
//     buffer, reps, fidelity, and the cell's SplitSeed-derived seed).
//   - NOT Shards, worker counts, or Progress: the differential
//     *ShardInvariant tests prove results are byte-identical at any
//     shard count, the SplitSeed design makes them worker-independent,
//     and Progress hooks only observe code paths that already execute.
//     Normalizing these out of the key is what makes the cache shardable
//     across machines.
//   - NOT CSVDir: it changes which files are written, never the result.
//   - The code version (stamped VCS revision, or "dev"): any code change
//     invalidates every cell.
//
// Axis values carrying behavior (AQMDiscipline.Config funcs, custom
// FaultIntensity ladders) are identified in the spec by their exported
// fields and names; callers extending an axis must give new behavior a
// new name, the same contract the rendered tables already rely on.

import (
	"encoding/json"
	"sync"

	"tcptrim/internal/cellcache"
)

// cacheCodeVersion memoizes the build's code version: reading build info
// is not free and every cell key needs it.
var cacheCodeVersion = sync.OnceValue(cellcache.CodeVersion)

// cachedCell resolves one cell: a hit decodes the stored JSON into a
// fresh T, a miss runs compute and stores its result. With no store
// armed it is exactly compute. The bool reports whether the cell was
// computed (false = answered from cache), so callers can synthesize the
// replay events a cold run would have streamed.
func cachedCell[T any](opts Options, spec any, compute func() (*T, error)) (*T, bool, error) {
	if opts.Cache == nil {
		out, err := compute()
		return out, true, err
	}
	key := cellcache.Key(spec, cacheCodeVersion())
	if raw, ok := opts.Cache.Get(key); ok {
		out := new(T)
		if err := json.Unmarshal(raw, out); err == nil {
			return out, false, nil
		}
		// A corrupt payload (truncated disk file, foreign format) is
		// treated as a miss: recompute and overwrite it below.
	}
	out, err := compute()
	if err != nil {
		return nil, true, err
	}
	raw, err := json.Marshal(out)
	if err != nil {
		return nil, true, err
	}
	if err := opts.Cache.Put(key, raw); err != nil {
		return nil, true, err
	}
	return out, true, nil
}
