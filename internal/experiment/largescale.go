package experiment

import (
	"fmt"
	"io"
	"time"

	"math/rand"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/hybrid"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
	"tcptrim/internal/workload"
)

// Fig. 8 scenario: the two-level tree with 5–25 ToR switches × 42
// servers (210–1050 servers). Two servers per ToR run long flows for the
// whole test; the rest each send short trains inside a 0.5 s window, half
// with uniformly distributed start times and half exponentially
// distributed (Poisson-like arrivals). PT sizes follow the Fig. 2(a)
// mixture capped below the LPT regime. The TCP minimum RTO is 20 ms
// ("the throughput collapse of LPTs is alleviated by setting a smaller
// TCP timeout value (20 ms in our tests)").
const (
	lsWindow  = 500 * time.Millisecond
	lsStart   = 100 * time.Millisecond
	lsHorizon = 3 * time.Second
	lsRTO     = 20 * time.Millisecond
	lsLPTsPer = 2
	// Queue-free RTT server↔front-end: data (12+20)+(1.2+10)+(1.2+10) µs
	// + ACK ≈ 95 µs.
	lsBaseRTT = 95 * time.Microsecond
)

// LargeScaleRow is one (protocol, scale) cell of Fig. 8(b).
type LargeScaleRow struct {
	Protocol Protocol
	ToRs     int
	Servers  int
	// ACT is the mean SPT completion time across repetitions.
	ACT time.Duration
	// P99 is the 99th percentile of SPT completion times.
	P99 time.Duration
	// Timeouts counts SPT-connection RTO events.
	Timeouts int
	// Completed / Scheduled SPT counts across reps.
	Completed int
	Scheduled int
}

// LargeScaleResult holds Fig. 8(b): ACT of SPTs vs network scale.
type LargeScaleResult struct {
	Rows []LargeScaleRow
}

// Row returns the cell for (proto, tors), or nil.
func (r *LargeScaleResult) Row(proto Protocol, tors int) *LargeScaleRow {
	for i := range r.Rows {
		if r.Rows[i].Protocol == proto && r.Rows[i].ToRs == tors {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunLargeScale sweeps the tree size for each protocol, repeating each
// cell opts.Reps times (default 3; the paper used 100).
func RunLargeScale(protos []Protocol, torCounts []int, opts Options) (*LargeScaleResult, error) {
	for _, p := range protos {
		if _, err := NewCC(p); err != nil {
			return nil, err
		}
	}
	reps := opts.reps(3)
	fid, err := opts.fidelity()
	if err != nil {
		return nil, err
	}

	type cell struct {
		proto Protocol
		tors  int
	}
	var cells []cell
	for _, p := range protos {
		for _, tors := range torCounts {
			cells = append(cells, cell{p, tors})
		}
	}
	ctr := opts.cells(len(cells))
	rows, err := RunTrialsWorkers(len(cells), trialWorkers(opts.shards()), func(i int) (*LargeScaleRow, error) {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		c := cells[i]
		// Reps and fidelity shape the cell's output, so both are part of
		// the key; fidelity is keyed by its parsed, normalized name so an
		// explicit "packet" hits the same cells as the default.
		spec := struct {
			Family   string   `json:"family"`
			Protocol Protocol `json:"protocol"`
			ToRs     int      `json:"tors"`
			Reps     int      `json:"reps"`
			Fidelity string   `json:"fidelity"`
			Seed     int64    `json:"seed"`
		}{"largescale", c.proto, c.tors, reps, string(fid), opts.seed()}
		row, _, err := cachedCell(opts, spec, func() (*LargeScaleRow, error) {
			return runLargeScaleCell(c.proto, c.tors, reps, opts.seed(), opts.shards(), fid)
		})
		if err == nil {
			ctr.finished(fmt.Sprintf("%s/%d-tors", c.proto, c.tors))
		}
		return row, err
	})
	if err != nil {
		return nil, err
	}
	out := &LargeScaleResult{}
	for _, row := range rows {
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

func runLargeScaleCell(proto Protocol, tors, reps int, seed int64, shards int, fid hybrid.Fidelity) (*LargeScaleRow, error) {
	var acts metrics.Distribution
	row := &LargeScaleRow{Protocol: proto, ToRs: tors, Servers: tors * 42}
	for rep := 0; rep < reps; rep++ {
		if err := runLargeScaleOnce(proto, tors, seed+int64(rep)*7919+int64(tors), shards, fid, &acts, row); err != nil {
			return nil, err
		}
	}
	row.ACT = secondsToDuration(acts.Mean())
	row.P99 = secondsToDuration(acts.Percentile(99))
	return row, nil
}

func runLargeScaleOnce(proto Protocol, tors int, seed int64, shards int, fid hybrid.Fidelity, acts *metrics.Distribution, row *LargeScaleRow) error {
	rng := sim.NewRand(seed)
	env := newSimEnv(shards)
	sched := env.sched
	tree := topology.NewTwoLevelTree(sched, topology.TwoLevelTreeConfig{ToRs: tors})
	if err := env.partition(tree.Shard); err != nil {
		return err
	}
	fleet, err := hybrid.NewFleet(tree.Net, hybrid.FleetConfig{
		Senders:  tree.AllServers(),
		FrontEnd: tree.FrontEnd,
		NewCC:    func() tcp.CongestionControl { return MustCCWithBaseRTT(proto, lsBaseRTT) },
		Base: tcp.Config{
			MinRTO:   lsRTO,
			ECN:      UsesECN(proto),
			LinkRate: netsim.Gbps,
		},
		Fidelity: fid,
		Sync:     env.syncer(),
	})
	if err != nil {
		return err
	}
	// Fig. 2(a) sizes, but the measured trains are SPTs: cap at the LPT
	// boundary so a measured train is never itself a long flow.
	sizes := cappedSizes{inner: workload.PTSizes{}, max: workload.PTLargeBytes}

	perToR := len(tree.Servers[0])
	var sptFlows []int
	spt := &httpapp.Collector{}
	idx := 0
	for t := 0; t < tors; t++ {
		for s := 0; s < perToR; s++ {
			i := idx
			idx++
			if s < lsLPTsPer {
				if err := fleet.StartBackgroundFlow(i, sim.At(lsStart), concBackground); err != nil {
					return err
				}
				continue
			}
			// One measured SPT per server, starting inside the window:
			// even servers draw uniform start offsets, odd exponential.
			var offset time.Duration
			if s%2 == 0 {
				offset = time.Duration(rng.Int63n(int64(lsWindow)))
			} else {
				offset = time.Duration(rng.ExpFloat64() * float64(lsWindow) / 3)
				if offset > lsWindow {
					offset = lsWindow
				}
			}
			if err := fleet.ScheduleResponseAs(i, sim.At(lsStart+offset), sizes.Sample(rng), "spt", spt); err != nil {
				return err
			}
			sptFlows = append(sptFlows, i)
		}
	}
	// Stop once every SPT completed (a sync event: it reads every
	// shard's collector bucket).
	var watch func()
	watch = func() {
		if spt.Pending() == 0 {
			env.stop()
			return
		}
		env.syncAfter(sched, 10*time.Millisecond, watch)
	}
	if err := env.syncAt(sched, sim.At(lsStart+lsWindow), watch); err != nil {
		return err
	}
	if err := fleet.Arm(); err != nil {
		return err
	}
	env.runUntil(sim.At(lsHorizon))
	if err := fleet.Err(); err != nil {
		return err
	}

	for _, r := range spt.Responses() {
		acts.AddDuration(r.CompletionTime())
	}
	row.Completed += len(spt.Responses())
	row.Scheduled += len(sptFlows)
	for _, i := range sptFlows {
		row.Timeouts += fleet.Stats(i).Timeouts
	}
	return nil
}

// cappedSizes caps a size distribution at max bytes.
type cappedSizes struct {
	inner workload.SizeDist
	max   int
}

// Sample implements workload.SizeDist.
func (c cappedSizes) Sample(rng *rand.Rand) int {
	v := c.inner.Sample(rng)
	if v > c.max {
		return c.max
	}
	return v
}

// WriteTables renders Fig. 8(b).
func (r *LargeScaleResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  "Fig. 8(b): ACT of SPTs vs network scale",
		Header: []string{"protocol", "ToRs", "servers", "ACT", "P99", "timeouts", "completed"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			string(row.Protocol),
			fmt.Sprintf("%d", row.ToRs),
			fmt.Sprintf("%d", row.Servers),
			row.ACT.Round(10 * time.Microsecond).String(),
			row.P99.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", row.Timeouts),
			fmt.Sprintf("%d/%d", row.Completed, row.Scheduled),
		})
	}
	return t.Write(w)
}

var _ = register("fig8",
	"ACT of short trains vs network scale on the two-level tree, TCP vs TCP-TRIM (Fig. 8b)",
	[]string{"reps", "fidelity"},
	func(opts Options, w io.Writer) error {
		res, err := RunLargeScale([]Protocol{ProtoTCP, ProtoTRIM}, []int{5, 10, 15, 20, 25}, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
