package experiment

// ext-loss: robustness to non-congestive (random) packet loss — e.g.
// flaky optics. Delay-based TRIM's window control does not depend on loss
// as a signal, but loss still costs it recoveries like everyone else; the
// SACK extension recovers multi-loss windows without timeouts. The
// experiment sweeps a loss rate over the Fig. 4 ON/OFF workload and
// reports response completion behaviour for TCP and TCP-TRIM with and
// without SACK.

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
	"tcptrim/internal/workload"
)

// LossRow is one (variant, loss rate) cell.
type LossRow struct {
	Variant  string
	LossPct  float64
	ACT      time.Duration
	P99      time.Duration
	Timeouts int
	Retrans  int
	Complete int
	Total    int
}

// LossResult holds the ext-loss sweep.
type LossResult struct {
	Rows []LossRow
}

// Row returns the cell for (variant, lossPct), or nil.
func (r *LossResult) Row(variant string, lossPct float64) *LossRow {
	for i := range r.Rows {
		if r.Rows[i].Variant == variant && r.Rows[i].LossPct == lossPct {
			return &r.Rows[i]
		}
	}
	return nil
}

// LossVariants are the compared sender configurations.
var LossVariants = []string{"TCP", "TCP+SACK", "TCP-TRIM", "TCP-TRIM+SACK"}

// RunLossRobustness sweeps random loss rates over an ON/OFF response
// workload.
func RunLossRobustness(lossPcts []float64, opts Options) (*LossResult, error) {
	out := &LossResult{}
	for _, pct := range lossPcts {
		for _, variant := range LossVariants {
			row, err := runLossCell(variant, pct, opts.seed())
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, *row)
		}
	}
	return out, nil
}

func runLossCell(variant string, lossPct float64, seed int64) (*LossRow, error) {
	rng := sim.NewRand(seed)
	sched := sim.NewScheduler()
	star := topology.NewStar(sched, 3, topology.DefaultStarLink(200))
	// Loss on the shared bottleneck, deterministic per cell.
	star.Bottleneck.InjectLoss(lossPct/100, sim.NewRand(seed+int64(lossPct*100)))

	sack := variant == "TCP+SACK" || variant == "TCP-TRIM+SACK"
	trim := variant == "TCP-TRIM" || variant == "TCP-TRIM+SACK"
	fleet, err := httpapp.NewFleet(star.Net, httpapp.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC: func() tcp.CongestionControl {
			if trim {
				return MustCCWithBaseRTT(ProtoTRIM, ksBaseRTT)
			}
			return MustCC(ProtoTCP)
		},
		Base: tcp.Config{
			MinRTO:   10 * time.Millisecond,
			SACK:     sack,
			LinkRate: netsim.Gbps,
		},
	})
	if err != nil {
		return nil, err
	}
	const perServer = 150
	for _, srv := range fleet.Servers {
		trains := workload.ScheduleCount(rng, sim.At(100*time.Millisecond), perServer,
			workload.UniformSize{Min: 8 << 10, Max: 64 << 10},
			workload.ExponentialGap{Mean: 2 * time.Millisecond})
		if err := srv.ScheduleTrains(trains); err != nil {
			return nil, err
		}
	}
	sched.RunUntil(sim.At(20 * time.Second))

	row := &LossRow{Variant: variant, LossPct: lossPct, Total: 3 * perServer}
	cts := fleet.Collector.CompletionTimes(nil)
	row.Complete = cts.Count()
	row.ACT = secondsToDuration(cts.Mean())
	row.P99 = secondsToDuration(cts.Percentile(99))
	for _, c := range fleet.Conns {
		row.Timeouts += c.Stats().Timeouts
		row.Retrans += c.Stats().RetransSegs
	}
	return row, nil
}

// WriteTables renders ext-loss.
func (r *LossResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  "Extension: robustness to random (non-congestive) loss",
		Header: []string{"variant", "loss %", "ACT", "P99", "timeouts", "retrans", "completed"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Variant,
			fmt.Sprintf("%.1f", row.LossPct),
			row.ACT.Round(10 * time.Microsecond).String(),
			row.P99.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", row.Timeouts),
			fmt.Sprintf("%d", row.Retrans),
			fmt.Sprintf("%d/%d", row.Complete, row.Total),
		})
	}
	return t.Write(w)
}

var _ = register("ext-loss",
	"Extension: robustness to random non-congestive loss, with and without SACK",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunLossRobustness([]float64{0, 1, 4}, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
