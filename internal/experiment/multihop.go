package experiment

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
)

// Fig. 11 scenario: groups A and B (10 senders each) send long trains to
// the front-end; group C sends to group-D receivers; the two 10 Gbps
// links are the bottlenecks and group A crosses both.
const (
	mhFlowStart = 100 * time.Millisecond
	mhHorizon   = 1100 * time.Millisecond
	// Queue-free RTT of the longest (group A) path: data
	// (12+50)+(1.2+50)+(1.2+50) µs plus the ACK path ≈ 315 µs; groups B
	// and C differ by tens of µs, within the threshold's tolerance.
	mhBaseRTT = 315 * time.Microsecond
)

// MultiHopResult holds the Fig. 11 per-group mean sender throughputs.
type MultiHopResult struct {
	Protocol Protocol
	// MeanMbps maps group name ("A", "B", "C") to the mean per-sender
	// goodput in Mbps over the measurement window.
	MeanMbps map[string]float64
	Timeouts int
	Drops    int
}

// RunMultiHop executes the Fig. 11 dual-bottleneck test.
func RunMultiHop(proto Protocol, opts Options) (*MultiHopResult, error) {
	if _, err := NewCC(proto); err != nil {
		return nil, err
	}
	sched := sim.NewScheduler()
	m := topology.NewMultiHop(sched, topology.MultiHopConfig{})

	base := tcp.Config{
		MinRTO:   impairmentRTO, // the paper's 200 ms default
		ECN:      UsesECN(proto),
		LinkRate: netsim.Gbps,
	}

	// Groups A and B target the front-end through a shared fleet.
	fleetAB, err := httpapp.NewFleet(m.Net, httpapp.FleetConfig{
		Senders:  append(append([]*netsim.Host{}, m.GroupA...), m.GroupB...),
		FrontEnd: m.FrontEnd,
		NewCC:    func() tcp.CongestionControl { return MustCCWithBaseRTT(proto, mhBaseRTT) },
		Base:     base,
	})
	if err != nil {
		return nil, err
	}
	// Group C pairs with group D receivers one to one.
	var cConns []*tcp.Conn
	for i, h := range m.GroupC {
		conn, err := tcp.NewConn(tcp.Config{
			Sender:   tcp.NewStack(m.Net, h),
			Receiver: tcp.NewStack(m.Net, m.GroupD[i]),
			Flow:     netsim.FlowID(1000 + i),
			CC:       MustCCWithBaseRTT(proto, mhBaseRTT),
			MinRTO:   base.MinRTO,
			ECN:      base.ECN,
			LinkRate: base.LinkRate,
		})
		if err != nil {
			return nil, err
		}
		cConns = append(cConns, conn)
	}

	for _, srv := range fleetAB.Servers {
		if err := srv.StartBackgroundFlow(sim.At(mhFlowStart), concBackground); err != nil {
			return nil, err
		}
	}
	for _, conn := range cConns {
		conn := conn
		if _, err := sched.At(sim.At(mhFlowStart), func() {
			conn.SendTrain(concBackground, nil)
		}); err != nil {
			return nil, err
		}
	}
	sched.RunUntil(sim.At(mhHorizon))

	window := (mhHorizon - mhFlowStart).Seconds()
	meanOf := func(conns []*tcp.Conn) float64 {
		var sum float64
		for _, c := range conns {
			sum += float64(c.DeliveredBytes()) * 8 / window / 1e6
		}
		return sum / float64(len(conns))
	}
	n := len(m.GroupA)
	res := &MultiHopResult{
		Protocol: proto,
		MeanMbps: map[string]float64{
			"A": meanOf(fleetAB.Conns[:n]),
			"B": meanOf(fleetAB.Conns[n:]),
			"C": meanOf(cConns),
		},
	}
	res.Timeouts = fleetAB.TotalTimeouts()
	for _, c := range cConns {
		res.Timeouts += c.Stats().Timeouts
	}
	res.Drops = m.Bottleneck1.Queue().Stats().Dropped + m.Bottleneck2.Queue().Stats().Dropped
	return res, nil
}

// WriteTables renders the Fig. 11 outputs.
func (r *MultiHopResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  fmt.Sprintf("Fig. 11 multi-hop throughput (%s)", r.Protocol),
		Header: []string{"group", "mean per-sender Mbps"},
		Rows: [][]string{
			{"A (both bottlenecks)", fmt.Sprintf("%.1f", r.MeanMbps["A"])},
			{"B (second bottleneck)", fmt.Sprintf("%.1f", r.MeanMbps["B"])},
			{"C (first bottleneck)", fmt.Sprintf("%.1f", r.MeanMbps["C"])},
		},
		Caption: fmt.Sprintf("timeouts %d, bottleneck drops %d", r.Timeouts, r.Drops),
	}
	return t.Write(w)
}

var _ = register("fig11",
	"Multi-hop chain throughput, TCP vs TCP-TRIM (Fig. 11)",
	nil,
	func(opts Options, w io.Writer) error {
		for _, proto := range []Protocol{ProtoTCP, ProtoTRIM} {
			res, err := RunMultiHop(proto, opts)
			if err != nil {
				return err
			}
			if err := res.WriteTables(w); err != nil {
				return err
			}
		}
		return nil
	})
