package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunTrials is the experiment harness's unified parallel fan-out: it runs
// fn(i) for every i in [0, n) on a bounded pool of workers and returns the
// results in index order. Each trial is an independent simulation (its own
// scheduler, network, and rng), so trials share nothing and the fan-out is
// embarrassingly parallel.
//
// Guarantees, regardless of worker interleaving:
//   - results[i] is fn(i)'s value — ordering is deterministic;
//   - the returned error is the lowest-index trial error (and the partial
//     results slice is still returned alongside it);
//   - a panicking trial does not hang or kill the pool: the first panic is
//     re-raised on the caller's goroutine, annotated with its trial index,
//     after all workers have drained.
//
// Worker count is min(n, GOMAXPROCS); trials are handed out dynamically so
// uneven cell durations (large-scale sweeps mix tiny and huge topologies)
// still load-balance.
func RunTrials[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return RunTrialsWorkers(n, runtime.GOMAXPROCS(0), fn)
}

// RunTrialsWorkers is RunTrials with an explicit worker-pool bound, for
// fan-outs whose trials are themselves parallel (sharded simulations):
// pass trialWorkers(shards) so trials × shard goroutines stay within
// GOMAXPROCS. workers ≤ 0 is clamped to one.
func RunTrialsWorkers[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	panics := make([]any, n)

	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runTrial(i, fn, results, errs, panics)
			}
		}()
	}
	wg.Wait()

	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("experiment: trial %d panicked: %v", i, p))
		}
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// SplitSeed derives an independent per-trial seed from a base seed and a
// trial index (splitmix64 finalizer over base + (i+1)·golden-gamma).
// Deriving seeds this way — instead of seed+i or drawing from a shared rng
// in hand-out order — makes every trial's random stream a pure function of
// (base, i), so results cannot depend on how many workers ran the fan-out
// or which worker picked up which trial.
func SplitSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// RunSeededTrials is RunTrials with deterministic per-trial seeding: trial
// i receives SplitSeed(base, i) and must take all of its randomness from
// it. Same base, same results — byte-identical regardless of GOMAXPROCS.
func RunSeededTrials[T any](n int, base int64, fn func(i int, seed int64) (T, error)) ([]T, error) {
	return RunTrials(n, func(i int) (T, error) {
		return fn(i, SplitSeed(base, i))
	})
}

// RunSeededTrialsWorkers is RunSeededTrials with an explicit worker-pool
// bound (see RunTrialsWorkers).
func RunSeededTrialsWorkers[T any](n int, base int64, workers int, fn func(i int, seed int64) (T, error)) ([]T, error) {
	return RunTrialsWorkers(n, workers, func(i int) (T, error) {
		return fn(i, SplitSeed(base, i))
	})
}

// runTrial executes one trial, converting a panic into a recorded value so
// the sibling trials finish before it is re-raised.
func runTrial[T any](i int, fn func(i int) (T, error), results []T, errs []error, panics []any) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = r
		}
	}()
	results[i], errs[i] = fn(i)
}
