package experiment

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/hybrid"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
)

// fig8million pushes the Fig. 8 scenario to the concurrency the paper
// motivates but could not simulate packet-by-packet: a front-end holding
// a million persistent HTTP connections (Section I's "tens of thousands
// of persistent connections per front-end" scaled to the modern figure).
// Each connection sends one short response inside the release window —
// exactly the highly concurrent one-off-train regime where blind window
// inheritance hurts — while a couple of long trains per ToR keep the
// tree loaded. The hybrid fidelity layer makes this tractable: idle
// connections live as flow-store records, and only the instantaneously
// ON population is materialized. ArmRTOOnLoneTail is on: with
// single-train connections a lost lone tail segment has no later train
// to shake it loose, so the unarmed-RTO stall would otherwise censor
// the FCT tail.
const (
	mlStart   = 100 * time.Millisecond
	mlRTO     = 20 * time.Millisecond
	mlMaxSegs = 4
)

// MillionConfig sizes a fig8million run.
type MillionConfig struct {
	// ToRs × ServersPerToR × ConnsPerServer is the connection count.
	ToRs           int
	ServersPerToR  int
	ConnsPerServer int
	// LPTsPerToR long trains run for the whole test (background load).
	LPTsPerToR int
	// Window is the release window for the short responses.
	Window time.Duration
	// Drain bounds how long after the window the run may keep going.
	Drain time.Duration
}

// MillionFull is the headline million-connection configuration:
// 25 ToRs × 40 servers × 1000 connections.
var MillionFull = MillionConfig{
	ToRs: 25, ServersPerToR: 40, ConnsPerServer: 1000,
	LPTsPerToR: 1, Window: 3 * time.Second, Drain: 2 * time.Second,
}

// MillionSmoke is the CI-sized configuration: 5 ToRs × 20 servers × 100
// connections (10k flows), small enough for a seconds-long smoke run.
var MillionSmoke = MillionConfig{
	ToRs: 5, ServersPerToR: 20, ConnsPerServer: 100,
	LPTsPerToR: 1, Window: 1 * time.Second, Drain: 2 * time.Second,
}

// Flows returns the scheduled short-response connection count.
func (c MillionConfig) Flows() int {
	return c.ToRs*c.ServersPerToR*c.ConnsPerServer - c.ToRs*c.LPTsPerToR*c.ConnsPerServer
}

// MillionRow is one protocol's outcome.
type MillionRow struct {
	Protocol  Protocol
	Scheduled int
	Completed int
	// ACT / P99 / P999 summarize the short-response completion times;
	// above the metrics sample cap they come from the bounded sketch.
	ACT  time.Duration
	P99  time.Duration
	P999 time.Duration
	// Sketched reports whether the FCT distribution crossed the sample
	// cap into the streaming sketch.
	Sketched bool
	// Timeouts counts RTO events across all connections.
	Timeouts int
	// PeakLive is the high-water mark of simultaneously materialized
	// connections — the knob the hybrid layer exists to bound.
	PeakLive int
	// ArenaCap is the sender arenas' total hot-state slot count.
	ArenaCap int
	// HeapBytes / BytesPerConn report heap footprint after the run (GC'd);
	// wall-clock and per-connection cost land in NsPerConn. These are
	// machine-dependent and excluded from the deterministic table.
	HeapBytes    uint64
	BytesPerConn float64
	NsPerConn    float64
	Wall         time.Duration
}

// MillionResult holds the fig8million outcome.
type MillionResult struct {
	Config MillionConfig
	Conns  int
	Rows   []MillionRow
}

// RunMillion executes the scenario once per protocol. Fidelity defaults
// to hybrid here (unlike the pinned figures, whose default is packet);
// packet fidelity is refused above 100k connections — materializing a
// million packet-level connections is exactly what this runner exists to
// avoid.
func RunMillion(protos []Protocol, cfg MillionConfig, opts Options) (*MillionResult, error) {
	fid := hybrid.FidelityHybrid
	if opts.Fidelity != "" {
		var err error
		if fid, err = opts.fidelity(); err != nil {
			return nil, err
		}
	}
	conns := cfg.ToRs * cfg.ServersPerToR * cfg.ConnsPerServer
	if err := CheckFidelityScale(fid, conns); err != nil {
		return nil, err
	}
	res := &MillionResult{Config: cfg, Conns: conns}
	ctr := opts.cells(len(protos))
	for _, proto := range protos {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		if _, err := NewCC(proto); err != nil {
			return nil, err
		}
		row, err := runMillionOnce(proto, cfg, fid, opts)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
		ctr.finished(string(proto))
	}
	return res, nil
}

func runMillionOnce(proto Protocol, cfg MillionConfig, fid hybrid.Fidelity, opts Options) (*MillionRow, error) {
	start := time.Now()
	rng := sim.NewRand(opts.seed())
	env := newSimEnv(opts.shards())
	sched := env.sched
	tree := topology.NewTwoLevelTree(sched, topology.TwoLevelTreeConfig{
		ToRs: cfg.ToRs, ServersPerToR: cfg.ServersPerToR,
	})
	if err := env.partition(tree.Shard); err != nil {
		return nil, err
	}
	fleet, err := hybrid.NewFleet(tree.Net, hybrid.FleetConfig{
		Senders:        tree.AllServers(),
		ConnsPerSender: cfg.ConnsPerServer,
		FrontEnd:       tree.FrontEnd,
		NewCC:          func() tcp.CongestionControl { return MustCCWithBaseRTT(proto, lsBaseRTT) },
		Base: tcp.Config{
			MinRTO:           mlRTO,
			ECN:              UsesECN(proto),
			LinkRate:         netsim.Gbps,
			ArmRTOOnLoneTail: true,
		},
		Fidelity: fid,
		Sync:     env.syncer(),
	})
	if err != nil {
		return nil, err
	}

	// The first LPTsPerToR servers of each ToR dedicate all their
	// connections' hosts to background long trains (one per server);
	// every connection of the remaining servers sends one short train of
	// 1–4 segments at a uniform instant inside the window.
	coll := &httpapp.Collector{}
	opts.tapResponses(coll)
	row := &MillionRow{Protocol: proto}
	perServer := cfg.ConnsPerServer
	idx := 0
	for t := 0; t < cfg.ToRs; t++ {
		for s := 0; s < cfg.ServersPerToR; s++ {
			if s < cfg.LPTsPerToR {
				// One background train on the server's first connection;
				// its remaining conns stay idle forever (pure store load).
				if err := fleet.StartBackgroundFlow(idx*perServer, sim.At(mlStart), concBackground); err != nil {
					return nil, err
				}
				idx++
				continue
			}
			for k := 0; k < perServer; k++ {
				i := idx*perServer + k
				at := sim.At(mlStart + time.Duration(rng.Int63n(int64(cfg.Window))))
				bytes := (1 + int(rng.Int63n(mlMaxSegs))) * tcp.DefaultMSS
				if err := fleet.ScheduleResponseAs(i, at, bytes, "pt", coll); err != nil {
					return nil, err
				}
				row.Scheduled++
			}
			idx++
		}
	}

	// Stop as soon as every short response completed.
	var watch func()
	watch = func() {
		if coll.Pending() == 0 {
			env.stop()
			return
		}
		env.syncAfter(sched, 10*time.Millisecond, watch)
	}
	if err := env.syncAt(sched, sim.At(mlStart+cfg.Window), watch); err != nil {
		return nil, err
	}
	if err := fleet.Arm(); err != nil {
		return nil, err
	}
	env.runUntil(sim.At(mlStart + cfg.Window + cfg.Drain))
	if err := fleet.Err(); err != nil {
		return nil, err
	}

	var fct metrics.Distribution
	for _, r := range coll.Responses() {
		fct.AddDuration(r.CompletionTime())
	}
	row.Completed = fct.Count()
	row.ACT = secondsToDuration(fct.Mean())
	row.P99 = secondsToDuration(fct.Percentile(99))
	row.P999 = secondsToDuration(fct.Percentile(99.9))
	row.Sketched = fct.Sketched()
	row.Timeouts = fleet.TotalTimeouts()
	if opts.Progress != nil {
		rb := fleet.Retransmissions()
		opts.publish(ProgressEvent{Kind: "retrans", Name: string(proto), Retrans: &rb})
		opts.publish(ProgressEvent{Kind: "fct", Name: string(proto), Dist: fct.Snapshot()})
	}
	row.PeakLive = fleet.PeakLive()
	row.ArenaCap = fleet.ArenaCap()
	row.Wall = time.Since(start)
	row.NsPerConn = float64(row.Wall.Nanoseconds()) / float64(fleet.NumFlows())
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	row.HeapBytes = ms.HeapAlloc
	row.BytesPerConn = float64(ms.HeapAlloc) / float64(fleet.NumFlows())
	return row, nil
}

// WriteTables renders fig8million: the deterministic outcome table, then
// a resource line (heap, wall clock) that varies by machine.
func (r *MillionResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title: fmt.Sprintf("fig8million: %d persistent connections (%d ToRs × %d servers × %d conns)",
			r.Conns, r.Config.ToRs, r.Config.ServersPerToR, r.Config.ConnsPerServer),
		Header: []string{"protocol", "completed", "ACT", "P99", "P99.9", "timeouts", "peak live", "arena slots", "sketched"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			string(row.Protocol),
			fmt.Sprintf("%d/%d", row.Completed, row.Scheduled),
			row.ACT.Round(10 * time.Microsecond).String(),
			row.P99.Round(10 * time.Microsecond).String(),
			row.P999.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", row.Timeouts),
			fmt.Sprintf("%d", row.PeakLive),
			fmt.Sprintf("%d", row.ArenaCap),
			fmt.Sprintf("%t", row.Sketched),
		})
	}
	if err := t.Write(w); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s resources: heap %.1f MB (%.0f B/conn), wall %v (%.0f ns/conn)\n",
			row.Protocol, float64(row.HeapBytes)/(1<<20), row.BytesPerConn,
			row.Wall.Round(time.Millisecond), row.NsPerConn); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

var _ = register("fig8million",
	"Million-connection Fig. 8-style release on the hybrid fidelity layer: 25 ToRs x 40 servers x 1000 conns",
	[]string{"fidelity"},
	func(opts Options, w io.Writer) error {
		res, err := RunMillion([]Protocol{ProtoTCP, ProtoTRIM}, MillionFull, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})

var _ = register("fig8million-smoke",
	"CI slice of fig8million: 10k connections through the hybrid flow store",
	[]string{"fidelity"},
	func(opts Options, w io.Writer) error {
		res, err := RunMillion([]Protocol{ProtoTCP, ProtoTRIM}, MillionSmoke, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
