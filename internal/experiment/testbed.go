package experiment

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
	"tcptrim/internal/workload"
)

// Section IV.D "real implementation", reproduced in simulation with the
// testbed's parameters (see the substitution table in DESIGN.md).
//
// Fig. 13(a): 100 Mbps links; two machines send large files persistently;
// a third sends 100 responses whose mean size sweeps 32 KB – 1 MB (±10%);
// the metric is the average response completion time (ARCT).
//
// Fig. 13(b)–(e): 4 machines send 4000 responses total to the front-end
// over 1 Gbps links with the Fig. 2 size/interval distributions; the
// samples of 64–256 KB responses and the CDF of all completion times are
// reported for CUBIC, Reno, and TCP-TRIM.
const (
	tbLANDelay = 100 * time.Microsecond
	tbRTO      = 200 * time.Millisecond // Linux default floor
	// Queue-free RTT on the 100 Mbps star: data 2×(120+100) µs + ACK
	// 2×(3.2+100) µs ≈ 646 µs.
	tbBaseRTT100M = 650 * time.Microsecond
	// On the 1 Gbps star: ≈ 325 µs.
	tbBaseRTT1G = 325 * time.Microsecond

	tbARCTResponses = 100
	tbARCTThinkTime = 2 * time.Millisecond

	tbWebServers       = 4
	tbWebResponsesEach = 1000
	tbWebWindow        = 10 * time.Second
	tbWebHorizon       = 30 * time.Second
	tbSampleLo         = 64 << 10
	tbSampleHi         = 256 << 10
	tbGoodThreshold    = 25 * time.Millisecond
	tbBadThreshold     = 50 * time.Millisecond
	tbExtremeThreshold = 250 * time.Millisecond
	tbBufferPackets    = 100
)

// ARCTRow is one (protocol, mean size) cell of Fig. 13(a).
type ARCTRow struct {
	Protocol  Protocol
	MeanBytes int
	ARCT      time.Duration
	Timeouts  int
}

// ARCTResult holds Fig. 13(a).
type ARCTResult struct {
	Rows []ARCTRow
}

// Row returns the cell for (proto, meanBytes), or nil.
func (r *ARCTResult) Row(proto Protocol, meanBytes int) *ARCTRow {
	for i := range r.Rows {
		if r.Rows[i].Protocol == proto && r.Rows[i].MeanBytes == meanBytes {
			return &r.Rows[i]
		}
	}
	return nil
}

// ARCTMeanSizes is the paper's response-size sweep.
var ARCTMeanSizes = []int{32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}

// RunARCT executes the Fig. 13(a) sweep.
func RunARCT(protos []Protocol, meanSizes []int, opts Options) (*ARCTResult, error) {
	for _, p := range protos {
		if _, err := NewCC(p); err != nil {
			return nil, err
		}
	}
	out := &ARCTResult{}
	for _, proto := range protos {
		for _, mean := range meanSizes {
			row, err := runARCTCell(proto, mean, opts.seed(), opts.shards())
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, *row)
		}
	}
	return out, nil
}

func runARCTCell(proto Protocol, meanBytes int, seed int64, shards int) (*ARCTRow, error) {
	rng := sim.NewRand(seed + int64(meanBytes))
	env := newSimEnv(shards)
	sched := env.sched
	link := netsim.LinkConfig{
		Rate:  100 * netsim.Mbps,
		Delay: tbLANDelay,
		Queue: netsim.QueueConfig{CapPackets: tbBufferPackets},
	}
	star := topology.NewStar(sched, 3, link)
	if err := env.partition(star.Shard); err != nil {
		return nil, err
	}
	fleet, err := httpapp.NewFleet(star.Net, httpapp.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC:    func() tcp.CongestionControl { return MustCCWithBaseRTT(proto, tbBaseRTT100M) },
		Base: tcp.Config{
			MinRTO:   tbRTO,
			ECN:      UsesECN(proto),
			LinkRate: 100 * netsim.Mbps,
		},
	})
	if err != nil {
		return nil, err
	}
	// Two background large-file transfers.
	for i := 0; i < 2; i++ {
		if err := fleet.Servers[i].StartBackgroundFlow(sim.At(50*time.Millisecond), concBackground); err != nil {
			return nil, err
		}
	}
	// The third machine sends its responses sequentially: the next is
	// released a think-time after the previous completes. The chain lives
	// entirely on that connection's shard (rng draws included); when it
	// finishes it raises done, and a sync watch — the only place a
	// sharded run may stop globally — ends the run.
	responses := &httpapp.Collector{}
	srv := httpapp.NewServer(fleet.Conns[2].Scheduler(), fleet.Conns[2], "responses", responses)
	sizes := workload.JitteredSize{Mean: meanBytes, Jitter: 0.1}
	csched := fleet.Conns[2].Scheduler()
	var sendNext func()
	sent := 0
	done := false
	sendNext = func() {
		if sent >= tbARCTResponses {
			done = true
			return
		}
		sent++
		fleet.Conns[2].SendTrain(sizes.Sample(rng), func(r tcp.TrainResult) {
			responses.Add("responses", 0, r)
			csched.After(tbARCTThinkTime, sendNext)
		})
	}
	if _, err := csched.At(sim.At(100*time.Millisecond), sendNext); err != nil {
		return nil, err
	}
	var watch func()
	watch = func() {
		if done {
			env.stop()
			return
		}
		env.syncAfter(sched, 10*time.Millisecond, watch)
	}
	if err := env.syncAt(sched, sim.At(100*time.Millisecond), watch); err != nil {
		return nil, err
	}
	_ = srv
	env.runUntil(sim.At(10 * time.Minute)) // bounded by the done watch

	var d metrics.Distribution
	for _, r := range responses.Responses() {
		d.AddDuration(r.CompletionTime())
	}
	return &ARCTRow{
		Protocol:  proto,
		MeanBytes: meanBytes,
		ARCT:      secondsToDuration(d.Mean()),
		Timeouts:  fleet.Conns[2].Stats().Timeouts,
	}, nil
}

// WriteTables renders Fig. 13(a).
func (r *ARCTResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  "Fig. 13(a): ARCT vs mean response size (100 Mbps testbed)",
		Header: []string{"protocol", "mean size", "ARCT", "timeouts"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			string(row.Protocol),
			fmt.Sprintf("%dKB", row.MeanBytes>>10),
			row.ARCT.Round(100 * time.Microsecond).String(),
			fmt.Sprintf("%d", row.Timeouts),
		})
	}
	return t.Write(w)
}

// WebServiceRow summarizes one protocol's Fig. 13(b)–(e) outcome.
type WebServiceRow struct {
	Protocol Protocol
	// Completed of Scheduled responses.
	Completed, Scheduled int
	// Band metrics for 64–256 KB responses (the scatter plots).
	BandCount     int
	BandMax       time.Duration
	BandOver25ms  int
	BandOver50ms  int
	BandOver250ms int
	// CDF metrics over all responses (Fig. 13(e)).
	FractionUnder25ms float64
	P50, P99          time.Duration
	Timeouts          int
}

// WebServiceResult holds Fig. 13(b)–(e).
type WebServiceResult struct {
	Rows []WebServiceRow
}

// Row returns the row for proto, or nil.
func (r *WebServiceResult) Row(proto Protocol) *WebServiceRow {
	for i := range r.Rows {
		if r.Rows[i].Protocol == proto {
			return &r.Rows[i]
		}
	}
	return nil
}

// WebServiceProtocols is the paper's Fig. 13(b)–(e) comparison set.
var WebServiceProtocols = []Protocol{ProtoCUBIC, ProtoTCP, ProtoTRIM}

// RunWebService executes the Fig. 13(b)–(e) web-service scenario.
func RunWebService(protos []Protocol, opts Options) (*WebServiceResult, error) {
	out := &WebServiceResult{}
	for _, proto := range protos {
		row, err := runWebServiceCell(proto, opts.seed(), opts.shards())
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

func runWebServiceCell(proto Protocol, seed int64, shards int) (*WebServiceRow, error) {
	if _, err := NewCC(proto); err != nil {
		return nil, err
	}
	rng := sim.NewRand(seed)
	env := newSimEnv(shards)
	sched := env.sched
	star := topology.NewStar(sched, tbWebServers, netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: tbLANDelay,
		Queue: netsim.QueueConfig{CapPackets: tbBufferPackets},
	})
	if err := env.partition(star.Shard); err != nil {
		return nil, err
	}
	fleet, err := httpapp.NewFleet(star.Net, httpapp.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC:    func() tcp.CongestionControl { return MustCCWithBaseRTT(proto, tbBaseRTT1G) },
		Base: tcp.Config{
			MinRTO:   tbRTO,
			ECN:      UsesECN(proto),
			LinkRate: netsim.Gbps,
		},
	})
	if err != nil {
		return nil, err
	}
	scheduled := 0
	for _, srv := range fleet.Servers {
		trains := workload.ScheduleCount(rng, sim.At(100*time.Millisecond), tbWebResponsesEach,
			workload.PTSizes{}, workload.PTGaps{})
		if err := srv.ScheduleTrains(trains); err != nil {
			return nil, err
		}
		scheduled += len(trains)
	}
	var watch func()
	watch = func() {
		if fleet.Collector.Pending() == 0 {
			env.stop()
			return
		}
		env.syncAfter(sched, 10*time.Millisecond, watch)
	}
	if err := env.syncAt(sched, sim.At(tbWebWindow), watch); err != nil {
		return nil, err
	}
	env.runUntil(sim.At(tbWebHorizon))

	row := &WebServiceRow{Protocol: proto, Scheduled: scheduled}
	var all metrics.Distribution
	for _, r := range fleet.Collector.Responses() {
		ct := r.CompletionTime()
		all.AddDuration(ct)
		row.Completed++
		if r.Bytes >= tbSampleLo && r.Bytes <= tbSampleHi {
			row.BandCount++
			if ct > row.BandMax {
				row.BandMax = ct
			}
			if ct > tbGoodThreshold {
				row.BandOver25ms++
			}
			if ct > tbBadThreshold {
				row.BandOver50ms++
			}
			if ct > tbExtremeThreshold {
				row.BandOver250ms++
			}
		}
	}
	row.FractionUnder25ms = all.FractionBelow(tbGoodThreshold.Seconds())
	row.P50 = secondsToDuration(all.Percentile(50))
	row.P99 = secondsToDuration(all.Percentile(99))
	row.Timeouts = fleet.TotalTimeouts()
	return row, nil
}

// WriteTables renders Fig. 13(b)–(e).
func (r *WebServiceResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title: "Fig. 13(b)-(e): web-service response completion times",
		Header: []string{"protocol", "completed", "64-256KB max", ">25ms", ">50ms", ">250ms",
			"P50", "P99", "frac<=25ms", "timeouts"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			string(row.Protocol),
			fmt.Sprintf("%d/%d", row.Completed, row.Scheduled),
			row.BandMax.Round(100 * time.Microsecond).String(),
			fmt.Sprintf("%d/%d", row.BandOver25ms, row.BandCount),
			fmt.Sprintf("%d", row.BandOver50ms),
			fmt.Sprintf("%d", row.BandOver250ms),
			row.P50.Round(10 * time.Microsecond).String(),
			row.P99.Round(100 * time.Microsecond).String(),
			fmt.Sprintf("%.3f", row.FractionUnder25ms),
			fmt.Sprintf("%d", row.Timeouts),
		})
	}
	return t.Write(w)
}

var _ = register("fig13a",
	"ARCT vs mean response size on the 100 Mbps testbed, CUBIC vs TCP-TRIM (Fig. 13a)",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunARCT([]Protocol{ProtoCUBIC, ProtoTRIM}, ARCTMeanSizes, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})

var _ = register("fig13",
	"Web-service response completion times across protocols (Fig. 13b-e)",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunWebService(WebServiceProtocols, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
