package experiment

import (
	"runtime"
	"time"

	"tcptrim/internal/hybrid"
	"tcptrim/internal/sim"
)

// simEnv abstracts over the sequential scheduler and the sharded group so
// a runner is written once and honors Options.Shards. With one shard it
// is a thin wrapper around sim.NewScheduler() — the historical code path,
// byte for byte. With more it owns a ShardGroup whose shard 0 plays the
// old scheduler's role (topologies place the bottleneck and front-end
// there), and global reads — watch loops that poll a collector and stop
// the run — become sync events so they observe exactly the state a single
// core would present.
type simEnv struct {
	group *sim.ShardGroup
	sched *sim.Scheduler
}

// newSimEnv builds the environment for the given shard count (≤1 →
// sequential).
func newSimEnv(shards int) *simEnv {
	if shards > 1 {
		g := sim.NewShardGroup(shards)
		return &simEnv{group: g, sched: g.Shard(0)}
	}
	return &simEnv{sched: sim.NewScheduler()}
}

// partition applies a topology's shard plan (its Shard method) when the
// env is sharded; sequential runs skip it. Call after the topology is
// fully built and before any tcp.Conn is created, so connections capture
// their hosts' final schedulers.
func (e *simEnv) partition(shard func(*sim.ShardGroup) error) error {
	if e.group == nil {
		return nil
	}
	return shard(e.group)
}

// syncAt schedules fn at t on shard s as a global event: under sharding
// every shard is quiesced at t when fn runs, so it may read cross-shard
// state (collector Pending, delivered-byte totals) and call stop.
func (e *simEnv) syncAt(s *sim.Scheduler, t sim.Time, fn func()) error {
	if e.group == nil {
		_, err := s.At(t, fn)
		return err
	}
	_, err := e.group.SyncAt(s, t, fn)
	return err
}

// syncAfter is syncAt relative to shard s's current instant; it is only
// legal from setup or from inside another sync event.
func (e *simEnv) syncAfter(s *sim.Scheduler, d time.Duration, fn func()) {
	if e.group == nil {
		s.After(d, fn)
		return
	}
	e.group.SyncAfter(s, d, fn)
}

// syncer exposes the shard group as a hybrid fleet's sync-point
// provider. The explicit nil for sequential runs matters: the fleet
// checks its Sync field against nil, and a typed-nil *ShardGroup would
// not compare equal.
func (e *simEnv) syncer() hybrid.Syncer {
	if e.group == nil {
		return nil
	}
	return e.group
}

// stop halts the run; under sharding it is only legal from a sync event.
func (e *simEnv) stop() {
	if e.group == nil {
		e.sched.Stop()
		return
	}
	e.group.Stop()
}

// runUntil executes the simulation to the horizon (or stop).
func (e *simEnv) runUntil(t sim.Time) {
	if e.group == nil {
		e.sched.RunUntil(t)
		return
	}
	e.group.RunUntil(t)
}

// trialWorkers is the worker-pool size for trial fan-outs when every
// trial runs a group of the given shard count: GOMAXPROCS divided by the
// shards each trial will occupy, floored at one, so concurrent trials ×
// shard goroutines never oversubscribe the machine.
func trialWorkers(shards int) int {
	if shards < 1 {
		shards = 1
	}
	w := runtime.GOMAXPROCS(0) / shards
	if w < 1 {
		w = 1
	}
	return w
}
