package experiment

// Differential fidelity proof at the experiment layer: the figures that
// honor Options.Fidelity must render byte-identical tables at hybrid
// fidelity — across every shard count — as the packet-level sequential
// run. Hybrid fidelity changes how idle connections are represented, not
// what happens on the wire, so every completion time, timeout count, and
// sampled series must survive the demote/materialize cycles exactly.

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// renderFidelitySweep renders one experiment at fidelity {packet,
// hybrid} × shards {1, 2, 4} and fails on the first byte difference
// against the packet-level sequential baseline.
func renderFidelitySweep(t *testing.T, name string, render func(opts Options) ([]byte, error)) {
	t.Helper()
	var base []byte
	for _, fid := range []string{"packet", "hybrid"} {
		for _, k := range []int{1, 2, 4} {
			out, err := render(Options{Seed: 7, Shards: k, Fidelity: fid})
			if err != nil {
				t.Fatalf("%s fidelity=%s shards=%d: %v", name, fid, k, err)
			}
			if fid == "packet" && k == 1 {
				base = out
				continue
			}
			if !bytes.Equal(base, out) {
				t.Errorf("%s diverges at fidelity=%s shards=%d:\n-- packet/1 --\n%s\n-- %s/%d --\n%s",
					name, fid, k, base, fid, k, out)
			}
		}
	}
}

func TestImpairmentHybridInvariant(t *testing.T) {
	renderFidelitySweep(t, "impairment", func(opts Options) ([]byte, error) {
		res, err := RunImpairment(ProtoTRIM, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := res.WriteTables(&buf); err != nil {
			return nil, err
		}
		// Fold the traced series in: the window trace reads through the
		// conn/store boundary, so a stale store value cannot hide.
		fmt.Fprintf(&buf, "cwnd=%v goodput=%v\n",
			res.TracedCwnd.Points(), res.TracedThroughput.Points())
		return buf.Bytes(), nil
	})
}

func TestLargeScaleHybridInvariant(t *testing.T) {
	renderFidelitySweep(t, "largescale", func(opts Options) ([]byte, error) {
		opts.Reps = 1
		res, err := RunLargeScale([]Protocol{ProtoTRIM}, []int{3}, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	})
}

// TestMillionSmoke runs the CI-sized fig8million configuration and
// asserts the scale layer held: everything completed, the materialized
// population stayed orders of magnitude below the fleet, and the heap
// footprint stayed inside the per-connection budget.
func TestMillionSmoke(t *testing.T) {
	res, err := RunMillion([]Protocol{ProtoTRIM}, MillionSmoke, Options{})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.Completed != row.Scheduled || row.Scheduled != MillionSmoke.Flows() {
		t.Fatalf("completed %d of %d scheduled (want %d)",
			row.Completed, row.Scheduled, MillionSmoke.Flows())
	}
	if row.PeakLive == 0 || row.PeakLive > res.Conns/10 {
		t.Errorf("peak live %d of %d conns — hybrid layer not folding", row.PeakLive, res.Conns)
	}
	if row.ArenaCap != row.PeakLive {
		t.Errorf("arena slots %d != peak live %d", row.ArenaCap, row.PeakLive)
	}
	// Heap budget: flow store + timeline + collector are the O(conns)
	// terms, a few hundred bytes each; 2 KB/conn plus 16 MB of fixed
	// overhead (topology, schedulers, buffers) is a generous ceiling that
	// a packet-level fleet (tens of KB per conn) blows immediately.
	budget := uint64(16<<20) + uint64(2<<10)*uint64(res.Conns)
	if row.HeapBytes > budget {
		t.Errorf("heap %d B exceeds budget %d B (%.0f B/conn)",
			row.HeapBytes, budget, row.BytesPerConn)
	}
}

// TestMillionPacketRefused pins the guard: the full configuration at
// packet fidelity must refuse to run rather than materialize a million
// connections.
func TestMillionPacketRefused(t *testing.T) {
	_, err := RunMillion([]Protocol{ProtoTRIM}, MillionFull, Options{Fidelity: "packet"})
	if err == nil || !strings.Contains(err.Error(), "packet fidelity") {
		t.Errorf("err = %v", err)
	}
}

// TestMillionSmokeShardInvariant: the fig8million table is deterministic
// across shard counts like every other figure (the resource lines are
// not, so only the table is compared).
func TestMillionSmokeShardInvariant(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		// Still valid sequentially, just slower; run anyway.
		t.Log("single-CPU host: shard sweep runs sequentially")
	}
	var base string
	for _, k := range []int{1, 2} {
		res, err := RunMillion([]Protocol{ProtoTRIM}, MillionSmoke, Options{Shards: k})
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		var buf bytes.Buffer
		if err := res.WriteTables(&buf); err != nil {
			t.Fatal(err)
		}
		table := buf.String()[:strings.Index(buf.String(), "\n\n")]
		if k == 1 {
			base = table
			continue
		}
		if table != base {
			t.Errorf("fig8million table diverges at shards=%d:\n%s\nvs\n%s", k, base, table)
		}
	}
}
