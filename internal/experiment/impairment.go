package experiment

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/hybrid"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
	"tcptrim/internal/workload"
)

// Section II.B scenario constants: five servers behind a 100-packet
// switch buffer on 1 Gbps / 50 µs links; 200 responses of 2–10 KB per
// server from 0.1 s with 1 ms mean spacing; one long train (>128 KB) per
// server at 0.5 s; 200 ms RTO.
const (
	impairmentServers    = 5
	impairmentBuffer     = 100
	impairmentResponses  = 200
	impairmentLPTBytes   = 200 << 10
	impairmentRespMin    = 2 << 10
	impairmentRespMax    = 10 << 10
	impairmentRespMean   = time.Millisecond
	impairmentRespStart  = 100 * time.Millisecond
	impairmentLPTStart   = 500 * time.Millisecond
	impairmentHorizon    = 1500 * time.Millisecond
	impairmentRTO        = 200 * time.Millisecond
	impairmentSampleStep = time.Millisecond
)

// ImpairmentResult holds the Fig. 4 (TCP) / Fig. 6 (TCP-TRIM) outputs:
// the traced connection's throughput and window evolution, per-connection
// timeout counts, and the bottleneck queue behavior.
type ImpairmentResult struct {
	Protocol Protocol
	// TimeoutsPerConn is indexed by connection (server) number - 1.
	TimeoutsPerConn []int
	// TracedThroughput is connection 5's goodput in Mbps, 10 ms bins
	// (Fig. 4(a) / part of Fig. 6(a)).
	TracedThroughput *metrics.Series
	// TotalThroughput is the front-end's aggregate goodput in Mbps,
	// 10 ms bins (Fig. 6(a)).
	TotalThroughput *metrics.Series
	// TracedCwnd is connection 5's window in segments, 1 ms samples
	// (Fig. 4(b) / Fig. 6(b)).
	TracedCwnd *metrics.Series
	// CwndAtLPTStart is each connection's inherited window when the long
	// train is released.
	CwndAtLPTStart []float64
	// QueueMax / QueueDrops summarize the bottleneck queue. QueueDrops are
	// congestion drops only (tail, AQM early, and AQM head — split in
	// QueueStats); fault-layer losses appear in BottleneckFaults so the
	// two are never conflated.
	QueueMax   int
	QueueDrops int
	// QueueStats is the bottleneck queue's full ledger, including the
	// drop split by cause and the discipline's mark count.
	QueueStats netsim.QueueStats
	// BottleneckFaults are the bottleneck pipe's fault-injection counters
	// (all zero unless a caller armed injectors on the star's bottleneck).
	BottleneckFaults netsim.PipeStats
	// LPTCompletion is each connection's long-train completion time.
	LPTCompletion []time.Duration
	// AllDoneBy is when the last response or long train completed.
	AllDoneBy sim.Time
}

// TotalTimeouts sums timeouts across connections.
func (r *ImpairmentResult) TotalTimeouts() int {
	total := 0
	for _, n := range r.TimeoutsPerConn {
		total += n
	}
	return total
}

// RunImpairment executes the Section II.B many-to-one scenario under the
// given protocol.
func RunImpairment(proto Protocol, opts Options) (*ImpairmentResult, error) {
	if _, err := NewCC(proto); err != nil {
		return nil, err
	}
	return runImpairmentCustom(string(proto), func() tcp.CongestionControl { return MustCC(proto) }, opts)
}

// impairmentSnapshot is the cached payload of one fig4/fig6 run: the
// result (series included — Series round-trips exactly through JSON)
// plus the summary events a cold run publishes at completion, so a warm
// run can replay them to SSE watchers.
type impairmentSnapshot struct {
	Result  *ImpairmentResult        `json:"result"`
	Retrans httpapp.RetransBreakdown `json:"retrans"`
	FCT     *metrics.Snapshot        `json:"fct"`
}

// runImpairmentCustom is RunImpairment for an arbitrary policy
// constructor (used by the extension experiments). The whole scenario is
// one cache cell: there is no axis to decompose, but a warm re-run (say,
// an aqm sweep over fig6 driven by the service) still skips the
// simulation entirely.
func runImpairmentCustom(label string, newCC func() tcp.CongestionControl, opts Options) (*ImpairmentResult, error) {
	fid, err := opts.fidelity()
	if err != nil {
		return nil, err
	}
	spec := struct {
		Family   string `json:"family"`
		Label    string `json:"label"`
		AQM      string `json:"aqm,omitempty"`
		Fidelity string `json:"fidelity"`
		Seed     int64  `json:"seed"`
	}{"impairment", label, opts.AQM, string(fid), opts.seed()}
	snap, computed, err := cachedCell(opts, spec, func() (*impairmentSnapshot, error) {
		return runImpairmentSim(label, newCC, fid, opts)
	})
	if err != nil {
		return nil, err
	}
	res := snap.Result
	if !computed && opts.Progress != nil {
		// Replay for watchers what a cold run streamed live: the retained
		// series (whole series in sequence rather than interleaved by
		// timestamp — consumers demultiplex on Name) and the completion
		// summaries. Samplers whose output the result does not retain
		// (queue depth, running response count) stream on cold runs only.
		opts.replaySeries("traced-goodput-mbps", res.TracedThroughput)
		opts.replaySeries("total-goodput-mbps", res.TotalThroughput)
		opts.replaySeries("cwnd-segments", res.TracedCwnd)
		rb := snap.Retrans
		opts.publish(ProgressEvent{Kind: "retrans", Name: label, Retrans: &rb})
		opts.publish(ProgressEvent{Kind: "fct", Name: label, Dist: snap.FCT})
	}
	// CSV export runs on cold and warm paths alike: CSVDir is not part of
	// the cell key — it changes which files are written, never the result.
	prefix := "impairment-" + label
	if err := saveSeriesCSV(opts, prefix+"-cwnd", "segments", res.TracedCwnd); err != nil {
		return nil, err
	}
	if err := saveSeriesCSV(opts, prefix+"-goodput", "mbps", res.TracedThroughput); err != nil {
		return nil, err
	}
	if err := saveSeriesCSV(opts, prefix+"-total-goodput", "mbps", res.TotalThroughput); err != nil {
		return nil, err
	}
	return res, nil
}

// runImpairmentSim simulates the scenario (the cache-miss path).
func runImpairmentSim(label string, newCC func() tcp.CongestionControl, fid hybrid.Fidelity, opts Options) (*impairmentSnapshot, error) {
	proto := Protocol(label)
	rng := sim.NewRand(opts.seed())
	env := newSimEnv(opts.shards())
	sched := env.sched
	link := topology.DefaultStarLink(impairmentBuffer)
	if aqmCfg, ok, err := opts.aqmOverride(); err != nil {
		return nil, err
	} else if ok {
		link.Queue.AQM = aqmCfg
	}
	star := topology.NewStar(sched, impairmentServers, link)
	if err := env.partition(star.Shard); err != nil {
		return nil, err
	}

	fleet, err := hybrid.NewFleet(star.Net, hybrid.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC:    newCC,
		Base: tcp.Config{
			MinRTO:   impairmentRTO,
			ECN:      UsesECN(proto),
			LinkRate: netsim.Gbps,
		},
		Fidelity: fid,
		Sync:     env.syncer(),
	})
	if err != nil {
		return nil, err
	}

	// 200 small responses per server from 0.1 s.
	for i := 0; i < impairmentServers; i++ {
		trains := workload.ScheduleCount(rng, sim.At(impairmentRespStart), impairmentResponses,
			workload.UniformSize{Min: impairmentRespMin, Max: impairmentRespMax},
			workload.ExponentialGap{Mean: impairmentRespMean})
		for _, tr := range trains {
			if err := fleet.ScheduleResponse(i, tr.At, tr.Bytes); err != nil {
				return nil, err
			}
		}
	}

	// Window snapshot + long train at 0.5 s, on each connection's own
	// shard (the snapshot reads sender-side window state). Completion
	// instants land in per-connection slots so callbacks running in
	// parallel window segments never share a word.
	res := &ImpairmentResult{Protocol: proto, CwndAtLPTStart: make([]float64, impairmentServers)}
	lptDone := make([]time.Duration, impairmentServers)
	lptDoneAt := make([]sim.Time, impairmentServers)
	for i := 0; i < impairmentServers; i++ {
		i := i
		if err := fleet.ScheduleConnAt(i, sim.At(impairmentLPTStart), func(conn *tcp.Conn) {
			res.CwndAtLPTStart[i] = conn.Cwnd()
			conn.SendTrain(impairmentLPTBytes, func(r tcp.TrainResult) {
				lptDone[i] = r.CompletionTime()
				lptDoneAt[i] = r.Completed
			})
		}); err != nil {
			return nil, err
		}
	}

	// Traces: connection 5's goodput and window, aggregate goodput,
	// bottleneck queue. Each sampler lives on the shard owning the state
	// it reads: delivered bytes and the bottleneck queue are front-end /
	// switch state on shard 0 (sched), the window is sender state on the
	// traced connection's shard.
	traced := impairmentServers - 1
	res.TracedThroughput = metrics.BinnedRate(sched, 0, sim.At(impairmentHorizon),
		10*time.Millisecond, func() int64 { return fleet.DeliveredBytes(traced) })
	res.TotalThroughput = metrics.BinnedRate(sched, 0, sim.At(impairmentHorizon),
		10*time.Millisecond, func() int64 { return fleet.TotalDelivered() })
	res.TracedCwnd = metrics.Sample(fleet.SchedulerOf(traced), 0, sim.At(impairmentHorizon),
		impairmentSampleStep, func() float64 { return fleet.Cwnd(traced) })
	queue := star.Bottleneck.Queue()
	queueSeries := metrics.Sample(sched, 0, sim.At(impairmentHorizon),
		100*time.Microsecond, func() float64 { return float64(queue.Len()) })

	// Live streaming: every sampler above already Records on its own
	// schedule, so tapping them adds no events — an armed Progress hook
	// observes the identical simulation. Goodput taps pre-apply the Mbps
	// conversion the batch path performs after the run.
	opts.tapSeries("traced-goodput-mbps", 1e-6, res.TracedThroughput)
	opts.tapSeries("total-goodput-mbps", 1e-6, res.TotalThroughput)
	opts.tapSeries("cwnd-segments", 1, res.TracedCwnd)
	opts.tapSeries("queue-depth-pkts", 1, queueSeries)
	opts.tapResponses(fleet.Collector())

	if err := fleet.Arm(); err != nil {
		return nil, err
	}
	env.runUntil(sim.At(impairmentHorizon))
	if err := fleet.Err(); err != nil {
		return nil, err
	}

	res.TimeoutsPerConn = make([]int, impairmentServers)
	for i := range res.TimeoutsPerConn {
		res.TimeoutsPerConn[i] = fleet.Stats(i).Timeouts
	}
	res.LPTCompletion = lptDone
	res.QueueMax = int(queueSeries.Max())
	res.QueueStats = queue.Stats()
	res.QueueDrops = res.QueueStats.Dropped
	res.BottleneckFaults = star.Bottleneck.Stats()
	for _, r := range fleet.Collector().Responses() {
		if r.Completed > res.AllDoneBy {
			res.AllDoneBy = r.Completed
		}
	}
	for _, at := range lptDoneAt {
		if at > res.AllDoneBy {
			res.AllDoneBy = at
		}
	}
	// Convert byte rates to Mbps for reporting.
	scaleSeries(res.TracedThroughput, 1e-6)
	scaleSeries(res.TotalThroughput, 1e-6)
	snap := &impairmentSnapshot{
		Result:  res,
		Retrans: fleet.Retransmissions(),
		FCT:     fleet.Collector().CompletionTimes(nil).Snapshot(),
	}
	if opts.Progress != nil {
		rb := snap.Retrans
		opts.publish(ProgressEvent{Kind: "retrans", Name: label, Retrans: &rb})
		opts.publish(ProgressEvent{Kind: "fct", Name: label, Dist: snap.FCT})
	}
	return snap, nil
}

func scaleSeries(s *metrics.Series, f float64) {
	pts := s.Points()
	for i := range pts {
		pts[i].Value *= f
	}
}

// WriteTables renders the result.
func (r *ImpairmentResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  fmt.Sprintf("Impairment test (%s) — Fig. 4 / Fig. 6 scenario", r.Protocol),
		Header: []string{"conn", "timeouts", "cwnd@LPT (seg)", "LPT completion"},
	}
	for i := range r.TimeoutsPerConn {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", r.TimeoutsPerConn[i]),
			fmt.Sprintf("%.0f", r.CwndAtLPTStart[i]),
			r.LPTCompletion[i].String(),
		})
	}
	t.Caption = fmt.Sprintf("queue max %d pkts, drops %d, all done by %v",
		r.QueueMax, r.QueueDrops, r.AllDoneBy)
	// The drop split and injected-fault counters are appended only when an
	// AQM or fault actually fired, so default (drop-tail, fault-free) runs
	// keep their historical byte-identical output.
	if q := r.QueueStats; q.EarlyDrops > 0 || q.HeadDrops > 0 {
		t.Caption += fmt.Sprintf(" (split: %d tail, %d aqm-early, %d aqm-head)",
			q.TailDrops, q.EarlyDrops, q.HeadDrops)
	}
	if f := r.BottleneckFaults; f.InjectedDrops() > 0 || f.Reordered > 0 || f.Duplicated > 0 {
		t.Caption += fmt.Sprintf("; injected faults: %d loss, %d burst, %d flap, %d reordered, %d duplicated",
			f.LossDrops, f.BurstLossDrops, f.FlapDrops, f.Reordered, f.Duplicated)
	}
	if err := t.Write(w); err != nil {
		return err
	}
	return writeSeriesTable(w, "Aggregate goodput (Mbps, 10 ms bins)", r.TotalThroughput, 0.0, 1.0)
}

// writeSeriesTable prints a time series, optionally subsampled to keep
// output readable: points with Value==skipBelow are compacted.
func writeSeriesTable(w io.Writer, title string, s *metrics.Series, skipBelow, scale float64) error {
	t := &Table{Title: title, Header: []string{"t", "value"}}
	for _, p := range s.Points() {
		if p.Value <= skipBelow {
			continue
		}
		t.Rows = append(t.Rows, []string{p.At.String(), fmt.Sprintf("%.1f", p.Value*scale)})
	}
	if len(t.Rows) == 0 {
		t.Rows = append(t.Rows, []string{"-", "no nonzero samples"})
	}
	return t.Write(w)
}

var _ = register("fig4",
	"Impairment test under legacy TCP: timeouts, inherited windows, LPT completion on the 5-server star (Fig. 4)",
	[]string{"csv", "aqm", "fidelity"},
	func(opts Options, w io.Writer) error {
		res, err := RunImpairment(ProtoTCP, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})

var _ = register("fig6",
	"Impairment test under TCP-TRIM: probe-based window re-tuning on the Fig. 4 scenario (Fig. 6)",
	[]string{"csv", "aqm", "fidelity"},
	func(opts Options, w io.Writer) error {
		res, err := RunImpairment(ProtoTRIM, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
