package experiment

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
	"tcptrim/internal/workload"
)

// Fig. 1 / Fig. 2 reproduction: the paper derived the packet-train
// taxonomy from a 2 TB campus trace; we generate traffic from the
// published distribution shapes, capture the packet trace at the
// front-end, and run the same packet-train analysis (trains split at gaps
// exceeding the inter-train threshold).
const (
	trWindow       = 2 * time.Second
	trGapThreshold = 500 * time.Microsecond
	trCDFSamples   = 20000
)

// TrainAnalysisResult holds the recovered Fig. 1 / Fig. 2 statistics.
type TrainAnalysisResult struct {
	// Recovered trains from the simulated wire trace (Fig. 1).
	Trains    int
	LongCount int
	// MeanShortPackets / MeanLongPackets characterize the two classes.
	MeanShortPackets float64
	MeanLongPackets  float64
	// Generator-side CDF band fractions (Fig. 2(a)).
	TinyFraction  float64 // ≤ 4 KB
	MidFraction   float64 // 4–128 KB
	LargeFraction float64 // > 128 KB
	// Gap percentiles (Fig. 2(b)), in microseconds.
	GapP10us, GapP50us, GapP90us float64
}

// RunTrainAnalysis generates ON/OFF traffic on one connection, captures
// the arrival trace, and recovers the packet trains.
func RunTrainAnalysis(opts Options) (*TrainAnalysisResult, error) {
	rng := sim.NewRand(opts.seed())
	sched := sim.NewScheduler()
	star := topology.NewStar(sched, 1, topology.DefaultStarLink(1000))
	fleet, err := httpapp.NewFleet(star.Net, httpapp.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		Base:     tcp.Config{LinkRate: netsim.Gbps},
	})
	if err != nil {
		return nil, err
	}
	var trace []workload.PacketRecord
	star.FrontEnd.SetTap(func(p *netsim.Packet) {
		if !p.IsAck {
			trace = append(trace, workload.PacketRecord{At: sched.Now(), Bytes: p.Size})
		}
	})
	trains := workload.Schedule(rng, sim.At(10*time.Millisecond), sim.At(trWindow),
		workload.PTSizes{}, workload.PTGaps{})
	if err := fleet.Servers[0].ScheduleTrains(trains); err != nil {
		return nil, err
	}
	sched.RunUntil(sim.At(trWindow + time.Second))

	recovered := workload.SplitTrains(trace, trGapThreshold)
	res := &TrainAnalysisResult{Trains: len(recovered)}
	var short, long, shortN, longN float64
	for _, tr := range recovered {
		if tr.IsLong() {
			res.LongCount++
			long += float64(tr.Packets)
			longN++
		} else {
			short += float64(tr.Packets)
			shortN++
		}
	}
	if shortN > 0 {
		res.MeanShortPackets = short / shortN
	}
	if longN > 0 {
		res.MeanLongPackets = long / longN
	}

	// Generator-side Fig. 2 statistics over a large sample.
	var tiny, large int
	var gaps []float64
	sizes := workload.PTSizes{}
	gapDist := workload.PTGaps{}
	for i := 0; i < trCDFSamples; i++ {
		s := sizes.Sample(rng)
		if s <= workload.PTSmallBytes {
			tiny++
		}
		if s > workload.PTLargeBytes {
			large++
		}
		gaps = append(gaps, float64(gapDist.Sample(rng))/float64(time.Microsecond))
	}
	res.TinyFraction = float64(tiny) / trCDFSamples
	res.LargeFraction = float64(large) / trCDFSamples
	res.MidFraction = 1 - res.TinyFraction - res.LargeFraction
	res.GapP10us = percentileOf(gaps, 10)
	res.GapP50us = percentileOf(gaps, 50)
	res.GapP90us = percentileOf(gaps, 90)
	return res, nil
}

func percentileOf(vals []float64, p float64) float64 {
	var d metrics.Distribution
	for _, v := range vals {
		d.Add(v)
	}
	return d.Percentile(p)
}

// WriteTables renders the Fig. 1 / Fig. 2 statistics.
func (r *TrainAnalysisResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  "Fig. 1: packet trains recovered from the simulated trace",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"trains", fmt.Sprintf("%d", r.Trains)},
			{"long trains (LPT)", fmt.Sprintf("%d", r.LongCount)},
			{"mean SPT packets", fmt.Sprintf("%.1f", r.MeanShortPackets)},
			{"mean LPT packets", fmt.Sprintf("%.1f", r.MeanLongPackets)},
		},
	}
	if err := t.Write(w); err != nil {
		return err
	}
	t2 := &Table{
		Title:  "Fig. 2: PT size bands and inter-train gap percentiles",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"size ≤ 4KB", fmt.Sprintf("%.1f%%", r.TinyFraction*100)},
			{"size 4–128KB", fmt.Sprintf("%.1f%%", r.MidFraction*100)},
			{"size > 128KB", fmt.Sprintf("%.1f%%", r.LargeFraction*100)},
			{"gap P10", fmt.Sprintf("%.0fµs", r.GapP10us)},
			{"gap P50", fmt.Sprintf("%.0fµs", r.GapP50us)},
			{"gap P90", fmt.Sprintf("%.0fµs", r.GapP90us)},
		},
	}
	return t2.Write(w)
}

var _ = register("fig1",
	"Packet trains recovered from one persistent connection's trace: sizes, gaps, ON/OFF structure (Fig. 1)",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunTrainAnalysis(opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})

var _ = register("fig2",
	"Packet-train size bands and inter-train gap percentiles over the response mix (Fig. 2)",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunTrainAnalysis(opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
