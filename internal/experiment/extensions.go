package experiment

// Extension experiments beyond the paper's evaluation:
//
//   - ext-deadline: D2TCP vs DCTCP on a deadline-bound incast — the
//     deadline-aware back-off the paper discusses in related work.
//   - ext-delay: Vegas vs TCP-TRIM on the ON/OFF impairment workload —
//     a delay-based scheme without TRIM's probe-based inheritance still
//     suffers the inherited-window burst.

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/cc"
	"tcptrim/internal/httpapp"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
)

// Deadline-incast scenario: 16 senders each push one 64 KB response to
// the front-end at the same instant. Half the flows carry a tight
// deadline that is *below* the fair-share completion time (they can only
// make it if the other flows yield), half a loose one. D2TCP's
// far/near-deadline modulation should let the tight half meet their
// deadlines without costing the loose half theirs; deadline-blind DCTCP
// shares evenly and the tight half misses.
const (
	dlSenders     = 16
	dlBytes       = 256 << 10
	dlStart       = 100 * time.Millisecond
	dlTightBudget = 30 * time.Millisecond
	dlLooseBudget = 300 * time.Millisecond
	dlHorizon     = 2 * time.Second
	dlECNThresh   = 20
)

// DeadlineRow is one policy's outcome on the deadline incast.
type DeadlineRow struct {
	Policy     string
	TightMet   int
	TightTotal int
	LooseMet   int
	LooseTotal int
	MeanCT     time.Duration
	WorstCT    time.Duration
	Timeouts   int
}

// DeadlineResult holds the ext-deadline comparison.
type DeadlineResult struct {
	TightBudget time.Duration
	LooseBudget time.Duration
	Rows        []DeadlineRow
}

// Row returns the row for the named policy, or nil.
func (r *DeadlineResult) Row(policy string) *DeadlineRow {
	for i := range r.Rows {
		if r.Rows[i].Policy == policy {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunDeadline executes the deadline incast under DCTCP and D2TCP.
func RunDeadline(opts Options) (*DeadlineResult, error) {
	out := &DeadlineResult{TightBudget: dlTightBudget, LooseBudget: dlLooseBudget}
	for _, policy := range []string{"DCTCP", "D2TCP"} {
		row, err := runDeadlineCell(policy)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, *row)
	}
	_ = opts
	return out, nil
}

func deadlineFor(flowIdx int) time.Duration {
	if flowIdx%2 == 0 {
		return dlTightBudget
	}
	return dlLooseBudget
}

func runDeadlineCell(policy string) (*DeadlineRow, error) {
	sched := sim.NewScheduler()
	star := topology.NewStar(sched, dlSenders, netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 100, ECNThresholdPackets: dlECNThresh},
	})
	net := star.Net
	feStack := tcp.NewStack(net, star.FrontEnd)
	collector := &httpapp.Collector{}
	var conns []*tcp.Conn
	for i, h := range star.Senders {
		budget := deadlineFor(i)
		deadline := sim.At(dlStart + budget)
		var policyCC tcp.CongestionControl
		if policy == "D2TCP" {
			policyCC = cc.NewD2TCP(deadline, dlBytes)
		} else {
			policyCC = cc.NewDCTCP()
		}
		conn, err := tcp.NewConn(tcp.Config{
			Sender:   tcp.NewStack(net, h),
			Receiver: feStack,
			Flow:     netsim.FlowID(i + 1),
			CC:       policyCC,
			ECN:      true,
			MinRTO:   10 * time.Millisecond,
			LinkRate: netsim.Gbps,
		})
		if err != nil {
			return nil, err
		}
		conns = append(conns, conn)
		srv := httpapp.NewServer(sched, conn, fmt.Sprintf("f%d", i), collector)
		if err := srv.ScheduleResponse(sim.At(dlStart), dlBytes); err != nil {
			return nil, err
		}
	}
	sched.RunUntil(sim.At(dlHorizon))

	row := &DeadlineRow{Policy: policy}
	var sum time.Duration
	for _, r := range collector.Responses() {
		var idx int
		if _, err := fmt.Sscanf(r.Label, "f%d", &idx); err != nil {
			return nil, fmt.Errorf("bad label %q: %w", r.Label, err)
		}
		budget := deadlineFor(idx)
		ct := r.CompletionTime()
		sum += ct
		if ct > row.WorstCT {
			row.WorstCT = ct
		}
		met := ct <= budget
		if budget == dlTightBudget {
			row.TightTotal++
			if met {
				row.TightMet++
			}
		} else {
			row.LooseTotal++
			if met {
				row.LooseMet++
			}
		}
	}
	if n := len(collector.Responses()); n > 0 {
		row.MeanCT = sum / time.Duration(n)
	}
	for _, c := range conns {
		row.Timeouts += c.Stats().Timeouts
	}
	return row, nil
}

// WriteTables renders ext-deadline.
func (r *DeadlineResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title: fmt.Sprintf("Extension: deadline incast (%d×%dKB, tight %v / loose %v)",
			dlSenders, dlBytes>>10, r.TightBudget, r.LooseBudget),
		Header: []string{"policy", "tight met", "loose met", "mean CT", "worst CT", "timeouts"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Policy,
			fmt.Sprintf("%d/%d", row.TightMet, row.TightTotal),
			fmt.Sprintf("%d/%d", row.LooseMet, row.LooseTotal),
			row.MeanCT.Round(10 * time.Microsecond).String(),
			row.WorstCT.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", row.Timeouts),
		})
	}
	return t.Write(w)
}

// DelayBasedRow is one policy's outcome on the ON/OFF impairment
// workload.
type DelayBasedRow struct {
	Policy   string
	Timeouts int
	QueueMax int
	LPTMean  time.Duration
}

// DelayBasedResult holds the ext-delay comparison.
type DelayBasedResult struct {
	Rows []DelayBasedRow
}

// Row returns the row for the named policy, or nil.
func (r *DelayBasedResult) Row(policy string) *DelayBasedRow {
	for i := range r.Rows {
		if r.Rows[i].Policy == policy {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunDelayBased runs Vegas and TCP-TRIM on the Section II.B workload:
// both are delay-based end-to-end schemes, but only TRIM handles the
// window-inheritance burst.
func RunDelayBased(opts Options) (*DelayBasedResult, error) {
	out := &DelayBasedResult{}
	for _, policy := range []string{"Vegas", "TCP-TRIM"} {
		res, err := runImpairmentWith(policy, opts)
		if err != nil {
			return nil, err
		}
		var mean time.Duration
		for _, ct := range res.LPTCompletion {
			mean += ct
		}
		mean /= time.Duration(len(res.LPTCompletion))
		out.Rows = append(out.Rows, DelayBasedRow{
			Policy:   policy,
			Timeouts: res.TotalTimeouts(),
			QueueMax: res.QueueMax,
			LPTMean:  mean,
		})
	}
	return out, nil
}

func runImpairmentWith(policy string, opts Options) (*ImpairmentResult, error) {
	if policy == "TCP-TRIM" {
		return RunImpairment(ProtoTRIM, opts)
	}
	return runImpairmentCustom(policy, func() tcp.CongestionControl { return cc.NewVegas() }, opts)
}

// WriteTables renders ext-delay.
func (r *DelayBasedResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  "Extension: delay-based schemes on the ON/OFF workload",
		Header: []string{"policy", "timeouts", "queue max", "mean LPT completion"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Policy,
			fmt.Sprintf("%d", row.Timeouts),
			fmt.Sprintf("%d", row.QueueMax),
			row.LPTMean.Round(10 * time.Microsecond).String(),
		})
	}
	return t.Write(w)
}

var _ = register("ext-deadline",
	"Extension: D2TCP vs DCTCP on a deadline-bound incast",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunDeadline(opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})

var _ = register("ext-delay",
	"Extension: delay-based schemes (Vegas) on the ON/OFF impairment workload",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunDelayBased(opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
