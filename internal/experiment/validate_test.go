package experiment

import (
	"io"
	"strings"
	"testing"

	"tcptrim/internal/hybrid"
)

// TestValidateAcceptsDefaults: the zero Options and every knob's
// canonical values pass.
func TestValidateAcceptsDefaults(t *testing.T) {
	valid := []Options{
		{},
		{Seed: 42, Reps: 10},
		{Shards: 0},
		{Shards: 1},
		{Shards: MaxShards},
		{AQM: "codel", Recovery: "rack-tlp", Fidelity: "hybrid"},
		{AQM: "droptail", Recovery: "classic", Fidelity: "packet"},
		{AQM: "red"}, {AQM: "ared"}, {AQM: "favour"},
		{Recovery: "tracks"},
	}
	for _, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
}

// TestValidateRejections: one test per scattered check the
// consolidation absorbed — each malformed field is refused with a
// diagnosable error before any simulation starts.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring of the error
	}{
		{"negative reps", Options{Reps: -1}, "reps"},
		{"negative shards", Options{Shards: -2}, "shards"},
		{"shards beyond bound", Options{Shards: MaxShards + 1}, "shards"},
		{"unknown aqm", Options{AQM: "bogus"}, "unknown discipline"},
		{"unknown recovery", Options{Recovery: "bogus"}, "recovery"},
		{"unknown fidelity", Options{Fidelity: "bogus"}, "fidelity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) accepted invalid options", tc.opts)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRunValidates: the registry entry point itself rejects malformed
// options for every runner, so no entry point (CLI, service) can skip
// the gate.
func TestRunValidates(t *testing.T) {
	err := Run("fig2", Options{Shards: -1}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "shards") {
		t.Errorf("Run with invalid shards: err = %v", err)
	}
}

// TestCheckFidelityScale pins the packet-fidelity refusal boundary at
// exactly PacketFidelityMaxConns.
func TestCheckFidelityScale(t *testing.T) {
	if err := CheckFidelityScale(hybrid.FidelityPacket, PacketFidelityMaxConns); err != nil {
		t.Errorf("at the bound: %v", err)
	}
	if err := CheckFidelityScale(hybrid.FidelityPacket, PacketFidelityMaxConns+1); err == nil ||
		!strings.Contains(err.Error(), "packet fidelity") {
		t.Errorf("beyond the bound: err = %v", err)
	}
	if err := CheckFidelityScale(hybrid.FidelityHybrid, 10*PacketFidelityMaxConns); err != nil {
		t.Errorf("hybrid at scale: %v", err)
	}
}

// TestRunnersMetadata: every registered runner carries a description,
// and the metadata listing matches IDs() — the single registry trimsim
// -list and GET /v1/runners share.
func TestRunnersMetadata(t *testing.T) {
	infos := Runners()
	ids := IDs()
	if len(infos) != len(ids) {
		t.Fatalf("Runners() has %d entries, IDs() %d", len(infos), len(ids))
	}
	for i, info := range infos {
		if info.ID != ids[i] {
			t.Errorf("Runners()[%d].ID = %q, want %q", i, info.ID, ids[i])
		}
		if info.Description == "" {
			t.Errorf("runner %q has no description", info.ID)
		}
		for _, opt := range info.Options {
			switch opt {
			case "reps", "csv", "aqm", "recovery", "fidelity":
			default:
				t.Errorf("runner %q declares unknown option %q", info.ID, opt)
			}
		}
	}
	if info, ok := Describe("fig4"); !ok || info.ID != "fig4" || info.Description == "" {
		t.Errorf("Describe(fig4) = %+v, %t", info, ok)
	}
}

// TestRegisterRejectsDuplicates: a shadowed figure id is an error, not
// a silent replacement.
func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := Register(RunnerInfo{ID: "fig4", Description: "dup"},
		func(Options, io.Writer) error { return nil }); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register(RunnerInfo{ID: ""},
		func(Options, io.Writer) error { return nil }); err == nil {
		t.Error("empty id accepted")
	}
	if err := Register(RunnerInfo{ID: "x-nil-runner"}, nil); err == nil {
		t.Error("nil runner accepted")
	}
}
