package experiment

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
	"tcptrim/internal/workload"
)

// Section II.B.2 concurrency scenario: the many-to-one star again
// ("we rebuild the previous many-to-one scenario"); 0–2 long-lived
// background flows ("LPTs") start at 0.1 s; the SPT servers first run the
// Section II.B warm-up (200 small responses from 0.1 s, which builds up
// their inherited windows exactly as in Fig. 4) and then burst one short
// train of 10 packets at 0.3 s; 200 ms RTO.
const (
	concLPTStart   = 100 * time.Millisecond
	concSPTStart   = 300 * time.Millisecond
	concSPTPackets = 10
	concHorizon    = 2 * time.Second
	concBackground = 1 << 30 // effectively endless
	concSPTLabel   = "spt"
)

// ConcurrencyCell is one (LPTs, SPTs) grid cell's outcome.
type ConcurrencyCell struct {
	LPTs, SPTs    int
	ACT, Min, Max time.Duration
	Timeouts      int
}

// ConcurrencyResult holds Fig. 5 (TCP) / Fig. 7 (TCP-TRIM) outputs.
type ConcurrencyResult struct {
	Protocol Protocol
	Cells    []ConcurrencyCell
}

// Cell returns the grid cell for (lpts, spts), or nil.
func (r *ConcurrencyResult) Cell(lpts, spts int) *ConcurrencyCell {
	for i := range r.Cells {
		if r.Cells[i].LPTs == lpts && r.Cells[i].SPTs == spts {
			return &r.Cells[i]
		}
	}
	return nil
}

// RunConcurrency sweeps the number of background long flows and
// concurrent short trains under the given protocol. Cells are
// independent simulations and run in parallel.
func RunConcurrency(proto Protocol, lptCounts []int, maxSPT int, opts Options) (*ConcurrencyResult, error) {
	if _, err := NewCC(proto); err != nil {
		return nil, err
	}
	type cellKey struct{ lpts, spts int }
	var keys []cellKey
	for _, lpts := range lptCounts {
		for spts := 1; spts <= maxSPT; spts++ {
			keys = append(keys, cellKey{lpts, spts})
		}
	}
	ctr := opts.cells(len(keys))
	cells, err := RunTrialsWorkers(len(keys), trialWorkers(opts.shards()), func(i int) (*ConcurrencyCell, error) {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		k := keys[i]
		spec := struct {
			Family   string   `json:"family"`
			Protocol Protocol `json:"protocol"`
			LPTs     int      `json:"lpts"`
			SPTs     int      `json:"spts"`
			Seed     int64    `json:"seed"`
		}{"concurrency", proto, k.lpts, k.spts, opts.seed()}
		cell, _, err := cachedCell(opts, spec, func() (*ConcurrencyCell, error) {
			return runConcurrencyCell(proto, k.lpts, k.spts, opts.seed(), opts.shards())
		})
		if err == nil {
			ctr.finished(fmt.Sprintf("%d-lpts/%d-spts", k.lpts, k.spts))
		}
		return cell, err
	})
	if err != nil {
		return nil, err
	}
	out := &ConcurrencyResult{Protocol: proto}
	for _, c := range cells {
		out.Cells = append(out.Cells, *c)
	}
	return out, nil
}

func runConcurrencyCell(proto Protocol, lpts, spts int, seed int64, shards int) (*ConcurrencyCell, error) {
	rng := sim.NewRand(seed + int64(lpts)*1000 + int64(spts))
	env := newSimEnv(shards)
	sched := env.sched
	star := topology.NewStar(sched, lpts+spts, topology.DefaultStarLink(100))
	if err := env.partition(star.Shard); err != nil {
		return nil, err
	}
	fleet, err := httpapp.NewFleet(star.Net, httpapp.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC:    func() tcp.CongestionControl { return MustCC(proto) },
		Base: tcp.Config{
			MinRTO:   impairmentRTO,
			ECN:      UsesECN(proto),
			LinkRate: netsim.Gbps,
		},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < lpts; i++ {
		if err := fleet.Servers[i].StartBackgroundFlow(sim.At(concLPTStart), concBackground); err != nil {
			return nil, err
		}
	}
	spt := &httpapp.Collector{}
	for i := lpts; i < lpts+spts; i++ {
		// Warm-up: 200 small responses build the inherited window.
		warm := workload.ScheduleCount(rng, sim.At(impairmentRespStart), impairmentResponses,
			workload.UniformSize{Min: impairmentRespMin, Max: impairmentRespMax},
			workload.ExponentialGap{Mean: impairmentRespMean})
		if err := fleet.Servers[i].ScheduleTrains(warm); err != nil {
			return nil, err
		}
		// The measured SPT burst at 0.3 s.
		sptServer := httpapp.NewServer(fleet.Conns[i].Scheduler(), fleet.Conns[i], concSPTLabel, spt)
		if err := sptServer.ScheduleResponse(sim.At(concSPTStart), concSPTPackets*tcp.DefaultMSS); err != nil {
			return nil, err
		}
	}
	// Stop as soon as every measured SPT completed; the background flows
	// would otherwise run to the horizon for nothing. The watch is a sync
	// event: it reads every shard's collector bucket.
	var watch func()
	watch = func() {
		if spt.Pending() == 0 {
			env.stop()
			return
		}
		env.syncAfter(sched, 10*time.Millisecond, watch)
	}
	if err := env.syncAt(sched, sim.At(concSPTStart), watch); err != nil {
		return nil, err
	}
	env.runUntil(sim.At(concHorizon))

	var d metrics.Distribution
	for _, r := range spt.Responses() {
		d.AddDuration(r.CompletionTime())
	}
	if d.Count() != spts {
		return nil, fmt.Errorf("concurrency cell L=%d S=%d: %d of %d SPTs completed",
			lpts, spts, d.Count(), spts)
	}
	timeouts := 0
	for i := lpts; i < lpts+spts; i++ {
		timeouts += fleet.Conns[i].Stats().Timeouts
	}
	return &ConcurrencyCell{
		LPTs: lpts, SPTs: spts,
		ACT:      secondsToDuration(d.Mean()),
		Min:      secondsToDuration(d.Min()),
		Max:      secondsToDuration(d.Max()),
		Timeouts: timeouts,
	}, nil
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// WriteTables renders the sweep.
func (r *ConcurrencyResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  fmt.Sprintf("Concurrency impairment (%s) — Fig. 5 / Fig. 7 scenario", r.Protocol),
		Header: []string{"LPTs", "SPTs", "ACT", "min CT", "max CT", "SPT timeouts"},
	}
	for _, c := range r.Cells {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c.LPTs),
			fmt.Sprintf("%d", c.SPTs),
			c.ACT.Round(10 * time.Microsecond).String(),
			c.Min.Round(10 * time.Microsecond).String(),
			c.Max.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", c.Timeouts),
		})
	}
	return t.Write(w)
}

var _ = register("fig5",
	"Concurrency impairment under legacy TCP: timeouts and completion vs background LPT count (Fig. 5)",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunConcurrency(ProtoTCP, []int{0, 1, 2}, 10, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})

var _ = register("fig7",
	"Concurrency impairment under TCP-TRIM on the Fig. 5 scenario (Fig. 7)",
	nil,
	func(opts Options, w io.Writer) error {
		trim, err := RunConcurrency(ProtoTRIM, []int{2}, 10, opts)
		if err != nil {
			return err
		}
		reno, err := RunConcurrency(ProtoTCP, []int{2}, 10, opts)
		if err != nil {
			return err
		}
		if err := trim.WriteTables(w); err != nil {
			return err
		}
		return reno.WriteTables(w)
	})
