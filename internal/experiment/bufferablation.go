package experiment

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/aqm"
	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
)

// abl-buffer: switch-buffer sensitivity. The paper's deployment argument
// rests on COTS switches with shallow buffers; TRIM keeps its standing
// queue at ≈ C(K−D) regardless of how much buffer exists above it, while
// drop-tail TCP's loss rate and timeouts scale with the buffer. The
// ablation sweeps the buffer across the shallow range on the 5-flow star.

// BufferRow is one (protocol, buffer) cell.
type BufferRow struct {
	Protocol    Protocol
	Buffer      int // packets
	AvgQueue    float64
	Drops       int
	Timeouts    int
	GoodputMbps float64
}

// BufferResult holds the abl-buffer sweep.
type BufferResult struct {
	Rows []BufferRow
}

// Row returns the cell for (proto, buffer), or nil.
func (r *BufferResult) Row(proto Protocol, buffer int) *BufferRow {
	for i := range r.Rows {
		if r.Rows[i].Protocol == proto && r.Rows[i].Buffer == buffer {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunBufferAblation sweeps the star's switch buffer for each protocol.
func RunBufferAblation(protos []Protocol, buffers []int, opts Options) (*BufferResult, error) {
	for _, p := range protos {
		if _, err := NewCC(p); err != nil {
			return nil, err
		}
	}
	type cell struct {
		proto Protocol
		buf   int
	}
	var cells []cell
	for _, p := range protos {
		for _, b := range buffers {
			cells = append(cells, cell{p, b})
		}
	}
	rows, err := RunTrials(len(cells), func(i int) (*BufferRow, error) {
		return runBufferCell(cells[i].proto, cells[i].buf)
	})
	if err != nil {
		return nil, err
	}
	out := &BufferResult{}
	for _, row := range rows {
		out.Rows = append(out.Rows, *row)
	}
	_ = opts
	return out, nil
}

func runBufferCell(proto Protocol, buffer int) (*BufferRow, error) {
	sched := sim.NewScheduler()
	star := topology.NewStar(sched, 5, topology.DefaultStarLink(buffer))
	fleet, err := httpapp.NewFleet(star.Net, httpapp.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC:    func() tcp.CongestionControl { return MustCCWithBaseRTT(proto, ksBaseRTT) },
		Base: tcp.Config{
			MinRTO:   10 * time.Millisecond,
			ECN:      UsesECN(proto),
			LinkRate: netsim.Gbps,
		},
	})
	if err != nil {
		return nil, err
	}
	for _, srv := range fleet.Servers {
		if err := srv.StartBackgroundFlow(sim.At(propFlowStart), concBackground); err != nil {
			return nil, err
		}
	}
	queue := star.Bottleneck.Queue()
	series := metrics.Sample(sched, sim.At(propFlowStart), sim.At(propFlowStop),
		propSampleStep, func() float64 { return float64(queue.Len()) })
	sched.RunUntil(sim.At(propFlowStop))

	window := (propFlowStop - propFlowStart).Seconds()
	return &BufferRow{
		Protocol:    proto,
		Buffer:      buffer,
		AvgQueue:    series.Mean(),
		Drops:       queue.Stats().Dropped,
		Timeouts:    fleet.TotalTimeouts(),
		GoodputMbps: float64(fleet.TotalDelivered()) * 8 / window / 1e6,
	}, nil
}

// WriteTables renders abl-buffer.
func (r *BufferResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  "Ablation: switch-buffer sensitivity (5 long flows, 1 Gbps star)",
		Header: []string{"protocol", "buffer (pkts)", "avg queue", "drops", "timeouts", "goodput (Mbps)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			string(row.Protocol),
			fmt.Sprintf("%d", row.Buffer),
			fmt.Sprintf("%.1f", row.AvgQueue),
			fmt.Sprintf("%d", row.Drops),
			fmt.Sprintf("%d", row.Timeouts),
			fmt.Sprintf("%.0f", row.GoodputMbps),
		})
	}
	return t.Write(w)
}

// BufferAblationCaps is the abl-buffer sweep: the tiny-buffer regime
// (aqm.TinyBufferCaps — a few packets per port, where tail drops turn
// straight into RTO stalls) ahead of the historical shallow range.
func BufferAblationCaps() []int {
	return append(aqm.TinyBufferCaps(), 20, 50, 100, 200)
}

var _ = register("abl-buffer",
	"Ablation: switch-buffer sensitivity from the tiny-buffer regime up to 200 packets",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunBufferAblation([]Protocol{ProtoTCP, ProtoTRIM}, BufferAblationCaps(), opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
