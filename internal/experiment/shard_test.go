package experiment

// Differential determinism proof at the experiment layer: every figure
// runner must render byte-identical tables at any shard count, because
// sharding is a pure relabeling of the same event total order. These
// tests sweep shard counts over the paper scenarios (including the
// fault-injection matrix, whose GE loss, flaps, reordering, and
// duplication exercise the fault layer under parallel windows) and
// require the rendered output — every completion time, timeout count,
// queue statistic, and throughput bin — to match the sequential run
// exactly.

import (
	"bytes"
	"fmt"
	"testing"

	"tcptrim/internal/aqm"
	"tcptrim/internal/conformance"
	"tcptrim/internal/tcp"
)

// shardSweep is the shard-count axis every differential test sweeps.
// 1 is the sequential baseline; 8 exceeds this star's sender count, so
// round-robin placement leaves some shards sparse.
var shardSweep = []int{1, 2, 4, 8}

// renderShardSweep renders one experiment at every shard count and
// fails the test on the first byte difference against shards=1.
func renderShardSweep(t *testing.T, name string, render func(opts Options) ([]byte, error)) {
	t.Helper()
	var base []byte
	for _, k := range shardSweep {
		out, err := render(Options{Seed: 7, Shards: k})
		if err != nil {
			t.Fatalf("%s shards=%d: %v", name, k, err)
		}
		if k == 1 {
			base = out
			continue
		}
		if !bytes.Equal(base, out) {
			t.Errorf("%s diverges at shards=%d:\n-- shards=1 --\n%s\n-- shards=%d --\n%s",
				name, k, base, k, out)
		}
	}
}

func TestImpairmentShardInvariant(t *testing.T) {
	renderShardSweep(t, "impairment", func(opts Options) ([]byte, error) {
		res, err := RunImpairment(ProtoTRIM, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := res.WriteTables(&buf); err != nil {
			return nil, err
		}
		// The rendered table omits the traced series; fold their points in
		// so a sampler landing on the wrong shard cannot hide.
		fmt.Fprintf(&buf, "cwnd=%v goodput=%v\n",
			res.TracedCwnd.Points(), res.TracedThroughput.Points())
		return buf.Bytes(), nil
	})
}

func TestConcurrencyShardInvariant(t *testing.T) {
	renderShardSweep(t, "concurrency", func(opts Options) ([]byte, error) {
		res, err := RunConcurrency(ProtoTCP, []int{2}, 4, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	})
}

func TestLargeScaleShardInvariant(t *testing.T) {
	renderShardSweep(t, "largescale", func(opts Options) ([]byte, error) {
		opts.Reps = 1
		res, err := RunLargeScale([]Protocol{ProtoTRIM}, []int{3}, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	})
}

func TestFatTreeShardInvariant(t *testing.T) {
	renderShardSweep(t, "fattree", func(opts Options) ([]byte, error) {
		res, err := RunFatTree([]Protocol{ProtoTRIM}, []int{4}, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	})
}

// TestResilienceMatrixShardInvariant is the fault-scenario property test:
// the resilience matrix (GE bursty loss, a link flap, bounded reordering,
// and duplication on the bottleneck, invariant checker armed) must
// produce identical rows at every shard count.
func TestResilienceMatrixShardInvariant(t *testing.T) {
	renderShardSweep(t, "resilience", func(opts Options) ([]byte, error) {
		// [:3] spans clean, GE+reorder+dup (mild), and GE+flap+reorder+dup
		// (moderate) — every fault class the matrix injects.
		res, err := RunResilience([]Protocol{ProtoTRIM}, DefaultFaultIntensities[:3], opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	})
}

// TestRecoverySweepShardInvariant covers the recovery × AQM × fault
// sweep, whose T-RACKs cells route switch-agent signal injections and
// RACK-TLP cells route probe timers through the sharded scheduler — the
// rendered matrix (goodput, FCT percentiles, retransmission breakdowns,
// recovery times) must not depend on the shard count.
func TestRecoverySweepShardInvariant(t *testing.T) {
	renderShardSweep(t, "recoverysweep", func(opts Options) ([]byte, error) {
		res, err := RunRecoverySweep(tcp.RecoveryNames(), []string{"droptail"},
			[]FaultIntensity{DefaultFaultIntensities[2]},
			[]int{aqm.TinyBufferPackets}, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	})
}

func TestARCTShardInvariant(t *testing.T) {
	renderShardSweep(t, "arct", func(opts Options) ([]byte, error) {
		res, err := RunARCT([]Protocol{ProtoTRIM}, []int{64 << 10}, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	})
}

// TestConformanceShardedSweep shadow-executes the oracle's randomized
// scenario matrix under sharding: every scenario must report zero
// divergences and the identical activity counters at every shard count —
// the TRIM policy cannot tell how many shards carried its packets.
func TestConformanceShardedSweep(t *testing.T) {
	const seeds = 64
	for i := 0; i < seeds; i++ {
		seed := SplitSeed(11, i)
		var base *conformance.Result
		for _, k := range shardSweep {
			sc := conformance.GenScenario(seed)
			sc.Shards = k
			res, err := conformance.RunScenario(sc)
			if err != nil {
				t.Fatalf("seed %d shards=%d: %v", seed, k, err)
			}
			if res.Total != 0 {
				t.Fatalf("seed %d shards=%d: %d divergences, first: %v",
					seed, k, res.Total, res.Divergences[0])
			}
			if k == 1 {
				base = res
				continue
			}
			if res.Hooks != base.Hooks || res.ProbeRounds != base.ProbeRounds ||
				res.ProbeTimeouts != base.ProbeTimeouts ||
				res.QueueReductions != base.QueueReductions ||
				res.Timeouts != base.Timeouts || res.TrainsDone != base.TrainsDone {
				t.Fatalf("seed %d shards=%d: counters differ from sequential run:\n%+v\nvs\n%+v",
					seed, k, res, base)
			}
		}
	}
}

func TestShardsOptionNormalization(t *testing.T) {
	for in, want := range map[int]int{-1: 1, 0: 1, 1: 1, 2: 2, 8: 8} {
		if got := (Options{Shards: in}).shards(); got != want {
			t.Errorf("Options{Shards: %d}.shards() = %d, want %d", in, got, want)
		}
	}
	if w := trialWorkers(1 << 20); w != 1 {
		t.Errorf("trialWorkers with huge shard count = %d, want 1 (never zero workers)", w)
	}
	if w := trialWorkers(0); w < 1 {
		t.Errorf("trialWorkers(0) = %d, want >= 1", w)
	}
}
