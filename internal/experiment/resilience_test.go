package experiment

import (
	"bytes"
	"runtime"
	"testing"

	"tcptrim/internal/sim"
)

func TestResilienceSmoke(t *testing.T) {
	sim.SetInvariantChecks(true)
	t.Cleanup(func() { sim.SetInvariantChecks(false) })

	res, err := RunResilience([]Protocol{ProtoTRIM}, DefaultFaultIntensities[:2], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	clean, faulty := res.Rows[0], res.Rows[1]
	if clean.Retention != 1 {
		t.Errorf("baseline retention = %v, want 1", clean.Retention)
	}
	if clean.Injected.InjectedDrops() != 0 || clean.Injected.Reordered != 0 || clean.Injected.Duplicated != 0 {
		t.Errorf("baseline cell recorded injected faults: %+v", clean.Injected)
	}
	if faulty.Injected.BurstLossDrops == 0 {
		t.Error("mild cell injected no bursty loss")
	}
	for _, row := range res.Rows {
		if row.Complete != row.Total {
			t.Errorf("%s/%s completed %d/%d responses", row.Protocol, row.Intensity, row.Complete, row.Total)
		}
		if row.RecoveryTime < 0 {
			t.Errorf("%s/%s never recovered", row.Protocol, row.Intensity)
		}
	}
}

// TestResilienceDeterministicAcrossWorkers renders the same matrix under
// one worker and under several and requires byte-identical tables: trial
// randomness must be a pure function of (seed, cell index), never of
// worker scheduling.
func TestResilienceDeterministicAcrossWorkers(t *testing.T) {
	render := func() []byte {
		res, err := RunResilience([]Protocol{ProtoTRIM, ProtoTCP}, DefaultFaultIntensities[:2], Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteTables(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	prev := runtime.GOMAXPROCS(1)
	serial := render()
	runtime.GOMAXPROCS(4)
	parallel := render()
	runtime.GOMAXPROCS(prev)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("matrix differs across worker counts:\n-- GOMAXPROCS=1 --\n%s\n-- GOMAXPROCS=4 --\n%s", serial, parallel)
	}
}

func TestSplitSeedIndependence(t *testing.T) {
	seen := map[int64]int{}
	for _, base := range []int64{0, 1, 7, -3, 1 << 40} {
		for i := 0; i < 1000; i++ {
			s := SplitSeed(base, i)
			if s == base {
				t.Errorf("SplitSeed(%d, %d) returned the base seed", base, i)
			}
			if j, dup := seen[s]; dup {
				t.Fatalf("SplitSeed collision: (%d,%d) and key %d both give %d", base, i, j, s)
			}
			seen[s] = i
		}
	}
}

func TestRunSeededTrialsDeterministicHandout(t *testing.T) {
	run := func() []int64 {
		out, err := RunSeededTrials(64, 42, func(i int, seed int64) (int64, error) {
			// Consume the seed through an rng so any shared-stream bug
			// (draws depending on hand-out order) would surface.
			return sim.NewRand(seed).Int63(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(8)
	parallel := run()
	runtime.GOMAXPROCS(prev)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("trial %d differs across worker counts: %d vs %d", i, serial[i], parallel[i])
		}
	}
}
