package experiment

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunTrialsOrderedResults(t *testing.T) {
	// Results come back indexed by trial regardless of which worker ran
	// what or in which order trials finished.
	got, err := RunTrials(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("len = %d, want 100", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunTrialsRunsEachExactlyOnce(t *testing.T) {
	var counts [37]atomic.Int64
	if _, err := RunTrials(len(counts), func(i int) (struct{}, error) {
		counts[i].Add(1)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Errorf("trial %d ran %d times", i, n)
		}
	}
}

func TestRunTrialsZeroAndNegative(t *testing.T) {
	for _, n := range []int{0, -3} {
		got, err := RunTrials(n, func(i int) (int, error) {
			t.Fatalf("fn called for n=%d", n)
			return 0, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("n=%d: len = %d, want 0", n, len(got))
		}
	}
}

func TestRunTrialsReturnsLowestIndexError(t *testing.T) {
	// All trials run to completion; the error reported is the one from
	// the lowest-index failing trial, deterministically.
	errLow := errors.New("low")
	errHigh := errors.New("high")
	var ran atomic.Int64
	got, err := RunTrials(50, func(i int) (int, error) {
		ran.Add(1)
		switch i {
		case 7:
			return 0, errLow
		case 31:
			return 0, errHigh
		}
		return i, nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want %v", err, errLow)
	}
	if ran.Load() != 50 {
		t.Errorf("ran %d trials, want 50", ran.Load())
	}
	// Partial results for the successful trials are still populated.
	if got[4] != 4 || got[40] != 40 {
		t.Errorf("partial results lost: got[4]=%d got[40]=%d", got[4], got[40])
	}
}

func TestRunTrialsPanicPropagatesWithIndex(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("recovered %T, want string", r)
		}
		if !strings.Contains(msg, "trial 13") || !strings.Contains(msg, "boom") {
			t.Errorf("panic message %q missing trial index or cause", msg)
		}
	}()
	_, _ = RunTrials(40, func(i int) (int, error) {
		if i == 13 {
			panic("boom")
		}
		return i, nil
	})
}
