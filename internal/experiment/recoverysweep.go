package experiment

// recoverysweep: loss-recovery policy × AQM × fault-intensity × buffer
// matrix. The paper attributes the concurrent-train collapse to recovery
// degenerating from fast retransmit into RTO stalls; this sweep measures
// how much of that degeneration is the *recovery policy's* fault by
// crossing Classic (dup-ACK threshold), RACK-TLP (time-based detection +
// tail-loss probes), and switch-assisted T-RACKs against drop-tail and
// CoDel queues, the resilience fault ladder, and the tiny-buffer regime
// where tail drops are at their worst. MinRTO stays at the stock 200 ms
// (not the datacenter-tuned 10 ms the resilience matrix uses), so every
// repair Classic cannot trigger by dup ACKs costs a visible RTO stall —
// the regime RACK-TLP and T-RACKs were designed for. Every cell runs
// with the simulator's invariant checker armed.

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/aqm"
	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
	"tcptrim/internal/workload"
)

// Recovery-sweep scenario constants. The star and fault window mirror the
// resilience matrix; the workload is lighter (the matrix is 3× larger)
// and the RTO floor is the stock DefaultMinRTO so timeout stalls dominate
// whenever fast retransmit fails.
const (
	rwServers    = 3
	rwPerServer  = 100
	rwFaultStart = rsFaultStart
	rwFaultEnd   = rsFaultEnd
	rwDeadline   = 30 * time.Second
	rwMaxRTO     = 2 * time.Second
)

// RecoverySweepAQMs is the default queue-discipline axis.
var RecoverySweepAQMs = []string{"droptail", "codel"}

// RecoverySweepBuffers is the default buffer axis: the resilience
// matrix's 100-packet port and the tiny-buffer regime.
var RecoverySweepBuffers = []int{100, aqm.TinyBufferPackets}

// recoverySweepIntensities picks the fault rungs the sweep crosses:
// clean, moderate, severe (mild adds little over clean here).
func recoverySweepIntensities() []FaultIntensity {
	return []FaultIntensity{
		DefaultFaultIntensities[0],
		DefaultFaultIntensities[2],
		DefaultFaultIntensities[3],
	}
}

// RecoverySweepRow is one (policy, aqm, intensity, buffer) cell.
type RecoverySweepRow struct {
	Policy    string
	AQM       string
	Intensity string
	Buffer    int // packets
	// WindowMbps is fleet goodput inside the fault window.
	WindowMbps float64
	// MeanFCT / P99FCT summarize response completion times.
	MeanFCT time.Duration
	P99FCT  time.Duration
	// Timeouts counts RTO firings; Retrans splits retransmissions by
	// trigger (the sweep's core signal: how much repair each policy moves
	// out of the Timeout column).
	Timeouts int
	Retrans  httpapp.RetransBreakdown
	// RecoveryTime is how long past the fault window the last response
	// completed (0 = drained inside the window, negative = never).
	RecoveryTime time.Duration
	Complete     int
	Total        int
}

// RecoverySweepResult holds the matrix.
type RecoverySweepResult struct {
	Rows                 []RecoverySweepRow
	FaultStart, FaultEnd time.Duration
}

// Row returns the cell for the given coordinates, or nil.
func (r *RecoverySweepResult) Row(policy, aqmName, intensity string, buffer int) *RecoverySweepRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Policy == policy && row.AQM == aqmName &&
			row.Intensity == intensity && row.Buffer == buffer {
			return row
		}
	}
	return nil
}

// RunRecoverySweep crosses policies × AQMs × intensities × buffers, one
// independent simulation per cell, each seeded via SplitSeed so the
// matrix is byte-identical regardless of worker or shard count.
func RunRecoverySweep(policies, aqms []string, intensities []FaultIntensity, buffers []int, opts Options) (*RecoverySweepResult, error) {
	// An explicit -recovery / -aqm option narrows the matching axis: the
	// sweep's point is the cross product, but a single-policy run is the
	// cheap way to chase one cell.
	if name, ok, err := opts.recoveryOverride(); err != nil {
		return nil, err
	} else if ok {
		policies = []string{name}
	}
	if _, ok, err := opts.aqmOverride(); err != nil {
		return nil, err
	} else if ok {
		aqms = []string{opts.AQM}
	}
	for _, name := range policies {
		if _, err := tcp.NewRecoveryPolicy(name); err != nil {
			return nil, err
		}
	}
	for _, name := range aqms {
		if _, err := aqm.Parse(name); err != nil {
			return nil, err
		}
	}
	type cell struct {
		policy string
		aqm    string
		fi     FaultIntensity
		buffer int
	}
	var cells []cell
	for _, p := range policies {
		for _, a := range aqms {
			for _, fi := range intensities {
				for _, b := range buffers {
					cells = append(cells, cell{p, a, fi, b})
				}
			}
		}
	}
	ctr := opts.cells(len(cells))
	rows, err := RunSeededTrialsWorkers(len(cells), opts.seed(), trialWorkers(opts.shards()), func(i int, seed int64) (*RecoverySweepRow, error) {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		c := cells[i]
		spec := struct {
			Family    string         `json:"family"`
			Policy    string         `json:"policy"`
			AQM       string         `json:"aqm"`
			Intensity FaultIntensity `json:"intensity"`
			Buffer    int            `json:"buffer"`
			Seed      int64          `json:"seed"`
		}{"recoverysweep", c.policy, c.aqm, c.fi, c.buffer, seed}
		row, _, err := cachedCell(opts, spec, func() (*RecoverySweepRow, error) {
			return runRecoveryCell(c.policy, c.aqm, c.fi, c.buffer, seed, opts.shards())
		})
		if err == nil {
			ctr.finished(fmt.Sprintf("%s/%s/%s/%d-pkts", c.policy, c.aqm, c.fi.Name, c.buffer))
		}
		return row, err
	})
	if err != nil {
		return nil, err
	}
	out := &RecoverySweepResult{FaultStart: rwFaultStart, FaultEnd: rwFaultEnd}
	for _, r := range rows {
		out.Rows = append(out.Rows, *r)
	}
	return out, nil
}

func runRecoveryCell(policy, aqmName string, fi FaultIntensity, buffer int, seed int64, shards int) (*RecoverySweepRow, error) {
	rng := sim.NewRand(seed)
	env := newSimEnv(shards)
	sched := env.sched

	queueCfg := netsim.QueueConfig{CapPackets: buffer}
	aqmCfg, err := aqm.Parse(aqmName)
	if err != nil {
		return nil, err
	}
	if aqmCfg.Kind == aqm.CoDel && buffer <= aqm.TinyBufferPackets {
		aqmCfg.CoDel = aqm.TinyCoDelConfig()
	}
	if aqmCfg.Kind == aqm.RED {
		aqmCfg.RED.Seed = SplitSeed(seed, 4)
	}
	queueCfg.AQM = aqmCfg

	star := topology.NewStar(sched, rwServers, netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: queueCfg,
	})
	if err := env.partition(star.Shard); err != nil {
		return nil, err
	}
	if policy == "tracks" {
		// Switch assistance, attached after partitioning so the agent
		// binds to the ToR's shard scheduler.
		if _, err := netsim.AttachTRACKs(star.Net, star.Switch, netsim.TRACKsConfig{}); err != nil {
			return nil, err
		}
	}
	fleet, err := httpapp.NewFleet(star.Net, httpapp.FleetConfig{
		Senders:     star.Senders,
		FrontEnd:    star.FrontEnd,
		NewCC:       func() tcp.CongestionControl { return MustCCWithBaseRTT(ProtoTRIM, ksBaseRTT) },
		NewRecovery: func() tcp.RecoveryPolicy { return mustRecovery(policy) },
		Base: tcp.Config{
			MinRTO:   tcp.DefaultMinRTO,
			MaxRTO:   rwMaxRTO,
			SACK:     true,
			LinkRate: netsim.Gbps,
			// The sweep's fault injectors love the lone-tail corner (a
			// single trailing segment lost with no dupACK source); keep the
			// RTO armed there so recovery is bounded by the timer, not the
			// horizon.
			ArmRTOOnLoneTail: true,
		},
	})
	if err != nil {
		return nil, err
	}
	for _, srv := range fleet.Servers {
		trains := workload.ScheduleCount(rng, sim.At(100*time.Millisecond), rwPerServer,
			workload.UniformSize{Min: 8 << 10, Max: 64 << 10},
			workload.ExponentialGap{Mean: 4 * time.Millisecond})
		if err := srv.ScheduleTrains(trains); err != nil {
			return nil, err
		}
	}

	// Fault arming mirrors the resilience matrix: each injector draws from
	// its own SplitSeed stream on the bottleneck for [rwFaultStart,
	// rwFaultEnd), flaps included.
	bn := star.Bottleneck
	if _, err := sched.At(sim.At(rwFaultStart), func() {
		if fi.GE.Enabled() {
			bn.InjectGilbertElliott(fi.GE, sim.NewRand(SplitSeed(seed, 1)))
		}
		if fi.ReorderProb > 0 {
			bn.InjectReorder(fi.ReorderProb, fi.ReorderExtra, sim.NewRand(SplitSeed(seed, 2)))
		}
		if fi.DupProb > 0 {
			bn.InjectDuplicate(fi.DupProb, sim.NewRand(SplitSeed(seed, 3)))
		}
	}); err != nil {
		return nil, err
	}
	if _, err := sched.At(sim.At(rwFaultEnd), func() {
		bn.InjectGilbertElliott(netsim.GEConfig{}, nil)
		bn.InjectReorder(0, 0, nil)
		bn.InjectDuplicate(0, nil)
	}); err != nil {
		return nil, err
	}
	if fi.FlapCount > 0 {
		if err := bn.ScheduleFlaps(netsim.FlapConfig{
			FirstDownAt: sim.At(rwFaultStart + 50*time.Millisecond),
			DownFor:     fi.FlapDown,
			UpFor:       fi.FlapUp,
			Count:       fi.FlapCount,
		}); err != nil {
			return nil, err
		}
	}

	var bytesAtStart, bytesAtEnd int64
	if _, err := sched.At(sim.At(rwFaultStart), func() { bytesAtStart = fleet.TotalDelivered() }); err != nil {
		return nil, err
	}
	if _, err := sched.At(sim.At(rwFaultEnd), func() { bytesAtEnd = fleet.TotalDelivered() }); err != nil {
		return nil, err
	}

	// Stop as soon as the backlog drains; timeout-bound cells otherwise
	// idle to the deadline. The watch is a sync event (it reads every
	// shard's collector bucket), started after the fault window so the
	// goodput snapshot above still runs.
	var watch func()
	watch = func() {
		if fleet.Collector.Pending() == 0 {
			env.stop()
			return
		}
		env.syncAfter(sched, 10*time.Millisecond, watch)
	}
	if err := env.syncAt(sched, sim.At(rwFaultEnd), watch); err != nil {
		return nil, err
	}

	star.Net.ScheduleInvariantChecks(rsCheckEvery)
	env.runUntil(sim.At(rwDeadline))
	star.Net.CheckInvariants()

	row := &RecoverySweepRow{
		Policy:    policy,
		AQM:       aqmName,
		Intensity: fi.Name,
		Buffer:    buffer,
		Total:     rwServers * rwPerServer,
		WindowMbps: float64(bytesAtEnd-bytesAtStart) * 8 /
			(rwFaultEnd - rwFaultStart).Seconds() / 1e6,
		Retrans: fleet.Retransmissions(),
	}
	for _, c := range fleet.Conns {
		row.Timeouts += c.Stats().Timeouts
	}
	var d metrics.Distribution
	var last sim.Time
	for _, resp := range fleet.Collector.Responses() {
		d.AddDuration(resp.CompletionTime())
		if resp.Completed > last {
			last = resp.Completed
		}
	}
	row.Complete = len(fleet.Collector.Responses())
	row.MeanFCT = secondsToDuration(d.Mean())
	row.P99FCT = secondsToDuration(d.Percentile(99))
	switch {
	case row.Complete < row.Total:
		row.RecoveryTime = -1
	case last > sim.At(rwFaultEnd):
		row.RecoveryTime = last.Sub(sim.At(rwFaultEnd))
	}
	return row, nil
}

// WriteTables renders the matrix with the per-trigger retransmission
// split.
func (r *RecoverySweepResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title: "Extension: loss-recovery policy sweep (recovery x AQM x faults x buffer)",
		Header: []string{"recovery", "aqm", "faults", "buf", "goodput", "mean fct",
			"p99 fct", "timeouts", "rto-rtx", "fast-rtx", "tlp", "spurious",
			"signals", "recovery", "completed"},
		Caption: fmt.Sprintf("goodput measured inside the fault window [%v, %v); "+
			"MinRTO is the stock %v so each repair the policy cannot trigger early costs an RTO stall",
			r.FaultStart, r.FaultEnd, tcp.DefaultMinRTO),
	}
	for _, row := range r.Rows {
		recovery := row.RecoveryTime.Round(100 * time.Microsecond).String()
		if row.RecoveryTime < 0 {
			recovery = "never"
		}
		t.Rows = append(t.Rows, []string{
			row.Policy,
			row.AQM,
			row.Intensity,
			fmt.Sprintf("%d", row.Buffer),
			fmt.Sprintf("%.1f Mbps", row.WindowMbps),
			row.MeanFCT.Round(10 * time.Microsecond).String(),
			row.P99FCT.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", row.Timeouts),
			fmt.Sprintf("%d", row.Retrans.Timeout),
			fmt.Sprintf("%d", row.Retrans.Fast),
			fmt.Sprintf("%d", row.Retrans.Probes),
			fmt.Sprintf("%d", row.Retrans.Spurious),
			fmt.Sprintf("%d", row.Retrans.Signals),
			recovery,
			fmt.Sprintf("%d/%d", row.Complete, row.Total),
		})
	}
	return t.Write(w)
}

var _ = register("recoverysweep",
	"Loss-recovery sweep: policy x AQM x fault x buffer on the faulted incast star",
	[]string{"aqm", "recovery"},
	func(opts Options, w io.Writer) error {
		res, err := RunRecoverySweep(tcp.RecoveryNames(), RecoverySweepAQMs,
			recoverySweepIntensities(), RecoverySweepBuffers, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})

// recoverysweep-smoke is the CI chaos check: all three policies on the
// hardest corner (severe faults, tiny drop-tail buffer), fast enough for
// every push.
var _ = register("recoverysweep-smoke",
	"CI slice of recoverysweep: all policies on the severe tiny-buffer corner",
	[]string{"recovery"},
	func(opts Options, w io.Writer) error {
		res, err := RunRecoverySweep(tcp.RecoveryNames(), []string{"droptail"},
			[]FaultIntensity{DefaultFaultIntensities[3]}, []int{aqm.TinyBufferPackets}, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
