package experiment

// aqmsweep: TRIM-vs-AQM interplay study. The paper argues TRIM's
// delay-based control needs no switch support, but leaves open how it
// interacts with switches that do run AQM — exactly the regime Briscoe &
// De Schepper show matters at data-center RTTs, where AQM alone cannot
// stop window-driven queue buildup. This sweep crosses {TCP, TRIM,
// DCTCP} × {DropTail, RED, CoDel, FavourQueue} × concurrency levels on
// the many-to-one star (short responses over two long background flows)
// and reports goodput, mean/99p flow completion time, and bottleneck
// queue occupancy, quantifying whether TRIM's end-host delay control is
// redundant, complementary, or harmful under each switch discipline.
// Every cell runs with the simulator's invariant checker armed, so an
// AQM packet-accounting bug (leaked or double-released head-drop) fails
// the sweep loudly.

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/aqm"
	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
	"tcptrim/internal/workload"
)

// Sweep scenario constants: the star again, with two long background
// flows building a standing queue under the short-response fleet.
const (
	asLPTs       = 2
	asRespServer = 60
	asRespMin    = 2 << 10
	asRespMax    = 10 << 10
	asRespMean   = 2 * time.Millisecond
	asStart      = 100 * time.Millisecond
	asDeadline   = 20 * time.Second
	asBuffer     = 100 // packets, the paper's switch buffer
	asECNThresh  = 20  // packets, DCTCP-style threshold for droptail/favour
	asCheckEvery = 5 * time.Millisecond
	asSampleStep = 100 * time.Microsecond
)

// AQMDiscipline names one switch configuration of the sweep. The
// disciplines carry DC-tuned parameters; RED and CoDel mark ECT packets
// (so DCTCP keeps its signal) and drop the rest.
type AQMDiscipline struct {
	Name string
	// Config builds the discipline for one cell; seed feeds RED's
	// uniformization draw so cells stay deterministic and independent.
	Config func(seed int64) aqm.Config
	// ECNThreshold is the instantaneous marking threshold in packets
	// (used by the threshold-marking disciplines; 0 = none).
	ECNThreshold int
}

// DefaultAQMDisciplines is the discipline axis of the sweep.
var DefaultAQMDisciplines = []AQMDiscipline{
	{
		Name:         "droptail",
		Config:       func(int64) aqm.Config { return aqm.Config{Kind: aqm.DropTail} },
		ECNThreshold: asECNThresh,
	},
	{
		Name: "red",
		Config: func(seed int64) aqm.Config {
			return aqm.Config{Kind: aqm.RED, RED: aqm.REDConfig{ECN: true, Seed: seed}}
		},
	},
	{
		Name: "codel",
		Config: func(int64) aqm.Config {
			return aqm.Config{Kind: aqm.CoDel, CoDel: aqm.CoDelConfig{ECN: true}}
		},
	},
	{
		Name:         "favour",
		Config:       func(int64) aqm.Config { return aqm.Config{Kind: aqm.FavourQueue} },
		ECNThreshold: asECNThresh,
	},
}

// AQMSweepProtocols is the default protocol axis.
var AQMSweepProtocols = []Protocol{ProtoTCP, ProtoTRIM, ProtoDCTCP}

// AQMSweepConcurrency is the default concurrency axis: short-flow servers
// sharing the bottleneck with the two background flows.
var AQMSweepConcurrency = []int{10, 40, 120}

// AQMSweepRow is one (protocol, discipline, concurrency) cell.
type AQMSweepRow struct {
	Protocol   Protocol
	Discipline string
	// Concurrency is the number of short-flow servers (the star also
	// carries two long background flows).
	Concurrency int
	// GoodputMbps is aggregate delivered goodput from the workload start
	// until the last short response completed (or the deadline).
	GoodputMbps float64
	// MeanFCT / P99FCT summarize short-response completion times.
	MeanFCT, P99FCT time.Duration
	// AvgQueue / MaxQueue are the bottleneck queue occupancy in packets.
	AvgQueue float64
	MaxQueue int
	// Queue is the bottleneck's drop/mark ledger (tail vs AQM early vs
	// AQM head drops).
	Queue netsim.QueueStats
	// AQM is the bottleneck discipline's own counters.
	AQM      aqm.Stats
	Timeouts int
	Complete int
	Total    int
}

// AQMSweepResult holds the full cross.
type AQMSweepResult struct {
	Rows []AQMSweepRow
}

// RunAQMSweep crosses protocols × disciplines × concurrency levels, one
// independent simulation per cell, each seeded via SplitSeed so the
// matrix is byte-identical regardless of worker count.
func RunAQMSweep(protos []Protocol, discs []AQMDiscipline, concs []int, opts Options) (*AQMSweepResult, error) {
	type cell struct {
		proto Protocol
		disc  AQMDiscipline
		conc  int
	}
	var cells []cell
	for _, p := range protos {
		for _, d := range discs {
			for _, c := range concs {
				cells = append(cells, cell{p, d, c})
			}
		}
	}
	ctr := opts.cells(len(cells))
	rows, err := RunSeededTrials(len(cells), opts.seed(), func(i int, seed int64) (*AQMSweepRow, error) {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		c := cells[i]
		spec := struct {
			Family      string   `json:"family"`
			Protocol    Protocol `json:"protocol"`
			Discipline  string   `json:"discipline"`
			Concurrency int      `json:"concurrency"`
			Seed        int64    `json:"seed"`
		}{"aqmsweep", c.proto, c.disc.Name, c.conc, seed}
		row, _, err := cachedCell(opts, spec, func() (*AQMSweepRow, error) {
			return runAQMSweepCell(c.proto, c.disc, c.conc, seed)
		})
		if err == nil {
			// Fires on cache hits too, so a warm run streams the same
			// cell-milestone sequence a cold run would.
			ctr.finished(fmt.Sprintf("%s/%s/%d-conns", c.proto, c.disc.Name, c.conc))
		}
		return row, err
	})
	if err != nil {
		return nil, err
	}
	out := &AQMSweepResult{}
	for _, r := range rows {
		out.Rows = append(out.Rows, *r)
	}
	return out, nil
}

func runAQMSweepCell(proto Protocol, disc AQMDiscipline, conc int, seed int64) (*AQMSweepRow, error) {
	rng := sim.NewRand(seed)
	sched := sim.NewScheduler()
	star := topology.NewStar(sched, asLPTs+conc, netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{
			CapPackets:          asBuffer,
			ECNThresholdPackets: disc.ECNThreshold,
			AQM:                 disc.Config(SplitSeed(seed, 1)),
		},
	})
	fleet, err := httpapp.NewFleet(star.Net, httpapp.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC:    func() tcp.CongestionControl { return MustCCWithBaseRTT(proto, ksBaseRTT) },
		Base: tcp.Config{
			MinRTO:   10 * time.Millisecond,
			SACK:     true,
			ECN:      UsesECN(proto),
			LinkRate: netsim.Gbps,
		},
	})
	if err != nil {
		return nil, err
	}
	// Two endless background flows keep a standing queue under the short
	// responses for the whole measurement.
	for i := 0; i < asLPTs; i++ {
		if err := fleet.Servers[i].StartBackgroundFlow(sim.At(asStart), concBackground); err != nil {
			return nil, err
		}
	}
	for i := asLPTs; i < asLPTs+conc; i++ {
		trains := workload.ScheduleCount(rng, sim.At(asStart), asRespServer,
			workload.UniformSize{Min: asRespMin, Max: asRespMax},
			workload.ExponentialGap{Mean: asRespMean})
		if err := fleet.Servers[i].ScheduleTrains(trains); err != nil {
			return nil, err
		}
	}

	// Bottleneck occupancy, and goodput over [asStart, last completion].
	queue := star.Bottleneck.Queue()
	occupancy := metrics.Sample(sched, sim.At(asStart), sim.At(asDeadline),
		asSampleStep, func() float64 { return float64(queue.Len()) })
	var startBytes int64
	if _, err := sched.At(sim.At(asStart), func() { startBytes = fleet.TotalDelivered() }); err != nil {
		return nil, err
	}
	// Stop once every short response completed; the background flows
	// would otherwise run to the deadline for nothing.
	var doneAt sim.Time
	var doneBytes int64
	var watch func()
	watch = func() {
		if fleet.Collector.Pending() == 0 {
			doneAt, doneBytes = sched.Now(), fleet.TotalDelivered()
			sched.Stop()
			return
		}
		sched.After(time.Millisecond, watch)
	}
	if _, err := sched.At(sim.At(asStart).Add(time.Millisecond), watch); err != nil {
		return nil, err
	}

	star.Net.ScheduleInvariantChecks(asCheckEvery)
	sched.RunUntil(sim.At(asDeadline))
	star.Net.CheckInvariants()
	if doneAt == 0 {
		doneAt, doneBytes = sched.Now(), fleet.TotalDelivered()
	}

	var d metrics.Distribution
	for _, r := range fleet.Collector.Responses() {
		d.AddDuration(r.CompletionTime())
	}
	row := &AQMSweepRow{
		Protocol:    proto,
		Discipline:  disc.Name,
		Concurrency: conc,
		Total:       conc * asRespServer,
		Complete:    d.Count(),
		AvgQueue:    occupancy.Mean(),
		MaxQueue:    int(occupancy.Max()),
		Queue:       queue.Stats(),
		AQM:         queue.AQMStats(),
		Timeouts:    fleet.TotalTimeouts(),
	}
	if window := doneAt.Sub(sim.At(asStart)).Seconds(); window > 0 {
		row.GoodputMbps = float64(doneBytes-startBytes) * 8 / window / 1e6
	}
	if d.Count() > 0 {
		row.MeanFCT = secondsToDuration(d.Mean())
		row.P99FCT = secondsToDuration(d.Percentile(99))
	}
	return row, nil
}

// WriteTables renders the sweep with the drop ledger split by cause.
func (r *AQMSweepResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title: "Extension: TRIM-vs-AQM interplay sweep",
		Header: []string{"protocol", "aqm", "conc", "goodput", "mean FCT", "99p FCT",
			"avg q", "max q", "tail", "early", "head", "marks", "favoured",
			"timeouts", "completed"},
		Caption: "short-response FCT over 2 background flows on the 1 Gbps star; " +
			"drops split by cause: tail (buffer full), early (RED), head (CoDel)",
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			string(row.Protocol),
			row.Discipline,
			fmt.Sprintf("%d", row.Concurrency),
			fmt.Sprintf("%.1f Mbps", row.GoodputMbps),
			row.MeanFCT.Round(10 * time.Microsecond).String(),
			row.P99FCT.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%.1f", row.AvgQueue),
			fmt.Sprintf("%d", row.MaxQueue),
			fmt.Sprintf("%d", row.Queue.TailDrops),
			fmt.Sprintf("%d", row.Queue.EarlyDrops),
			fmt.Sprintf("%d", row.Queue.HeadDrops),
			fmt.Sprintf("%d", row.Queue.Marked),
			fmt.Sprintf("%d", row.AQM.Favoured),
			fmt.Sprintf("%d", row.Timeouts),
			fmt.Sprintf("%d/%d", row.Complete, row.Total),
		})
	}
	return t.Write(w)
}

var _ = register("aqmsweep",
	"TRIM-vs-AQM interplay: protocol x discipline x concurrency, FCT/goodput/drop split",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunAQMSweep(AQMSweepProtocols, DefaultAQMDisciplines, AQMSweepConcurrency, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})

// aqmsweep-smoke is the CI slice: one protocol, every discipline, lowest
// concurrency, fast enough for every push.
var _ = register("aqmsweep-smoke",
	"CI slice of aqmsweep: one protocol, every discipline, lowest concurrency",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunAQMSweep([]Protocol{ProtoTRIM}, DefaultAQMDisciplines,
			AQMSweepConcurrency[:1], opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
