package experiment

import (
	"testing"
	"time"
)

func TestExtensionDeadlineIncast(t *testing.T) {
	if testing.Short() {
		t.Skip("deadline incast")
	}
	res, err := RunDeadline(Options{})
	if err != nil {
		t.Fatal(err)
	}
	dctcp, d2tcp := res.Row("DCTCP"), res.Row("D2TCP")
	if dctcp == nil || d2tcp == nil {
		t.Fatal("missing rows")
	}
	// Deadline-blind DCTCP shares evenly: tight deadlines below the
	// fair-share completion time are mostly missed.
	if dctcp.TightMet > dctcp.TightTotal/2 {
		t.Errorf("DCTCP met %d/%d tight deadlines; the budget should be unmeetable at fair share",
			dctcp.TightMet, dctcp.TightTotal)
	}
	// D2TCP lets near-deadline flows keep bandwidth: most tight
	// deadlines met, and the loose half still unharmed.
	if d2tcp.TightMet <= dctcp.TightMet {
		t.Errorf("D2TCP tight-met %d not above DCTCP %d", d2tcp.TightMet, dctcp.TightMet)
	}
	if d2tcp.TightMet < d2tcp.TightTotal*3/4 {
		t.Errorf("D2TCP met only %d/%d tight deadlines", d2tcp.TightMet, d2tcp.TightTotal)
	}
	if d2tcp.LooseMet != d2tcp.LooseTotal {
		t.Errorf("D2TCP loose deadlines: %d/%d", d2tcp.LooseMet, d2tcp.LooseTotal)
	}
}

func TestExtensionDelayBasedInheritance(t *testing.T) {
	if testing.Short() {
		t.Skip("delay-based comparison")
	}
	res, err := RunDelayBased(Options{})
	if err != nil {
		t.Fatal(err)
	}
	vegas, trim := res.Row("Vegas"), res.Row("TCP-TRIM")
	if vegas == nil || trim == nil {
		t.Fatal("missing rows")
	}
	// Vegas is delay-based but window-inheritance-blind: it suffers the
	// Fig. 4 collapse just like Reno.
	if vegas.Timeouts == 0 {
		t.Error("Vegas should suffer inherited-window timeouts on the ON/OFF workload")
	}
	if trim.Timeouts != 0 {
		t.Errorf("TRIM timeouts = %d", trim.Timeouts)
	}
	if trim.LPTMean*5 > vegas.LPTMean {
		t.Errorf("TRIM LPT %v should be far below Vegas %v", trim.LPTMean, vegas.LPTMean)
	}
	if trim.LPTMean > 50*time.Millisecond {
		t.Errorf("TRIM LPT mean = %v", trim.LPTMean)
	}
}

func TestAblationBufferInsensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("buffer sweep")
	}
	res, err := RunBufferAblation([]Protocol{ProtoTCP, ProtoTRIM}, []int{20, 200}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shallow := res.Row(ProtoTRIM, 20)
	deep := res.Row(ProtoTRIM, 200)
	// TRIM's standing queue is set by K, not by the buffer: the average
	// queue must be essentially identical across a 10× buffer range.
	if diff := shallow.AvgQueue - deep.AvgQueue; diff > 3 || diff < -3 {
		t.Errorf("TRIM AQL varies with buffer: %v vs %v", shallow.AvgQueue, deep.AvgQueue)
	}
	if shallow.GoodputMbps < 950 || deep.GoodputMbps < 950 {
		t.Errorf("TRIM goodput degraded: %v / %v Mbps", shallow.GoodputMbps, deep.GoodputMbps)
	}
	// Drop-tail TCP fills whatever buffer exists.
	tcpDeep := res.Row(ProtoTCP, 200)
	if tcpDeep.AvgQueue < 3*deep.AvgQueue {
		t.Errorf("TCP AQL %v not far above TRIM %v with deep buffers",
			tcpDeep.AvgQueue, deep.AvgQueue)
	}
}

func TestExtensionJitterBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("jitter sweep")
	}
	res, err := RunJitter([]time.Duration{0, 50 * time.Microsecond, 400 * time.Microsecond}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Within the K−D allowance utilization holds; far beyond it TRIM
	// backs off spuriously.
	if res.Rows[1].Utilization < 0.98 {
		t.Errorf("50µs jitter utilization = %v", res.Rows[1].Utilization)
	}
	if res.Rows[2].Utilization > 0.9 {
		t.Errorf("400µs jitter utilization = %v, expected collapse", res.Rows[2].Utilization)
	}
	if res.Rows[0].Drops != 0 || res.Rows[1].Drops != 0 {
		t.Error("jitter within budget must not cause drops")
	}
}

func TestExtensionLossSACKHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("loss sweep")
	}
	res, err := RunLossRobustness([]float64{2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain := res.Row("TCP", 2)
	sacked := res.Row("TCP+SACK", 2)
	if sacked.Retrans >= plain.Retrans {
		t.Errorf("SACK retrans %d not below plain %d under 2%% loss",
			sacked.Retrans, plain.Retrans)
	}
	if sacked.P99 > plain.P99 {
		t.Errorf("SACK P99 %v above plain %v", sacked.P99, plain.P99)
	}
	for _, row := range res.Rows {
		if row.Complete != row.Total {
			t.Errorf("%s: %d/%d completed", row.Variant, row.Complete, row.Total)
		}
	}
}

func TestExtensionScatterGatherGradient(t *testing.T) {
	if testing.Short() {
		t.Skip("scatter/gather")
	}
	res, err := RunScatterGather([]Protocol{ProtoTCP, ProtoDCTCP, ProtoTRIM}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tcpRow := res.Row(ProtoTCP)
	dctcpRow := res.Row(ProtoDCTCP)
	trimRow := res.Row(ProtoTRIM)
	if tcpRow.Rounds != scRounds || trimRow.Rounds != scRounds {
		t.Fatalf("incomplete rounds: tcp=%d trim=%d", tcpRow.Rounds, trimRow.Rounds)
	}
	// Barrier latency gradient: TCP (RTO-bound) ≫ DCTCP ≫ TRIM.
	if !(trimRow.MeanBarrier < dctcpRow.MeanBarrier && dctcpRow.MeanBarrier < tcpRow.MeanBarrier) {
		t.Errorf("gradient broken: TCP %v, DCTCP %v, TRIM %v",
			tcpRow.MeanBarrier, dctcpRow.MeanBarrier, trimRow.MeanBarrier)
	}
	if trimRow.Timeouts != 0 {
		t.Errorf("TRIM timeouts = %d", trimRow.Timeouts)
	}
	if tcpRow.Timeouts == 0 {
		t.Error("TCP should hit RTOs in request-driven incast")
	}
	// TRIM's tail is flat: P99 within 25% of the mean.
	if float64(trimRow.P99Barrier) > 1.25*float64(trimRow.MeanBarrier) {
		t.Errorf("TRIM tail not flat: mean %v, P99 %v", trimRow.MeanBarrier, trimRow.P99Barrier)
	}
}
