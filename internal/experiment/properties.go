package experiment

import (
	"fmt"
	"io"
	"sort"
	"time"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
)

// Fig. 9 scenario: long flows through the 100-packet star bottleneck.
// (a) queue trace with 5 flows from 0.1 s to 0.9 s; (b)(c) average queue
// length and drops for 2–10 concurrent flows with a 1 ms RTO ("to avoid
// the impact of TCP timeout"); (d) bottleneck goodput.
const (
	propFlowStart  = 100 * time.Millisecond
	propFlowStop   = 900 * time.Millisecond
	propShortRTO   = time.Millisecond
	propSampleStep = 100 * time.Microsecond
)

// PropertiesRow is one (protocol, flows) cell of Fig. 9(b)–(d).
type PropertiesRow struct {
	Protocol    Protocol
	Flows       int
	AvgQueue    float64 // packets
	MaxQueue    int
	Drops       int
	Timeouts    int
	GoodputMbps float64
	Utilization float64
}

// PropertiesResult aggregates the Fig. 9 outputs.
type PropertiesResult struct {
	// QueueTrace is the 5-flow bottleneck queue trace per protocol
	// (Fig. 9(a)), sampled every 100 µs.
	QueueTrace map[Protocol]*metrics.Series
	// Rows sweep 2–10 concurrent flows per protocol (Fig. 9(b)–(d)).
	Rows []PropertiesRow
}

// Row returns the cell for (proto, flows), or nil.
func (r *PropertiesResult) Row(proto Protocol, flows int) *PropertiesRow {
	for i := range r.Rows {
		if r.Rows[i].Protocol == proto && r.Rows[i].Flows == flows {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunProperties executes the Fig. 9 scenarios for the given protocols
// (the paper compares TCP and TCP-TRIM). Alpha, if nonzero, overrides
// TCP-TRIM's smoothing weight (used by the abl-alpha ablation).
func RunProperties(protos []Protocol, minFlows, maxFlows int, opts Options) (*PropertiesResult, error) {
	for _, p := range protos {
		if _, err := NewCC(p); err != nil {
			return nil, err
		}
	}
	out := &PropertiesResult{QueueTrace: make(map[Protocol]*metrics.Series, len(protos))}

	type cell struct {
		proto Protocol
		flows int
		trace bool
	}
	var cells []cell
	for _, p := range protos {
		cells = append(cells, cell{proto: p, flows: 5, trace: true})
		for n := minFlows; n <= maxFlows; n++ {
			cells = append(cells, cell{proto: p, flows: n})
		}
	}
	type propCell struct {
		row   *PropertiesRow
		trace *metrics.Series
	}
	results, err := RunTrials(len(cells), func(i int) (propCell, error) {
		row, trace, err := runPropertiesCell(cells[i].proto, cells[i].flows, cells[i].trace)
		return propCell{row: row, trace: trace}, err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		if c.trace {
			out.QueueTrace[c.proto] = results[i].trace
			name := "fig9-queue-" + string(c.proto)
			if err := saveSeriesCSV(opts, name, "packets", results[i].trace); err != nil {
				return nil, err
			}
			continue
		}
		out.Rows = append(out.Rows, *results[i].row)
	}
	return out, nil
}

func runPropertiesCell(proto Protocol, flows int, trace bool) (*PropertiesRow, *metrics.Series, error) {
	sched := sim.NewScheduler()
	star := topology.NewStar(sched, flows, topology.DefaultStarLink(100))
	rto := propShortRTO
	if trace {
		rto = impairmentRTO
	}
	fleet, err := httpapp.NewFleet(star.Net, httpapp.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC:    func() tcp.CongestionControl { return MustCC(proto) },
		Base: tcp.Config{
			MinRTO:   rto,
			ECN:      UsesECN(proto),
			LinkRate: netsim.Gbps,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	for _, srv := range fleet.Servers {
		if err := srv.StartBackgroundFlow(sim.At(propFlowStart), concBackground); err != nil {
			return nil, nil, err
		}
	}
	queue := star.Bottleneck.Queue()
	series := metrics.Sample(sched, sim.At(propFlowStart), sim.At(propFlowStop),
		propSampleStep, func() float64 { return float64(queue.Len()) })

	var startBytes int64
	if _, err := sched.At(sim.At(propFlowStart), func() { startBytes = fleet.TotalDelivered() }); err != nil {
		return nil, nil, err
	}
	sched.RunUntil(sim.At(propFlowStop))

	window := propFlowStop - propFlowStart
	deliveredBits := float64(fleet.TotalDelivered()-startBytes) * 8
	goodput := deliveredBits / window.Seconds()
	row := &PropertiesRow{
		Protocol:    proto,
		Flows:       flows,
		AvgQueue:    series.Mean(),
		MaxQueue:    int(series.Max()),
		Drops:       queue.Stats().Dropped,
		Timeouts:    fleet.TotalTimeouts(),
		GoodputMbps: goodput / 1e6,
		// Payload-bytes utilization: the wire ceiling is scaled by the
		// MSS/wire-size efficiency.
		Utilization: goodput / (float64(netsim.Gbps) * netsim.MSS / (netsim.MSS + netsim.HeaderSize)),
	}
	return row, series, nil
}

// WriteTables renders the Fig. 9 outputs.
func (r *PropertiesResult) WriteTables(w io.Writer) error {
	// Iterate traces in sorted protocol order: map iteration order would
	// make the rendered output nondeterministic across runs, which breaks
	// byte-identical verification and content-addressed result caching.
	protos := make([]Protocol, 0, len(r.QueueTrace))
	for proto := range r.QueueTrace {
		protos = append(protos, proto)
	}
	sort.Slice(protos, func(i, j int) bool { return protos[i] < protos[j] })
	for _, proto := range protos {
		trace := r.QueueTrace[proto]
		t := &Table{
			Title:  fmt.Sprintf("Fig. 9(a) queue behaviour with 5 long flows (%s)", proto),
			Header: []string{"metric", "packets"},
			Rows: [][]string{
				{"mean queue", fmt.Sprintf("%.1f", trace.Mean())},
				{"max queue", fmt.Sprintf("%.0f", trace.Max())},
			},
		}
		if err := t.Write(w); err != nil {
			return err
		}
	}
	t := &Table{
		Title: "Fig. 9(b)-(d): queue, drops, goodput vs concurrent flows",
		Header: []string{"protocol", "flows", "avg queue", "max queue", "drops",
			"timeouts", "goodput (Mbps)", "utilization"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			string(row.Protocol),
			fmt.Sprintf("%d", row.Flows),
			fmt.Sprintf("%.1f", row.AvgQueue),
			fmt.Sprintf("%d", row.MaxQueue),
			fmt.Sprintf("%d", row.Drops),
			fmt.Sprintf("%d", row.Timeouts),
			fmt.Sprintf("%.0f", row.GoodputMbps),
			fmt.Sprintf("%.3f", row.Utilization),
		})
	}
	return t.Write(w)
}

var _ = register("fig9",
	"TRIM properties: queue behaviour with long flows, and queue/drops/goodput vs flow count (Fig. 9)",
	[]string{"csv"},
	func(opts Options, w io.Writer) error {
		res, err := RunProperties([]Protocol{ProtoTCP, ProtoTRIM}, 2, 10, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
