package experiment

// ext-jitter: TCP-TRIM's delay signal under RTT noise. TRIM reads
// congestion from RTT exceeding K; random per-packet delay jitter (NIC
// interrupt coalescing, scheduling noise — the reason the paper insists
// on microsecond-resolution timers) inflates samples and can trigger
// spurious back-offs. The sweep injects up to hundreds of microseconds of
// uniform jitter on the bottleneck and reports what survives of TRIM's
// utilization and queue control.

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/core"
	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
)

// JitterRow is one jitter setting's outcome.
type JitterRow struct {
	Jitter      time.Duration
	Utilization float64
	AvgQueue    float64
	Drops       int
	Timeouts    int
}

// JitterResult holds the ext-jitter sweep.
type JitterResult struct {
	Rows []JitterRow
}

// RunJitter sweeps bottleneck delay jitter under 5 TCP-TRIM long flows.
func RunJitter(jitters []time.Duration, opts Options) (*JitterResult, error) {
	out := &JitterResult{}
	for _, j := range jitters {
		row, err := runJitterCell(j, opts.seed())
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

func runJitterCell(jitter time.Duration, seed int64) (*JitterRow, error) {
	sched := sim.NewScheduler()
	star := topology.NewStar(sched, ksFlows, topology.DefaultStarLink(100))
	if jitter > 0 {
		star.Bottleneck.InjectJitter(jitter, sim.NewRand(seed+int64(jitter)))
	}
	fleet, err := httpapp.NewFleet(star.Net, httpapp.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC: func() tcp.CongestionControl {
			// K sized for the jitter-free topology: the sweep measures
			// what unmodeled noise does to that calibration.
			return core.New(core.Config{BaseRTT: ksBaseRTT})
		},
		Base: tcp.Config{
			MinRTO:   10 * time.Millisecond,
			LinkRate: netsim.Gbps,
		},
	})
	if err != nil {
		return nil, err
	}
	for _, srv := range fleet.Servers {
		if err := srv.StartBackgroundFlow(sim.At(propFlowStart), concBackground); err != nil {
			return nil, err
		}
	}
	queue := star.Bottleneck.Queue()
	series := metrics.Sample(sched, sim.At(propFlowStart), sim.At(propFlowStop),
		propSampleStep, func() float64 { return float64(queue.Len()) })
	sched.RunUntil(sim.At(propFlowStop))

	window := (propFlowStop - propFlowStart).Seconds()
	goodput := float64(fleet.TotalDelivered()) * 8 / window
	ceiling := float64(netsim.Gbps) * netsim.MSS / (netsim.MSS + netsim.HeaderSize)
	return &JitterRow{
		Jitter:      jitter,
		Utilization: goodput / ceiling,
		AvgQueue:    series.Mean(),
		Drops:       queue.Stats().Dropped,
		Timeouts:    fleet.TotalTimeouts(),
	}, nil
}

// WriteTables renders ext-jitter.
func (r *JitterResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  "Extension: TRIM under RTT jitter (5 long flows, K sized for zero jitter)",
		Header: []string{"jitter (max)", "utilization", "avg queue", "drops", "timeouts"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Jitter.String(),
			fmt.Sprintf("%.3f", row.Utilization),
			fmt.Sprintf("%.1f", row.AvgQueue),
			fmt.Sprintf("%d", row.Drops),
			fmt.Sprintf("%d", row.Timeouts),
		})
	}
	return t.Write(w)
}

var _ = register("ext-jitter",
	"Extension: TRIM's delay signal under per-packet RTT jitter",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunJitter([]time.Duration{
			0,
			20 * time.Microsecond,
			50 * time.Microsecond,
			100 * time.Microsecond,
			300 * time.Microsecond,
		}, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
