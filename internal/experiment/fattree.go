package experiment

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
	"tcptrim/internal/topology"
)

// Fig. 12 / Table I scenario: a k-pod fat-tree with 10 Gbps links and
// 350 KB switch buffers. Every server sends 1 MB over a persistent
// connection to a randomly selected sink server "which acts as the
// front-end": one host per pod serves as a front-end (the paper's
// partition/aggregation pattern), and each remaining server picks one at
// random. The 1 MB is pre-divided into small objects of 2–6 KB released
// from 0.1 s and one big object (the remainder) released at 0.5 s, so the
// big objects collide as a many-to-one burst with inherited windows.
// DCTCP/L2DCT use the standard 10 Gbps ECN marking threshold (65
// packets).
const (
	ftTotalBytes   = 1 << 20
	ftSmallMin     = 2 << 10
	ftSmallMax     = 6 << 10
	ftSmallCount   = 100
	ftSmallStart   = 100 * time.Millisecond
	ftSmallGapMean = 100 * time.Microsecond
	ftBigStart     = 500 * time.Millisecond
	ftHorizon      = 5 * time.Second
	ftRTO          = 10 * time.Millisecond
	ftBufferBytes  = 350 << 10
	ftECNThreshold = 65 // packets, standard DCTCP K for 10 Gbps
	ftLinkDelay    = 10 * time.Microsecond
	// Queue-free inter-pod RTT: 6 hops × (1.2+10) µs data + 6 × 10 µs
	// ACK ≈ 128 µs.
	ftBaseRTT = 128 * time.Microsecond
)

// FatTreeRow is one (protocol, pods) cell of Fig. 12 / Table I.
type FatTreeRow struct {
	Protocol Protocol
	Pods     int
	Servers  int
	// MeanCT / MaxCT are over the per-response completion times of all
	// servers' objects, small and big (Fig. 12).
	MeanCT time.Duration
	MaxCT  time.Duration
	// Timeouts is the total number of RTO events (Table I).
	Timeouts int
	// Completed counts senders whose 1 MB fully completed; Servers is
	// the number of sending servers (hosts minus the per-pod
	// front-ends).
	Completed int
}

// FatTreeResult holds the protocol comparison.
type FatTreeResult struct {
	Rows []FatTreeRow
}

// Row returns the cell for (proto, pods), or nil.
func (r *FatTreeResult) Row(proto Protocol, pods int) *FatTreeRow {
	for i := range r.Rows {
		if r.Rows[i].Protocol == proto && r.Rows[i].Pods == pods {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunFatTree executes the Fig. 12 / Table I comparison over the given
// pod counts and protocols.
func RunFatTree(protos []Protocol, podCounts []int, opts Options) (*FatTreeResult, error) {
	for _, p := range protos {
		if _, err := NewCC(p); err != nil {
			return nil, err
		}
	}
	out := &FatTreeResult{}
	ctr := opts.cells(len(podCounts) * len(protos))
	for _, pods := range podCounts {
		for _, proto := range protos {
			if err := opts.interrupted(); err != nil {
				return nil, err
			}
			spec := struct {
				Family   string   `json:"family"`
				Protocol Protocol `json:"protocol"`
				Pods     int      `json:"pods"`
				Seed     int64    `json:"seed"`
			}{"fattree", proto, pods, opts.seed()}
			row, _, err := cachedCell(opts, spec, func() (*FatTreeRow, error) {
				return runFatTreeCell(proto, pods, opts.seed(), opts.shards())
			})
			if err != nil {
				return nil, err
			}
			ctr.finished(fmt.Sprintf("%s/%d-pods", proto, pods))
			out.Rows = append(out.Rows, *row)
		}
	}
	return out, nil
}

func runFatTreeCell(proto Protocol, pods int, seed int64, shards int) (*FatTreeRow, error) {
	rng := sim.NewRand(seed + int64(pods)*101)
	env := newSimEnv(shards)
	sched := env.sched
	link := netsim.LinkConfig{
		Rate:  10 * netsim.Gbps,
		Delay: ftLinkDelay,
		Queue: netsim.QueueConfig{
			CapBytes:            ftBufferBytes,
			ECNThresholdPackets: ftECNThreshold,
		},
	}
	ft, err := topology.NewFatTree(sched, pods, link)
	if err != nil {
		return nil, err
	}
	if err := env.partition(ft.Shard); err != nil {
		return nil, err
	}
	n := len(ft.Hosts)
	stacks := make([]*tcp.Stack, n)
	for i, h := range ft.Hosts {
		stacks[i] = tcp.NewStack(ft.Net, h)
	}
	// One front-end per pod: the first host of each pod's first edge
	// switch (hosts are laid out pod-major).
	perPod := n / pods
	frontEnds := make([]int, 0, pods)
	isFrontEnd := make(map[int]bool, pods)
	for p := 0; p < pods; p++ {
		frontEnds = append(frontEnds, p*perPod)
		isFrontEnd[p*perPod] = true
	}

	collector := &httpapp.Collector{}
	bigC := &httpapp.Collector{}
	var conns []*tcp.Conn
	for i := range ft.Hosts {
		if isFrontEnd[i] {
			continue
		}
		sink := frontEnds[rng.Intn(len(frontEnds))]
		conn, err := tcp.NewConn(tcp.Config{
			Sender:   stacks[i],
			Receiver: stacks[sink],
			Flow:     netsim.FlowID(i + 1),
			CC:       MustCCWithBaseRTT(proto, ftBaseRTT),
			MinRTO:   ftRTO,
			ECN:      UsesECN(proto),
			LinkRate: 10 * netsim.Gbps,
		})
		if err != nil {
			return nil, err
		}
		conns = append(conns, conn)
		srv := httpapp.NewServer(conn.Scheduler(), conn, fmt.Sprintf("h%d", i), collector)

		// Small objects from 0.1 s, then the big remainder at 0.5 s.
		sent := 0
		at := sim.At(ftSmallStart)
		for k := 0; k < ftSmallCount && sent < ftTotalBytes/2; k++ {
			size := ftSmallMin + rng.Intn(ftSmallMax-ftSmallMin+1)
			if err := srv.ScheduleResponse(at, size); err != nil {
				return nil, err
			}
			sent += size
			at = at.Add(time.Duration(rng.ExpFloat64() * float64(ftSmallGapMean)))
		}
		// The big remainder is a response like any other; its completion
		// (release at 0.5 s → last byte ACKed) is the tail-defining
		// sample. done tracks big objects so the run can stop early.
		remainder := ftTotalBytes - sent
		big := httpapp.NewServer(conn.Scheduler(), conn, "big", bigC)
		if err := big.ScheduleResponse(sim.At(ftBigStart), remainder); err != nil {
			return nil, err
		}
	}

	var watch func()
	watch = func() {
		if bigC.Pending() == 0 && collector.Pending() == 0 {
			env.stop()
			return
		}
		env.syncAfter(sched, 10*time.Millisecond, watch)
	}
	if err := env.syncAt(sched, sim.At(ftBigStart), watch); err != nil {
		return nil, err
	}
	env.runUntil(sim.At(ftHorizon))

	var cts metrics.Distribution
	for _, r := range collector.Responses() {
		cts.AddDuration(r.CompletionTime())
	}
	for _, r := range bigC.Responses() {
		cts.AddDuration(r.CompletionTime())
	}
	row := &FatTreeRow{Protocol: proto, Pods: pods, Servers: len(conns), Completed: len(bigC.Responses())}
	row.MeanCT = secondsToDuration(cts.Mean())
	row.MaxCT = secondsToDuration(cts.Max())
	for _, c := range conns {
		row.Timeouts += c.Stats().Timeouts
	}
	return row, nil
}

// WriteTables renders Fig. 12 and Table I.
func (r *FatTreeResult) WriteTables(w io.Writer) error {
	fig := &Table{
		Title:  "Fig. 12: mean and maximum completion times in the 10 Gbps fat-tree",
		Header: []string{"pods", "servers", "protocol", "mean CT", "max CT", "completed"},
	}
	tab := &Table{
		Title:  "Table I: number of timeouts in each protocol",
		Header: []string{"pods", "protocol", "timeouts"},
	}
	for _, row := range r.Rows {
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprintf("%d", row.Pods),
			fmt.Sprintf("%d", row.Servers),
			string(row.Protocol),
			row.MeanCT.Round(10 * time.Microsecond).String(),
			row.MaxCT.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d/%d", row.Completed, row.Servers),
		})
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", row.Pods),
			string(row.Protocol),
			fmt.Sprintf("%d", row.Timeouts),
		})
	}
	if err := fig.Write(w); err != nil {
		return err
	}
	return tab.Write(w)
}

// FatTreeProtocols is the paper's comparison set.
var FatTreeProtocols = []Protocol{ProtoTCP, ProtoDCTCP, ProtoL2DCT, ProtoTRIM}

var _ = register("fig12",
	"Mean and maximum completion times in the 10 Gbps fat-tree (Fig. 12)",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunFatTree(FatTreeProtocols, []int{4, 6, 8, 10}, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})

var _ = register("table1",
	"Timeout counts per protocol in the 10 Gbps fat-tree (Table I)",
	nil,
	func(opts Options, w io.Writer) error {
		res, err := RunFatTree(FatTreeProtocols, []int{4, 6, 8, 10}, opts)
		if err != nil {
			return err
		}
		return res.WriteTables(w)
	})
