package experiment

// Options cross-validation, consolidated. Historically each knob was
// checked wherever it happened to be consumed — shard bounds in
// trimsim's flag parsing, AQM/recovery/fidelity names inside individual
// runners, the packet-fidelity scale refusal in the million runner —
// so the CLI and any new entry point had to re-scatter the same checks.
// Validate is the one gate both trimsim and the experiment service's
// REST API call before running anything.

import (
	"fmt"

	"tcptrim/internal/hybrid"
)

// MaxShards bounds Options.Shards: beyond GOMAXPROCS extra shards only
// add synchronization overhead, and an absurd count (a typo'd spec
// submitted to the service) would allocate that many full schedulers
// per trial. 256 is far above any machine this runs on.
const MaxShards = 256

// PacketFidelityMaxConns is the largest connection count a runner may
// materialize packet-by-packet; beyond it only hybrid fidelity is
// accepted (see CheckFidelityScale).
const PacketFidelityMaxConns = 100_000

// Validate checks the full Options surface in one place: field bounds
// (Reps, Shards) and every name-typed knob (AQM, Recovery, Fidelity).
// It returns the first violation, with the underlying parser's error
// for name typos so the caller sees the accepted values. A zero Options
// is always valid — every field's zero value means "default".
func (o Options) Validate() error {
	if o.Reps < 0 {
		return fmt.Errorf("experiment: reps must be >= 0 (got %d)", o.Reps)
	}
	if o.Shards < 0 {
		return fmt.Errorf("experiment: shards must be >= 0 (got %d; 0 and 1 both mean sequential)", o.Shards)
	}
	if o.Shards > MaxShards {
		return fmt.Errorf("experiment: shards must be <= %d (got %d)", MaxShards, o.Shards)
	}
	if _, _, err := o.aqmOverride(); err != nil {
		return err
	}
	if _, _, err := o.recoveryOverride(); err != nil {
		return err
	}
	if _, err := o.fidelity(); err != nil {
		return err
	}
	return nil
}

// CheckFidelityScale refuses packet fidelity beyond
// PacketFidelityMaxConns connections — materializing that many
// packet-level connections is exactly what the hybrid layer exists to
// avoid. Runners that size their own topology (fig8million) call this
// once the connection count is known; Validate cannot, because the
// count is scenario state, not an Options field.
func CheckFidelityScale(fid hybrid.Fidelity, conns int) error {
	if fid == hybrid.FidelityPacket && conns > PacketFidelityMaxConns {
		return fmt.Errorf("experiment: %d connections at packet fidelity exceeds the %d-connection bound; use hybrid fidelity",
			conns, PacketFidelityMaxConns)
	}
	return nil
}
