// Package experiment contains one runner per table and figure of the
// paper's evaluation (Section IV), plus the motivation experiments of
// Section II and the ablations DESIGN.md calls out. Each runner builds its
// scenario from the topology/workload/httpapp packages, executes it on the
// deterministic simulator, and returns a result struct that can print the
// same rows/series the paper reports.
package experiment

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"tcptrim/internal/aqm"
	"tcptrim/internal/cc"
	"tcptrim/internal/cellcache"
	"tcptrim/internal/core"
	"tcptrim/internal/hybrid"
	"tcptrim/internal/metrics"
	"tcptrim/internal/tcp"
)

// Protocol names a congestion-control variant under test.
type Protocol string

// The protocols the paper evaluates.
const (
	ProtoTCP   Protocol = "TCP"
	ProtoTRIM  Protocol = "TCP-TRIM"
	ProtoDCTCP Protocol = "DCTCP"
	ProtoL2DCT Protocol = "L2DCT"
	ProtoCUBIC Protocol = "CUBIC"
	ProtoGIP   Protocol = "GIP"

	// Ablation variants of TCP-TRIM.
	ProtoTRIMNoProbe Protocol = "TRIM-noprobe"
	ProtoTRIMNoQueue Protocol = "TRIM-noqueue"
)

// NewCC returns a fresh congestion-control policy for p.
func NewCC(p Protocol) (tcp.CongestionControl, error) {
	switch p {
	case ProtoTCP:
		return tcp.NewReno(), nil
	case ProtoTRIM:
		return core.New(core.Config{}), nil
	case ProtoDCTCP:
		return cc.NewDCTCP(), nil
	case ProtoL2DCT:
		return cc.NewL2DCT(), nil
	case ProtoCUBIC:
		return cc.NewCubic(), nil
	case ProtoGIP:
		return cc.NewGIP(), nil
	case ProtoTRIMNoProbe:
		return core.New(core.Config{DisableProbing: true}), nil
	case ProtoTRIMNoQueue:
		return core.New(core.Config{DisableQueueControl: true}), nil
	default:
		return nil, fmt.Errorf("experiment: unknown protocol %q", p)
	}
}

// MustCC is NewCC for known-constant protocols inside runners.
func MustCC(p Protocol) tcp.CongestionControl {
	policy, err := NewCC(p)
	if err != nil {
		// Unreachable for the package's own constants; make the bug loud
		// in experiment code paths rather than silently running Reno.
		panic(err)
	}
	return policy
}

// UsesECN reports whether the protocol needs ECN-capable transport
// marking.
func UsesECN(p Protocol) bool {
	return p == ProtoDCTCP || p == ProtoL2DCT
}

// NewCCWithBaseRTT returns a fresh policy like NewCC, but configures
// TCP-TRIM variants with the scenario's known queue-free RTT D (see
// core.Config.BaseRTT). Non-TRIM protocols ignore the hint.
func NewCCWithBaseRTT(p Protocol, baseRTT time.Duration) (tcp.CongestionControl, error) {
	switch p {
	case ProtoTRIM:
		return core.New(core.Config{BaseRTT: baseRTT}), nil
	case ProtoTRIMNoProbe:
		return core.New(core.Config{BaseRTT: baseRTT, DisableProbing: true}), nil
	case ProtoTRIMNoQueue:
		return core.New(core.Config{BaseRTT: baseRTT, DisableQueueControl: true}), nil
	default:
		return NewCC(p)
	}
}

// MustCCWithBaseRTT is NewCCWithBaseRTT for the package's own constants.
func MustCCWithBaseRTT(p Protocol, baseRTT time.Duration) tcp.CongestionControl {
	policy, err := NewCCWithBaseRTT(p, baseRTT)
	if err != nil {
		panic(err)
	}
	return policy
}

// Options tunes a run without changing the scenario.
type Options struct {
	// Seed drives every random draw; same seed, same run.
	Seed int64
	// Reps repeats randomized scenarios (Fig. 8's "repeated 100 times");
	// 0 means each experiment's default.
	Reps int
	// CSVDir, when non-empty, makes runners that produce time series
	// (fig4, fig6, fig9, fig10) also write them as CSV files into this
	// directory for plotting.
	CSVDir string
	// AQM optionally swaps the switch queue discipline in the runners
	// that honor it (fig4/fig6 impairment, resilience): a name accepted
	// by aqm.Parse — droptail, red, ared, codel, favour. Empty keeps each
	// scenario's default drop-tail switch, preserving historical outputs
	// byte for byte.
	AQM string
	// Recovery optionally swaps the TCP loss-recovery policy in the
	// runners that honor it (resilience, recoverysweep): a name accepted
	// by tcp.NewRecoveryPolicy — classic, rack-tlp, tracks. Empty keeps
	// each scenario's default (Classic), preserving historical outputs
	// byte for byte. The tracks policy additionally attaches a T-RACKs
	// agent to the scenario's switches.
	Recovery string
	// Shards partitions each simulated network into that many PDES
	// shards run under conservative synchronization (0 or 1 keeps the
	// sequential scheduler). Results are byte-identical at any shard
	// count; only wall-clock time changes. Runners that fan trials out
	// in parallel divide their worker pool by Shards so shard goroutines
	// never oversubscribe GOMAXPROCS.
	Shards int
	// Fidelity selects the connection simulation mode in the runners
	// that honor it (fig4/fig6 impairment, fig8 large-scale,
	// fig8million): a name accepted by hybrid.ParseFidelity — packet
	// (default) or hybrid. Hybrid folds idle connections into a compact
	// flow store and simulates packets only for connections with an
	// active train; the differential tests pin that small-scale outputs
	// stay byte-identical across fidelities.
	Fidelity string
	// Cache optionally memoizes individual sweep cells in a
	// content-addressed store. Runners that support cell decomposition
	// (the sweeps and figure matrices — aqmsweep, recoverysweep,
	// resilience, fig4/fig5/fig6/fig7/fig8, fig12/table1 and their smoke
	// slices) key each cell by its canonical machine-independent spec
	// (family, coordinates, seed split) plus the code version, and answer
	// warm cells from the store without simulating. Results are
	// byte-identical with the cache off, cold, or warm: cells are pure
	// functions of their spec, and JSON round-trips every row exactly.
	// nil disables memoization.
	Cache *cellcache.Store
	// Progress optionally receives live observability events (samples,
	// completed responses, finished cells — see ProgressEvent) while the
	// run simulates. Hooks fire only from code paths that execute
	// anyway, so arming one never changes results: the same spec still
	// produces byte-identical output. Publish is called from worker and
	// shard goroutines; implementations must be concurrency-safe.
	Progress Progress
	// Context optionally bounds the run. Runners with long cell
	// fan-outs poll it between cells and abort with its error; the
	// service uses it to cancel in-flight jobs. nil means run to
	// completion.
	Context context.Context
}

// fidelity resolves the Fidelity option (empty → packet).
func (o Options) fidelity() (hybrid.Fidelity, error) {
	return hybrid.ParseFidelity(o.Fidelity)
}

// shards normalizes the Shards option (≤1 → 1).
func (o Options) shards() int {
	if o.Shards <= 1 {
		return 1
	}
	return o.Shards
}

// aqmOverride resolves the AQM option; ok is false when the option is
// unset and the scenario default should stand.
func (o Options) aqmOverride() (cfg aqm.Config, ok bool, err error) {
	if o.AQM == "" {
		return aqm.Config{}, false, nil
	}
	cfg, err = aqm.Parse(o.AQM)
	return cfg, err == nil, err
}

// recoveryOverride resolves the Recovery option to a canonical policy
// name; ok is false when the option is unset and the scenario default
// (Classic) should stand.
func (o Options) recoveryOverride() (name string, ok bool, err error) {
	if o.Recovery == "" {
		return "", false, nil
	}
	p, err := tcp.NewRecoveryPolicy(o.Recovery)
	if err != nil {
		return "", false, err
	}
	return p.Name(), true, nil
}

// mustRecovery builds a fresh recovery policy for a name that has already
// been validated (by recoveryOverride or a runner's own axis constants).
func mustRecovery(name string) tcp.RecoveryPolicy {
	p, err := tcp.NewRecoveryPolicy(name)
	if err != nil {
		panic(err)
	}
	return p
}

// saveSeriesCSV writes a series into opts.CSVDir when exporting is
// enabled; it is a no-op otherwise.
func saveSeriesCSV(opts Options, name, valueName string, s *metrics.Series) error {
	if opts.CSVDir == "" || s == nil {
		return nil
	}
	f, err := os.Create(filepath.Join(opts.CSVDir, name+".csv"))
	if err != nil {
		return fmt.Errorf("csv export: %w", err)
	}
	defer f.Close()
	if err := s.WriteCSV(f, valueName); err != nil {
		return fmt.Errorf("csv export %s: %w", name, err)
	}
	return nil
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) reps(def int) int {
	if o.Reps <= 0 {
		return def
	}
	return o.Reps
}

// Table is a simple printable grid used by every result type.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// Write renders the table in aligned plain text.
func (t *Table) Write(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			sep := "  "
			if i == len(cells)-1 {
				sep = "\n"
			}
			if _, err := fmt.Fprintf(w, "%s%s%s", cell, spaces(pad), sep); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	if t.Caption != "" {
		if _, err := fmt.Fprintf(w, "-- %s\n", t.Caption); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func spaces(n int) string {
	if n <= 0 {
		return ""
	}
	return strings.Repeat(" ", n)
}

// Runner executes one registered experiment and writes its tables.
type Runner func(opts Options, w io.Writer) error

// RunnerInfo describes one registered experiment: what it reproduces
// and which Options fields it honors. trimsim -list and the service's
// GET /v1/runners both render from it, so the CLI and the API can never
// drift apart.
type RunnerInfo struct {
	ID          string `json:"id"`
	Description string `json:"description"`
	// Options lists the Options fields beyond Seed and Shards (which
	// every runner honors) that this runner consumes: "reps", "csv",
	// "aqm", "recovery", "fidelity".
	Options []string `json:"options,omitempty"`
}

// registryEntry pairs a runner with its metadata.
type registryEntry struct {
	info RunnerInfo
	run  Runner
}

// registry maps experiment ids to runners; ids follow DESIGN.md.
var registry = map[string]registryEntry{}

// Register adds a runner to the registry. Figure/table runners register
// themselves at init; external callers (service tests registering
// controllable fakes, downstream tools adding scenarios) may add more.
// Duplicate ids are an error — a silently shadowed figure would be a
// reproduction bug.
func Register(info RunnerInfo, r Runner) error {
	if info.ID == "" {
		return fmt.Errorf("experiment: register: empty id")
	}
	if r == nil {
		return fmt.Errorf("experiment: register %q: nil runner", info.ID)
	}
	if _, dup := registry[info.ID]; dup {
		return fmt.Errorf("experiment: register %q: already registered", info.ID)
	}
	registry[info.ID] = registryEntry{info: info, run: r}
	return nil
}

// register is called from each experiment file's top-level declarations
// (a registry is one of the sanctioned uses of initialization-time side
// effects: deterministic, no I/O). honors lists the Options fields
// beyond Seed/Shards the runner consumes; a clash panics at init.
func register(id, desc string, honors []string, r Runner) bool {
	if err := Register(RunnerInfo{ID: id, Description: desc, Options: honors}, r); err != nil {
		panic(err)
	}
	return true
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Runners returns every registered experiment's metadata, sorted by id.
func Runners() []RunnerInfo {
	out := make([]RunnerInfo, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id].info)
	}
	return out
}

// Describe returns the metadata for one experiment id.
func Describe(id string) (RunnerInfo, bool) {
	e, ok := registry[id]
	return e.info, ok
}

// Run executes the experiment with the given id. Options are validated
// first (see Validate), so every entry point — CLI, service, tests —
// rejects a malformed spec before any simulation starts.
func Run(id string, opts Options, w io.Writer) error {
	e, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiment: unknown id %q (known: %v)", id, IDs())
	}
	if err := opts.Validate(); err != nil {
		return err
	}
	return e.run(opts, w)
}
