package experiment

import (
	"fmt"
	"io"

	"tcptrim/internal/conformance"
)

// conformanceSeeds is the default size of the seed matrix the shadow
// executor sweeps: each seed is one randomized ON/OFF workload over a
// fault-injected bottleneck, replayed through the live TRIM policy and
// the paper-pseudocode Oracle in lockstep (DESIGN.md §7).
const conformanceSeeds = 64

// RunConformance sweeps reps randomized scenarios (seeded from base via
// SplitSeed, so the matrix is worker-count independent) and returns the
// per-scenario summaries. Any divergence is an error: the first failing
// scenario is shrunk with the delta-debugging minimizer and reported
// with its divergence trace. shards > 1 runs every scenario on a sharded
// PDES group — the oracle observes the identical event order, so a
// sharding bug that perturbs TRIM's decisions surfaces as a divergence.
func RunConformance(base int64, reps, shards int, w io.Writer) error {
	type row struct {
		seed int64
		desc string
		res  *conformance.Result
	}
	rows, err := RunSeededTrialsWorkers(reps, base, trialWorkers(shards), func(i int, seed int64) (row, error) {
		sc := conformance.GenScenario(seed)
		sc.Shards = shards
		res, err := conformance.RunScenario(sc)
		if err != nil {
			return row{}, fmt.Errorf("scenario %d (seed %d): %w", i, seed, err)
		}
		return row{seed: seed, desc: sc.Describe(), res: res}, nil
	})
	if err != nil {
		return err
	}

	title := fmt.Sprintf("Paper-conformance shadow sweep (%d scenarios)", reps)
	if shards > 1 {
		title = fmt.Sprintf("Paper-conformance shadow sweep (%d scenarios, %d shards)", reps, shards)
	}
	tbl := &Table{
		Title: title,
		Header: []string{"scenario", "seed", "workload", "hooks", "probe rounds",
			"probe timeouts", "queue cuts", "RTOs", "divergences"},
	}
	var hooks, rounds, timeouts, cuts, divs int
	for i, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprint(i), fmt.Sprint(r.seed), r.desc,
			fmt.Sprint(r.res.Hooks), fmt.Sprint(r.res.ProbeRounds),
			fmt.Sprint(r.res.ProbeTimeouts), fmt.Sprint(r.res.QueueReductions),
			fmt.Sprint(r.res.Timeouts), fmt.Sprint(r.res.Total)})
		hooks += r.res.Hooks
		rounds += r.res.ProbeRounds
		timeouts += r.res.ProbeTimeouts
		cuts += r.res.QueueReductions
		divs += r.res.Total
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\ntotal: %d hooks, %d probe rounds (%d timed out), %d queue cuts, %d divergences\n",
		hooks, rounds, timeouts, cuts, divs)

	if divs == 0 {
		fmt.Fprintf(w, "live policy and paper oracle agree on every scenario\n")
		return nil
	}

	// Report the first diverging scenario, minimized.
	for _, r := range rows {
		if r.res.Total == 0 {
			continue
		}
		fmt.Fprintf(w, "\nseed %d diverged (%d divergences):\n", r.seed, r.res.Total)
		for _, d := range r.res.Divergences {
			fmt.Fprintf(w, "  %s\n", d)
		}
		min := conformance.MinimizeFailing(conformance.GenScenario(r.seed))
		fmt.Fprintf(w, "minimized reproduction: seed=%d %s trains=%v\n",
			min.Seed, min.Describe(), min.Trains)
		if res, err := conformance.RunScenario(min); err == nil && len(res.Divergences) > 0 {
			last := res.Divergences[0]
			fmt.Fprintf(w, "trace to first divergence:\n")
			for _, line := range last.Trace {
				fmt.Fprintf(w, "  %s\n", line)
			}
		}
		break
	}
	return fmt.Errorf("conformance: %d divergences between core.Trim and the paper oracle", divs)
}

var _ = register("conformance",
	"Paper-conformance oracle: shadow-execute Algorithms 1-2 against the live TRIM policy over a seed matrix",
	[]string{"reps"},
	func(opts Options, w io.Writer) error {
		return RunConformance(opts.seed(), opts.reps(conformanceSeeds), opts.shards(), w)
	})
