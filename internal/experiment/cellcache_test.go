package experiment

// Cache-correctness proofs for the cell-grained memoization layer:
// every cached sweep must render byte-identical output with the cache
// off, cold, and warm (the warm run additionally at a different shard
// count and with a Progress hook armed, pinning that neither enters the
// key); a one-axis change must re-simulate only the changed cells; and
// key derivation must be sensitive to every option that shapes output
// (seed, aqm, recovery, fidelity, reps) while normalized options
// (fidelity "" vs explicit "packet") share cells.

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"

	"tcptrim/internal/aqm"
	"tcptrim/internal/cellcache"
	"tcptrim/internal/tcp"
)

// cacheRenderers covers every cached sweep family at a CI-sized slice.
var cacheRenderers = []struct {
	name   string
	render func(opts Options) ([]byte, error)
}{
	{"aqmsweep", func(opts Options) ([]byte, error) {
		res, err := RunAQMSweep([]Protocol{ProtoTRIM}, DefaultAQMDisciplines,
			AQMSweepConcurrency[:1], opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	}},
	{"recoverysweep", func(opts Options) ([]byte, error) {
		res, err := RunRecoverySweep(tcp.RecoveryNames(), []string{"droptail"},
			[]FaultIntensity{DefaultFaultIntensities[2]}, []int{aqm.TinyBufferPackets}, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	}},
	{"resilience", func(opts Options) ([]byte, error) {
		res, err := RunResilience([]Protocol{ProtoTRIM}, DefaultFaultIntensities[:2], opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	}},
	{"fig4", func(opts Options) ([]byte, error) {
		res, err := RunImpairment(ProtoTCP, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := res.WriteTables(&buf); err != nil {
			return nil, err
		}
		// The rendered table omits the traced series; fold their points in
		// so the cached-series round trip is pinned to the float.
		fmt.Fprintf(&buf, "cwnd=%v goodput=%v total=%v\n",
			res.TracedCwnd.Points(), res.TracedThroughput.Points(), res.TotalThroughput.Points())
		return buf.Bytes(), nil
	}},
	{"fig5", func(opts Options) ([]byte, error) {
		res, err := RunConcurrency(ProtoTCP, []int{2}, 4, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	}},
	{"fig6", func(opts Options) ([]byte, error) {
		res, err := RunImpairment(ProtoTRIM, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	}},
	{"fig8", func(opts Options) ([]byte, error) {
		opts.Reps = 1
		res, err := RunLargeScale([]Protocol{ProtoTRIM}, []int{3}, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	}},
	{"table1", func(opts Options) ([]byte, error) {
		res, err := RunFatTree([]Protocol{ProtoTRIM}, []int{4}, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = res.WriteTables(&buf)
		return buf.Bytes(), err
	}},
}

// TestCacheColdWarmByteIdentity is the central soundness pin: cache off,
// cache cold (filling), and cache warm (every cell a hit, different
// shard count, Progress hook armed) must render the same bytes. A zero
// warm-run miss count additionally proves the keys are independent of
// shard count and observation, and that the warm output really came
// from the store rather than a re-simulation.
func TestCacheColdWarmByteIdentity(t *testing.T) {
	for _, tc := range cacheRenderers {
		t.Run(tc.name, func(t *testing.T) {
			off, err := tc.render(Options{Seed: 7})
			if err != nil {
				t.Fatalf("cache off: %v", err)
			}
			store := cellcache.NewMemory()
			cold, err := tc.render(Options{Seed: 7, Cache: store})
			if err != nil {
				t.Fatalf("cache cold: %v", err)
			}
			if !bytes.Equal(off, cold) {
				t.Errorf("cold cached run diverges from uncached run:\n-- off --\n%s\n-- cold --\n%s", off, cold)
			}
			if store.Misses() == 0 {
				t.Fatal("cold run hit an empty store — Get was never consulted?")
			}
			store.ResetStats()
			warm, err := tc.render(Options{Seed: 7, Cache: store, Shards: 4, Progress: &eventLog{}})
			if err != nil {
				t.Fatalf("cache warm: %v", err)
			}
			if !bytes.Equal(off, warm) {
				t.Errorf("warm cached run diverges from uncached run:\n-- off --\n%s\n-- warm --\n%s", off, warm)
			}
			if m := store.Misses(); m != 0 {
				t.Errorf("warm run re-simulated %d cells (keys depend on shards or Progress?)", m)
			}
			if store.Hits() == 0 {
				t.Error("warm run recorded no cache hits")
			}
		})
	}
}

// TestCellKeySensitivity drives each output-shaping option through a
// runner that honors it: after a cold fill, re-running with the option
// changed must miss (re-simulate), and re-running with an equivalent
// spelling (normalized options) must stay fully warm.
func TestCellKeySensitivity(t *testing.T) {
	resilience := func(opts Options) error {
		_, err := RunResilience([]Protocol{ProtoTRIM}, DefaultFaultIntensities[:1], opts)
		return err
	}
	largescale := func(opts Options) error {
		if opts.Reps == 0 {
			opts.Reps = 1
		}
		_, err := RunLargeScale([]Protocol{ProtoTRIM}, []int{2}, opts)
		return err
	}
	aqmsweep := func(opts Options) error {
		_, err := RunAQMSweep([]Protocol{ProtoTRIM}, DefaultAQMDisciplines[:1],
			AQMSweepConcurrency[:1], opts)
		return err
	}
	cases := []struct {
		name     string
		run      func(Options) error
		base     Options
		changed  Options
		wantMiss bool
	}{
		{"seed", aqmsweep, Options{Seed: 1}, Options{Seed: 2}, true},
		{"aqm", resilience, Options{Seed: 1}, Options{Seed: 1, AQM: "codel"}, true},
		{"recovery", resilience, Options{Seed: 1}, Options{Seed: 1, Recovery: "rack-tlp"}, true},
		{"fidelity", largescale, Options{Seed: 1}, Options{Seed: 1, Fidelity: "hybrid"}, true},
		{"reps", largescale, Options{Seed: 1, Reps: 1}, Options{Seed: 1, Reps: 2}, true},
		// The default fidelity IS packet: an explicit spelling must hit
		// the same cells (the key carries the parsed, normalized name).
		{"fidelity-normalized", largescale, Options{Seed: 1}, Options{Seed: 1, Fidelity: "packet"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := cellcache.NewMemory()
			tc.base.Cache = store
			tc.changed.Cache = store
			if err := tc.run(tc.base); err != nil {
				t.Fatalf("base run: %v", err)
			}
			store.ResetStats()
			if err := tc.run(tc.changed); err != nil {
				t.Fatalf("changed run: %v", err)
			}
			if tc.wantMiss && store.Misses() == 0 {
				t.Errorf("changing %s produced no cache miss — the option is missing from the cell key", tc.name)
			}
			if !tc.wantMiss && store.Misses() != 0 {
				t.Errorf("equivalent option spelling re-simulated %d cells, want full warm hit", store.Misses())
			}
		})
	}
}

// TestAQMSweepPartialWarm is the one-axis-changed acceptance pin: after
// a cold aqmsweep-smoke fill, swapping a single discipline on the axis
// must simulate exactly the new cell, reassemble the other three from
// cache, and render byte-identically to an uncached run of the changed
// axis.
func TestAQMSweepPartialWarm(t *testing.T) {
	render := func(discs []AQMDiscipline, opts Options) []byte {
		t.Helper()
		res, err := RunAQMSweep([]Protocol{ProtoTRIM}, discs, AQMSweepConcurrency[:1], opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteTables(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	store := cellcache.NewMemory()
	render(DefaultAQMDisciplines, Options{Seed: 7, Cache: store})
	if got, want := store.Misses(), int64(len(DefaultAQMDisciplines)); got != want {
		t.Fatalf("cold run simulated %d cells, want %d", got, want)
	}

	// Flip one discipline. The axis contract keys cells by discipline
	// name, so the variant needs a distinct name — which any in-tree
	// axis change would have.
	flipped := append([]AQMDiscipline(nil), DefaultAQMDisciplines...)
	flipped[1] = AQMDiscipline{
		Name: "red-noecn",
		Config: func(seed int64) aqm.Config {
			return aqm.Config{Kind: aqm.RED, RED: aqm.REDConfig{Seed: seed}}
		},
	}

	store.ResetStats()
	warm := render(flipped, Options{Seed: 7, Cache: store})
	if store.Misses() != 1 {
		t.Errorf("one-axis-changed warm run simulated %d cells, want exactly the 1 changed cell", store.Misses())
	}
	if got, want := store.Hits(), int64(len(DefaultAQMDisciplines)-1); got != want {
		t.Errorf("warm run reassembled %d cells from cache, want %d", got, want)
	}

	cold := render(flipped, Options{Seed: 7})
	if !bytes.Equal(warm, cold) {
		t.Errorf("partially-warm table diverges from uncached run:\n-- warm --\n%s\n-- cold --\n%s", warm, cold)
	}
}

// eventLog is a Progress hook that retains every event (Publish runs on
// parallel trial workers, hence the lock).
type eventLog struct {
	mu     sync.Mutex
	events []ProgressEvent
}

func (l *eventLog) Publish(ev ProgressEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// kind returns the retained events of one kind, in arrival order.
func (l *eventLog) kind(k string) []ProgressEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []ProgressEvent
	for _, ev := range l.events {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// TestWarmRunReplaysCellMilestones pins the SSE contract: a warm sweep
// streams the same cell-completion milestones a cold run does (names and
// totals; arrival order is worker-dependent on both paths, so the
// comparison is order-insensitive).
func TestWarmRunReplaysCellMilestones(t *testing.T) {
	run := func(opts Options) *eventLog {
		t.Helper()
		log := &eventLog{}
		opts.Progress = log
		if _, err := RunAQMSweep([]Protocol{ProtoTRIM}, DefaultAQMDisciplines,
			AQMSweepConcurrency[:1], opts); err != nil {
			t.Fatal(err)
		}
		return log
	}
	milestones := func(log *eventLog) []string {
		var out []string
		for _, ev := range log.kind("cell") {
			out = append(out, fmt.Sprintf("%s total=%d", ev.Name, ev.Total))
		}
		sort.Strings(out)
		return out
	}

	store := cellcache.NewMemory()
	cold := milestones(run(Options{Seed: 7, Cache: store}))
	store.ResetStats()
	warm := milestones(run(Options{Seed: 7, Cache: store}))
	if store.Misses() != 0 {
		t.Fatalf("warm run re-simulated %d cells", store.Misses())
	}
	if len(cold) == 0 {
		t.Fatal("cold run published no cell milestones")
	}
	if fmt.Sprint(cold) != fmt.Sprint(warm) {
		t.Errorf("warm milestones differ from cold:\ncold: %v\nwarm: %v", cold, warm)
	}
}

// TestWarmImpairmentReplaysSeries pins the fig4/fig6 replay path: the
// retained series and completion summaries stream identically on warm
// runs, while cold-only samplers (queue depth) are declared absent.
func TestWarmImpairmentReplaysSeries(t *testing.T) {
	run := func(opts Options) *eventLog {
		t.Helper()
		log := &eventLog{}
		opts.Progress = log
		if _, err := RunImpairment(ProtoTRIM, opts); err != nil {
			t.Fatal(err)
		}
		return log
	}
	samplesOf := func(log *eventLog, name string) []string {
		var out []string
		for _, ev := range log.kind("sample") {
			if ev.Name == name {
				out = append(out, fmt.Sprintf("%v@%v", ev.Value, ev.At))
			}
		}
		return out
	}

	store := cellcache.NewMemory()
	cold := run(Options{Seed: 7, Cache: store})
	store.ResetStats()
	warm := run(Options{Seed: 7, Cache: store})
	if store.Misses() != 0 {
		t.Fatalf("warm run re-simulated (%d misses)", store.Misses())
	}
	for _, name := range []string{"traced-goodput-mbps", "total-goodput-mbps", "cwnd-segments"} {
		c, w := samplesOf(cold, name), samplesOf(warm, name)
		if len(c) == 0 {
			t.Fatalf("cold run streamed no %s samples", name)
		}
		if fmt.Sprint(c) != fmt.Sprint(w) {
			t.Errorf("%s replay differs (cold %d samples, warm %d)", name, len(c), len(w))
		}
	}
	if got := samplesOf(warm, "queue-depth-pkts"); len(got) != 0 {
		t.Errorf("warm run synthesized %d queue-depth samples; the result does not retain that series", len(got))
	}
	for _, kind := range []string{"retrans", "fct"} {
		if c, w := len(cold.kind(kind)), len(warm.kind(kind)); c != 1 || w != 1 {
			t.Errorf("%s events: cold %d, warm %d, want 1 and 1", kind, c, w)
		}
	}
}
