package experiment

import (
	"fmt"
	"io"
	"time"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/sim"
	"tcptrim/internal/tcp"
)

// Fig. 10 scenario: six hosts behind a 100-packet switch; the receiver
// link is 1 Gbps / 50 µs while the five sender links are 1.1 Gbps (so the
// receiver link is the single bottleneck); long flows start at 0.1 s,
// 2.1 s, …, 8.1 s and stop at 12.1 s, 14.1 s, …, 20.1 s.
const (
	convFlows     = 5
	convFirstOn   = 100 * time.Millisecond
	convStagger   = 2 * time.Second
	convFirstOff  = 12*time.Second + 100*time.Millisecond
	convHorizon   = 21 * time.Second
	convBin       = 100 * time.Millisecond
	convChunkSize = 1 << 20
)

// ConvergenceResult holds the Fig. 10 outputs.
type ConvergenceResult struct {
	Protocol Protocol
	// Throughput is each connection's goodput series in Mbps, 100 ms
	// bins.
	Throughput []*metrics.Series
	// JainAllActive is the Jain fairness index over the window where all
	// five flows are active (10.1 s – 12.1 s).
	JainAllActive float64
	// ShareStd is the standard deviation (Mbps) of per-flow mean
	// throughput in the all-active window — the paper's "large
	// variation" observation for TCP.
	ShareStd float64
	// MeanShare is the per-flow mean throughput (Mbps) in that window.
	MeanShare []float64
	// Timeouts across all flows.
	Timeouts int
}

// RunConvergence executes the Fig. 10 fairness/convergence test.
func RunConvergence(proto Protocol, opts Options) (*ConvergenceResult, error) {
	if _, err := NewCC(proto); err != nil {
		return nil, err
	}
	sched := sim.NewScheduler()
	net := netsim.NewNetwork(sched)
	sw := net.AddSwitch("sw")
	recvLink := netsim.LinkConfig{
		Rate:  netsim.Gbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 100},
	}
	sendLink := netsim.LinkConfig{
		Rate:  1100 * netsim.Mbps,
		Delay: 50 * time.Microsecond,
		Queue: netsim.QueueConfig{CapPackets: 100},
	}
	receiver := net.AddHost("frontend")
	net.Connect(sw, receiver, recvLink)
	senders := make([]*netsim.Host, convFlows)
	for i := range senders {
		senders[i] = net.AddHost(fmt.Sprintf("c%d", i+1))
		net.Connect(senders[i], sw, sendLink)
	}
	// Queue-free RTT of the topology: data 10.9+50 + 12+50 µs, ACK
	// ≈ 0.3+50 + 0.3+50 µs ≈ 224 µs. Configuring D keeps K identical
	// across the staggered flows (Eq. 22's D is a topology constant).
	const convBaseRTT = 225 * time.Microsecond
	fleet, err := httpapp.NewFleet(net, httpapp.FleetConfig{
		Senders:  senders,
		FrontEnd: receiver,
		NewCC:    func() tcp.CongestionControl { return MustCCWithBaseRTT(proto, convBaseRTT) },
		Base: tcp.Config{
			MinRTO:   10 * time.Millisecond,
			ECN:      UsesECN(proto),
			LinkRate: netsim.Gbps,
		},
		LabelPrefix: "c",
	})
	if err != nil {
		return nil, err
	}
	res := &ConvergenceResult{Protocol: proto}
	for i, srv := range fleet.Servers {
		on := sim.At(convFirstOn + time.Duration(i)*convStagger)
		off := sim.At(convFirstOff + time.Duration(i)*convStagger)
		if err := srv.StartChunkedFlow(on, off, convChunkSize); err != nil {
			return nil, err
		}
		conn := fleet.Conns[i]
		series := metrics.BinnedRate(sched, 0, sim.At(convHorizon), convBin,
			func() int64 { return conn.DeliveredBytes() })
		res.Throughput = append(res.Throughput, series)
	}
	sched.RunUntil(sim.At(convHorizon))

	for i, s := range res.Throughput {
		scaleSeries(s, 1e-6)
		name := fmt.Sprintf("fig10-%s-c%d", proto, i+1)
		if err := saveSeriesCSV(opts, name, "mbps", s); err != nil {
			return nil, err
		}
	}
	// All-active window: after the last flow started and before the
	// first stopped.
	winLo := sim.At(convFirstOn + time.Duration(convFlows-1)*convStagger + 500*time.Millisecond)
	winHi := sim.At(convFirstOff)
	var shares []float64
	var sum, sumSq float64
	for _, s := range res.Throughput {
		var acc metrics.Summary
		for _, p := range s.Points() {
			if p.At >= winLo && p.At <= winHi {
				acc.Add(p.Value)
			}
		}
		shares = append(shares, acc.Mean())
	}
	for _, v := range shares {
		sum += v
		sumSq += v * v
	}
	if sumSq > 0 {
		res.JainAllActive = sum * sum / (float64(len(shares)) * sumSq)
	}
	var std metrics.Summary
	for _, v := range shares {
		std.Add(v)
	}
	res.ShareStd = std.Std()
	res.MeanShare = shares
	res.Timeouts = fleet.TotalTimeouts()
	return res, nil
}

// WriteTables renders the Fig. 10 outputs.
func (r *ConvergenceResult) WriteTables(w io.Writer) error {
	t := &Table{
		Title:  fmt.Sprintf("Fig. 10 convergence/fairness (%s)", r.Protocol),
		Header: []string{"connection", "mean share 10.6-12.1s (Mbps)"},
	}
	for i, v := range r.MeanShare {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("c%d", i+1), fmt.Sprintf("%.1f", v)})
	}
	t.Caption = fmt.Sprintf("Jain index %.4f, share std %.1f Mbps, timeouts %d",
		r.JainAllActive, r.ShareStd, r.Timeouts)
	return t.Write(w)
}

var _ = register("fig10",
	"Convergence and fairness of staggered long flows: Jain index and share spread (Fig. 10)",
	[]string{"csv"},
	func(opts Options, w io.Writer) error {
		for _, proto := range []Protocol{ProtoTCP, ProtoTRIM} {
			res, err := RunConvergence(proto, opts)
			if err != nil {
				return err
			}
			if err := res.WriteTables(w); err != nil {
				return err
			}
		}
		return nil
	})
