package experiment

// Shape-assertion tests: each test pins the qualitative claim the paper
// makes for a figure or table, so a regression in any protocol or in the
// simulator that would invalidate the reproduction fails loudly. Absolute
// values are simulator-scale; the asserted relations are the paper's.

import (
	"testing"
	"time"
)

func TestPaperFig4BlindInheritanceCollapses(t *testing.T) {
	res, err := RunImpairment(ProtoTCP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// "the inherited window sizes in connection 1, 2, 3, and 4 all
	// exceed 850 packets" / "the window size is close to 900".
	for i, w := range res.CwndAtLPTStart {
		if w < 500 {
			t.Errorf("conn %d inherited cwnd = %.0f, expected a huge stale window", i+1, w)
		}
	}
	// "most of the connections involve the occurrence of TCP timeouts".
	withTimeouts := 0
	for _, n := range res.TimeoutsPerConn {
		if n > 0 {
			withTimeouts++
		}
	}
	if withTimeouts < 3 {
		t.Errorf("only %d of 5 connections timed out; the paper reports most do", withTimeouts)
	}
	// The switch buffer overflows.
	if res.QueueDrops == 0 {
		t.Error("no drops despite the inherited-window burst")
	}
}

func TestPaperFig6TrimAvoidsCollapse(t *testing.T) {
	res, err := RunImpairment(ProtoTRIM, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// "None of HTTP connections experiences TCP timeouts".
	if n := res.TotalTimeouts(); n != 0 {
		t.Errorf("TRIM timeouts = %d, want 0", n)
	}
	// "the recorded queue length never exceeds 20 packets ... no packet
	// is dropped".
	if res.QueueMax > 25 {
		t.Errorf("TRIM queue max = %d, want ≈ paper's ≤20", res.QueueMax)
	}
	if res.QueueDrops != 0 {
		t.Errorf("TRIM drops = %d, want 0", res.QueueDrops)
	}
	// "they all finish before 0.6 s".
	if res.AllDoneBy.Seconds() > 0.65 {
		t.Errorf("all done by %v, paper reports before 0.6 s", res.AllDoneBy)
	}
}

func TestPaperFig5VsFig7ConcurrencyGap(t *testing.T) {
	tcpRes, err := RunConcurrency(ProtoTCP, []int{2}, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	trimRes, err := RunConcurrency(ProtoTRIM, []int{2}, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// "The average completion time (ACT) in each case is only several
	// milliseconds, while TCP's ACT is up to two orders of magnitude"
	// — we require at least one cell with ≥10× and TRIM always < 10 ms.
	gapSeen := false
	for s := 1; s <= 8; s++ {
		tcpCell, trimCell := tcpRes.Cell(2, s), trimRes.Cell(2, s)
		if trimCell.ACT > 10*time.Millisecond {
			t.Errorf("TRIM ACT at %d SPTs = %v, want a few ms", s, trimCell.ACT)
		}
		if trimCell.Timeouts != 0 {
			t.Errorf("TRIM SPT timeouts at %d SPTs = %d, want 0", s, trimCell.Timeouts)
		}
		if tcpCell.ACT > 10*trimCell.ACT {
			gapSeen = true
		}
	}
	if !gapSeen {
		t.Error("no concurrency cell shows the paper's order-of-magnitude TCP/TRIM gap")
	}
}

func TestPaperFig9QueueControl(t *testing.T) {
	res, err := RunProperties([]Protocol{ProtoTCP, ProtoTRIM}, 2, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 9(a): TCP saw-tooths against the buffer ceiling; TRIM keeps a
	// stable small queue.
	tcpTrace, trimTrace := res.QueueTrace[ProtoTCP], res.QueueTrace[ProtoTRIM]
	if tcpTrace.Max() < 99 {
		t.Errorf("TCP queue max = %.0f, should hit the 100-packet buffer", tcpTrace.Max())
	}
	if trimTrace.Max() > 60 {
		t.Errorf("TRIM queue max = %.0f, want small and stable", trimTrace.Max())
	}
	for n := 2; n <= 10; n++ {
		tcpRow, trimRow := res.Row(ProtoTCP, n), res.Row(ProtoTRIM, n)
		// Fig. 9(b): AQL of TCP much higher than TRIM.
		if trimRow.AvgQueue >= tcpRow.AvgQueue {
			t.Errorf("n=%d: TRIM AQL %.1f not below TCP %.1f", n, trimRow.AvgQueue, tcpRow.AvgQueue)
		}
		// Fig. 9(c): "TCP-TRIM does not experience packet loss and TCP
		// timeout at all".
		if trimRow.Drops != 0 || trimRow.Timeouts != 0 {
			t.Errorf("n=%d: TRIM drops=%d timeouts=%d, want 0", n, trimRow.Drops, trimRow.Timeouts)
		}
		if tcpRow.Drops == 0 {
			t.Errorf("n=%d: TCP drops = 0, expected tail drops", n)
		}
		// Fig. 9(d): "bottleneck link utilization is nearly 98%".
		if trimRow.Utilization < 0.97 {
			t.Errorf("n=%d: TRIM utilization %.3f < 0.97", n, trimRow.Utilization)
		}
		if trimRow.GoodputMbps < tcpRow.GoodputMbps {
			t.Errorf("n=%d: TRIM goodput %.0f below TCP %.0f", n, trimRow.GoodputMbps, tcpRow.GoodputMbps)
		}
	}
	// Fig. 9(b): AQL rises with concurrency for both protocols.
	if res.Row(ProtoTRIM, 10).AvgQueue <= res.Row(ProtoTRIM, 2).AvgQueue {
		t.Error("TRIM AQL should rise with the number of concurrent flows")
	}
}

func TestPaperFig10FairConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("long convergence run")
	}
	res, err := RunConvergence(ProtoTRIM, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// "each of the five connections converges to their fair share
	// quickly".
	if res.JainAllActive < 0.99 {
		t.Errorf("TRIM Jain index = %.4f, want ≈1", res.JainAllActive)
	}
	if res.Timeouts != 0 {
		t.Errorf("TRIM convergence timeouts = %d", res.Timeouts)
	}
	// Shares near 1 Gbps / 5.
	for i, share := range res.MeanShare {
		if share < 150 || share > 250 {
			t.Errorf("c%d share = %.1f Mbps, want ≈195", i+1, share)
		}
	}
}

func TestPaperFig11MultiHopShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long multi-hop run")
	}
	trim, err := RunMultiHop(ProtoTRIM, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Group A crosses both bottlenecks and gets the least; B and C fill
	// the remaining capacity of their single bottleneck (paper: 342.7 /
	// 638 / 318 Mbps — our C is capacity-consistent rather than
	// matching the paper's anomalous 318, see EXPERIMENTS.md).
	a, bb, c := trim.MeanMbps["A"], trim.MeanMbps["B"], trim.MeanMbps["C"]
	if !(a < bb && a < c) {
		t.Errorf("group A (%.0f) should be the slowest (B %.0f, C %.0f)", a, bb, c)
	}
	if a < 250 || a > 450 {
		t.Errorf("group A = %.0f Mbps, paper reports ≈343", a)
	}
	if bb < 500 {
		t.Errorf("group B = %.0f Mbps, paper reports ≈638", bb)
	}
	// The second bottleneck should be nearly full under TRIM.
	if total := (a + bb) * 10; total < 8500 {
		t.Errorf("bottleneck-2 load = %.0f Mbps, want near 10 Gbps", total)
	}
}

func TestPaperTable1TimeoutOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("fat-tree comparison")
	}
	res, err := RunFatTree(FatTreeProtocols, []int{6}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tcpTO := res.Row(ProtoTCP, 6).Timeouts
	trimTO := res.Row(ProtoTRIM, 6).Timeouts
	dctcpTO := res.Row(ProtoDCTCP, 6).Timeouts
	// Table I: TCP experiences the most timeouts, TRIM always the least.
	if trimTO >= tcpTO {
		t.Errorf("TRIM timeouts %d not below TCP %d", trimTO, tcpTO)
	}
	if dctcpTO >= tcpTO {
		t.Errorf("DCTCP timeouts %d not below TCP %d", dctcpTO, tcpTO)
	}
	if trimTO > dctcpTO {
		t.Errorf("TRIM timeouts %d above DCTCP %d", trimTO, dctcpTO)
	}
	// "the improved ratio comparing to TCP is up to 80%".
	if tcpTO > 0 && float64(trimTO) > 0.4*float64(tcpTO) {
		t.Errorf("TRIM reduction only %d -> %d, paper reports ≈80%%", tcpTO, trimTO)
	}
	// Everyone finishes.
	for _, row := range res.Rows {
		if row.Completed != row.Servers {
			t.Errorf("%s: %d/%d completed", row.Protocol, row.Completed, row.Servers)
		}
	}
}

func TestPaperFig13WebServiceTail(t *testing.T) {
	if testing.Short() {
		t.Skip("web-service scenario")
	}
	res, err := RunWebService(WebServiceProtocols, Options{})
	if err != nil {
		t.Fatal(err)
	}
	trim := res.Row(ProtoTRIM)
	cubic := res.Row(ProtoCUBIC)
	reno := res.Row(ProtoTCP)
	// "all the samples in TCP-TRIM never exceed 25 ms".
	if trim.BandOver25ms != 0 {
		t.Errorf("TRIM 64-256KB samples over 25ms = %d, want 0", trim.BandOver25ms)
	}
	// "in the other two protocols, quite a few samples are higher than
	// 50 ms, and some of them even reach to 250 ms".
	if cubic.BandOver50ms == 0 && reno.BandOver50ms == 0 {
		t.Error("neither CUBIC nor Reno shows >50ms samples")
	}
	if cubic.BandOver250ms == 0 && reno.BandOver250ms == 0 {
		t.Error("neither CUBIC nor Reno shows >250ms samples")
	}
	// "nearly 99% of the response completion times is below 25 ms".
	if trim.FractionUnder25ms < 0.98 {
		t.Errorf("TRIM fraction ≤25ms = %.3f, want ≥0.98", trim.FractionUnder25ms)
	}
	if trim.Timeouts != 0 {
		t.Errorf("TRIM timeouts = %d", trim.Timeouts)
	}
}

func TestPaperFig13aSmallResponses(t *testing.T) {
	if testing.Short() {
		t.Skip("ARCT sweep")
	}
	res, err := RunARCT([]Protocol{ProtoCUBIC, ProtoTRIM}, []int{32 << 10, 64 << 10}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{32 << 10, 64 << 10} {
		cubic := res.Row(ProtoCUBIC, size)
		trim := res.Row(ProtoTRIM, size)
		// "with the help of TCP-TRIM, the response transfer finishes
		// more quickly".
		if trim.ARCT >= cubic.ARCT {
			t.Errorf("size %dKB: TRIM ARCT %v not below CUBIC %v",
				size>>10, trim.ARCT, cubic.ARCT)
		}
		if trim.Timeouts != 0 {
			t.Errorf("size %dKB: TRIM timeouts = %d", size>>10, trim.Timeouts)
		}
	}
}

func TestPaperEq22Guideline(t *testing.T) {
	if testing.Short() {
		t.Skip("K sweep")
	}
	res, err := RunKSweep([]float64{0.25, 1, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	quarter, star, quad := res.Rows[0], res.Rows[1], res.Rows[2]
	// K far below the guideline underutilizes the bottleneck.
	if quarter.Utilization > 0.9 {
		t.Errorf("K=K*/4 utilization %.3f, expected underutilization", quarter.Utilization)
	}
	// K = K* guarantees ≈100% utilization (the paper's claim).
	if star.Utilization < 0.99 {
		t.Errorf("K=K* utilization %.3f, want ≈1", star.Utilization)
	}
	// Larger K only buys queue.
	if quad.AvgQueue <= star.AvgQueue {
		t.Errorf("K=4K* queue %.1f not above K=K* queue %.1f", quad.AvgQueue, star.AvgQueue)
	}
	if star.Drops != 0 {
		t.Errorf("K=K* drops = %d, want 0", star.Drops)
	}
}

func TestPaperFig8Reduction(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale sweep")
	}
	res, err := RunLargeScale([]Protocol{ProtoTCP, ProtoTRIM}, []int{5}, Options{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	tcpRow, trimRow := res.Row(ProtoTCP, 5), res.Row(ProtoTRIM, 5)
	// "TCP-TRIM still reduces the ACT of TCP by up to 80%" (small
	// scale); we require at least a 40% reduction.
	if trimRow.ACT.Seconds() > 0.6*tcpRow.ACT.Seconds() {
		t.Errorf("TRIM ACT %v vs TCP %v: reduction below 40%%", trimRow.ACT, tcpRow.ACT)
	}
	if trimRow.Timeouts != 0 {
		t.Errorf("TRIM timeouts = %d", trimRow.Timeouts)
	}
	if tcpRow.Completed < tcpRow.Scheduled-tcpRow.Scheduled/20 {
		t.Errorf("TCP completed only %d/%d", tcpRow.Completed, tcpRow.Scheduled)
	}
}

func TestPaperFig2Bands(t *testing.T) {
	res, err := RunTrainAnalysis(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TinyFraction < 0.15 || res.TinyFraction > 0.25 {
		t.Errorf("tiny band = %.3f, want ≈0.20", res.TinyFraction)
	}
	if res.LargeFraction < 0.07 || res.LargeFraction > 0.13 {
		t.Errorf("large band = %.3f, want ≈0.10", res.LargeFraction)
	}
	// Fig. 1: LPTs carry "nearly one hundred packets or more"; SPTs a
	// few to dozens.
	if res.MeanLongPackets < 90 {
		t.Errorf("mean LPT packets = %.1f", res.MeanLongPackets)
	}
	if res.MeanShortPackets > 60 {
		t.Errorf("mean SPT packets = %.1f, want dozens at most", res.MeanShortPackets)
	}
	// Fig. 2(b): gaps from hundreds of µs to several ms.
	if res.GapP10us < 100 || res.GapP90us > 10_000 {
		t.Errorf("gap percentiles P10=%.0fµs P90=%.0fµs out of the paper's range",
			res.GapP10us, res.GapP90us)
	}
}

func TestPaperAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations")
	}
	inherit, err := RunInheritanceAblation(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Blind inheritance is catastrophically slower than either
	// restart-at-2 or probe-based inheritance.
	if inherit.Row(ProtoTCP).LPTMean < 5*inherit.Row(ProtoTRIM).LPTMean {
		t.Error("blind inheritance should be far slower than TRIM on the LPT")
	}
	// TRIM's probed inheritance is at least as fast as GIP's
	// unconditional restart (the paper's critique of GIP).
	if inherit.Row(ProtoTRIM).LPTMean > inherit.Row(ProtoGIP).LPTMean*3/2 {
		t.Errorf("TRIM LPT %v much slower than GIP %v",
			inherit.Row(ProtoTRIM).LPTMean, inherit.Row(ProtoGIP).LPTMean)
	}

	mech, err := RunMechanismAblation(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// On the concurrency case, removing queue control hurts badly;
	// full TRIM stays in the few-ms regime.
	if mech.Row(ProtoTRIM).ACT > 10*time.Millisecond {
		t.Errorf("full TRIM ACT = %v", mech.Row(ProtoTRIM).ACT)
	}
	if mech.Row(ProtoTRIMNoQueue).ACT < 2*mech.Row(ProtoTRIM).ACT {
		t.Error("removing queue control should hurt the concurrency case")
	}
}
